// Package profirt is a Go reproduction of "From Task Scheduling in
// Single Processor Environments to Message Scheduling in a PROFIBUS
// Fieldbus Network" (Tovar & Vasques, IPPS/SPDP 1999 Workshops).
//
// It provides, as one coherent library:
//
//   - the single-processor schedulability analyses the paper surveys
//     (rate/deadline-monotonic and EDF, preemptive and non-preemptive,
//     utilisation tests, response-time analyses, processor-demand
//     feasibility tests);
//   - a bit-time-accurate discrete-event simulator of the PROFIBUS
//     timed-token MAC (DIN 19245 framing, T_TR/T_RR/T_TH timers, high/
//     low-priority queues, retries) together with the paper's proposed
//     application-process priority-queue architecture;
//   - the paper's message schedulability analyses: the token-cycle
//     bound T_cycle = T_TR + T_del, the FCFS bound R = nh·T_cycle, the
//     Eq. 15 rule for setting T_TR, and the DM/EDF message response-
//     time analyses with release jitter;
//   - workload generators and the experiment harness that validates
//     every analysis against simulation (see EXPERIMENTS.md). The
//     harness evaluates independent grid cells on a bounded worker
//     pool (experiments.Config.Parallelism, default GOMAXPROCS) with
//     per-cell deterministic RNG seeding; high-trial cells further
//     split into per-trial sub-jobs with per-trial derived seeds
//     (cellSeed ⊕ FNV(trial)), so tables are byte-identical at any
//     parallelism; AnalyzeBatch offers the same concurrent,
//     cancellable evaluation for the message-level analyses;
//   - content-addressed analysis memoization: an AnalysisCache maps a
//     canonical, order-insensitive hash of (normalized stream
//     multiset, T_cycle, analysis kind, options) to the computed
//     DM/EDF bounds, so repeated fixed points across batch entries,
//     topology iterations, holistic rounds and experiment sweeps are
//     solved once. Opt in via BatchOptions.Cache,
//     TopologyOptions.Cache or HolisticConfig.Cache; results are
//     byte-identical with or without a cache (property-tested), the
//     table is sharded and safe to share between concurrent callers,
//     and memory is bounded with random-replacement eviction. An
//     optional hit-rate policy (AnalysisCache.SetAutoDisable) latches
//     the cache off after a configurable number of lookups below a
//     hit-rate threshold, so all-distinct batches stop paying for key
//     hashing entirely;
//   - batch simulation: SimulateBatch fans many independent network
//     simulations across the shared bounded worker pool with per-run
//     seeds Seed ⊕ FNV-1a(index), so a batch is a pure function of
//     (configs, base seed) — byte-identical at any Parallelism — with
//     context cancellation and per-run completion callbacks;
//   - durable sweep campaigns: a JSON manifest describing a grid of
//     networks × deadline scales × dispatching policies × trials
//     compiles (internal/campaign) into content-addressed jobs — each
//     key the SHA-256 of its fully resolved simulator configuration —
//     executed via SimulateBatch and written through a ResultStore,
//     an append-only, integrity-hashed JSONL file. A killed campaign
//     resumes from its completed jobs, a repeated campaign against the
//     same store is warm-started, and in both cases the assembled
//     table is byte-identical to an uninterrupted run. Table rows
//     stream through a grid-ordered sink (the same row-streaming
//     assembly the experiment harness uses) the moment each row's last
//     job settles. cmd/campaign exposes run/resume/status;
//   - multi-segment topologies: several token rings coupled by
//     store-and-forward bridges that relay selected high-priority
//     streams across rings. A relayed stream inherits its source's
//     period, and its release jitter is the source's response bound
//     plus the bridge latency (the paper's Sec. 4.1 jitter-inheritance
//     model applied across rings), so the target's jitter-inclusive
//     bound is an origin-anchored end-to-end bound. AnalyzeTopology
//     solves that composition as a fixed point over the (validated
//     acyclic) relay graph; SimulateTopology shards the simulator per
//     segment on the shared worker pool, exchanging relayed releases
//     at bridge points between rounds, with per-segment derived seeds
//     so results are byte-identical at any parallelism;
//     AnalyzeTopologyBatch sweeps whole topologies concurrently.
//
// Bridge semantics: a bridge watches one high-priority stream on its
// source ring; every successfully completed cycle of that stream
// releases one request of the designated stream on the destination
// ring, Latency bit times later. The destination stream's own periodic
// release pattern is replaced by the relayed one, and each relay
// carries an end-to-end deadline anchored at the nominal release of the
// chain's origin stream. Relay chains may span any number of rings but
// must be acyclic.
//
// # The Engine facade
//
// The front door to all of the above is the Engine: one long-lived
// value constructed with functional options
//
//	eng := profirt.NewEngine(
//	    profirt.WithParallelism(8),                      // pool width (default GOMAXPROCS)
//	    profirt.WithCache(profirt.NewAnalysisCache(0)),  // shared RTA memo table
//	    profirt.WithStore(store),                        // durable campaign results
//	    profirt.WithRowSink(sink),                       // streamed table rows
//	    profirt.WithProgress(progress),                  // per-job events
//	)
//	defer eng.Close()
//
// owning a single bounded worker pool that every workload shares:
// N concurrent callers are admitted round-robin at job granularity
// onto one worker set instead of each spinning GOMAXPROCS private
// goroutines. Every method is context-first and byte-identical to the
// legacy free function it supersedes, at any parallelism:
//
//	legacy entry point               Engine method
//	------------------------------   ------------------------------------
//	AnalyzeBatch(nets, opts)         Engine.AnalyzeNetworks(ctx, nets, AnalyzeOptions)
//	AnalyzeTopologyBatch(tops, o)    Engine.AnalyzeTopologies(ctx, tops, TopologyAnalyzeOptions)
//	AnalyzeHolistic(cfg)             Engine.AnalyzeHolistic(ctx, cfg)
//	AnalyzeTopology(top, opts)       Engine.AnalyzeTopologies(ctx, []Topology{top}, ...)
//	Simulate(cfg)                    Engine.Simulate(ctx, cfg)
//	SimulateBatch(cfgs, opts)        Engine.SimulateBatch(ctx, cfgs, SimulateOptions)
//	SimulateTopology(t, opts)        Engine.SimulateTopology(ctx, t, TopologySimulateOptions)
//	Campaign.Run(opts)               Engine.RunCampaign(ctx, c, CampaignOptions)
//	experiments (cmd only)           Engine.RunExperiments(ctx, ids, ExperimentOptions)
//
// The per-call knobs that used to ride on every options struct
// (Parallelism, Context, Cache, Store, RowSink, Progress) moved to the
// Engine — configured once, shared by every call — while the options
// structs keep only what genuinely varies per call (DM/EDF tunables,
// seeds, iteration caps). The legacy free functions remain and
// delegate to a lazily built package-default Engine (see Default), so
// existing code keeps compiling and even legacy callers now share one
// bounded pool.
//
// The Engine has a defined lifecycle. Close drains: new calls are
// rejected with ErrEngineClosed, in-flight calls run to completion,
// and only then is the pool released — a call racing Close either
// returns full results or ErrEngineClosed, never a panic or a partial
// batch. Close is idempotent. Stats snapshots the shared machinery
// (pool occupancy and queue depth, per-method call counters, cache
// hits/misses/auto-disable, store size and compactions) at any time,
// including after Close.
//
// # Serving the Engine
//
// cmd/profiserve wraps one shared Engine in an HTTP/JSON server
// (implementation in internal/serve). Request bodies reuse the
// internal/configfile JSON schemas verbatim; responses are
// byte-identical to encoding a direct Engine call's results through
// the same wire types, a property the serve load test holds under
// hundreds of concurrent clients. Endpoints: /v1/analyze/networks,
// /v1/analyze/topologies, /v1/simulate/batch, /v1/simulate/topology,
// and /v1/campaign, which streams NDJSON — one "row" event per
// finished table row in grid order, then a "done" event carrying the
// assembled table. Request deadlines (a timeoutMs body field) and
// client disconnects map to context cancellation; per-client
// in-flight caps return 429; /metrics exports the Engine.Stats
// snapshot plus the server's admission counters as Prometheus text or
// JSON; SIGINT/SIGTERM drain gracefully (intake stops, in-flight
// requests finish, the Engine closes, exit 0).
//
// # Performance
//
// The hot paths are allocation-flattened, and every reuse is pinned by
// the byte-identity equivalence suites under -race: the DM/EDF/FCFS
// fixed-point iterations and the holistic per-master state run on
// sync.Pool-backed scratch buffers; the PROFIBUS simulator and the DES
// core pool event and trace storage across trials with explicit Reset
// paths (value-typed event heap, head-indexed FIFO queues); cache keys
// are screened by a commutative FNV-1a pre-hash and a per-shard
// counting filter, so a guaranteed miss skips the canonical sort and
// SHA-256 entirely; AnalyzeHolistic and AnalyzeTopology memoize whole
// deep-copied results keyed on the full configuration; and the
// experiment harness arms the cache's hit-rate auto-disable before any
// key is hashed, so all-distinct sweeps shed the cache instead of
// paying for it. `make bench` doubles as the perf guard, comparing
// ns/op and allocs/op per benchmark against the committed
// BENCH_results.json baseline (fail past 20% regression) and enforcing
// that the cached experiments suite is never slower than the
// sequential one and that the instrumented Engine stays within the
// observability overhead budget. See the README's "Performance"
// section.
//
// # Observability
//
// internal/obs instruments the whole stack without touching results:
// log-spaced latency histograms on atomic counters record every
// Engine op, pool job (queue wait and run time separately), memoized
// cache lookup and serve endpoint, surfaced through Engine.Stats
// (EngineStats.Latency) and rendered as Prometheus histogram series
// on /metrics; an obs.Tracer carried in the context records
// request-scoped spans (engine.<op>, pool.submit/pool.job,
// memo.lookup, campaign.run/campaign.row, topology.round) and exports
// Chrome trace_event JSON (profiserve -trace-dir writes one file per
// request keyed by X-Request-ID; cmd/campaign -trace traces a whole
// campaign run); profiserve additionally serves net/http/pprof on a
// separate -debug-addr listener and emits structured log/slog access
// records with -log. The governing invariant: timing never influences
// result bytes. internal/obs is the only package permitted to read
// time.Now (enforced by the detrand analyzer); every other layer
// receives an injected obs.Clock, the byte-identity suites run with
// instrumentation enabled, and the bench guard holds the instrumented
// Engine to within 5% of the uninstrumented one with zero extra
// allocations per op.
//
// # Static analysis
//
// The invariants above — determinism at any parallelism, bounded
// concurrency, context threading — are enforced statically by the
// repo's own go/analysis suite (internal/lint, built into
// cmd/profilint, run by `make lint` and CI): detrand forbids
// time.Now() outside internal/obs module-wide and unseeded global
// math/rand draws in result-producing packages, so results stay a
// pure function of (config, seed); mapiter
// forbids map-iteration-order-dependent output (unsorted appends,
// writes to output/hash sinks, early returns of iteration-dependent
// values inside a map range); poolgo confines raw go statements to
// internal/pool, keeping all concurrency on the bounded pool; ctxthread
// requires functions receiving a context.Context to thread it, pinning
// Background()/TODO()/nil contexts to mains, tests and the documented
// nil-ctx default sites; seedmix requires per-job seeds to derive
// through the FNV mix helpers rather than ad-hoc arithmetic. Findings
// are suppressed site-by-site with `//profilint:ignore <analyzer>
// <reason>`, and a missing reason is itself an error. See the README's
// "Static analysis" section and CONTRIBUTING.md.
//
// This root package is a facade: it re-exports the library's primary
// types and entry points so downstream users need a single import. The
// implementation lives in internal packages (one per subsystem); the
// runnable entry points live under cmd/ and examples/. The exported
// surface is pinned in testdata/api.golden (make apicheck).
package profirt
