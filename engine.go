package profirt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"profirt/internal/campaign"
	"profirt/internal/core"
	"profirt/internal/experiments"
	"profirt/internal/holistic"
	"profirt/internal/memo"
	"profirt/internal/obs"
	"profirt/internal/pool"
	"profirt/internal/profibus"
	"profirt/internal/stats"
	"profirt/internal/topology"
)

// Engine is the context-first facade over every workload in this
// package: schedulability analysis (networks, topologies, holistic),
// simulation (single runs, batches, topologies), durable campaigns and
// the experiment harness. One long-lived Engine owns one bounded worker
// pool, an optional shared AnalysisCache and an optional ResultStore;
// every method draws on those shared resources, so any number of
// concurrent callers submit work to the same pool and are admitted
// fairly (round-robin at job granularity) instead of each spinning
// GOMAXPROCS private workers and oversubscribing the machine.
//
// Construct with NewEngine and the With* functional options; the zero
// value is not usable. An Engine is safe for concurrent use — that is
// its purpose. All results are byte-identical to the legacy free
// functions (and to each other) at any parallelism: determinism is owned
// by per-job seed derivation and index-keyed result slots, never by
// scheduling order.
//
// Callbacks installed with WithRowSink/WithProgress (and per-call
// callbacks like SimulateOptions.OnResult) run on pool worker
// goroutines: they must be cheap and concurrency-safe. Calling back
// into the Engine from one is safe but defeats the sharing — the pool
// detects re-entrant submissions and runs them on a private per-call
// pool instead (see pool.Shared), since blocking a worker on work only
// workers can run would deadlock.
type Engine struct {
	pool     *pool.Shared
	cache    *memo.Cache
	store    *memo.Store
	rowSink  func(stats.RowEvent)
	progress func(EngineEvent)

	// Lifecycle: method calls register with begin/end; Close flips
	// closed under closeMu, then waits for registered calls to drain
	// before releasing the pool. Methods on a closed Engine return
	// ErrEngineClosed instead of reaching the pool (whose post-Close
	// submission path panics — the shared-service failure mode this
	// guards against).
	closeMu  sync.Mutex
	closed   bool
	inflight sync.WaitGroup
	calls    atomic.Int64
	// ops holds the per-method lifetime call counters behind
	// Stats().Ops, indexed by obs.Op.
	ops [obs.NumOps]atomic.Int64

	// obs holds the Engine's latency instrumentation (histograms per
	// op, per pool job, per cache/store lookup); nil when disabled via
	// WithObservability(false). Timing is observational only and never
	// reaches result bytes — the determinism contract is unchanged.
	obs *obs.Metrics
}

// ErrEngineClosed is returned by every Engine method called after
// Close: a long-lived service draining for shutdown rejects new work
// with this sentinel while in-flight calls complete.
var ErrEngineClosed = errors.New("profirt: engine is closed")

// begin registers one method call with the Engine's lifecycle and
// bumps its op counter; it fails with ErrEngineClosed once Close has
// been called. The returned start time feeds the op's latency
// histogram (zero when observability is off). Every successful begin
// is paired with a deferred end of the same op.
func (e *Engine) begin(op obs.Op) (time.Time, error) {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.closed {
		return time.Time{}, ErrEngineClosed
	}
	e.inflight.Add(1)
	e.calls.Add(1)
	e.ops[op].Add(1)
	if e.obs != nil {
		return e.obs.Clock.Now(), nil
	}
	return time.Time{}, nil
}

func (e *Engine) end(op obs.Op, start time.Time) {
	if e.obs != nil {
		e.obs.Ops[op].Observe(e.obs.Clock.Now().Sub(start))
	}
	e.calls.Add(-1)
	e.inflight.Done()
}

// EngineEvent reports one settled unit of Engine work to the progress
// callback (WithProgress). Events are emitted concurrently from worker
// goroutines.
type EngineEvent struct {
	// Op identifies the workload: an experiment ID ("E7"), "campaign",
	// "analyze", "topology" or "simulate".
	Op string
	// Done and Total count settled vs scheduled jobs of the current
	// operation.
	Done, Total int
	// Restored marks campaign jobs satisfied from the ResultStore
	// rather than executed.
	Restored bool
}

// EngineOption configures NewEngine.
type EngineOption func(*Engine, *engineSetup)

// engineSetup carries construction-only knobs.
type engineSetup struct {
	parallelism int
	noObs       bool
}

// WithParallelism sets the width of the Engine's worker pool — the
// bound on concurrently executing jobs across every caller of this
// Engine (sequential submissions — effective parallelism 1, including
// single-item batches — run inline on their caller and sit outside
// the bound; see pool.Shared). n <= 0 selects runtime.GOMAXPROCS(0).
func WithParallelism(n int) EngineOption {
	return func(_ *Engine, s *engineSetup) { s.parallelism = n }
}

// WithCache installs the shared analysis memo table consulted by every
// analysis the Engine runs (batch, topology, holistic, campaign
// verdicts, experiments). nil disables caching (the default). The
// cache is caller-owned: the Engine never resets or closes it, and it
// may be shared between several Engines.
func WithCache(c *AnalysisCache) EngineOption {
	return func(e *Engine, _ *engineSetup) { e.cache = c }
}

// WithStore installs the durable result store used by RunCampaign:
// completed jobs are restored from it instead of re-executed, and newly
// executed jobs are written through the moment they finish. nil runs
// campaigns storeless (the default). The store is caller-owned: Close
// it yourself after Engine.Close.
func WithStore(s *ResultStore) EngineOption {
	return func(e *Engine, _ *engineSetup) { e.store = s }
}

// WithRowSink installs a table-row callback: RunCampaign and
// RunExperiments deliver each finished table row through it in grid
// order, the moment the row's last job settles. Called concurrently
// from worker goroutines.
func WithRowSink(sink func(TableRowEvent)) EngineOption {
	return func(e *Engine, _ *engineSetup) { e.rowSink = sink }
}

// WithProgress installs a per-job progress callback. Called
// concurrently from worker goroutines; keep it cheap.
func WithProgress(fn func(EngineEvent)) EngineOption {
	return func(e *Engine, _ *engineSetup) { e.progress = fn }
}

// WithObservability toggles the Engine's latency instrumentation:
// per-op, per-pool-job and per-cache/store-lookup histograms exported
// through Stats().Latency. Enabled by default — recording is a few
// atomic adds plus two clock reads per unit of work and never
// influences results. Disable only for overhead-sensitive
// micro-benchmarks; span tracing (obs.WithTracer on a call's context)
// is independent of this switch.
func WithObservability(enabled bool) EngineOption {
	return func(_ *Engine, s *engineSetup) { s.noObs = !enabled }
}

// NewEngine builds an Engine: one bounded worker pool (WithParallelism,
// default GOMAXPROCS) plus the shared resources selected by the other
// options. Call Close when done with it to release the pool's worker
// goroutines.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{}
	var s engineSetup
	for _, o := range opts {
		o(e, &s)
	}
	if s.noObs {
		e.pool = pool.NewShared(s.parallelism)
		return e
	}
	e.obs = obs.NewMetrics(nil)
	e.pool = pool.NewSharedObserved(s.parallelism, &e.obs.Pool)
	// The cache and store are caller-owned and may be shared between
	// Engines; the last Engine to attach wins, which only redirects
	// where lookup latency is recorded, never what lookups return.
	e.cache.SetLatency(&e.obs.Cache)
	e.store.SetLatency(&e.obs.Store)
	return e
}

// Parallelism returns the width of the Engine's worker pool.
func (e *Engine) Parallelism() int { return e.pool.Workers() }

// Cache returns the Engine's shared analysis cache (nil when caching
// is disabled).
func (e *Engine) Cache() *AnalysisCache { return e.cache }

// Store returns the Engine's durable result store (nil when campaigns
// run storeless).
func (e *Engine) Store() *ResultStore { return e.store }

// Close drains the Engine and releases its worker goroutines: new
// method calls are rejected with ErrEngineClosed the moment Close is
// entered, in-flight calls run to completion, and only then does the
// pool shut down. Close blocks until the drain finishes, is safe to
// call concurrently with method calls from any number of goroutines,
// and is idempotent — a second Close returns nil immediately. The
// cache and store installed at construction are caller-owned and stay
// open.
func (e *Engine) Close() error {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return nil
	}
	e.closed = true
	e.closeMu.Unlock()
	e.inflight.Wait()
	e.pool.Close()
	return nil
}

// EnginePoolStats re-exports the shared pool's occupancy/counter
// snapshot (see pool.Stats).
type EnginePoolStats = pool.Stats

// EngineOpStats counts completed-or-in-flight calls of each Engine
// method since construction.
type EngineOpStats struct {
	// AnalyzeNetworks .. RunExperiments mirror the method names.
	AnalyzeNetworks   int64
	AnalyzeTopologies int64
	AnalyzeHolistic   int64
	Simulate          int64
	SimulateBatch     int64
	SimulateTopology  int64
	RunCampaign       int64
	RunExperiments    int64
}

// LatencySnapshot is a mergeable fixed-bucket latency histogram
// snapshot (see LatencyBucketBounds for the shared bucket layout).
type LatencySnapshot = obs.HistogramSnapshot

// LatencyBucketBounds returns the upper bounds of the finite latency
// histogram buckets shared by every LatencySnapshot, in ascending
// order; Counts[len(bounds)] is the overflow bucket.
func LatencyBucketBounds() []time.Duration { return obs.BucketBounds() }

// EngineOpLatency is one Engine method's latency distribution.
type EngineOpLatency struct {
	// Op is the method's snake_case label (e.g. "analyze_networks"),
	// matching EngineOpStats and the /metrics op labels.
	Op string `json:"op"`
	// Latency is the method's call-duration histogram.
	Latency LatencySnapshot `json:"latency"`
}

// EngineLatencyStats is the histogram half of EngineStats: where the
// counters say how much work ran, these say how long it took and
// where it waited.
type EngineLatencyStats struct {
	// Enabled reports whether the Engine records latency at all
	// (WithObservability). When false every histogram is zero.
	Enabled bool `json:"enabled"`
	// Ops holds one call-duration histogram per Engine method, in the
	// fixed obs.Op order.
	Ops []EngineOpLatency `json:"ops,omitempty"`
	// PoolQueueWait is the submission-enqueue-to-dispatch wait of every
	// worker-run pool job; inline (sequential) jobs never queue and are
	// not counted here.
	PoolQueueWait LatencySnapshot `json:"poolQueueWait"`
	// PoolRun is the execution time of every pool job, worker-run or
	// inline.
	PoolRun LatencySnapshot `json:"poolRun"`
	// CacheLookup times analysis-cache probes (lookups the counting
	// pre-filter resolves without probing are not timed).
	CacheLookup LatencySnapshot `json:"cacheLookup"`
	// StoreLookup times result-store probes, lock wait included.
	StoreLookup LatencySnapshot `json:"storeLookup"`
}

// EngineStats is a point-in-time snapshot of the Engine's shared
// resources: pool occupancy and admission counters, per-method call
// counters, latency histograms, and the cache/store counters when
// those resources are installed (zero otherwise). It is what a
// serving front end exports as its metrics (see internal/serve and
// cmd/profiserve).
type EngineStats struct {
	// Pool reports the shared worker pool: width, jobs executing at
	// the snapshot instant (occupancy), admission-ring depth, and
	// lifetime submission/job counters.
	Pool EnginePoolStats
	// InFlightCalls is the number of Engine method calls currently
	// between begin and return.
	InFlightCalls int64
	// Ops counts calls per Engine method.
	Ops EngineOpStats
	// Latency holds the Engine's latency histograms (zero when
	// observability is disabled).
	Latency EngineLatencyStats
	// Cache snapshots the shared analysis cache (zero when disabled).
	Cache AnalysisCacheStats
	// Store snapshots the durable result store (zero when absent).
	Store ResultStoreStats
	// Closed reports whether Close has been called.
	Closed bool
}

// Stats snapshots the Engine's pool, cache, store and call counters.
// Safe to call from any goroutine at any time — including after Close,
// so a draining server can export its final state.
func (e *Engine) Stats() EngineStats {
	e.closeMu.Lock()
	closed := e.closed
	e.closeMu.Unlock()
	return EngineStats{
		Pool:          e.pool.Stats(),
		InFlightCalls: e.calls.Load(),
		Ops: EngineOpStats{
			AnalyzeNetworks:   e.ops[obs.OpAnalyzeNetworks].Load(),
			AnalyzeTopologies: e.ops[obs.OpAnalyzeTopologies].Load(),
			AnalyzeHolistic:   e.ops[obs.OpAnalyzeHolistic].Load(),
			Simulate:          e.ops[obs.OpSimulate].Load(),
			SimulateBatch:     e.ops[obs.OpSimulateBatch].Load(),
			SimulateTopology:  e.ops[obs.OpSimulateTopology].Load(),
			RunCampaign:       e.ops[obs.OpRunCampaign].Load(),
			RunExperiments:    e.ops[obs.OpRunExperiments].Load(),
		},
		Latency: e.latencyStats(),
		Cache:   e.cache.Stats(),
		Store:   e.store.Stats(),
		Closed:  closed,
	}
}

// latencyStats snapshots every histogram the Engine records.
func (e *Engine) latencyStats() EngineLatencyStats {
	if e.obs == nil {
		return EngineLatencyStats{}
	}
	ls := EngineLatencyStats{
		Enabled:       true,
		Ops:           make([]EngineOpLatency, 0, obs.NumOps),
		PoolQueueWait: e.obs.Pool.QueueWait.Snapshot(),
		PoolRun:       e.obs.Pool.Run.Snapshot(),
		CacheLookup:   e.obs.Cache.Lookup.Snapshot(),
		StoreLookup:   e.obs.Store.Lookup.Snapshot(),
	}
	for op := obs.Op(0); int(op) < obs.NumOps; op++ {
		ls.Ops = append(ls.Ops, EngineOpLatency{Op: op.String(), Latency: e.obs.Ops[op].Snapshot()})
	}
	return ls
}

// defaultEngine backs the legacy free functions (AnalyzeBatch,
// AnalyzeTopologyBatch, SimulateBatch): they delegate to one lazily
// built package-default Engine, so even legacy callers share a single
// bounded pool instead of spinning per-call workers.
var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the package-default Engine: GOMAXPROCS workers, no
// cache, no store, built on first use and never closed. The legacy
// free functions run on it; new code should construct its own Engine
// and choose its resources explicitly.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = NewEngine() })
	return defaultEngine
}

// note emits one progress event when a progress callback is installed.
func (e *Engine) note(op string, done *atomic.Int64, total int, restored bool) {
	if e.progress != nil {
		e.progress(EngineEvent{Op: op, Done: int(done.Add(1)), Total: total, Restored: restored})
	}
}

// AnalyzeOptions tunes Engine.AnalyzeNetworks. Unlike the legacy
// BatchOptions there is no MaxIterations field here: the network
// analyses solve their fixed points to completion and the knob never
// applied to them (it tunes the cross-segment jitter fixed point of
// the topology analyses — see TopologyAnalyzeOptions).
type AnalyzeOptions struct {
	// DM tunes the Eq. 16 analysis applied to every network.
	DM DMMessageOptions
	// EDF tunes the Eqs. 17–18 analysis applied to every network.
	EDF EDFMessageOptions
}

// AnalyzeNetworks evaluates the FCFS, DM and EDF schedulability
// analyses for many network configurations on the Engine's shared
// pool. Results are returned in input order (out[i] describes nets[i])
// and are byte-identical at any parallelism. Cancel via ctx to stop
// early; networks not yet evaluated come back with Skipped set. The
// only error is ErrEngineClosed, after Close.
func (e *Engine) AnalyzeNetworks(ctx context.Context, nets []Network, opts AnalyzeOptions) ([]BatchResult, error) {
	start, err := e.begin(obs.OpAnalyzeNetworks)
	if err != nil {
		return nil, err
	}
	defer e.end(obs.OpAnalyzeNetworks, start)
	ctx, sp := obs.StartSpan(ctx, "engine.analyze_networks")
	defer sp.End()
	return e.analyzeNetworks(ctx, nets, opts.DM, opts.EDF, e.cache, 0), nil
}

// analyzeNetworks is the shared implementation behind AnalyzeNetworks
// and the legacy AnalyzeBatch: explicit cache and per-call in-flight
// limit so the legacy per-call knobs keep working.
func (e *Engine) analyzeNetworks(ctx context.Context, nets []Network, dm DMMessageOptions, edf EDFMessageOptions, cache *AnalysisCache, limit int) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	// Every slot starts Skipped; a dispatched job overwrites its own.
	// Indices the pool never dispatches after cancellation thus come
	// back marked, with no post-pass.
	out := make([]BatchResult, len(nets))
	for i := range out {
		out[i] = BatchResult{Index: i, Skipped: true}
	}
	var done atomic.Int64
	e.pool.RunJobs(ctx, limit, len(nets), func(jctx context.Context, i int) {
		if ctx.Err() != nil {
			return
		}
		r := BatchResult{Index: i}
		r.FCFS.Schedulable, r.FCFS.Verdicts = core.FCFSSchedulable(nets[i])
		r.DM.Schedulable, r.DM.Verdicts = memo.DMSchedulableCtx(jctx, cache, nets[i], dm)
		r.EDF.Schedulable, r.EDF.Verdicts = memo.EDFSchedulableNetCtx(jctx, cache, nets[i], edf)
		out[i] = r
		e.note("analyze", &done, len(nets), false)
	})
	return out
}

// TopologyAnalyzeOptions tunes Engine.AnalyzeTopologies.
type TopologyAnalyzeOptions struct {
	// DM and EDF tune the per-segment analyses.
	DM  DMMessageOptions
	EDF EDFMessageOptions
	// MaxIterations caps each topology's cross-segment jitter fixed
	// point; 0 selects the default (64), negative values are rejected.
	MaxIterations int
}

// AnalyzeTopologies evaluates AnalyzeTopology for many bridged
// multi-segment configurations on the Engine's shared pool, with the
// same ordering, determinism and cancellation contract as
// AnalyzeNetworks. It returns an error only for invalid options;
// per-topology structural errors land in each result's Err field.
func (e *Engine) AnalyzeTopologies(ctx context.Context, tops []Topology, opts TopologyAnalyzeOptions) ([]TopologyBatchResult, error) {
	start, err := e.begin(obs.OpAnalyzeTopologies)
	if err != nil {
		return nil, err
	}
	defer e.end(obs.OpAnalyzeTopologies, start)
	ctx, sp := obs.StartSpan(ctx, "engine.analyze_topologies")
	defer sp.End()
	if opts.MaxIterations < 0 {
		return nil, fmt.Errorf("profirt: AnalyzeTopologies: MaxIterations must be non-negative, got %d", opts.MaxIterations)
	}
	return e.analyzeTopologies(ctx, tops, topology.Options{
		DM: opts.DM, EDF: opts.EDF, MaxIterations: opts.MaxIterations, Cache: e.cache,
	}, 0), nil
}

// analyzeTopologies is the shared implementation behind
// AnalyzeTopologies and the legacy AnalyzeTopologyBatch.
func (e *Engine) analyzeTopologies(ctx context.Context, tops []Topology, topts topology.Options, limit int) []TopologyBatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]TopologyBatchResult, len(tops))
	for i := range out {
		out[i] = TopologyBatchResult{Index: i, Skipped: true}
	}
	var done atomic.Int64
	e.pool.RunContext(ctx, limit, len(tops), func(i int) {
		if ctx.Err() != nil {
			return
		}
		r := TopologyBatchResult{Index: i}
		r.Result, r.Err = topology.Analyze(tops[i], topts)
		out[i] = r
		e.note("topology", &done, len(tops), false)
	})
	return out
}

// AnalyzeHolistic solves the coupled task/message/delivery fixed point
// (Secs. 4.1–4.2 composed with Sec. 2) for cfg. The Engine's shared
// cache memoizes the message-level analyses unless cfg.Cache is
// already set. The fixed point itself is a single sequential
// computation; ctx is consulted before it starts.
func (e *Engine) AnalyzeHolistic(ctx context.Context, cfg HolisticConfig) (HolisticResult, error) {
	start, err := e.begin(obs.OpAnalyzeHolistic)
	if err != nil {
		return HolisticResult{}, err
	}
	defer e.end(obs.OpAnalyzeHolistic, start)
	_, sp := obs.StartSpan(ctx, "engine.analyze_holistic")
	defer sp.End()
	if ctx != nil && ctx.Err() != nil {
		return HolisticResult{}, ctx.Err()
	}
	if cfg.Cache == nil {
		cfg.Cache = e.cache
	}
	return holistic.Analyze(cfg)
}

// Simulate runs one PROFIBUS network simulation. A single run is one
// sequential discrete-event computation, so it executes on the calling
// goroutine; use SimulateBatch to fan independent runs across the
// pool. ctx is consulted before the run starts.
func (e *Engine) Simulate(ctx context.Context, cfg SimConfig) (SimResult, error) {
	start, err := e.begin(obs.OpSimulate)
	if err != nil {
		return SimResult{}, err
	}
	defer e.end(obs.OpSimulate, start)
	_, sp := obs.StartSpan(ctx, "engine.simulate")
	defer sp.End()
	if ctx != nil && ctx.Err() != nil {
		return SimResult{}, ctx.Err()
	}
	return profibus.Simulate(cfg)
}

// SimulateOptions tunes Engine.SimulateBatch.
type SimulateOptions struct {
	// Seed is the batch base seed: run i simulates cfgs[i] with its
	// Seed field replaced by Seed ⊕ FNV-1a(i) (SimBatchSeed), unless
	// ConfigSeeds is set.
	Seed int64
	// ConfigSeeds uses each config's Seed verbatim instead of the
	// derived one.
	ConfigSeeds bool
	// OnResult receives each run's result the moment its simulation
	// completes, concurrently from worker goroutines.
	OnResult func(SimBatchResult)
}

// SimulateBatch runs many independent network simulations on the
// Engine's shared pool. Results return in input order and are
// byte-identical at any parallelism (per-run seed derivation, see
// SimulateOptions.Seed). Cancel via ctx; runs not yet started come
// back with Skipped set. The only error is ErrEngineClosed, after
// Close.
func (e *Engine) SimulateBatch(ctx context.Context, cfgs []SimConfig, opts SimulateOptions) ([]SimBatchResult, error) {
	start, err := e.begin(obs.OpSimulateBatch)
	if err != nil {
		return nil, err
	}
	defer e.end(obs.OpSimulateBatch, start)
	ctx, sp := obs.StartSpan(ctx, "engine.simulate_batch")
	defer sp.End()
	onResult := opts.OnResult
	if e.progress != nil {
		var done atomic.Int64
		inner := onResult
		onResult = func(r SimBatchResult) {
			if inner != nil {
				inner(r)
			}
			e.note("simulate", &done, len(cfgs), false)
		}
	}
	return profibus.SimulateBatch(cfgs, profibus.BatchOptions{
		Pool:        e.pool,
		Context:     ctx,
		Seed:        opts.Seed,
		ConfigSeeds: opts.ConfigSeeds,
		OnResult:    onResult,
	}), nil
}

// TopologySimulateOptions tunes Engine.SimulateTopology.
type TopologySimulateOptions struct {
	// MaxRounds caps the bridge-exchange fixed point (0 selects the
	// default: relay count + 2).
	MaxRounds int
	// OnRound, when non-nil, is called at each round barrier after that
	// round's segment simulations complete, with the 1-based round
	// number. It runs on the submitting goroutine between rounds.
	OnRound func(round int)
}

// SimulateTopology runs the sharded multi-segment simulation with the
// per-round segment shards executing on the Engine's shared pool.
// Results are byte-identical at any parallelism. Cancelling ctx stops
// the bridge-exchange fixed point at the next round barrier and
// returns ctx.Err(), so a dead client or an expired deadline costs at
// most one round of segment simulations.
func (e *Engine) SimulateTopology(ctx context.Context, t SimTopology, opts TopologySimulateOptions) (TopologySimResult, error) {
	start, err := e.begin(obs.OpSimulateTopology)
	if err != nil {
		return TopologySimResult{}, err
	}
	defer e.end(obs.OpSimulateTopology, start)
	ctx, sp := obs.StartSpan(ctx, "engine.simulate_topology")
	defer sp.End()
	return topology.Simulate(t, topology.SimOptions{
		Pool:      e.pool,
		Context:   ctx,
		MaxRounds: opts.MaxRounds,
		OnRound:   opts.OnRound,
	})
}

// CampaignOptions tunes Engine.RunCampaign.
type CampaignOptions struct {
	// StopAfter, when positive, cancels the campaign after that many
	// newly executed jobs — the deterministic stand-in for kill -9 used
	// by resume tests.
	StopAfter int
	// RowSink, when non-nil, overrides the Engine's WithRowSink for
	// this call: finished table rows stream to it in grid order. A
	// serving front end uses this to direct one request's rows at that
	// request's response stream.
	RowSink func(TableRowEvent)
}

// RunCampaign executes a compiled campaign on the Engine's shared
// pool: jobs found in the Engine's ResultStore (WithStore) are
// restored, the rest are simulated and written through as they land,
// and the table assembles with rows streaming to the Engine's row sink
// in grid order. The finished table is a pure function of the
// manifest — independent of parallelism, interruptions and restores.
func (e *Engine) RunCampaign(ctx context.Context, c *Campaign, opts CampaignOptions) (CampaignRunResult, error) {
	start, err := e.begin(obs.OpRunCampaign)
	if err != nil {
		return CampaignRunResult{}, err
	}
	defer e.end(obs.OpRunCampaign, start)
	ctx, sp := obs.StartSpan(ctx, "engine.run_campaign")
	defer sp.End()
	var progress func(CampaignEvent)
	if e.progress != nil {
		progress = func(ev CampaignEvent) {
			e.progress(EngineEvent{Op: "campaign", Done: ev.Done, Total: ev.Total, Restored: ev.Restored})
		}
	}
	rowSink := e.rowSink
	if opts.RowSink != nil {
		rowSink = opts.RowSink
	}
	return c.Run(campaign.RunOptions{
		Pool:      e.pool,
		Context:   ctx,
		Store:     e.store,
		Cache:     e.cache,
		RowSink:   rowSink,
		Progress:  progress,
		StopAfter: opts.StopAfter,
	})
}

// ExperimentInfo describes one experiment driver.
type ExperimentInfo struct {
	// ID is the experiment key (e.g. "E7").
	ID string
	// Title is a one-line description.
	Title string
	// Anchor names the paper equation/section the experiment validates.
	Anchor string
}

// Experiments lists the available experiment drivers (E1–E13) in index
// order.
func Experiments() []ExperimentInfo {
	all := experiments.All()
	out := make([]ExperimentInfo, len(all))
	for i, ex := range all {
		out[i] = ExperimentInfo{ID: ex.ID, Title: ex.Title, Anchor: ex.Anchor}
	}
	return out
}

// ExperimentOptions tunes Engine.RunExperiments.
type ExperimentOptions struct {
	// Seed drives all randomness; equal seeds reproduce tables exactly.
	// 0 selects the default seed (1, the EXPERIMENTS.md configuration).
	Seed int64
	// Trials is the number of random instances per grid cell; 0 selects
	// the default (40 full-size, 8 with Quick).
	Trials int
	// Quick reduces the parameter grids to smoke-test size.
	Quick bool
	// TrialShardMin sets the trial count at which a grid cell splits
	// into per-trial pool jobs; 0 selects the default (16), negative
	// disables sharding.
	TrialShardMin int
	// RowSink, when non-nil, overrides the Engine's WithRowSink for
	// this call: finished table rows stream to it in grid order.
	RowSink func(TableRowEvent)
}

// ExperimentResult is one experiment's outcome.
type ExperimentResult struct {
	// ID, Title and Anchor echo the driver's metadata.
	ID, Title, Anchor string
	// Tables holds the regenerated table(s).
	Tables []*Table
}

// Table re-exports the experiment/campaign result table type.
type Table = stats.Table

// RenderTable writes a table to w in the given format ("plain", "md"
// or "csv").
var RenderTable = stats.Render

// RunExperiments regenerates the reproduction tables for the named
// experiments (nil or empty ids means all of E1–E13) on the Engine's
// shared pool, with the Engine's cache memoizing repeated fixed points
// and finished rows streaming to the Engine's row sink. Tables are
// byte-identical at any parallelism. Cancelling ctx abandons cells not
// yet dispatched, so the affected tables come back partial.
func (e *Engine) RunExperiments(ctx context.Context, ids []string, opts ExperimentOptions) ([]ExperimentResult, error) {
	start, err := e.begin(obs.OpRunExperiments)
	if err != nil {
		return nil, err
	}
	defer e.end(obs.OpRunExperiments, start)
	ctx, sp := obs.StartSpan(ctx, "engine.run_experiments")
	defer sp.End()
	cfg := experiments.DefaultConfig()
	if opts.Quick {
		cfg = experiments.QuickConfig()
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Trials > 0 {
		cfg.Trials = opts.Trials
	}
	cfg.TrialShardMin = opts.TrialShardMin
	cfg.Pool = e.pool
	cfg.Context = ctx
	cfg.Cache = e.cache
	cfg.RowSink = e.rowSink
	if opts.RowSink != nil {
		cfg.RowSink = opts.RowSink
	}
	if e.progress != nil {
		cfg.Progress = func(ev experiments.ProgressEvent) {
			e.progress(EngineEvent{Op: ev.Experiment, Done: ev.Done, Total: ev.Total})
		}
	}

	var toRun []experiments.Experiment
	if len(ids) == 0 {
		toRun = experiments.All()
	} else {
		for _, id := range ids {
			ex, ok := experiments.ByID(id)
			if !ok {
				return nil, fmt.Errorf("profirt: unknown experiment %q", id)
			}
			toRun = append(toRun, ex)
		}
	}
	out := make([]ExperimentResult, 0, len(toRun))
	for _, ex := range toRun {
		if ctx != nil && ctx.Err() != nil {
			return out, ctx.Err()
		}
		out = append(out, ExperimentResult{
			ID: ex.ID, Title: ex.Title, Anchor: ex.Anchor, Tables: ex.Run(cfg),
		})
	}
	return out, nil
}
