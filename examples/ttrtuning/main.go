// TTR tuning: Eq. 15 gives the largest target token rotation time that
// keeps all high-priority traffic schedulable under stock FCFS
// PROFIBUS. This example computes the bound for the DCCS cell, sweeps
// T_TR across it, and shows (a) the analysis flipping exactly at the
// bound and (b) simulated deadline behaviour on both sides — the
// analysis is sufficient, so misses can only appear above the bound.
//
// Run with: go run ./examples/ttrtuning
package main

import (
	"fmt"

	"profirt"
	"profirt/internal/ap"
	"profirt/internal/profibus"
	"profirt/internal/workload"
)

func main() {
	probe, _ := workload.DCCSCell(ap.FCFS, 1_000)
	bound, err := profirt.MaxTTR(probe)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Eq. 15: largest schedulable TTR for the DCCS cell = %v bit times\n\n", bound)

	fmt.Printf("%-10s %-18s %-12s %-14s\n", "TTR", "Eq.12 verdict", "sim misses", "worst TRR/bound")
	for _, factor := range []float64{0.25, 0.5, 0.75, 1.0, 1.25, 2.0, 4.0} {
		ttr := profirt.Ticks(float64(bound) * factor)
		if ttr < 1 {
			ttr = 1
		}
		net, cfg := workload.DCCSCell(ap.FCFS, ttr)
		ok, _ := profirt.FCFSSchedulable(net)
		res, err := profibus.Simulate(cfg)
		if err != nil {
			panic(err)
		}
		var misses int64
		for mi, m := range res.PerMaster {
			for si, st := range m.PerStream {
				if cfg.Masters[mi].Streams[si].High {
					misses += st.Missed
				}
			}
		}
		verdict := "schedulable"
		if !ok {
			verdict = "NOT schedulable"
		}
		fmt.Printf("%-10v %-18s %-12d %v/%v\n",
			ttr, verdict, misses, res.WorstTRR(), net.TokenCycle())
	}

	fmt.Println("\nNote: Eq. 15 is sufficient, not necessary — above the bound the")
	fmt.Println("analysis rejects while the simulation may still meet all deadlines.")
	fmt.Println("Larger TTR buys low-priority throughput at the cost of high-priority")
	fmt.Println("worst-case latency (R = nh·(TTR + T_del)).")
}
