// TTR tuning: Eq. 15 gives the largest target token rotation time that
// keeps all high-priority traffic schedulable under stock FCFS
// PROFIBUS. This example computes the bound for the DCCS cell, sweeps
// T_TR across it — the whole sweep is one Engine.AnalyzeNetworks call
// plus one Engine.SimulateBatch call — and shows (a) the analysis
// flipping exactly at the bound and (b) simulated deadline behaviour on
// both sides — the analysis is sufficient, so misses can only appear
// above the bound.
//
// Run with: go run ./examples/ttrtuning
package main

import (
	"context"
	"fmt"

	"profirt"
	"profirt/internal/ap"
	"profirt/internal/workload"
)

func main() {
	probe, _ := workload.DCCSCell(ap.FCFS, 1_000)
	bound, err := profirt.MaxTTR(probe)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Eq. 15: largest schedulable TTR for the DCCS cell = %v bit times\n\n", bound)

	// Build the sweep once, then run it as two Engine batch calls: the
	// Eq. 12 verdicts for every TTR and the matching simulations
	// (ConfigSeeds keeps each cell's own seed, so results match
	// one-at-a-time runs exactly).
	factors := []float64{0.25, 0.5, 0.75, 1.0, 1.25, 2.0, 4.0}
	nets := make([]profirt.Network, len(factors))
	cfgs := make([]profirt.SimConfig, len(factors))
	for i, factor := range factors {
		ttr := profirt.Ticks(float64(bound) * factor)
		if ttr < 1 {
			ttr = 1
		}
		nets[i], cfgs[i] = workload.DCCSCell(ap.FCFS, ttr)
	}
	eng := profirt.NewEngine()
	defer eng.Close()
	ctx := context.Background()
	analyses, err := eng.AnalyzeNetworks(ctx, nets, profirt.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	sims, err := eng.SimulateBatch(ctx, cfgs, profirt.SimulateOptions{ConfigSeeds: true})
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-10s %-18s %-12s %-14s\n", "TTR", "Eq.12 verdict", "sim misses", "worst TRR/bound")
	for i := range factors {
		if sims[i].Err != nil {
			panic(sims[i].Err)
		}
		res := sims[i].Result
		var misses int64
		for mi, m := range res.PerMaster {
			for si, st := range m.PerStream {
				if cfgs[i].Masters[mi].Streams[si].High {
					misses += st.Missed
				}
			}
		}
		verdict := "schedulable"
		if !analyses[i].FCFS.Schedulable {
			verdict = "NOT schedulable"
		}
		fmt.Printf("%-10v %-18s %-12d %v/%v\n",
			nets[i].TTR, verdict, misses, res.WorstTRR(), nets[i].TokenCycle())
	}

	fmt.Println("\nNote: Eq. 15 is sufficient, not necessary — above the bound the")
	fmt.Println("analysis rejects while the simulation may still meet all deadlines.")
	fmt.Println("Larger TTR buys low-priority throughput at the cost of high-priority")
	fmt.Println("worst-case latency (R = nh·(TTR + T_del)).")
}
