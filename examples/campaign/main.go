// Durable sweep campaigns: this walkthrough runs the manifest in this
// directory three ways — uninterrupted, killed mid-run and resumed,
// and warm-started against the finished store — and shows all three
// produce byte-identical tables, with the store absorbing every
// completed job the moment it lands. Each phase is an Engine
// constructed with the resources it needs (worker pool width, result
// store, row sink); it also demonstrates Engine.SimulateBatch directly
// (the layer underneath campaigns).
//
// Run with: go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"profirt"
)

func main() {
	c, err := profirt.LoadCampaign("examples/campaign/manifest.json")
	if err != nil {
		// Allow running from inside the directory too.
		if c, err = profirt.LoadCampaign("manifest.json"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("campaign %q: %d jobs across %d table rows\n\n",
		c.Manifest.Name, len(c.Jobs()), c.Rows())

	dir, err := os.MkdirTemp("", "campaign-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ctx := context.Background()

	// 1. Uninterrupted, storeless run with rows streaming as they land.
	fmt.Println("--- uninterrupted run (rows stream in grid order) ---")
	fullEng := profirt.NewEngine(profirt.WithRowSink(func(e profirt.TableRowEvent) {
		fmt.Printf("  row %d/%d settled\n", e.Index+1, e.Total)
	}))
	full, err := fullEng.RunCampaign(ctx, c, profirt.CampaignOptions{})
	fullEng.Close()
	if err != nil {
		log.Fatal(err)
	}

	// 2. A killed campaign: the store persists every completed job, so
	// the resume only executes the remainder.
	store, err := profirt.OpenResultStore(filepath.Join(dir, "results.jsonl"), c.Hash[:])
	if err != nil {
		log.Fatal(err)
	}
	killEng := profirt.NewEngine(profirt.WithParallelism(2), profirt.WithStore(store))
	killed, err := killEng.RunCampaign(ctx, c, profirt.CampaignOptions{
		StopAfter: 4, // stand-in for kill -9 at an arbitrary point
	})
	killEng.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- killed after %d executed jobs (%d skipped) ---\n",
		killed.Executed, killed.Skipped)

	// 3. Resume and warm start share one Engine: the store is an Engine
	// resource, so repeated RunCampaign calls restore from it.
	eng := profirt.NewEngine(profirt.WithStore(store))
	defer eng.Close()
	resumed, err := eng.RunCampaign(ctx, c, profirt.CampaignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resume: %d restored from disk, %d executed\n",
		resumed.Restored, resumed.Executed)
	fmt.Printf("resumed table identical to uninterrupted: %v\n",
		resumed.Table.String() == full.Table.String())

	// Warm start: a repeated campaign against the same store executes
	// nothing at all.
	warm, err := eng.RunCampaign(ctx, c, profirt.CampaignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm start: %d restored, %d executed; store stats %+v\n\n",
		warm.Restored, warm.Executed, store.Stats())
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Println(full.Table.String())

	// Engine.SimulateBatch is the layer underneath campaigns:
	// independent simulations with per-run seeds Seed ⊕ FNV(index),
	// deterministic at any parallelism.
	cfgs := make([]profirt.SimConfig, 0, 4)
	for _, j := range c.Jobs()[:4] {
		cfgs = append(cfgs, j.Config)
	}
	seqEng := profirt.NewEngine(profirt.WithParallelism(1))
	seq, err := seqEng.SimulateBatch(ctx, cfgs, profirt.SimulateOptions{Seed: 9})
	if err != nil {
		panic(err)
	}
	seqEng.Close()
	parEng := profirt.NewEngine(profirt.WithParallelism(runtime.GOMAXPROCS(0)))
	par, err := parEng.SimulateBatch(ctx, cfgs, profirt.SimulateOptions{Seed: 9})
	if err != nil {
		panic(err)
	}
	parEng.Close()
	agree := true
	for i := range seq {
		if seq[i].Result.WorstTRR() != par[i].Result.WorstTRR() {
			agree = false
		}
	}
	fmt.Printf("SimulateBatch sequential == parallel: %v\n", agree)
}
