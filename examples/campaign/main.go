// Durable sweep campaigns: this walkthrough runs the manifest in this
// directory three ways — uninterrupted, killed mid-run and resumed,
// and warm-started against the finished store — and shows all three
// produce byte-identical tables, with the store absorbing every
// completed job the moment it lands. It also demonstrates SimulateBatch
// directly (the engine underneath) and the row-streaming sink.
//
// Run with: go run ./examples/campaign
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"profirt"
)

func main() {
	c, err := profirt.LoadCampaign("examples/campaign/manifest.json")
	if err != nil {
		// Allow running from inside the directory too.
		if c, err = profirt.LoadCampaign("manifest.json"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("campaign %q: %d jobs across %d table rows\n\n",
		c.Manifest.Name, len(c.Jobs()), c.Rows())

	dir, err := os.MkdirTemp("", "campaign-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Uninterrupted, storeless run with rows streaming as they land.
	fmt.Println("--- uninterrupted run (rows stream in grid order) ---")
	full, err := c.Run(profirt.CampaignRunOptions{
		RowSink: func(e profirt.TableRowEvent) {
			fmt.Printf("  row %d/%d settled\n", e.Index+1, e.Total)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A killed campaign: the store persists every completed job, so
	// the resume only executes the remainder.
	store, err := profirt.OpenResultStore(filepath.Join(dir, "results.jsonl"), c.Hash[:])
	if err != nil {
		log.Fatal(err)
	}
	killed, err := c.Run(profirt.CampaignRunOptions{
		Parallelism: 2,
		Store:       store,
		StopAfter:   4, // stand-in for kill -9 at an arbitrary point
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- killed after %d executed jobs (%d skipped) ---\n",
		killed.Executed, killed.Skipped)

	resumed, err := c.Run(profirt.CampaignRunOptions{Store: store})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resume: %d restored from disk, %d executed\n",
		resumed.Restored, resumed.Executed)
	fmt.Printf("resumed table identical to uninterrupted: %v\n",
		resumed.Table.String() == full.Table.String())

	// 3. Warm start: a repeated campaign against the same store
	// executes nothing at all.
	warm, err := c.Run(profirt.CampaignRunOptions{Store: store})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm start: %d restored, %d executed; store stats %+v\n\n",
		warm.Restored, warm.Executed, store.Stats())
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Println(full.Table.String())

	// SimulateBatch is the engine underneath: independent simulations
	// with per-run seeds Seed ⊕ FNV(index), deterministic at any
	// parallelism.
	cfgs := make([]profirt.SimConfig, 0, 4)
	for _, j := range c.Jobs()[:4] {
		cfgs = append(cfgs, j.Config)
	}
	seq := profirt.SimulateBatch(cfgs, profirt.SimBatchOptions{Parallelism: 1, Seed: 9})
	par := profirt.SimulateBatch(cfgs, profirt.SimBatchOptions{Parallelism: runtime.GOMAXPROCS(0), Seed: 9})
	agree := true
	for i := range seq {
		if seq[i].Result.WorstTRR() != par[i].Result.WorstTRR() {
			agree = false
		}
	}
	fmt.Printf("SimulateBatch sequential == parallel: %v\n", agree)
}
