// End-to-end: the holistic composition of the paper's Sections 2 and 4
// (Sec. 4.1–4.2). Application tasks on each master generate message
// requests; messages inherit the generating task's response time as
// release jitter; a delivery task processes the response. The coupled
// bounds are solved as a fixed point and decomposed into the paper's
// E = g + Q + C + d.
//
// Run with: go run ./examples/endtoend
package main

import (
	"context"
	"fmt"

	"profirt"
)

func main() {
	tx := func(name string, cGen, period, ch, dMsg, delivery, deadline profirt.Ticks) profirt.HolisticTransaction {
		return profirt.HolisticTransaction{
			Name: name,
			Generation: profirt.Task{
				Name: name + ".gen", C: cGen, D: period / 2, T: period,
			},
			Stream:   profirt.Stream{Name: name + ".msg", Ch: ch, D: dMsg},
			Delivery: delivery,
			Deadline: deadline,
		}
	}

	cfg := profirt.HolisticConfig{
		TTR:       1_000,
		TokenPass: 70,
		Masters: []profirt.HolisticMaster{
			{
				Name:       "plc",
				Dispatcher: profirt.DM,
				Transactions: []profirt.HolisticTransaction{
					tx("pressure", 400, 20_000, 400, 10_000, 200, 16_000),
					tx("valve", 600, 40_000, 450, 20_000, 300, 30_000),
					tx("logging", 900, 80_000, 500, 60_000, 500, 70_000),
				},
			},
			{
				Name:       "drive",
				Dispatcher: profirt.DM,
				LongestLow: 600,
				Transactions: []profirt.HolisticTransaction{
					tx("axis", 500, 30_000, 500, 15_000, 250, 24_000),
				},
			},
		},
	}

	// The holistic fixed point runs through an Engine like every other
	// workload; a sweep of configurations would share its pool and
	// analysis cache.
	eng := profirt.NewEngine(profirt.WithCache(profirt.NewAnalysisCache(0)))
	defer eng.Close()
	res, err := eng.AnalyzeHolistic(context.Background(), cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("fixed point converged in %d iterations; T_cycle = %v\n",
		res.Iterations, res.TokenCycle)
	fmt.Printf("system schedulable: %v\n\n", res.Schedulable)

	fmt.Printf("%-10s %-10s %8s %8s %8s %8s %10s %10s %-4s\n",
		"master", "txn", "g", "Q", "C", "d", "E total", "deadline", "ok")
	for _, tr := range res.Transactions {
		b := tr.Breakdown
		fmt.Printf("%-10s %-10s %8v %8v %8v %8v %10v %10v %-4v\n",
			tr.Master, tr.Name,
			b.Generation, b.Queuing, b.Cycle, b.Delivery,
			b.Total(), tr.Deadline, tr.OK)
	}

	fmt.Println("\nReading: g is the generation task's host response (it doubles as")
	fmt.Println("the message's release jitter per Sec. 4.1), Q the AP+stack queuing")
	fmt.Println("delay on the bus, C the message cycle, d the delivery processing.")
	fmt.Println("Inflate any component and the fixed point propagates the change")
	fmt.Println("through the others.")
}
