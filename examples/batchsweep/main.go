// Batch sweep: Engine.AnalyzeNetworks evaluates the FCFS/DM/EDF
// schedulability analyses for many network configurations concurrently
// on the Engine's shared worker pool. This example draws a grid of
// random networks — TTR settings × deadline-tightening factors, several
// instances each — and compares how many configurations each policy
// keeps schedulable, sequentially and in parallel, showing the two
// passes agree cell for cell. It also demonstrates cancelling a batch
// through the context every Engine method takes first.
//
// Run with: go run ./examples/batchsweep
package main

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"profirt"
	"profirt/internal/obs"
	"profirt/internal/workload"
)

const instancesPerCell = 10

func main() {
	ttrs := []profirt.Ticks{2_000, 4_000, 8_000}
	scales := []float64{1.0, 0.5, 0.25}

	// Draw the sweep: one analytic Network per (TTR, scale, instance).
	rng := rand.New(rand.NewSource(42))
	var nets []profirt.Network
	for _, ttr := range ttrs {
		p := workload.DefaultStreamSetParams()
		p.Masters, p.StreamsPerMaster = 3, 3
		p.TTR = ttr
		for _, scale := range scales {
			for k := 0; k < instancesPerCell; k++ {
				net, cfg := workload.StreamSet(rng, p)
				net, _ = workload.ScaleDeadlines(net, cfg, scale)
				nets = append(nets, net)
			}
		}
	}

	// Two Engines only to stage the sequential-vs-parallel race; a real
	// program constructs one and shares it everywhere.
	ctx := context.Background()
	seqEng := profirt.NewEngine(profirt.WithParallelism(1))
	defer seqEng.Close()
	parEng := profirt.NewEngine()
	defer parEng.Close()

	seqStart := obs.Now()
	seq, err := seqEng.AnalyzeNetworks(ctx, nets, profirt.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	seqDur := obs.Now().Sub(seqStart)

	parStart := obs.Now()
	par, err := parEng.AnalyzeNetworks(ctx, nets, profirt.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	parDur := obs.Now().Sub(parStart)

	for i := range seq {
		if !sameVerdicts(seq[i], par[i]) {
			panic(fmt.Sprintf("network %d: sequential and parallel verdicts differ", i))
		}
	}
	fmt.Printf("analyzed %d networks: sequential %v, parallel (%d workers) %v — identical verdicts\n\n",
		len(nets), seqDur, runtime.GOMAXPROCS(0), parDur)

	fmt.Printf("%-8s %-8s %-12s %-12s %-12s\n", "TTR", "scale", "FCFS ok", "DM ok", "EDF ok")
	i := 0
	for _, ttr := range ttrs {
		for _, scale := range scales {
			var f, d, e int
			for k := 0; k < instancesPerCell; k++ {
				r := par[i]
				i++
				if r.FCFS.Schedulable {
					f++
				}
				if r.DM.Schedulable {
					d++
				}
				if r.EDF.Schedulable {
					e++
				}
			}
			fmt.Printf("%-8v %-8.2f %-12s %-12s %-12s\n", ttr, scale,
				frac(f), frac(d), frac(e))
		}
	}

	// Cancellation: a pre-cancelled context skips every network.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	skipped := 0
	cancelledRes, err := parEng.AnalyzeNetworks(cancelled, nets, profirt.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	for _, r := range cancelledRes {
		if r.Skipped {
			skipped++
		}
	}
	fmt.Printf("\ncancelled batch: %d/%d networks skipped\n", skipped, len(nets))

	fmt.Println("\nNote: as deadlines tighten (scale < 1), FCFS loses schedulability")
	fmt.Println("first — the paper's headline claim — while the batch API keeps the")
	fmt.Println("whole sweep deterministic for any worker count — and the shared")
	fmt.Println("Engine pool keeps N concurrent sweeps from oversubscribing the host.")
}

// sameVerdicts compares two results field by field (BatchResult holds
// slices, so the struct itself is not comparable with ==).
func sameVerdicts(a, b profirt.BatchResult) bool {
	eq := func(x, y profirt.PolicyVerdict) bool {
		if x.Schedulable != y.Schedulable || len(x.Verdicts) != len(y.Verdicts) {
			return false
		}
		for i := range x.Verdicts {
			if x.Verdicts[i] != y.Verdicts[i] {
				return false
			}
		}
		return true
	}
	return a.Index == b.Index && a.Skipped == b.Skipped &&
		eq(a.FCFS, b.FCFS) && eq(a.DM, b.DM) && eq(a.EDF, b.EDF)
}

func frac(k int) string {
	return fmt.Sprintf("%d/%d", k, instancesPerCell)
}
