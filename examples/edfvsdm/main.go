// EDF vs DM vs FCFS: sweep a deadline-tightening factor over one
// master's stream set and watch where each analysis stops admitting the
// set — the crossover structure behind the paper's conclusion that
// priority-based AP dispatching supports tighter deadlines, with EDF
// and DM trading places depending on the deadline pattern.
//
// Run with: go run ./examples/edfvsdm
package main

import (
	"fmt"

	"profirt"
	"profirt/internal/timeunit"
)

func main() {
	const tc = 2_500 // T_cycle of the surrounding network, in bit times

	base := []profirt.Stream{
		{Name: "fast", Ch: 300, D: 20_000, T: 40_000},
		{Name: "mid", Ch: 350, D: 45_000, T: 90_000},
		{Name: "slow", Ch: 400, D: 120_000, T: 240_000},
		{Name: "bulk", Ch: 500, D: 200_000, T: 400_000},
	}
	nh := profirt.Ticks(len(base))

	fmt.Printf("one master, %d high streams, T_cycle = %d\n", len(base), tc)
	fmt.Printf("FCFS bound for every stream: nh*T_cycle = %d\n\n", nh*tc)

	fmt.Printf("%-7s %-9s %-22s %-22s %-22s\n",
		"scale", "tightest", "FCFS (Eq.11)", "DM (Eq.16 rev)", "EDF (Eq.17/18)")
	for _, scale := range []float64{1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.2} {
		streams := make([]profirt.Stream, len(base))
		copy(streams, base)
		for i := range streams {
			streams[i].D = profirt.Ticks(scale * float64(streams[i].D))
		}
		dm := profirt.DMResponseTimes(streams, tc, profirt.DMMessageOptions{})
		edf := profirt.EDFMessageResponseTimes(streams, tc, profirt.EDFMessageOptions{})

		okFCFS, okDM, okEDF := true, true, true
		for i := range streams {
			if nh*tc > streams[i].D {
				okFCFS = false
			}
			if dm[i] > streams[i].D {
				okDM = false
			}
			if edf[i] > streams[i].D {
				okEDF = false
			}
		}
		fmt.Printf("%-7.1f %-9v %-22s %-22s %-22s\n",
			scale, streams[0].D,
			verdict(okFCFS, nh*tc),
			verdict(okDM, dm[0]),
			verdict(okEDF, edf[0]))
	}

	fmt.Println("\nReading: the cell shows each policy's verdict and the bound of the")
	fmt.Println("tightest stream. FCFS charges every stream the full nh·T_cycle, so it")
	fmt.Println("fails first; DM and EDF keep the tight stream at ~2·T_cycle (one")
	fmt.Println("blocking visit + its own) and survive far deeper into the sweep.")
}

func verdict(ok bool, bound profirt.Ticks) string {
	s := "fail"
	if ok {
		s = "ok"
	}
	if bound == timeunit.MaxTicks {
		return fmt.Sprintf("%s (diverged)", s)
	}
	return fmt.Sprintf("%s (R_tight=%d)", s, bound)
}
