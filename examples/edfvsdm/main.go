// EDF vs DM vs FCFS: sweep a deadline-tightening factor over one
// master's stream set and watch where each analysis stops admitting the
// set — the crossover structure behind the paper's conclusion that
// priority-based AP dispatching supports tighter deadlines, with EDF
// and DM trading places depending on the deadline pattern.
//
// The whole sweep is one Engine.AnalyzeNetworks call: one Network per
// deadline scale, all three policy analyses per network, evaluated
// concurrently on the Engine's shared pool and returned in sweep order.
//
// Run with: go run ./examples/edfvsdm
package main

import (
	"context"
	"fmt"

	"profirt"
	"profirt/internal/timeunit"
)

func main() {
	base := []profirt.Stream{
		{Name: "fast", Ch: 300, D: 20_000, T: 40_000},
		{Name: "mid", Ch: 350, D: 45_000, T: 90_000},
		{Name: "slow", Ch: 400, D: 120_000, T: 240_000},
		{Name: "bulk", Ch: 500, D: 200_000, T: 400_000},
	}
	// One master with TTR 2000: T_del is its longest cycle (500 bit
	// times), so T_cycle = TTR + T_del = 2500.
	network := func(scale float64) profirt.Network {
		streams := make([]profirt.Stream, len(base))
		copy(streams, base)
		for i := range streams {
			streams[i].D = profirt.Ticks(scale * float64(streams[i].D))
		}
		return profirt.Network{TTR: 2_000, Masters: []profirt.Master{{Name: "m1", High: streams}}}
	}

	scales := []float64{1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.2}
	nets := make([]profirt.Network, len(scales))
	for i, scale := range scales {
		nets[i] = network(scale)
	}

	eng := profirt.NewEngine()
	defer eng.Close()
	results, err := eng.AnalyzeNetworks(context.Background(), nets, profirt.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}

	tc := nets[0].TokenCycle()
	nh := profirt.Ticks(len(base))
	fmt.Printf("one master, %d high streams, T_cycle = %d\n", len(base), tc)
	fmt.Printf("FCFS bound for every stream: nh*T_cycle = %d\n\n", nh*tc)

	fmt.Printf("%-7s %-9s %-22s %-22s %-22s\n",
		"scale", "tightest", "FCFS (Eq.11)", "DM (Eq.16 rev)", "EDF (Eq.17/18)")
	for i, scale := range scales {
		r := results[i]
		fmt.Printf("%-7.1f %-9v %-22s %-22s %-22s\n",
			scale, r.DM.Verdicts[0].D,
			verdict(r.FCFS.Schedulable, r.FCFS.Verdicts[0].R),
			verdict(r.DM.Schedulable, r.DM.Verdicts[0].R),
			verdict(r.EDF.Schedulable, r.EDF.Verdicts[0].R))
	}

	fmt.Println("\nReading: the cell shows each policy's verdict and the bound of the")
	fmt.Println("tightest stream. FCFS charges every stream the full nh·T_cycle, so it")
	fmt.Println("fails first; DM and EDF keep the tight stream at ~2·T_cycle (one")
	fmt.Println("blocking visit + its own) and survive far deeper into the sweep.")
}

func verdict(ok bool, bound profirt.Ticks) string {
	s := "fail"
	if ok {
		s = "ok"
	}
	if bound == timeunit.MaxTicks {
		return fmt.Sprintf("%s (diverged)", s)
	}
	return fmt.Sprintf("%s (R_tight=%d)", s, bound)
}
