// DCCS: the distributed computer-controlled cell from the paper's
// motivation — a PLC, a drive controller and a supervisory station on
// one PROFIBUS segment. At TTR = 1000 the pressure loops are
// unschedulable under the stock FCFS queue (Eq. 12 fails) but
// schedulable under the paper's DM/EDF application-process queue, and
// the simulation agrees: this is the paper's headline conclusion
// running end to end.
//
// Run with: go run ./examples/dccs
package main

import (
	"context"
	"fmt"

	"profirt"
	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/workload"
)

func main() {
	const ttr = 1_000

	net, _ := workload.DCCSCell(ap.FCFS, ttr)
	fmt.Printf("machining cell: %d masters, T_del = %v, T_cycle = %v\n\n",
		len(net.Masters), net.TokenDelay(), net.TokenCycle())

	// One Engine drives all three policy analyses (one batch call) and
	// the three per-policy simulations.
	eng := profirt.NewEngine()
	defer eng.Close()
	ctx := context.Background()
	analyses, err := eng.AnalyzeNetworks(ctx, []profirt.Network{net}, profirt.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	analysis := analyses[0]

	type row struct {
		policy   string
		verdicts []core.StreamVerdict
		ok       bool
		misses   int64
	}
	var rows []row

	perPolicy := map[ap.Policy]profirt.PolicyVerdict{
		ap.FCFS: analysis.FCFS, ap.DM: analysis.DM, ap.EDF: analysis.EDF,
	}
	for _, pol := range []ap.Policy{ap.FCFS, ap.DM, ap.EDF} {
		ok, verdicts := perPolicy[pol].Schedulable, perPolicy[pol].Verdicts

		_, cfg := workload.DCCSCell(pol, ttr)
		res, err := eng.Simulate(ctx, cfg)
		if err != nil {
			panic(err)
		}
		var misses int64
		for mi, m := range res.PerMaster {
			for si, st := range m.PerStream {
				if cfg.Masters[mi].Streams[si].High {
					misses += st.Missed
				}
			}
		}
		rows = append(rows, row{pol.String(), verdicts, ok, misses})
	}

	fmt.Printf("%-8s %-22s %-10s %-12s\n", "policy", "analysis verdict", "sim misses", "agreement")
	for _, r := range rows {
		verdict := "schedulable"
		if !r.ok {
			failing := 0
			for _, v := range r.verdicts {
				if !v.OK {
					failing++
				}
			}
			verdict = fmt.Sprintf("%d streams fail Eq.12/16/18", failing)
		}
		agree := "yes"
		if r.ok && r.misses > 0 {
			agree = "NO — bound violated!"
		}
		fmt.Printf("%-8s %-22s %-10d %-12s\n", r.policy, verdict, r.misses, agree)
	}

	// Show the per-stream picture under FCFS vs DM.
	fmt.Printf("\nper-stream bounds at TTR=%d (bit times; 500 ticks = 1 ms):\n", ttr)
	fmt.Printf("%-18s %-9s %-12s %-12s\n", "stream", "D", "R FCFS", "R DM")
	fv, dv := analysis.FCFS.Verdicts, analysis.DM.Verdicts
	for i := range fv {
		mark := "  "
		if !fv[i].OK && dv[i].OK {
			mark = "<- saved by the AP priority queue"
		}
		fmt.Printf("%-18s %-9v %-12v %-12v %s\n", fv[i].Stream, fv[i].D, fv[i].R, dv[i].R, mark)
	}
}
