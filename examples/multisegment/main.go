// Multi-segment topology: two PROFIBUS token rings coupled by a
// store-and-forward bridge. A sensor stream on the "plant" ring is
// relayed onto the "control" ring, where a controller stream consumes
// it under an end-to-end deadline spanning both rings. The example
// builds one description, derives the matched analytic topology from
// it, and drives both workloads through one Engine:
// Engine.AnalyzeTopologies (per-segment verdicts + composed end-to-end
// bounds) and Engine.SimulateTopology (per-segment simulation shards on
// the Engine's shared pool, exchanging relayed releases at the bridge),
// showing the simulated worst cases staying below the analytic bounds.
// It then sweeps the bridge latency with the same AnalyzeTopologies
// call to find the largest store-and-forward delay the deadline
// tolerates.
//
// Run with: go run ./examples/multisegment
package main

import (
	"context"
	"fmt"

	"profirt"
)

func ring(streams ...profirt.SimStreamConfig) profirt.SimConfig {
	return profirt.SimConfig{
		Bus:     profirt.DefaultBusParams(),
		TTR:     2_000,
		Horizon: 2_000_000,
		Masters: []profirt.SimMasterConfig{
			{Addr: 1, Dispatcher: profirt.DM, Streams: streams},
		},
		Slaves: []profirt.SimSlaveConfig{{Addr: 30, TSDR: 30}},
	}
}

func buildTopology(latency profirt.Ticks) profirt.SimTopology {
	plant := ring(
		profirt.SimStreamConfig{Name: "sensor", Slave: 30, High: true,
			Period: 20_000, Deadline: 20_000, Jitter: 300, ReqBytes: 2, RespBytes: 6},
		profirt.SimStreamConfig{Name: "logging", Slave: 30, High: false,
			Period: 100_000, Deadline: 100_000, ReqBytes: 16},
	)
	control := ring(
		profirt.SimStreamConfig{Name: "setpoint", Slave: 30, High: true,
			Period: 40_000, Deadline: 20_000, ReqBytes: 4, RespBytes: 4},
		profirt.SimStreamConfig{Name: "sensor-relay", Slave: 30, High: true,
			Period: 20_000, Deadline: 40_000, ReqBytes: 6, RespBytes: 2},
	)
	plant.Jitter = profirt.SimJitterRandom
	return profirt.SimTopology{
		Seed: 1,
		Segments: []profirt.SimTopologySegment{
			{Name: "plant", Cfg: plant},
			{Name: "control", Cfg: control},
		},
		Bridges: []profirt.Bridge{{
			Name: "gateway", From: "plant", To: "control", Latency: latency,
			Relays: []profirt.Relay{{
				Name:       "sensor-e2e",
				FromStream: "sensor",
				ToStream:   "sensor-relay",
				Deadline:   40_000,
			}},
		}},
	}
}

func main() {
	st := buildTopology(1_000)
	top := profirt.TopologyFromSimTopology(st)

	// One Engine serves the single analysis, the sharded simulation and
	// the closing sweep.
	eng := profirt.NewEngine()
	defer eng.Close()
	ctx := context.Background()

	anas, err := eng.AnalyzeTopologies(ctx, []profirt.Topology{top}, profirt.TopologyAnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	if anas[0].Err != nil {
		panic(anas[0].Err)
	}
	ana := anas[0].Result
	fmt.Printf("analysis: converged in %d iterations, schedulable = %v\n",
		ana.Iterations, ana.Schedulable)
	for _, seg := range ana.Segments {
		fmt.Printf("  segment %-8s (%v)  T_cycle %v\n", seg.Name, seg.Policy, seg.TokenCycle)
		for _, v := range seg.Verdicts {
			fmt.Printf("    %-14s R = %-8v D = %-8v ok = %v\n", v.Stream, v.R, v.D, v.OK)
		}
	}
	relay := ana.Relays[0]
	fmt.Printf("  relay %s: E2E bound %v (= source R %v + latency %v folded in), deadline %v\n\n",
		relay.Name, relay.EndToEnd, relay.FromResponse, relay.Latency, relay.Deadline)

	sim, err := eng.SimulateTopology(ctx, st, profirt.TopologySimulateOptions{})
	if err != nil {
		panic(err)
	}
	obs := sim.Relays[0]
	fmt.Printf("simulation: %d rounds, converged = %v\n", sim.Rounds, sim.Converged)
	fmt.Printf("  relayed %d requests: worst observed E2E %v, mean %.0f, missed %d\n",
		obs.Relayed, obs.WorstEndToEnd, obs.MeanEndToEnd(), obs.Missed)
	if obs.WorstEndToEnd > relay.EndToEnd {
		panic("observed end-to-end exceeded the analytic bound")
	}
	fmt.Printf("  observed/bound = %.0f%% (the analysis is safe, pessimism is visible)\n\n",
		100*float64(obs.WorstEndToEnd)/float64(relay.EndToEnd))

	// Sweep the bridge latency: how slow may the gateway be before the
	// end-to-end deadline breaks?
	latencies := []profirt.Ticks{1_000, 5_000, 10_000, 20_000, 25_000, 30_000}
	tops := make([]profirt.Topology, len(latencies))
	for i, l := range latencies {
		tops[i] = profirt.TopologyFromSimTopology(buildTopology(l))
	}
	fmt.Println("bridge-latency sweep (Engine.AnalyzeTopologies):")
	sweep, err := eng.AnalyzeTopologies(ctx, tops, profirt.TopologyAnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	for i, r := range sweep {
		if r.Err != nil {
			panic(r.Err)
		}
		fmt.Printf("  latency %-6v E2E bound %-8v schedulable = %v\n",
			latencies[i], r.Result.Relays[0].EndToEnd, r.Result.Schedulable)
	}
}
