// Quickstart: describe a small PROFIBUS network once, construct one
// profirt.Engine, then (a) run the paper's pre-run-time schedulability
// analyses on it and (b) simulate it, comparing analytic worst-case
// response-time bounds with observed worst cases.
//
// The Engine is the package's front door: it owns a bounded worker
// pool plus (optionally) a shared analysis cache and a durable result
// store, and every workload — analysis, simulation, campaigns,
// experiments — is a context-first method on it. One Engine serves any
// number of concurrent callers without oversubscribing the machine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"profirt"
)

func main() {
	// One description drives both analysis and simulation: two masters
	// polling slaves on a 500 kbit/s segment, with the paper's DM
	// application-process queue enabled.
	cfg := profirt.SimConfig{
		Bus: profirt.DefaultBusParams(),
		TTR: 2_000, // target token rotation time, in bit times
		Masters: []profirt.SimMasterConfig{
			{
				Addr:       1,
				Dispatcher: profirt.DM,
				Streams: []profirt.SimStreamConfig{
					{Name: "sensor", Slave: 30, High: true,
						Period: 20_000, Deadline: 15_000, ReqBytes: 2, RespBytes: 4},
					{Name: "actuator", Slave: 31, High: true,
						Period: 40_000, Deadline: 30_000, ReqBytes: 6, RespBytes: 1},
					{Name: "logging", Slave: 30, High: false,
						Period: 100_000, Deadline: 100_000, ReqBytes: 16, RespBytes: 16},
				},
			},
			{
				Addr:       2,
				Dispatcher: profirt.DM,
				Streams: []profirt.SimStreamConfig{
					{Name: "poll", Slave: 31, High: true,
						Period: 50_000, Deadline: 25_000, ReqBytes: 4, RespBytes: 8},
				},
			},
		},
		Slaves: []profirt.SimSlaveConfig{
			{Addr: 30, TSDR: 30},
			{Addr: 31, TSDR: 45},
		},
		Horizon: 1_000_000, // 2 s of bus time at 500 kbit/s
		Jitter:  0,
	}

	// One Engine for the whole program. WithCache is overkill for a
	// single network but shows where the shared memo table plugs in —
	// a sweep over thousands of configurations would reuse it across
	// every call.
	eng := profirt.NewEngine(profirt.WithCache(profirt.NewAnalysisCache(0)))
	defer eng.Close()
	ctx := context.Background()

	// Analysis: derive the model and apply Eqs. 13-16.
	net := profirt.NetworkFromSimConfig(cfg)
	fmt.Printf("T_del  (Eq. 13) = %v bit times\n", net.TokenDelay())
	fmt.Printf("T_cycle(Eq. 14) = %v bit times\n", net.TokenCycle())
	if ttr, err := profirt.MaxTTR(net); err == nil {
		fmt.Printf("max TTR (Eq. 15, FCFS) = %v bit times\n", ttr)
	}

	// AnalyzeNetworks evaluates FCFS, DM and EDF in one call; a slice
	// of thousands of networks would fan out across the Engine's pool
	// exactly the same way.
	analyses, err := eng.AnalyzeNetworks(ctx, []profirt.Network{net}, profirt.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	analysis := analyses[0]
	verdicts := analysis.DM.Verdicts
	fmt.Printf("\nDM-schedulable: %v (FCFS: %v, EDF: %v)\n",
		analysis.DM.Schedulable, analysis.FCFS.Schedulable, analysis.EDF.Schedulable)

	// Simulation: observe actual worst responses under the same setup.
	res, err := eng.Simulate(ctx, cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("\n%-10s %-10s %-12s %-12s %-8s\n", "stream", "deadline", "bound (DM)", "sim worst", "misses")
	vi := 0
	for mi, m := range res.PerMaster {
		for si, st := range m.PerStream {
			sc := cfg.Masters[mi].Streams[si]
			if !sc.High {
				continue
			}
			v := verdicts[vi]
			vi++
			fmt.Printf("%-10s %-10v %-12v %-12v %-8d\n",
				sc.Name, sc.Deadline, v.R, st.WorstResponse, st.Missed)
		}
	}
	fmt.Printf("\nworst observed token rotation: %v (bound %v)\n",
		res.WorstTRR(), net.TokenCycle())
}
