package profirt_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"profirt"
	"profirt/internal/obs"
)

// This file gates the observability invariant: histograms and span
// tracing are observational only. A traced, fully instrumented Engine
// must produce results byte-identical to an uninstrumented one, and
// the trace it emits must nest request-shaped work correctly
// (engine op → pool job → memo lookup).

func TestEngineLatencyStats(t *testing.T) {
	nets := equivNets(211, 16, 2)
	eng := profirt.NewEngine(profirt.WithParallelism(2), profirt.WithCache(profirt.NewAnalysisCache(0)))
	defer eng.Close()
	if _, err := eng.AnalyzeNetworks(context.Background(), nets, profirt.AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	ls := eng.Stats().Latency
	if !ls.Enabled {
		t.Fatal("Latency.Enabled = false on a default Engine")
	}
	var analyze profirt.LatencySnapshot
	for _, op := range ls.Ops {
		if op.Op == "analyze_networks" {
			analyze = op.Latency
		}
	}
	if analyze.Count != 1 {
		t.Fatalf("analyze_networks latency count = %d, want 1", analyze.Count)
	}
	if ls.PoolRun.Count == 0 {
		t.Fatal("PoolRun histogram empty after a parallel batch")
	}
	if ls.PoolQueueWait.Count == 0 {
		t.Fatal("PoolQueueWait histogram empty after a parallel batch")
	}
	if ls.CacheLookup.Count == 0 {
		t.Fatal("CacheLookup histogram empty despite repeated networks")
	}
	if len(profirt.LatencyBucketBounds()) == 0 {
		t.Fatal("LatencyBucketBounds returned no bounds")
	}
	// The snapshot must survive a JSON round trip (serve exports it).
	if _, err := json.Marshal(ls); err != nil {
		t.Fatalf("latency stats not serializable: %v", err)
	}
}

func TestEngineObservabilityOff(t *testing.T) {
	nets := equivNets(223, 8, 1)
	eng := profirt.NewEngine(profirt.WithParallelism(2), profirt.WithObservability(false))
	defer eng.Close()
	if _, err := eng.AnalyzeNetworks(context.Background(), nets, profirt.AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Latency.Enabled {
		t.Fatal("Latency.Enabled = true with WithObservability(false)")
	}
	if st.Latency.PoolRun.Count != 0 || len(st.Latency.Ops) != 0 {
		t.Fatal("disabled Engine recorded latency anyway")
	}
	// The counters are independent of the histograms and must still
	// advance.
	if st.Ops.AnalyzeNetworks != 1 {
		t.Fatalf("op counter = %d, want 1", st.Ops.AnalyzeNetworks)
	}
}

func TestTracedResultsByteIdentical(t *testing.T) {
	nets := equivNets(227, 24, 2)
	plain := profirt.NewEngine(profirt.WithParallelism(4), profirt.WithObservability(false))
	want, err := plain.AnalyzeNetworks(context.Background(), nets, profirt.AnalyzeOptions{})
	plain.Close()
	if err != nil {
		t.Fatal(err)
	}

	eng := profirt.NewEngine(profirt.WithParallelism(4), profirt.WithCache(profirt.NewAnalysisCache(0)))
	defer eng.Close()
	tr := obs.NewTracer("identity", nil)
	ctx := obs.WithTracer(context.Background(), tr)
	got, err := eng.AnalyzeNetworks(ctx, nets, profirt.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("traced+instrumented results diverged from plain results")
	}
	if len(tr.Events()) == 0 {
		t.Fatal("tracer recorded nothing")
	}
}

// TestTraceNesting drives a traced engine call and verifies the span
// chain the ISSUE promises: root → engine op → pool submission →
// pool job → memo lookup.
func TestTraceNesting(t *testing.T) {
	nets := equivNets(229, 16, 2)
	eng := profirt.NewEngine(profirt.WithParallelism(4), profirt.WithCache(profirt.NewAnalysisCache(0)))
	defer eng.Close()

	tr := obs.NewTracer("nest", nil)
	ctx := obs.WithTracer(context.Background(), tr)
	ctx, root := obs.StartSpan(ctx, "request")
	if _, err := eng.AnalyzeNetworks(ctx, nets, profirt.AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	root.End()

	byID := map[uint64]obs.Event{}
	for _, e := range tr.Events() {
		byID[e.ID] = e
	}
	// Walk up from a memo.lookup span and collect the ancestor chain.
	var chainFound bool
	for _, e := range tr.Events() {
		if e.Name != "memo.lookup" {
			continue
		}
		names := []string{}
		for cur := e; ; {
			parent, ok := byID[cur.Parent]
			if !ok {
				break
			}
			names = append(names, parent.Name)
			cur = parent
		}
		// names is child-to-root, e.g. [pool.job pool.submit
		// engine.analyze_networks request].
		if len(names) == 4 && names[0] == "pool.job" && names[1] == "pool.submit" &&
			names[2] == "engine.analyze_networks" && names[3] == "request" {
			chainFound = true
			break
		}
	}
	if !chainFound {
		for _, e := range tr.Events() {
			t.Logf("span %d parent=%d name=%s", e.ID, e.Parent, e.Name)
		}
		t.Fatal("no memo.lookup span with the full request → engine → pool.submit → pool.job ancestry")
	}

	// The export must be valid trace_event JSON.
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if _, ok := decoded["traceEvents"]; !ok {
		t.Fatal("trace export missing traceEvents")
	}
}
