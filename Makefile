# Developer entry points. `make ci` is the gate: formatting, vet, build,
# and the full test suite under the race detector (the experiment
# harness and AnalyzeBatch run real worker pools, so -race is load-
# bearing, not ceremony).

GO ?= go
PROFILINT ?= /tmp/profilint-$(shell id -u)

.PHONY: ci fmt vet lint lint-fix build test race bench bench-smoke fuzz-smoke apicheck apicheck-update

ci: fmt vet lint build race fuzz-smoke apicheck

fmt:
	@out=$$(gofmt -s -l . | grep -v '^vendor/'); \
	if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# profilint: the repo's own go/analysis suite (detrand, mapiter,
# poolgo, ctxthread, seedmix + nilness/shadow), run as a vet tool so
# package loading and caching are go's own. Findings name the analyzer
# and the invariant it guards; see internal/lint and the README's
# "Static analysis" section for the //profilint:ignore contract.
lint:
	$(GO) build -o $(PROFILINT) ./cmd/profilint
	$(GO) vet -vettool=$(PROFILINT) ./...

# lint-fix emits findings as JSON (one object per package, keyed by
# analyzer) for scripted triage — pipe through jq to list, sort or
# auto-annotate: `make lint-fix | jq -r 'to_entries[]'`. go vet's
# -json swallows the failing exit, so this always exits 0.
lint-fix:
	$(GO) build -o $(PROFILINT) ./cmd/profilint
	$(GO) vet -vettool=$(PROFILINT) -json ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The perf baseline: the suite-level and batch benchmarks plus the
# cached cold/warm pair, the SimulateBatch pair and the campaign
# cold-store/warm-resume pair, recorded into BENCH_results.json
# (structured metrics + the verbatim benchstat-compatible text under
# .raw; compare runs with
# `jq -r .raw BENCH_results.json | benchstat old.txt /dev/stdin`).
# benchjson doubles as the perf guard: the fresh numbers are compared
# against the committed baseline before it is overwritten, and the
# target fails when ns/op or allocs/op regressed past 20% or when the
# cached experiments suite ran slower than the sequential one (git
# still holds the previous baseline for the diff). bench-delta.json
# carries the comparison for CI artifacts. BENCHFLAGS=-warn demotes
# the guard to a report on noisy machines.
# The observability pair runs separately with -count so the on-vs-off
# gate compares minima instead of single noisy samples (benchjson
# aggregates repeated lines by per-metric minimum).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkAllExperiments|BenchmarkAnalyzeBatch|BenchmarkAnalyzeCached|BenchmarkSimulateBatch|BenchmarkCampaign|BenchmarkEngineConcurrentCallers' -benchmem . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) test -run '^$$' -bench 'BenchmarkEngineObs' -benchmem -count=5 . >> bench.out || (cat bench.out; rm -f bench.out; exit 1)
	cat bench.out
	$(GO) run ./cmd/benchjson -o BENCH_results.json -baseline BENCH_results.json -delta bench-delta.json $(BENCHFLAGS) < bench.out
	@rm -f bench.out

# One iteration of every benchmark in the module: catches bit-rotted
# benchmark code without paying for statistically meaningful timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Exported-API golden check: cmd/apicheck dumps the root package's
# exported surface (sorted, comment-free declarations) and diffs it
# against testdata/api.golden, so every surface change lands as a
# reviewable diff and CI fails on unreviewed ones. After reviewing an
# intentional change, regenerate with `make apicheck-update`.
apicheck:
	@$(GO) run ./cmd/apicheck | diff -u testdata/api.golden - \
		|| { echo "exported API surface changed; review the diff and run 'make apicheck-update'"; exit 1; }

apicheck-update:
	@mkdir -p testdata
	$(GO) run ./cmd/apicheck > testdata/api.golden

# Short fuzzing smoke pass: the checked-in seed corpus already runs in
# `make race`; this additionally lets each fuzzer mutate for a few
# seconds so trivially reachable crashes surface in the gate.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 5s ./internal/configfile
	$(GO) test -run '^$$' -fuzz '^FuzzParseTopology$$' -fuzztime 5s ./internal/configfile
	$(GO) test -run '^$$' -fuzz '^FuzzParsePolicy$$' -fuzztime 3s ./internal/configfile
	$(GO) test -run '^$$' -fuzz '^FuzzNetworkValidate$$' -fuzztime 5s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzParseCampaign$$' -fuzztime 5s ./internal/campaign
