# Developer entry points. `make ci` is the gate: formatting, vet, build,
# and the full test suite under the race detector (the experiment
# harness and AnalyzeBatch run real worker pools, so -race is load-
# bearing, not ceremony).

GO ?= go

.PHONY: ci fmt vet build test race bench

ci: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkAllExperiments|BenchmarkAnalyzeBatch' -benchmem .
