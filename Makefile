# Developer entry points. `make ci` is the gate: formatting, vet, build,
# and the full test suite under the race detector (the experiment
# harness and AnalyzeBatch run real worker pools, so -race is load-
# bearing, not ceremony).

GO ?= go

.PHONY: ci fmt vet build test race bench fuzz-smoke

ci: fmt vet build race fuzz-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkAllExperiments|BenchmarkAnalyzeBatch' -benchmem .

# Short fuzzing smoke pass: the checked-in seed corpus already runs in
# `make race`; this additionally lets each fuzzer mutate for a few
# seconds so trivially reachable crashes surface in the gate.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 5s ./internal/configfile
	$(GO) test -run '^$$' -fuzz '^FuzzParseTopology$$' -fuzztime 5s ./internal/configfile
	$(GO) test -run '^$$' -fuzz '^FuzzParsePolicy$$' -fuzztime 3s ./internal/configfile
	$(GO) test -run '^$$' -fuzz '^FuzzNetworkValidate$$' -fuzztime 5s ./internal/core
