package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The perf guard: compare a fresh benchmark run against the committed
// BENCH_results.json baseline and fail (or warn) when a benchmark
// regressed past the threshold on wall time or allocations. The
// comparison is implemented in-repo — no benchstat dependency — over
// the metrics both reports share.

// compareMetrics are the units the guard inspects. ns/op is noisy on
// shared runners (hence the generous threshold and the -warn escape
// hatch); allocs/op is nearly deterministic, so the same threshold
// catches real allocation regressions reliably.
var compareMetrics = []string{"ns/op", "allocs/op"}

// Delta is one (benchmark, metric) comparison against the baseline.
type Delta struct {
	// Name is the benchmark identifier.
	Name string `json:"name"`
	// Metric is the compared unit (ns/op or allocs/op).
	Metric string `json:"metric"`
	// Old and New are the baseline and current values.
	Old float64 `json:"old"`
	New float64 `json:"new"`
	// Pct is the relative change in percent ((new-old)/old · 100).
	Pct float64 `json:"pct"`
	// Regressed marks deltas past the threshold.
	Regressed bool `json:"regressed,omitempty"`
}

// DeltaReport is the comparison artifact schema (-delta).
type DeltaReport struct {
	// Baseline echoes the baseline's generation time.
	BaselineUnix int64 `json:"baseline_unix"`
	// MaxRegressPct is the failure threshold applied.
	MaxRegressPct float64 `json:"max_regress_pct"`
	// Deltas holds every compared (benchmark, metric) pair, sorted by
	// descending percentage change.
	Deltas []Delta `json:"deltas"`
	// Regressions counts deltas past the threshold.
	Regressions int `json:"regressions"`
	// CachedSlowerPct is how much slower BenchmarkAllExperimentsCached
	// ran than BenchmarkAllExperimentsSequential in the current run
	// (negative = faster); the guard enforces the "a cache must never
	// cost more than it saves" acceptance criterion on it.
	CachedSlowerPct float64 `json:"cached_slower_pct"`
	CachedRegressed bool    `json:"cached_regressed,omitempty"`
	// ObsOverheadPct is how much slower BenchmarkEngineObsOn ran than
	// BenchmarkEngineObsOff in the current run (negative = faster);
	// the guard enforces the observability acceptance criterion —
	// instrumentation costs at most obsOverheadSlackPct on the hot
	// path and allocates nothing extra per op.
	ObsOverheadPct float64 `json:"obs_overhead_pct"`
	// ObsExtraAllocs is allocs/op(On) − allocs/op(Off); any positive
	// value regresses.
	ObsExtraAllocs float64 `json:"obs_extra_allocs"`
	ObsRegressed   bool    `json:"obs_regressed,omitempty"`
}

// cachedVsSequentialSlackPct tolerates measurement noise on the
// cached-vs-sequential rule before declaring the cache a pessimisation.
const cachedVsSequentialSlackPct = 10

// obsOverheadSlackPct bounds how much the instrumented Engine may cost
// over the uninstrumented one on the same run.
const obsOverheadSlackPct = 5

// aggregate collapses repeated result lines for the same benchmark
// (a -count run) into one entry per name, taking the minimum of each
// metric across repeats. The minimum is the standard noise-robust
// estimator for benchmarks: interference only ever adds time, so the
// smallest sample is the closest to the code's true cost.
func aggregate(benchmarks []Benchmark) map[string]Benchmark {
	by := make(map[string]Benchmark, len(benchmarks))
	for _, b := range benchmarks {
		prev, ok := by[b.Name]
		if !ok {
			// Copy the metrics map so the Report stays untouched.
			merged := Benchmark{Name: b.Name, Procs: b.Procs, Iterations: b.Iterations,
				Metrics: make(map[string]float64, len(b.Metrics))}
			for k, v := range b.Metrics {
				merged.Metrics[k] = v
			}
			by[b.Name] = merged
			continue
		}
		for k, v := range b.Metrics {
			if old, have := prev.Metrics[k]; !have || v < old {
				prev.Metrics[k] = v
			}
		}
	}
	return by
}

// compare builds the delta report of cur against the baseline at path.
func compare(baselinePath string, cur Report, maxRegressPct float64) (DeltaReport, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return DeltaReport{}, err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return DeltaReport{}, fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	baseBy := aggregate(base.Benchmarks)
	curBy := aggregate(cur.Benchmarks)

	rep := DeltaReport{BaselineUnix: base.Unix, MaxRegressPct: maxRegressPct}
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, line := range cur.Benchmarks {
		if seen[line.Name] {
			continue
		}
		seen[line.Name] = true
		b := curBy[line.Name]
		old, ok := baseBy[b.Name]
		if !ok {
			continue
		}
		for _, metric := range compareMetrics {
			ov, haveOld := old.Metrics[metric]
			nv, haveNew := b.Metrics[metric]
			if !haveOld || !haveNew || ov <= 0 {
				continue
			}
			d := Delta{Name: b.Name, Metric: metric, Old: ov, New: nv, Pct: (nv - ov) / ov * 100}
			d.Regressed = d.Pct > maxRegressPct
			if d.Regressed {
				rep.Regressions++
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	sort.SliceStable(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Pct > rep.Deltas[j].Pct })

	// Cached-vs-sequential rule, evaluated within the current run so a
	// uniformly slow machine cannot mask (or fake) it.
	seq, okSeq := curBy["BenchmarkAllExperimentsSequential"]
	cached, okCached := curBy["BenchmarkAllExperimentsCached"]
	if okSeq && okCached && seq.Metrics["ns/op"] > 0 {
		rep.CachedSlowerPct = (cached.Metrics["ns/op"] - seq.Metrics["ns/op"]) / seq.Metrics["ns/op"] * 100
		rep.CachedRegressed = rep.CachedSlowerPct > cachedVsSequentialSlackPct
	}

	// Observability overhead rule, also within the current run: the
	// instrumented Engine must stay within the slack on wall time and
	// allocate nothing extra per op.
	off, okOff := curBy["BenchmarkEngineObsOff"]
	on, okOn := curBy["BenchmarkEngineObsOn"]
	if okOff && okOn && off.Metrics["ns/op"] > 0 {
		rep.ObsOverheadPct = (on.Metrics["ns/op"] - off.Metrics["ns/op"]) / off.Metrics["ns/op"] * 100
		rep.ObsExtraAllocs = on.Metrics["allocs/op"] - off.Metrics["allocs/op"]
		rep.ObsRegressed = rep.ObsOverheadPct > obsOverheadSlackPct || rep.ObsExtraAllocs > 0
	}
	return rep, nil
}

// render prints the human-readable comparison to stderr.
func (rep DeltaReport) render() {
	for _, d := range rep.Deltas {
		mark := " "
		if d.Regressed {
			mark = "!"
		}
		fmt.Fprintf(os.Stderr, "%s %-44s %-10s %14.1f -> %14.1f  %+7.1f%%\n",
			mark, d.Name, d.Metric, d.Old, d.New, d.Pct)
	}
	fmt.Fprintf(os.Stderr, "cached vs sequential (same run): %+.1f%%\n", rep.CachedSlowerPct)
	if rep.CachedRegressed {
		fmt.Fprintf(os.Stderr, "! cached experiments run slower than sequential beyond the %d%% slack\n",
			cachedVsSequentialSlackPct)
	}
	fmt.Fprintf(os.Stderr, "observability on vs off (same run): %+.1f%% ns/op, %+.0f allocs/op\n",
		rep.ObsOverheadPct, rep.ObsExtraAllocs)
	if rep.ObsRegressed {
		fmt.Fprintf(os.Stderr, "! engine observability costs more than the %d%% slack or allocates per op\n",
			obsOverheadSlackPct)
	}
	if rep.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "! %d metric(s) regressed past %.0f%% vs baseline\n",
			rep.Regressions, rep.MaxRegressPct)
	}
}

// failed reports whether the guard should reject the run.
func (rep DeltaReport) failed() bool {
	return rep.Regressions > 0 || rep.CachedRegressed || rep.ObsRegressed
}
