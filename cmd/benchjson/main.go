// Command benchjson converts `go test -bench` output read on stdin
// into the repository's BENCH_results.json baseline: structured
// per-benchmark metrics for tooling, plus the verbatim benchmark text
// so benchstat keeps working against the JSON artifact:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -o BENCH_results.json
//	jq -r .raw BENCH_results.json | benchstat /dev/stdin
//
// With -baseline it additionally acts as the perf guard: each shared
// benchmark's ns/op and allocs/op are compared against the baseline
// report and the run fails when either regressed past -max-regress
// percent (default 20), when the cached experiments suite ran slower
// than the sequential one in the fresh results, or when the
// instrumented Engine (BenchmarkEngineObsOn) costs more than the
// observability slack over the uninstrumented one. Repeated result
// lines for the same benchmark (a -count run) are collapsed for
// comparison by taking each metric's minimum across repeats — the
// noise-robust estimator — while the JSON artifact keeps every line.
// -warn demotes failures to a report (for noisy CI runners) and
// -delta writes the comparison as a JSON artifact:
//
//	... | go run ./cmd/benchjson -o BENCH_results.json -baseline BENCH_results.json -delta bench-delta.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"profirt/internal/obs"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark identifier without the -procs suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (0 when absent).
	Procs int `json:"procs,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value (e.g. "ns/op", "B/op", "allocs/op",
	// plus any b.ReportMetric units such as "cycles/run").
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the BENCH_results.json schema.
type Report struct {
	// Unix is the generation time in seconds since the epoch.
	Unix int64 `json:"unix"`
	// Goos/Goarch/Pkg/CPU echo the go test header lines when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks holds the parsed result lines in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw is the verbatim input, kept benchstat-compatible.
	Raw string `json:"raw"`
}

func main() {
	out := flag.String("o", "BENCH_results.json", "output path (- for stdout)")
	baseline := flag.String("baseline", "", "baseline BENCH_results.json to compare against (perf guard)")
	deltaOut := flag.String("delta", "", "write the comparison report as JSON to this path")
	maxRegress := flag.Float64("max-regress", 20, "fail when ns/op or allocs/op regress past this percentage")
	warn := flag.Bool("warn", false, "report regressions but exit 0 (CI shared-runner mode)")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	// Compare before writing: baseline and output may be the same file.
	var delta DeltaReport
	haveDelta := false
	if *baseline != "" {
		delta, err = compare(*baseline, rep, *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		haveDelta = true
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if !haveDelta {
		return
	}
	delta.render()
	if *deltaOut != "" {
		dj, err := json.MarshalIndent(delta, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*deltaOut, append(dj, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if delta.failed() && !*warn {
		os.Exit(1)
	}
}

func parse(r io.Reader) (Report, error) {
	rep := Report{Unix: obs.Now().Unix()}
	var raw strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		raw.WriteString(line)
		raw.WriteByte('\n')
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	rep.Raw = raw.String()
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("no benchmark result lines on stdin")
	}
	return rep, nil
}

// parseBenchLine parses one result line of the standard form
//
//	BenchmarkName-8   5   223492287 ns/op   2048 B/op   12 allocs/op
//
// A trailing -<digits> is interpreted as the GOMAXPROCS suffix, the
// same convention golang.org/x/perf's benchfmt applies. That reading
// is ambiguous by construction — under GOMAXPROCS=1 the testing
// package omits the suffix, so a benchmark whose own name ends in
// -<digits> would lose its tail — a quirk shared with benchstat, and
// none of this repo's benchmark names end in digits.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Need name, iterations and at least one value-unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
