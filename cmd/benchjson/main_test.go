package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: profirt
cpu: Example CPU @ 2.0GHz
BenchmarkAnalyzeCachedCold-8   	      50	  22349228 ns/op	 2048 B/op	      12 allocs/op
BenchmarkAnalyzeCachedWarm-8   	     500	   2234922 ns/op	  128 B/op	       3 allocs/op
BenchmarkProfibusSimulator-8   	      10	 123456789 ns/op	     42000 cycles/run
PASS
ok  	profirt	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "profirt" || rep.CPU != "Example CPU @ 2.0GHz" {
		t.Errorf("header mis-parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	cold := rep.Benchmarks[0]
	if cold.Name != "BenchmarkAnalyzeCachedCold" || cold.Procs != 8 || cold.Iterations != 50 {
		t.Errorf("cold line mis-parsed: %+v", cold)
	}
	if cold.Metrics["ns/op"] != 22349228 || cold.Metrics["allocs/op"] != 12 {
		t.Errorf("cold metrics mis-parsed: %+v", cold.Metrics)
	}
	if rep.Benchmarks[2].Metrics["cycles/run"] != 42000 {
		t.Errorf("custom metric lost: %+v", rep.Benchmarks[2].Metrics)
	}
	if rep.Raw != sample {
		t.Error("raw text not preserved verbatim (benchstat compatibility)")
	}
	// The warm/cold ratio recorded by the baseline must be derivable
	// from the parsed metrics.
	ratio := cold.Metrics["ns/op"] / rep.Benchmarks[1].Metrics["ns/op"]
	if ratio < 9.9 || ratio > 10.1 {
		t.Errorf("ratio %f, want ~10", ratio)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Error("expected an error with no benchmark lines")
	}
}

func TestAggregateTakesPerMetricMin(t *testing.T) {
	by := aggregate([]Benchmark{
		{Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 300, "allocs/op": 7}},
		{Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 9}},
		{Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 200, "allocs/op": 8}},
		{Name: "BenchmarkY", Metrics: map[string]float64{"ns/op": 50}},
	})
	x := by["BenchmarkX"]
	if x.Metrics["ns/op"] != 100 || x.Metrics["allocs/op"] != 7 {
		t.Errorf("aggregated X = %+v, want per-metric minima 100/7", x.Metrics)
	}
	if by["BenchmarkY"].Metrics["ns/op"] != 50 {
		t.Errorf("aggregated Y = %+v", by["BenchmarkY"].Metrics)
	}
}

// writeBaseline marshals a Report to a temp file for compare().
func writeBaseline(t *testing.T, rep Report) string {
	t.Helper()
	path := t.TempDir() + "/baseline.json"
	enc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestObsOverheadGate(t *testing.T) {
	mk := func(name string, nsop, allocs float64) Benchmark {
		return Benchmark{Name: name, Metrics: map[string]float64{"ns/op": nsop, "allocs/op": allocs}}
	}
	base := writeBaseline(t, Report{Benchmarks: []Benchmark{
		mk("BenchmarkEngineObsOff", 1000, 10),
		mk("BenchmarkEngineObsOn", 1000, 10),
	}})

	// Within slack, equal allocations: passes. Repeated -count lines
	// must be collapsed to minima before the on/off ratio is taken.
	rep, err := compare(base, Report{Benchmarks: []Benchmark{
		mk("BenchmarkEngineObsOff", 1400, 10), // noisy outlier repeat
		mk("BenchmarkEngineObsOff", 1000, 10),
		mk("BenchmarkEngineObsOn", 1030, 10),
		mk("BenchmarkEngineObsOn", 1500, 10),
	}}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ObsOverheadPct < 2.9 || rep.ObsOverheadPct > 3.1 {
		t.Errorf("ObsOverheadPct = %v, want ~3 (minima 1030 vs 1000)", rep.ObsOverheadPct)
	}
	if rep.ObsRegressed || rep.failed() {
		t.Errorf("gate tripped within slack: %+v", rep)
	}

	// Past the slack on wall time: fails.
	rep, err = compare(base, Report{Benchmarks: []Benchmark{
		mk("BenchmarkEngineObsOff", 1000, 10),
		mk("BenchmarkEngineObsOn", 1100, 10),
	}}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ObsRegressed || !rep.failed() {
		t.Errorf("10%% overhead not flagged: %+v", rep)
	}

	// Any extra allocation per op: fails even when time is fine.
	rep, err = compare(base, Report{Benchmarks: []Benchmark{
		mk("BenchmarkEngineObsOff", 1000, 10),
		mk("BenchmarkEngineObsOn", 1000, 11),
	}}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ObsExtraAllocs != 1 || !rep.ObsRegressed {
		t.Errorf("extra alloc not flagged: %+v", rep)
	}
}
