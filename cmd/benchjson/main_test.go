package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: profirt
cpu: Example CPU @ 2.0GHz
BenchmarkAnalyzeCachedCold-8   	      50	  22349228 ns/op	 2048 B/op	      12 allocs/op
BenchmarkAnalyzeCachedWarm-8   	     500	   2234922 ns/op	  128 B/op	       3 allocs/op
BenchmarkProfibusSimulator-8   	      10	 123456789 ns/op	     42000 cycles/run
PASS
ok  	profirt	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "profirt" || rep.CPU != "Example CPU @ 2.0GHz" {
		t.Errorf("header mis-parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	cold := rep.Benchmarks[0]
	if cold.Name != "BenchmarkAnalyzeCachedCold" || cold.Procs != 8 || cold.Iterations != 50 {
		t.Errorf("cold line mis-parsed: %+v", cold)
	}
	if cold.Metrics["ns/op"] != 22349228 || cold.Metrics["allocs/op"] != 12 {
		t.Errorf("cold metrics mis-parsed: %+v", cold.Metrics)
	}
	if rep.Benchmarks[2].Metrics["cycles/run"] != 42000 {
		t.Errorf("custom metric lost: %+v", rep.Benchmarks[2].Metrics)
	}
	if rep.Raw != sample {
		t.Error("raw text not preserved verbatim (benchstat compatibility)")
	}
	// The warm/cold ratio recorded by the baseline must be derivable
	// from the parsed metrics.
	ratio := cold.Metrics["ns/op"] / rep.Benchmarks[1].Metrics["ns/op"]
	if ratio < 9.9 || ratio > 10.1 {
		t.Errorf("ratio %f, want ~10", ratio)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Error("expected an error with no benchmark lines")
	}
}
