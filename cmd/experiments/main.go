// Command experiments regenerates the reproduction tables recorded in
// EXPERIMENTS.md: one experiment per paper equation/claim (see
// DESIGN.md §4 for the index).
//
// Usage:
//
//	experiments [-id E7] [-quick] [-trials N] [-seed N] [-parallel N] [-cache=false] [-format plain|md|csv]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"

	"profirt/internal/experiments"
	"profirt/internal/memo"
	"profirt/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against explicit argument and output streams so
// the golden-output test can pin the exact bytes a release prints.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	id := fs.String("id", "", "run a single experiment (e.g. E7); default all")
	quick := fs.Bool("quick", false, "reduced grids and trial counts")
	trials := fs.Int("trials", 0, "override trials per grid cell")
	seed := fs.Int64("seed", 1, "random seed (tables are reproducible per seed)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"grid-cell worker pool size (1 = sequential; tables are identical either way)")
	cache := fs.Bool("cache", true,
		"memoize repeated DM/EDF/holistic fixed points (tables are identical either way)")
	format := fs.String("format", "md", "output format: plain, md or csv")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-4s %-28s %s\n", e.ID, e.Anchor, e.Title)
		}
		return 0
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	if *trials > 0 {
		cfg.Trials = *trials
	}
	cfg.Parallelism = *parallel
	if *cache {
		cfg.Cache = memo.New(0)
	}
	if !*quick {
		// Full-size runs take minutes per experiment; stream per-job
		// completion events and finished table rows to stderr so the
		// run is observable while the tables (which must assemble in
		// deterministic grid order) are still being built. Quick runs
		// stay silent — the golden test pins their stdout AND stderr
		// byte-for-byte.
		cfg.Progress = progressSink(stderr)
		cfg.RowSink = rowSink(stderr)
	}

	var toRun []experiments.Experiment
	if *id != "" {
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(stderr, "experiments: unknown id %q (use -list)\n", *id)
			return 2
		}
		toRun = []experiments.Experiment{e}
	} else {
		toRun = experiments.All()
	}

	for _, e := range toRun {
		fmt.Fprintf(stdout, "## %s — %s (%s)\n\n", e.ID, e.Title, e.Anchor)
		for _, t := range e.Run(cfg) {
			if err := stats.Render(stdout, t, *format); err != nil {
				fmt.Fprintf(stderr, "experiments: %v\n", err)
				return 1
			}
			fmt.Fprintln(stdout)
		}
	}
	return 0
}

// progressSink returns a row-streaming progress callback writing
// throttled "<id>: done/total jobs" lines to w. Events arrive
// concurrently from pool workers; the sink serialises them, drops
// stale ones (a worker can be descheduled between incrementing the
// counter and reporting, so events may arrive out of order), and
// prints roughly every 10% plus the final event of each experiment
// grid.
func progressSink(w io.Writer) func(experiments.ProgressEvent) {
	var mu sync.Mutex
	// The staleness guard is keyed per (experiment, job count): every
	// current driver fans out at most one grid per experiment, and a
	// hypothetical second grid would almost certainly schedule a
	// different job count and so start a fresh monotonic sequence.
	printed := map[string]int{}
	return func(ev experiments.ProgressEvent) {
		step := ev.Total / 10
		if step < 1 {
			step = 1
		}
		if ev.Done != ev.Total && ev.Done%step != 0 {
			return
		}
		key := fmt.Sprintf("%s/%d", ev.Experiment, ev.Total)
		mu.Lock()
		if ev.Done > printed[key] {
			printed[key] = ev.Done
			fmt.Fprintf(w, "%s: %d/%d jobs\n", ev.Experiment, ev.Done, ev.Total)
		}
		mu.Unlock()
	}
}

// rowSink streams each finished table row to w the moment the
// experiment harness releases it (rows arrive in grid order, while
// later cells are still running). Events for one table are already
// serialised by the row streamer; the mutex only interleaves lines of
// concurrently assembling tables cleanly.
func rowSink(w io.Writer) func(stats.RowEvent) {
	var mu sync.Mutex
	return func(ev stats.RowEvent) {
		mu.Lock()
		fmt.Fprintf(w, "%s row %d/%d: %s\n", ev.Table.Title, ev.Index+1, ev.Total, strings.Join(ev.Cells, "  "))
		mu.Unlock()
	}
}
