// Command experiments regenerates the reproduction tables recorded in
// EXPERIMENTS.md: one experiment per paper equation/claim (see
// DESIGN.md §4 for the index).
//
// Usage:
//
//	experiments [-id E7] [-quick] [-trials N] [-seed N] [-parallel N] [-cache=false] [-format plain|md|csv]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"

	"profirt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against explicit argument and output streams so
// the golden-output test can pin the exact bytes a release prints.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	id := fs.String("id", "", "run a single experiment (e.g. E7); default all")
	quick := fs.Bool("quick", false, "reduced grids and trial counts")
	trials := fs.Int("trials", 0, "override trials per grid cell")
	seed := fs.Int64("seed", 1, "random seed (tables are reproducible per seed; 0 selects the default seed 1)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker pool size (1 = sequential; tables are identical either way)")
	cache := fs.Bool("cache", true,
		"memoize repeated DM/EDF/holistic fixed points (tables are identical either way)")
	format := fs.String("format", "md", "output format: plain, md or csv")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, e := range profirt.Experiments() {
			fmt.Fprintf(stdout, "%-4s %-28s %s\n", e.ID, e.Anchor, e.Title)
		}
		return 0
	}

	// One Engine owns the worker pool and the analysis cache for the
	// whole run; every experiment's grid cells are admitted onto that
	// single bounded pool.
	engOpts := []profirt.EngineOption{profirt.WithParallelism(*parallel)}
	if *cache {
		engOpts = append(engOpts, profirt.WithCache(profirt.NewAnalysisCache(0)))
	}
	if !*quick {
		// Full-size runs take minutes per experiment; stream per-job
		// completion events and finished table rows to stderr so the
		// run is observable while the tables (which must assemble in
		// deterministic grid order) are still being built. Quick runs
		// stay silent — the golden test pins their stdout AND stderr
		// byte-for-byte.
		engOpts = append(engOpts,
			profirt.WithProgress(progressSink(stderr)),
			profirt.WithRowSink(rowSink(stderr)))
	}
	eng := profirt.NewEngine(engOpts...)
	defer eng.Close()

	opts := profirt.ExperimentOptions{Seed: *seed, Trials: *trials, Quick: *quick}
	var ids []string
	if *id != "" {
		ids = []string{*id}
	} else {
		for _, e := range profirt.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	// One RunExperiments call per experiment, so each experiment's
	// tables hit stdout the moment it finishes rather than after the
	// whole suite.
	for _, eid := range ids {
		res, err := eng.RunExperiments(context.Background(), []string{eid}, opts)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %v (use -list)\n", err)
			return 2
		}
		for _, er := range res {
			fmt.Fprintf(stdout, "## %s — %s (%s)\n\n", er.ID, er.Title, er.Anchor)
			for _, t := range er.Tables {
				if err := profirt.RenderTable(stdout, t, *format); err != nil {
					fmt.Fprintf(stderr, "experiments: %v\n", err)
					return 1
				}
				fmt.Fprintln(stdout)
			}
		}
	}
	return 0
}

// progressSink returns a row-streaming progress callback writing
// throttled "<id>: done/total jobs" lines to w. Events arrive
// concurrently from pool workers; the sink serialises them, drops
// stale ones (a worker can be descheduled between incrementing the
// counter and reporting, so events may arrive out of order), and
// prints roughly every 10% plus the final event of each experiment
// grid.
func progressSink(w io.Writer) func(profirt.EngineEvent) {
	var mu sync.Mutex
	// The staleness guard is keyed per (experiment, job count): every
	// current driver fans out at most one grid per experiment, and a
	// hypothetical second grid would almost certainly schedule a
	// different job count and so start a fresh monotonic sequence.
	printed := map[string]int{}
	return func(ev profirt.EngineEvent) {
		step := ev.Total / 10
		if step < 1 {
			step = 1
		}
		if ev.Done != ev.Total && ev.Done%step != 0 {
			return
		}
		key := fmt.Sprintf("%s/%d", ev.Op, ev.Total)
		mu.Lock()
		if ev.Done > printed[key] {
			printed[key] = ev.Done
			fmt.Fprintf(w, "%s: %d/%d jobs\n", ev.Op, ev.Done, ev.Total)
		}
		mu.Unlock()
	}
}

// rowSink streams each finished table row to w the moment the
// experiment harness releases it (rows arrive in grid order, while
// later cells are still running). Events for one table are already
// serialised by the row streamer; the mutex only interleaves lines of
// concurrently assembling tables cleanly.
func rowSink(w io.Writer) func(profirt.TableRowEvent) {
	var mu sync.Mutex
	return func(ev profirt.TableRowEvent) {
		mu.Lock()
		fmt.Fprintf(w, "%s row %d/%d: %s\n", ev.Table.Title, ev.Index+1, ev.Total, strings.Join(ev.Cells, "  "))
		mu.Unlock()
	}
}
