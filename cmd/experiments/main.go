// Command experiments regenerates the reproduction tables recorded in
// EXPERIMENTS.md: one experiment per paper equation/claim (see
// DESIGN.md §4 for the index).
//
// Usage:
//
//	experiments [-id E7] [-quick] [-trials N] [-seed N] [-parallel N] [-format plain|md|csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"profirt/internal/experiments"
	"profirt/internal/stats"
)

func main() {
	id := flag.String("id", "", "run a single experiment (e.g. E7); default all")
	quick := flag.Bool("quick", false, "reduced grids and trial counts")
	trials := flag.Int("trials", 0, "override trials per grid cell")
	seed := flag.Int64("seed", 1, "random seed (tables are reproducible per seed)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"grid-cell worker pool size (1 = sequential; tables are identical either way)")
	format := flag.String("format", "md", "output format: plain, md or csv")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-28s %s\n", e.ID, e.Anchor, e.Title)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	if *trials > 0 {
		cfg.Trials = *trials
	}
	cfg.Parallelism = *parallel

	var toRun []experiments.Experiment
	if *id != "" {
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *id)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	} else {
		toRun = experiments.All()
	}

	for _, e := range toRun {
		fmt.Printf("## %s — %s (%s)\n\n", e.ID, e.Title, e.Anchor)
		for _, t := range e.Run(cfg) {
			if err := render(t, *format); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
}

func render(t *stats.Table, format string) error {
	switch format {
	case "plain":
		return t.WritePlain(os.Stdout)
	case "md":
		return t.WriteMarkdown(os.Stdout)
	case "csv":
		return t.WriteCSV(os.Stdout)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
