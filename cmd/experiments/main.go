// Command experiments regenerates the reproduction tables recorded in
// EXPERIMENTS.md: one experiment per paper equation/claim (see
// DESIGN.md §4 for the index).
//
// Usage:
//
//	experiments [-id E7] [-quick] [-trials N] [-seed N] [-parallel N] [-format plain|md|csv]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"profirt/internal/experiments"
	"profirt/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against explicit argument and output streams so
// the golden-output test can pin the exact bytes a release prints.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	id := fs.String("id", "", "run a single experiment (e.g. E7); default all")
	quick := fs.Bool("quick", false, "reduced grids and trial counts")
	trials := fs.Int("trials", 0, "override trials per grid cell")
	seed := fs.Int64("seed", 1, "random seed (tables are reproducible per seed)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"grid-cell worker pool size (1 = sequential; tables are identical either way)")
	format := fs.String("format", "md", "output format: plain, md or csv")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-4s %-28s %s\n", e.ID, e.Anchor, e.Title)
		}
		return 0
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	if *trials > 0 {
		cfg.Trials = *trials
	}
	cfg.Parallelism = *parallel

	var toRun []experiments.Experiment
	if *id != "" {
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(stderr, "experiments: unknown id %q (use -list)\n", *id)
			return 2
		}
		toRun = []experiments.Experiment{e}
	} else {
		toRun = experiments.All()
	}

	for _, e := range toRun {
		fmt.Fprintf(stdout, "## %s — %s (%s)\n\n", e.ID, e.Title, e.Anchor)
		for _, t := range e.Run(cfg) {
			if err := render(stdout, t, *format); err != nil {
				fmt.Fprintf(stderr, "experiments: %v\n", err)
				return 1
			}
			fmt.Fprintln(stdout)
		}
	}
	return 0
}

func render(w io.Writer, t *stats.Table, format string) error {
	switch format {
	case "plain":
		return t.WritePlain(w)
	case "md":
		return t.WriteMarkdown(w)
	case "csv":
		return t.WriteCSV(w)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
