package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestQuickGolden pins the byte-exact output of `experiments -quick`:
// the published reproduction tables are regenerated from this CLI, so
// a refactor that silently changes numbers, ordering or markdown
// formatting must fail here. Regenerate intentionally with
//
//	go test ./cmd/experiments -run TestQuickGolden -update
func TestQuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, tc := range []struct {
		name   string
		args   []string
		golden string
	}{
		// The full quick suite at the default seed, default format.
		{"all-md", []string{"-quick", "-seed", "1"}, "quick_all_md.golden"},
		// One experiment in each alternative format, to pin the plain
		// and CSV writers through the CLI path too.
		{"e12-plain", []string{"-quick", "-id", "E12", "-format", "plain"}, "quick_e12_plain.golden"},
		{"e12-csv", []string{"-quick", "-id", "E12", "-format", "csv"}, "quick_e12_csv.golden"},
		// The experiment index is part of the CLI surface as well.
		{"list", []string{"-list"}, "list.golden"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("run(%v) = %d, stderr: %s", tc.args, code, stderr.String())
			}
			if stderr.Len() != 0 {
				t.Fatalf("unexpected stderr: %s", stderr.String())
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("output differs from %s.\nIf the change is intentional, regenerate with -update.\n--- got ---\n%s", path, stdout.String())
			}
		})
	}
}

// TestProgressStreaming covers the non-quick progress sink: full-size
// runs stream per-job completion events to stderr while stdout still
// carries only the deterministic tables. E12 is the cheapest full-size
// experiment (pure analysis, no simulation), so the test runs it for
// real.
func TestProgressStreaming(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-id", "E12", "-trials", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "E12: 5/5 jobs") {
		t.Errorf("expected a final E12 progress event on stderr, got:\n%s", stderr.String())
	}
	if strings.Contains(stdout.String(), "jobs") {
		t.Error("progress events leaked onto stdout")
	}

	// Quick runs must stay silent: the golden test pins empty stderr,
	// and this pins the gating logic directly.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-quick", "-id", "E12"}, &stdout, &stderr); code != 0 {
		t.Fatalf("quick run = %d", code)
	}
	if stderr.Len() != 0 {
		t.Errorf("quick run wrote progress to stderr:\n%s", stderr.String())
	}
}

// TestHelpExitsZero pins the help exit code (flag.ErrHelp is a
// successful outcome, matching the pre-refactor ExitOnError behaviour).
func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-h) = %d, want 0", code)
	}
}

// TestUnknownID pins the CLI error contract.
func TestUnknownID(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-id", "E99"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-id E99) = %d, want 2", code)
	}
	if stderr.Len() == 0 {
		t.Error("expected a diagnostic on stderr")
	}
}
