// Command profisim simulates a PROFIBUS network described by a JSON
// file and reports per-stream response-time statistics alongside the
// analytic bounds, so analysis pessimism is visible at a glance.
//
// Usage:
//
//	profisim [-horizon N] [-seed N] [-format plain|md|csv] network.json
package main

import (
	"flag"
	"fmt"
	"os"

	"profirt/internal/configfile"
	"profirt/internal/core"
	"profirt/internal/profibus"
	"profirt/internal/stats"
)

func main() {
	horizon := flag.Int64("horizon", 0, "override simulation horizon (bit times)")
	seed := flag.Int64("seed", -1, "override random seed")
	format := flag.String("format", "plain", "output format: plain, md or csv")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: profisim [flags] network.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	net, cfg, err := configfile.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "profisim: %v\n", err)
		os.Exit(1)
	}
	if *horizon > 0 {
		cfg.Horizon = core.Ticks(*horizon)
	}
	if *seed >= 0 {
		cfg.Seed = *seed
	}
	res, err := profibus.Simulate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profisim: %v\n", err)
		os.Exit(1)
	}
	for _, t := range report(net, cfg, res) {
		if err := render(t, *format); err != nil {
			fmt.Fprintf(os.Stderr, "profisim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func report(net core.Network, cfg profibus.Config, res profibus.Result) []*stats.Table {
	ring := stats.NewTable("Token ring", "master", "arrivals", "worst TRR", "mean TRR", "late tokens", "TTH overruns")
	for i, m := range res.PerMaster {
		ring.AddRow(cfg.Masters[i].Addr, m.TokenArrivals, m.WorstTRR,
			fmt.Sprintf("%.0f", m.MeanTRR()), m.LateTokens, m.TTHOverruns)
	}
	ring.Note = fmt.Sprintf("analytic T_cycle bound: %v (refined %v); horizon %v",
		net.TokenCycle(), net.RefinedTokenCycle(), cfg.Horizon)

	streams := stats.NewTable("Per-stream results",
		"master", "stream", "released", "completed", "missed", "worst resp", "mean resp", "retries")
	for mi, m := range res.PerMaster {
		for si, st := range m.PerStream {
			sc := cfg.Masters[mi].Streams[si]
			streams.AddRow(cfg.Masters[mi].Addr, sc.Name, st.Released, st.Completed,
				st.Missed, st.WorstResponse, fmt.Sprintf("%.0f", st.MeanResponse()), st.Retries)
		}
	}
	return []*stats.Table{ring, streams}
}

func render(t *stats.Table, format string) error {
	switch format {
	case "plain":
		return t.WritePlain(os.Stdout)
	case "md":
		return t.WriteMarkdown(os.Stdout)
	case "csv":
		return t.WriteCSV(os.Stdout)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
