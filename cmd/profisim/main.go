// Command profisim simulates a PROFIBUS network described by a JSON
// file and reports per-stream response-time statistics alongside the
// analytic bounds, so analysis pessimism is visible at a glance.
//
// With -topology the file describes a bridged multi-segment
// installation instead: every segment is simulated as its own shard on
// a worker pool, relayed releases are exchanged at the bridges, and the
// report adds per-relay end-to-end observations against the composed
// analytic bounds.
//
// Usage:
//
//	profisim [-horizon N] [-seed N] [-format plain|md|csv] network.json
//	profisim -topology [-parallel N] [-seed N] [-format plain|md|csv] topology.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"profirt"
	"profirt/internal/configfile"
	"profirt/internal/core"
	"profirt/internal/profibus"
	"profirt/internal/stats"
	"profirt/internal/topology"
)

func main() {
	topo := flag.Bool("topology", false, "treat the file as a bridged multi-segment topology")
	horizon := flag.Int64("horizon", 0, "override simulation horizon (bit times)")
	seed := flag.Int64("seed", -1, "override random seed")
	parallel := flag.Int("parallel", 0, "segment worker pool size for -topology (0 = GOMAXPROCS)")
	format := flag.String("format", "plain", "output format: plain, md or csv")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: profisim [flags] network.json\n")
		fmt.Fprintf(os.Stderr, "       profisim -topology [flags] topology.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	// One Engine owns the worker pool for both modes; the topology
	// path fans its per-round segment shards out on it.
	eng := profirt.NewEngine(profirt.WithParallelism(*parallel))
	defer eng.Close()
	var tables []*stats.Table
	var err error
	if *topo {
		tables, err = runTopology(eng, flag.Arg(0), *horizon, *seed)
	} else {
		tables, err = runSingle(eng, flag.Arg(0), *horizon, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "profisim: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tables {
		if err := render(t, *format); err != nil {
			fmt.Fprintf(os.Stderr, "profisim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func runSingle(eng *profirt.Engine, path string, horizon, seed int64) ([]*stats.Table, error) {
	net, cfg, err := configfile.Load(path)
	if err != nil {
		return nil, err
	}
	if horizon > 0 {
		cfg.Horizon = core.Ticks(horizon)
	}
	if seed >= 0 {
		cfg.Seed = seed
	}
	res, err := eng.Simulate(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	return report(net, cfg, res), nil
}

func runTopology(eng *profirt.Engine, path string, horizon, seed int64) ([]*stats.Table, error) {
	top, sim, err := configfile.LoadTopology(path)
	if err != nil {
		return nil, err
	}
	if horizon > 0 {
		for i := range sim.Segments {
			sim.Segments[i].Cfg.Horizon = core.Ticks(horizon)
		}
	}
	if seed >= 0 {
		sim.Seed = seed
	}
	anas, err := eng.AnalyzeTopologies(context.Background(), []profirt.Topology{top}, profirt.TopologyAnalyzeOptions{})
	if err != nil {
		return nil, err
	}
	if anas[0].Err != nil {
		return nil, anas[0].Err
	}
	res, err := eng.SimulateTopology(context.Background(), sim, profirt.TopologySimulateOptions{})
	if err != nil {
		return nil, err
	}
	return topologyReport(top, sim, anas[0].Result, res), nil
}

func report(net core.Network, cfg profibus.Config, res profibus.Result) []*stats.Table {
	ring := stats.NewTable("Token ring", "master", "arrivals", "worst TRR", "mean TRR", "late tokens", "TTH overruns")
	for i, m := range res.PerMaster {
		ring.AddRow(cfg.Masters[i].Addr, m.TokenArrivals, m.WorstTRR,
			fmt.Sprintf("%.0f", m.MeanTRR()), m.LateTokens, m.TTHOverruns)
	}
	ring.Note = fmt.Sprintf("analytic T_cycle bound: %v (refined %v); horizon %v",
		net.TokenCycle(), net.RefinedTokenCycle(), cfg.Horizon)

	streams := stats.NewTable("Per-stream results",
		"master", "stream", "released", "completed", "missed", "worst resp", "mean resp", "retries")
	for mi, m := range res.PerMaster {
		for si, st := range m.PerStream {
			sc := cfg.Masters[mi].Streams[si]
			streams.AddRow(cfg.Masters[mi].Addr, sc.Name, st.Released, st.Completed,
				st.Missed, st.WorstResponse, fmt.Sprintf("%.0f", st.MeanResponse()), st.Retries)
		}
	}
	return []*stats.Table{ring, streams}
}

// topologyReport renders one summary table per segment plus the
// bridge-level end-to-end comparison.
func topologyReport(top topology.Topology, sim topology.SimTopology, ana topology.Result, res topology.SimResult) []*stats.Table {
	var out []*stats.Table
	for i, seg := range res.Segments {
		rep := ana.Segments[i]
		t := stats.NewTable(fmt.Sprintf("Segment %s (%v)", seg.Name, rep.Policy),
			"master", "stream", "released", "completed", "missed", "worst resp", "analytic R", "D", "ok")
		vi := 0
		cfg := sim.Segments[i].Cfg
		for mi, m := range seg.Result.PerMaster {
			for si, st := range m.PerStream {
				sc := cfg.Masters[mi].Streams[si]
				if !sc.High {
					t.AddRow(cfg.Masters[mi].Addr, sc.Name, st.Released, st.Completed,
						st.Missed, st.WorstResponse, "-", "-", "-")
					continue
				}
				v := rep.Verdicts[vi]
				vi++
				t.AddRow(cfg.Masters[mi].Addr, sc.Name, st.Released, st.Completed,
					st.Missed, st.WorstResponse, v.R, v.D, v.OK)
			}
		}
		t.Note = fmt.Sprintf("analytic T_cycle bound: %v; horizon %v; rounds %d; converged %v",
			rep.TokenCycle, cfg.Horizon, res.Rounds, res.Converged)
		out = append(out, t)
	}
	relays := stats.NewTable("Bridge relays (end-to-end)",
		"bridge", "relay", "relayed", "completed", "missed", "worst E2E", "mean E2E", "analytic E2E", "deadline", "ok")
	for i, r := range res.Relays {
		a := ana.Relays[i]
		relays.AddRow(r.Bridge, r.Name, r.Relayed, r.Completed, r.Missed,
			r.WorstEndToEnd, fmt.Sprintf("%.0f", r.MeanEndToEnd()), a.EndToEnd, a.Deadline, a.OK)
	}
	if len(res.Relays) > 0 {
		out = append(out, relays)
	}
	return out
}

func render(t *stats.Table, format string) error {
	switch format {
	case "plain":
		return t.WritePlain(os.Stdout)
	case "md":
		return t.WriteMarkdown(os.Stdout)
	case "csv":
		return t.WriteCSV(os.Stdout)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
