// Command apicheck prints the exported API surface of a Go package in
// a stable, comment-free, sorted form — one declaration per block —
// for golden-file comparison. `make apicheck` diffs the root package's
// surface against testdata/api.golden, so any change to an exported
// name, signature, struct field or method lands as a reviewable diff
// and CI fails on unreviewed surface changes; `make apicheck-update`
// regenerates the golden after review.
//
// Usage:
//
//	apicheck [-dir .]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "package directory to dump")
	flag.Parse()
	lines, err := surface(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v\n", err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

// surface parses the package in dir (tests excluded, comments dropped)
// and renders every exported declaration, sorted.
func surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				out = append(out, renderDecl(fset, decl)...)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// renderDecl returns the exported parts of one top-level declaration,
// each rendered as a single normalized block.
func renderDecl(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return nil
		}
		d.Body = nil
		d.Doc = nil
		return []string{render(fset, d)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				s.Doc, s.Comment = nil, nil
				one := &ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{s}}
				out = append(out, render(fset, one))
			case *ast.ValueSpec:
				if vs := exportedValues(s); vs != nil {
					one := &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{vs}}
					out = append(out, render(fset, one))
				}
			}
		}
		return out
	}
	return nil
}

// receiverExported reports whether a method's receiver type is
// exported (free functions trivially pass).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// exportedValues filters a const/var spec down to its exported names
// (values and types kept only when every name survives, which is the
// case throughout this codebase — specs mix exported and unexported
// names so rarely that dropping the whole spec otherwise is fine).
func exportedValues(s *ast.ValueSpec) *ast.ValueSpec {
	for _, n := range s.Names {
		if !n.IsExported() {
			return nil
		}
	}
	s.Doc, s.Comment = nil, nil
	return s
}

// render pretty-prints one declaration, collapsing it onto single
// lines per statement so the golden diffs cleanly.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 4}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	return buf.String()
}
