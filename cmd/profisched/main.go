// Command profisched runs the paper's pre-run-time schedulability
// analyses on a JSON network description: the Eq. 13/14 token-cycle
// bounds, the FCFS test (Eqs. 11–12), the Eq. 15 T_TR rule, and the
// DM/EDF message response-time analyses (Eqs. 16–18).
//
// Usage:
//
//	profisched [-format plain|md|csv] network.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"profirt"
	"profirt/internal/configfile"
	"profirt/internal/core"
	"profirt/internal/stats"
	"profirt/internal/timeunit"
)

func main() {
	format := flag.String("format", "plain", "output format: plain, md or csv")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: profisched [-format plain|md|csv] network.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	net, _, err := configfile.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "profisched: %v\n", err)
		os.Exit(1)
	}
	// The Engine runs the three per-policy analyses (one network is one
	// batch entry); the token-cycle summary reads closed-form bounds
	// straight off the model.
	eng := profirt.NewEngine()
	defer eng.Close()
	batch, err := eng.AnalyzeNetworks(context.Background(), []profirt.Network{net}, profirt.AnalyzeOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "profisched: %v\n", err)
		os.Exit(1)
	}
	verdicts := batch[0]
	tables := analyse(net, verdicts)
	for _, t := range tables {
		if err := render(t, *format); err != nil {
			fmt.Fprintf(os.Stderr, "profisched: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func analyse(net core.Network, verdicts profirt.BatchResult) []*stats.Table {
	sum := stats.NewTable("Token-cycle analysis (Eqs. 13-14)", "quantity", "bit times")
	sum.AddRow("TTR", net.TTR)
	sum.AddRow("T_del (Eq. 13)", net.TokenDelay())
	sum.AddRow("T_cycle (Eq. 14)", net.TokenCycle())
	sum.AddRow("refined T_del", net.RefinedTokenDelay())
	sum.AddRow("refined T_cycle", net.RefinedTokenCycle())
	if ttr, err := core.MaxTTR(net); err == nil {
		sum.AddRow("max TTR by Eq. 15", ttr)
	} else {
		sum.AddRow("max TTR by Eq. 15", fmt.Sprintf("infeasible (%v)", err))
	}

	per := stats.NewTable("Per-stream worst-case response times",
		"master", "stream", "D", "R FCFS (Eq.11)", "R DM (Eq.16 rev)", "R EDF (Eq.17/18)", "FCFS ok", "DM ok", "EDF ok")
	fv, dv, ev := verdicts.FCFS.Verdicts, verdicts.DM.Verdicts, verdicts.EDF.Verdicts
	for i := range fv {
		per.AddRow(fv[i].Master, fv[i].Stream, fv[i].D,
			tick(fv[i].R), tick(dv[i].R), tick(ev[i].R),
			fv[i].OK, dv[i].OK, ev[i].OK)
	}
	return []*stats.Table{sum, per}
}

func tick(t timeunit.Ticks) string { return t.String() }

func render(t *stats.Table, format string) error {
	switch format {
	case "plain":
		return t.WritePlain(os.Stdout)
	case "md":
		return t.WriteMarkdown(os.Stdout)
	case "csv":
		return t.WriteCSV(os.Stdout)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
