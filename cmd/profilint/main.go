// Command profilint runs the repo's static-analysis suite: five custom
// analyzers enforcing the determinism, concurrency and context
// invariants (detrand, mapiter, poolgo, ctxthread, seedmix) plus the
// nilness and shadow passes. See internal/lint for what each guards
// and the //profilint:ignore suppression contract.
//
// It is a go/analysis unitchecker, so it works as a vet tool:
//
//	go vet -vettool=$(command -v profilint) ./...
//
// and it is also runnable standalone on package patterns — it builds
// nothing itself but re-execs `go vet -vettool=<self>` so the build
// cache and package loading are go's own:
//
//	profilint ./...
//	profilint -json ./...    # machine-readable findings
//
// Exit status is non-zero when any analyzer reports a finding.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"profirt/internal/lint"
)

func main() {
	if vetInvocation(os.Args[1:]) {
		unitchecker.Main(lint.Analyzers()...)
	}
	os.Exit(standalone(os.Args[1:]))
}

// vetInvocation reports whether we are being driven by `go vet`
// (or invoked in unitchecker's own protocol): the driver calls the
// tool with -V=full to fingerprint it, with -flags to enumerate
// flags, or with a single *.cfg argument per package unit.
func vetInvocation(args []string) bool {
	for _, a := range args {
		switch {
		case strings.HasSuffix(a, ".cfg"),
			strings.HasPrefix(a, "-V"),
			a == "-flags":
			return true
		}
	}
	return false
}

// standalone re-runs this binary as a vet tool over the given package
// patterns. Flags before the first pattern are forwarded to go vet
// (-json is the useful one); everything go vet prints passes through.
func standalone(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "profilint: cannot locate own executable: %v\n", err)
		return 2
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	vetArgs := append([]string{"vet", "-vettool=" + self}, args...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if exit, ok := err.(*exec.ExitError); ok {
			return exit.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "profilint: %v\n", err)
		return 2
	}
	return 0
}
