package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestVetInvocationDetection(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want bool
	}{
		{[]string{"/tmp/vet073/pkg.cfg"}, true},
		{[]string{"-V=full"}, true},
		{[]string{"-flags"}, true},
		{[]string{"./..."}, false},
		{[]string{"-json", "./..."}, false},
		{[]string{}, false},
		{[]string{"./internal/lint"}, false},
	} {
		if got := vetInvocation(tc.args); got != tc.want {
			t.Errorf("vetInvocation(%q) = %v, want %v", tc.args, got, tc.want)
		}
	}
}

// buildProfilint compiles the checker once per test binary.
func buildProfilint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "profilint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build profilint: %v\n%s", err, out)
	}
	return bin
}

// scratchModule writes a dependency-free module with one library
// package containing the given source.
func scratchModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := filepath.Join(dir, "internal", "holistic")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkg, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestSeededViolationFailsLint is the acceptance gate in miniature:
// a time.Now() seeded into a result-producing package must make the
// vet run exit non-zero with a message naming the analyzer and the
// invariant it guards; the clean variant must pass.
func TestSeededViolationFailsLint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go vet; skipped with -short")
	}
	bin := buildProfilint(t)

	bad := scratchModule(t, `package holistic

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = bad
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("vet accepted a seeded time.Now() violation:\n%s", out)
	}
	for _, needle := range []string{"detrand", "time.Now()", "pure function of (config, seed)"} {
		if !strings.Contains(string(out), needle) {
			t.Errorf("finding does not mention %q:\n%s", needle, out)
		}
	}

	good := scratchModule(t, `package holistic

func Stamp(seed int64) int64 { return seed }
`)
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = good
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("vet rejected a clean package: %v\n%s", err, out)
	}
}

// TestStandaloneReexec covers the no-driver entry point: running the
// binary directly on package patterns must re-exec through go vet and
// propagate the failing exit.
func TestStandaloneReexec(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go vet; skipped with -short")
	}
	bin := buildProfilint(t)
	dir := scratchModule(t, `package holistic

func Spawn(f func()) { go f() }
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone run accepted a raw go statement:\n%s", out)
	}
	if !strings.Contains(string(out), "poolgo") {
		t.Errorf("finding does not name the poolgo analyzer:\n%s", out)
	}
}
