package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testManifest = `{
  "name": "cli-test",
  "seed": 3,
  "trials": 2,
  "policies": ["fcfs", "dm"],
  "deadlineScales": [1.0, 0.4],
  "networks": [{"name": "cell", "network": {
    "ttr": 2000, "horizon": 300000,
    "masters": [
      {"addr": 1, "streams": [
        {"name": "a", "slave": 30, "high": true, "period": 20000, "deadline": 15000},
        {"name": "b", "slave": 30, "high": true, "period": 50000, "deadline": 40000}]},
      {"addr": 2, "streams": [
        {"name": "c", "slave": 31, "high": true, "period": 30000, "deadline": 25000}]}
    ],
    "slaves": [{"addr": 30, "tsdr": 30}, {"addr": 31, "tsdr": 60}]
  }}]
}`

func writeManifest(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(testManifest), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(context.Background(), args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestRunKillResume is the end-to-end CLI contract (mirrored by the CI
// smoke step): an uninterrupted run, a run killed mid-campaign, and
// its resume must leave byte-identical tables on stdout, and the
// resumed store must then warm-start a third run with zero executions.
func TestRunKillResume(t *testing.T) {
	manifest := writeManifest(t)
	fullDir := filepath.Join(t.TempDir(), "full")
	code, full, _ := runCLI(t, "run", "-manifest", manifest, "-dir", fullDir)
	if code != 0 {
		t.Fatalf("uninterrupted run exited %d", code)
	}
	if !strings.Contains(full, "campaign cli-test") {
		t.Fatalf("no table on stdout:\n%s", full)
	}

	killDir := filepath.Join(t.TempDir(), "killed")
	code, out, errOut := runCLI(t, "run", "-manifest", manifest, "-dir", killDir, "-parallel", "2", "-stop-after", "3")
	if code != 3 {
		t.Fatalf("interrupted run exited %d (stderr: %s)", code, errOut)
	}
	if out != "" {
		t.Fatalf("interrupted run printed a table:\n%s", out)
	}

	code, _, errOut = runCLI(t, "status", "-dir", killDir)
	if code != 0 || errOut != "" {
		t.Fatalf("status exited %d (stderr %q)", code, errOut)
	}

	code, resumed, errOut := runCLI(t, "resume", "-dir", killDir)
	if code != 0 {
		t.Fatalf("resume exited %d (stderr: %s)", code, errOut)
	}
	if resumed != full {
		t.Fatalf("resumed table differs from uninterrupted:\n--- resumed ---\n%s--- full ---\n%s", resumed, full)
	}
	if !strings.Contains(errOut, "restored") {
		t.Fatalf("resume summary missing: %s", errOut)
	}

	code, warm, errOut := runCLI(t, "resume", "-dir", killDir)
	if code != 0 || warm != full {
		t.Fatalf("warm rerun: code %d\n%s", code, warm)
	}
	if !strings.Contains(errOut, "0 executed") {
		t.Fatalf("warm rerun executed jobs: %s", errOut)
	}
}

// TestCompactThenResume: a store damaged by a mid-write kill and then
// compacted must resume to a table byte-identical to an uninterrupted
// run — compaction reclaims bytes, never state.
func TestCompactThenResume(t *testing.T) {
	manifest := writeManifest(t)
	fullDir := filepath.Join(t.TempDir(), "full")
	code, full, _ := runCLI(t, "run", "-manifest", manifest, "-dir", fullDir)
	if code != 0 {
		t.Fatalf("uninterrupted run exited %d", code)
	}

	killDir := filepath.Join(t.TempDir(), "killed")
	if code, _, _ = runCLI(t, "run", "-manifest", manifest, "-dir", killDir, "-stop-after", "3"); code != 3 {
		t.Fatalf("interrupted run exited %d", code)
	}
	// A kill mid-write tears the final line; fake one.
	storePath := filepath.Join(killDir, "results.jsonl")
	f, err := os.OpenFile(storePath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"k":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	code, out, errOut := runCLI(t, "compact", "-dir", killDir)
	if code != 0 {
		t.Fatalf("compact exited %d (stderr: %s)", code, errOut)
	}
	if !strings.Contains(out, "1 dead lines dropped") {
		t.Fatalf("compact summary missing dropped count: %s", out)
	}

	code, resumed, _ := runCLI(t, "resume", "-dir", killDir)
	if code != 0 {
		t.Fatalf("resume exited %d", code)
	}
	if resumed != full {
		t.Fatalf("post-compact resume differs from uninterrupted:\n--- resumed ---\n%s--- full ---\n%s", resumed, full)
	}
}

func TestRowStreamingOnStderr(t *testing.T) {
	manifest := writeManifest(t)
	dir := filepath.Join(t.TempDir(), "c")
	code, _, errOut := runCLI(t, "run", "-manifest", manifest, "-dir", dir)
	if code != 0 {
		t.Fatalf("run exited %d", code)
	}
	for i := 1; i <= 2; i++ {
		if !strings.Contains(errOut, "row "+string(rune('0'+i))+"/2") {
			t.Fatalf("row %d/2 not streamed:\n%s", i, errOut)
		}
	}
}

func TestRefusesForeignDir(t *testing.T) {
	manifest := writeManifest(t)
	dir := filepath.Join(t.TempDir(), "c")
	if code, _, _ := runCLI(t, "run", "-manifest", manifest, "-dir", dir); code != 0 {
		t.Fatal("seed run failed")
	}
	other := strings.Replace(testManifest, `"seed": 3`, `"seed": 4`, 1)
	otherPath := filepath.Join(t.TempDir(), "other.json")
	if err := os.WriteFile(otherPath, []byte(other), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "run", "-manifest", otherPath, "-dir", dir)
	if code == 0 {
		t.Fatalf("run accepted a foreign directory:\n%s", errOut)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"run", "-dir", "x"},
		{"frobnicate", "-dir", "x"},
		{"run", "-manifest", "x"},
	} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v: exit code != 2", args)
		}
	}
	if code, _, _ := runCLI(t, "resume", "-dir", filepath.Join(t.TempDir(), "nope")); code != 1 {
		t.Error("resume of a missing dir should exit 1")
	}
}

// TestTraceFlag: -trace writes a parseable trace_event file with the
// campaign's spans, and the traced table matches an untraced run's.
func TestTraceFlag(t *testing.T) {
	manifest := writeManifest(t)
	plainDir := filepath.Join(t.TempDir(), "plain")
	code, plain, _ := runCLI(t, "run", "-manifest", manifest, "-dir", plainDir)
	if code != 0 {
		t.Fatalf("untraced run exited %d", code)
	}

	tracePath := filepath.Join(t.TempDir(), "run.trace.json")
	tracedDir := filepath.Join(t.TempDir(), "traced")
	code, traced, errOut := runCLI(t, "run", "-manifest", manifest, "-dir", tracedDir, "-trace", tracePath)
	if code != 0 {
		t.Fatalf("traced run exited %d: %s", code, errOut)
	}
	if traced != plain {
		t.Fatal("traced table differs from untraced table")
	}
	if !strings.Contains(errOut, "trace written to") {
		t.Fatalf("no trace confirmation on stderr:\n%s", errOut)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"engine.run_campaign", "campaign.run", "campaign.row", "pool.job"} {
		if !names[want] {
			t.Fatalf("trace missing %q spans (have %v)", want, names)
		}
	}
}
