// Command campaign runs durable, resumable sweep campaigns: a JSON
// manifest describing a grid of networks × deadline scales × AP
// dispatching policies × trials is compiled into content-addressed
// simulation jobs whose results persist in a disk store, so a killed
// run picks up where it left off and a repeated run is warm-started.
//
// Usage:
//
//	campaign run     -manifest sweep.json -dir out [-parallel N] [-format md] [-stop-after N] [-trace FILE]
//	campaign resume  -dir out [-parallel N] [-format md] [-trace FILE]
//	campaign status  -dir out
//	campaign compact -dir out
//
// run compiles the manifest, snapshots it into dir/manifest.json and
// executes against the store dir/results.jsonl (creating both; an
// existing directory must hold the same manifest). resume re-executes
// from the snapshot — identical to re-running run, without needing the
// original manifest path. status reports store coverage and exits.
// compact rewrites the store dropping the dead weight an append-only
// file accumulates (torn lines from kills mid-write); a compacted
// store resumes byte-identically. Run it only while no other campaign
// process has the directory open — a concurrent writer's results
// appended after the rewrite would be lost (and merely re-executed on
// the next resume).
//
// Completed rows stream to stderr the moment they settle (in grid
// order); the final table goes to stdout. An interrupted run (SIGINT,
// or -stop-after for testing) exits with status 3 after persisting
// every completed job; resuming produces a table byte-identical to an
// uninterrupted run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"

	"profirt"
	"profirt/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against explicit streams so tests can pin the
// exact bytes (and CI can byte-compare resumed vs uninterrupted runs).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet("campaign "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	manifest := fs.String("manifest", "", "campaign manifest JSON (run only)")
	dir := fs.String("dir", "", "campaign directory (manifest snapshot + result store)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker pool size (1 = sequential; tables are identical either way)")
	format := fs.String("format", "md", "output format: plain, md or csv")
	stopAfter := fs.Int("stop-after", 0,
		"stop after N newly executed jobs (simulates a kill; used by tests/CI)")
	traceFile := fs.String("trace", "",
		"write a Chrome trace_event JSON of the run's spans to this file (observational only)")
	if err := fs.Parse(rest); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "campaign: -dir is required")
		return 2
	}

	var c *profirt.Campaign
	var err error
	switch cmd {
	case "run":
		if *manifest == "" {
			fmt.Fprintln(stderr, "campaign run: -manifest is required")
			return 2
		}
		if c, err = profirt.LoadCampaign(*manifest); err != nil {
			fmt.Fprintf(stderr, "campaign: %v\n", err)
			return 1
		}
		if err = snapshotManifest(c, *dir); err != nil {
			fmt.Fprintf(stderr, "campaign: %v\n", err)
			return 1
		}
	case "resume", "status", "compact":
		if c, err = profirt.LoadCampaign(filepath.Join(*dir, "manifest.json")); err != nil {
			fmt.Fprintf(stderr, "campaign: %v (did a run create this directory?)\n", err)
			return 1
		}
	default:
		usage(stderr)
		return 2
	}

	store, err := profirt.OpenResultStore(filepath.Join(*dir, "results.jsonl"), c.Hash[:])
	if err != nil {
		fmt.Fprintf(stderr, "campaign: %v\n", err)
		return 1
	}
	defer store.Close()

	switch cmd {
	case "status":
		rep := c.Status(store)
		fmt.Fprintf(stdout, "campaign %s: %d/%d jobs done, %d/%d rows complete\n",
			c.Manifest.Name, rep.Done, rep.Jobs, rep.RowsDone, rep.Rows)
		return 0
	case "compact":
		before := fileSize(filepath.Join(*dir, "results.jsonl"))
		dropped := store.Stats().Dropped
		if err := store.Compact(); err != nil {
			fmt.Fprintf(stderr, "campaign: compact: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "campaign %s: compacted store: %d records kept, %d dead lines dropped, %d -> %d bytes\n",
			c.Manifest.Name, store.Len(), dropped, before, fileSize(filepath.Join(*dir, "results.jsonl")))
		return 0
	}

	// One Engine owns the worker pool, the durable store and the
	// per-row analysis cache for the whole run; every campaign job is
	// admitted onto that single bounded pool.
	eng := profirt.NewEngine(
		profirt.WithParallelism(*parallel),
		profirt.WithStore(store),
		profirt.WithCache(profirt.NewAnalysisCache(0)),
		profirt.WithRowSink(func(e profirt.TableRowEvent) {
			fmt.Fprintf(stderr, "row %d/%d: %s\n", e.Index+1, e.Total, strings.Join(e.Cells, "  "))
		}),
	)
	defer eng.Close()

	// -trace hangs an obs.Tracer on the run's context; every span the
	// stack records (campaign.run, pool jobs, memo lookups, row
	// reductions) lands in one trace_event file. The table is
	// byte-identical with or without it.
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer(cmd+" "+c.Manifest.Name, nil)
		ctx = obs.WithTracer(ctx, tracer)
	}
	res, err := eng.RunCampaign(ctx, c, profirt.CampaignOptions{StopAfter: *stopAfter})
	if tracer != nil {
		if terr := writeTrace(tracer, *traceFile); terr != nil {
			fmt.Fprintf(stderr, "campaign: trace: %v\n", terr)
		} else {
			fmt.Fprintf(stderr, "campaign: trace written to %s (%d spans)\n", *traceFile, len(tracer.Events()))
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "campaign: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "campaign %s: %d jobs (%d restored, %d executed, %d skipped); store: %d records\n",
		c.Manifest.Name, res.Jobs, res.Restored, res.Executed, res.Skipped, store.Len())
	if res.Skipped > 0 {
		fmt.Fprintf(stderr, "campaign: interrupted with %d jobs pending; rerun `campaign resume -dir %s` to finish\n",
			res.Skipped, *dir)
		return 3
	}
	if err := profirt.RenderTable(stdout, res.Table, *format); err != nil {
		fmt.Fprintf(stderr, "campaign: %v\n", err)
		return 1
	}
	return 0
}

// writeTrace exports the run's spans as Chrome trace_event JSON.
func writeTrace(tr *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := tr.WriteTo(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// fileSize returns the store size for the compact summary (0 when
// unreadable — the summary is informational).
func fileSize(path string) int64 {
	info, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return info.Size()
}

// snapshotManifest persists the resolved manifest into dir so resume
// and status need no external file; an existing snapshot must compile
// to the same grid (hash equality) or the run is refused.
func snapshotManifest(c *profirt.Campaign, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "manifest.json")
	if raw, err := os.ReadFile(path); err == nil {
		prev, err := profirt.ParseCampaign(raw)
		if err != nil {
			return fmt.Errorf("existing %s is not a valid manifest: %w", path, err)
		}
		if prev.Hash != c.Hash {
			return fmt.Errorf("%s holds a different campaign; use a fresh -dir", dir)
		}
		return nil
	}
	raw, err := json.MarshalIndent(c.Manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: campaign {run|resume|status|compact} [flags] (see -h per subcommand)")
}
