// Command profiserve serves one shared profirt.Engine over HTTP/JSON:
// schedulability analysis, simulation and campaign endpoints whose
// request bodies reuse the configfile JSON schemas, NDJSON streaming
// of campaign table rows, and /metrics exposing the Engine's pool,
// cache and store counters (Prometheus text or JSON).
//
// Every request becomes one Engine call on one bounded worker pool,
// so any number of clients share the machine fairly (round-robin
// admission at job granularity) and responses are byte-identical to
// direct library calls. SIGINT/SIGTERM drain gracefully: intake
// stops, in-flight requests finish, the Engine closes, exit 0.
//
// Observability: -log emits one structured (JSON, log/slog) access
// record per request; -trace-dir writes one Chrome trace_event JSON
// file per request (open in chrome://tracing or Perfetto); -debug-addr
// opens a second, separate listener exposing net/http/pprof — keep it
// off the service port and bound to localhost. /metrics always carries
// the Engine's latency histograms. All of it is observational only:
// responses stay byte-identical.
//
// Usage:
//
//	profiserve [-addr HOST:PORT] [-parallel N] [-cache] \
//	           [-max-inflight-per-client N] [-drain-timeout D] \
//	           [-log] [-trace-dir DIR] [-debug-addr HOST:PORT]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"profirt"
	"profirt/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stderr))
}

// run is main minus process plumbing, for in-process tests: it serves
// until ctx is cancelled (SIGINT/SIGTERM in production), then drains
// and returns the exit code. The listen address is printed to stderr
// as "listening on http://HOST:PORT" once the socket is open.
func run(ctx context.Context, args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("profiserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7494", "listen address (use :0 for an ephemeral port)")
	parallel := fs.Int("parallel", 0, "engine worker pool width (0 = GOMAXPROCS)")
	cache := fs.Bool("cache", true, "enable the shared analysis cache")
	maxInFlight := fs.Int("max-inflight-per-client", 16, "per-client in-flight request cap (0 = unlimited)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight requests")
	logAccess := fs.Bool("log", false, "emit structured (JSON) access logs to stderr")
	traceDir := fs.String("trace-dir", "", "write one Chrome trace_event JSON file per request into this directory")
	debugAddr := fs.String("debug-addr", "", "optional second listener exposing net/http/pprof (keep it private)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "profiserve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "profiserve: trace dir: %v\n", err)
			return 1
		}
	}

	opts := []profirt.EngineOption{profirt.WithParallelism(*parallel)}
	if *cache {
		opts = append(opts, profirt.WithCache(profirt.NewAnalysisCache(0)))
	}
	eng := profirt.NewEngine(opts...)

	sopts := serve.Options{MaxInFlightPerClient: *maxInFlight, TraceDir: *traceDir}
	if *logAccess {
		sopts.Logger = slog.New(slog.NewJSONHandler(stderr, nil))
	}
	srv := serve.New(eng, sopts)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		eng.Close()
		fmt.Fprintf(stderr, "profiserve: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stderr, "profiserve: listening on http://%s\n", ln.Addr())

	// The pprof listener is deliberately separate from the service
	// socket: profiling endpoints leak internals and must never be
	// reachable through whatever exposes -addr.
	var ds *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			eng.Close()
			fmt.Fprintf(stderr, "profiserve: debug listener: %v\n", err)
			return 1
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ds = &http.Server{Handler: dmux}
		fmt.Fprintf(stderr, "profiserve: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go ds.Serve(dln)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	closeDebug := func() {
		if ds != nil {
			ds.Close()
		}
	}

	select {
	case err := <-serveErr:
		closeDebug()
		eng.Close()
		fmt.Fprintf(stderr, "profiserve: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: Shutdown stops intake and waits for in-flight handlers;
	// only then does the Engine release its pool, so every admitted
	// request completes against a live Engine.
	fmt.Fprintln(stderr, "profiserve: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "profiserve: drain: %v\n", err)
		hs.Close()
		closeDebug()
		eng.Close()
		return 1
	}
	closeDebug()
	eng.Close()
	fmt.Fprintln(stderr, "profiserve: drained cleanly")
	return 0
}
