package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the server goroutine log to stderr while the test
// reads it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServer runs profiserve in-process on an ephemeral port and
// returns its base URL, the cancel that stands in for SIGTERM, the
// exit-code channel and the stderr buffer.
func startServer(t *testing.T, extra ...string) (string, context.CancelFunc, chan int, *syncBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stderr := &syncBuffer{}
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { exit <- run(ctx, args, stderr) }()

	// The banner "listening on http://HOST:PORT" appears once the
	// socket is open.
	deadline := time.Now().Add(10 * time.Second)
	var url string
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stderr:\n%s", stderr.String())
		}
		for _, line := range strings.Split(stderr.String(), "\n") {
			if i := strings.Index(line, "listening on "); i >= 0 {
				url = strings.TrimSpace(line[i+len("listening on "):])
			}
		}
		time.Sleep(time.Millisecond)
	}
	return url, cancel, exit, stderr
}

const testNetwork = `{
  "ttr": 2000, "horizon": 200000,
  "masters": [
    {"addr": 1, "streams": [
      {"name": "a", "slave": 30, "high": true, "period": 20000, "deadline": 15000},
      {"name": "b", "slave": 30, "high": true, "period": 50000, "deadline": 40000}]}
  ],
  "slaves": [{"addr": 30, "tsdr": 30}]
}`

const testManifest = `{
  "name": "profiserve-e2e",
  "seed": 3,
  "trials": 2,
  "policies": ["fcfs", "dm"],
  "deadlineScales": [1.0, 0.4],
  "networks": [{"name": "cell", "network": ` + testNetwork + `}]
}`

// TestProfiserveEndToEnd drives the real binary's run() over a real
// socket: analyze, stream a campaign, scrape metrics, then deliver
// SIGTERM (ctx cancel) with a request in flight and require a clean
// exit 0 after that request completes.
func TestProfiserveEndToEnd(t *testing.T) {
	url, cancel, exit, stderr := startServer(t, "-parallel", "2", "-drain-timeout", "2m")
	defer cancel()

	// Analyze.
	body := `{"networks": [` + testNetwork + `]}`
	resp, err := http.Post(url+"/v1/analyze/networks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	analyzed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, analyzed)
	}
	var out struct {
		Results []struct {
			Index int `json:"index"`
		} `json:"results"`
	}
	if err := json.Unmarshal(analyzed, &out); err != nil || len(out.Results) != 1 {
		t.Fatalf("analyze response malformed: %v %s", err, analyzed)
	}

	// Streamed campaign: rows then done.
	resp, err = http.Post(url+"/v1/campaign", "application/json",
		strings.NewReader(`{"manifest": `+testManifest+`}`))
	if err != nil {
		t.Fatal(err)
	}
	var rows, dones int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Type  string `json:"type"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "row":
			rows++
		case "done":
			dones++
		case "error":
			t.Fatalf("campaign stream error: %s", ev.Error)
		}
	}
	resp.Body.Close()
	if rows == 0 || dones != 1 {
		t.Fatalf("campaign stream: %d rows, %d done events", rows, dones)
	}

	// Metrics reflect the traffic.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`profiserve_engine_op_calls_total{op="analyze_networks"} 1`,
		`profiserve_engine_op_calls_total{op="run_campaign"} 1`,
		"profiserve_pool_jobs_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// SIGTERM with a slow request in flight: the request must complete
	// with a full result and the server must exit 0. The long horizon
	// keeps the batch on the workers long enough for the test to watch
	// it in /metrics before delivering the signal.
	slowNetwork := strings.Replace(testNetwork, `"horizon": 200000`, `"horizon": 20000000`, 1)
	slow := `{"networks": [` + strings.TrimSuffix(strings.Repeat(slowNetwork+",", 8), ",") + `]}`
	type reply struct {
		code int
		body []byte
		err  error
	}
	inFlight := make(chan reply, 1)
	go func() {
		resp, err := http.Post(url+"/v1/simulate/batch", "application/json", strings.NewReader(slow))
		if err != nil {
			inFlight <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		inFlight <- reply{code: resp.StatusCode, body: b, err: err}
	}()
	// Give the request a beat to reach the handler, then "SIGTERM".
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(scrape(t, url), "profiserve_server_active_requests 1") {
		if time.Now().After(deadline) {
			t.Fatal("slow request never became active")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	r := <-inFlight
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request got %d during drain: %s", r.code, r.body)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server never exited after SIGTERM; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Fatalf("drain never finished; stderr:\n%s", stderr.String())
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// TestProfiserveBadFlags: flag errors exit 2 without binding a socket.
func TestProfiserveBadFlags(t *testing.T) {
	stderr := &syncBuffer{}
	if code := run(context.Background(), []string{"-bogus"}, stderr); code != 2 {
		t.Fatalf("unknown flag: exit %d", code)
	}
	if code := run(context.Background(), []string{"extra"}, stderr); code != 2 {
		t.Fatalf("stray argument: exit %d", code)
	}
}

// TestProfiserveImmediateSigterm: SIGTERM with nothing in flight still
// drains and exits 0.
func TestProfiserveImmediateSigterm(t *testing.T) {
	_, cancel, exit, stderr := startServer(t)
	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server never exited; stderr:\n%s", stderr.String())
	}
}
