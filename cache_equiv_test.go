package profirt_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"profirt"
	"profirt/internal/workload"
)

// This file holds the equivalence property the analysis cache rests
// on: for any population of networks, topologies and holistic
// configurations, evaluation with a cache — including one cache shared
// by concurrent batch callers, exercised under -race — must produce
// results byte-identical to uncached evaluation. The cache is content-
// addressed, so this is exactly the claim that its canonical key never
// conflates two inputs with different answers.

// equivNets draws a varied network population with deliberate repeats:
// the tiling guarantees cache hits (the point of the cache) while the
// distinct prefix guarantees misses.
func equivNets(seed int64, distinct, copies int) []profirt.Network {
	rng := rand.New(rand.NewSource(seed))
	nets := make([]profirt.Network, 0, distinct*copies)
	for i := 0; i < distinct; i++ {
		p := workload.DefaultStreamSetParams()
		p.Masters = 1 + rng.Intn(3)
		p.StreamsPerMaster = 1 + rng.Intn(4)
		p.TTR = profirt.Ticks(1_000 + rng.Intn(4_000))
		if rng.Intn(2) == 0 {
			p.LowPriorityLoad = true
		}
		if rng.Intn(3) == 0 {
			p.MaxJitter = 2_000
		}
		n, _ := workload.StreamSet(rng, p)
		nets = append(nets, n)
	}
	for c := 1; c < copies; c++ {
		nets = append(nets, nets[:distinct]...)
	}
	return nets
}

// TestCacheEquivalenceAnalyzeBatch is the core property: AnalyzeBatch
// with caching disabled and with one shared cache hammered by
// concurrent callers must agree result-for-result. Run under -race
// (make ci) this doubles as the data-race gate for the shared table.
func TestCacheEquivalenceAnalyzeBatch(t *testing.T) {
	nets := equivNets(17, 48, 3)
	want := profirt.AnalyzeBatch(nets, profirt.BatchOptions{})

	shared := profirt.NewAnalysisCache(0)
	const callers = 4
	got := make([][]profirt.BatchResult, callers)
	var wg sync.WaitGroup
	for w := 0; w < callers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[w] = profirt.AnalyzeBatch(nets, profirt.BatchOptions{
				Cache:       shared,
				Parallelism: 2,
			})
		}()
	}
	wg.Wait()
	for w := range got {
		if !reflect.DeepEqual(got[w], want) {
			for i := range want {
				if !reflect.DeepEqual(got[w][i], want[i]) {
					t.Fatalf("caller %d: cached result for net %d diverged:\ncached:   %+v\nuncached: %+v", w, i, got[w][i], want[i])
				}
			}
			t.Fatalf("caller %d: cached batch diverged", w)
		}
	}
	s := shared.Stats()
	if s.Hits == 0 {
		t.Errorf("no cache hits on a batch with repeated networks (stats %+v)", s)
	}
	if s.Misses == 0 {
		t.Errorf("no cache misses (stats %+v); the test never exercised population", s)
	}
}

// equivTopology builds a two-segment bridged topology from the drawn
// networks, relaying the first stream of segment A onto the first
// stream of segment B.
func equivTopology(rng *rand.Rand) profirt.Topology {
	seg := func(name string, pol profirt.QueuePolicy) profirt.TopologySegment {
		p := workload.DefaultStreamSetParams()
		p.Masters = 1 + rng.Intn(2)
		p.StreamsPerMaster = 2
		p.TTR = profirt.Ticks(2_000 + rng.Intn(2_000))
		n, _ := workload.StreamSet(rng, p)
		for mi := range n.Masters {
			for si := range n.Masters[mi].High {
				n.Masters[mi].High[si].Name = fmt.Sprintf("%s-m%d-s%d", name, mi, si)
			}
		}
		return profirt.TopologySegment{Name: name, Net: n, Dispatcher: pol}
	}
	policies := []profirt.QueuePolicy{profirt.FCFS, profirt.DM, profirt.EDF}
	a := seg("a", policies[rng.Intn(3)])
	b := seg("b", policies[rng.Intn(3)])
	return profirt.Topology{
		Segments: []profirt.TopologySegment{a, b},
		Bridges: []profirt.Bridge{{
			Name: "ab", From: "a", To: "b",
			Latency: profirt.Ticks(500 + rng.Intn(1_500)),
			Relays: []profirt.Relay{{
				Name:       "r0",
				FromStream: a.Net.Masters[0].High[0].Name,
				ToStream:   b.Net.Masters[0].High[0].Name,
				Deadline:   profirt.Ticks(200_000 + rng.Intn(200_000)),
			}},
		}},
	}
}

// TestCacheEquivalenceTopologyBatch extends the property across the
// cross-segment jitter fixed point: cached and uncached
// AnalyzeTopologyBatch must agree on every verdict and end-to-end
// bound, with the cache visibly consulted (the fixed point re-analyzes
// unchanged segments every iteration, so even one topology hits).
func TestCacheEquivalenceTopologyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tops := make([]profirt.Topology, 0, 18)
	for i := 0; i < 6; i++ {
		tops = append(tops, equivTopology(rng))
	}
	tops = append(tops, tops[:6]...) // repeats guarantee cross-entry hits
	tops = append(tops, tops[:6]...)

	want := profirt.AnalyzeTopologyBatch(tops, profirt.BatchOptions{})
	cache := profirt.NewAnalysisCache(0)
	got := profirt.AnalyzeTopologyBatch(tops, profirt.BatchOptions{Cache: cache, Parallelism: 4})
	for i := range want {
		if want[i].Err != nil || got[i].Err != nil {
			if fmt.Sprint(want[i].Err) != fmt.Sprint(got[i].Err) {
				t.Fatalf("topology %d: error mismatch: %v vs %v", i, got[i].Err, want[i].Err)
			}
			continue
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("topology %d: cached analysis diverged:\ncached:   %+v\nuncached: %+v", i, got[i], want[i])
		}
	}
	if s := cache.Stats(); s.Hits == 0 {
		t.Errorf("no cache hits across the topology batch (stats %+v)", s)
	}
}

// equivHolistic draws a small transaction system in the style of E13.
func equivHolistic(rng *rand.Rand, pol profirt.QueuePolicy) profirt.HolisticConfig {
	cfg := profirt.HolisticConfig{TTR: 1_000, TokenPass: profirt.Ticks(rng.Intn(100))}
	masters := 1 + rng.Intn(2)
	for m := 0; m < masters; m++ {
		spec := profirt.HolisticMaster{Name: fmt.Sprintf("m%d", m), Dispatcher: pol}
		if rng.Intn(2) == 0 {
			spec.LongestLow = profirt.Ticks(300 + rng.Intn(400))
		}
		for x := 0; x < 1+rng.Intn(3); x++ {
			period := profirt.Ticks((2 + rng.Intn(6)) * 10_000)
			spec.Transactions = append(spec.Transactions, profirt.HolisticTransaction{
				Name: fmt.Sprintf("tx%d-%d", m, x),
				Generation: profirt.Task{
					Name: fmt.Sprintf("g%d-%d", m, x),
					C:    profirt.Ticks(200 + rng.Intn(800)),
					D:    period / 2,
					T:    period,
				},
				Stream:   profirt.Stream{Name: fmt.Sprintf("s%d-%d", m, x), Ch: profirt.Ticks(300 + rng.Intn(300)), D: period / 2},
				Delivery: profirt.Ticks(100 + rng.Intn(400)),
				Deadline: period,
			})
		}
		cfg.Masters = append(cfg.Masters, spec)
	}
	return cfg
}

// TestCacheEquivalenceHolistic covers the third composed layer: the
// holistic task/message/delivery fixed point with HolisticConfig.Cache
// set must converge to exactly the uncached result.
func TestCacheEquivalenceHolistic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cache := profirt.NewAnalysisCache(0)
	checked := 0
	for trial := 0; trial < 40; trial++ {
		for _, pol := range []profirt.QueuePolicy{profirt.FCFS, profirt.DM, profirt.EDF} {
			cfg := equivHolistic(rng, pol)
			want, errW := profirt.AnalyzeHolistic(cfg)
			cfg.Cache = cache
			got, errG := profirt.AnalyzeHolistic(cfg)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("trial %d/%v: error mismatch: %v vs %v", trial, pol, errG, errW)
			}
			if errW != nil {
				continue
			}
			checked++
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d/%v: cached holistic result diverged:\ncached:   %+v\nuncached: %+v", trial, pol, got, want)
			}
		}
	}
	if checked < 60 {
		t.Fatalf("only %d holistic configs analysed; generator degenerated", checked)
	}
	if s := cache.Stats(); s.Hits == 0 {
		t.Errorf("no holistic cache hits (stats %+v)", s)
	}
}

// TestCachedWarmSpeedup is the runnable form of the perf acceptance
// criterion (BenchmarkAnalyzeCached{Cold,Warm} measure it precisely):
// on a batch of repeated networks, a warmed cache must be at least 2x
// faster than cold evaluation. The margin in practice is an order of
// magnitude — every warm lookup replaces a full DM+EDF fixed point —
// so the 2x assertion stays far from scheduler noise.
func TestCachedWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped with -short")
	}
	// Heavier networks than the equivalence populations: the DM/EDF
	// fixed points grow superlinearly in the stream count while a warm
	// lookup stays a hash over it, so big masters widen the measured
	// gap well past the asserted bound.
	rng := rand.New(rand.NewSource(41))
	nets := make([]profirt.Network, 64)
	for i := range nets {
		p := workload.DefaultStreamSetParams()
		p.Masters, p.StreamsPerMaster = 4, 6
		p.MaxJitter = 2_000
		nets[i], _ = workload.StreamSet(rng, p)
	}
	nets = append(nets, nets...)
	run := func(c *profirt.AnalysisCache) time.Duration {
		start := time.Now()
		profirt.AnalyzeBatch(nets, profirt.BatchOptions{Parallelism: 1, Cache: c})
		return time.Since(start)
	}
	warmCache := profirt.NewAnalysisCache(0)
	run(warmCache) // populate
	cold, warm := time.Duration(1<<62), time.Duration(1<<62)
	for rep := 0; rep < 3; rep++ {
		if d := run(profirt.NewAnalysisCache(0)); d < cold {
			cold = d
		}
		if d := run(warmCache); d < warm {
			warm = d
		}
	}
	t.Logf("cold %v, warm %v (%.1fx)", cold, warm, float64(cold)/float64(warm))
	if warm*2 > cold {
		t.Errorf("warm cache not ≥2x faster: cold %v, warm %v", cold, warm)
	}
}
