package profirt

import (
	"context"

	"profirt/internal/ap"
	"profirt/internal/campaign"
	"profirt/internal/core"
	"profirt/internal/cpusim"
	"profirt/internal/fdl"
	"profirt/internal/holistic"
	"profirt/internal/memo"
	"profirt/internal/profibus"
	"profirt/internal/sched"
	"profirt/internal/stats"
	"profirt/internal/timeunit"
	"profirt/internal/topology"
)

// Ticks is the integer time base: one tick is one bit time at the
// configured baud rate for the PROFIBUS APIs, or an arbitrary quantum
// for the task-level APIs.
type Ticks = timeunit.Ticks

// MaxTicks marks divergent/unschedulable results.
const MaxTicks = timeunit.MaxTicks

// Task-level schedulability analysis (the paper's Section 2 survey).
type (
	// Task is a periodic/sporadic task with C, D, T, J, B attributes.
	Task = sched.Task
	// TaskSet is a priority-ordered task collection.
	TaskSet = sched.TaskSet
	// FPOptions tunes fixed-priority response-time analysis.
	FPOptions = sched.FPOptions
	// EDFOptions tunes the EDF response-time analyses.
	EDFOptions = sched.EDFOptions
	// FeasibilityReport carries demand-test outcomes.
	FeasibilityReport = sched.FeasibilityReport
)

// Fixed-priority and EDF analysis entry points (Section 2).
var (
	// SortRM orders a task set rate-monotonically.
	SortRM = sched.SortRM
	// SortDM orders a task set deadline-monotonically.
	SortDM = sched.SortDM
	// LiuLaylandBound is n(2^{1/n}−1).
	LiuLaylandBound = sched.LiuLaylandBound
	// ResponseTimesFP is the (non-)preemptive fixed-priority RTA.
	ResponseTimesFP = sched.ResponseTimesFP
	// FPSchedulable checks R_i <= D_i under ResponseTimesFP.
	FPSchedulable = sched.FPSchedulable
	// EDFFeasiblePreemptive is the Eq. 3 processor-demand test.
	EDFFeasiblePreemptive = sched.EDFFeasiblePreemptive
	// EDFFeasibleNonPreemptiveZS is the Eq. 4 Zheng–Shin test.
	EDFFeasibleNonPreemptiveZS = sched.EDFFeasibleNonPreemptiveZS
	// EDFFeasibleNonPreemptiveGeorge is the Eq. 5 refined test.
	EDFFeasibleNonPreemptiveGeorge = sched.EDFFeasibleNonPreemptiveGeorge
	// ResponseTimesEDFPreemptive is Spuri's analysis (Eqs. 6–8).
	ResponseTimesEDFPreemptive = sched.ResponseTimesEDFPreemptive
	// ResponseTimesEDFNonPreemptive is George et al.'s (Eqs. 9–10).
	ResponseTimesEDFNonPreemptive = sched.ResponseTimesEDFNonPreemptive
)

// PROFIBUS message scheduling (the paper's contribution, Sections 3–4).
type (
	// Stream is a high-priority message stream (C_hi, D, T, J).
	Stream = core.Stream
	// Master is one master station's traffic model.
	Master = core.Master
	// Network is the analysed PROFIBUS configuration.
	Network = core.Network
	// StreamVerdict pairs a stream with its bound and verdict.
	StreamVerdict = core.StreamVerdict
	// DMMessageOptions tunes the Eq. 16 analysis.
	DMMessageOptions = core.DMOptions
	// EDFMessageOptions tunes the Eqs. 17–18 analysis.
	EDFMessageOptions = core.EDFOptions
	// EndToEnd decomposes E = g + Q + C + d (Sec. 4.2).
	EndToEnd = core.EndToEnd
)

// Message-level analysis entry points (Sections 3–4).
var (
	// FCFSResponseTime is Eq. 11: R = nh·T_cycle.
	FCFSResponseTime = core.FCFSResponseTime
	// FCFSSchedulable is the Eq. 12 network test.
	FCFSSchedulable = core.FCFSSchedulable
	// MaxTTR is the Eq. 15 rule for setting T_TR.
	MaxTTR = core.MaxTTR
	// DMResponseTimes is the Eq. 16 analysis (literal or revised).
	DMResponseTimes = core.DMResponseTimes
	// DMSchedulable applies Eq. 16 across a network.
	DMSchedulable = core.DMSchedulable
	// EDFMessageResponseTimes is the Eqs. 17–18 analysis.
	EDFMessageResponseTimes = core.EDFResponseTimes
	// EDFSchedulableNet applies Eqs. 17–18 across a network.
	EDFSchedulableNet = core.EDFSchedulableNet
	// ComposeEndToEnd builds the Sec. 4.2 decomposition.
	ComposeEndToEnd = core.Compose
)

// PROFIBUS simulation substrate.
type (
	// BusParams carries DIN 19245 timing parameters.
	BusParams = fdl.BusParams
	// Frame is an FDL frame (SD1/SD2/SD3/token/short-ack).
	Frame = fdl.Frame
	// SimConfig configures a network simulation.
	SimConfig = profibus.Config
	// SimMasterConfig describes one simulated master.
	SimMasterConfig = profibus.MasterConfig
	// SimStreamConfig describes one simulated stream.
	SimStreamConfig = profibus.StreamConfig
	// SimSlaveConfig describes a responder.
	SimSlaveConfig = profibus.SlaveConfig
	// SimResult is a simulation outcome.
	SimResult = profibus.Result
	// QueuePolicy selects the AP dispatcher (FCFS/DM/EDF).
	QueuePolicy = ap.Policy
	// SimJitterMode selects the release-jitter realisation.
	SimJitterMode = profibus.JitterMode
)

// Release-jitter realisations for SimConfig.Jitter.
const (
	// SimJitterNone releases at nominal instants.
	SimJitterNone = profibus.JitterNone
	// SimJitterRandom delays readiness uniformly in [0, J].
	SimJitterRandom = profibus.JitterRandom
	// SimJitterAdversarial delays only the first release by the full J.
	SimJitterAdversarial = profibus.JitterAdversarial
)

// AP dispatching policies for SimMasterConfig.Dispatcher.
const (
	// FCFS reproduces the stock PROFIBUS outgoing queue.
	FCFS = ap.FCFS
	// DM enables the paper's architecture with a DM-ordered AP queue.
	DM = ap.DM
	// EDF enables the paper's architecture with an EDF-ordered queue.
	EDF = ap.EDF
)

// Simulation entry points.
var (
	// DefaultBusParams is a representative 500 kbit/s parameter set.
	DefaultBusParams = fdl.DefaultBusParams
	// Simulate runs the PROFIBUS network simulator.
	Simulate = profibus.Simulate
)

// Batch simulation: the simulation counterpart of AnalyzeBatch. Many
// independent runs fan out across the shared bounded worker pool; each
// run i simulates cfgs[i] with its seed replaced by
// Seed ⊕ FNV-1a(i) (SimBatchSeed) unless ConfigSeeds is set, so the
// batch is a pure function of (configs, base seed) and its results are
// byte-identical at any Parallelism. Cancellation via Context returns
// unstarted runs with Skipped set; OnResult streams each run's outcome
// the moment it completes.
type (
	// SimBatchOptions tunes SimulateBatch.
	SimBatchOptions = profibus.BatchOptions
	// SimBatchResult is SimulateBatch's outcome for one configuration.
	SimBatchResult = profibus.BatchResult
)

// SimulateBatch runs many network simulations concurrently on the
// package-default Engine's shared pool (opts.Pool, when set by an
// in-module caller, selects another pool). New code should construct
// an Engine and call Engine.SimulateBatch.
func SimulateBatch(cfgs []SimConfig, opts SimBatchOptions) []SimBatchResult {
	if opts.Pool == nil {
		opts.Pool = Default().pool
	}
	return profibus.SimulateBatch(cfgs, opts)
}

// SimBatchSeed derives run index's seed from the batch base seed.
var SimBatchSeed = profibus.BatchSeed

// Single-processor simulation substrate (validating Section 2).
type (
	// CPUPolicy selects the uniprocessor scheduling discipline.
	CPUPolicy = cpusim.Policy
	// CPUSimOptions configures a uniprocessor simulation.
	CPUSimOptions = cpusim.Options
	// CPUSimResult is its outcome.
	CPUSimResult = cpusim.Result
)

// Uniprocessor disciplines.
const (
	// FPPreemptive is preemptive fixed-priority dispatching.
	FPPreemptive = cpusim.FPPreemptive
	// FPNonPreemptive is non-preemptive fixed-priority dispatching.
	FPNonPreemptive = cpusim.FPNonPreemptive
	// EDFPreemptive is preemptive EDF dispatching.
	EDFPreemptive = cpusim.EDFPreemptive
	// EDFNonPreemptive is non-preemptive EDF dispatching.
	EDFNonPreemptive = cpusim.EDFNonPreemptive
)

// SimulateCPU runs the uniprocessor scheduling simulator.
var SimulateCPU = cpusim.Run

// Holistic end-to-end analysis (Sec. 4.1–4.2 composed with Sec. 2).
type (
	// HolisticConfig describes transactions (generation task, message
	// stream, delivery cost, end-to-end deadline) per master.
	HolisticConfig = holistic.Config
	// HolisticMaster is one master's transactions and dispatcher.
	HolisticMaster = holistic.MasterSpec
	// HolisticTransaction is one sensor-to-actuator transaction.
	HolisticTransaction = holistic.Transaction
	// HolisticResult is the fixed-point outcome with per-transaction
	// end-to-end breakdowns.
	HolisticResult = holistic.Result
)

// AnalyzeHolistic solves the coupled task/message/delivery fixed point.
var AnalyzeHolistic = holistic.Analyze

// Content-addressed analysis memoization. An AnalysisCache maps a
// canonical hash of (normalized stream multiset, T_cycle, analysis
// kind, options) to the computed response-time bounds, so repeated
// fixed points — across batch entries, topology iterations, holistic
// rounds and experiment sweeps — are solved once. Caching is opt-in
// (BatchOptions.Cache, TopologyOptions.Cache, HolisticConfig.Cache)
// and results are byte-identical with or without a cache; the
// cache_equiv_test.go property test enforces that. Memory is bounded
// (NewAnalysisCache's maxEntries, default 1<<16 entries with random
// replacement); a cache is safe to share between any number of
// concurrent callers.
type (
	// AnalysisCache is the shared, sharded, bounded result cache.
	AnalysisCache = memo.Cache
	// AnalysisCacheStats is a point-in-time hit/miss/eviction snapshot.
	AnalysisCacheStats = memo.Stats
)

// Cached analysis entry points. Each takes the cache first and accepts
// nil for "caching disabled" (plain delegation to the uncached form).
var (
	// NewAnalysisCache builds a cache bounded to maxEntries results
	// (<= 0 selects the default 1<<16).
	NewAnalysisCache = memo.New
	// DMSchedulableCached is DMSchedulable with memoized per-master
	// bounds.
	DMSchedulableCached = memo.DMSchedulable
	// EDFSchedulableNetCached is EDFSchedulableNet with memoized
	// per-master bounds.
	EDFSchedulableNetCached = memo.EDFSchedulableNet
	// DMResponseTimesCached is DMResponseTimes memoized.
	DMResponseTimesCached = memo.DMResponseTimes
	// EDFMessageResponseTimesCached is EDFMessageResponseTimes memoized.
	EDFMessageResponseTimesCached = memo.EDFResponseTimes
)

// Durable result persistence. A ResultStore is the disk-backed sibling
// of AnalysisCache: an append-only, integrity-hashed JSONL file mapping
// content addresses to result payloads, surviving process death. The
// campaign engine writes every completed job through it, so a killed
// sweep resumes from its completed work and a repeated sweep against
// the same store is warm-started. Torn or corrupted lines (a kill
// mid-write) are dropped at open — they only cost a recomputation. A
// store is bound at creation to the meta bytes it was opened with (the
// campaign manifest hash); reopening under different meta fails.
type (
	// ResultStore is the disk-backed content-addressed result store.
	ResultStore = memo.Store
	// ResultStoreStats is a point-in-time store counter snapshot.
	ResultStoreStats = memo.StoreStats
)

// OpenResultStore opens (or creates) the store at path, bound to meta.
var OpenResultStore = memo.OpenStore

// Durable sweep campaigns: a JSON manifest describing a grid of
// networks × deadline scales × dispatching policies × trials compiles
// into content-addressed simulation jobs executed via SimulateBatch,
// with results written through a ResultStore and table rows streamed
// in grid order as they complete. See internal/campaign for the model
// and cmd/campaign for the CLI (run/resume/status).
type (
	// Campaign is a compiled sweep-campaign manifest.
	Campaign = campaign.Campaign
	// CampaignManifest is the JSON manifest schema.
	CampaignManifest = campaign.Manifest
	// CampaignNetworkSpec names one swept network (inline or by file).
	CampaignNetworkSpec = campaign.NetworkSpec
	// CampaignJob is one compiled unit of campaign work.
	CampaignJob = campaign.Job
	// CampaignRunOptions tunes Campaign.Run.
	CampaignRunOptions = campaign.RunOptions
	// CampaignRunResult summarizes one Campaign.Run.
	CampaignRunResult = campaign.RunResult
	// CampaignEvent reports one settled campaign job.
	CampaignEvent = campaign.Event
	// CampaignStatus summarizes a store's coverage of a campaign.
	CampaignStatus = campaign.StatusReport
	// TableRowEvent is one table row released in grid order by a
	// row-streaming sink (CampaignRunOptions.RowSink).
	TableRowEvent = stats.RowEvent
)

var (
	// NewCampaign compiles a manifest value.
	NewCampaign = campaign.New
	// ParseCampaign compiles a manifest from JSON bytes (inline
	// networks only; file references resolve via LoadCampaign).
	ParseCampaign = campaign.Parse
	// LoadCampaign reads, resolves and compiles a manifest file.
	LoadCampaign = campaign.Load
)

// Multi-segment topologies: several token rings coupled by
// store-and-forward bridges that relay selected streams across rings
// (see internal/topology for the model).
type (
	// Topology is a bridged multi-segment installation under analysis.
	Topology = topology.Topology
	// TopologySegment is one analysed ring (core.Network + dispatcher).
	TopologySegment = topology.Segment
	// Bridge is a store-and-forward link between two segments.
	Bridge = topology.Bridge
	// Relay forwards one high-priority stream across a bridge.
	Relay = topology.Relay
	// TopologyOptions tunes AnalyzeTopology.
	TopologyOptions = topology.Options
	// TopologyResult carries per-segment verdicts and per-relay
	// end-to-end bounds.
	TopologyResult = topology.Result
	// TopologySegmentReport is one segment's analytic outcome.
	TopologySegmentReport = topology.SegmentReport
	// TopologyRelayReport is one relay's end-to-end outcome.
	TopologyRelayReport = topology.RelayReport
	// SimTopology is a bridged multi-segment installation under
	// simulation.
	SimTopology = topology.SimTopology
	// SimTopologySegment is one simulated ring (profibus.Config).
	SimTopologySegment = topology.SimSegment
	// TopologySimOptions tunes SimulateTopology.
	TopologySimOptions = topology.SimOptions
	// TopologySimResult is the sharded simulation outcome.
	TopologySimResult = topology.SimResult
	// RelaySimStats aggregates one relay's observed end-to-end delays.
	RelaySimStats = topology.RelaySimStats
)

// Topology entry points.
var (
	// AnalyzeTopology composes the per-segment analyses across bridges
	// by jitter inheritance, yielding per-segment DM/EDF/FCFS verdicts
	// and origin-anchored end-to-end bounds per relay.
	AnalyzeTopology = topology.Analyze
	// SimulateTopology shards the simulator per segment on the shared
	// worker pool, exchanging relayed releases at bridge points;
	// results are byte-identical at any parallelism.
	SimulateTopology = topology.Simulate
)

// BatchOptions tunes the legacy AnalyzeBatch and AnalyzeTopologyBatch
// free functions. New code should construct an Engine: its
// AnalyzeNetworks/AnalyzeTopologies methods split these knobs into
// AnalyzeOptions and TopologyAnalyzeOptions, so every field applies to
// the call it is passed to.
type BatchOptions struct {
	// Parallelism bounds the batch's concurrently evaluated networks.
	// 0 means the full pool (runtime.GOMAXPROCS(0) workers); 1 forces
	// sequential evaluation on the calling goroutine. The batch runs on
	// the package-default Engine's shared pool, so values above the
	// pool width are clamped to it.
	Parallelism int
	// Context cancels the batch early; nil means context.Background().
	// Networks not yet evaluated when the context is done are returned
	// with Skipped set.
	Context context.Context
	// DM tunes the Eq. 16 analysis applied to every network.
	DM DMMessageOptions
	// EDF tunes the Eqs. 17–18 analysis applied to every network.
	EDF EDFMessageOptions
	// MaxIterations caps the cross-segment jitter fixed point solved
	// per topology, and therefore applies to AnalyzeTopologyBatch ONLY
	// (0 means the topology default of 64). AnalyzeBatch has no such
	// fixed point and ignores the field entirely — setting it there has
	// no effect. Engine.AnalyzeNetworks omits the knob and
	// Engine.AnalyzeTopologies validates it, making the contract
	// explicit.
	MaxIterations int
	// Cache memoizes the DM/EDF response-time fixed points across the
	// batch on a shared content-addressed table (nil disables).
	// Batches with repeated or overlapping stream sets skip the
	// recomputation entirely; results are byte-identical either way.
	// The cache may be shared between concurrent batches and reused
	// across calls. The closed-form FCFS bound is never cached.
	Cache *AnalysisCache
}

// PolicyVerdict is one dispatching policy's outcome for one network.
type PolicyVerdict struct {
	// Schedulable reports whether every stream met its deadline bound.
	Schedulable bool
	// Verdicts holds the per-stream bounds in network order.
	Verdicts []StreamVerdict
}

// BatchResult is AnalyzeBatch's outcome for one network.
type BatchResult struct {
	// Index is the network's position in the input slice.
	Index int
	// Skipped marks networks left unevaluated after cancellation.
	Skipped bool
	// FCFS is the Eq. 11/12 verdict (the stock PROFIBUS queue).
	FCFS PolicyVerdict
	// DM is the revised Eq. 16 verdict.
	DM PolicyVerdict
	// EDF is the Eqs. 17–18 verdict.
	EDF PolicyVerdict
}

// AnalyzeBatch evaluates the FCFS, DM and EDF schedulability analyses
// for many network configurations concurrently — a thin delegate to
// the package-default Engine's shared worker pool (new code should
// construct an Engine and call Engine.AnalyzeNetworks). Results are
// returned in input order: out[i] describes nets[i]. The analyses are
// pure functions of each Network, so the batch is deterministic
// regardless of Parallelism. Cancel via opts.Context to stop early;
// remaining networks come back with Skipped set. opts.MaxIterations is
// a topology-only knob and has no effect here (see BatchOptions).
func AnalyzeBatch(nets []Network, opts BatchOptions) []BatchResult {
	return Default().analyzeNetworks(opts.Context, nets, opts.DM, opts.EDF, opts.Cache, opts.Parallelism)
}

// TopologyBatchResult is AnalyzeTopologyBatch's outcome for one
// topology.
type TopologyBatchResult struct {
	// Index is the topology's position in the input slice.
	Index int
	// Skipped marks topologies left unevaluated after cancellation.
	Skipped bool
	// Err reports a structurally invalid topology; Result is zero then.
	Err error
	// Result is the analysis outcome.
	Result TopologyResult
}

// AnalyzeTopologyBatch extends AnalyzeBatch to segment-topology sweeps:
// it evaluates AnalyzeTopology for many bridged multi-segment
// configurations concurrently on the package-default Engine's shared
// pool, with the same ordering, determinism and cancellation contract
// (new code should construct an Engine and call
// Engine.AnalyzeTopologies). The DM/EDF option fields tune the
// per-segment analyses; MaxIterations caps each topology's
// cross-segment fixed point.
func AnalyzeTopologyBatch(tops []Topology, opts BatchOptions) []TopologyBatchResult {
	topts := topology.Options{DM: opts.DM, EDF: opts.EDF, MaxIterations: opts.MaxIterations, Cache: opts.Cache}
	return Default().analyzeTopologies(opts.Context, tops, topts, opts.Parallelism)
}

// NetworkFromSimConfig derives the analytic model (Network) from a
// simulator configuration, so one description drives both analysis and
// simulation: worst-case message-cycle lengths C_hi are computed from
// the configured frame payloads, station delays and retry budget, and
// low-priority streams contribute the master's Cl term.
var NetworkFromSimConfig = topology.NetworkFromSimConfig

// TopologyFromSimTopology derives the analytic topology from a
// simulated one (NetworkFromSimConfig per segment; each segment's
// analysis dispatcher comes from its first master).
var TopologyFromSimTopology = topology.FromSim
