package topology

import (
	"fmt"

	"profirt/internal/core"
	"profirt/internal/profibus"
)

// NetworkFromSimConfig derives the analytic model (core.Network) from a
// simulator configuration, so one description drives both analysis and
// simulation: worst-case message-cycle lengths C_hi are computed from
// the configured frame payloads, station delays and retry budget, and
// low-priority streams contribute the master's Cl term.
func NetworkFromSimConfig(cfg profibus.Config) core.Network {
	net := core.Network{TTR: cfg.TTR, TokenPass: cfg.Bus.TokenPassTicks()}
	if cfg.GapFactor > 0 {
		net.GapPoll = cfg.Bus.WorstGapPollTicks()
	}
	for _, mc := range cfg.Masters {
		m := core.Master{Name: fmt.Sprintf("M%d", mc.Addr)}
		for _, sc := range mc.Streams {
			ch := sc.WorstCycleTicks(mc.Addr, cfg.Bus)
			if sc.High {
				m.High = append(m.High, core.Stream{
					Name: sc.Name, Ch: ch, D: sc.Deadline, T: sc.Period, J: sc.Jitter,
				})
			} else if ch > m.LongestLow {
				m.LongestLow = ch
			}
		}
		net.Masters = append(net.Masters, m)
	}
	return net
}

// FromSim derives the analytic topology from a simulated one, so one
// description drives both views: each segment's network comes from
// NetworkFromSimConfig, and its analysis dispatcher from the segment's
// first master (the analytic layer models one policy per segment; give
// mixed-dispatcher segments an explicit analytic Topology instead).
func FromSim(t SimTopology) Topology {
	var out Topology
	for _, s := range t.Segments {
		seg := Segment{Name: s.Name, Net: NetworkFromSimConfig(s.Cfg)}
		if len(s.Cfg.Masters) > 0 {
			seg.Dispatcher = s.Cfg.Masters[0].Dispatcher
		}
		out.Segments = append(out.Segments, seg)
	}
	out.Bridges = append([]Bridge(nil), t.Bridges...)
	return out
}
