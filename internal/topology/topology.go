// Package topology models multi-segment PROFIBUS installations: several
// independent token rings (segments), coupled by store-and-forward
// bridges that relay selected message streams from one ring to another.
// The paper analyses a single ring; coupling segments is the step that
// unlocks end-to-end response times across rings, with the same
// multi-resource structure studied for bridged time-sensitive networks.
//
// A relay watches one high-priority stream on the bridge's source
// segment: whenever one of that stream's message cycles completes, the
// bridge forwards the payload and — after its store-and-forward
// latency — releases one request of the designated high-priority stream
// on the destination segment. The relayed stream therefore inherits the
// source stream's period, and its release jitter is the source's
// response time plus the bridge latency (the Sec. 4.1 inheritance model
// applied across rings). A relay carries an end-to-end deadline,
// anchored at the nominal release of the chain's origin stream.
//
// The package provides two consistent views of the same topology:
//
//   - Analyze composes the per-segment schedulability analyses
//     (internal/core) through the bridges by jitter inheritance,
//     yielding per-segment verdicts and origin-anchored end-to-end
//     bounds per relay.
//   - Simulate shards the discrete-event simulator per segment: every
//     segment runs as its own profibus.Simulate worker on the shared
//     internal/pool, and bridge relays are exchanged between rounds as
//     explicit release lists until they reach a fixed point. Results
//     are byte-identical at any parallelism.
package topology

import (
	"errors"
	"fmt"
	"sort"

	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/profibus"
	"profirt/internal/timeunit"
)

// Ticks aliases the shared time base (bit times).
type Ticks = timeunit.Ticks

// Relay forwards one high-priority stream across its bridge: each
// completed cycle of FromStream on the bridge's source segment releases
// one request of ToStream on the destination segment, Latency ticks
// after the completion.
type Relay struct {
	// Name labels the relay in reports.
	Name string
	// FromStream names the watched high-priority stream on the bridge's
	// From segment. The name must identify exactly one high-priority
	// stream there.
	FromStream string
	// ToStream names the relayed high-priority stream on the To
	// segment. A stream can be the target of at most one relay; its
	// release pattern is owned by the bridge (the stream's own
	// period/offset releases are replaced by the relayed ones).
	ToStream string
	// Deadline is the end-to-end deadline: from the nominal release of
	// the chain's origin stream to the completion of ToStream's cycle.
	Deadline Ticks
}

// Bridge is a store-and-forward link between two segments, relaying the
// listed streams from the From ring to the To ring.
type Bridge struct {
	// Name labels the bridge.
	Name string
	// From and To name the coupled segments.
	From, To string
	// Latency is the store-and-forward delay between a source cycle's
	// completion and the relayed release on the destination ring.
	Latency Ticks
	// Relays are the streams this bridge forwards.
	Relays []Relay
}

// Segment is one token ring of the analytic topology.
type Segment struct {
	// Name identifies the segment (unique within the topology).
	Name string
	// Net is the ring's analytic model. Relay-target streams must
	// appear among its high-priority streams; their T and J attributes
	// are overridden by the bridge composition (T from the source
	// stream, J from the inherited response + latency).
	Net core.Network
	// Dispatcher selects the per-segment message analysis: ap.FCFS
	// (Eq. 11/12), ap.DM (Eq. 16, revised form by default) or ap.EDF
	// (Eqs. 17–18).
	Dispatcher ap.Policy
}

// Topology is a multi-segment installation under analysis.
type Topology struct {
	Segments []Segment
	Bridges  []Bridge
}

// SimSegment is one token ring of the simulated topology.
type SimSegment struct {
	// Name identifies the segment (unique within the topology).
	Name string
	// Cfg is the ring's simulator configuration. Its Seed is overridden
	// by the per-segment derivation from SimTopology.Seed, and cycle
	// tracing is enabled on bridge-relay endpoint streams (the bridges
	// need their traces). Relay-target streams must appear among its
	// high-priority streams; their release pattern is owned by the
	// bridges.
	Cfg profibus.Config
}

// SimTopology is a multi-segment installation under simulation. All
// segments must share one horizon (bridged time is global).
type SimTopology struct {
	Segments []SimSegment
	Bridges  []Bridge
	// Seed drives all randomness; each segment derives its own seed as
	// Seed ⊕ FNV-1a(segment name), so results are reproducible and
	// independent of worker scheduling.
	Seed int64
}

// streamKey identifies a stream endpoint within a topology.
type streamKey struct {
	seg    string
	stream string
}

// loc addresses one stream inside a topology: segment index, master
// index, and the stream's index within whichever per-master list the
// index builder walked (high-only for the analytic view, all streams
// for the simulated view).
type loc struct{ seg, master, stream int }

// resolvedRelay pairs a relay with its resolved endpoint locations.
type resolvedRelay struct {
	bridge  string
	relay   Relay
	latency Ticks
	from    loc
	to      loc
}

// resolveRelays resolves every bridge relay against an index of
// high-priority stream locations, in bridge order then relay order.
// Callers validate the topology first, so every lookup hits.
func resolveRelays(bridges []Bridge, index map[streamKey]loc) []resolvedRelay {
	var out []resolvedRelay
	for _, b := range bridges {
		for _, r := range b.Relays {
			out = append(out, resolvedRelay{
				bridge:  b.Name,
				relay:   r,
				latency: b.Latency,
				from:    index[streamKey{seg: b.From, stream: r.FromStream}],
				to:      index[streamKey{seg: b.To, stream: r.ToStream}],
			})
		}
	}
	return out
}

// segmentStreams lists, per segment name, how often each high-priority
// stream name occurs (relay endpoints must resolve unambiguously).
type segmentStreams map[string]map[string]int

// validateBridges checks the bridge layer against the segments' high
// streams: segment references resolve, endpoints name exactly one
// high-priority stream, every target is fed by at most one relay, and
// the relay chain graph (FromStream → ToStream edges) is acyclic so
// period/jitter inheritance is well-defined.
func validateBridges(bridges []Bridge, segs segmentStreams) error {
	resolve := func(b Bridge, seg, name, role string) (streamKey, error) {
		streams, ok := segs[seg]
		if !ok {
			return streamKey{}, fmt.Errorf("topology: bridge %q references unknown segment %q", b.Name, seg)
		}
		switch streams[name] {
		case 0:
			return streamKey{}, fmt.Errorf("topology: bridge %q: %s stream %q not a high-priority stream of segment %q", b.Name, role, name, seg)
		case 1:
			return streamKey{seg: seg, stream: name}, nil
		default:
			return streamKey{}, fmt.Errorf("topology: bridge %q: %s stream %q is ambiguous in segment %q", b.Name, role, name, seg)
		}
	}
	targets := map[streamKey]string{}
	edges := map[streamKey][]streamKey{}
	for _, b := range bridges {
		if b.From == b.To {
			return fmt.Errorf("topology: bridge %q joins segment %q to itself", b.Name, b.From)
		}
		if b.Latency < 0 {
			return fmt.Errorf("topology: bridge %q: Latency must be non-negative", b.Name)
		}
		if len(b.Relays) == 0 {
			return fmt.Errorf("topology: bridge %q relays no streams", b.Name)
		}
		for _, r := range b.Relays {
			from, err := resolve(b, b.From, r.FromStream, "source")
			if err != nil {
				return err
			}
			to, err := resolve(b, b.To, r.ToStream, "target")
			if err != nil {
				return err
			}
			if r.Deadline <= 0 {
				return fmt.Errorf("topology: relay %q: Deadline must be positive", r.Name)
			}
			if prev, dup := targets[to]; dup {
				return fmt.Errorf("topology: stream %q of segment %q is targeted by relays %q and %q", to.stream, to.seg, prev, r.Name)
			}
			targets[to] = r.Name
			edges[from] = append(edges[from], to)
		}
	}
	return checkAcyclic(edges)
}

// checkAcyclic rejects cycles in the relay chain graph.
func checkAcyclic(edges map[streamKey][]streamKey) error {
	const (
		visiting = 1
		done     = 2
	)
	state := map[streamKey]int{}
	var visit func(k streamKey) error
	visit = func(k streamKey) error {
		switch state[k] {
		case visiting:
			return fmt.Errorf("topology: relay chain through stream %q of segment %q is cyclic", k.stream, k.seg)
		case done:
			return nil
		}
		state[k] = visiting
		for _, next := range edges[k] {
			if err := visit(next); err != nil {
				return err
			}
		}
		state[k] = done
		return nil
	}
	// Visit roots in sorted order: with several cycles present, which
	// one the error names must not depend on map iteration order —
	// Validate's output is part of the byte-identity contract.
	roots := make([]streamKey, 0, len(edges))
	for k := range edges {
		roots = append(roots, k)
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].seg != roots[j].seg {
			return roots[i].seg < roots[j].seg
		}
		return roots[i].stream < roots[j].stream
	})
	for _, k := range roots {
		if err := visit(k); err != nil {
			return err
		}
	}
	return nil
}

// validateSegmentNames checks name presence and uniqueness.
func validateSegmentNames(names []string) error {
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" {
			return errors.New("topology: segment name must not be empty")
		}
		if seen[n] {
			return fmt.Errorf("topology: duplicate segment name %q", n)
		}
		seen[n] = true
	}
	return nil
}

// Validate reports structural problems in the analytic topology.
func (t Topology) Validate() error {
	if len(t.Segments) == 0 {
		return errors.New("topology: no segments")
	}
	names := make([]string, len(t.Segments))
	segs := segmentStreams{}
	for i, s := range t.Segments {
		names[i] = s.Name
		if err := s.Net.Validate(); err != nil {
			return fmt.Errorf("topology: segment %q: %w", s.Name, err)
		}
		streams := map[string]int{}
		for _, m := range s.Net.Masters {
			for _, hs := range m.High {
				streams[hs.Name]++
			}
		}
		segs[s.Name] = streams
	}
	if err := validateSegmentNames(names); err != nil {
		return err
	}
	return validateBridges(t.Bridges, segs)
}

// Validate reports structural problems in the simulated topology.
func (t SimTopology) Validate() error {
	if len(t.Segments) == 0 {
		return errors.New("topology: no segments")
	}
	names := make([]string, len(t.Segments))
	segs := segmentStreams{}
	var horizon Ticks
	for i, s := range t.Segments {
		names[i] = s.Name
		if err := s.Cfg.Validate(); err != nil {
			return fmt.Errorf("topology: segment %q: %w", s.Name, err)
		}
		if i == 0 {
			horizon = s.Cfg.Horizon
		} else if s.Cfg.Horizon != horizon {
			return fmt.Errorf("topology: segment %q horizon %d differs from %q's %d (bridged time is global)",
				s.Name, s.Cfg.Horizon, t.Segments[0].Name, horizon)
		}
		streams := map[string]int{}
		for _, m := range s.Cfg.Masters {
			for _, sc := range m.Streams {
				if sc.High {
					streams[sc.Name]++
				}
			}
		}
		segs[s.Name] = streams
	}
	if err := validateSegmentNames(names); err != nil {
		return err
	}
	return validateBridges(t.Bridges, segs)
}
