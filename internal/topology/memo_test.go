package topology

import (
	"reflect"
	"testing"

	"profirt/internal/memo"
)

// TestWholeResultMemo: the second Analyze of an identical topology
// must be served from the cache, and hit, miss and uncached results
// must all be byte-identical.
func TestWholeResultMemo(t *testing.T) {
	top := analyticTopology(twoSegment(30_000))
	want, err := Analyze(top, Options{})
	if err != nil {
		t.Fatal(err)
	}

	opts := Options{Cache: memo.New(0)}
	miss, err := Analyze(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	hitsAfterMiss := opts.Cache.Stats().Hits
	hit, err := Analyze(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := opts.Cache.Stats().Hits; got <= hitsAfterMiss {
		t.Errorf("second Analyze did not hit the whole-result entry (hits %d -> %d)", hitsAfterMiss, got)
	}
	if !reflect.DeepEqual(miss, want) {
		t.Errorf("cached miss diverged from uncached:\n%+v\nvs\n%+v", miss, want)
	}
	if !reflect.DeepEqual(hit, want) {
		t.Errorf("cached hit diverged from uncached:\n%+v\nvs\n%+v", hit, want)
	}
}

// TestWholeResultMemoIsolation: mutating a returned Result must not
// corrupt the cached copy.
func TestWholeResultMemoIsolation(t *testing.T) {
	top := analyticTopology(twoSegment(30_000))
	opts := Options{Cache: memo.New(0)}
	first, err := Analyze(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	first.Segments[0].Verdicts[0].R = -1
	first.Relays[0].Name = "clobbered"

	again, err := Analyze(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Segments[0].Verdicts[0].R == -1 || again.Relays[0].Name == "clobbered" {
		t.Fatal("cached topology Result aliased by a previous caller's mutation")
	}
}
