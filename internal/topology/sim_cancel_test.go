package topology

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestSimulateCancelAtRoundBarrier is the regression for the
// mid-fixed-point cancellation bug: a context cancelled during round 1
// must stop the bridge-exchange loop at the next round barrier and
// return ctx.Err(), instead of grinding to convergence (or MaxRounds).
func TestSimulateCancelAtRoundBarrier(t *testing.T) {
	st := noisyTopology()
	// Baseline: the fixture needs several rounds, so an uncancelled run
	// observing only round 1 would be indistinguishable from the bug.
	base, err := Simulate(st, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Rounds < 2 {
		t.Fatalf("fixture converged in %d round(s); cannot exercise mid-fixed-point cancellation", base.Rounds)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rounds []int
	_, err = Simulate(st, SimOptions{
		Context: ctx,
		OnRound: func(r int) {
			rounds = append(rounds, r)
			if r == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled simulation returned err = %v, want context.Canceled", err)
	}
	if !reflect.DeepEqual(rounds, []int{1}) {
		t.Fatalf("cancelled during round 1 but observed rounds %v; the fixed point ran past the barrier", rounds)
	}
}

// TestSimulateCancelledBeforeStart: a context already done when
// Simulate is called must not simulate any segment.
func TestSimulateCancelledBeforeStart(t *testing.T) {
	st := noisyTopology()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	_, err := Simulate(st, SimOptions{Context: ctx, OnRound: func(int) { ran++ }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled simulation returned err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("pre-cancelled simulation still ran %d round(s)", ran)
	}
}

// TestSimulateNilContextUnchanged pins the compatibility contract: a
// nil Context (every pre-existing caller) runs to convergence exactly
// as before.
func TestSimulateNilContextUnchanged(t *testing.T) {
	st := noisyTopology()
	want, err := Simulate(st, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Simulate(st, SimOptions{Context: nil, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil-context run diverged from the historical behaviour")
	}
}
