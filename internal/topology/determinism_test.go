package topology

import (
	"reflect"
	"runtime"
	"testing"

	"profirt/internal/ap"
	"profirt/internal/profibus"
)

// noisyTopology builds a topology that actually exercises randomness
// (release jitter and fault-injected retries) and multi-stream
// contention, so any scheduling-order leak between segment workers
// would show up in the results.
func noisyTopology() SimTopology {
	jittery := func(name string, deadline Ticks) profibus.StreamConfig {
		s := simStream(name, deadline)
		s.Jitter = 300
		return s
	}
	st := SimTopology{
		Seed: 42,
		Segments: []SimSegment{
			simSegment("plant", ap.DM, jittery("sensor", testPeriod), jittery("actuate", 2*testPeriod)),
			simSegment("cell", ap.EDF, jittery("local", testPeriod), simStream("relayin", 40_000)),
			simSegment("line", ap.FCFS, simStream("sink", 60_000), jittery("chatter", testPeriod)),
		},
		Bridges: []Bridge{
			{Name: "pc", From: "plant", To: "cell", Latency: testLatency, Relays: []Relay{
				{Name: "s2c", FromStream: "sensor", ToStream: "relayin", Deadline: 40_000},
			}},
			{Name: "cl", From: "cell", To: "line", Latency: 2 * testLatency, Relays: []Relay{
				{Name: "c2l", FromStream: "relayin", ToStream: "sink", Deadline: 60_000},
			}},
		},
	}
	for i := range st.Segments {
		st.Segments[i].Cfg.Jitter = profibus.JitterRandom
		st.Segments[i].Cfg.Faults.CycleFailProb = 0.05
	}
	return st
}

// TestTopologyParallelismDeterminism is the core guarantee of the
// sharded topology simulator, mirroring the experiment harness's
// determinism regression: results must be identical whether the
// segments run sequentially, on two workers, or on GOMAXPROCS workers.
// Each segment owns a seed derived from (Seed, segment name) and all
// bridge state is exchanged at round barriers, so worker scheduling
// cannot leak into any draw.
func TestTopologyParallelismDeterminism(t *testing.T) {
	st := noisyTopology()
	run := func(parallelism int) SimResult {
		res, err := Simulate(st, SimOptions{Parallelism: parallelism})
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return res
	}
	want := run(1)
	if !want.Converged {
		t.Fatalf("fixture did not converge in %d rounds", want.Rounds)
	}
	for _, p := range []int{2, runtime.GOMAXPROCS(0)} {
		if got := run(p); !reflect.DeepEqual(got, want) {
			t.Errorf("parallelism %d diverged from sequential:\n got: %+v\nwant: %+v", p, got, want)
		}
	}
}

// TestTopologySeedReachesSegments asserts the master seed actually
// drives the per-segment randomness: changing it changes results, and
// equal seeds reproduce results exactly.
func TestTopologySeedReachesSegments(t *testing.T) {
	st := noisyTopology()
	a, err := Simulate(st, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(st, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("equal seeds produced different results")
	}
	st.Seed = 999
	c, err := Simulate(st, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("changing the seed did not change the results; seed is not reaching the segments")
	}
}

// TestSegmentSeedDistinct guards the per-segment seed derivation:
// distinct segments must draw from distinct RNG streams.
func TestSegmentSeedDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, name := range []string{"A", "B", "plant", "cell", "line", ""} {
		s := segmentSeed(7, name)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: %q and %q both map to %d", name, prev, s)
		}
		seen[s] = name
	}
	if segmentSeed(1, "A") == segmentSeed(2, "A") {
		t.Error("segmentSeed ignores the configured Seed")
	}
}

// TestCyclicErrorDeterministic is the regression test for the
// checkAcyclic fix: with several distinct cycles in the relay graph,
// the error Validate reports must not depend on map iteration order.
// Before roots were visited in sorted order, repeated calls named
// whichever cycle the randomised map range reached first.
func TestCyclicErrorDeterministic(t *testing.T) {
	build := func() SimTopology {
		return SimTopology{
			Seed: 1,
			Segments: []SimSegment{
				simSegment("A", ap.DM,
					simStream("s1", 30_000), simStream("s2", 30_000)),
				simSegment("B", ap.DM,
					simStream("t1", 30_000), simStream("t2", 30_000)),
			},
			// Two disjoint cycles: s1→t1→s1 and s2→t2→s2.
			Bridges: []Bridge{
				{Name: "f1", From: "A", To: "B", Latency: 1,
					Relays: []Relay{{Name: "rf1", FromStream: "s1", ToStream: "t1", Deadline: 1_000}}},
				{Name: "b1", From: "B", To: "A", Latency: 1,
					Relays: []Relay{{Name: "rb1", FromStream: "t1", ToStream: "s1", Deadline: 1_000}}},
				{Name: "f2", From: "A", To: "B", Latency: 1,
					Relays: []Relay{{Name: "rf2", FromStream: "s2", ToStream: "t2", Deadline: 1_000}}},
				{Name: "b2", From: "B", To: "A", Latency: 1,
					Relays: []Relay{{Name: "rb2", FromStream: "t2", ToStream: "s2", Deadline: 1_000}}},
			},
		}
	}
	st := build()
	first := st.Validate()
	if first == nil {
		t.Fatal("Validate accepted a cyclic topology")
	}
	for i := 0; i < 100; i++ {
		st := build()
		if err := st.Validate(); err == nil || err.Error() != first.Error() {
			t.Fatalf("run %d: Validate() = %v, want the stable %v", i, err, first)
		}
	}
}
