package topology

import (
	"strings"
	"testing"

	"profirt/internal/ap"
	"profirt/internal/fdl"
	"profirt/internal/profibus"
)

const (
	testTTR     = 2_000
	testPeriod  = 20_000
	testHorizon = 400_000
	testLatency = 500
)

// simSegment builds a one-master, one-slave ring with the given
// high-priority streams.
func simSegment(name string, dispatcher ap.Policy, streams ...profibus.StreamConfig) SimSegment {
	return SimSegment{
		Name: name,
		Cfg: profibus.Config{
			Bus:     fdl.DefaultBusParams(),
			TTR:     testTTR,
			Horizon: testHorizon,
			Masters: []profibus.MasterConfig{{Addr: 1, Dispatcher: dispatcher, Streams: streams}},
			Slaves:  []profibus.SlaveConfig{{Addr: 10, TSDR: 30}},
		},
	}
}

func simStream(name string, deadline Ticks) profibus.StreamConfig {
	return profibus.StreamConfig{
		Name:     name,
		Slave:    10,
		High:     true,
		Period:   testPeriod,
		Deadline: deadline,
		ReqBytes: 4, RespBytes: 4,
	}
}

// analyticTopology derives the matched analytic topology from a
// simulated one and sanity-checks the conversion.
func analyticTopology(t SimTopology) Topology {
	out := FromSim(t)
	for i, s := range out.Segments {
		if len(s.Net.Masters) != len(t.Segments[i].Cfg.Masters) {
			panic("FromSim dropped a master")
		}
	}
	return out
}

// twoSegment builds the hand-checked fixture: ring A's "sensor" stream
// is relayed onto ring B's "relayin" stream across one bridge.
func twoSegment(relayDeadline Ticks) SimTopology {
	return SimTopology{
		Seed: 1,
		Segments: []SimSegment{
			simSegment("A", ap.DM, simStream("sensor", testPeriod)),
			simSegment("B", ap.DM, simStream("relayin", relayDeadline)),
		},
		Bridges: []Bridge{{
			Name: "br", From: "A", To: "B", Latency: testLatency,
			Relays: []Relay{{
				Name: "r", FromStream: "sensor", ToStream: "relayin", Deadline: relayDeadline,
			}},
		}},
	}
}

// TestTwoSegmentHandChecked pins the analytic composition against
// closed-form values: with a single stream per ring, the DM bound is
// exactly the ring's token cycle, and the relayed stream's end-to-end
// bound is R_A + latency + R_B.
func TestTwoSegmentHandChecked(t *testing.T) {
	st := twoSegment(30_000)
	top := analyticTopology(st)
	res, err := Analyze(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("fixed point did not converge: %+v", res)
	}
	tcA := top.Segments[0].Net.TokenCycle()
	tcB := top.Segments[1].Net.TokenCycle()
	if got := res.Segments[0].Verdicts[0].R; got != tcA {
		t.Errorf("R_sensor = %v, want token cycle %v", got, tcA)
	}
	wantE2E := tcA + testLatency + tcB
	if got := res.Relays[0].EndToEnd; got != wantE2E {
		t.Errorf("relay end-to-end = %v, want R_A+latency+R_B = %v", got, wantE2E)
	}
	if res.Relays[0].FromResponse != tcA {
		t.Errorf("FromResponse = %v, want %v", res.Relays[0].FromResponse, tcA)
	}
	if !res.Schedulable {
		t.Errorf("fixture should be schedulable: %+v", res)
	}
}

// TestAnalysisSimAgreement is the acceptance fixture: the analysis and
// the sharded simulator must agree on schedulability for the
// hand-checked 2-segment topology, and every simulated observation must
// stay below its analytic bound.
func TestAnalysisSimAgreement(t *testing.T) {
	for _, tc := range []struct {
		name          string
		relayDeadline Ticks
		schedulable   bool
	}{
		{"schedulable", 30_000, true},
		// The deadline is below even one message cycle plus the bridge
		// latency, so every relayed request must miss in both views.
		{"unschedulable", 100, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := twoSegment(tc.relayDeadline)
			ana, err := Analyze(analyticTopology(st), Options{})
			if err != nil {
				t.Fatal(err)
			}
			sim, err := Simulate(st, SimOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !sim.Converged {
				t.Fatalf("simulation did not converge in %d rounds", sim.Rounds)
			}
			if ana.Schedulable != tc.schedulable {
				t.Errorf("analysis schedulable = %v, want %v", ana.Schedulable, tc.schedulable)
			}
			relay := sim.Relays[0]
			if relay.Relayed == 0 {
				t.Fatal("no requests were relayed")
			}
			simOK := relay.Missed == 0
			if simOK != tc.schedulable {
				t.Errorf("simulation missed %d of %d relayed requests, want schedulable = %v",
					relay.Missed, relay.Relayed, tc.schedulable)
			}
			if relay.WorstEndToEnd > ana.Relays[0].EndToEnd {
				t.Errorf("observed end-to-end %v exceeds analytic bound %v",
					relay.WorstEndToEnd, ana.Relays[0].EndToEnd)
			}
			worstSensor := sim.Segments[0].Result.PerMaster[0].PerStream[0].WorstResponse
			if bound := ana.Segments[0].Verdicts[0].R; worstSensor > bound {
				t.Errorf("observed sensor response %v exceeds analytic bound %v", worstSensor, bound)
			}
		})
	}
}

// TestThreeSegmentChain relays A → B → C and checks origin anchoring:
// the second hop's analytic bound strictly contains the first hop's,
// and the simulator's observed chain delay stays below it.
func TestThreeSegmentChain(t *testing.T) {
	st := SimTopology{
		Seed: 3,
		Segments: []SimSegment{
			simSegment("A", ap.DM, simStream("origin", testPeriod)),
			simSegment("B", ap.DM, simStream("mid", 40_000)),
			simSegment("C", ap.EDF, simStream("sink", 60_000)),
		},
		Bridges: []Bridge{
			{Name: "ab", From: "A", To: "B", Latency: testLatency, Relays: []Relay{
				{Name: "a2b", FromStream: "origin", ToStream: "mid", Deadline: 40_000},
			}},
			{Name: "bc", From: "B", To: "C", Latency: testLatency, Relays: []Relay{
				{Name: "b2c", FromStream: "mid", ToStream: "sink", Deadline: 60_000},
			}},
		},
	}
	ana, err := Analyze(analyticTopology(st), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ana.Converged || !ana.Schedulable {
		t.Fatalf("chain should converge schedulable: %+v", ana)
	}
	first, second := ana.Relays[0], ana.Relays[1]
	if second.EndToEnd <= first.EndToEnd {
		t.Errorf("second hop bound %v should exceed first hop bound %v (origin anchoring)",
			second.EndToEnd, first.EndToEnd)
	}
	sim, err := Simulate(st, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Converged {
		t.Fatalf("chain simulation did not converge in %d rounds", sim.Rounds)
	}
	for i, r := range sim.Relays {
		if r.Relayed == 0 {
			t.Fatalf("relay %q forwarded nothing", r.Name)
		}
		if r.Missed != 0 {
			t.Errorf("relay %q missed %d requests", r.Name, r.Missed)
		}
		if r.WorstEndToEnd > ana.Relays[i].EndToEnd {
			t.Errorf("relay %q observed %v exceeds bound %v", r.Name, r.WorstEndToEnd, ana.Relays[i].EndToEnd)
		}
	}
	// The chain's observed delays must compose: the sink's worst
	// end-to-end covers at least the bridge latencies plus two cycles.
	if sim.Relays[1].WorstEndToEnd <= 2*testLatency {
		t.Errorf("chain end-to-end %v implausibly small", sim.Relays[1].WorstEndToEnd)
	}
}

// TestValidationRejects exercises the structural checks shared by the
// analytic and simulated topologies.
func TestValidationRejects(t *testing.T) {
	base := func() SimTopology { return twoSegment(30_000) }
	for _, tc := range []struct {
		name    string
		mutate  func(*SimTopology)
		wantSub string
	}{
		{"duplicate segment", func(st *SimTopology) { st.Segments[1].Name = "A" }, "duplicate segment"},
		{"empty name", func(st *SimTopology) { st.Segments[0].Name = "" }, "must not be empty"},
		{"unknown segment", func(st *SimTopology) { st.Bridges[0].To = "Z" }, "unknown segment"},
		{"self bridge", func(st *SimTopology) { st.Bridges[0].To = "A" }, "to itself"},
		{"negative latency", func(st *SimTopology) { st.Bridges[0].Latency = -1 }, "non-negative"},
		{"no relays", func(st *SimTopology) { st.Bridges[0].Relays = nil }, "relays no streams"},
		{"unknown stream", func(st *SimTopology) { st.Bridges[0].Relays[0].FromStream = "nope" }, "not a high-priority stream"},
		{"bad deadline", func(st *SimTopology) { st.Bridges[0].Relays[0].Deadline = 0 }, "must be positive"},
		{"low-priority endpoint", func(st *SimTopology) {
			st.Segments[0].Cfg.Masters[0].Streams[0].High = false
		}, "not a high-priority stream"},
		{"double target", func(st *SimTopology) {
			st.Bridges[0].Relays = append(st.Bridges[0].Relays,
				Relay{Name: "r2", FromStream: "sensor", ToStream: "relayin", Deadline: 1})
		}, "targeted by relays"},
		{"ambiguous stream", func(st *SimTopology) {
			st.Segments[0].Cfg.Masters[0].Streams = append(st.Segments[0].Cfg.Masters[0].Streams,
				simStream("sensor", testPeriod))
		}, "ambiguous"},
		{"horizon mismatch", func(st *SimTopology) { st.Segments[1].Cfg.Horizon = testHorizon / 2 }, "horizon"},
		{"cyclic chain", func(st *SimTopology) {
			st.Bridges = append(st.Bridges, Bridge{
				Name: "back", From: "B", To: "A", Latency: 1,
				Relays: []Relay{{Name: "rb", FromStream: "relayin", ToStream: "sensor", Deadline: 1_000}},
			})
		}, "cyclic"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := base()
			tc.mutate(&st)
			err := st.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.wantSub)
			}
			if _, simErr := Simulate(st, SimOptions{}); simErr == nil {
				t.Error("Simulate accepted an invalid topology")
			}
		})
	}
}

// TestAnalyticValidation mirrors a couple of rejects on the analytic
// view (shared helper, distinct entry point).
func TestAnalyticValidation(t *testing.T) {
	top := analyticTopology(twoSegment(30_000))
	top.Bridges[0].Relays[0].ToStream = "nope"
	if _, err := Analyze(top, Options{}); err == nil ||
		!strings.Contains(err.Error(), "not a high-priority stream") {
		t.Errorf("Analyze() = %v, want unknown-stream error", err)
	}
	top = analyticTopology(twoSegment(30_000))
	top.Segments = nil
	if _, err := Analyze(top, Options{}); err == nil {
		t.Error("Analyze accepted an empty topology")
	}
}

// TestRelayFailedDeliveriesCountAsMissed injects faults on the
// destination ring: a relayed cycle abandoned after all retries is a
// lost delivery and must be reported Failed and Missed, never Pending,
// and the accounting must stay closed.
func TestRelayFailedDeliveriesCountAsMissed(t *testing.T) {
	st := twoSegment(30_000)
	st.Segments[1].Cfg.Faults.CycleFailProb = 0.6
	sim, err := Simulate(st, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := sim.Relays[0]
	if r.Failed == 0 {
		t.Fatal("fault injection produced no failed deliveries; raise the probability")
	}
	if r.Missed < r.Failed {
		t.Errorf("missed %d < failed %d: lost deliveries must count as misses", r.Missed, r.Failed)
	}
	if r.Completed+r.Failed+r.Pending != r.Relayed {
		t.Errorf("accounting broken: %d+%d+%d != %d", r.Completed, r.Failed, r.Pending, r.Relayed)
	}
}

// TestRelayTargetOwnsReleases checks the bridge really owns the target
// stream's release pattern: the relayed stream must release exactly as
// many requests as the source completed (shifted by latency), not its
// own periodic pattern.
func TestRelayTargetOwnsReleases(t *testing.T) {
	st := twoSegment(30_000)
	sim, err := Simulate(st, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := sim.Segments[0].Result.PerMaster[0].PerStream[0]
	dst := sim.Segments[1].Result.PerMaster[0].PerStream[0]
	if dst.Released != sim.Relays[0].Relayed {
		t.Errorf("target released %d, want relayed count %d", dst.Released, sim.Relays[0].Relayed)
	}
	if dst.Released == 0 || dst.Released > src.Completed {
		t.Errorf("target released %d, source completed %d", dst.Released, src.Completed)
	}
}
