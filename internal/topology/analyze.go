package topology

import (
	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/memo"
	"profirt/internal/timeunit"
)

// Options tunes the topology analysis.
type Options struct {
	// DM tunes the Eq. 16 analysis on DM segments.
	DM core.DMOptions
	// EDF tunes the Eqs. 17–18 analysis on EDF segments.
	EDF core.EDFOptions
	// MaxIterations caps the cross-segment jitter fixed point
	// (default 64; the fixed point needs chain depth + 1 iterations on
	// any valid — acyclic — relay graph).
	MaxIterations int
	// Cache memoizes the per-master DM/EDF response-time vectors on a
	// shared content-addressed table (nil disables). Inside one Analyze
	// the jitter fixed point re-evaluates every segment each iteration
	// even when only a few inherited jitters moved, so unchanged
	// masters hit the cache; across a batch, topologies sharing segment
	// configurations share entries. Results are byte-identical with or
	// without it.
	Cache *memo.Cache
}

// SegmentReport is one segment's analytic outcome.
type SegmentReport struct {
	// Name echoes the segment name.
	Name string
	// Policy echoes the segment dispatcher.
	Policy ap.Policy
	// TokenCycle is the segment's Eq. 14 bound.
	TokenCycle Ticks
	// Schedulable reports whether every high-priority stream meets
	// R <= D. Relay-target streams carry origin-anchored bounds, so
	// their deadlines are origin-anchored budgets too.
	Schedulable bool
	// Verdicts holds the per-stream bounds in master order then stream
	// order, with the bridge-inherited T and J applied.
	Verdicts []core.StreamVerdict
}

// RelayReport is one relay's end-to-end outcome.
type RelayReport struct {
	// Bridge and Name identify the relay.
	Bridge string
	Name   string
	// From and To are the resolved endpoints.
	From, To Endpoint
	// FromResponse is the source stream's response bound, anchored at
	// the nominal release of the chain's origin stream.
	FromResponse Ticks
	// Latency echoes the bridge latency.
	Latency Ticks
	// EndToEnd is the target stream's response bound with inherited
	// jitter — the origin-release-to-destination-completion bound
	// (FromResponse + Latency enter it as the target's release jitter).
	EndToEnd Ticks
	// Deadline echoes the relay deadline.
	Deadline Ticks
	// OK reports EndToEnd <= Deadline.
	OK bool
}

// Endpoint is the exported form of a resolved relay endpoint.
type Endpoint struct {
	// Segment and Stream name the endpoint.
	Segment, Stream string
}

// Result is the topology analysis outcome.
type Result struct {
	// Converged is false when the jitter fixed point hit MaxIterations.
	Converged bool
	// Iterations used by the fixed point.
	Iterations int
	// Schedulable is true when the fixed point converged, every segment
	// is schedulable under its policy, and every relay meets its
	// end-to-end deadline.
	Schedulable bool
	// Segments in input order.
	Segments []SegmentReport
	// Relays in bridge order then relay order.
	Relays []RelayReport
}

// jitterCap bounds inherited release jitter fed back into the
// per-segment analyses. It equals the analyses' default iteration
// horizon, so a capped jitter deterministically drives the affected
// fixed points to MaxTicks (divergence propagates) while the arithmetic
// inside them stays far from Ticks overflow.
const jitterCap = Ticks(1) << 40

// analyzeIndex maps relay endpoints to locations in the analytic view
// (stream indexes point into each master's High list).
func analyzeIndex(t Topology) map[streamKey]loc {
	idx := map[streamKey]loc{}
	for si, s := range t.Segments {
		for mi, m := range s.Net.Masters {
			for hi, hs := range m.High {
				idx[streamKey{seg: s.Name, stream: hs.Name}] = loc{seg: si, master: mi, stream: hi}
			}
		}
	}
	return idx
}

// Analyze composes the per-segment schedulability analyses across the
// bridges. Relay-target streams inherit their source stream's period
// and a release jitter of (source response bound + bridge latency); the
// inherited jitters are solved as a fixed point, which needs chain
// depth + 1 iterations on the (validated acyclic) relay graph. The
// target's jitter-inclusive response bound is then the origin-anchored
// end-to-end bound reported per relay.
func Analyze(t Topology, opts Options) (Result, error) {
	if err := t.Validate(); err != nil {
		return Result{}, err
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 64
	}
	if opts.Cache.Disabled() {
		return analyze(t, opts, maxIter), nil
	}
	// Whole-result memoization on the full topology + options encoding
	// (names included — they appear verbatim in the reports): sweeps
	// re-analysing identical topologies skip the fixed point entirely.
	// Hits return a deep copy; results are byte-identical either way.
	e := memo.GetEnc()
	defer memo.PutEnc(e)
	encodeTopology(e, t, opts, maxIter)
	if v, tok, ok := opts.Cache.LookupEncoded(memo.KindTopology, e); ok {
		return v.(Result).clone(), nil
	} else {
		res := analyze(t, opts, maxIter)
		opts.Cache.StoreEncoded(tok, e, res.clone())
		return res, nil
	}
}

// encodeTopology writes every input that can influence the Result in a
// fixed traversal order.
func encodeTopology(e *memo.Enc, t Topology, opts Options, maxIter int) {
	e.Int(maxIter)
	e.Bool(opts.DM.Literal)
	e.Bool(opts.DM.BlockingFromLowPriority)
	e.Ticks(opts.DM.Horizon)
	e.Bool(opts.EDF.BlockingFromLowPriority)
	e.Ticks(opts.EDF.Horizon)
	e.Int(len(t.Segments))
	for _, s := range t.Segments {
		e.String(s.Name)
		e.Int(int(s.Dispatcher))
		e.Ticks(s.Net.TTR)
		e.Ticks(s.Net.TokenPass)
		e.Ticks(s.Net.GapPoll)
		e.Int(len(s.Net.Masters))
		for _, m := range s.Net.Masters {
			e.String(m.Name)
			e.Ticks(m.LongestLow)
			e.Int(len(m.High))
			for _, hs := range m.High {
				e.String(hs.Name)
				e.Ticks(hs.Ch)
				e.Ticks(hs.D)
				e.Ticks(hs.T)
				e.Ticks(hs.J)
			}
		}
	}
	e.Int(len(t.Bridges))
	for _, b := range t.Bridges {
		e.String(b.Name)
		e.String(b.From)
		e.String(b.To)
		e.Ticks(b.Latency)
		e.Int(len(b.Relays))
		for _, r := range b.Relays {
			e.String(r.Name)
			e.String(r.FromStream)
			e.String(r.ToStream)
			e.Ticks(r.Deadline)
		}
	}
}

// clone deep-copies the result so cached values are never aliased by
// callers (verdict and relay entries are all values).
func (r Result) clone() Result {
	if r.Segments != nil {
		segs := make([]SegmentReport, len(r.Segments))
		for i, s := range r.Segments {
			s.Verdicts = append([]core.StreamVerdict(nil), s.Verdicts...)
			segs[i] = s
		}
		r.Segments = segs
	}
	r.Relays = append([]RelayReport(nil), r.Relays...)
	return r
}

// analyze is the jitter fixed point proper, on a validated topology.
func analyze(t Topology, opts Options, maxIter int) Result {
	relays := resolveRelays(t.Bridges, analyzeIndex(t))

	// Working copies of every segment's high streams, so T and J
	// overrides never touch the caller's topology.
	streams := make([][][]core.Stream, len(t.Segments))
	for si, s := range t.Segments {
		streams[si] = make([][]core.Stream, len(s.Net.Masters))
		for mi, m := range s.Net.Masters {
			streams[si][mi] = append([]core.Stream(nil), m.High...)
		}
	}

	// Period inheritance: the relay graph is a DAG, so repeatedly
	// propagating source periods settles within len(relays) passes.
	for range relays {
		for _, r := range relays {
			streams[r.to.seg][r.to.master][r.to.stream].T =
				streams[r.from.seg][r.from.master][r.from.stream].T
		}
	}
	// Relay targets start the jitter fixed point from zero inherited
	// jitter; their configured J is owned by the bridge composition.
	for _, r := range relays {
		streams[r.to.seg][r.to.master][r.to.stream].J = 0
	}

	// responses mirrors the streams layout.
	responses := make([][][]Ticks, len(t.Segments))
	tcs := make([]Ticks, len(t.Segments))
	evaluate := func() {
		for si, s := range t.Segments {
			net := s.Net
			net.Masters = append([]core.Master(nil), s.Net.Masters...)
			for mi := range net.Masters {
				net.Masters[mi].High = streams[si][mi]
			}
			tc := net.TokenCycle()
			tcs[si] = tc
			responses[si] = make([][]Ticks, len(net.Masters))
			for mi, m := range net.Masters {
				responses[si][mi] = segmentResponses(m, s.Dispatcher, tc, opts)
			}
		}
	}

	iterations := 0
	converged := false
	for iterations < maxIter {
		iterations++
		evaluate()
		changed := false
		for _, r := range relays {
			j := timeunit.AddSat(responses[r.from.seg][r.from.master][r.from.stream], r.latency)
			if j > jitterCap {
				j = jitterCap
			}
			tgt := &streams[r.to.seg][r.to.master][r.to.stream]
			if tgt.J != j {
				tgt.J = j
				changed = true
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	if !converged {
		// The loop exited with jitters updated after the last
		// evaluation; re-evaluate once so the reported (still
		// non-converged, monotonically growing) values at least match
		// the final jitter state.
		evaluate()
	}

	res := Result{Converged: converged, Iterations: iterations, Schedulable: converged}
	for si, s := range t.Segments {
		rep := SegmentReport{Name: s.Name, Policy: s.Dispatcher, TokenCycle: tcs[si], Schedulable: true}
		for mi, m := range s.Net.Masters {
			for hi := range m.High {
				st := streams[si][mi][hi]
				r := responses[si][mi][hi]
				v := core.StreamVerdict{Master: m.Name, Stream: st.Name, D: st.D, R: r, OK: r <= st.D}
				if !v.OK {
					rep.Schedulable = false
				}
				rep.Verdicts = append(rep.Verdicts, v)
			}
		}
		if !rep.Schedulable {
			res.Schedulable = false
		}
		res.Segments = append(res.Segments, rep)
	}
	for _, r := range relays {
		e2e := responses[r.to.seg][r.to.master][r.to.stream]
		rr := RelayReport{
			Bridge:       r.bridge,
			Name:         r.relay.Name,
			From:         Endpoint{Segment: t.Segments[r.from.seg].Name, Stream: r.relay.FromStream},
			To:           Endpoint{Segment: t.Segments[r.to.seg].Name, Stream: r.relay.ToStream},
			FromResponse: responses[r.from.seg][r.from.master][r.from.stream],
			Latency:      r.latency,
			EndToEnd:     e2e,
			Deadline:     r.relay.Deadline,
			OK:           e2e <= r.relay.Deadline,
		}
		if !rr.OK {
			res.Schedulable = false
		}
		res.Relays = append(res.Relays, rr)
	}
	return res
}

// segmentResponses evaluates one master's high-priority response bounds
// under the segment's dispatcher. All bounds are anchored at the
// nominal release including the stream's release jitter: DM and EDF do
// this natively; the FCFS Eq. 11 bound nh·T_cycle covers queuing from
// readiness, so the jitter is added on top.
func segmentResponses(m core.Master, pol ap.Policy, tc Ticks, opts Options) []Ticks {
	switch pol {
	case ap.DM:
		o := opts.DM
		if m.LongestLow > 0 {
			o.BlockingFromLowPriority = true
		}
		return memo.DMResponseTimes(opts.Cache, m.High, tc, o)
	case ap.EDF:
		o := opts.EDF
		if m.LongestLow > 0 {
			o.BlockingFromLowPriority = true
		}
		return memo.EDFResponseTimes(opts.Cache, m.High, tc, o)
	default:
		base := core.FCFSResponseTime(m, tc)
		out := make([]Ticks, len(m.High))
		for i, s := range m.High {
			out[i] = timeunit.AddSat(s.J, base)
		}
		return out
	}
}
