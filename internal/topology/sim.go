package topology

import (
	"context"
	"hash/fnv"
	"io"

	"profirt/internal/obs"
	"profirt/internal/pool"
	"profirt/internal/profibus"
	"profirt/internal/timeunit"
)

// SimOptions tunes the sharded topology simulation.
type SimOptions struct {
	// Parallelism bounds the per-segment worker pool. 0 means
	// runtime.GOMAXPROCS(0); 1 forces sequential evaluation. Results
	// are byte-identical for any value. With Pool set it instead
	// bounds this simulation's in-flight segment shards on the shared
	// pool (0 means the pool width).
	Parallelism int
	// Pool, when non-nil, runs the per-round segment shards on a shared
	// long-lived worker pool instead of a per-call one, so concurrent
	// topology simulations share one bounded worker set. Results are
	// byte-identical either way.
	Pool *pool.Shared
	// Context cancels the simulation at the next round barrier: the
	// bridge-exchange fixed point checks it before each round and
	// after the round's segment shards complete, so a cancelled
	// simulation returns ctx.Err() within one round instead of running
	// to convergence. nil means context.Background().
	Context context.Context
	// MaxRounds caps the bridge-exchange fixed point (default: total
	// relay count + 2, which suffices for any valid — stream-acyclic —
	// relay chain, whose depth is at most the relay count; mutually
	// coupled rings can in principle oscillate — the result then
	// reports Converged false).
	MaxRounds int
	// OnRound, when non-nil, is called at each round barrier after the
	// round's segment simulations complete, with the 1-based round
	// number. It runs on the submitting goroutine between rounds, so a
	// caller streaming round progress (or deciding to cancel a stale
	// run) observes every barrier in order.
	OnRound func(round int)
}

// SegmentSimResult is one segment's simulation outcome.
type SegmentSimResult struct {
	// Name echoes the segment name.
	Name string
	// Result is the segment's final-round simulation result.
	Result profibus.Result
}

// RelaySimStats aggregates one relay's observed end-to-end behaviour.
type RelaySimStats struct {
	// Bridge and Name identify the relay.
	Bridge string
	Name   string
	// Relayed counts requests released on the destination ring (source
	// completions whose relayed release fell inside the horizon).
	Relayed int64
	// Completed counts relayed requests whose destination cycle
	// finished inside the horizon.
	Completed int64
	// Pending counts relayed requests still unfinished at the horizon;
	// they contribute horizon − origin to WorstEndToEnd as a lower
	// bound.
	Pending int64
	// Failed counts relayed requests whose destination cycle was
	// abandoned after all retries; the delivery is lost, so each also
	// counts as Missed.
	Failed int64
	// Missed counts relayed requests whose destination completion (or
	// the horizon, for pending ones) exceeded origin + Deadline, plus
	// every Failed delivery.
	Missed int64
	// WorstEndToEnd is the largest observed origin-release-to-
	// destination-completion delay.
	WorstEndToEnd Ticks
	// SumEndToEnd sums the completed delays (for mean computation).
	SumEndToEnd Ticks
}

// MeanEndToEnd averages over completed relayed requests.
func (r RelaySimStats) MeanEndToEnd() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.SumEndToEnd) / float64(r.Completed)
}

// SimResult is the sharded simulation outcome.
type SimResult struct {
	// Converged reports that the bridge-exchange fixed point became
	// stable within MaxRounds.
	Converged bool
	// Rounds is the number of whole-topology simulation rounds run.
	Rounds int
	// Segments in input order, from the final round.
	Segments []SegmentSimResult
	// Relays in bridge order then relay order.
	Relays []RelaySimStats
}

// segmentSeed derives the deterministic per-segment RNG seed, mirroring
// the experiment harness's cell-seed derivation: the segment's random
// stream depends only on (Seed, segment name), never on scheduling
// order or worker count.
func segmentSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	io.WriteString(h, "segment:")
	io.WriteString(h, name)
	return seed ^ int64(h.Sum64())
}

// injection is the release list a bridge feeds into one relay-target
// stream for a round: instants sorted ascending, with the originating
// chain-origin nominal release carried alongside.
type injection struct {
	instants []Ticks
	origins  []Ticks
}

func (a injection) equal(b injection) bool {
	if len(a.instants) != len(b.instants) {
		return false
	}
	for i := range a.instants {
		if a.instants[i] != b.instants[i] || a.origins[i] != b.origins[i] {
			return false
		}
	}
	return true
}

// Simulate runs the sharded multi-segment simulation: every round, each
// segment runs as its own profibus.Simulate job on the shared worker
// pool; between rounds the bridges convert source-stream completion
// traces into explicit release lists for their target streams. The
// rounds repeat until the exchanged release lists are stable (for
// acyclic segment coupling that takes chain depth + 1 rounds). Each
// segment's RNG seed is derived from SimTopology.Seed and the segment
// name, and all cross-segment state is exchanged at round barriers, so
// results are byte-identical at any Parallelism.
func Simulate(t SimTopology, opts SimOptions) (SimResult, error) {
	if err := t.Validate(); err != nil {
		return SimResult{}, err
	}
	n := len(t.Segments)
	// Deep-copy every segment config: the rounds mutate Releases on
	// relay-target streams, and per-segment seeds/trace flags are
	// forced.
	cfgs := make([]profibus.Config, n)
	index := map[streamKey]loc{}
	for i, s := range t.Segments {
		cfg := s.Cfg
		cfg.Masters = append([]profibus.MasterConfig(nil), cfg.Masters...)
		for mi := range cfg.Masters {
			cfg.Masters[mi].Streams = append([]profibus.StreamConfig(nil), cfg.Masters[mi].Streams...)
			for sti, sc := range cfg.Masters[mi].Streams {
				if sc.High {
					index[streamKey{seg: s.Name, stream: sc.Name}] = loc{seg: i, master: mi, stream: sti}
				}
			}
		}
		cfg.Slaves = append([]profibus.SlaveConfig(nil), cfg.Slaves...)
		cfg.Seed = segmentSeed(t.Seed, s.Name)
		cfgs[i] = cfg
	}
	horizon := cfgs[0].Horizon

	relays := resolveRelays(t.Bridges, index)
	// Only bridge endpoints need cycle traces: sources drive the
	// relayed releases, targets provide the end-to-end completions.
	for _, r := range relays {
		cfgs[r.from.seg].Masters[r.from.master].Streams[r.from.stream].Trace = true
		cfgs[r.to.seg].Masters[r.to.master].Streams[r.to.stream].Trace = true
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		// An acyclic relay chain has depth at most len(relays) and its
		// release lists stabilise one bridge hop per round; +2 covers
		// the stability-detection round with margin.
		maxRounds = len(relays) + 2
	}

	// Relay targets start with an explicit empty release list: their
	// release pattern is owned by the bridges.
	inj := make([]injection, len(relays))
	for ri, r := range relays {
		inj[ri] = injection{instants: []Ticks{}, origins: []Ticks{}}
		cfgs[r.to.seg].Masters[r.to.master].Streams[r.to.stream].Releases = inj[ri].instants
	}
	// originOf maps a stream's release instant back to its chain-origin
	// nominal release; primary (non-relayed) streams are their own
	// origin.
	originByTarget := make([]map[Ticks]Ticks, len(relays))
	targetRelay := map[loc]int{}
	for ri, r := range relays {
		targetRelay[r.to] = ri
	}
	originOf := func(l loc, release Ticks) Ticks {
		if ri, ok := targetRelay[l]; ok {
			if o, ok := originByTarget[ri][release]; ok {
				return o
			}
		}
		return release
	}

	results := make([]profibus.Result, n)
	errs := make([]error, n)
	// dirty marks segments whose injected release lists changed since
	// their last simulation; clean segments keep their previous result
	// (same config, seed and releases reproduce it byte for byte, so
	// skipping the re-run is free).
	dirty := make([]bool, n)
	for i := range dirty {
		dirty[i] = true
	}
	ctx := opts.Context
	rounds := 0
	converged := false
	for {
		// Round barrier: a context cancelled during the previous round
		// (a dead client, a hit deadline, a retuned controller) must not
		// grind through the remaining fixed-point rounds — MaxRounds of
		// them in the non-converging case.
		if ctx != nil && ctx.Err() != nil {
			return SimResult{}, ctx.Err()
		}
		rounds++
		// Publish this round's origin maps before running, so trace
		// lookups during derivation see the lists the round used.
		for ri := range relays {
			m := make(map[Ticks]Ticks, len(inj[ri].instants))
			for i, at := range inj[ri].instants {
				m[at] = inj[ri].origins[i]
			}
			originByTarget[ri] = m
		}
		// A traced simulation wraps each fixed-point round in a
		// topology.round span (arg = 1-based round number), so trace
		// exports show where the bridge exchange spent its time.
		rctx, rspan := obs.StartSpanArg(ctx, "topology.round", int64(rounds))
		pool.Do(rctx, opts.Pool, opts.Parallelism, n, func(i int) {
			if !dirty[i] || (ctx != nil && ctx.Err() != nil) {
				return
			}
			results[i], errs[i] = profibus.Simulate(cfgs[i])
		})
		rspan.End()
		// A cancellation mid-round leaves some segments unsimulated;
		// their result slots are stale, so bail before deriving
		// injections from them.
		if ctx != nil && ctx.Err() != nil {
			return SimResult{}, ctx.Err()
		}
		for _, err := range errs {
			if err != nil {
				return SimResult{}, err
			}
		}
		if opts.OnRound != nil {
			opts.OnRound(rounds)
		}
		// Derive next-round injections from the source traces. Failed
		// source cycles delivered nothing, so the bridge forwards
		// nothing for them.
		next := make([]injection, len(relays))
		for ri, r := range relays {
			trace := results[r.from.seg].PerMaster[r.from.master].PerStream[r.from.stream].Trace
			ninj := injection{instants: []Ticks{}, origins: []Ticks{}}
			for _, rec := range trace {
				if rec.Failed {
					continue
				}
				at := timeunit.AddSat(rec.Completed, r.latency)
				if at >= horizon {
					continue
				}
				ninj.instants = append(ninj.instants, at)
				ninj.origins = append(ninj.origins, originOf(r.from, rec.Release))
			}
			next[ri] = ninj
		}
		stable := true
		for ri := range relays {
			if !next[ri].equal(inj[ri]) {
				stable = false
			}
		}
		if stable {
			converged = true
			break
		}
		if rounds >= maxRounds {
			// Leave inj as the lists the final round actually ran
			// with, so the reported stats stay self-consistent.
			break
		}
		for i := range dirty {
			dirty[i] = false
		}
		for ri, r := range relays {
			if !next[ri].equal(inj[ri]) {
				dirty[r.to.seg] = true
			}
			inj[ri] = next[ri]
			cfgs[r.to.seg].Masters[r.to.master].Streams[r.to.stream].Releases = inj[ri].instants
		}
	}

	res := SimResult{Converged: converged, Rounds: rounds}
	for i, s := range t.Segments {
		res.Segments = append(res.Segments, SegmentSimResult{Name: s.Name, Result: results[i]})
	}
	for ri, r := range relays {
		st := RelaySimStats{Bridge: r.bridge, Name: r.relay.Name}
		done := map[Ticks]profibus.CompletionRecord{}
		for _, rec := range results[r.to.seg].PerMaster[r.to.master].PerStream[r.to.stream].Trace {
			done[rec.Release] = rec
		}
		for i, at := range inj[ri].instants {
			origin := inj[ri].origins[i]
			st.Relayed++
			rec, ok := done[at]
			switch {
			case ok && rec.Failed:
				// The destination ring gave up on the cycle: the
				// delivery is lost, which is a miss regardless of the
				// deadline.
				st.Failed++
				st.Missed++
			case ok:
				st.Completed++
				e2e := rec.Completed - origin
				if e2e > st.WorstEndToEnd {
					st.WorstEndToEnd = e2e
				}
				st.SumEndToEnd += e2e
				if rec.Completed > origin+r.relay.Deadline {
					st.Missed++
				}
			default:
				st.Pending++
				if lb := horizon - origin; lb > st.WorstEndToEnd {
					st.WorstEndToEnd = lb
				}
				if horizon > origin+r.relay.Deadline {
					st.Missed++
				}
			}
		}
		res.Relays = append(res.Relays, st)
	}
	return res, nil
}
