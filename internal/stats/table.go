package stats

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Table is a simple rectangular result table used by the experiment
// harness. Cells are pre-formatted strings; the renderers only align.
// Row assembly is safe for concurrent producers: AddRow may be called
// from multiple goroutines, and callers needing a deterministic row
// order must serialise or reassemble themselves (the parallel
// experiment harness buffers per-cell rows and appends them serially
// to keep grid order). Title, Note and Header are NOT synchronised:
// set them on one goroutine before or after assembly, and do not
// render while they may still change.
type Table struct {
	// Title identifies the table (e.g. "E7: FCFS bound vs simulation").
	Title string
	// Note is optional prose shown under the title.
	Note string
	// Header holds the column names.
	Header []string

	mu   sync.Mutex
	rows [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// formatRow renders cell values to the strings a row stores: strings
// pass through, floats get the fixed %.3f (so columns align), anything
// else renders with %v.
func formatRow(cells []any) []string {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	return row
}

// AddRow appends a row. Values are rendered with %v; floats with %g
// would lose alignment, so use Cell helpers or pre-format when needed.
func (t *Table) AddRow(cells ...any) {
	row := formatRow(cells)
	t.mu.Lock()
	t.rows = append(t.rows, row)
	t.mu.Unlock()
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rows)
}

// Row returns a copy of row i.
func (t *Table) Row(i int) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.rows[i]...)
}

// snapshot returns the current rows; the renderers iterate over it so
// a concurrent AddRow cannot race with rendering.
func (t *Table) snapshot() [][]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([][]string(nil), t.rows...)
}

// widths computes per-column display widths.
func widths(header []string, rows [][]string) []int {
	w := make([]int, len(header))
	for i, h := range header {
		w[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WritePlain renders an aligned fixed-width text table.
func (t *Table) WritePlain(w io.Writer) error {
	rows := t.snapshot()
	ws := widths(t.Header, rows)
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(ws))
		for i := range ws {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", ws[i], c)
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(ws))
	for i, n := range ws {
		sep[i] = strings.Repeat("-", n)
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders a GitHub-flavoured markdown table, preceded by
// the title as a level-3 heading when present.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n\n", t.Note); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|")); err != nil {
		return err
	}
	for _, r := range t.snapshot() {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders RFC-4180-ish CSV (quotes only when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	rows := append([][]string{t.Header}, t.snapshot()...)
	for _, r := range rows {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintf(w, "%s\n", strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the plain form, for tests and logs.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.WritePlain(&sb)
	return sb.String()
}

// Render dispatches to the writer named by format: "plain", "md" or
// "csv" (the shared -format vocabulary of cmd/experiments and
// cmd/campaign).
func Render(w io.Writer, t *Table, format string) error {
	switch format {
	case "plain":
		return t.WritePlain(w)
	case "md":
		return t.WriteMarkdown(w)
	case "csv":
		return t.WriteCSV(w)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
