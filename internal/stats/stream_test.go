package stats

import (
	"math/rand"
	"sync"
	"testing"
)

// TestRowStreamerOrdersOutOfOrderEmits: rows emitted in a scrambled
// order must land in the table — and reach the sink — in index order,
// and the assembled table must equal a plain AddRow loop.
func TestRowStreamerOrdersOutOfOrderEmits(t *testing.T) {
	const n = 50
	want := NewTable("t", "i", "v")
	for i := 0; i < n; i++ {
		want.AddRow(i, float64(i)/3)
	}

	got := NewTable("t", "i", "v")
	var events []RowEvent
	rs := NewRowStreamer(got, n, func(e RowEvent) { events = append(events, e) })
	order := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range order {
		rs.Emit(i, i, float64(i)/3)
	}
	if got.String() != want.String() {
		t.Fatalf("streamed table differs:\n--- streamed ---\n%s--- direct ---\n%s", got.String(), want.String())
	}
	if rs.Released() != n || len(events) != n {
		t.Fatalf("released %d rows, sink saw %d, want %d", rs.Released(), len(events), n)
	}
	for i, e := range events {
		if e.Index != i || e.Total != n || e.Table != got {
			t.Fatalf("event %d = %+v", i, e)
		}
		if e.Cells[0] != got.Row(i)[0] {
			t.Fatalf("event %d cells %v != table row %v", i, e.Cells, got.Row(i))
		}
	}
}

// TestRowStreamerConcurrent hammers Emit from many goroutines; the
// table must come out in index order regardless of interleaving.
func TestRowStreamerConcurrent(t *testing.T) {
	const n = 200
	table := NewTable("t", "i")
	last := -1
	ordered := true
	rs := NewRowStreamer(table, n, func(e RowEvent) {
		if e.Index != last+1 {
			ordered = false
		}
		last = e.Index
	})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs.Emit(i, i)
		}(i)
	}
	wg.Wait()
	if !ordered || last != n-1 {
		t.Fatalf("sink events out of order (last %d)", last)
	}
	if table.NumRows() != n {
		t.Fatalf("table has %d rows, want %d", table.NumRows(), n)
	}
	for i := 0; i < n; i++ {
		if got := table.Row(i)[0]; got != itoa(i) {
			t.Fatalf("row %d = %q", i, got)
		}
	}
}

func itoa(i int) string {
	t := NewTable("", "")
	t.AddRow(i)
	return t.Row(0)[0]
}

// TestRowStreamerNoSink: a nil sink still orders the appends.
func TestRowStreamerNoSink(t *testing.T) {
	table := NewTable("t", "i")
	rs := NewRowStreamer(table, 3, nil)
	rs.Emit(2, "c")
	rs.Emit(0, "a")
	if table.NumRows() != 1 {
		t.Fatalf("premature release: %d rows", table.NumRows())
	}
	rs.Emit(1, "b")
	if table.NumRows() != 3 || table.Row(2)[0] != "c" {
		t.Fatalf("rows out of order: %v", table.Row(2))
	}
}
