package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOnlineBasics(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d, want 8", o.N())
	}
	if got := o.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("Min/Max = %g/%g, want 2/9", o.Min(), o.Max())
	}
	// population variance is 4; unbiased variance is 32/7
	if got := o.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if got := o.StdDev(); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %g", got)
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.N() != 0 {
		t.Error("empty Online should be all-zero")
	}
}

func TestOnlineMergeEqualsSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		// Confine inputs to a numerically sane range: Welford's merge is
		// not expected to be bit-exact under catastrophic cancellation of
		// ±1e308 magnitudes.
		for i, x := range a {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			a[i] = math.Remainder(x, 1e6)
		}
		for i, x := range b {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			b[i] = math.Remainder(x, 1e6)
		}
		var whole, left, right Online
		for _, x := range a {
			whole.Add(x)
			left.Add(x)
		}
		for _, x := range b {
			whole.Add(x)
			right.Add(x)
		}
		left.Merge(&right)
		if whole.N() != left.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		if math.Abs(whole.Mean()-left.Mean()) > 1e-6*scale {
			return false
		}
		return whole.Min() == left.Min() && whole.Max() == left.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Errorf("P50 = %g, want 50", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Errorf("P99 = %g, want 99", got)
	}
	if got := s.Max(); got != 100 {
		t.Errorf("Max = %g, want 100", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %g, want 1", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-12 {
		t.Errorf("Mean = %g, want 50.5", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.N() != 0 {
		t.Error("empty Sample should be all-zero")
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	_ = s.Percentile(50) // forces sort
	s.Add(2)
	if got := s.Percentile(100); got != 3 {
		t.Errorf("max after re-add = %g, want 3", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("min after re-add = %g, want 1", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2", h.Over)
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Bins[1])
	}
	if h.Bins[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Bins[4])
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	lo, hi := h.BinBounds(1)
	if lo != 2 || hi != 4 {
		t.Errorf("BinBounds(1) = [%g,%g), want [2,4)", lo, hi)
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestRatio(t *testing.T) {
	r := Ratio{K: 3, N: 4}
	if r.Value() != 0.75 {
		t.Errorf("Value = %g, want 0.75", r.Value())
	}
	if r.String() != "0.750" {
		t.Errorf("String = %q", r.String())
	}
	if (Ratio{}).Value() != 0 {
		t.Error("empty ratio should be 0")
	}
}

func TestTableRenderers(t *testing.T) {
	tb := NewTable("T1: demo", "name", "value")
	tb.Note = "a note"
	tb.AddRow("alpha", 1)
	tb.AddRow("beta", 2.5)
	tb.AddRow("gamma, delta", "x\"y\"")

	plain := tb.String()
	for _, want := range []string{"T1: demo", "a note", "alpha", "2.500"} {
		if !strings.Contains(plain, want) {
			t.Errorf("plain output missing %q:\n%s", want, plain)
		}
	}

	var md strings.Builder
	if err := tb.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "### T1: demo") {
		t.Errorf("markdown missing heading:\n%s", md.String())
	}
	if !strings.Contains(md.String(), "| alpha | 1 |") {
		t.Errorf("markdown missing row:\n%s", md.String())
	}

	var csv strings.Builder
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), `"gamma, delta","x""y"""`) {
		t.Errorf("csv escaping wrong:\n%s", csv.String())
	}

	if tb.NumRows() != 3 {
		t.Errorf("NumRows = %d, want 3", tb.NumRows())
	}
	row := tb.Row(0)
	row[0] = "mutated"
	if tb.Row(0)[0] != "alpha" {
		t.Error("Row must return a copy")
	}
}
