package stats

import "sync"

// Row-streamed table assembly. The parallel harnesses (the experiment
// drivers, the campaign engine) compute one table row per grid cell on
// a worker pool, where cells complete in arbitrary order but tables
// must read in grid order. Historically every driver buffered all rows
// and appended them after the pool drained; a RowStreamer instead
// releases each row the moment it — and every row before it — is
// ready, so a long-running sweep's table builds incrementally while
// staying byte-identical to the buffered assembly.

// RowEvent reports one table row released in grid order.
type RowEvent struct {
	// Table is the table the row was appended to.
	Table *Table
	// Index is the row's grid position; events for one table arrive
	// with strictly increasing Index.
	Index int
	// Total is the number of rows the streamer will release.
	Total int
	// Cells holds the formatted row.
	Cells []string
}

// RowStreamer assembles one table's rows from concurrent producers.
// Emit may be called from any goroutine, once per row index; the
// streamer appends rows to the table in index order (buffering rows
// that arrive early) and forwards each appended row to the sink.
type RowStreamer struct {
	t    *Table
	sink func(RowEvent)

	mu      sync.Mutex
	total   int
	next    int
	pending map[int][]string
}

// NewRowStreamer wires a streamer for a table of total rows. sink may
// be nil (rows are still appended in order). The sink is invoked with
// the streamer's lock held so events arrive in row order; keep it
// cheap and never call Emit from it.
func NewRowStreamer(t *Table, total int, sink func(RowEvent)) *RowStreamer {
	return &RowStreamer{t: t, sink: sink, total: total, pending: make(map[int][]string)}
}

// Emit hands the streamer row i. The row is appended to the table (and
// reported to the sink) as soon as rows 0..i-1 have all been emitted;
// until then it is buffered. Each index must be emitted exactly once.
func (r *RowStreamer) Emit(i int, cells ...any) {
	row := formatRow(cells)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending == nil {
		r.pending = make(map[int][]string)
	}
	r.pending[i] = row
	for {
		next, ok := r.pending[r.next]
		if !ok {
			break
		}
		delete(r.pending, r.next)
		r.t.mu.Lock()
		r.t.rows = append(r.t.rows, next)
		r.t.mu.Unlock()
		if r.sink != nil {
			r.sink(RowEvent{Table: r.t, Index: r.next, Total: r.total, Cells: next})
		}
		r.next++
	}
	if r.next >= r.total {
		// Fully drained: drop the buffer so a streamer that outlives
		// its run (the drivers keep them alive as long as the tables)
		// retains no row backing arrays or grown map buckets.
		r.pending = nil
	}
}

// Released returns how many rows have been appended to the table so
// far (for tests and completeness checks: a fully drained streamer has
// Released() == total and no buffered rows).
func (r *RowStreamer) Released() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}
