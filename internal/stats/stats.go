// Package stats provides the small statistics and reporting toolkit used
// by the simulators and the experiment harness: online moment tracking,
// fixed-width histograms, percentile estimation over retained samples,
// and a table model with plain/markdown/CSV renderers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count/min/max/mean/variance in O(1) memory using
// Welford's algorithm. The zero value is ready to use.
type Online struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasSamples bool
}

// Add records one observation.
func (o *Online) Add(x float64) {
	o.n++
	if !o.hasSamples {
		o.min, o.max = x, x
		o.hasSamples = true
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int64 { return o.n }

// Mean returns the sample mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Min returns the smallest observation (0 when empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 when empty).
func (o *Online) Max() float64 { return o.max }

// Variance returns the unbiased sample variance (0 for n < 2).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Merge folds other into o, as if all of other's observations had been
// Added to o directly.
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	n := o.n + other.n
	d := other.mean - o.mean
	mean := o.mean + d*float64(other.n)/float64(n)
	m2 := o.m2 + other.m2 + d*d*float64(o.n)*float64(other.n)/float64(n)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n, o.mean, o.m2 = n, mean, m2
}

// Sample retains all observations for exact percentile queries. Use for
// per-stream response-time collections where cardinality is modest.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted sample. Empty samples yield 0.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.xs))))
	if rank < 1 {
		rank = 1
	}
	return s.xs[rank-1]
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 { return s.Percentile(100) }

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Mean returns the sample mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Histogram counts observations into fixed-width bins over [Lo, Hi).
// Out-of-range observations are tallied in the under/over counters.
type Histogram struct {
	Lo, Hi float64
	Bins   []int64
	Under  int64
	Over   int64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i >= len(h.Bins) { // guard float rounding at the upper edge
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int64 {
	t := h.Under + h.Over
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// BinBounds returns the [lo, hi) bounds of bin i.
func (h *Histogram) BinBounds(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Ratio is a convenience for acceptance-ratio style cells: k successes
// out of n trials, rendered as a fraction.
type Ratio struct{ K, N int }

// Value returns K/N (0 when N == 0).
func (r Ratio) Value() float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.K) / float64(r.N)
}

// String renders the ratio as "0.873".
func (r Ratio) String() string { return fmt.Sprintf("%.3f", r.Value()) }
