package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"profirt"
	"profirt/internal/configfile"
)

// TestServeLoadByteIdentity is the headline load test: hundreds of
// concurrent clients hammer every endpoint of one shared-Engine server
// and every response must be byte-identical to a direct Engine call
// pushed through the same wire types, while /metrics (scraped
// concurrently) shows the pool actually working.
//
// The request pool cycles a handful of distinct bodies, so the cache
// sees both misses (first touch) and hits (every repeat), and the
// fair-admission pool sees many interleaved submissions.
func TestServeLoadByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	const (
		clients  = 250
		reqsEach = 4
		variants = 5
	)

	eng := profirt.NewEngine(
		profirt.WithParallelism(4),
		profirt.WithCache(profirt.NewAnalysisCache(0)),
	)
	defer eng.Close()
	srv := New(eng, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Golden bodies from a sequential reference Engine — the ground
	// truth every served response must match byte for byte.
	ref := profirt.NewEngine(profirt.WithParallelism(1))
	defer ref.Close()
	type call struct {
		path string
		body []byte
		want []byte
	}
	var calls []call
	for v := 0; v < variants; v++ {
		files := []configfile.File{netFile(int64(v)), netFile(int64(v + 100))}
		nets := make([]profirt.Network, len(files))
		cfgs := make([]profirt.SimConfig, len(files))
		for i := range files {
			n, cfg, err := files[i].Build()
			if err != nil {
				t.Fatal(err)
			}
			nets[i], cfgs[i] = n, cfg
		}

		an, err := ref.AnalyzeNetworks(context.Background(), nets, profirt.AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call{
			path: "/v1/analyze/networks",
			body: encodeBody(t, AnalyzeNetworksRequest{Networks: files}),
			want: encodeBody(t, AnalyzeNetworksResponse{Results: an}),
		})

		sim, err := ref.SimulateBatch(context.Background(), cfgs, profirt.SimulateOptions{Seed: int64(v)})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call{
			path: "/v1/simulate/batch",
			body: encodeBody(t, SimulateBatchRequest{Networks: files, Seed: int64(v)}),
			want: encodeBody(t, SimulateBatchResponse{Results: SimResults(sim)}),
		})
	}
	topo := topoFile()
	top, simTop, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	ta, err := ref.AnalyzeTopologies(context.Background(), []profirt.Topology{top}, profirt.TopologyAnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	calls = append(calls, call{
		path: "/v1/analyze/topologies",
		body: encodeBody(t, AnalyzeTopologiesRequest{Topologies: []configfile.TopologyFile{topo}}),
		want: encodeBody(t, AnalyzeTopologiesResponse{Results: TopologyResults(ta)}),
	})
	tsim, err := ref.SimulateTopology(context.Background(), simTop, profirt.TopologySimulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	calls = append(calls, call{
		path: "/v1/simulate/topology",
		body: encodeBody(t, SimulateTopologyRequest{Topology: topo}),
		want: encodeBody(t, SimulateTopologyResponse{Result: tsim}),
	})

	// Scraper: poll /metrics throughout the storm and record the peak
	// pool occupancy it witnesses.
	scrapeDone := make(chan struct{})
	stopScrape := make(chan struct{})
	var peakInFlight int64
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics?format=json")
			if err == nil {
				var m Metrics
				if json.NewDecoder(resp.Body).Decode(&m) == nil {
					if inFlight := int64(m.Engine.Pool.InFlight); inFlight > atomic.LoadInt64(&peakInFlight) {
						atomic.StoreInt64(&peakInFlight, inFlight)
					}
				}
				resp.Body.Close()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	transport := &http.Transport{MaxIdleConnsPerHost: 64}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	var wg sync.WaitGroup
	var mismatches, failures atomic.Int64
	var firstErr atomic.Value
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < reqsEach; r++ {
				k := calls[(c*reqsEach+r)%len(calls)]
				req, err := http.NewRequest(http.MethodPost, ts.URL+k.path, bytes.NewReader(k.body))
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err.Error())
					return
				}
				req.Header.Set("X-Client-ID", "client-"+string(rune('A'+c%26)))
				resp, err := client.Do(req)
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err.Error())
					return
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, string(got))
					return
				}
				if !bytes.Equal(got, k.want) {
					mismatches.Add(1)
					firstErr.CompareAndSwap(nil, "byte mismatch on "+k.path)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopScrape)
	<-scrapeDone

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d/%d requests failed under load; first: %v", n, clients*reqsEach, firstErr.Load())
	}
	if n := mismatches.Load(); n != 0 {
		t.Fatalf("%d/%d responses diverged from the direct Engine call; first: %v",
			n, clients*reqsEach, firstErr.Load())
	}

	// Post-storm metrics: the pool, cache and server counters must all
	// have moved, and the scraper must have caught the pool busy.
	m := srv.Metrics()
	if m.Server.RequestsTotal < clients*reqsEach {
		t.Fatalf("RequestsTotal = %d, want >= %d", m.Server.RequestsTotal, clients*reqsEach)
	}
	if m.Server.ActiveRequests != 0 {
		t.Fatalf("ActiveRequests = %d after the storm settled", m.Server.ActiveRequests)
	}
	if m.Engine.Pool.Jobs == 0 || m.Engine.Pool.Submissions == 0 {
		t.Fatalf("pool never worked: %+v", m.Engine.Pool)
	}
	if m.Engine.Pool.InFlight != 0 || m.Engine.Pool.ActiveSubmissions != 0 {
		t.Fatalf("pool not idle after the storm: %+v", m.Engine.Pool)
	}
	if m.Engine.Ops.AnalyzeNetworks == 0 || m.Engine.Ops.SimulateBatch == 0 ||
		m.Engine.Ops.AnalyzeTopologies == 0 || m.Engine.Ops.SimulateTopology == 0 {
		t.Fatalf("op counters missing traffic: %+v", m.Engine.Ops)
	}
	if m.Engine.Cache.Misses == 0 {
		t.Fatalf("cache saw no misses: %+v", m.Engine.Cache)
	}
	if m.Engine.Cache.Hits == 0 && !m.Engine.Cache.AutoDisabled {
		t.Fatalf("repeated identical analyses produced no cache hits: %+v", m.Engine.Cache)
	}
	if atomic.LoadInt64(&peakInFlight) == 0 {
		t.Fatal("/metrics scrapes never observed pool occupancy during the storm")
	}

	// The Prometheus rendering of the same snapshot carries every
	// metric family.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{
		"profiserve_pool_workers", "profiserve_pool_in_flight", "profiserve_pool_queue_depth",
		"profiserve_pool_jobs_total", "profiserve_engine_op_calls_total",
		"profiserve_cache_hits_total", "profiserve_cache_misses_total",
		"profiserve_store_entries", "profiserve_server_requests_total",
		"profiserve_server_rejected_over_limit_total",
	} {
		if !strings.Contains(string(text), name) {
			t.Fatalf("Prometheus exposition missing %s", name)
		}
	}
}
