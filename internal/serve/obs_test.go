package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"profirt"
	"profirt/internal/configfile"
)

// stepClock is a deterministic clock: every Now() advances it by one
// step. Injected through Options.Clock so endpoint histograms record
// known durations.
type stepClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

// doJSON drives one request through the Server's handler directly, so
// every deferred endpoint step (histogram, access log, trace export)
// has finished by the time it returns.
func doJSON(t *testing.T, s *Server, path string, v any, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, val := range hdr {
		req.Header.Set(k, val)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func newObsServer(t *testing.T, opts Options) *Server {
	t.Helper()
	eng := profirt.NewEngine(
		profirt.WithParallelism(2),
		profirt.WithCache(profirt.NewAnalysisCache(0)),
	)
	t.Cleanup(func() { eng.Close() })
	return New(eng, opts)
}

func analyzeBody() AnalyzeNetworksRequest {
	return AnalyzeNetworksRequest{Networks: []configfile.File{netFile(1), netFile(2)}}
}

// TestEndpointHistogramAndRequestID: the wrapped endpoint observes one
// sample per request on its own histogram (durations from the
// injected clock), generates request ids when the client sends none
// and echoes client-supplied ones.
func TestEndpointHistogramAndRequestID(t *testing.T) {
	clock := &stepClock{step: time.Millisecond}
	s := newObsServer(t, Options{Clock: clock})

	w := doJSON(t, s, "/v1/analyze/networks", analyzeBody(), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Request-ID"); got != "req-00000001" {
		t.Fatalf("generated request id = %q, want req-00000001", got)
	}

	w = doJSON(t, s, "/v1/analyze/networks", analyzeBody(), map[string]string{"X-Request-ID": "client-7"})
	if got := w.Header().Get("X-Request-ID"); got != "client-7" {
		t.Fatalf("echoed request id = %q, want client-7", got)
	}

	var lat profirt.LatencySnapshot
	var found bool
	for _, ep := range s.Metrics().Server.Endpoints {
		if ep.Endpoint == "/v1/analyze/networks" {
			lat, found = ep.Latency, true
		}
	}
	if !found {
		t.Fatal("no endpoint latency entry for /v1/analyze/networks")
	}
	if lat.Count != 2 {
		t.Fatalf("endpoint histogram count = %d, want 2", lat.Count)
	}
	if lat.SumNs <= 0 {
		t.Fatalf("endpoint histogram sum = %d, want > 0", lat.SumNs)
	}
	// Even a rejected method lands in the histogram: the wrapper times
	// the whole handler, error paths included.
	req := httptest.NewRequest(http.MethodGet, "/v1/analyze/networks", nil)
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", rw.Code)
	}
	for _, ep := range s.Metrics().Server.Endpoints {
		if ep.Endpoint == "/v1/analyze/networks" && ep.Latency.Count != 3 {
			t.Fatalf("endpoint histogram count after GET = %d, want 3", ep.Latency.Count)
		}
	}
}

// TestAccessLog: with a Logger configured, each request emits one
// structured record carrying the request id, path, status, bytes and
// duration.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s := newObsServer(t, Options{Logger: logger})

	doJSON(t, s, "/v1/analyze/networks", analyzeBody(), map[string]string{"X-Request-ID": "log-1"})

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("access log is not one JSON record: %v (%q)", err, buf.String())
	}
	if rec["id"] != "log-1" || rec["path"] != "/v1/analyze/networks" || rec["method"] != "POST" {
		t.Fatalf("access log fields wrong: %v", rec)
	}
	if rec["status"] != float64(http.StatusOK) {
		t.Fatalf("access log status = %v, want 200", rec["status"])
	}
	if b, ok := rec["bytes"].(float64); !ok || b <= 0 {
		t.Fatalf("access log bytes = %v, want > 0", rec["bytes"])
	}
}

// TestTraceFileWritten: with TraceDir set, a request produces one
// Chrome trace_event JSON file whose spans nest the request root over
// the engine op, and whose name embeds the sanitized request id.
func TestTraceFileWritten(t *testing.T) {
	dir := t.TempDir()
	s := newObsServer(t, Options{TraceDir: dir})

	w := doJSON(t, s, "/v1/analyze/networks", analyzeBody(), map[string]string{"X-Request-ID": "cli/..x"})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("trace files = %d, want 1", len(ents))
	}
	name := ents[0].Name()
	if !strings.HasPrefix(name, "cli-..x-") || !strings.HasSuffix(name, ".trace.json") {
		t.Fatalf("trace file name %q: want sanitized id prefix and .trace.json suffix", name)
	}
	raw, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
	var haveRoot, haveEngine bool
	for _, ev := range trace.TraceEvents {
		switch ev.Name {
		case "request /v1/analyze/networks":
			haveRoot = true
		case "engine.analyze_networks":
			haveEngine = true
		}
	}
	if !haveRoot || !haveEngine {
		t.Fatalf("trace missing spans: root=%v engine=%v", haveRoot, haveEngine)
	}
	if trace.OtherData["traceId"] != "cli/..x" {
		t.Fatalf("trace id = %q, want the request id", trace.OtherData["traceId"])
	}
}

// TestActiveClientsDrainsToZero is the regression test for the old
// admit() shortcut: with no per-client cap configured it admitted
// without registering, so ActiveClients read 0 even under load and
// the per-client table was meaningless. Registration is now
// unconditional: the gauge rises while requests are in flight and
// drains back to exactly zero.
func TestActiveClientsDrainsToZero(t *testing.T) {
	s := newObsServer(t, Options{}) // cap disabled: the buggy path

	// The unit-level property first, deterministically: admitting with
	// no cap registers the client.
	if !s.admit("probe") {
		t.Fatal("admit refused with cap disabled")
	}
	if got := s.Metrics().Server.ActiveClients; got != 1 {
		t.Fatalf("ActiveClients while admitted = %d, want 1", got)
	}
	s.release("probe")
	if got := s.Metrics().Server.ActiveClients; got != 0 {
		t.Fatalf("ActiveClients after release = %d, want 0", got)
	}

	// Then end to end: a burst of concurrent requests from distinct
	// clients must leave the gauge at zero once every handler returns.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doJSON(t, s, "/v1/analyze/networks", analyzeBody(),
				map[string]string{"X-Client-ID": fmt.Sprintf("c%d", i)})
		}(i)
	}
	wg.Wait()
	if got := s.Metrics().Server.ActiveClients; got != 0 {
		t.Fatalf("ActiveClients after drain = %d, want 0", got)
	}
	if got := s.Metrics().Server.ActiveRequests; got != 0 {
		t.Fatalf("ActiveRequests after drain = %d, want 0", got)
	}
}

// TestPrometheusExposition is the exposition-format validator: after
// real traffic, the /metrics text must declare HELP and TYPE before
// each family's samples, contain no duplicate series, keep histogram
// buckets cumulative (monotone nondecreasing), and close every
// histogram with le="+Inf" equal to its _count.
func TestPrometheusExposition(t *testing.T) {
	s := newObsServer(t, Options{})
	doJSON(t, s, "/v1/analyze/networks", analyzeBody(), nil)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", w.Code)
	}
	text := w.Body.String()

	type family struct {
		help, typ bool
		sampled   bool
	}
	families := map[string]*family{}
	fam := func(name string) *family {
		f := families[name]
		if f == nil {
			f = &family{}
			families[name] = f
		}
		return f
	}
	// baseName strips the histogram sample suffixes so _bucket/_sum/
	// _count attach to their declared family.
	baseName := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if f, ok := families[base]; ok && f.typ {
					return base
				}
			}
		}
		return name
	}

	seen := map[string]bool{} // full series (name + labels), for the dup check
	type histState struct {
		last    uint64
		infSeen bool
		inf     uint64
	}
	hists := map[string]*histState{} // per _bucket series sans le
	counts := map[string]uint64{}    // _count value per series sans suffix

	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("HELP without text: %q", line)
			}
			fam(parts[0]).help = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			f := fam(parts[0])
			if f.sampled {
				t.Fatalf("TYPE for %s after its samples", parts[0])
			}
			f.typ = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		// Sample line: name{labels} value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample: %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		if seen[series] {
			t.Fatalf("duplicate series %q", series)
		}
		seen[series] = true
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced labels in %q", series)
			}
		}
		base := baseName(name)
		f := fam(base)
		if !f.help || !f.typ {
			t.Fatalf("series %q sampled before HELP+TYPE of %q", series, base)
		}
		f.sampled = true

		if strings.HasSuffix(name, "_bucket") && base != name {
			// Strip the le label to key the cumulative check.
			li := strings.Index(series, `le="`)
			if li < 0 {
				t.Fatalf("bucket without le label: %q", series)
			}
			le := series[li+len(`le="`):]
			le = le[:strings.IndexByte(le, '"')]
			// Normalize to the series name without the le label, matching
			// how the _count series renders: name for unlabeled series,
			// name{other="labels"} otherwise.
			prefix := strings.TrimSuffix(series[:li], ",")
			key := prefix + "}"
			if strings.HasSuffix(prefix, "{") {
				key = strings.TrimSuffix(prefix, "{")
			}
			h := hists[key]
			if h == nil {
				h = &histState{}
				hists[key] = h
			}
			v, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if v < h.last {
				t.Fatalf("bucket counts not cumulative at %q: %d < %d", series, v, h.last)
			}
			h.last = v
			if le == "+Inf" {
				h.infSeen = true
				h.inf = v
			} else if h.infSeen {
				t.Fatalf("finite bucket after le=\"+Inf\" in %q", series)
			}
		}
		if strings.HasSuffix(name, "_count") && base != name {
			v, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("count value in %q: %v", line, err)
			}
			counts[strings.Replace(series, "_count", "_bucket", 1)] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for key, h := range hists {
		if !h.infSeen {
			t.Fatalf("histogram %q has no le=\"+Inf\" bucket", key)
		}
		want, ok := counts[key]
		if !ok {
			t.Fatalf("histogram %q has buckets but no _count", key)
		}
		if h.inf != want {
			t.Fatalf("histogram %q: le=\"+Inf\" = %d but _count = %d", key, h.inf, want)
		}
	}

	// The traffic we drove must be visible: nonzero engine-op and
	// per-endpoint histogram counts.
	for _, needle := range []string{
		`profiserve_engine_op_duration_seconds_count{op="analyze_networks"} 1`,
		`profiserve_http_request_duration_seconds_count{endpoint="/v1/analyze/networks"} 1`,
	} {
		if !strings.Contains(text, needle) {
			t.Fatalf("exposition missing %q", needle)
		}
	}
}
