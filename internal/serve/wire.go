package serve

import (
	"encoding/json"

	"profirt"
	"profirt/internal/configfile"
)

// The wire schema. Request bodies reuse the configfile JSON schemas —
// a network description POSTed to the server is exactly the file
// cmd/profisim reads — wrapped in a small envelope carrying the
// per-request knobs. Responses re-encode the Engine's result types;
// where a result carries a Go error (which does not marshal) the wire
// form replaces it with its string. Every response is a pure function
// of the request body: the server adds nothing nondeterministic, so a
// served response is byte-identical to encoding a direct Engine call's
// results through these same types (load_test.go holds that property
// under hundreds of concurrent clients).

// AnalyzeNetworksRequest is the body of POST /v1/analyze/networks.
type AnalyzeNetworksRequest struct {
	// Networks holds one configfile network description per entry.
	Networks []configfile.File `json:"networks"`
	// TimeoutMs, when positive, bounds the request: the work context
	// is cancelled after that many milliseconds and the request fails
	// with 504.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// AnalyzeNetworksResponse is its reply: results in input order.
type AnalyzeNetworksResponse struct {
	Results []profirt.BatchResult `json:"results"`
}

// AnalyzeTopologiesRequest is the body of POST /v1/analyze/topologies.
type AnalyzeTopologiesRequest struct {
	// Topologies holds one configfile topology description per entry.
	Topologies []configfile.TopologyFile `json:"topologies"`
	// MaxIterations caps each topology's cross-segment jitter fixed
	// point (0 selects the engine default).
	MaxIterations int `json:"maxIterations,omitempty"`
	// TimeoutMs bounds the request as in AnalyzeNetworksRequest.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// TopologyResultJSON is the wire form of one TopologyBatchResult: the
// Err field (a Go error) becomes its string.
type TopologyResultJSON struct {
	Index   int                    `json:"index"`
	Skipped bool                   `json:"skipped,omitempty"`
	Error   string                 `json:"error,omitempty"`
	Result  profirt.TopologyResult `json:"result"`
}

// AnalyzeTopologiesResponse is the reply: results in input order.
type AnalyzeTopologiesResponse struct {
	Results []TopologyResultJSON `json:"results"`
}

// TopologyResults converts a batch to its wire form.
func TopologyResults(in []profirt.TopologyBatchResult) []TopologyResultJSON {
	out := make([]TopologyResultJSON, len(in))
	for i, r := range in {
		out[i] = TopologyResultJSON{Index: r.Index, Skipped: r.Skipped, Result: r.Result}
		if r.Err != nil {
			out[i].Error = r.Err.Error()
		}
	}
	return out
}

// SimulateBatchRequest is the body of POST /v1/simulate/batch. Each
// network description's simulator configuration is extracted with
// configfile Build; analysis-side fields are ignored.
type SimulateBatchRequest struct {
	Networks []configfile.File `json:"networks"`
	// Seed is the batch base seed: run i uses Seed ⊕ FNV-1a(i) unless
	// ConfigSeeds is set.
	Seed int64 `json:"seed,omitempty"`
	// ConfigSeeds uses each description's own "seed" field verbatim.
	ConfigSeeds bool  `json:"configSeeds,omitempty"`
	TimeoutMs   int64 `json:"timeoutMs,omitempty"`
}

// SimResultJSON is the wire form of one SimBatchResult.
type SimResultJSON struct {
	Index   int               `json:"index"`
	Skipped bool              `json:"skipped,omitempty"`
	Error   string            `json:"error,omitempty"`
	Result  profirt.SimResult `json:"result"`
}

// SimulateBatchResponse is the reply: results in input order.
type SimulateBatchResponse struct {
	Results []SimResultJSON `json:"results"`
}

// SimResults converts a batch to its wire form.
func SimResults(in []profirt.SimBatchResult) []SimResultJSON {
	out := make([]SimResultJSON, len(in))
	for i, r := range in {
		out[i] = SimResultJSON{Index: r.Index, Skipped: r.Skipped, Result: r.Result}
		if r.Err != nil {
			out[i].Error = r.Err.Error()
		}
	}
	return out
}

// SimulateTopologyRequest is the body of POST /v1/simulate/topology.
type SimulateTopologyRequest struct {
	Topology configfile.TopologyFile `json:"topology"`
	// MaxRounds caps the bridge-exchange fixed point (0 selects the
	// engine default). A cancelled or timed-out request stops at the
	// next round barrier.
	MaxRounds int   `json:"maxRounds,omitempty"`
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// SimulateTopologyResponse is the reply.
type SimulateTopologyResponse struct {
	Result profirt.TopologySimResult `json:"result"`
}

// CampaignRequest is the body of POST /v1/campaign. The reply is an
// NDJSON stream of StreamEvent lines: one "row" event per finished
// table row in grid order, then one "done" (or "error") event.
type CampaignRequest struct {
	// Manifest is a campaign manifest (inline networks only, the
	// ParseCampaign schema).
	Manifest json.RawMessage `json:"manifest"`
	// StopAfter, when positive, cancels the campaign after that many
	// newly executed jobs.
	StopAfter int   `json:"stopAfter,omitempty"`
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// StreamEvent is one NDJSON line of a streamed campaign response.
// Exactly one of Row, Done and Error is set, per Type.
type StreamEvent struct {
	// Type is "row", "done" or "error".
	Type string `json:"type"`
	// Row carries one released table row (Type "row").
	Row *RowJSON `json:"row,omitempty"`
	// Done summarizes the completed run (Type "done").
	Done *CampaignDoneJSON `json:"done,omitempty"`
	// Error carries the failure (Type "error"); the stream ends here.
	Error string `json:"error,omitempty"`
}

// RowJSON is the wire form of one TableRowEvent.
type RowJSON struct {
	// Table is the owning table's title.
	Table string `json:"table"`
	// Index and Total are the row's grid position and the table's row
	// count; rows of one table arrive with strictly increasing Index.
	Index int `json:"index"`
	Total int `json:"total"`
	// Cells holds the formatted row.
	Cells []string `json:"cells"`
}

// CampaignDoneJSON summarizes a finished campaign run.
type CampaignDoneJSON struct {
	Jobs     int `json:"jobs"`
	Restored int `json:"restored"`
	Executed int `json:"executed"`
	Skipped  int `json:"skipped"`
	// Table is the fully assembled table, rendered as plain text
	// (complete only when Skipped == 0).
	Table string `json:"table"`
}

// Row converts a TableRowEvent to its wire form.
func Row(ev profirt.TableRowEvent) RowJSON {
	title := ""
	if ev.Table != nil {
		title = ev.Table.Title
	}
	return RowJSON{Table: title, Index: ev.Index, Total: ev.Total, Cells: ev.Cells}
}

// errorBody is the JSON body of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}
