// Package serve exposes one shared profirt.Engine over HTTP/JSON: the
// batch analyses, the simulators and the campaign runner as POST
// endpoints whose bodies reuse the configfile schemas, plus /metrics
// (Engine + server counters, Prometheus text or JSON) and /healthz.
//
// The server is a thin admission layer over the Engine's own sharing
// machinery: every request becomes one Engine call, so concurrent
// clients ride the shared pool's fair round-robin admission, request
// deadlines (the envelope's timeoutMs) and client disconnects map to
// context cancellation, and responses are byte-identical to direct
// Engine calls at any load. A per-client in-flight cap (keyed by the
// X-Client-ID header, else the client host) turns away floods with
// 429 before they reach the pool.
//
// Campaign responses stream: one NDJSON StreamEvent line per table
// row, released in grid order the moment the row's last job settles,
// then a final "done" line with the assembled table.
//
// Graceful drain is owned by the caller (cmd/profiserve):
// http.Server.Shutdown stops intake and waits for in-flight handlers,
// then Engine.Close releases the pool; requests arriving after Close
// get 503 ErrEngineClosed.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"profirt"
	"profirt/internal/obs"
)

// Options tunes a Server.
type Options struct {
	// MaxInFlightPerClient caps one client's concurrently served
	// requests; excess requests get 429 immediately. 0 means no cap.
	MaxInFlightPerClient int
	// MaxBodyBytes caps request bodies (413 beyond it). 0 selects the
	// default, 8 MiB.
	MaxBodyBytes int64
	// Logger, when non-nil, receives one structured access-log record
	// per v1 request (request id, method, path, client, status, bytes,
	// duration) plus trace-export failures.
	Logger *slog.Logger
	// TraceDir, when non-empty, enables per-request span tracing:
	// every v1 request runs under an obs.Tracer and its spans are
	// written to TraceDir as one Chrome trace_event JSON file per
	// request. The directory must exist. Tracing is observational
	// only: responses are byte-identical with and without it.
	TraceDir string
	// Clock substitutes a fake wall clock for tests; nil selects
	// obs.Wall.
	Clock obs.Clock
}

// defaultMaxBodyBytes bounds request bodies when Options does not.
const defaultMaxBodyBytes = 8 << 20

// endpointMetric is one v1 route's request-duration histogram.
type endpointMetric struct {
	path string
	hist obs.Histogram
}

// Server serves one Engine. Construct with New; safe for concurrent
// use by any number of connections.
type Server struct {
	eng  *profirt.Engine
	opts Options
	mux  *http.ServeMux

	clock obs.Clock
	// endpoints holds the per-route latency histograms in registration
	// order, so /metrics renders them in a fixed order.
	endpoints []*endpointMetric
	reqSeq    atomic.Uint64 // generated X-Request-ID counter
	traceSeq  atomic.Uint64 // trace file name disambiguator

	mu        sync.Mutex
	perClient map[string]int

	active   atomic.Int64
	requests atomic.Int64
	rejected atomic.Int64
}

// New builds a Server over eng. The Engine is caller-owned: the
// Server never closes it.
func New(eng *profirt.Engine, opts Options) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = defaultMaxBodyBytes
	}
	if opts.Clock == nil {
		opts.Clock = obs.Wall
	}
	s := &Server{eng: eng, opts: opts, clock: opts.Clock, perClient: make(map[string]int)}
	s.mux = http.NewServeMux()
	s.route("/v1/analyze/networks", s.analyzeNetworks)
	s.route("/v1/analyze/topologies", s.analyzeTopologies)
	s.route("/v1/simulate/batch", s.simulateBatch)
	s.route("/v1/simulate/topology", s.simulateTopology)
	s.route("/v1/campaign", s.campaign)
	s.mux.HandleFunc("/metrics", s.metrics)
	s.mux.HandleFunc("/healthz", s.healthz)
	return s
}

// route registers one v1 endpoint with its latency histogram.
func (s *Server) route(path string, h func(http.ResponseWriter, *http.Request) error) {
	em := &endpointMetric{path: path}
	s.endpoints = append(s.endpoints, em)
	s.mux.HandleFunc(path, s.endpoint(em, h))
}

// Handler returns the Server's routing handler, ready for
// http.Server.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// httpError carries a status code through a handler's error return.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// failf builds an httpError.
func failf(code int, format string, args ...any) error {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

// statusOf maps a handler error to its HTTP status: the Engine's
// drain sentinel is 503 (retry elsewhere), an expired request
// deadline is 504, a disconnected client 499 (never seen by anyone,
// but keeps the access log honest), explicit httpErrors keep their
// code, and anything else — malformed body, invalid configuration —
// is the client's fault: 400.
func statusOf(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.code
	case errors.Is(err, profirt.ErrEngineClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusBadRequest
	}
}

// writeError emits the JSON error body with its mapped status.
func writeError(w http.ResponseWriter, err error) {
	code := statusOf(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// clientKey identifies the requesting client for the in-flight cap:
// the X-Client-ID header when present, else the connection's host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admit registers one in-flight request for key; false means the
// client is at its cap and the request must be turned away.
// Registration is unconditional — the cap only gates admission when
// positive — so the ActiveClients gauge is meaningful (and drains
// back to zero) whether or not a cap is configured.
func (s *Server) admit(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cap := s.opts.MaxInFlightPerClient; cap > 0 && s.perClient[key] >= cap {
		return false
	}
	s.perClient[key]++
	return true
}

// release settles an admitted request. Must mirror admit exactly:
// every true admit gets one release under the same lock, so the
// per-client table never leaks entries after the last request drains.
func (s *Server) release(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.perClient[key] <= 1 {
		delete(s.perClient, key)
	} else {
		s.perClient[key]--
	}
}

// responseRecorder captures the status and body size flowing to the
// client, for the access log and the endpoint histograms. It passes
// Flush through so the campaign endpoint's NDJSON streaming keeps
// working behind it.
type responseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (rec *responseRecorder) WriteHeader(code int) {
	if rec.status == 0 {
		rec.status = code
	}
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *responseRecorder) Write(p []byte) (int, error) {
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	n, err := rec.ResponseWriter.Write(p)
	rec.bytes += int64(n)
	return n, err
}

func (rec *responseRecorder) Flush() {
	if f, ok := rec.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusCode reports the logged status: 200 when the handler finished
// without ever writing (net/http's implicit default).
func (rec *responseRecorder) statusCode() int {
	if rec.status == 0 {
		return http.StatusOK
	}
	return rec.status
}

// requestID returns the request's trace/correlation id: the caller's
// X-Request-ID when present (truncated to 128 bytes), else a counter-
// generated one. Counter, not random: ids only need to be unique per
// process, and the repo bans nondeterministic sources outside tests.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	return fmt.Sprintf("req-%08d", s.reqSeq.Add(1))
}

// endpoint wraps one POST handler with the shared plumbing: method
// check, per-client admission, body bound, request counters, the
// endpoint latency histogram, request-id propagation, optional span
// tracing and the access log, plus error mapping. The inner handler
// owns the success path (it writes the response itself) and returns an
// error for every failure.
func (s *Server) endpoint(em *endpointMetric, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		start := s.clock.Now()
		rid := s.requestID(r)
		w.Header().Set("X-Request-ID", rid)
		rec := &responseRecorder{ResponseWriter: w}
		defer func() {
			d := s.clock.Now().Sub(start)
			em.hist.Observe(d)
			if l := s.opts.Logger; l != nil {
				l.LogAttrs(r.Context(), slog.LevelInfo, "request",
					slog.String("id", rid),
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.String("client", clientKey(r)),
					slog.Int("status", rec.statusCode()),
					slog.Int64("bytes", rec.bytes),
					slog.Duration("dur", d))
			}
		}()
		if r.Method != http.MethodPost {
			rec.Header().Set("Allow", http.MethodPost)
			writeError(rec, failf(http.StatusMethodNotAllowed, "use POST"))
			return
		}
		key := clientKey(r)
		if !s.admit(key) {
			s.rejected.Add(1)
			writeError(rec, failf(http.StatusTooManyRequests,
				"client %q is at its in-flight cap (%d)", key, s.opts.MaxInFlightPerClient))
			return
		}
		defer s.release(key)
		s.active.Add(1)
		defer s.active.Add(-1)
		if s.opts.TraceDir != "" {
			tr := obs.NewTracer(rid, s.clock)
			ctx := obs.WithTracer(r.Context(), tr)
			ctx, root := obs.StartSpan(ctx, "request "+r.URL.Path)
			r = r.WithContext(ctx)
			defer func() {
				root.End()
				s.writeTrace(tr, rid)
			}()
		}
		r.Body = http.MaxBytesReader(rec, r.Body, s.opts.MaxBodyBytes)
		if err := h(rec, r); err != nil {
			writeError(rec, err)
		}
	}
}

// writeTrace exports one request's spans to TraceDir as Chrome
// trace_event JSON. Export failures are logged, never surfaced to the
// client: tracing must not change responses.
func (s *Server) writeTrace(tr *obs.Tracer, rid string) {
	name := fmt.Sprintf("%s-%06d.trace.json", sanitizeID(rid), s.traceSeq.Add(1))
	f, err := os.Create(filepath.Join(s.opts.TraceDir, name))
	if err == nil {
		_, err = tr.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil && s.opts.Logger != nil {
		s.opts.Logger.Warn("trace export failed", "id", rid, "err", err)
	}
}

// sanitizeID maps a client-supplied request id to a safe file name
// fragment: anything outside [A-Za-z0-9._-] becomes '-'.
func sanitizeID(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, id)
}

// decode unmarshals the request body into v with unknown fields
// rejected, mapping an oversized body to 413.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return failf(http.StatusRequestEntityTooLarge, "request body over %d bytes", mbe.Limit)
		}
		return failf(http.StatusBadRequest, "decoding request: %v", err)
	}
	return nil
}

// workContext derives the request's work context: the connection
// context (cancelled on client disconnect) bounded by the envelope's
// timeoutMs when positive.
func workContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if timeoutMs > 0 {
		return context.WithTimeout(ctx, time.Duration(timeoutMs)*time.Millisecond)
	}
	return ctx, func() {}
}

// respond writes the success JSON body.
func respond(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to send.
		return nil
	}
	return nil
}

func (s *Server) analyzeNetworks(w http.ResponseWriter, r *http.Request) error {
	var req AnalyzeNetworksRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	nets := make([]profirt.Network, len(req.Networks))
	for i := range req.Networks {
		net, _, err := req.Networks[i].Build()
		if err != nil {
			return failf(http.StatusBadRequest, "network %d: %v", i, err)
		}
		nets[i] = net
	}
	ctx, cancel := workContext(r, req.TimeoutMs)
	defer cancel()
	results, err := s.eng.AnalyzeNetworks(ctx, nets, profirt.AnalyzeOptions{})
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		// The batch ran out of time: partial output (Skipped entries)
		// would read as verdicts, so fail the request instead.
		return err
	}
	return respond(w, AnalyzeNetworksResponse{Results: results})
}

func (s *Server) analyzeTopologies(w http.ResponseWriter, r *http.Request) error {
	var req AnalyzeTopologiesRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	tops := make([]profirt.Topology, len(req.Topologies))
	for i := range req.Topologies {
		top, _, err := req.Topologies[i].Build()
		if err != nil {
			return failf(http.StatusBadRequest, "topology %d: %v", i, err)
		}
		tops[i] = top
	}
	ctx, cancel := workContext(r, req.TimeoutMs)
	defer cancel()
	results, err := s.eng.AnalyzeTopologies(ctx, tops, profirt.TopologyAnalyzeOptions{MaxIterations: req.MaxIterations})
	if err != nil {
		if errors.Is(err, profirt.ErrEngineClosed) {
			return err
		}
		return failf(http.StatusBadRequest, "%v", err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return respond(w, AnalyzeTopologiesResponse{Results: TopologyResults(results)})
}

func (s *Server) simulateBatch(w http.ResponseWriter, r *http.Request) error {
	var req SimulateBatchRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	cfgs := make([]profirt.SimConfig, len(req.Networks))
	for i := range req.Networks {
		_, cfg, err := req.Networks[i].Build()
		if err != nil {
			return failf(http.StatusBadRequest, "network %d: %v", i, err)
		}
		cfgs[i] = cfg
	}
	ctx, cancel := workContext(r, req.TimeoutMs)
	defer cancel()
	results, err := s.eng.SimulateBatch(ctx, cfgs, profirt.SimulateOptions{
		Seed:        req.Seed,
		ConfigSeeds: req.ConfigSeeds,
	})
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return respond(w, SimulateBatchResponse{Results: SimResults(results)})
}

func (s *Server) simulateTopology(w http.ResponseWriter, r *http.Request) error {
	var req SimulateTopologyRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	_, sim, err := req.Topology.Build()
	if err != nil {
		return failf(http.StatusBadRequest, "topology: %v", err)
	}
	ctx, cancel := workContext(r, req.TimeoutMs)
	defer cancel()
	result, err := s.eng.SimulateTopology(ctx, sim, profirt.TopologySimulateOptions{MaxRounds: req.MaxRounds})
	if err != nil {
		// ctx errors (deadline, disconnect) surface here directly: the
		// fixed point stops at the next round barrier.
		if errors.Is(err, profirt.ErrEngineClosed) ||
			errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return err
		}
		return failf(http.StatusBadRequest, "%v", err)
	}
	return respond(w, SimulateTopologyResponse{Result: result})
}

func (s *Server) campaign(w http.ResponseWriter, r *http.Request) error {
	var req CampaignRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	c, err := profirt.ParseCampaign(req.Manifest)
	if err != nil {
		return failf(http.StatusBadRequest, "manifest: %v", err)
	}
	ctx, cancel := workContext(r, req.TimeoutMs)
	defer cancel()

	// From here the response streams: status is committed before the
	// campaign runs, so failures become "error" events on the stream.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var wmu sync.Mutex
	emit := func(ev StreamEvent) {
		// Row events arrive from pool worker goroutines (in grid order,
		// serialized by the row streamer); the final event from the
		// handler goroutine. One writer at a time either way.
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	res, err := s.eng.RunCampaign(ctx, c, profirt.CampaignOptions{
		StopAfter: req.StopAfter,
		RowSink: func(ev profirt.TableRowEvent) {
			row := Row(ev)
			emit(StreamEvent{Type: "row", Row: &row})
		},
	})
	if err != nil {
		emit(StreamEvent{Type: "error", Error: err.Error()})
		return nil
	}
	emit(StreamEvent{Type: "done", Done: &CampaignDoneJSON{
		Jobs:     res.Jobs,
		Restored: res.Restored,
		Executed: res.Executed,
		Skipped:  res.Skipped,
		Table:    res.Table.String(),
	}})
	return nil
}

// healthz reports liveness: 200 while the Engine accepts work, 503
// once it is closed (draining or shut down).
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if s.eng.Stats().Closed {
		http.Error(w, "engine closed", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
