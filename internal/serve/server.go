// Package serve exposes one shared profirt.Engine over HTTP/JSON: the
// batch analyses, the simulators and the campaign runner as POST
// endpoints whose bodies reuse the configfile schemas, plus /metrics
// (Engine + server counters, Prometheus text or JSON) and /healthz.
//
// The server is a thin admission layer over the Engine's own sharing
// machinery: every request becomes one Engine call, so concurrent
// clients ride the shared pool's fair round-robin admission, request
// deadlines (the envelope's timeoutMs) and client disconnects map to
// context cancellation, and responses are byte-identical to direct
// Engine calls at any load. A per-client in-flight cap (keyed by the
// X-Client-ID header, else the client host) turns away floods with
// 429 before they reach the pool.
//
// Campaign responses stream: one NDJSON StreamEvent line per table
// row, released in grid order the moment the row's last job settles,
// then a final "done" line with the assembled table.
//
// Graceful drain is owned by the caller (cmd/profiserve):
// http.Server.Shutdown stops intake and waits for in-flight handlers,
// then Engine.Close releases the pool; requests arriving after Close
// get 503 ErrEngineClosed.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"profirt"
)

// Options tunes a Server.
type Options struct {
	// MaxInFlightPerClient caps one client's concurrently served
	// requests; excess requests get 429 immediately. 0 means no cap.
	MaxInFlightPerClient int
	// MaxBodyBytes caps request bodies (413 beyond it). 0 selects the
	// default, 8 MiB.
	MaxBodyBytes int64
}

// defaultMaxBodyBytes bounds request bodies when Options does not.
const defaultMaxBodyBytes = 8 << 20

// Server serves one Engine. Construct with New; safe for concurrent
// use by any number of connections.
type Server struct {
	eng  *profirt.Engine
	opts Options
	mux  *http.ServeMux

	mu        sync.Mutex
	perClient map[string]int

	active   atomic.Int64
	requests atomic.Int64
	rejected atomic.Int64
}

// New builds a Server over eng. The Engine is caller-owned: the
// Server never closes it.
func New(eng *profirt.Engine, opts Options) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = defaultMaxBodyBytes
	}
	s := &Server{eng: eng, opts: opts, perClient: make(map[string]int)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/analyze/networks", s.endpoint(s.analyzeNetworks))
	s.mux.HandleFunc("/v1/analyze/topologies", s.endpoint(s.analyzeTopologies))
	s.mux.HandleFunc("/v1/simulate/batch", s.endpoint(s.simulateBatch))
	s.mux.HandleFunc("/v1/simulate/topology", s.endpoint(s.simulateTopology))
	s.mux.HandleFunc("/v1/campaign", s.endpoint(s.campaign))
	s.mux.HandleFunc("/metrics", s.metrics)
	s.mux.HandleFunc("/healthz", s.healthz)
	return s
}

// Handler returns the Server's routing handler, ready for
// http.Server.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// httpError carries a status code through a handler's error return.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// failf builds an httpError.
func failf(code int, format string, args ...any) error {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

// statusOf maps a handler error to its HTTP status: the Engine's
// drain sentinel is 503 (retry elsewhere), an expired request
// deadline is 504, a disconnected client 499 (never seen by anyone,
// but keeps the access log honest), explicit httpErrors keep their
// code, and anything else — malformed body, invalid configuration —
// is the client's fault: 400.
func statusOf(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.code
	case errors.Is(err, profirt.ErrEngineClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusBadRequest
	}
}

// writeError emits the JSON error body with its mapped status.
func writeError(w http.ResponseWriter, err error) {
	code := statusOf(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// clientKey identifies the requesting client for the in-flight cap:
// the X-Client-ID header when present, else the connection's host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admit registers one in-flight request for key; false means the
// client is at its cap and the request must be turned away.
func (s *Server) admit(key string) bool {
	if s.opts.MaxInFlightPerClient <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.perClient[key] >= s.opts.MaxInFlightPerClient {
		return false
	}
	s.perClient[key]++
	return true
}

// release settles an admitted request.
func (s *Server) release(key string) {
	if s.opts.MaxInFlightPerClient <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.perClient[key] <= 1 {
		delete(s.perClient, key)
	} else {
		s.perClient[key]--
	}
}

// endpoint wraps one POST handler with the shared plumbing: method
// check, per-client admission, body bound, request counters and error
// mapping. The inner handler owns the success path (it writes the
// response itself) and returns an error for every failure.
func (s *Server) endpoint(h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, failf(http.StatusMethodNotAllowed, "use POST"))
			return
		}
		key := clientKey(r)
		if !s.admit(key) {
			s.rejected.Add(1)
			writeError(w, failf(http.StatusTooManyRequests,
				"client %q is at its in-flight cap (%d)", key, s.opts.MaxInFlightPerClient))
			return
		}
		defer s.release(key)
		s.active.Add(1)
		defer s.active.Add(-1)
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		if err := h(w, r); err != nil {
			writeError(w, err)
		}
	}
}

// decode unmarshals the request body into v with unknown fields
// rejected, mapping an oversized body to 413.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return failf(http.StatusRequestEntityTooLarge, "request body over %d bytes", mbe.Limit)
		}
		return failf(http.StatusBadRequest, "decoding request: %v", err)
	}
	return nil
}

// workContext derives the request's work context: the connection
// context (cancelled on client disconnect) bounded by the envelope's
// timeoutMs when positive.
func workContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if timeoutMs > 0 {
		return context.WithTimeout(ctx, time.Duration(timeoutMs)*time.Millisecond)
	}
	return ctx, func() {}
}

// respond writes the success JSON body.
func respond(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to send.
		return nil
	}
	return nil
}

func (s *Server) analyzeNetworks(w http.ResponseWriter, r *http.Request) error {
	var req AnalyzeNetworksRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	nets := make([]profirt.Network, len(req.Networks))
	for i := range req.Networks {
		net, _, err := req.Networks[i].Build()
		if err != nil {
			return failf(http.StatusBadRequest, "network %d: %v", i, err)
		}
		nets[i] = net
	}
	ctx, cancel := workContext(r, req.TimeoutMs)
	defer cancel()
	results, err := s.eng.AnalyzeNetworks(ctx, nets, profirt.AnalyzeOptions{})
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		// The batch ran out of time: partial output (Skipped entries)
		// would read as verdicts, so fail the request instead.
		return err
	}
	return respond(w, AnalyzeNetworksResponse{Results: results})
}

func (s *Server) analyzeTopologies(w http.ResponseWriter, r *http.Request) error {
	var req AnalyzeTopologiesRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	tops := make([]profirt.Topology, len(req.Topologies))
	for i := range req.Topologies {
		top, _, err := req.Topologies[i].Build()
		if err != nil {
			return failf(http.StatusBadRequest, "topology %d: %v", i, err)
		}
		tops[i] = top
	}
	ctx, cancel := workContext(r, req.TimeoutMs)
	defer cancel()
	results, err := s.eng.AnalyzeTopologies(ctx, tops, profirt.TopologyAnalyzeOptions{MaxIterations: req.MaxIterations})
	if err != nil {
		if errors.Is(err, profirt.ErrEngineClosed) {
			return err
		}
		return failf(http.StatusBadRequest, "%v", err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return respond(w, AnalyzeTopologiesResponse{Results: TopologyResults(results)})
}

func (s *Server) simulateBatch(w http.ResponseWriter, r *http.Request) error {
	var req SimulateBatchRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	cfgs := make([]profirt.SimConfig, len(req.Networks))
	for i := range req.Networks {
		_, cfg, err := req.Networks[i].Build()
		if err != nil {
			return failf(http.StatusBadRequest, "network %d: %v", i, err)
		}
		cfgs[i] = cfg
	}
	ctx, cancel := workContext(r, req.TimeoutMs)
	defer cancel()
	results, err := s.eng.SimulateBatch(ctx, cfgs, profirt.SimulateOptions{
		Seed:        req.Seed,
		ConfigSeeds: req.ConfigSeeds,
	})
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return respond(w, SimulateBatchResponse{Results: SimResults(results)})
}

func (s *Server) simulateTopology(w http.ResponseWriter, r *http.Request) error {
	var req SimulateTopologyRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	_, sim, err := req.Topology.Build()
	if err != nil {
		return failf(http.StatusBadRequest, "topology: %v", err)
	}
	ctx, cancel := workContext(r, req.TimeoutMs)
	defer cancel()
	result, err := s.eng.SimulateTopology(ctx, sim, profirt.TopologySimulateOptions{MaxRounds: req.MaxRounds})
	if err != nil {
		// ctx errors (deadline, disconnect) surface here directly: the
		// fixed point stops at the next round barrier.
		if errors.Is(err, profirt.ErrEngineClosed) ||
			errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return err
		}
		return failf(http.StatusBadRequest, "%v", err)
	}
	return respond(w, SimulateTopologyResponse{Result: result})
}

func (s *Server) campaign(w http.ResponseWriter, r *http.Request) error {
	var req CampaignRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	c, err := profirt.ParseCampaign(req.Manifest)
	if err != nil {
		return failf(http.StatusBadRequest, "manifest: %v", err)
	}
	ctx, cancel := workContext(r, req.TimeoutMs)
	defer cancel()

	// From here the response streams: status is committed before the
	// campaign runs, so failures become "error" events on the stream.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var wmu sync.Mutex
	emit := func(ev StreamEvent) {
		// Row events arrive from pool worker goroutines (in grid order,
		// serialized by the row streamer); the final event from the
		// handler goroutine. One writer at a time either way.
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	res, err := s.eng.RunCampaign(ctx, c, profirt.CampaignOptions{
		StopAfter: req.StopAfter,
		RowSink: func(ev profirt.TableRowEvent) {
			row := Row(ev)
			emit(StreamEvent{Type: "row", Row: &row})
		},
	})
	if err != nil {
		emit(StreamEvent{Type: "error", Error: err.Error()})
		return nil
	}
	emit(StreamEvent{Type: "done", Done: &CampaignDoneJSON{
		Jobs:     res.Jobs,
		Restored: res.Restored,
		Executed: res.Executed,
		Skipped:  res.Skipped,
		Table:    res.Table.String(),
	}})
	return nil
}

// healthz reports liveness: 200 while the Engine accepts work, 503
// once it is closed (draining or shut down).
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if s.eng.Stats().Closed {
		http.Error(w, "engine closed", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
