package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"profirt"
	"profirt/internal/configfile"
)

// netFile is a small two-stream network description in the configfile
// schema — exactly the body a client would POST.
func netFile(seed int64) configfile.File {
	return configfile.File{
		TTR:     2_000,
		Horizon: 200_000,
		Seed:    seed,
		Masters: []configfile.MasterJSON{{
			Addr: 1,
			Streams: []configfile.StreamJSON{
				{Name: "a", Slave: 30, High: true, Period: 20_000, Deadline: 15_000},
				{Name: "b", Slave: 30, High: true, Period: 50_000, Deadline: 40_000},
			},
		}},
		Slaves: []configfile.SlaveJSON{{Addr: 30, TSDR: 30}},
	}
}

// topoFile couples two netFile segments with one relayed stream.
func topoFile() configfile.TopologyFile {
	return configfile.TopologyFile{
		Seed: 5,
		Segments: []configfile.TopologySegmentJSON{
			{Name: "A", Network: netFile(1)},
			{Name: "B", Network: netFile(2)},
		},
		Bridges: []configfile.BridgeJSON{{
			Name: "br", From: "A", To: "B", Latency: 100,
			Relays: []configfile.RelayJSON{
				{Name: "r1", FromStream: "a", ToStream: "b", Deadline: 60_000},
			},
		}},
	}
}

const testManifest = `{
  "name": "serve-test",
  "seed": 3,
  "trials": 2,
  "policies": ["fcfs", "dm"],
  "deadlineScales": [1.0, 0.4],
  "networks": [{"name": "cell", "network": {
    "ttr": 2000, "horizon": 300000,
    "masters": [
      {"addr": 1, "streams": [
        {"name": "a", "slave": 30, "high": true, "period": 20000, "deadline": 15000},
        {"name": "b", "slave": 30, "high": true, "period": 50000, "deadline": 40000}]}
    ],
    "slaves": [{"addr": 30, "tsdr": 30}]
  }}]
}`

// newTestServer wires an Engine + Server + httptest front end.
func newTestServer(t *testing.T, parallelism int, opts Options) (*httptest.Server, *Server, *profirt.Engine) {
	t.Helper()
	eng := profirt.NewEngine(
		profirt.WithParallelism(parallelism),
		profirt.WithCache(profirt.NewAnalysisCache(0)),
	)
	t.Cleanup(func() { eng.Close() })
	srv := New(eng, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, eng
}

// postJSON posts v and returns status + body.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// encodeBody renders v exactly as the server's success path does, so
// served bytes can be compared to direct Engine results.
func encodeBody(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeAnalyzeNetworksByteIdentical: the served response is
// byte-for-byte the direct Engine result pushed through the wire
// types.
func TestServeAnalyzeNetworksByteIdentical(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, Options{})
	files := []configfile.File{netFile(1), netFile(2), netFile(3)}
	nets := make([]profirt.Network, len(files))
	for i := range files {
		n, _, err := files[i].Build()
		if err != nil {
			t.Fatal(err)
		}
		nets[i] = n
	}
	ref := profirt.NewEngine(profirt.WithParallelism(1))
	defer ref.Close()
	direct, err := ref.AnalyzeNetworks(context.Background(), nets, profirt.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeBody(t, AnalyzeNetworksResponse{Results: direct})

	code, got := postJSON(t, ts.URL+"/v1/analyze/networks", AnalyzeNetworksRequest{Networks: files})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served analyze response diverged from direct Engine call:\n--- served ---\n%s--- direct ---\n%s", got, want)
	}
}

func TestServeAnalyzeTopologiesByteIdentical(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, Options{})
	file := topoFile()
	top, _, err := file.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref := profirt.NewEngine(profirt.WithParallelism(1))
	defer ref.Close()
	direct, err := ref.AnalyzeTopologies(context.Background(), []profirt.Topology{top}, profirt.TopologyAnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeBody(t, AnalyzeTopologiesResponse{Results: TopologyResults(direct)})

	code, got := postJSON(t, ts.URL+"/v1/analyze/topologies", AnalyzeTopologiesRequest{
		Topologies: []configfile.TopologyFile{file},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("served topology analysis diverged from direct Engine call")
	}
}

func TestServeSimulateBatchByteIdentical(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, Options{})
	files := []configfile.File{netFile(1), netFile(2)}
	cfgs := make([]profirt.SimConfig, len(files))
	for i := range files {
		_, cfg, err := files[i].Build()
		if err != nil {
			t.Fatal(err)
		}
		cfgs[i] = cfg
	}
	ref := profirt.NewEngine(profirt.WithParallelism(1))
	defer ref.Close()
	direct, err := ref.SimulateBatch(context.Background(), cfgs, profirt.SimulateOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeBody(t, SimulateBatchResponse{Results: SimResults(direct)})

	code, got := postJSON(t, ts.URL+"/v1/simulate/batch", SimulateBatchRequest{Networks: files, Seed: 7})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("served simulation batch diverged from direct Engine call")
	}
}

func TestServeSimulateTopologyByteIdentical(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, Options{})
	file := topoFile()
	_, sim, err := file.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref := profirt.NewEngine(profirt.WithParallelism(1))
	defer ref.Close()
	direct, err := ref.SimulateTopology(context.Background(), sim, profirt.TopologySimulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeBody(t, SimulateTopologyResponse{Result: direct})

	code, got := postJSON(t, ts.URL+"/v1/simulate/topology", SimulateTopologyRequest{Topology: file})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("served topology simulation diverged from direct Engine call")
	}
}

// TestServeCampaignStreams: the campaign endpoint streams one NDJSON
// row event per table row in grid order, then a done event whose
// rendered table matches a direct run.
func TestServeCampaignStreams(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, Options{})
	c, err := profirt.ParseCampaign([]byte(testManifest))
	if err != nil {
		t.Fatal(err)
	}
	ref := profirt.NewEngine(profirt.WithParallelism(1))
	defer ref.Close()
	direct, err := ref.RunCampaign(context.Background(), c, profirt.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(CampaignRequest{Manifest: json.RawMessage(testManifest)})
	resp, err := http.Post(ts.URL+"/v1/campaign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var rows []RowJSON
	var done *CampaignDoneJSON
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "row":
			rows = append(rows, *ev.Row)
		case "done":
			done = ev.Done
		case "error":
			t.Fatalf("stream error: %s", ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done == nil {
		t.Fatal("stream ended without a done event")
	}
	if done.Table != direct.Table.String() {
		t.Fatalf("streamed table diverged:\n--- served ---\n%s--- direct ---\n%s", done.Table, direct.Table.String())
	}
	if len(rows) != c.Rows() {
		t.Fatalf("streamed %d rows, want %d", len(rows), c.Rows())
	}
	for i, row := range rows {
		if row.Index != i {
			t.Fatalf("row %d arrived with index %d; rows must stream in grid order", i, row.Index)
		}
		if row.Cells[0] != direct.Table.Row(i)[0] {
			t.Fatalf("row %d cells diverged from direct run", i)
		}
	}
}

// TestServeStatusCodes walks the failure paths.
func TestServeStatusCodes(t *testing.T) {
	ts, _, eng := newTestServer(t, 2, Options{MaxBodyBytes: 2048})

	t.Run("method-not-allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/analyze/networks")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET on POST endpoint: %d", resp.StatusCode)
		}
	})
	t.Run("malformed-json", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/analyze/networks", "application/json", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed body: %d", resp.StatusCode)
		}
	})
	t.Run("unknown-field", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/analyze/networks", "application/json",
			strings.NewReader(`{"networks": [], "bogus": 1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("unknown field: %d", resp.StatusCode)
		}
	})
	t.Run("invalid-network", func(t *testing.T) {
		bad := netFile(1)
		bad.Masters[0].Streams[0].Period = 0
		code, body := postJSON(t, ts.URL+"/v1/analyze/networks", AnalyzeNetworksRequest{
			Networks: []configfile.File{bad},
		})
		if code != http.StatusBadRequest {
			t.Fatalf("invalid network: %d %s", code, body)
		}
	})
	t.Run("body-too-large", func(t *testing.T) {
		files := make([]configfile.File, 64)
		for i := range files {
			files[i] = netFile(int64(i))
		}
		code, _ := postJSON(t, ts.URL+"/v1/analyze/networks", AnalyzeNetworksRequest{Networks: files})
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized body: %d", code)
		}
	})
	t.Run("deadline-exceeded", func(t *testing.T) {
		// Own server: the shared one caps bodies at 2 KiB.
		ts2, _, _ := newTestServer(t, 1, Options{})
		files := make([]configfile.File, 32)
		for i := range files {
			f := netFile(int64(i))
			f.Horizon = 5_000_000
			files[i] = f
		}
		code, body := postJSON(t, ts2.URL+"/v1/simulate/batch", SimulateBatchRequest{
			Networks: files, TimeoutMs: 1,
		})
		if code != http.StatusGatewayTimeout {
			t.Fatalf("expired deadline: %d %s", code, body)
		}
	})
	t.Run("engine-closed", func(t *testing.T) {
		// Last subtest: closes the shared engine.
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		code, body := postJSON(t, ts.URL+"/v1/analyze/networks", AnalyzeNetworksRequest{
			Networks: []configfile.File{netFile(1)},
		})
		if code != http.StatusServiceUnavailable {
			t.Fatalf("closed engine: %d %s", code, body)
		}
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz on closed engine: %d", resp.StatusCode)
		}
	})
}

// TestServePerClientCap: with a cap of 1, a client's second in-flight
// request is turned away with 429 while an unrelated client is still
// served.
func TestServePerClientCap(t *testing.T) {
	ts, srv, _ := newTestServer(t, 1, Options{MaxInFlightPerClient: 1})

	slow := make([]configfile.File, 16)
	for i := range slow {
		f := netFile(int64(i))
		f.Horizon = 5_000_000
		slow[i] = f
	}
	body, _ := json.Marshal(SimulateBatchRequest{Networks: slow})

	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate/batch", bytes.NewReader(body))
		req.Header.Set("X-Client-ID", "hog")
		close(started)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		finished <- err
	}()
	<-started
	// Wait until the hog's request is admitted.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().Server.ActiveRequests == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hog request never became active")
		}
		time.Sleep(time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze/networks",
		bytes.NewReader(encodeBody(t, AnalyzeNetworksRequest{Networks: []configfile.File{netFile(1)}})))
	req.Header.Set("X-Client-ID", "hog")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second in-flight request for capped client: %d", resp.StatusCode)
	}

	// A different client is unaffected.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze/networks",
		bytes.NewReader(encodeBody(t, AnalyzeNetworksRequest{Networks: []configfile.File{netFile(1)}})))
	req2.Header.Set("X-Client-ID", "other")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("unrelated client under another's cap: %d", resp2.StatusCode)
	}
	if err := <-finished; err != nil {
		t.Fatal(err)
	}
	if got := srv.Metrics().Server.RejectedOverLimit; got != 1 {
		t.Fatalf("RejectedOverLimit = %d, want 1", got)
	}
}

// TestServeClientDisconnectMidStream: a client abandoning a streamed
// campaign response cancels the work (the handler returns, the pool
// drains) and leaves the server fully serviceable.
func TestServeClientDisconnectMidStream(t *testing.T) {
	ts, srv, _ := newTestServer(t, 2, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(CampaignRequest{Manifest: json.RawMessage(testManifest)})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/campaign", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first streamed line, then vanish.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line before disconnect: %v", sc.Err())
	}
	cancel()
	resp.Body.Close()

	// The handler must settle (r.Context() cancellation propagates into
	// the campaign, which treats it as skip-the-rest).
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().Server.ActiveRequests != 0 {
		if time.Now().After(deadline) {
			t.Fatal("campaign handler never settled after client disconnect")
		}
		time.Sleep(time.Millisecond)
	}

	// And the server still serves.
	code, bodyOut := postJSON(t, ts.URL+"/v1/analyze/networks", AnalyzeNetworksRequest{
		Networks: []configfile.File{netFile(1)},
	})
	if code != http.StatusOK {
		t.Fatalf("request after another client's disconnect: %d %s", code, bodyOut)
	}
}

// TestServeDrain is the shutdown contract in miniature: Shutdown
// stops intake, the in-flight request completes with full results,
// and only then does the Engine close.
func TestServeDrain(t *testing.T) {
	eng := profirt.NewEngine(profirt.WithParallelism(2))
	defer eng.Close()
	srv := New(eng, Options{})
	hs := &http.Server{Handler: srv.Handler()}
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Config = hs
	ts.Start()

	slow := make([]configfile.File, 8)
	for i := range slow {
		f := netFile(int64(i))
		f.Horizon = 2_000_000
		slow[i] = f
	}
	body, _ := json.Marshal(SimulateBatchRequest{Networks: slow})

	type reply struct {
		code int
		body []byte
		err  error
	}
	inFlight := make(chan reply, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/simulate/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			inFlight <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		inFlight <- reply{code: resp.StatusCode, body: b, err: err}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().Server.ActiveRequests == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never became active")
		}
		time.Sleep(time.Millisecond)
	}

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		t.Fatalf("Shutdown did not drain cleanly: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	r := <-inFlight
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request got %d during drain: %s", r.code, r.body)
	}
	var out SimulateBatchResponse
	if err := json.Unmarshal(r.body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(slow) {
		t.Fatalf("drained request returned %d results, want %d", len(out.Results), len(slow))
	}
	for _, res := range out.Results {
		if res.Skipped || res.Error != "" {
			t.Fatalf("drained request returned partial results: %+v", res)
		}
	}
}

// TestServeMetricsFormats: Prometheus text by default, JSON on
// request, wrong method rejected.
func TestServeMetricsFormats(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, Options{})
	if code, _ := postJSON(t, ts.URL+"/v1/analyze/networks", AnalyzeNetworksRequest{
		Networks: []configfile.File{netFile(1), netFile(2)},
	}); code != http.StatusOK {
		t.Fatalf("warmup request: %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"profiserve_pool_workers 2",
		"profiserve_engine_op_calls_total{op=\"analyze_networks\"} 1",
		"profiserve_server_requests_total 1",
		"profiserve_cache_misses_total",
	} {
		if !strings.Contains(string(text), metric) {
			t.Fatalf("Prometheus exposition missing %q:\n%s", metric, text)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine.Pool.Workers != 2 || m.Engine.Ops.AnalyzeNetworks != 1 || m.Server.RequestsTotal != 1 {
		t.Fatalf("JSON metrics snapshot off: %+v", m)
	}
	if m.Engine.Cache.Misses == 0 {
		t.Fatalf("cache counters never moved: %+v", m.Engine.Cache)
	}

	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/metrics", nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /metrics: %d", dresp.StatusCode)
	}
}
