package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"profirt"
)

// Metrics is the /metrics snapshot: the Engine's shared-resource
// counters plus the serving layer's own.
type Metrics struct {
	Engine profirt.EngineStats `json:"engine"`
	Server ServerStats         `json:"server"`
}

// ServerStats counts the serving layer's admission work.
type ServerStats struct {
	// ActiveRequests is the number of requests inside a handler right
	// now.
	ActiveRequests int64 `json:"activeRequests"`
	// RequestsTotal counts requests routed to the v1 endpoints since
	// start (including rejected ones).
	RequestsTotal int64 `json:"requestsTotal"`
	// RejectedOverLimit counts 429s from the per-client in-flight cap.
	RejectedOverLimit int64 `json:"rejectedOverLimit"`
	// ActiveClients is the number of clients with at least one
	// admitted in-flight request, whether or not a cap is configured.
	ActiveClients int `json:"activeClients"`
	// Endpoints holds per-route request-duration histograms in
	// registration order.
	Endpoints []EndpointLatency `json:"endpoints"`
}

// EndpointLatency is one route's request-duration histogram. The
// duration covers the whole wrapped handler: admission, decode, the
// Engine call and response encoding.
type EndpointLatency struct {
	Endpoint string                  `json:"endpoint"`
	Latency  profirt.LatencySnapshot `json:"latency"`
}

// Metrics snapshots the server and its Engine.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	clients := len(s.perClient)
	s.mu.Unlock()
	eps := make([]EndpointLatency, len(s.endpoints))
	for i, em := range s.endpoints {
		eps[i] = EndpointLatency{Endpoint: em.path, Latency: em.hist.Snapshot()}
	}
	return Metrics{
		Engine: s.eng.Stats(),
		Server: ServerStats{
			ActiveRequests:    s.active.Load(),
			RequestsTotal:     s.requests.Load(),
			RejectedOverLimit: s.rejected.Load(),
			ActiveClients:     clients,
			Endpoints:         eps,
		},
	}
}

// metrics serves GET /metrics: Prometheus text by default, the JSON
// snapshot with ?format=json or an Accept: application/json header.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, failf(http.StatusMethodNotAllowed, "use GET"))
		return
	}
	m := s.Metrics()
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		respond(w, m)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, m)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format. Metric order is fixed, so scrapes diff cleanly.
func WritePrometheus(w io.Writer, m Metrics) {
	b01 := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	gauge := func(name string, v any, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name string, v any, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}

	p := m.Engine.Pool
	gauge("profiserve_pool_workers", p.Workers, "Worker pool width.")
	gauge("profiserve_pool_in_flight", p.InFlight, "Jobs executing on workers right now (pool occupancy).")
	gauge("profiserve_pool_queue_depth", p.QueueDepth, "Submissions waiting in the admission ring.")
	gauge("profiserve_pool_active_submissions", p.ActiveSubmissions, "Submissions admitted and not yet settled.")
	counter("profiserve_pool_submissions_total", p.Submissions, "Submissions ever admitted to the workers.")
	counter("profiserve_pool_inline_submissions_total", p.InlineSubmissions, "Submissions run inline on their caller.")
	counter("profiserve_pool_jobs_total", p.Jobs, "Jobs executed on the workers.")
	gauge("profiserve_engine_closed", b01(m.Engine.Closed), "1 once Engine.Close has been called.")
	gauge("profiserve_engine_calls_in_flight", m.Engine.InFlightCalls, "Engine method calls currently executing.")

	ops := []struct {
		op string
		n  int64
	}{
		{"analyze_networks", m.Engine.Ops.AnalyzeNetworks},
		{"analyze_topologies", m.Engine.Ops.AnalyzeTopologies},
		{"analyze_holistic", m.Engine.Ops.AnalyzeHolistic},
		{"simulate", m.Engine.Ops.Simulate},
		{"simulate_batch", m.Engine.Ops.SimulateBatch},
		{"simulate_topology", m.Engine.Ops.SimulateTopology},
		{"run_campaign", m.Engine.Ops.RunCampaign},
		{"run_experiments", m.Engine.Ops.RunExperiments},
	}
	fmt.Fprintf(w, "# HELP profiserve_engine_op_calls_total Engine method calls by op.\n# TYPE profiserve_engine_op_calls_total counter\n")
	for _, o := range ops {
		fmt.Fprintf(w, "profiserve_engine_op_calls_total{op=%q} %d\n", o.op, o.n)
	}

	c := m.Engine.Cache
	counter("profiserve_cache_hits_total", c.Hits, "Analysis cache hits.")
	counter("profiserve_cache_misses_total", c.Misses, "Analysis cache misses.")
	counter("profiserve_cache_evictions_total", c.Evictions, "Analysis cache evictions.")
	gauge("profiserve_cache_entries", c.Entries, "Resident analysis cache entries.")
	gauge("profiserve_cache_auto_disabled", b01(c.AutoDisabled), "1 while the hit-rate policy has the cache latched off.")

	st := m.Engine.Store
	gauge("profiserve_store_entries", st.Entries, "Resident result store records.")
	counter("profiserve_store_hits_total", st.Hits, "Result store hits.")
	counter("profiserve_store_misses_total", st.Misses, "Result store misses.")
	counter("profiserve_store_appends_total", st.Appends, "Result store records appended.")
	counter("profiserve_store_compactions_total", st.Compactions, "Result store compactions.")

	gauge("profiserve_server_active_requests", m.Server.ActiveRequests, "Requests inside a handler right now.")
	counter("profiserve_server_requests_total", m.Server.RequestsTotal, "Requests routed to the v1 endpoints.")
	counter("profiserve_server_rejected_over_limit_total", m.Server.RejectedOverLimit, "Requests rejected by the per-client in-flight cap.")
	gauge("profiserve_server_active_clients", m.Server.ActiveClients, "Clients with admitted in-flight requests.")

	lat := m.Engine.Latency
	gauge("profiserve_engine_latency_enabled", b01(lat.Enabled), "1 while the Engine records latency histograms.")
	opSeries := make([]histSeries, len(lat.Ops))
	for i, o := range lat.Ops {
		opSeries[i] = histSeries{label: fmt.Sprintf("op=%q", o.Op), snap: o.Latency}
	}
	writeHistogram(w, "profiserve_engine_op_duration_seconds", "Engine method call duration by op.", opSeries)
	writeHistogram(w, "profiserve_pool_queue_wait_seconds", "Time pool jobs spent queued before a worker picked them up.",
		[]histSeries{{snap: lat.PoolQueueWait}})
	writeHistogram(w, "profiserve_pool_job_duration_seconds", "Pool job execution time on a worker.",
		[]histSeries{{snap: lat.PoolRun}})
	writeHistogram(w, "profiserve_cache_lookup_duration_seconds", "Analysis cache lookup latency.",
		[]histSeries{{snap: lat.CacheLookup}})
	writeHistogram(w, "profiserve_store_lookup_duration_seconds", "Result store lookup latency.",
		[]histSeries{{snap: lat.StoreLookup}})
	epSeries := make([]histSeries, len(m.Server.Endpoints))
	for i, ep := range m.Server.Endpoints {
		epSeries[i] = histSeries{label: fmt.Sprintf("endpoint=%q", ep.Endpoint), snap: ep.Latency}
	}
	writeHistogram(w, "profiserve_http_request_duration_seconds", "HTTP request duration by endpoint, wrapped handler end to end.", epSeries)
}

// histSeries is one labeled series of a histogram family. An empty
// label renders an unlabeled series.
type histSeries struct {
	label string // e.g. `op="simulate"`
	snap  profirt.LatencySnapshot
}

// writeHistogram renders one Prometheus histogram family: cumulative
// _bucket series with le bounds in seconds, then _sum and _count per
// series. The snapshot's Count is derived from its buckets, so
// le="+Inf" always equals _count — Prometheus's consistency rule —
// even for snapshots taken mid-traffic.
func writeHistogram(w io.Writer, name, help string, series []histSeries) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	bounds := profirt.LatencyBucketBounds()
	for _, sr := range series {
		sep := ""
		if sr.label != "" {
			sep = sr.label + ","
		}
		var cum uint64
		for i, b := range bounds {
			if i < len(sr.snap.Counts) {
				cum += sr.snap.Counts[i]
			}
			fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, sep, formatSeconds(b.Seconds()), cum)
		}
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, sr.snap.Count)
		if sr.label != "" {
			fmt.Fprintf(w, "%s_sum{%s} %s\n", name, sr.label, formatSeconds(float64(sr.snap.SumNs)/1e9))
			fmt.Fprintf(w, "%s_count{%s} %d\n", name, sr.label, sr.snap.Count)
		} else {
			fmt.Fprintf(w, "%s_sum %s\n", name, formatSeconds(float64(sr.snap.SumNs)/1e9))
			fmt.Fprintf(w, "%s_count %d\n", name, sr.snap.Count)
		}
	}
}

// formatSeconds renders a seconds value the way Prometheus clients
// expect: shortest float form, e.g. "1e-06" or "0.004194304".
func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
