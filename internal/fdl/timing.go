package fdl

import (
	"fmt"

	"profirt/internal/timeunit"
)

// Ticks aliases the shared time base; in this package one tick is one
// bit time at the configured baud rate.
type Ticks = timeunit.Ticks

// BusParams collects the FDL timing parameters that determine frame and
// message-cycle durations. All values are in bit times, matching the
// DIN 19245 convention of specifying delays in t_bit.
type BusParams struct {
	// BaudRate in bit/s, used only for wall-clock reporting.
	BaudRate int64
	// TSDRmin/TSDRmax bound the responder's station delay: the gap
	// between the end of the action frame and the start of the
	// acknowledgement/response.
	TSDRmin Ticks
	TSDRmax Ticks
	// TID1 is the initiator's idle time after receiving an
	// acknowledgement/response/token before the next transmission.
	TID1 Ticks
	// TID2 is the initiator's idle time after sending an
	// unacknowledged frame (SDN).
	TID2 Ticks
	// TSL is the slot time: how long the initiator waits for the first
	// character of a response before declaring the cycle failed and
	// retrying (or giving up).
	TSL Ticks
	// MaxRetry is the maximum number of retransmissions after a failed
	// cycle (DIN: typically 1..8).
	MaxRetry int
}

// DefaultBusParams returns a parameter set representative of a 500
// kbit/s PROFIBUS-DP-era segment (values in bit times, from the DIN
// 19245 recommended ranges).
func DefaultBusParams() BusParams {
	return BusParams{
		BaudRate: 500_000,
		TSDRmin:  11,
		TSDRmax:  60,
		TID1:     37,
		TID2:     60,
		TSL:      100,
		MaxRetry: 1,
	}
}

// Validate reports structurally impossible parameter combinations.
func (p BusParams) Validate() error {
	switch {
	case p.TSDRmin < 0 || p.TSDRmax < p.TSDRmin:
		return fmt.Errorf("fdl: TSDR range [%d,%d] invalid", p.TSDRmin, p.TSDRmax)
	case p.TID1 < 0 || p.TID2 < 0:
		return fmt.Errorf("fdl: idle times must be non-negative")
	case p.TSL <= p.TSDRmax:
		return fmt.Errorf("fdl: slot time %d must exceed TSDRmax %d (responses would time out)", p.TSL, p.TSDRmax)
	case p.MaxRetry < 0:
		return fmt.Errorf("fdl: MaxRetry must be non-negative")
	}
	return nil
}

// Rate returns the tick rate for wall-clock conversions.
func (p BusParams) Rate() timeunit.Rate {
	return timeunit.Rate{TicksPerSecond: p.BaudRate}
}

// TokenPassTicks returns the time to pass the token: the SD4 frame plus
// the initiator idle time before the next master may transmit.
func (p BusParams) TokenPassTicks() Ticks {
	return Ticks(Frame{Kind: KindToken}.Bits()) + p.TID1
}

// CycleTicks returns the duration of one successful message cycle with
// the given action and response frames and the given responder delay
// tsdr (clamped into [TSDRmin, TSDRmax]): action frame + station delay +
// response frame + initiator idle time.
func (p BusParams) CycleTicks(action, response Frame, tsdr Ticks) Ticks {
	if tsdr < p.TSDRmin {
		tsdr = p.TSDRmin
	}
	if tsdr > p.TSDRmax {
		tsdr = p.TSDRmax
	}
	return Ticks(action.Bits()) + tsdr + Ticks(response.Bits()) + p.TID1
}

// FailedAttemptTicks returns the cost of one failed attempt: the action
// frame followed by a full slot-time timeout.
func (p BusParams) FailedAttemptTicks(action Frame) Ticks {
	return Ticks(action.Bits()) + p.TSL
}

// WorstCaseCycleTicks returns the paper's C_hi: the worst-case length of
// a message cycle including the maximum responder delay and all allowed
// retries (every allowed attempt but the last fails by timeout):
//
//	MaxRetry·(action + T_SL) + action + T_SDRmax + response + T_ID1
func (p BusParams) WorstCaseCycleTicks(action, response Frame) Ticks {
	retries := timeunit.MulSat(Ticks(p.MaxRetry), p.FailedAttemptTicks(action))
	return timeunit.AddSat(retries, p.CycleTicks(action, response, p.TSDRmax))
}

// WorstGapPollTicks returns the worst-case duration of one GAP
// maintenance FDL-Status poll: the larger of a full status cycle
// (request + TSDRmax + status response + TID1) and a timeout on an
// unused address (request + TSL).
func (p BusParams) WorstGapPollTicks() Ticks {
	req := Frame{Kind: KindSD1}
	rsp := Frame{Kind: KindSD1}
	cycle := p.CycleTicks(req, rsp, p.TSDRmax)
	timeout := p.FailedAttemptTicks(req)
	return timeunit.Max(cycle, timeout)
}

// UnacknowledgedTicks returns the duration of an SDN (broadcast)
// transmission: the action frame plus TID2; there is no response.
func (p BusParams) UnacknowledgedTicks(action Frame) Ticks {
	return Ticks(action.Bits()) + p.TID2
}

// SRDCycle builds representative action/response frames for a
// send-and-request-data cycle carrying reqData to and respData from a
// slave, returning both frames (SD2 unless empty, SD1 when both sides
// are empty).
func SRDCycle(master, slave byte, high bool, reqData, respData []byte) (action, response Frame) {
	fn := FnSRDlow
	rsp := RspDL
	if high {
		fn = FnSRDhigh
		rsp = RspDH
	}
	action = Frame{Kind: KindSD2, DA: slave, SA: master, FC: ReqFC(fn, false, false), Data: reqData}
	if len(reqData) == 0 {
		action = Frame{Kind: KindSD1, DA: slave, SA: master, FC: ReqFC(fn, false, false)}
	}
	response = Frame{Kind: KindSD2, DA: master, SA: slave, FC: RspFC(rsp, StSlave), Data: respData}
	if len(respData) == 0 {
		response = Frame{Kind: KindShortAck}
	}
	return action, response
}
