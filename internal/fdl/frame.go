// Package fdl implements the PROFIBUS Fieldbus Data Link layer framing
// of DIN 19245 part 1 (later EN 50170 volume 2): the four start-
// delimiter frame formats plus the short acknowledgement, their
// encoding/decoding with checksum verification, and the transmission
// timing model (11-bit UART characters, station delays, slot time,
// retries) from which the analyses obtain message-cycle lengths C_hi.
package fdl

import (
	"errors"
	"fmt"
)

// Frame delimiters and fixed bytes of DIN 19245-1.
const (
	// SD1 starts a fixed-length frame with no data unit (6 chars).
	SD1 = 0x10
	// SD2 starts a variable-length frame (9 + len(data) chars).
	SD2 = 0x68
	// SD3 starts a fixed-length frame with an 8-byte data unit (14 chars).
	SD3 = 0xA2
	// SD4 starts a token frame (3 chars).
	SD4 = 0xDC
	// SC is the single-character short acknowledgement.
	SC = 0xE5
	// ED is the end delimiter of SD1/SD2/SD3 frames.
	ED = 0x16
)

// CharBits is the UART character length on the wire: start bit + 8 data
// bits + even parity + stop bit.
const CharBits = 11

// MaxSD2Data is the largest data-unit length of a variable frame: the
// length byte LE counts DA+SA+FC+DATA and is at most 249.
const MaxSD2Data = 246

// Kind enumerates the frame formats.
type Kind int

// Frame kinds.
const (
	// KindSD1 is a fixed-length frame without data (e.g. FDL status
	// request, short acknowledgements with status).
	KindSD1 Kind = iota
	// KindSD2 is a variable-length data frame.
	KindSD2
	// KindSD3 is a fixed-length frame with exactly 8 data bytes.
	KindSD3
	// KindToken is the SD4 token frame.
	KindToken
	// KindShortAck is the single-byte E5h acknowledgement.
	KindShortAck
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSD1:
		return "SD1"
	case KindSD2:
		return "SD2"
	case KindSD3:
		return "SD3"
	case KindToken:
		return "SD4/token"
	case KindShortAck:
		return "SC/ack"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Decode errors.
var (
	// ErrTruncated reports an incomplete byte stream.
	ErrTruncated = errors.New("fdl: truncated frame")
	// ErrBadStartDelimiter reports an unknown first byte.
	ErrBadStartDelimiter = errors.New("fdl: bad start delimiter")
	// ErrChecksum reports an FCS mismatch.
	ErrChecksum = errors.New("fdl: checksum mismatch")
	// ErrBadEndDelimiter reports a wrong trailing byte.
	ErrBadEndDelimiter = errors.New("fdl: bad end delimiter")
	// ErrLengthMismatch reports disagreeing LE/LEr bytes in SD2.
	ErrLengthMismatch = errors.New("fdl: SD2 length bytes disagree")
	// ErrDataLength reports a data unit incompatible with the kind.
	ErrDataLength = errors.New("fdl: invalid data length for frame kind")
)

// Frame is one FDL frame. DA/SA are destination/source station
// addresses, FC the frame-control byte (see fc.go), Data the data unit
// (SD2: 0..246 bytes, SD3: exactly 8, others: empty; token and short
// ack carry no FC either — it is ignored for those kinds).
type Frame struct {
	Kind Kind
	DA   byte
	SA   byte
	FC   byte
	Data []byte
}

// fcs computes the frame check sequence: the arithmetic sum modulo 256
// of DA, SA, FC and the data unit.
func fcs(da, sa, fc byte, data []byte) byte {
	s := uint32(da) + uint32(sa) + uint32(fc)
	for _, b := range data {
		s += uint32(b)
	}
	return byte(s % 256)
}

// Chars returns the frame's length in UART characters on the wire.
func (f Frame) Chars() int {
	switch f.Kind {
	case KindSD1:
		return 6
	case KindSD2:
		return 9 + len(f.Data)
	case KindSD3:
		return 14
	case KindToken:
		return 3
	case KindShortAck:
		return 1
	default:
		return 0
	}
}

// Bits returns the frame's transmission length in bit times.
func (f Frame) Bits() int64 { return int64(f.Chars()) * CharBits }

// Encode serialises the frame.
func (f Frame) Encode() ([]byte, error) {
	switch f.Kind {
	case KindSD1:
		if len(f.Data) != 0 {
			return nil, fmt.Errorf("%w: SD1 carries no data, got %d bytes", ErrDataLength, len(f.Data))
		}
		return []byte{SD1, f.DA, f.SA, f.FC, fcs(f.DA, f.SA, f.FC, nil), ED}, nil
	case KindSD2:
		if len(f.Data) > MaxSD2Data {
			return nil, fmt.Errorf("%w: SD2 data %d > %d", ErrDataLength, len(f.Data), MaxSD2Data)
		}
		le := byte(3 + len(f.Data))
		out := make([]byte, 0, 9+len(f.Data))
		out = append(out, SD2, le, le, SD2, f.DA, f.SA, f.FC)
		out = append(out, f.Data...)
		out = append(out, fcs(f.DA, f.SA, f.FC, f.Data), ED)
		return out, nil
	case KindSD3:
		if len(f.Data) != 8 {
			return nil, fmt.Errorf("%w: SD3 needs exactly 8 data bytes, got %d", ErrDataLength, len(f.Data))
		}
		out := make([]byte, 0, 14)
		out = append(out, SD3, f.DA, f.SA, f.FC)
		out = append(out, f.Data...)
		out = append(out, fcs(f.DA, f.SA, f.FC, f.Data), ED)
		return out, nil
	case KindToken:
		if len(f.Data) != 0 {
			return nil, fmt.Errorf("%w: token carries no data", ErrDataLength)
		}
		return []byte{SD4, f.DA, f.SA}, nil
	case KindShortAck:
		if len(f.Data) != 0 {
			return nil, fmt.Errorf("%w: short ack carries no data", ErrDataLength)
		}
		return []byte{SC}, nil
	default:
		return nil, fmt.Errorf("fdl: unknown kind %v", f.Kind)
	}
}

// Decode parses one frame from the head of b, returning the frame and
// the number of bytes consumed.
func Decode(b []byte) (Frame, int, error) {
	if len(b) == 0 {
		return Frame{}, 0, ErrTruncated
	}
	switch b[0] {
	case SD1:
		if len(b) < 6 {
			return Frame{}, 0, ErrTruncated
		}
		f := Frame{Kind: KindSD1, DA: b[1], SA: b[2], FC: b[3]}
		if b[4] != fcs(f.DA, f.SA, f.FC, nil) {
			return Frame{}, 0, ErrChecksum
		}
		if b[5] != ED {
			return Frame{}, 0, ErrBadEndDelimiter
		}
		return f, 6, nil
	case SD2:
		if len(b) < 4 {
			return Frame{}, 0, ErrTruncated
		}
		le, ler := b[1], b[2]
		if le != ler {
			return Frame{}, 0, ErrLengthMismatch
		}
		if le < 3 || int(le) > 3+MaxSD2Data {
			return Frame{}, 0, fmt.Errorf("%w: LE=%d out of range", ErrDataLength, le)
		}
		if b[3] != SD2 {
			return Frame{}, 0, ErrBadStartDelimiter
		}
		total := 9 + int(le) - 3
		if len(b) < total {
			return Frame{}, 0, ErrTruncated
		}
		f := Frame{Kind: KindSD2, DA: b[4], SA: b[5], FC: b[6]}
		f.Data = append([]byte(nil), b[7:7+int(le)-3]...)
		if b[total-2] != fcs(f.DA, f.SA, f.FC, f.Data) {
			return Frame{}, 0, ErrChecksum
		}
		if b[total-1] != ED {
			return Frame{}, 0, ErrBadEndDelimiter
		}
		return f, total, nil
	case SD3:
		if len(b) < 14 {
			return Frame{}, 0, ErrTruncated
		}
		f := Frame{Kind: KindSD3, DA: b[1], SA: b[2], FC: b[3]}
		f.Data = append([]byte(nil), b[4:12]...)
		if b[12] != fcs(f.DA, f.SA, f.FC, f.Data) {
			return Frame{}, 0, ErrChecksum
		}
		if b[13] != ED {
			return Frame{}, 0, ErrBadEndDelimiter
		}
		return f, 14, nil
	case SD4:
		if len(b) < 3 {
			return Frame{}, 0, ErrTruncated
		}
		return Frame{Kind: KindToken, DA: b[1], SA: b[2]}, 3, nil
	case SC:
		return Frame{Kind: KindShortAck}, 1, nil
	default:
		return Frame{}, 0, fmt.Errorf("%w: 0x%02x", ErrBadStartDelimiter, b[0])
	}
}
