package fdl

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindSD1: "SD1", KindSD2: "SD2", KindSD3: "SD3",
		KindToken: "SD4/token", KindShortAck: "SC/ack", Kind(9): "Kind(9)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestEncodeSD1(t *testing.T) {
	f := Frame{Kind: KindSD1, DA: 0x05, SA: 0x02, FC: 0x49}
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x10, 0x05, 0x02, 0x49, 0x50, 0x16}
	if !bytes.Equal(b, want) {
		t.Errorf("encoded % x, want % x", b, want)
	}
}

func TestEncodeToken(t *testing.T) {
	f := Frame{Kind: KindToken, DA: 0x03, SA: 0x01}
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{0xDC, 0x03, 0x01}) {
		t.Errorf("token encoded % x", b)
	}
}

func TestEncodeShortAck(t *testing.T) {
	b, err := Frame{Kind: KindShortAck}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{0xE5}) {
		t.Errorf("ack encoded % x", b)
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	frames := []Frame{
		{Kind: KindSD1, DA: 1, SA: 2, FC: ReqFC(FnFDLStatus, false, false)},
		{Kind: KindSD2, DA: 9, SA: 1, FC: ReqFC(FnSRDhigh, true, true), Data: []byte{1, 2, 3, 4}},
		{Kind: KindSD2, DA: 9, SA: 1, FC: RspFC(RspDL, StSlave), Data: []byte{}},
		{Kind: KindSD3, DA: 4, SA: 7, FC: ReqFC(FnSDNlow, false, false), Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Kind: KindToken, DA: 3, SA: 1},
		{Kind: KindShortAck},
	}
	for _, f := range frames {
		b, err := f.Encode()
		if err != nil {
			t.Fatalf("%v: %v", f.Kind, err)
		}
		if len(b) != f.Chars() {
			t.Errorf("%v: encoded %d bytes, Chars says %d", f.Kind, len(b), f.Chars())
		}
		got, n, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", f.Kind, err)
		}
		if n != len(b) {
			t.Errorf("%v: consumed %d, want %d", f.Kind, n, len(b))
		}
		if got.Kind != f.Kind || got.DA != f.DA || got.SA != f.SA {
			t.Errorf("%v: header mismatch: %+v vs %+v", f.Kind, got, f)
		}
		if f.Kind != KindToken && f.Kind != KindShortAck && got.FC != f.FC {
			t.Errorf("%v: FC mismatch", f.Kind)
		}
		if len(f.Data) > 0 && !bytes.Equal(got.Data, f.Data) {
			t.Errorf("%v: data mismatch", f.Kind)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(da, sa, fc byte, data []byte) bool {
		if len(data) > MaxSD2Data {
			data = data[:MaxSD2Data]
		}
		fr := Frame{Kind: KindSD2, DA: da, SA: sa, FC: fc, Data: data}
		b, err := fr.Encode()
		if err != nil {
			return false
		}
		got, n, err := Decode(b)
		if err != nil || n != len(b) {
			return false
		}
		return got.DA == da && got.SA == sa && got.FC == fc && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsBadData(t *testing.T) {
	cases := []Frame{
		{Kind: KindSD1, Data: []byte{1}},
		{Kind: KindSD2, Data: make([]byte, MaxSD2Data+1)},
		{Kind: KindSD3, Data: []byte{1, 2, 3}},
		{Kind: KindToken, Data: []byte{1}},
		{Kind: KindShortAck, Data: []byte{1}},
		{Kind: Kind(42)},
	}
	for _, f := range cases {
		if _, err := f.Encode(); err == nil {
			t.Errorf("%v with %d data bytes: expected error", f.Kind, len(f.Data))
		}
	}
}

func TestDecodeCorruption(t *testing.T) {
	base := Frame{Kind: KindSD2, DA: 9, SA: 1, FC: 0x6D, Data: []byte{10, 20, 30}}
	good, err := base.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Flip the FCS byte.
	bad := append([]byte(nil), good...)
	bad[len(bad)-2] ^= 0xFF
	if _, _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("FCS corruption: got %v, want ErrChecksum", err)
	}

	// Corrupt payload (checksum now stale).
	bad = append([]byte(nil), good...)
	bad[7] ^= 0x01
	if _, _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("payload corruption: got %v, want ErrChecksum", err)
	}

	// Wrong end delimiter.
	bad = append([]byte(nil), good...)
	bad[len(bad)-1] = 0x00
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadEndDelimiter) {
		t.Errorf("ED corruption: got %v, want ErrBadEndDelimiter", err)
	}

	// Disagreeing length bytes.
	bad = append([]byte(nil), good...)
	bad[2]++
	if _, _, err := Decode(bad); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("LE mismatch: got %v, want ErrLengthMismatch", err)
	}

	// Truncations at every prefix length must error, not panic.
	for n := 0; n < len(good); n++ {
		if _, _, err := Decode(good[:n]); err == nil {
			t.Errorf("prefix %d decoded successfully", n)
		}
	}

	// Unknown start delimiter.
	if _, _, err := Decode([]byte{0x42, 0, 0}); !errors.Is(err, ErrBadStartDelimiter) {
		t.Errorf("bad SD: got %v", err)
	}
	if _, _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty: got %v", err)
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(40))
		rng.Read(b)
		_, n, err := Decode(b)
		if err == nil && (n <= 0 || n > len(b)) {
			t.Fatalf("decode consumed %d of %d", n, len(b))
		}
	}
}

func TestDecodeStream(t *testing.T) {
	// Back-to-back frames decode sequentially via the consumed count.
	f1 := Frame{Kind: KindToken, DA: 2, SA: 1}
	f2 := Frame{Kind: KindSD1, DA: 5, SA: 2, FC: 0x49}
	b1, _ := f1.Encode()
	b2, _ := f2.Encode()
	stream := append(b1, b2...)
	got1, n, err := Decode(stream)
	if err != nil || got1.Kind != KindToken {
		t.Fatalf("first decode: %v %v", got1, err)
	}
	got2, _, err := Decode(stream[n:])
	if err != nil || got2.Kind != KindSD1 || got2.DA != 5 {
		t.Fatalf("second decode: %v %v", got2, err)
	}
}

func TestFCHelpers(t *testing.T) {
	fc := ReqFC(FnSRDhigh, true, false)
	if !IsRequest(fc) {
		t.Error("ReqFC must set the request bit")
	}
	if Function(fc) != FnSRDhigh {
		t.Errorf("Function = %#x, want %#x", Function(fc), FnSRDhigh)
	}
	if fc&FCFCB == 0 || fc&FCFCV != 0 {
		t.Error("FCB/FCV bits wrong")
	}
	if !HighPriority(fc) {
		t.Error("SRD-high must be high priority")
	}
	if HighPriority(ReqFC(FnSRDlow, false, false)) {
		t.Error("SRD-low must not be high priority")
	}
	rsp := RspFC(RspDH, StSlave)
	if IsRequest(rsp) {
		t.Error("response FC must not set request bit")
	}
	if !HighPriority(rsp) {
		t.Error("DH response is high priority")
	}
	if HighPriority(RspFC(RspOK, StMasterInRing)) {
		t.Error("OK response is not high priority")
	}
}
