package fdl

// Frame-control (FC) byte layout of DIN 19245-1. Bit 6 distinguishes
// request (1) from response (0) frames; in request frames bits 5/4 carry
// the alternation/validity pair FCB/FCV and bits 3..0 the function code;
// in response frames bits 5/4 encode the station type and bits 3..0 the
// response function code.
const (
	// FCRequest marks a request (action) frame.
	FCRequest byte = 0x40
	// FCFCB is the frame-count bit, alternated per message cycle to
	// detect lost acknowledgements.
	FCFCB byte = 0x20
	// FCFCV marks the frame-count bit as valid.
	FCFCV byte = 0x10
)

// Request function codes (bits 3..0 with FCRequest set).
const (
	// FnTimeEvent is clock-synchronisation broadcast (CV).
	FnTimeEvent byte = 0x00
	// FnSDAlow is Send Data with Acknowledge, low priority.
	FnSDAlow byte = 0x03
	// FnSDNlow is Send Data with No acknowledge, low priority.
	FnSDNlow byte = 0x04
	// FnSDAhigh is Send Data with Acknowledge, high priority.
	FnSDAhigh byte = 0x05
	// FnSDNhigh is Send Data with No acknowledge, high priority.
	FnSDNhigh byte = 0x06
	// FnFDLStatus requests the FDL status of a station (used in ring
	// maintenance / GAP polling).
	FnFDLStatus byte = 0x09
	// FnSRDlow is Send and Request Data, low priority.
	FnSRDlow byte = 0x0C
	// FnSRDhigh is Send and Request Data, high priority.
	FnSRDhigh byte = 0x0D
)

// Response function codes (bits 3..0 with FCRequest clear).
const (
	// RspOK is a positive acknowledgement.
	RspOK byte = 0x00
	// RspUE signals a user error at the responder.
	RspUE byte = 0x01
	// RspRR signals no resource for the request.
	RspRR byte = 0x02
	// RspDL is a response carrying data, low priority.
	RspDL byte = 0x08
	// RspDH is a response carrying data, high priority.
	RspDH byte = 0x0A
)

// Station-type bits (5..4) of response frames.
const (
	// StSlave identifies a passive (slave) station.
	StSlave byte = 0x00
	// StMasterNotReady identifies a master not ready to enter the ring.
	StMasterNotReady byte = 0x10
	// StMasterReady identifies a master ready to enter the ring.
	StMasterReady byte = 0x20
	// StMasterInRing identifies a master already in the logical ring.
	StMasterInRing byte = 0x30
)

// ReqFC assembles a request FC byte from a function code and the
// FCB/FCV pair.
func ReqFC(fn byte, fcb, fcv bool) byte {
	fc := FCRequest | (fn & 0x0F)
	if fcb {
		fc |= FCFCB
	}
	if fcv {
		fc |= FCFCV
	}
	return fc
}

// RspFC assembles a response FC byte from a response code and station
// type bits.
func RspFC(rsp, stationType byte) byte {
	return (stationType & 0x30) | (rsp & 0x0F)
}

// IsRequest reports whether the FC byte marks a request frame.
func IsRequest(fc byte) bool { return fc&FCRequest != 0 }

// Function extracts the 4-bit function code.
func Function(fc byte) byte { return fc & 0x0F }

// HighPriority reports whether a request FC carries high-priority user
// data (SDA/SDN/SRD high variants).
func HighPriority(fc byte) bool {
	if !IsRequest(fc) {
		return Function(fc) == RspDH
	}
	switch Function(fc) {
	case FnSDAhigh, FnSDNhigh, FnSRDhigh:
		return true
	}
	return false
}
