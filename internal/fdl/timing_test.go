package fdl

import (
	"testing"
	"time"
)

func TestDefaultBusParamsValid(t *testing.T) {
	if err := DefaultBusParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBusParamsValidate(t *testing.T) {
	cases := []struct {
		mutate func(*BusParams)
	}{
		{func(p *BusParams) { p.TSDRmax = p.TSDRmin - 1 }},
		{func(p *BusParams) { p.TSDRmin = -1 }},
		{func(p *BusParams) { p.TID1 = -1 }},
		{func(p *BusParams) { p.TID2 = -1 }},
		{func(p *BusParams) { p.TSL = p.TSDRmax }},
		{func(p *BusParams) { p.MaxRetry = -1 }},
	}
	for i, c := range cases {
		p := DefaultBusParams()
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTokenPassTicks(t *testing.T) {
	p := DefaultBusParams()
	// Token frame: 3 chars × 11 bits = 33, + TID1 = 37 ⇒ 70.
	if got := p.TokenPassTicks(); got != 70 {
		t.Errorf("TokenPassTicks = %d, want 70", got)
	}
}

func TestCycleTicks(t *testing.T) {
	p := DefaultBusParams()
	action := Frame{Kind: KindSD1, DA: 5, SA: 1, FC: 0x4D} // 66 bits
	response := Frame{Kind: KindShortAck}                  // 11 bits
	got := p.CycleTicks(action, response, 20)              // tsdr within range
	want := Ticks(66 + 20 + 11 + 37)
	if got != want {
		t.Errorf("CycleTicks = %d, want %d", got, want)
	}
	// Clamping below and above.
	if p.CycleTicks(action, response, 0) != 66+11+11+37 {
		t.Error("tsdr must clamp to TSDRmin")
	}
	if p.CycleTicks(action, response, 10_000) != 66+60+11+37 {
		t.Error("tsdr must clamp to TSDRmax")
	}
}

func TestWorstCaseCycleTicks(t *testing.T) {
	p := DefaultBusParams()
	p.MaxRetry = 2
	action := Frame{Kind: KindSD1, DA: 5, SA: 1, FC: 0x4D} // 66 bits
	resp := Frame{Kind: KindShortAck}                      // 11
	// 2 failed attempts: 2·(66+100) + success: 66+60+11+37 = 332+174 = 506
	if got := p.WorstCaseCycleTicks(action, resp); got != 506 {
		t.Errorf("WorstCaseCycleTicks = %d, want 506", got)
	}
	// Zero retries reduces to a single max-delay cycle.
	p.MaxRetry = 0
	if got := p.WorstCaseCycleTicks(action, resp); got != 174 {
		t.Errorf("no-retry worst cycle = %d, want 174", got)
	}
}

func TestUnacknowledgedTicks(t *testing.T) {
	p := DefaultBusParams()
	f := Frame{Kind: KindSD2, DA: 0x7F, SA: 1, FC: ReqFC(FnSDNlow, false, false), Data: []byte{1, 2}}
	// (9+2)·11 + 60 = 121 + 60 = 181.
	if got := p.UnacknowledgedTicks(f); got != 181 {
		t.Errorf("UnacknowledgedTicks = %d, want 181", got)
	}
}

func TestSRDCycleShapes(t *testing.T) {
	act, rsp := SRDCycle(1, 9, true, []byte{1, 2}, []byte{3, 4, 5})
	if act.Kind != KindSD2 || rsp.Kind != KindSD2 {
		t.Error("non-empty payloads must use SD2")
	}
	if !HighPriority(act.FC) || !HighPriority(rsp.FC) {
		t.Error("high cycle must carry high-priority FCs")
	}
	if act.DA != 9 || act.SA != 1 || rsp.DA != 1 || rsp.SA != 9 {
		t.Error("addressing wrong")
	}

	act, rsp = SRDCycle(1, 9, false, nil, nil)
	if act.Kind != KindSD1 {
		t.Error("empty request must use SD1")
	}
	if rsp.Kind != KindShortAck {
		t.Error("empty response must be a short ack")
	}
	if HighPriority(act.FC) {
		t.Error("low cycle marked high")
	}
}

func TestWorstGapPollTicks(t *testing.T) {
	p := DefaultBusParams()
	// SD1 is 6 chars = 66 bits. Full status cycle: 66 + TSDRmax(60) +
	// 66 + TID1(37) = 229; timeout: 66 + TSL(100) = 166. Worst = 229.
	if got := p.WorstGapPollTicks(); got != 229 {
		t.Errorf("WorstGapPollTicks = %d, want 229", got)
	}
	// With a huge slot time the timeout dominates.
	p.TSL = 1_000
	if got := p.WorstGapPollTicks(); got != 66+1_000 {
		t.Errorf("timeout-dominated poll = %d, want %d", got, 66+1_000)
	}
}

func TestRateReporting(t *testing.T) {
	p := DefaultBusParams()
	if got := p.Rate().Duration(500); got != time.Millisecond {
		t.Errorf("500 bits at 500kbit/s = %v, want 1ms", got)
	}
}

func TestFrameBits(t *testing.T) {
	if got := (Frame{Kind: KindToken}).Bits(); got != 33 {
		t.Errorf("token bits = %d, want 33", got)
	}
	if got := (Frame{Kind: KindSD2, Data: make([]byte, 10)}).Bits(); got != 19*11 {
		t.Errorf("SD2(10) bits = %d, want %d", got, 19*11)
	}
}
