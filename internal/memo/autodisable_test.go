package memo

import (
	"math/rand"
	"testing"

	"profirt/internal/core"
)

func autoStreams(rng *rand.Rand, n int) []core.Stream {
	streams := make([]core.Stream, n)
	for i := range streams {
		T := core.Ticks(50_000 + rng.Intn(200_000))
		streams[i] = core.Stream{
			Ch: core.Ticks(200 + rng.Intn(400)),
			D:  T - core.Ticks(rng.Intn(10_000)),
			T:  T,
			J:  core.Ticks(rng.Intn(2_000)),
		}
	}
	return streams
}

// TestAutoDisableTripsOnAllDistinctBatch: a cache armed with the
// hit-rate policy must latch off on a batch where every stream set is
// distinct, and every result — before, at and after the trip — must be
// byte-identical to the uncached analysis (the property the campaign
// and batch layers rely on).
func TestAutoDisableTripsOnAllDistinctBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := New(0)
	c.SetAutoDisable(20, 0.1)
	tripped := -1
	for i := 0; i < 200; i++ {
		streams := autoStreams(rng, 6)
		tc := core.Ticks(2_000 + rng.Intn(2_000))
		gotDM := DMResponseTimes(c, streams, tc, core.DMOptions{})
		wantDM := core.DMResponseTimes(streams, tc, core.DMOptions{})
		gotEDF := EDFResponseTimes(c, streams, tc, core.EDFOptions{})
		wantEDF := core.EDFResponseTimes(streams, tc, core.EDFOptions{})
		for k := range wantDM {
			if gotDM[k] != wantDM[k] || gotEDF[k] != wantEDF[k] {
				t.Fatalf("iteration %d: cached result diverged (disabled=%v)", i, c.Disabled())
			}
		}
		if tripped < 0 && c.Disabled() {
			tripped = i
		}
	}
	if tripped < 0 {
		t.Fatal("all-distinct batch never tripped the auto-disable latch")
	}
	st := c.Stats()
	if !st.AutoDisabled {
		t.Fatalf("Stats().AutoDisabled = false after trip (stats %+v)", st)
	}
	// Once latched, lookups stop: the counters freeze.
	before := c.Stats()
	DMResponseTimes(c, autoStreams(rng, 6), 2_500, core.DMOptions{})
	if after := c.Stats(); after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("disabled cache still consulted: %+v -> %+v", before, after)
	}
}

// TestAutoDisableSparesHotCaches: a workload with a healthy hit rate
// must never trip the latch.
func TestAutoDisableSparesHotCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New(0)
	c.SetAutoDisable(20, 0.1)
	streams := autoStreams(rng, 6)
	for i := 0; i < 200; i++ {
		DMResponseTimes(c, streams, 2_500, core.DMOptions{})
	}
	if c.Disabled() {
		t.Fatal("hot cache tripped the auto-disable latch")
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Fatalf("repeated set never hit: %+v", st)
	}
}

// TestAutoDisableDefaultsOff: an unarmed cache never self-disables,
// and Reset re-arms a tripped one.
func TestAutoDisableDefaultsOff(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := New(0)
	for i := 0; i < 100; i++ {
		DMResponseTimes(c, autoStreams(rng, 4), 2_500, core.DMOptions{})
	}
	if c.Disabled() {
		t.Fatal("unarmed cache disabled itself")
	}

	c.SetAutoDisable(10, 0.5)
	for i := 0; i < 50; i++ {
		DMResponseTimes(c, autoStreams(rng, 4), 2_500, core.DMOptions{})
	}
	if !c.Disabled() {
		t.Fatal("armed cache did not trip")
	}
	c.Reset()
	if c.Disabled() {
		t.Fatal("Reset did not re-arm the latch")
	}

	var nilCache *Cache
	if !nilCache.Disabled() {
		t.Fatal("nil cache should report disabled")
	}
	nilCache.SetAutoDisable(1, 1) // must not panic
}

// TestAutoDisableRearmRestoresHotClient is the shared long-lived
// Engine scenario: one cold all-distinct sweep trips the latch, and a
// later hot submission — whose chokepoint re-arms the policy — must
// regain cache hits from the still-resident entries, with every result
// byte-identical to the uncached analysis throughout. Before the fix
// the latch never un-tripped, so the first cold client permanently
// killed caching for every later one.
func TestAutoDisableRearmRestoresHotClient(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := New(0)

	// Hot client warms the cache first (its own submission window).
	c.ArmAutoDisable(20, 0.1)
	hot := autoStreams(rng, 6)
	for i := 0; i < 10; i++ {
		got := DMResponseTimes(c, hot, 2_500, core.DMOptions{})
		want := core.DMResponseTimes(hot, 2_500, core.DMOptions{})
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("warm-up %d: cached result diverged", i)
			}
		}
	}
	if c.Disabled() {
		t.Fatal("hot warm-up tripped the latch")
	}

	// Cold client: all-distinct sweep in its own window trips the latch.
	c.ArmAutoDisable(20, 0.1)
	for i := 0; i < 200 && !c.Disabled(); i++ {
		DMResponseTimes(c, autoStreams(rng, 6), 2_500, core.DMOptions{})
	}
	if !c.Disabled() {
		t.Fatal("cold all-distinct sweep never tripped the latch")
	}

	// Hot client returns: its submission re-arms, and the repeated set
	// must hit again.
	c.ArmAutoDisable(20, 0.1)
	if c.Disabled() {
		t.Fatal("re-arm did not clear the latch")
	}
	before := c.Stats()
	for i := 0; i < 50; i++ {
		got := DMResponseTimes(c, hot, 2_500, core.DMOptions{})
		want := core.DMResponseTimes(hot, 2_500, core.DMOptions{})
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("post-latch %d: cached result diverged", i)
			}
		}
	}
	after := c.Stats()
	if c.Disabled() {
		t.Fatal("hot post-latch workload re-tripped the latch")
	}
	if after.Hits <= before.Hits {
		t.Fatalf("post-latch hot client regained no hits: %+v -> %+v", before, after)
	}
}
