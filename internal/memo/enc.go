package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// Enc builds the canonical byte encoding of a whole configuration for
// whole-result memoization (KindHolistic, KindTopology). It is a plain
// append-only buffer: the composition layers walk their configuration
// in a fixed traversal order, writing every field that can influence
// the result — names included, because they surface verbatim in the
// reports. Obtain one from GetEnc and return it with PutEnc so the
// buffer is reused across invocations.
//
// Variable-length fields (strings) are length-prefixed and the
// traversal emits collection lengths, so distinct configurations can
// never share an encoding.
type Enc struct {
	buf []byte
}

var encPool = sync.Pool{New: func() any { return new(Enc) }}

// GetEnc returns an empty encoder from the pool.
func GetEnc() *Enc {
	e := encPool.Get().(*Enc)
	e.buf = e.buf[:0]
	return e
}

// PutEnc returns an encoder to the pool.
func PutEnc(e *Enc) {
	encPool.Put(e)
}

// Byte appends one raw byte.
func (e *Enc) Byte(b byte) { e.buf = append(e.buf, b) }

// Word appends one 64-bit word, little-endian.
func (e *Enc) Word(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Ticks appends one time value.
func (e *Enc) Ticks(t Ticks) { e.Word(uint64(t)) }

// Int appends one integer (lengths, iteration caps, enums).
func (e *Enc) Int(v int) { e.Word(uint64(int64(v))) }

// Bool appends one flag.
func (e *Enc) Bool(b bool) { e.buf = append(e.buf, flag(b)) }

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Word(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// EncToken carries the hashes LookupEncoded computed, so the matching
// StoreEncoded call never re-derives them. The zero token is valid for
// a store against a nil/never-probed cache (StoreEncoded re-hashes as
// needed).
type EncToken struct {
	kind   Kind
	pre    uint64
	key    Key
	hashed bool
}

// encPre is the pre-filter hash of an encoded configuration: mix
// rounds over the buffer eight bytes at a time; the ragged tail is
// zero-padded and followed by its byte count, so a buffer ending in
// literal zero bytes cannot alias the padding.
func encPre(kind Kind, buf []byte) uint64 {
	h := mixWord(preSeed, uint64(kind))
	for len(buf) >= 8 {
		h = mixWord(h, binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	if len(buf) > 0 {
		var tail [8]byte
		copy(tail[:], buf)
		h = mixWord(h, binary.LittleEndian.Uint64(tail[:]))
	}
	return mixWord(h, uint64(len(buf)))
}

// encKey is the content address of an encoded configuration. The
// version and kind prefix mirrors the stream-set key layout, so the
// two key families share one table without colliding.
func encKey(kind Kind, e *Enc) Key {
	h := sha256.New()
	h.Write([]byte{keyVersion, byte(kind)})
	h.Write(e.buf)
	var k Key
	h.Sum(k[:0])
	return k
}

// LookupEncoded probes the cache for the value stored under kind and
// the encoded configuration. The counting pre-filter resolves
// guaranteed misses before the SHA-256 key is computed; the returned
// token carries whatever hashes were derived so StoreEncoded never
// recomputes them. Lookups count toward the auto-disable policy like
// every other cache access. Safe on a nil receiver (always a miss).
func (c *Cache) LookupEncoded(kind Kind, e *Enc) (any, EncToken, bool) {
	tok := EncToken{kind: kind}
	if c == nil {
		return nil, tok, false
	}
	tok.pre = encPre(kind, e.buf)
	if !c.mayContain(tok.pre) {
		c.countMiss()
		return nil, tok, false
	}
	tok.key = encKey(kind, e)
	tok.hashed = true
	v, ok := c.Get(tok.key)
	return v, tok, ok
}

// StoreEncoded stores v under the configuration probed by the matching
// LookupEncoded call. Stored values must be treated as immutable by
// every future reader: callers store (and return) deep copies of
// result structures. Safe on a nil receiver (no-op).
func (c *Cache) StoreEncoded(tok EncToken, e *Enc, v any) {
	if c == nil {
		return
	}
	if tok.pre == 0 {
		tok.pre = encPre(tok.kind, e.buf)
	}
	if !tok.hashed {
		tok.key = encKey(tok.kind, e)
	}
	c.putPre(tok.key, tok.pre, v)
}
