package memo

import (
	"math/rand"
	"sync"
	"testing"

	"profirt/internal/core"
)

// TestEncodedLookupRoundTrip: StoreEncoded must make the identical
// encoding hit, distinct encodings and distinct kinds must miss.
func TestEncodedLookupRoundTrip(t *testing.T) {
	c := New(0)
	enc := func(words ...uint64) *Enc {
		e := GetEnc()
		for _, w := range words {
			e.Word(w)
		}
		return e
	}

	e1 := enc(1, 2, 3)
	if v, _, ok := c.LookupEncoded(KindHolistic, e1); ok {
		t.Fatalf("empty cache hit: %v", v)
	}
	_, tok, _ := c.LookupEncoded(KindHolistic, e1)
	c.StoreEncoded(tok, e1, "hol")
	if v, _, ok := c.LookupEncoded(KindHolistic, e1); !ok || v != "hol" {
		t.Fatalf("stored encoding missed: %v %v", v, ok)
	}
	// Same bytes, different kind: must not collide.
	if v, _, ok := c.LookupEncoded(KindTopology, e1); ok {
		t.Fatalf("kind collision: %v", v)
	}
	// Different bytes: miss.
	e2 := enc(1, 2, 4)
	if _, _, ok := c.LookupEncoded(KindHolistic, e2); ok {
		t.Fatal("distinct encoding hit")
	}
	PutEnc(e1)
	PutEnc(e2)

	// A token from a filter-short-circuited lookup (no SHA computed)
	// must still store correctly.
	e3 := enc(9, 9)
	_, tok3, ok := c.LookupEncoded(KindTopology, e3)
	if ok {
		t.Fatal("fresh encoding hit")
	}
	c.StoreEncoded(tok3, e3, 42)
	if v, _, ok := c.LookupEncoded(KindTopology, e3); !ok || v != 42 {
		t.Fatalf("store after guaranteed miss failed: %v %v", v, ok)
	}
	PutEnc(e3)
}

// TestPreFilterGuaranteedMissCountsLookup: lookups the pre-filter
// resolves without hashing must still advance the miss counter, so the
// auto-disable policy sees the full lookup stream.
func TestPreFilterGuaranteedMissCountsLookup(t *testing.T) {
	c := New(0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		DMResponseTimes(c, autoStreams(rng, 5), 2_500, core.DMOptions{})
	}
	st := c.Stats()
	if st.Misses != 10 || st.Hits != 0 {
		t.Fatalf("10 all-distinct lookups: stats %+v", st)
	}
	if st.Entries != 10 {
		t.Fatalf("every miss must still populate the table: %+v", st)
	}
}

// TestPreFilterSurvivesEviction: with a tiny cache the filter counts
// must track evictions, so re-queries of evicted sets recompute (and
// re-insert) instead of spuriously "hitting" stale pre-hashes; results
// stay identical throughout.
func TestPreFilterSurvivesEviction(t *testing.T) {
	c := New(1) // one entry per shard: heavy eviction traffic
	rng := rand.New(rand.NewSource(5))
	sets := make([][]core.Stream, 300)
	for i := range sets {
		sets[i] = autoStreams(rng, 4)
	}
	for _, s := range sets {
		DMResponseTimes(c, s, 2_500, core.DMOptions{})
	}
	for i, s := range sets {
		got := DMResponseTimes(c, s, 2_500, core.DMOptions{})
		want := core.DMResponseTimes(s, 2_500, core.DMOptions{})
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("set %d diverged after eviction churn", i)
			}
		}
	}
	// The filter must not have leaked counts past the entry bound:
	// every resident entry holds one registration, so the total count
	// across filter shards is bounded by the entry count.
	total := int32(0)
	for i := range c.pre {
		ps := &c.pre[i]
		ps.mu.RLock()
		for _, n := range ps.m {
			total += n
		}
		ps.mu.RUnlock()
	}
	if got := int32(c.Len()); total != got {
		t.Fatalf("filter registrations (%d) out of sync with resident entries (%d)", total, got)
	}
}

// TestArmAutoDisableWindowScoped: arming opens a fresh hit-rate
// window — a latch tripped by a cold all-distinct sweep clears on the
// next submission's arm, so a shared long-lived cache keeps serving
// later submitters.
func TestArmAutoDisableWindowScoped(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := New(0)
	c.ArmAutoDisable(10, 0.5)
	for i := 0; i < 50; i++ {
		DMResponseTimes(c, autoStreams(rng, 4), 2_500, core.DMOptions{})
	}
	if !c.Disabled() {
		t.Fatal("armed cache did not trip on an all-distinct workload")
	}
	c.ArmAutoDisable(10, 0.5)
	if c.Disabled() {
		t.Fatal("re-arming did not clear the tripped latch")
	}
	// SetAutoDisable re-arms the same way.
	c.SetAutoDisable(10, 0.5)
	if c.Disabled() {
		t.Fatal("SetAutoDisable did not clear the latch")
	}

	var nilCache *Cache
	nilCache.ArmAutoDisable(1, 1) // must not panic
}

// TestArmAutoDisableConcurrent arms from many goroutines while
// lookups are in flight; under -race this is the data-race gate for
// the per-submission arming chokepoint.
func TestArmAutoDisableConcurrent(t *testing.T) {
	c := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			c.ArmAutoDisable(20, 0.1)
			for i := 0; i < 100; i++ {
				DMResponseTimes(c, autoStreams(rng, 4), 2_500, core.DMOptions{})
			}
		}(g)
	}
	wg.Wait()
	if !c.Disabled() {
		t.Fatal("concurrently armed cache never tripped on all-distinct lookups")
	}
}
