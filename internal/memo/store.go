package memo

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"profirt/internal/obs"
)

// Store is the durable sibling of Cache: a disk-backed, append-only,
// content-addressed result store. Where Cache memoizes within one
// process, Store persists results across processes, so a killed sweep
// campaign resumes from its completed jobs and a repeated campaign
// against the same store is warm-started.
//
// Layout: one JSONL file. The first line is a meta record binding the
// store to its producer (the campaign engine stores the manifest hash
// there, so a store can never be resumed under a different manifest);
// every following line is one result record
//
//	{"k":"<hex key>","v":<payload JSON>,"h":"<hex sha256(key||payload)>"}
//
// carrying its own integrity hash. Records are appended with a single
// unbuffered write, so a killed process can tear at most the final
// line; Open verifies every record's hash and silently drops torn or
// corrupted lines (counted in Stats().Dropped) — a dropped record only
// costs a recomputation, never correctness, exactly like a Cache
// eviction.
//
// A Store is safe for concurrent use. A nil *Store is a valid
// "persistence disabled" value: Get misses and Put is a no-op,
// mirroring the nil *Cache contract.
type Store struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	head      []byte // the meta line (without newline) this open wrote/verified
	m         map[Key][]byte
	dropped   int
	appends   int64
	hits      int64
	misses    int64
	compacted int64
	// lat, when set (SetLatency), times every Get probe including its
	// lock wait; see Cache.SetLatency for the contract.
	lat atomic.Pointer[obs.StoreMetrics]
}

// storeVersion is bumped whenever the record encoding changes,
// invalidating every existing store file.
const storeVersion = 1

// storeMeta is the first line of a store file.
type storeMeta struct {
	Store   string `json:"store"`
	Version int    `json:"version"`
	Meta    string `json:"meta"` // hex of the caller's binding bytes
}

// storeRecord is one persisted result.
type storeRecord struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
	H string          `json:"h"`
}

// recordHash is the per-line integrity hash: SHA-256 over the raw key
// bytes followed by the payload bytes.
func recordHash(k Key, v []byte) string {
	h := sha256.New()
	h.Write(k[:])
	h.Write(v)
	return hex.EncodeToString(h.Sum(nil))
}

// OpenStore opens (or creates) the JSONL store at path and loads every
// intact record into memory. meta binds the store to its producer: a
// new store persists it, an existing store must carry the same bytes or
// OpenStore fails — resuming a campaign under an edited manifest is an
// error, not a silent mix of incompatible results.
func OpenStore(path string, meta []byte) (*Store, error) {
	// O_APPEND makes every record write an atomic end-of-file append,
	// so even two processes sharing one store file interleave whole
	// lines instead of clobbering each other at stale offsets.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	head, err := json.Marshal(storeMeta{Store: "profirt-result-store", Version: storeVersion, Meta: hex.EncodeToString(meta)})
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &Store{f: f, path: path, head: head, m: make(map[Key][]byte)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var m storeMeta
			if err := json.Unmarshal(line, &m); err != nil || m.Store != "profirt-result-store" {
				// A kill can tear the meta line itself (it is the final
				// write of a brand-new store). A torn head is a strict
				// prefix of the head this open would write; anything
				// else is genuinely not a result store. Nothing can
				// follow an unterminated head, so reset and rewrite.
				if len(line) < len(head) && bytes.HasPrefix(head, line) {
					if err := f.Truncate(0); err != nil {
						f.Close()
						return nil, err
					}
					s.dropped++
					first = true
					break
				}
				f.Close()
				return nil, fmt.Errorf("memo: %s is not a result store", path)
			}
			if m.Version != storeVersion {
				f.Close()
				return nil, fmt.Errorf("memo: store %s has version %d, this build writes %d", path, m.Version, storeVersion)
			}
			if m.Meta != hex.EncodeToString(meta) {
				f.Close()
				return nil, fmt.Errorf("memo: store %s was created for different inputs (meta mismatch); use a fresh store directory", path)
			}
			continue
		}
		var rec storeRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			s.dropped++
			continue
		}
		kb, err := hex.DecodeString(rec.K)
		if err != nil || len(kb) != len(Key{}) {
			s.dropped++
			continue
		}
		var k Key
		copy(k[:], kb)
		if recordHash(k, rec.V) != rec.H {
			s.dropped++
			continue
		}
		s.m[k] = rec.V
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("memo: reading store %s: %w", path, err)
	}
	// A kill mid-write leaves the file without a trailing newline;
	// terminate the torn line so the next append starts a fresh record
	// instead of being glued to (and lost with) the partial one.
	if info, err := f.Stat(); err == nil && info.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], info.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	if first {
		// Brand-new, empty, or head-torn-and-reset store: persist the
		// meta line.
		if _, err := f.Write(append(head, '\n')); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// Get returns the payload stored under k. The returned bytes are shared
// with the store and must be treated as immutable. Safe on a nil
// receiver (always a miss).
func (s *Store) Get(k Key) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	lm := s.lat.Load()
	var t0 time.Time
	if lm != nil {
		// The clock is read before the lock on purpose: the histogram
		// measures observed probe latency, contention included.
		t0 = lm.Clock.Now()
	}
	s.mu.Lock()
	v, ok := s.m[k]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	if lm != nil {
		lm.Lookup.Observe(lm.Clock.Now().Sub(t0))
	}
	return v, ok
}

// SetLatency attaches lookup-latency instrumentation: every
// subsequent Get records its duration into m (nil detaches).
// Observational only — timing never changes what Get returns.
func (s *Store) SetLatency(m *obs.StoreMetrics) {
	if s == nil {
		return
	}
	s.lat.Store(m)
}

// Put persists v under k: the record is appended to the file (one
// unbuffered write, so a kill tears at most this line) and becomes
// visible to Get immediately. Re-putting a resident key is a no-op —
// keys are content addresses, so any writer stores an equal value.
// Safe on a nil receiver (no-op).
func (s *Store) Put(k Key, v []byte) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, resident := s.m[k]; resident {
		return nil
	}
	line, err := json.Marshal(storeRecord{K: hex.EncodeToString(k[:]), V: json.RawMessage(v), H: recordHash(k, v)})
	if err != nil {
		return err
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return err
	}
	stored := make([]byte, len(v))
	copy(stored, v)
	s.m[k] = stored
	s.appends++
	return nil
}

// Len returns the number of resident records. Safe on a nil receiver.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Compact rewrites the store file to exactly its live content: the
// meta line binding it to its producer followed by one record per
// resident key (in sorted key order, so equal stores compact to equal
// bytes), dropping the dead weight an append-only file accumulates —
// torn or corrupted lines from kills mid-write, and duplicate records
// interleaved by concurrent writers. The rewrite goes to a temp file
// in the same directory, is fsynced, and atomically renamed over the
// original; a crash mid-compaction therefore leaves either the old or
// the new file, never a mix. Reopening (or continuing to use) a
// compacted store yields byte-identical results to the uncompacted
// one — compaction reclaims bytes, never state. Safe on a nil receiver
// (no-op).
//
// Compact requires exclusive access to the store file: another live
// process holding the same path open keeps its handle on the unlinked
// pre-compaction inode after the rename, so everything it appends
// afterwards is silently lost on its close (costing those jobs a
// re-execution on the next resume, never correctness). Concurrent
// appenders are an OpenStore-level capability only; compact from a
// single owner, as cmd/campaign's compact subcommand does.
func (s *Store) Compact() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]Key, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i][:], keys[j][:]) < 0 })

	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(tmp)
	w.Write(append(s.head, '\n'))
	for _, k := range keys {
		line, err := json.Marshal(storeRecord{K: hex.EncodeToString(k[:]), V: json.RawMessage(s.m[k]), H: recordHash(k, s.m[k])})
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
		w.Write(append(line, '\n'))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	// Swap the append handle onto the new file; the old handle points
	// at the unlinked original and is closed either way.
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted file is in place but unappendable; keep the old
		// handle so the store stays usable (its appends land in the
		// unlinked file and are lost on close — the caller sees the
		// error and can reopen).
		return err
	}
	s.f.Close()
	s.f = f
	s.dropped = 0
	s.compacted++
	return nil
}

// Close syncs and closes the backing file. Safe on a nil receiver.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// StoreStats is a point-in-time snapshot of a Store's counters.
type StoreStats struct {
	// Entries is the resident record count.
	Entries int
	// Hits and Misses count Get outcomes since open.
	Hits, Misses int64
	// Appends counts records written since open.
	Appends int64
	// Dropped counts torn or corrupted lines skipped at open (reset to
	// zero by Compact, which removes them from the file).
	Dropped int
	// Compactions counts Compact calls since open.
	Compactions int64
}

// Stats snapshots the counters. Safe on a nil receiver (all zero).
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Entries:     len(s.m),
		Hits:        s.hits,
		Misses:      s.misses,
		Appends:     s.appends,
		Dropped:     s.dropped,
		Compactions: s.compacted,
	}
}
