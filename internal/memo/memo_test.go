package memo

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"profirt/internal/core"
)

func ts(ch, d, t, j Ticks) core.Stream { return core.Stream{Ch: ch, D: d, T: t, J: j} }

// keyOf is the test shorthand for the DM key of a stream set.
func keyOf(kind Kind, tc Ticks, streams []core.Stream) Key {
	k, _, _ := streamSetKey(kind, tc, []uint64{0, 0}, streams, kind == KindDM)
	return k
}

// TestKeyPermutationInvariant is half of the collision sanity check:
// the canonical hash must be order-insensitive — permuting the stream
// order yields the same address (distinct deadlines, so no DM
// fallback).
func TestKeyPermutationInvariant(t *testing.T) {
	streams := []core.Stream{
		ts(300, 20_000, 40_000, 0),
		ts(450, 60_000, 120_000, 500),
		ts(500, 150_000, 300_000, 0),
		ts(500, 150_000, 300_000, 0), // exact duplicate
	}
	rng := rand.New(rand.NewSource(1))
	want := keyOf(KindDM, 2_500, streams)
	wantEDF := keyOf(KindEDF, 2_500, streams)
	for i := 0; i < 50; i++ {
		p := append([]core.Stream(nil), streams...)
		rng.Shuffle(len(p), func(a, b int) { p[a], p[b] = p[b], p[a] })
		if got := keyOf(KindDM, 2_500, p); got != want {
			t.Fatalf("permutation %d changed the DM key", i)
		}
		if got := keyOf(KindEDF, 2_500, p); got != wantEDF {
			t.Fatalf("permutation %d changed the EDF key", i)
		}
	}
	// Names never enter the address.
	named := append([]core.Stream(nil), streams...)
	for i := range named {
		named[i].Name = "renamed"
	}
	if keyOf(KindDM, 2_500, named) != want {
		t.Error("renaming streams changed the key")
	}
}

// TestKeyCollisionSanity is the other half: near-identical inputs —
// one attribute nudged by one tick, one stream duplicated or dropped,
// a different kind, T_cycle or option word — must address distinct
// entries.
func TestKeyCollisionSanity(t *testing.T) {
	base := []core.Stream{
		ts(300, 20_000, 40_000, 0),
		ts(450, 60_000, 120_000, 500),
		ts(500, 150_000, 300_000, 0),
	}
	seen := map[Key]string{}
	add := func(label string, k Key) {
		t.Helper()
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision: %q and %q share an address", label, prev)
		}
		seen[k] = label
	}
	add("base", keyOf(KindDM, 2_500, base))
	add("base-edf", keyOf(KindEDF, 2_500, base))
	add("base-tc", keyOf(KindDM, 2_501, base))
	k, _, _ := streamSetKey(KindDM, 2_500, []uint64{1, 0}, base, true)
	add("base-opts", k)
	for i := range base {
		for f := 0; f < 4; f++ {
			mod := append([]core.Stream(nil), base...)
			switch f {
			case 0:
				mod[i].Ch++
			case 1:
				mod[i].D++
			case 2:
				mod[i].T++
			case 3:
				mod[i].J++
			}
			add("nudged", keyOf(KindDM, 2_500, mod))
		}
	}
	add("duplicated", keyOf(KindDM, 2_500, append(append([]core.Stream(nil), base...), base[0])))
	add("dropped", keyOf(KindDM, 2_500, base[:2]))
}

// TestKeyDMDeadlineTieFallback pins the order-sensitivity rule: when
// two distinct streams tie on D, the DM analysis breaks the tie by
// input position, so the key must encode the order (permutations get
// distinct addresses) while EDF — order-insensitive even under ties —
// keeps a shared one. Ties between identical tuples stay order-free
// for both.
func TestKeyDMDeadlineTieFallback(t *testing.T) {
	a := ts(300, 50_000, 80_000, 0)
	b := ts(400, 50_000, 120_000, 0) // same D, different tuple
	if keyOf(KindDM, 2_500, []core.Stream{a, b}) == keyOf(KindDM, 2_500, []core.Stream{b, a}) {
		t.Error("DM key ignored the order of distinct deadline-tied streams")
	}
	if keyOf(KindEDF, 2_500, []core.Stream{a, b}) != keyOf(KindEDF, 2_500, []core.Stream{b, a}) {
		t.Error("EDF key should stay order-insensitive under deadline ties")
	}
	dup := ts(300, 50_000, 80_000, 0)
	if keyOf(KindDM, 2_500, []core.Stream{a, dup, b}) != keyOf(KindDM, 2_500, []core.Stream{dup, a, b}) {
		t.Error("identical duplicates must not force the order fallback")
	}
}

// randomStreams draws a small stream set; deadline ties (including
// cross-tuple ties that trigger the DM fallback) are made likely on
// purpose by drawing D from a coarse grid.
func randomStreams(rng *rand.Rand) []core.Stream {
	n := 1 + rng.Intn(5)
	out := make([]core.Stream, n)
	for i := range out {
		out[i] = core.Stream{
			Name: "s",
			Ch:   Ticks(200 + rng.Intn(400)),
			D:    Ticks((1 + rng.Intn(8)) * 10_000),
			T:    Ticks(40_000 + rng.Intn(4)*20_000),
			J:    Ticks(rng.Intn(3) * 1_000),
		}
	}
	return out
}

// TestCachedMatchesUncached is the wrapper-level equivalence property:
// across random stream sets (duplicates, deadline ties and divergent
// bounds included), the memoized DM/EDF analyses must return exactly
// the uncached results — on the miss that populates the cache and on
// every subsequent hit, including hits reached through a permuted
// ordering of the same set.
func TestCachedMatchesUncached(t *testing.T) {
	c := New(0)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		streams := randomStreams(rng)
		tc := Ticks(1_500 + rng.Intn(3)*500)
		dmOpts := core.DMOptions{Literal: rng.Intn(2) == 0, BlockingFromLowPriority: rng.Intn(2) == 0}
		edfOpts := core.EDFOptions{BlockingFromLowPriority: rng.Intn(2) == 0}

		wantDM := core.DMResponseTimes(streams, tc, dmOpts)
		wantEDF := core.EDFResponseTimes(streams, tc, edfOpts)
		for pass := 0; pass < 3; pass++ {
			if got := DMResponseTimes(c, streams, tc, dmOpts); !reflect.DeepEqual(got, wantDM) {
				t.Fatalf("trial %d pass %d: cached DM %v != uncached %v (streams %+v tc %d opts %+v)",
					trial, pass, got, wantDM, streams, tc, dmOpts)
			}
			if got := EDFResponseTimes(c, streams, tc, edfOpts); !reflect.DeepEqual(got, wantEDF) {
				t.Fatalf("trial %d pass %d: cached EDF %v != uncached %v (streams %+v tc %d)",
					trial, pass, got, wantEDF, streams, tc)
			}
			// Permute and check the re-mapped results against a direct
			// uncached evaluation of the permuted order.
			perm := rng.Perm(len(streams))
			shuffled := make([]core.Stream, len(streams))
			for i, p := range perm {
				shuffled[i] = streams[p]
			}
			if got, want := DMResponseTimes(c, shuffled, tc, dmOpts), core.DMResponseTimes(shuffled, tc, dmOpts); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: permuted cached DM %v != uncached %v (streams %+v tc %d opts %+v)",
					trial, got, want, shuffled, tc, dmOpts)
			}
			if got, want := EDFResponseTimes(c, shuffled, tc, edfOpts), core.EDFResponseTimes(shuffled, tc, edfOpts); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: permuted cached EDF %v != uncached %v", trial, got, want)
			}
		}
	}
	if s := c.Stats(); s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("degenerate exercise: stats %+v", s)
	}
}

// TestNetworkWrappersMatchCore checks the verdict-level mirrors.
func TestNetworkWrappersMatchCore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New(0)
	for trial := 0; trial < 60; trial++ {
		n := core.Network{TTR: Ticks(1_000 + rng.Intn(3_000))}
		masters := 1 + rng.Intn(3)
		for m := 0; m < masters; m++ {
			cm := core.Master{Name: "m", High: randomStreams(rng)}
			if rng.Intn(2) == 0 {
				cm.LongestLow = Ticks(200 + rng.Intn(400))
			}
			n.Masters = append(n.Masters, cm)
		}
		for pass := 0; pass < 2; pass++ {
			gotOK, got := DMSchedulable(c, n, core.DMOptions{})
			wantOK, want := core.DMSchedulable(n, core.DMOptions{})
			if gotOK != wantOK || !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: cached DMSchedulable diverged", trial)
			}
			gotOK, got = EDFSchedulableNet(c, n, core.EDFOptions{})
			wantOK, want = core.EDFSchedulableNet(n, core.EDFOptions{})
			if gotOK != wantOK || !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: cached EDFSchedulableNet diverged", trial)
			}
		}
	}
}

// TestNilCache pins the "caching disabled" contract.
func TestNilCache(t *testing.T) {
	var c *Cache
	streams := []core.Stream{ts(300, 20_000, 40_000, 0)}
	want := core.DMResponseTimes(streams, 2_500, core.DMOptions{})
	if got := DMResponseTimes(c, streams, 2_500, core.DMOptions{}); !reflect.DeepEqual(got, want) {
		t.Fatal("nil cache must delegate")
	}
	if _, ok := c.Get(Key{}); ok {
		t.Error("nil Get must miss")
	}
	c.Put(Key{}, 1) // must not panic
	c.Reset()
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil Stats = %+v", s)
	}
}

// TestEviction checks the memory bound: entries never exceed the cap
// and displaced keys recompute correctly.
func TestEviction(t *testing.T) {
	c := New(shardCount) // one entry per shard
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		streams := randomStreams(rng)
		DMResponseTimes(c, streams, 2_500, core.DMOptions{})
		if got := c.Len(); got > shardCount {
			t.Fatalf("cache grew to %d entries past the bound %d", got, shardCount)
		}
	}
	if c.Stats().Evictions == 0 {
		t.Error("expected evictions at this insert volume")
	}
	c.Reset()
	if c.Len() != 0 || c.Stats().Hits != 0 {
		t.Error("Reset left state behind")
	}
}

// TestConcurrentSharedCache hammers one cache from many goroutines over
// a small key population (maximal contention) and checks every result
// against the uncached analysis. Run under -race this is the data-race
// gate for the sharded table.
func TestConcurrentSharedCache(t *testing.T) {
	c := New(128)
	seedRng := rand.New(rand.NewSource(11))
	population := make([][]core.Stream, 16)
	for i := range population {
		population[i] = randomStreams(seedRng)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				streams := population[rng.Intn(len(population))]
				got := DMResponseTimes(c, streams, 2_500, core.DMOptions{})
				want := core.DMResponseTimes(streams, 2_500, core.DMOptions{})
				if !reflect.DeepEqual(got, want) {
					select {
					case errs <- "concurrent cached result diverged":
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}
