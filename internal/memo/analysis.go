package memo

import (
	"profirt/internal/core"
)

// This file holds the cache-aware mirrors of the core message
// analyses. Every function takes the cache first and accepts nil for
// "caching disabled", in which case it is a plain delegation to core —
// the higher layers (api.AnalyzeBatch, topology.Analyze,
// holistic.Analyze, the experiment drivers) call these mirrors
// unconditionally and let the cache pointer decide. A cache whose
// hit-rate auto-disable latch has tripped (Cache.SetAutoDisable) is
// bypassed the same way — before any key is hashed — so an
// all-distinct batch degrades to the uncached cost.
//
// The FCFS bound (Eq. 11) is intentionally never cached: it is the
// closed form nh·T_cycle, cheaper than a hash.

// dmOptsWords flattens DMOptions into the key encoding.
func dmOptsWords(o core.DMOptions) []uint64 {
	var flags uint64
	if o.Literal {
		flags |= 1
	}
	if o.BlockingFromLowPriority {
		flags |= 2
	}
	return []uint64{flags, uint64(o.Horizon)}
}

// edfOptsWords flattens EDFOptions into the key encoding.
func edfOptsWords(o core.EDFOptions) []uint64 {
	var flags uint64
	if o.BlockingFromLowPriority {
		flags |= 1
	}
	return []uint64{flags, uint64(o.Horizon)}
}

// unpermute maps canonical-order results back to the caller's stream
// order: out[i] = canonical[perm[i]]. It always allocates, so cached
// slices are never aliased by callers.
func unpermute(canonical []Ticks, perm []int) []Ticks {
	out := make([]Ticks, len(perm))
	for i, p := range perm {
		out[i] = canonical[p]
	}
	return out
}

// DMResponseTimes is core.DMResponseTimes memoized on c. Results are
// byte-identical to the uncached call for every input (see
// streamSetKey for why deadline ties are safe).
func DMResponseTimes(c *Cache, streams []core.Stream, tcycle Ticks, opts core.DMOptions) []Ticks {
	if c.Disabled() || len(streams) == 0 {
		return core.DMResponseTimes(streams, tcycle, opts)
	}
	key, canon, perm := streamSetKey(KindDM, tcycle, dmOptsWords(opts), streams, true)
	if v, ok := c.Get(key); ok {
		return unpermute(v.([]Ticks), perm)
	}
	res := core.DMResponseTimes(canon, tcycle, opts)
	c.Put(key, res)
	return unpermute(res, perm)
}

// EDFResponseTimes is core.EDFResponseTimes memoized on c.
func EDFResponseTimes(c *Cache, streams []core.Stream, tcycle Ticks, opts core.EDFOptions) []Ticks {
	if c.Disabled() || len(streams) == 0 {
		return core.EDFResponseTimes(streams, tcycle, opts)
	}
	key, canon, perm := streamSetKey(KindEDF, tcycle, edfOptsWords(opts), streams, false)
	if v, ok := c.Get(key); ok {
		return unpermute(v.([]Ticks), perm)
	}
	res := core.EDFResponseTimes(canon, tcycle, opts)
	c.Put(key, res)
	return unpermute(res, perm)
}

// DMSchedulable mirrors core.DMSchedulable with the per-master bounds
// memoized on c. Verdicts (which carry master/stream names) are always
// assembled fresh via core.SchedulableWith, so the cache stays
// name-blind and two networks differing only in labels share entries.
func DMSchedulable(c *Cache, n core.Network, opts core.DMOptions) (bool, []core.StreamVerdict) {
	return core.SchedulableWith(n, func(m core.Master, tc Ticks) []Ticks {
		o := opts
		if m.LongestLow > 0 {
			o.BlockingFromLowPriority = true
		}
		return DMResponseTimes(c, m.High, tc, o)
	})
}

// EDFSchedulableNet mirrors core.EDFSchedulableNet with the per-master
// bounds memoized on c.
func EDFSchedulableNet(c *Cache, n core.Network, opts core.EDFOptions) (bool, []core.StreamVerdict) {
	return core.SchedulableWith(n, func(m core.Master, tc Ticks) []Ticks {
		o := opts
		if m.LongestLow > 0 {
			o.BlockingFromLowPriority = true
		}
		return EDFResponseTimes(c, m.High, tc, o)
	})
}
