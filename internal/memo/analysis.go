package memo

import (
	"context"

	"profirt/internal/core"
	"profirt/internal/obs"
)

// This file holds the cache-aware mirrors of the core message
// analyses. Every function takes the cache first and accepts nil for
// "caching disabled", in which case it is a plain delegation to core —
// the higher layers (api.AnalyzeBatch, topology.Analyze,
// holistic.Analyze, the experiment drivers) call these mirrors
// unconditionally and let the cache pointer decide. A cache whose
// hit-rate auto-disable latch has tripped (Cache.SetAutoDisable) is
// bypassed the same way — before any key is hashed — so an
// all-distinct batch degrades to the uncached cost.
//
// Lookup order on the hot path: the cheap commutative FNV pre-hash is
// computed first and checked against the counting pre-filter. A
// guaranteed miss runs the analysis directly on the caller's stream
// order (trivially byte-identical to the uncached call) and only then
// canonicalizes once, to store the entry; SHA-256 and the sort run on
// the lookup side only when the filter reports a possible hit.
//
// The FCFS bound (Eq. 11) is intentionally never cached: it is the
// closed form nh·T_cycle, cheaper than a hash.

// dmOptsWords flattens DMOptions into the key encoding.
func dmOptsWords(o core.DMOptions) [2]uint64 {
	var flags uint64
	if o.Literal {
		flags |= 1
	}
	if o.BlockingFromLowPriority {
		flags |= 2
	}
	return [2]uint64{flags, uint64(o.Horizon)}
}

// edfOptsWords flattens EDFOptions into the key encoding.
func edfOptsWords(o core.EDFOptions) [2]uint64 {
	var flags uint64
	if o.BlockingFromLowPriority {
		flags |= 1
	}
	return [2]uint64{flags, uint64(o.Horizon)}
}

// unpermute maps canonical-order results back to the caller's stream
// order: out[i] = canonical[perm[i]]. It always allocates, so cached
// slices are never aliased by callers.
func unpermute(canonical []Ticks, perm []int) []Ticks {
	out := make([]Ticks, len(perm))
	for i, p := range perm {
		out[i] = canonical[p]
	}
	return out
}

// cachedResponseTimes is the shared lookup/store flow behind the DM
// and EDF wrappers. analyze must be the pure per-order analysis; it is
// invoked on the caller's order for guaranteed misses and on the
// canonical order otherwise (sound either way by the permutation-
// equivariance argument in key.go). When ctx carries an obs.Tracer
// the whole memoized call records a memo.lookup span (arg = stream
// count) — cheap hits and recompute-on-miss then separate visibly in
// trace exports. ctx is observational only: it never cancels or
// otherwise influences the analysis, so results stay byte-identical
// with and without tracing.
func cachedResponseTimes(ctx context.Context, c *Cache, kind Kind, streams []core.Stream, tcycle Ticks, opts []uint64, orderSensitive bool, analyze func([]core.Stream) []Ticks) []Ticks {
	_, sp := obs.StartSpanArg(ctx, "memo.lookup", int64(len(streams)))
	defer sp.End()
	pre := streamSetPre(kind, tcycle, opts, streams)
	if !c.mayContain(pre) {
		// Guaranteed miss: no resident entry can match, so skip the
		// sort and SHA-256 on the lookup side and return the direct
		// result. The canonical permutation is still built once, to
		// store the entry where permuted callers will find it.
		c.countMiss()
		res := analyze(streams)
		sc := keyScratchPool.Get().(*keyScratch)
		key := sc.build(kind, tcycle, opts, streams, orderSensitive)
		stored := make([]Ticks, len(res))
		for i, p := range sc.perm {
			stored[p] = res[i]
		}
		keyScratchPool.Put(sc)
		c.putPre(key, pre, stored)
		return res
	}
	sc := keyScratchPool.Get().(*keyScratch)
	key := sc.build(kind, tcycle, opts, streams, orderSensitive)
	if v, ok := c.Get(key); ok {
		out := unpermute(v.([]Ticks), sc.perm)
		keyScratchPool.Put(sc)
		return out
	}
	res := analyze(sc.canon)
	out := unpermute(res, sc.perm)
	keyScratchPool.Put(sc)
	c.putPre(key, pre, res)
	return out
}

// DMResponseTimes is core.DMResponseTimes memoized on c. Results are
// byte-identical to the uncached call for every input (see
// keyScratch.build for why deadline ties are safe).
func DMResponseTimes(c *Cache, streams []core.Stream, tcycle Ticks, opts core.DMOptions) []Ticks {
	return DMResponseTimesCtx(nil, c, streams, tcycle, opts)
}

// DMResponseTimesCtx is DMResponseTimes with observability threaded
// through: a tracer carried by ctx records one memo.lookup span per
// memoized call. Results are identical to DMResponseTimes for every
// ctx, including nil.
func DMResponseTimesCtx(ctx context.Context, c *Cache, streams []core.Stream, tcycle Ticks, opts core.DMOptions) []Ticks {
	if c.Disabled() || len(streams) == 0 {
		return core.DMResponseTimes(streams, tcycle, opts)
	}
	w := dmOptsWords(opts)
	return cachedResponseTimes(ctx, c, KindDM, streams, tcycle, w[:], true,
		func(ss []core.Stream) []Ticks { return core.DMResponseTimes(ss, tcycle, opts) })
}

// EDFResponseTimes is core.EDFResponseTimes memoized on c.
func EDFResponseTimes(c *Cache, streams []core.Stream, tcycle Ticks, opts core.EDFOptions) []Ticks {
	return EDFResponseTimesCtx(nil, c, streams, tcycle, opts)
}

// EDFResponseTimesCtx is EDFResponseTimes with observability threaded
// through (see DMResponseTimesCtx).
func EDFResponseTimesCtx(ctx context.Context, c *Cache, streams []core.Stream, tcycle Ticks, opts core.EDFOptions) []Ticks {
	if c.Disabled() || len(streams) == 0 {
		return core.EDFResponseTimes(streams, tcycle, opts)
	}
	w := edfOptsWords(opts)
	return cachedResponseTimes(ctx, c, KindEDF, streams, tcycle, w[:], false,
		func(ss []core.Stream) []Ticks { return core.EDFResponseTimes(ss, tcycle, opts) })
}

// DMSchedulable mirrors core.DMSchedulable with the per-master bounds
// memoized on c. Verdicts (which carry master/stream names) are always
// assembled fresh via core.SchedulableWith, so the cache stays
// name-blind and two networks differing only in labels share entries.
func DMSchedulable(c *Cache, n core.Network, opts core.DMOptions) (bool, []core.StreamVerdict) {
	return DMSchedulableCtx(nil, c, n, opts)
}

// DMSchedulableCtx is DMSchedulable with observability threaded
// through (see DMResponseTimesCtx).
func DMSchedulableCtx(ctx context.Context, c *Cache, n core.Network, opts core.DMOptions) (bool, []core.StreamVerdict) {
	return core.SchedulableWith(n, func(m core.Master, tc Ticks) []Ticks {
		o := opts
		if m.LongestLow > 0 {
			o.BlockingFromLowPriority = true
		}
		return DMResponseTimesCtx(ctx, c, m.High, tc, o)
	})
}

// EDFSchedulableNet mirrors core.EDFSchedulableNet with the per-master
// bounds memoized on c.
func EDFSchedulableNet(c *Cache, n core.Network, opts core.EDFOptions) (bool, []core.StreamVerdict) {
	return EDFSchedulableNetCtx(nil, c, n, opts)
}

// EDFSchedulableNetCtx is EDFSchedulableNet with observability
// threaded through (see DMResponseTimesCtx).
func EDFSchedulableNetCtx(ctx context.Context, c *Cache, n core.Network, opts core.EDFOptions) (bool, []core.StreamVerdict) {
	return core.SchedulableWith(n, func(m core.Master, tc Ticks) []Ticks {
		o := opts
		if m.LongestLow > 0 {
			o.BlockingFromLowPriority = true
		}
		return EDFResponseTimesCtx(ctx, c, m.High, tc, o)
	})
}
