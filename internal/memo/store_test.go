package memo

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func storeKey(i int) Key {
	return Key(sha256.Sum256([]byte(fmt.Sprintf("key-%d", i))))
}

func TestStoreRoundTripAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	meta := []byte("manifest-hash")
	s, err := OpenStore(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(storeKey(i), []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate put is a no-op, not a second record.
	if err := s.Put(storeKey(3), []byte(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Appends != 10 || st.Entries != 10 {
		t.Fatalf("stats after puts = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("reopened store holds %d records, want 10", s2.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok := s2.Get(storeKey(i))
		if !ok || string(v) != fmt.Sprintf(`{"v":%d}`, i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, ok)
		}
	}
	if _, ok := s2.Get(storeKey(99)); ok {
		t.Fatal("Get returned a value for an absent key")
	}
	if st := s2.Stats(); st.Hits != 10 || st.Misses != 1 || st.Dropped != 0 {
		t.Fatalf("reopened stats = %+v", st)
	}
}

func TestStoreMetaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := OpenStore(path, []byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenStore(path, []byte("beta")); err == nil {
		t.Fatal("OpenStore accepted mismatched meta")
	}
	if s, err = OpenStore(path, []byte("alpha")); err != nil {
		t.Fatalf("OpenStore rejected matching meta: %v", err)
	}
	s.Close()
}

func TestStoreNotAStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	if err := os.WriteFile(path, []byte("not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path, nil); err == nil {
		t.Fatal("OpenStore accepted a non-store file")
	}
}

// TestStoreDropsCorruptLines covers the kill-mid-write contract: torn
// or tampered records are dropped at open (counted, never fatal) and
// every intact record survives.
func TestStoreDropsCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := OpenStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(storeKey(i), []byte(`"payload"`)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record, as a kill mid-write would.
	torn := raw[:len(raw)-9]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 4 {
		t.Fatalf("store holds %d records after tear, want 4", s2.Len())
	}
	if st := s2.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
	// A re-put of the torn record must append cleanly (the torn line is
	// newline-terminated at open so the new record starts fresh; the
	// dead line itself stays and is re-dropped on every open).
	if err := s2.Put(storeKey(4), []byte(`"payload"`)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 5 || s3.Stats().Dropped != 1 {
		t.Fatalf("healed store: len %d, stats %+v", s3.Len(), s3.Stats())
	}
}

func TestStoreIntegrityHashRejectsTampering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := OpenStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(storeKey(0), []byte(`12345`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := []byte(string(raw))
	for i := range tampered {
		if string(tampered[i:i+5]) == "12345" {
			tampered[i] = '9'
			break
		}
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(storeKey(0)); ok {
		t.Fatal("tampered record survived the integrity hash")
	}
	if s2.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", s2.Stats().Dropped)
	}
}

// TestStoreTornMetaSelfHeals: a kill can tear the meta line itself
// (the final write of a brand-new store). The torn head is a strict
// prefix of the head OpenStore would write, so it is recognised, the
// file reset and the meta rewritten — while a genuinely foreign file
// is still rejected.
func TestStoreTornMetaSelfHeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	meta := []byte("manifest-hash")
	s, err := OpenStore(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path, meta)
	if err != nil {
		t.Fatalf("torn meta line bricked the store: %v", err)
	}
	if st := s2.Stats(); st.Dropped != 1 || st.Entries != 0 {
		t.Fatalf("healed store stats = %+v", st)
	}
	if err := s2.Put(storeKey(1), []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenStore(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 1 || s3.Stats().Dropped != 0 {
		t.Fatalf("store after heal+reopen: len %d, stats %+v", s3.Len(), s3.Stats())
	}
	// A head torn inside the meta hex of a *different* manifest is no
	// prefix of ours and must not be adopted. (A tear inside the common
	// JSON prefix is adoptable under any meta — such a store is
	// provably empty.)
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path, []byte("other-manifest")); err == nil {
		t.Fatal("store with a foreign torn head was adopted")
	}
}

func TestStoreConcurrentPutGet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := OpenStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := storeKey(i % 20)
				if err := s.Put(k, []byte(fmt.Sprintf(`%d`, i%20))); err != nil {
					t.Error(err)
					return
				}
				if v, ok := s.Get(k); !ok || string(v) != fmt.Sprintf(`%d`, i%20) {
					t.Errorf("Get = %q, %v", v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 20 {
		t.Fatalf("Len = %d, want 20", s.Len())
	}
	s.Close()
}

func TestNilStoreIsDisabled(t *testing.T) {
	var s *Store
	if _, ok := s.Get(storeKey(0)); ok {
		t.Fatal("nil store returned a value")
	}
	if err := s.Put(storeKey(0), []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Stats() != (StoreStats{}) {
		t.Fatal("nil store has state")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
