// Package memo provides the content-addressed result cache behind the
// repeated fixed-point analyses. The DM/EDF message response-time
// analyses and the compositions built on them (holistic, topology,
// batch sweeps, the E9–E13 experiment grids) are pure functions of a
// small value: the multiset of stream attributes, the token-cycle
// bound, and the analysis options. Large parameter studies evaluate
// the same value over and over — across batch entries, across fixed-
// point iterations whose inputs did not change, and across experiment
// trials and policies. The cache maps a canonical hash of that value
// (see key.go) to the computed bounds, so identical fixed points are
// solved once.
//
// Contract: cached and uncached evaluation are byte-identical. The
// canonical key is order-insensitive exactly where the analysis is
// order-insensitive (see key.go for the deadline-tie caveat under DM),
// and every wrapper returns a fresh slice, so callers may mutate
// results freely. The cache is safe for concurrent use from any number
// of goroutines: it is sharded, each shard behind its own RWMutex.
//
// Memory is bounded: New(maxEntries) caps the total entry count
// (default 1<<16 entries; a cached value is one []Ticks of the stream
// count, so the default bound is a few MiB at typical set sizes). A
// full shard evicts an arbitrary resident entry per insert —
// random replacement, not LRU, because eviction only ever costs a
// recomputation, never correctness, and random replacement needs no
// per-hit bookkeeping on the hot read path.
package memo

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Key is the content address of one analysis invocation: a SHA-256
// digest of the canonical encoding built in key.go.
type Key [32]byte

// shardCount must be a power of two (shard selection masks the key's
// first bytes).
const shardCount = 64

// defaultMaxEntries bounds a cache built with New(0).
const defaultMaxEntries = 1 << 16

type shard struct {
	mu sync.RWMutex
	m  map[Key]any
}

// Cache is a bounded, sharded, content-addressed result table.
// The zero value is not usable; construct with New. A nil *Cache is a
// valid "caching disabled" value: Get misses and Put is a no-op, so
// every layer can thread an optional cache without branching.
type Cache struct {
	maxPerShard int
	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	// Hit-rate-aware auto-disable (SetAutoDisable): once lookups reach
	// autoMinLookups with hits/lookups below autoMinHitRate, disabled
	// latches and the analysis wrappers stop hashing keys entirely —
	// an all-distinct batch then pays zero cache overhead.
	autoMinLookups int64
	autoMinHitRate float64
	disabled       atomic.Bool
	shards         [shardCount]shard
}

// New builds a cache holding at most maxEntries results; maxEntries
// <= 0 selects the default bound (1<<16).
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = defaultMaxEntries
	}
	per := maxEntries / shardCount
	if per < 1 {
		per = 1
	}
	c := &Cache{maxPerShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]any)
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	return &c.shards[binary.LittleEndian.Uint64(k[:8])&(shardCount-1)]
}

// SetAutoDisable arms hit-rate-aware auto-disable: once the cache has
// served at least minLookups Gets with a hit rate strictly below
// minHitRate, it latches into a disabled state and the analysis
// wrappers bypass it entirely — no key hashing, no map probes. This
// turns the cache into a no-cost pass-through on all-distinct batches
// (where every lookup is a guaranteed miss) while leaving repeated
// batches untouched. Results are byte-identical either way: disabling
// only ever trades a hit for a recomputation.
//
// minLookups <= 0 or minHitRate <= 0 disarms the policy (the default:
// a cache built by New never self-disables). Reset re-arms a tripped
// cache. Not safe to call concurrently with Get; configure before
// sharing the cache.
func (c *Cache) SetAutoDisable(minLookups int64, minHitRate float64) {
	if c == nil {
		return
	}
	c.autoMinLookups = minLookups
	c.autoMinHitRate = minHitRate
	c.disabled.Store(false)
}

// Disabled reports whether hit-rate-aware auto-disable has tripped.
// The analysis wrappers consult it before hashing; callers may too.
// Safe on a nil receiver (a nil cache is "disabled" by definition).
func (c *Cache) Disabled() bool {
	return c == nil || c.disabled.Load()
}

// noteLookup updates the auto-disable latch after a Get.
func (c *Cache) noteLookup() {
	if c.autoMinLookups <= 0 || c.autoMinHitRate <= 0 || c.disabled.Load() {
		return
	}
	hits := c.hits.Load()
	total := hits + c.misses.Load()
	if total >= c.autoMinLookups && float64(hits) < c.autoMinHitRate*float64(total) {
		c.disabled.Store(true)
	}
}

// Get returns the value stored under k. Values must be treated as
// immutable by every reader (the analysis wrappers copy before
// returning). Safe on a nil receiver (always a miss).
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	c.noteLookup()
	return v, ok
}

// Put stores v under k, evicting an arbitrary resident entry when the
// shard is full. Concurrent Puts of the same key are benign: the key is
// content-addressed, so every writer stores an equal value. Safe on a
// nil receiver (no-op).
func (c *Cache) Put(k Key, v any) {
	if c == nil {
		return
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if _, resident := s.m[k]; !resident && len(s.m) >= c.maxPerShard {
		for victim := range s.m {
			delete(s.m, victim)
			c.evictions.Add(1)
			break
		}
	}
	s.m[k] = v
	s.mu.Unlock()
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Reset drops every entry and zeroes the counters.
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[Key]any)
		s.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.disabled.Store(false)
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Evictions counts entries displaced by the memory bound.
	Evictions int64
	// Entries is the resident entry count.
	Entries int
	// AutoDisabled reports whether the hit-rate policy (SetAutoDisable)
	// has latched the cache off. Hits/Misses stop advancing then: the
	// wrappers no longer consult the cache at all.
	AutoDisabled bool
}

// Stats snapshots the counters. Safe on a nil receiver (all zero).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Evictions:    c.evictions.Load(),
		Entries:      c.Len(),
		AutoDisabled: c.disabled.Load(),
	}
}
