// Package memo provides the content-addressed result cache behind the
// repeated fixed-point analyses. The DM/EDF message response-time
// analyses and the compositions built on them (holistic, topology,
// batch sweeps, the E9–E13 experiment grids) are pure functions of a
// small value: the multiset of stream attributes, the token-cycle
// bound, and the analysis options. Large parameter studies evaluate
// the same value over and over — across batch entries, across fixed-
// point iterations whose inputs did not change, and across experiment
// trials and policies. The cache maps a canonical hash of that value
// (see key.go) to the computed bounds, so identical fixed points are
// solved once.
//
// Contract: cached and uncached evaluation are byte-identical. The
// canonical key is order-insensitive exactly where the analysis is
// order-insensitive (see key.go for the deadline-tie caveat under DM),
// and every wrapper returns a fresh slice, so callers may mutate
// results freely. The cache is safe for concurrent use from any number
// of goroutines: it is sharded, each shard behind its own RWMutex.
//
// Lookups are cheap even when they miss: a sharded counting filter
// over 64-bit FNV-1a pre-hashes fronts the table, so a lookup whose
// pre-hash has no resident entry is declared a miss before the
// canonical ordering is built or the SHA-256 key is computed. Only
// possible hits (and the occasional filter false positive) pay for
// the cryptographic key.
//
// Memory is bounded: New(maxEntries) caps the total entry count
// (default 1<<16 entries; a cached value is one []Ticks of the stream
// count, so the default bound is a few MiB at typical set sizes). A
// full shard evicts an arbitrary resident entry per insert —
// random replacement, not LRU, because eviction only ever costs a
// recomputation, never correctness, and random replacement needs no
// per-hit bookkeeping on the hot read path. Each entry remembers its
// pre-hash so eviction keeps the filter counts exact.
package memo

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"profirt/internal/obs"
)

// Key is the content address of one analysis invocation: a SHA-256
// digest of the canonical encoding built in key.go.
type Key [32]byte

// shardCount must be a power of two (shard selection masks the key's
// first bytes).
const shardCount = 64

// defaultMaxEntries bounds a cache built with New(0).
const defaultMaxEntries = 1 << 16

// entry is one resident value plus the pre-hash it was registered
// under in the counting filter (0 when inserted without one, via the
// plain Put path; such entries are simply invisible to the filter and
// at worst cost a recomputation).
type entry struct {
	v   any
	pre uint64
}

type shard struct {
	mu sync.RWMutex
	m  map[Key]entry
}

// preShard is one shard of the counting pre-filter: how many resident
// entries were registered under each pre-hash.
type preShard struct {
	mu sync.RWMutex
	m  map[uint64]int32
}

// Cache is a bounded, sharded, content-addressed result table.
// The zero value is not usable; construct with New. A nil *Cache is a
// valid "caching disabled" value: Get misses and Put is a no-op, so
// every layer can thread an optional cache without branching.
type Cache struct {
	maxPerShard int
	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	// Hit-rate-aware auto-disable (SetAutoDisable / ArmAutoDisable):
	// once the lookups of the current arming window reach
	// autoMinLookups with hits/lookups below autoMinHitRate, disabled
	// latches and the analysis wrappers stop hashing keys entirely —
	// an all-distinct batch then pays zero cache overhead. The latch is
	// scoped to the window, not the cache's lifetime: re-arming (each
	// submission's chokepoint does) opens a fresh window and clears the
	// latch, so one cold sweep through a shared long-lived cache cannot
	// permanently kill caching for every later submitter. The
	// thresholds are atomics so arming is safe while lookups are in
	// flight; autoMinHitRate holds float64 bits.
	autoMinLookups atomic.Int64
	autoMinHitRate atomic.Uint64
	winHits        atomic.Int64
	winMisses      atomic.Int64
	disabled       atomic.Bool
	shards         [shardCount]shard
	pre            [shardCount]preShard
	// lat, when set (SetLatency), times a sample of Get probes. An
	// atomic pointer because an Engine may attach metrics to a cache
	// already shared with in-flight lookups; sampleTick spreads the
	// clock cost (two wall reads per timed probe) over
	// lookupSampleEvery lookups, keeping the hot path at one atomic
	// add on machines where reading the clock costs as much as the
	// probe itself.
	lat        atomic.Pointer[obs.CacheMetrics]
	sampleTick atomic.Uint64
}

// lookupSampleEvery is the Get-latency sampling cadence: one probe in
// every lookupSampleEvery is timed. Must be a power of two. Sampling
// is sound here because probe latency is independent of the sampling
// counter; the histogram is a uniform sample of the distribution.
const lookupSampleEvery = 16

// New builds a cache holding at most maxEntries results; maxEntries
// <= 0 selects the default bound (1<<16).
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = defaultMaxEntries
	}
	per := maxEntries / shardCount
	if per < 1 {
		per = 1
	}
	c := &Cache{maxPerShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]entry)
		c.pre[i].m = make(map[uint64]int32)
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	return &c.shards[binary.LittleEndian.Uint64(k[:8])&(shardCount-1)]
}

func (c *Cache) preShardFor(p uint64) *preShard {
	return &c.pre[p&(shardCount-1)]
}

// SetAutoDisable arms hit-rate-aware auto-disable: once the cache has
// served at least minLookups Gets within the current arming window
// with a hit rate strictly below minHitRate, it latches into a
// disabled state and the analysis wrappers bypass it entirely — no key
// hashing, no map probes. This turns the cache into a no-cost
// pass-through on all-distinct batches (where every lookup is a
// guaranteed miss) while leaving repeated batches untouched. Results
// are byte-identical either way: disabling only ever trades a hit for
// a recomputation.
//
// minLookups <= 0 or minHitRate <= 0 disarms the policy (the default:
// a cache built by New never self-disables). SetAutoDisable opens a
// fresh window and clears a tripped latch, as do Reset and
// ArmAutoDisable.
func (c *Cache) SetAutoDisable(minLookups int64, minHitRate float64) {
	if c == nil {
		return
	}
	c.autoMinHitRate.Store(math.Float64bits(minHitRate))
	c.autoMinLookups.Store(minLookups)
	c.winHits.Store(0)
	c.winMisses.Store(0)
	c.disabled.Store(false)
}

// ArmAutoDisable arms the hit-rate policy for one submission's window:
// it installs the thresholds, zeroes the window's hit/miss counters and
// clears a tripped latch, so the policy judges each submission's
// workload on its own lookups. This is the chokepoint form every
// fan-out calls before its first key hash — on a shared long-lived
// cache (one Engine serving many clients) a cold all-distinct sweep
// trips the latch for the remainder of that sweep only; the next
// submission re-arms and a hot workload regains its hits from the
// still-resident entries. Safe to call concurrently with lookups and
// with itself: a concurrent re-arm only restarts the window, never
// changes results. Thresholds <= 0 are ignored.
func (c *Cache) ArmAutoDisable(minLookups int64, minHitRate float64) {
	if c == nil || minLookups <= 0 || minHitRate <= 0 {
		return
	}
	c.autoMinHitRate.Store(math.Float64bits(minHitRate))
	c.autoMinLookups.Store(minLookups)
	c.winHits.Store(0)
	c.winMisses.Store(0)
	c.disabled.Store(false)
}

// Disabled reports whether hit-rate-aware auto-disable has tripped.
// The analysis wrappers consult it before hashing; callers may too.
// Safe on a nil receiver (a nil cache is "disabled" by definition).
func (c *Cache) Disabled() bool {
	return c == nil || c.disabled.Load()
}

// noteLookup records one lookup outcome in the current arming window
// and trips the latch when the window's lookups clear the threshold
// with too few hits.
func (c *Cache) noteLookup(hit bool) {
	lookups := c.autoMinLookups.Load()
	rate := math.Float64frombits(c.autoMinHitRate.Load())
	if lookups <= 0 || rate <= 0 || c.disabled.Load() {
		return
	}
	var hits, misses int64
	if hit {
		hits = c.winHits.Add(1)
		misses = c.winMisses.Load()
	} else {
		misses = c.winMisses.Add(1)
		hits = c.winHits.Load()
	}
	total := hits + misses
	if total >= lookups && float64(hits) < rate*float64(total) {
		c.disabled.Store(true)
	}
}

// mayContain consults the counting pre-filter: false means no resident
// entry was registered under pre, so a lookup is a guaranteed miss and
// the caller can skip building the canonical key. True only promises a
// possible hit (the pre-hash is not collision-free and the filter is
// updated outside the entry shard's lock, so both false positives and
// transient false negatives occur; either way the SHA-256 keyed table
// stays the source of truth and results are unaffected).
func (c *Cache) mayContain(pre uint64) bool {
	if c == nil {
		return false
	}
	ps := c.preShardFor(pre)
	ps.mu.RLock()
	n := ps.m[pre]
	ps.mu.RUnlock()
	return n > 0
}

// countMiss records a lookup the pre-filter resolved as a guaranteed
// miss, so the auto-disable policy observes the same lookup stream
// whether or not a SHA key was ever computed.
func (c *Cache) countMiss() {
	if c == nil {
		return
	}
	c.misses.Add(1)
	c.noteLookup(false)
}

func (c *Cache) preInc(p uint64) {
	ps := c.preShardFor(p)
	ps.mu.Lock()
	ps.m[p]++
	ps.mu.Unlock()
}

func (c *Cache) preDec(p uint64) {
	ps := c.preShardFor(p)
	ps.mu.Lock()
	if n := ps.m[p]; n <= 1 {
		delete(ps.m, p)
	} else {
		ps.m[p] = n - 1
	}
	ps.mu.Unlock()
}

// SetLatency attaches lookup-latency instrumentation: one in every
// lookupSampleEvery subsequent Gets records its duration into m.
// Observational only — timing never changes what Get returns. m must
// outlive the cache's use; nil detaches. Lookups the counting
// pre-filter resolves without reaching Get are not timed (they never
// probe the table).
func (c *Cache) SetLatency(m *obs.CacheMetrics) {
	if c == nil {
		return
	}
	c.lat.Store(m)
}

// Get returns the value stored under k. Values must be treated as
// immutable by every reader (the analysis wrappers copy before
// returning). Safe on a nil receiver (always a miss).
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	lm := c.lat.Load()
	if lm != nil && c.sampleTick.Add(1)&(lookupSampleEvery-1) != 0 {
		lm = nil
	}
	var t0 time.Time
	if lm != nil {
		t0 = lm.Clock.Now()
	}
	s := c.shardFor(k)
	s.mu.RLock()
	e, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	c.noteLookup(ok)
	if lm != nil {
		lm.Lookup.Observe(lm.Clock.Now().Sub(t0))
	}
	return e.v, ok
}

// Put stores v under k, evicting an arbitrary resident entry when the
// shard is full. Concurrent Puts of the same key are benign: the key is
// content-addressed, so every writer stores an equal value. Safe on a
// nil receiver (no-op). Entries stored this way are not registered in
// the pre-filter; the filter-aware wrappers use putPre.
func (c *Cache) Put(k Key, v any) {
	c.putPre(k, 0, v)
}

// putPre stores v under k and keeps the counting pre-filter exact:
// the new entry registers pre (0 = skip), a displaced registration —
// the evicted victim's, or the replaced entry's when it differs — is
// decremented.
func (c *Cache) putPre(k Key, pre uint64, v any) {
	if c == nil {
		return
	}
	var dropped uint64
	s := c.shardFor(k)
	s.mu.Lock()
	old, resident := s.m[k]
	if resident {
		dropped = old.pre
	} else if len(s.m) >= c.maxPerShard {
		for victim, ve := range s.m {
			delete(s.m, victim)
			c.evictions.Add(1)
			dropped = ve.pre
			break
		}
	}
	s.m[k] = entry{v: v, pre: pre}
	s.mu.Unlock()
	if dropped == pre {
		return
	}
	if dropped != 0 {
		c.preDec(dropped)
	}
	if pre != 0 {
		c.preInc(pre)
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Reset drops every entry and zeroes the counters.
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[Key]entry)
		s.mu.Unlock()
		ps := &c.pre[i]
		ps.mu.Lock()
		ps.m = make(map[uint64]int32)
		ps.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.winHits.Store(0)
	c.winMisses.Store(0)
	c.disabled.Store(false)
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Hits and Misses count lookup outcomes (including guaranteed
	// misses the pre-filter resolved without hashing).
	Hits, Misses int64
	// Evictions counts entries displaced by the memory bound.
	Evictions int64
	// Entries is the resident entry count.
	Entries int
	// AutoDisabled reports whether the hit-rate policy (SetAutoDisable)
	// has latched the cache off. Hits/Misses stop advancing then: the
	// wrappers no longer consult the cache at all.
	AutoDisabled bool
}

// Stats snapshots the counters. Safe on a nil receiver (all zero).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Evictions:    c.evictions.Load(),
		Entries:      c.Len(),
		AutoDisabled: c.disabled.Load(),
	}
}
