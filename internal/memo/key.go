package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"

	"profirt/internal/core"
	"profirt/internal/timeunit"
)

// Ticks aliases the shared time base.
type Ticks = timeunit.Ticks

// Kind tags which analysis a key addresses, so equal stream sets under
// different analyses can never collide.
type Kind byte

// Analysis kinds.
const (
	// KindDM keys the Eq. 16 deadline-monotonic message RTA.
	KindDM Kind = 1
	// KindEDF keys the Eqs. 17–18 EDF message RTA.
	KindEDF Kind = 2
	// KindHolistic keys whole holistic.Analyze results on the full
	// configuration encoding (see Enc).
	KindHolistic Kind = 3
	// KindTopology keys whole topology.Analyze results on the full
	// topology + options encoding.
	KindTopology Kind = 4
)

// keyVersion is bumped whenever the canonical encoding or the analysed
// semantics change, invalidating every previously computed address.
const keyVersion = 1

// preSeed is the pre-hash starting state (the FNV-1a 64-bit offset
// basis, kept for familiarity — the mix rounds are not FNV).
const preSeed = 14695981039346656037

// mixWord folds one 64-bit word into the pre-hash state with a
// multiply–xorshift round (splitmix64's finalizer structure): one
// multiply per word where byte-wise FNV-1a needs eight, which matters
// because the pre-hash runs on every lookup, hit or miss. The pre-hash
// never leaves the process and never enters the SHA-256 key, so its
// only quality bar is filter-grade dispersion.
func mixWord(h, v uint64) uint64 {
	h ^= v
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return h
}

// streamPre collapses one stream's attribute tuple into a single word
// (names excluded, matching the canonical key encoding).
func streamPre(s core.Stream) uint64 {
	h := mixWord(preSeed, uint64(s.Ch))
	h = mixWord(h, uint64(s.D))
	h = mixWord(h, uint64(s.T))
	return mixWord(h, uint64(s.J))
}

// streamSetPre is the non-cryptographic pre-hash of one analysis
// invocation: mix rounds over the order-dependent header (kind,
// tcycle, opts) combined with a commutative sum over the stream
// multiset, so every ordering of the same streams maps to the same
// pre-hash without sorting. The DM ordered fallback (see streamSetKey)
// produces a different canonical key for the same pre-hash; that is
// only a false positive in the pre-filter, which SHA-256 then
// arbitrates.
func streamSetPre(kind Kind, tcycle Ticks, opts []uint64, streams []core.Stream) uint64 {
	h := mixWord(preSeed, uint64(kind))
	h = mixWord(h, uint64(tcycle))
	h = mixWord(h, uint64(len(opts)))
	for _, o := range opts {
		h = mixWord(h, o)
	}
	h = mixWord(h, uint64(len(streams)))
	var set uint64
	for _, s := range streams {
		set += streamPre(s)
	}
	return mixWord(h, set)
}

// streamLess is the canonical total preorder on normalized streams:
// (D, T, Ch, J) lexicographically. Names are excluded — they never
// enter the response-time arithmetic.
func streamLess(a, b core.Stream) bool {
	switch {
	case a.D != b.D:
		return a.D < b.D
	case a.T != b.T:
		return a.T < b.T
	case a.Ch != b.Ch:
		return a.Ch < b.Ch
	default:
		return a.J < b.J
	}
}

func sameTuple(a, b core.Stream) bool {
	return a.Ch == b.Ch && a.D == b.D && a.T == b.T && a.J == b.J
}

// keyScratch carries the canonicalization and encoding buffers of one
// wrapper invocation. Pooled: the wrappers run once per analysis call
// on the batch hot path, and the index/canon/perm/encode allocations
// used to dominate the cost of a lookup.
type keyScratch struct {
	idx   []int
	perm  []int
	canon []core.Stream
	buf   []byte
}

var keyScratchPool = sync.Pool{New: func() any { return new(keyScratch) }}

// build computes the content address for one (kind, tcycle, opts,
// stream set) analysis invocation, leaving the canonical stream
// ordering in sc.canon and the permutation in sc.perm with
// perm[i] = canonical position of caller stream i, so cached
// canonical-order results map back to the caller's order.
//
// The canonical ordering sorts streams by (D, T, Ch, J), making the
// key order-insensitive: permuting the caller's streams yields the
// same key and the same (re-permuted) results. That normalization is
// sound because the FCFS/DM/EDF message analyses are permutation-
// equivariant — every stream's bound depends only on its own attributes
// and the multiset of the others — with one exception: the DM analysis
// breaks deadline ties by input position. When kind is order-sensitive
// (DM) and two streams with equal D differ in any other attribute, the
// input order carries meaning, so the key falls back to encoding the
// caller's order verbatim (flagged in the digest) and the canonical
// ordering degenerates to the input order. Identical duplicate streams
// never force the fallback: interchangeable tuples are interchangeable
// positions. Either way, cached and uncached results stay byte-
// identical.
//
// opts carries the flattened analysis options; kind-distinct layouts
// may reuse word positions because kind itself is part of the digest.
func (sc *keyScratch) build(kind Kind, tcycle Ticks, opts []uint64, streams []core.Stream, orderSensitive bool) Key {
	n := len(streams)
	if cap(sc.idx) < n {
		sc.idx = make([]int, n)
		sc.perm = make([]int, n)
		sc.canon = make([]core.Stream, n)
	}
	idx := sc.idx[:n]
	for i := range idx {
		idx[i] = i
	}
	// Stable: equal tuples keep the caller's relative order, so
	// duplicate streams map back onto themselves.
	sort.SliceStable(idx, func(x, y int) bool {
		return streamLess(streams[idx[x]], streams[idx[y]])
	})

	ordered := false
	if orderSensitive {
		for k := 1; k < n; k++ {
			a, b := streams[idx[k-1]], streams[idx[k]]
			if a.D == b.D && !sameTuple(a, b) {
				ordered = true
				break
			}
		}
	}
	if ordered {
		for i := range idx {
			idx[i] = i
		}
	}

	canon := sc.canon[:n]
	perm := sc.perm[:n]
	for pos, orig := range idx {
		s := streams[orig]
		s.Name = ""
		canon[pos] = s
		perm[orig] = pos
	}
	sc.canon, sc.perm = canon, perm

	// The digest byte stream is unchanged from the streaming sha256.New
	// formulation; building it in the reusable buffer and hashing with
	// sha256.Sum256 just removes the hash-state and Sum allocations.
	buf := append(sc.buf[:0], keyVersion, byte(kind), flag(ordered))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(tcycle))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(opts)))
	for _, o := range opts {
		buf = binary.LittleEndian.AppendUint64(buf, o)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	for _, s := range canon {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Ch))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.D))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.T))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.J))
	}
	sc.buf = buf
	return sha256.Sum256(buf)
}

// streamSetKey is the standalone form of keyScratch.build for tests
// and one-shot callers: it returns the key, the canonical stream
// ordering the underlying analysis should run on (names stripped), and
// the caller-to-canonical permutation.
func streamSetKey(kind Kind, tcycle Ticks, opts []uint64, streams []core.Stream, orderSensitive bool) (Key, []core.Stream, []int) {
	sc := new(keyScratch)
	k := sc.build(kind, tcycle, opts, streams, orderSensitive)
	return k, sc.canon, sc.perm
}

func flag(b bool) byte {
	if b {
		return 1
	}
	return 0
}
