package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"profirt/internal/core"
	"profirt/internal/timeunit"
)

// Ticks aliases the shared time base.
type Ticks = timeunit.Ticks

// Kind tags which analysis a key addresses, so equal stream sets under
// different analyses can never collide.
type Kind byte

// Analysis kinds.
const (
	// KindDM keys the Eq. 16 deadline-monotonic message RTA.
	KindDM Kind = 1
	// KindEDF keys the Eqs. 17–18 EDF message RTA.
	KindEDF Kind = 2
)

// keyVersion is bumped whenever the canonical encoding or the analysed
// semantics change, invalidating every previously computed address.
const keyVersion = 1

// streamLess is the canonical total preorder on normalized streams:
// (D, T, Ch, J) lexicographically. Names are excluded — they never
// enter the response-time arithmetic.
func streamLess(a, b core.Stream) bool {
	switch {
	case a.D != b.D:
		return a.D < b.D
	case a.T != b.T:
		return a.T < b.T
	case a.Ch != b.Ch:
		return a.Ch < b.Ch
	default:
		return a.J < b.J
	}
}

func sameTuple(a, b core.Stream) bool {
	return a.Ch == b.Ch && a.D == b.D && a.T == b.T && a.J == b.J
}

// streamSetKey builds the content address for one (kind, tcycle, opts,
// stream set) analysis invocation. It returns the key, the canonical
// stream ordering the underlying analysis should run on (names
// stripped), and perm with perm[i] = canonical position of caller
// stream i, so cached canonical-order results map back to the caller's
// order.
//
// The canonical ordering sorts streams by (D, T, Ch, J), making the
// key order-insensitive: permuting the caller's streams yields the
// same key and the same (re-permuted) results. That normalization is
// sound because the FCFS/DM/EDF message analyses are permutation-
// equivariant — every stream's bound depends only on its own attributes
// and the multiset of the others — with one exception: the DM analysis
// breaks deadline ties by input position. When kind is order-sensitive
// (DM) and two streams with equal D differ in any other attribute, the
// input order carries meaning, so the key falls back to encoding the
// caller's order verbatim (flagged in the digest) and the canonical
// ordering degenerates to the input order. Identical duplicate streams
// never force the fallback: interchangeable tuples are interchangeable
// positions. Either way, cached and uncached results stay byte-
// identical.
//
// opts carries the flattened analysis options; kind-distinct layouts
// may reuse word positions because kind itself is part of the digest.
func streamSetKey(kind Kind, tcycle Ticks, opts []uint64, streams []core.Stream, orderSensitive bool) (Key, []core.Stream, []int) {
	n := len(streams)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Stable: equal tuples keep the caller's relative order, so
	// duplicate streams map back onto themselves.
	sort.SliceStable(idx, func(x, y int) bool {
		return streamLess(streams[idx[x]], streams[idx[y]])
	})

	ordered := false
	if orderSensitive {
		for k := 1; k < n; k++ {
			a, b := streams[idx[k-1]], streams[idx[k]]
			if a.D == b.D && !sameTuple(a, b) {
				ordered = true
				break
			}
		}
	}
	if ordered {
		for i := range idx {
			idx[i] = i
		}
	}

	canon := make([]core.Stream, n)
	perm := make([]int, n)
	for pos, orig := range idx {
		s := streams[orig]
		s.Name = ""
		canon[pos] = s
		perm[orig] = pos
	}

	h := sha256.New()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte{keyVersion, byte(kind), flag(ordered)})
	word(uint64(tcycle))
	word(uint64(len(opts)))
	for _, o := range opts {
		word(o)
	}
	word(uint64(n))
	for _, s := range canon {
		word(uint64(s.Ch))
		word(uint64(s.D))
		word(uint64(s.T))
		word(uint64(s.J))
	}
	var k Key
	h.Sum(k[:0])
	return k, canon, perm
}

func flag(b bool) byte {
	if b {
		return 1
	}
	return 0
}
