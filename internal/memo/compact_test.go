package memo

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreCompactDropsDeadLinesAndPreservesState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	meta := []byte("manifest-hash")
	s, err := OpenStore(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(storeKey(i), []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate kill-mid-write damage: a torn tail record plus a
	// corrupted line in the middle are both dead weight the next open
	// drops but the append-only file keeps forever.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"k\":\"corrupt\",\"v\":1,\"h\":\"nope\"}\n{\"k\":\"torn"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err = OpenStore(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Dropped != 2 || st.Entries != 8 {
		t.Fatalf("damaged reopen stats = %+v, want 2 dropped / 8 entries", st)
	}
	dirtySize := fileSize(t, path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Dropped != 0 || st.Entries != 8 || st.Compactions != 1 {
		t.Fatalf("post-compact stats = %+v", st)
	}
	if got := fileSize(t, path); got >= dirtySize {
		t.Fatalf("compaction did not shrink the file: %d -> %d bytes", dirtySize, got)
	}
	// The live store stays fully usable: resident reads hit, and new
	// appends land in the compacted file.
	if v, ok := s.Get(storeKey(3)); !ok || string(v) != `{"v":3}` {
		t.Fatalf("post-compact Get = %q, %v", v, ok)
	}
	if err := s.Put(storeKey(100), []byte(`{"v":100}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopen of the compacted file sees every record — including the
	// post-compact append — under the same meta binding, with nothing
	// dropped.
	s2, err := OpenStore(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Dropped != 0 || st.Entries != 9 {
		t.Fatalf("compacted reopen stats = %+v, want 0 dropped / 9 entries", st)
	}
	for i := 0; i < 8; i++ {
		if v, ok := s2.Get(storeKey(i)); !ok || string(v) != fmt.Sprintf(`{"v":%d}`, i) {
			t.Fatalf("compacted Get(%d) = %q, %v", i, v, ok)
		}
	}
	if _, ok := s2.Get(storeKey(100)); !ok {
		t.Fatal("post-compact append lost across reopen")
	}
	// The meta binding survives compaction: a different meta is still
	// rejected.
	if _, err := OpenStore(path, []byte("other")); err == nil {
		t.Fatal("compacted store accepted mismatched meta")
	}
}

func TestStoreCompactIsDeterministic(t *testing.T) {
	// Two stores holding the same records compact to identical bytes
	// regardless of insertion order (records are rewritten in sorted
	// key order).
	dir := t.TempDir()
	build := func(name string, order []int) string {
		path := filepath.Join(dir, name)
		s, err := OpenStore(path, []byte("m"))
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if err := s.Put(storeKey(i), []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := build("a.jsonl", []int{0, 1, 2, 3, 4})
	b := build("b.jsonl", []int{4, 2, 0, 3, 1})
	ra, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ra) != string(rb) {
		t.Fatal("compacted stores with equal content differ byte-wise")
	}
}

func TestStoreCompactNil(t *testing.T) {
	var s *Store
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}
