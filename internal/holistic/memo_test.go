package holistic

import (
	"reflect"
	"testing"

	"profirt/internal/ap"
	"profirt/internal/memo"
)

// TestWholeResultMemo is the whole-result memoization contract: the
// second Analyze of an identical configuration must be served from the
// cache (one stored fixed point, one hit) and both the hit and the
// miss must be byte-identical to the uncached analysis.
func TestWholeResultMemo(t *testing.T) {
	for _, pol := range []ap.Policy{ap.FCFS, ap.DM, ap.EDF} {
		cfg := cellConfig(pol)
		want, err := Analyze(cfg)
		if err != nil {
			t.Fatalf("%v: uncached: %v", pol, err)
		}

		cfg.Cache = memo.New(0)
		miss, err := Analyze(cfg)
		if err != nil {
			t.Fatalf("%v: cached miss: %v", pol, err)
		}
		hitsAfterMiss := cfg.Cache.Stats().Hits
		hit, err := Analyze(cfg)
		if err != nil {
			t.Fatalf("%v: cached hit: %v", pol, err)
		}
		if got := cfg.Cache.Stats().Hits; got <= hitsAfterMiss {
			t.Errorf("%v: second Analyze did not hit the whole-result entry (hits %d -> %d)", pol, hitsAfterMiss, got)
		}
		if !reflect.DeepEqual(miss, want) {
			t.Errorf("%v: cached miss diverged from uncached:\n%+v\nvs\n%+v", pol, miss, want)
		}
		if !reflect.DeepEqual(hit, want) {
			t.Errorf("%v: cached hit diverged from uncached:\n%+v\nvs\n%+v", pol, hit, want)
		}
	}
}

// TestWholeResultMemoIsolation: a caller mutating a returned Result
// must not corrupt the cached copy.
func TestWholeResultMemoIsolation(t *testing.T) {
	cfg := cellConfig(ap.DM)
	cfg.Cache = memo.New(0)
	first, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.Transactions[0].Name = "clobbered"
	first.Transactions[0].MessageResponse = -1

	again, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Transactions[0].Name == "clobbered" || again.Transactions[0].MessageResponse == -1 {
		t.Fatal("cached holistic Result aliased by a previous caller's mutation")
	}
}

// TestWholeResultMemoKeysNames: configurations differing only in
// report-visible names must not share an entry — the names surface
// verbatim in the Result.
func TestWholeResultMemoKeysNames(t *testing.T) {
	cache := memo.New(0)
	cfg := cellConfig(ap.DM)
	cfg.Cache = cache
	a, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cellConfig(ap.DM)
	cfg2.Cache = cache
	cfg2.Masters[0].Transactions[0].Name = "renamed"
	b, err := Analyze(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Transactions[0].Name != "press" || b.Transactions[0].Name != "renamed" {
		t.Fatalf("renamed configuration shared a cache entry: %q vs %q",
			a.Transactions[0].Name, b.Transactions[0].Name)
	}
}
