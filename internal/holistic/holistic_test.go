package holistic

import (
	"testing"

	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/sched"
	"profirt/internal/timeunit"
)

// cellConfig builds a small two-master system with comfortable
// deadlines: host tasks are light, so the fixed point should converge
// quickly and everything should be schedulable.
func cellConfig(dispatcher ap.Policy) Config {
	tx := func(name string, cGen, period, ch, dMsg, delivery, deadline Ticks) Transaction {
		return Transaction{
			Name: name,
			Generation: sched.Task{
				Name: name + ".gen", C: cGen, D: period / 2, T: period,
			},
			Stream:   core.Stream{Name: name + ".msg", Ch: ch, D: dMsg},
			Delivery: delivery,
			Deadline: deadline,
		}
	}
	return Config{
		TTR:       1_000,
		TokenPass: 70,
		Masters: []MasterSpec{
			{
				Name:       "plc",
				Dispatcher: dispatcher,
				Transactions: []Transaction{
					tx("press", 200, 20_000, 400, 10_000, 100, 16_000),
					tx("valve", 300, 40_000, 450, 20_000, 150, 30_000),
				},
			},
			{
				Name:       "drive",
				Dispatcher: dispatcher,
				LongestLow: 600,
				Transactions: []Transaction{
					tx("axis", 250, 30_000, 500, 15_000, 120, 24_000),
				},
			},
		},
	}
}

func TestValidation(t *testing.T) {
	if _, err := Analyze(Config{}); err == nil {
		t.Error("empty config must fail")
	}
	bad := cellConfig(ap.DM)
	bad.TTR = 0
	if _, err := Analyze(bad); err == nil {
		t.Error("zero TTR must fail")
	}
	bad = cellConfig(ap.DM)
	bad.Masters[0].Transactions = nil
	if _, err := Analyze(bad); err == nil {
		t.Error("empty master must fail")
	}
	bad = cellConfig(ap.DM)
	bad.Masters[0].Transactions[0].Generation.C = 0
	if _, err := Analyze(bad); err == nil {
		t.Error("invalid generation task must fail")
	}
	bad = cellConfig(ap.DM)
	bad.Masters[0].Transactions[0].Stream.Ch = 0
	if _, err := Analyze(bad); err == nil {
		t.Error("invalid stream must fail")
	}
	bad = cellConfig(ap.DM)
	bad.Masters[0].Transactions[0].Deadline = 0
	if _, err := Analyze(bad); err == nil {
		t.Error("invalid deadline must fail")
	}
	bad = cellConfig(ap.DM)
	bad.TokenPass = -1
	if _, err := Analyze(bad); err == nil {
		t.Error("negative token pass must fail")
	}
}

func TestConvergesAndSchedulable(t *testing.T) {
	for _, pol := range []ap.Policy{ap.FCFS, ap.DM, ap.EDF} {
		res, err := Analyze(cellConfig(pol))
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if !res.Converged {
			t.Fatalf("%v: fixed point did not converge in %d iterations", pol, res.Iterations)
		}
		if !res.Schedulable {
			t.Errorf("%v: cell should be schedulable: %+v", pol, res.Transactions)
		}
		if len(res.Transactions) != 3 {
			t.Fatalf("%v: transactions = %d, want 3", pol, len(res.Transactions))
		}
		for _, tr := range res.Transactions {
			e := tr.Breakdown
			if e.Generation <= 0 || e.Cycle <= 0 || e.Delivery <= 0 {
				t.Errorf("%v %s: degenerate breakdown %+v", pol, tr.Name, e)
			}
			if e.Total() > tr.Deadline {
				t.Errorf("%v %s: total %v exceeds deadline %v but OK=%v",
					pol, tr.Name, e.Total(), tr.Deadline, tr.OK)
			}
			// The message response covers at least one token cycle.
			if tr.MessageResponse < res.TokenCycle {
				t.Errorf("%v %s: message response %v below T_cycle %v",
					pol, tr.Name, tr.MessageResponse, res.TokenCycle)
			}
		}
	}
}

// The coupling must be genuine: inflating the delivery cost of one
// transaction raises the host interference and thereby the *other*
// transaction's generation response, message jitter and end-to-end
// bound.
func TestCouplingPropagates(t *testing.T) {
	base, err := Analyze(cellConfig(ap.DM))
	if err != nil {
		t.Fatal(err)
	}
	heavy := cellConfig(ap.DM)
	heavy.Masters[0].Transactions[0].Delivery = 5_000 // press delivery blows up
	res, err := Analyze(heavy)
	if err != nil {
		t.Fatal(err)
	}
	// valve (same master) must see a larger end-to-end bound.
	baseValve := base.Transactions[1].Breakdown.Total()
	heavyValve := res.Transactions[1].Breakdown.Total()
	if heavyValve <= baseValve {
		t.Errorf("coupling broken: valve E %v -> %v after inflating press delivery",
			baseValve, heavyValve)
	}
	// drive (other master) shares only the bus; its generation response
	// must be unchanged.
	if res.Transactions[2].Breakdown.Generation != base.Transactions[2].Breakdown.Generation {
		t.Error("cross-host interference should not exist")
	}
}

func TestJitterInheritanceRaisesMessageBound(t *testing.T) {
	// Two identical systems except one generation task is much slower,
	// which becomes message release jitter (Sec. 4.1) and must raise
	// the *other* stream's DM message bound on the same master.
	slow := cellConfig(ap.DM)
	slow.Masters[0].Transactions[1].Generation.C = 9_000 // valve gen slow
	res, err := Analyze(slow)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Analyze(cellConfig(ap.DM))
	if err != nil {
		t.Fatal(err)
	}
	// press has the tighter message deadline and outranks valve in the
	// DM queue, so press's bound is driven by blocking, not valve's
	// jitter; but valve's own message bound reflects its larger
	// generation response via the end-to-end total.
	if res.Transactions[1].Breakdown.Total() <= base.Transactions[1].Breakdown.Total() {
		t.Error("slower generation must grow the end-to-end bound")
	}
}

func TestInfeasibleHostReportsUnschedulable(t *testing.T) {
	cfg := cellConfig(ap.DM)
	// Saturate the host: generation C = T on one transaction.
	cfg.Masters[0].Transactions[0].Generation.C = 20_000
	cfg.Masters[0].Transactions[0].Generation.D = 20_000
	res, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Error("saturated host must not be schedulable")
	}
	// The poisoned transactions report MaxTicks components rather than
	// bogus finite bounds.
	found := false
	for _, tr := range res.Transactions {
		if tr.Master == "plc" && !tr.OK {
			found = true
		}
	}
	if !found {
		t.Error("expected a failing plc transaction")
	}
}

func TestFCFSDominatedByPriorityQueues(t *testing.T) {
	// Under FCFS every message is charged nh·T_cycle; DM charges the
	// tight stream less on a 2-stream master (blocking + own = 2·T_c =
	// nh·T_c here), so compare on a 3-transaction master where the
	// difference is strict.
	cfg := cellConfig(ap.FCFS)
	cfg.Masters[0].Transactions = append(cfg.Masters[0].Transactions, Transaction{
		Name:       "extra",
		Generation: sched.Task{Name: "extra.gen", C: 100, D: 30_000, T: 60_000},
		Stream:     core.Stream{Name: "extra.msg", Ch: 420, D: 30_000},
		Delivery:   100,
		Deadline:   55_000,
	})
	fcfs, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgDM := cfg
	cfgDM.Masters = append([]MasterSpec(nil), cfg.Masters...)
	for k := range cfgDM.Masters {
		cfgDM.Masters[k].Dispatcher = ap.DM
	}
	dm, err := Analyze(cfgDM)
	if err != nil {
		t.Fatal(err)
	}
	// The tightest-deadline message on the 3-stream master (press) must
	// have a strictly smaller message bound under DM.
	if dm.Transactions[0].MessageResponse >= fcfs.Transactions[0].MessageResponse {
		t.Errorf("DM (%v) should beat FCFS (%v) for the tight stream",
			dm.Transactions[0].MessageResponse, fcfs.Transactions[0].MessageResponse)
	}
}

func TestDivergenceSaturatesNotOverflows(t *testing.T) {
	cfg := cellConfig(ap.DM)
	cfg.Masters[0].Transactions[0].Generation.C = 19_999
	cfg.Masters[0].Transactions[0].Generation.D = 20_000
	cfg.Masters[0].Transactions[1].Generation.C = 39_999
	res, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Transactions {
		if tr.Breakdown.Generation < 0 || tr.MessageResponse < 0 {
			t.Errorf("%s: negative component after divergence: %+v", tr.Name, tr.Breakdown)
		}
	}
	if res.Schedulable {
		t.Error("overloaded host cannot be schedulable")
	}
	_ = timeunit.MaxTicks
}
