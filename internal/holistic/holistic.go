// Package holistic composes the paper's Sections 2 and 4 into the
// end-to-end analysis its Sec. 4.1–4.2 describe in prose: application
// tasks on each master's host processor generate message requests;
// messages inherit period, priority and release jitter from their
// sending task; when the response returns, a delivery task processes it
// on the same host.
//
// The quantities are mutually coupled: the message's release jitter is
// the generation task's worst-case response time; the delivery task's
// release jitter is the generation response plus the message response;
// and the delivery tasks interfere with the generation tasks on the
// shared host. As in Tindell & Clark's holistic analysis [33], the
// composition is solved as a fixed point: every response time is
// non-decreasing in every jitter, so iterating from zero jitter
// converges (saturating at timeunit.MaxTicks for divergent parts).
package holistic

import (
	"errors"
	"fmt"

	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/memo"
	"profirt/internal/sched"
	"profirt/internal/timeunit"
)

// Ticks aliases the shared time base.
type Ticks = timeunit.Ticks

// Transaction is one sensor-to-actuator control transaction on a
// master: a generation task that produces the message request, the
// message stream itself, and a delivery task processing the response
// (the paper's g, Q+C, and d).
type Transaction struct {
	// Name labels the transaction.
	Name string
	// Generation is the task releasing the request; its period is the
	// transaction period and its worst-case response time becomes the
	// message's release jitter (Sec. 4.1).
	Generation sched.Task
	// Stream is the message carried on the bus. T and J are derived
	// (T from Generation.T, J from the fixed point); Ch and D must be
	// set.
	Stream core.Stream
	// Delivery is the host execution cost of processing the response.
	Delivery Ticks
	// Deadline is the end-to-end deadline the transaction must meet.
	Deadline Ticks
}

// MasterSpec is one master: its host-processor task set consists of the
// generation and delivery parts of its transactions (scheduled
// preemptively, deadline-monotonic), and its bus traffic of their
// streams.
type MasterSpec struct {
	Name string
	// Transactions in any order.
	Transactions []Transaction
	// LongestLow is the master's longest low-priority message cycle
	// (contributes blocking and C_M, as in core.Master).
	LongestLow Ticks
	// Dispatcher selects the AP queue policy used for the message
	// analysis: ap.DM or ap.EDF (ap.FCFS uses the Eq. 11 bound).
	Dispatcher ap.Policy
}

// Config is the analysed system.
type Config struct {
	TTR Ticks
	// TokenPass is the per-hop token passing overhead (bit times).
	TokenPass Ticks
	Masters   []MasterSpec
	// MaxIterations caps the holistic fixed point (default 64).
	MaxIterations int
	// Cache memoizes the message-level DM/EDF fixed points on a shared
	// content-addressed table (nil disables). The holistic iteration
	// recomputes each master's bus analysis once per round with the
	// current jitters; rounds whose jitters settled — and repeated
	// analyses of identical configurations across a sweep — hit the
	// cache. Results are byte-identical with or without it.
	Cache *memo.Cache
}

// TransactionReport is the per-transaction outcome.
type TransactionReport struct {
	Master string
	Name   string
	// Breakdown is the converged end-to-end decomposition
	// (E = g + Q + C + d).
	Breakdown core.EndToEnd
	// MessageResponse is the converged message-level bound (Q + C).
	MessageResponse Ticks
	// Deadline echoes the transaction deadline.
	Deadline Ticks
	// OK reports Breakdown.Total() <= Deadline.
	OK bool
}

// Result is the analysis outcome.
type Result struct {
	// Converged is false when the fixed point hit MaxIterations.
	Converged bool
	// Iterations used by the fixed point.
	Iterations int
	// Schedulable is true when the fixed point converged and every
	// transaction meets its end-to-end deadline.
	Schedulable bool
	// Transactions in master order then input order.
	Transactions []TransactionReport
	// TokenCycle is the Eq. 14 bound used for the message analyses.
	TokenCycle Ticks
}

// state carries the per-transaction fixed-point variables of one
// master, plus the scratch buffers stepMaster reuses every round (the
// fixed point re-runs the host and bus analyses once per master per
// round, so per-round allocations multiply).
type state struct {
	genResp []Ticks // R of the generation task (includes its jitter)
	msgResp []Ticks // R of the message (Q + C, anchored at queueing)
	delResp []Ticks // R of the delivery task (includes its jitter) = E
	delJit  []Ticks // delivery release jitter = genResp + msgResp

	host    sched.TaskSet // interleaved gen/del host tasks (2n)
	ordered sched.TaskSet // host in DM order
	rank    []int         // DM permutation buffer: position → host index
	rs      []Ticks       // ResponseTimesFPInto output buffer
	streams []core.Stream // bus-analysis stream view
	msg     []Ticks       // FCFS message-bound buffer
}

// Analyze runs the holistic fixed point. With a cache configured, the
// whole Result is additionally memoized on the full configuration
// encoding (names included — they appear verbatim in the reports), so
// sweeps that re-analyse identical configurations across cells, trials
// or policies skip the fixed point entirely. Hits return a deep copy;
// cached and uncached results are byte-identical.
func Analyze(cfg Config) (Result, error) {
	if err := validate(cfg); err != nil {
		return Result{}, err
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 64
	}
	if cfg.Cache.Disabled() {
		return analyze(cfg, maxIter), nil
	}
	e := memo.GetEnc()
	defer memo.PutEnc(e)
	encodeConfig(e, cfg, maxIter)
	if v, tok, ok := cfg.Cache.LookupEncoded(memo.KindHolistic, e); ok {
		return v.(Result).clone(), nil
	} else {
		res := analyze(cfg, maxIter)
		cfg.Cache.StoreEncoded(tok, e, res.clone())
		return res, nil
	}
}

// encodeConfig writes the full analysed configuration in a fixed
// traversal order: every field that can influence the Result,
// including names (they surface in the per-transaction reports) and
// the effective iteration cap.
func encodeConfig(e *memo.Enc, cfg Config, maxIter int) {
	e.Ticks(cfg.TTR)
	e.Ticks(cfg.TokenPass)
	e.Int(maxIter)
	e.Int(len(cfg.Masters))
	for _, m := range cfg.Masters {
		e.String(m.Name)
		e.Ticks(m.LongestLow)
		e.Int(int(m.Dispatcher))
		e.Int(len(m.Transactions))
		for _, tr := range m.Transactions {
			e.String(tr.Name)
			g := tr.Generation
			e.String(g.Name)
			e.Ticks(g.C)
			e.Ticks(g.D)
			e.Ticks(g.T)
			e.Ticks(g.J)
			e.Ticks(g.B)
			s := tr.Stream
			e.String(s.Name)
			e.Ticks(s.Ch)
			e.Ticks(s.D)
			e.Ticks(s.T)
			e.Ticks(s.J)
			e.Ticks(tr.Delivery)
			e.Ticks(tr.Deadline)
		}
	}
}

// clone deep-copies the result so cached values are never aliased by
// callers (TransactionReport itself is all values).
func (r Result) clone() Result {
	r.Transactions = append([]TransactionReport(nil), r.Transactions...)
	return r
}

// analyze is the fixed point proper, on a validated configuration.
func analyze(cfg Config, maxIter int) Result {
	// T_cycle does not depend on jitter; compute once.
	net := core.Network{TTR: cfg.TTR, TokenPass: cfg.TokenPass}
	for _, m := range cfg.Masters {
		cm := core.Master{Name: m.Name, LongestLow: m.LongestLow}
		for _, tr := range m.Transactions {
			s := tr.Stream
			s.T = tr.Generation.T
			cm.High = append(cm.High, s)
		}
		net.Masters = append(net.Masters, cm)
	}
	tc := net.TokenCycle()

	states := make([]state, len(cfg.Masters))
	for k, m := range cfg.Masters {
		n := len(m.Transactions)
		states[k] = state{
			genResp: make([]Ticks, n), msgResp: make([]Ticks, n),
			delResp: make([]Ticks, n), delJit: make([]Ticks, n),
		}
	}

	iterations := 0
	converged := false
	for iterations < maxIter {
		iterations++
		changed := false
		for k := range cfg.Masters {
			if stepMaster(&cfg.Masters[k], &states[k], tc, cfg.Cache) {
				changed = true
			}
		}
		if !changed {
			converged = true
			break
		}
	}

	res := Result{
		Converged:   converged,
		Iterations:  iterations,
		Schedulable: converged,
		TokenCycle:  tc,
	}
	for k, m := range cfg.Masters {
		st := states[k]
		for x, tr := range m.Transactions {
			e, ok := compose(tr, st, x)
			if !ok {
				res.Schedulable = false
			}
			res.Transactions = append(res.Transactions, TransactionReport{
				Master:          m.Name,
				Name:            tr.Name,
				Breakdown:       e,
				MessageResponse: st.msgResp[x],
				Deadline:        tr.Deadline,
				OK:              ok,
			})
		}
	}
	return res
}

func validate(cfg Config) error {
	if len(cfg.Masters) == 0 {
		return errors.New("holistic: no masters")
	}
	if cfg.TTR <= 0 {
		return errors.New("holistic: TTR must be positive")
	}
	if cfg.TokenPass < 0 {
		return errors.New("holistic: TokenPass must be non-negative")
	}
	for _, m := range cfg.Masters {
		if len(m.Transactions) == 0 {
			return fmt.Errorf("holistic: master %q has no transactions", m.Name)
		}
		for _, tr := range m.Transactions {
			if err := tr.Generation.Validate(); err != nil {
				return fmt.Errorf("holistic: %q: %w", tr.Name, err)
			}
			if tr.Stream.Ch <= 0 || tr.Stream.D <= 0 {
				return fmt.Errorf("holistic: %q: stream needs positive Ch and D", tr.Name)
			}
			if tr.Delivery < 0 || tr.Deadline <= 0 {
				return fmt.Errorf("holistic: %q: bad delivery/deadline", tr.Name)
			}
		}
	}
	return nil
}

// stepMaster performs one holistic round on a master and reports
// whether any quantity changed.
func stepMaster(m *MasterSpec, st *state, tc Ticks, cache *memo.Cache) bool {
	n := len(m.Transactions)

	// Host analysis: generation and delivery tasks under preemptive DM.
	// The host set interleaves gen task x at index 2x and delivery task
	// x at 2x+1 before sorting, and the position mapping (instead of
	// per-round formatted names and a lookup map) recovers each task's
	// response from the DM-ordered result.
	host := st.host[:0]
	for x, tr := range m.Transactions {
		host = append(host, tr.Generation)
		host = append(host, sched.Task{
			C: timeunit.Max(tr.Delivery, 1),
			D: tr.Deadline,
			T: tr.Generation.T,
			J: st.delJit[x],
		})
	}
	st.host = host
	// Stable insertion sort by deadline into the rank mapping: starting
	// from the identity permutation with strict-less comparisons
	// reproduces sched.SortDM's sort.SliceStable order exactly.
	if cap(st.rank) < 2*n {
		st.rank = make([]int, 2*n)
	}
	perm := st.rank[:2*n]
	for h := range perm {
		perm[h] = h
	}
	for a := 1; a < 2*n; a++ {
		b := a
		for b > 0 && host[perm[b]].D < host[perm[b-1]].D {
			perm[b], perm[b-1] = perm[b-1], perm[b]
			b--
		}
	}
	ordered := st.ordered[:0]
	for _, h := range perm {
		ordered = append(ordered, host[h])
	}
	st.ordered = ordered
	st.rs = sched.ResponseTimesFPInto(st.rs, ordered, sched.FPOptions{Preemptive: true})

	// Recover per-host-task responses: one linear pass over perm fills
	// both gen and del responses without a map (host task 2x is
	// transaction x's generation, 2x+1 its delivery).
	changed := false
	for k, h := range perm {
		r := st.rs[k]
		x := h / 2
		if h%2 == 0 {
			if r != st.genResp[x] {
				changed = true
			}
			st.genResp[x] = r
		} else {
			if r != st.delResp[x] {
				changed = true
			}
			st.delResp[x] = r
		}
	}

	// Bus analysis with jitter inherited from the generation responses.
	if cap(st.streams) < n {
		st.streams = make([]core.Stream, n)
	}
	streams := st.streams[:n]
	for x, tr := range m.Transactions {
		s := tr.Stream
		s.T = tr.Generation.T
		s.J = capJitter(st.genResp[x], s.T)
		streams[x] = s
	}
	var msg []Ticks
	switch m.Dispatcher {
	case ap.DM:
		msg = memo.DMResponseTimes(cache, streams, tc, core.DMOptions{
			BlockingFromLowPriority: m.LongestLow > 0,
		})
	case ap.EDF:
		msg = memo.EDFResponseTimes(cache, streams, tc, core.EDFOptions{
			BlockingFromLowPriority: m.LongestLow > 0,
		})
	default: // FCFS, Eq. 11: nh·T_cycle regardless of jitter
		if cap(st.msg) < n {
			st.msg = make([]Ticks, n)
		}
		msg = st.msg[:n]
		for x := range streams {
			msg[x] = timeunit.MulSat(Ticks(n), tc)
		}
	}
	for x := range m.Transactions {
		if msg[x] != st.msgResp[x] {
			changed = true
		}
		st.msgResp[x] = msg[x]
		j := timeunit.AddSat(st.genResp[x], st.msgResp[x])
		j = capJitter(j, m.Transactions[x].Generation.T)
		if j != st.delJit[x] {
			changed = true
		}
		st.delJit[x] = j
	}
	return changed
}

// capJitter keeps a divergent (MaxTicks) response from poisoning the
// jitter terms with overflow while still signalling hopelessness: a
// jitter of one full period already makes back-to-back interference
// maximal for the analyses in use, and the MaxTicks response itself
// marks the transaction infeasible.
func capJitter(j, period Ticks) Ticks {
	if j > period {
		return period
	}
	return j
}

// compose assembles the end-to-end decomposition for transaction x.
// The delivery response already includes its release jitter
// (gen + message), so E = R_delivery; the breakdown recovers the
// paper's g, Q, C, d shares.
func compose(tr Transaction, st state, x int) (core.EndToEnd, bool) {
	g, r, del := st.genResp[x], st.msgResp[x], st.delResp[x]
	if g == timeunit.MaxTicks || r == timeunit.MaxTicks || del == timeunit.MaxTicks {
		return core.EndToEnd{
			Generation: g, Queuing: timeunit.MaxTicks,
			Cycle: tr.Stream.Ch, Delivery: tr.Delivery,
		}, false
	}
	d := del - st.delJit[x]
	if d < tr.Delivery {
		d = tr.Delivery
	}
	e := core.EndToEnd{
		Generation: g,
		Queuing:    timeunit.Max(0, r-tr.Stream.Ch),
		Cycle:      tr.Stream.Ch,
		Delivery:   d,
	}
	return e, e.Total() <= tr.Deadline
}
