// Package experiments contains the reproduction harness: one driver per
// experiment E1–E12 of DESIGN.md §4, each regenerating the table
// recorded in EXPERIMENTS.md. The paper itself contains no numeric
// tables or figures (it is analytical), so each experiment validates
// one of its equations or claims against the discrete-event substrates
// (cpusim for Section 2, profibus for Sections 3–4).
package experiments

import (
	"context"
	"fmt"

	"profirt/internal/memo"
	"profirt/internal/pool"
	"profirt/internal/stats"
)

// Config tunes experiment size. Quick mode shrinks grids and trial
// counts for use inside benchmarks and smoke tests.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce tables exactly.
	Seed int64
	// Trials is the number of random instances per grid cell.
	Trials int
	// Quick reduces the parameter grids.
	Quick bool
	// Parallelism bounds the worker pool evaluating grid cells.
	// 0 means runtime.GOMAXPROCS(0); 1 forces sequential execution.
	// Tables are byte-identical regardless of the value: every cell
	// draws from its own deterministically seeded RNG and results are
	// reassembled in grid order. With Pool set it instead bounds the
	// run's in-flight jobs on the shared pool (0 means the pool width).
	Parallelism int
	// Pool, when non-nil, evaluates grid cells on a shared long-lived
	// worker pool instead of a per-call one, so concurrent experiment
	// runs (and other batch work) share one bounded worker set. Tables
	// are byte-identical either way.
	Pool *pool.Shared
	// Context cancels a run early; nil means no cancellation. Cells not
	// yet dispatched when it is done are skipped, so the affected
	// tables come back with their rows missing — a cancelled run's
	// output is partial, not byte-identical to a completed one.
	Context context.Context
	// TrialShardMin sets the trial count at which a grid cell splits
	// into per-trial sub-jobs on the worker pool (see forEachCellTrial):
	// 0 selects the default (16, so full-size 40-trial cells shard and
	// quick 8-trial cells keep the historical shared-RNG draws);
	// negative disables sharding. Sharded cells seed each trial
	// independently (cellSeed ⊕ FNV(trial)), so their tables differ
	// from unsharded ones but are byte-identical at any Parallelism.
	TrialShardMin int
	// Cache memoizes the message-level DM/EDF and holistic fixed
	// points across grid cells, trials and policies on a shared
	// content-addressed table (nil disables). Tables are byte-identical
	// with or without it.
	Cache *memo.Cache
	// Progress, when non-nil, receives one event per completed pool
	// job (a grid cell, or a single trial when the cell is
	// trial-sharded). It is called concurrently from worker goroutines
	// and must be safe for that; keep it cheap. Used by cmd/experiments
	// to stream progress for full-size runs.
	Progress func(ProgressEvent)
	// RowSink, when non-nil, receives each table row the moment its
	// grid cell's reduction completes, in grid order (stats.RowEvent
	// carries the table, row index and formatted cells). Rows stream
	// while later cells are still running; the assembled tables are
	// byte-identical with or without a sink. Like Progress it is called
	// from worker goroutines and must be cheap and concurrency-safe.
	RowSink func(stats.RowEvent)
}

// rows wires a grid-ordered row streamer for table t with n rows,
// forwarding released rows to cfg.RowSink.
func (cfg Config) rows(t *stats.Table, n int) *stats.RowStreamer {
	return stats.NewRowStreamer(t, n, cfg.RowSink)
}

// ProgressEvent reports one completed unit of experiment work.
type ProgressEvent struct {
	// Experiment is the driver's ID (e.g. "E7").
	Experiment string
	// Done and Total count completed vs scheduled pool jobs for the
	// current grid of that experiment.
	Done, Total int
}

// DefaultConfig returns the full-size configuration used to produce
// EXPERIMENTS.md.
func DefaultConfig() Config { return Config{Seed: 1, Trials: 40} }

// QuickConfig returns a configuration small enough for CI and benches.
func QuickConfig() Config { return Config{Seed: 1, Trials: 8, Quick: true} }

// Experiment couples an identifier with its driver.
type Experiment struct {
	// ID is the experiment key (e.g. "E7").
	ID string
	// Title is a one-line description.
	Title string
	// Anchor names the paper equation/section the experiment validates.
	Anchor string
	// Run produces the experiment's tables.
	Run func(cfg Config) []*stats.Table
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Preemptive fixed-priority RTA vs simulation", "Sec. 2.1 (Joseph–Pandya)", E1FixedPriorityPreemptive},
		{"E2", "Non-preemptive FP RTA: literal Eq. 1 vs revised vs simulation", "Eqs. 1–2", E2FixedPriorityNonPreemptive},
		{"E3", "EDF processor-demand test vs simulation", "Eq. 3", E3EDFDemand},
		{"E4", "Non-preemptive EDF tests: Zheng–Shin vs George pessimism", "Eqs. 4–5", E4NonPreemptiveEDFTests},
		{"E5", "EDF response-time analyses vs simulation", "Eqs. 6–10", E5EDFResponseTimes},
		{"E6", "Token rotation bound T_cycle = T_TR + T_del", "Eqs. 13–14, Sec. 3.3", E6TokenCycleBound},
		{"E7", "FCFS message bound R = nh·T_cycle vs simulation", "Eqs. 11–12", E7FCFSBound},
		{"E8", "Setting T_TR by Eq. 15: schedulability region", "Eq. 15", E8TTRSetting},
		{"E9", "DM message RTA: literal vs revised vs simulation", "Eq. 16", E9DMMessageRTA},
		{"E10", "EDF message RTA and refined T_cycle ablation", "Eqs. 17–18", E10EDFMessageRTA},
		{"E11", "FCFS vs DM vs EDF as deadlines tighten (headline claim)", "Sec. 4 conclusion", E11PolicyComparison},
		{"E12", "Release jitter and end-to-end delay composition", "Secs. 4.1–4.2", E12JitterEndToEnd},
		{"E13", "Holistic task/message/delivery fixed point", "Secs. 4.1–4.2 (with [33])", E13Holistic},
	}
}

// ByID finds an experiment by its key.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ratioCell formats a "max observed / bound" tightness ratio.
func ratioCell(observed, bound float64) string {
	if bound == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", observed/bound)
}
