package experiments

import (
	"strconv"
	"strings"
	"testing"

	"profirt/internal/stats"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("experiments = %d, want 13", len(all))
	}
	seen := map[string]bool{}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Anchor == "" || e.Run == nil {
			t.Errorf("experiment %d incomplete: %+v", i, e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("E7"); !ok {
		t.Error("ByID(E7) not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) should not exist")
	}
}

func TestRatioCell(t *testing.T) {
	if got := ratioCell(1, 0); got != "n/a" {
		t.Errorf("ratioCell div-by-zero = %q", got)
	}
	if got := ratioCell(1, 2); got != "0.500" {
		t.Errorf("ratioCell = %q", got)
	}
}

// Run every experiment in quick mode: they must produce non-empty,
// well-formed tables without panicking, and the soundness columns must
// report zero violations for the revised/sound analyses.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	cfg := QuickConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				if tb.NumRows() == 0 {
					t.Errorf("table %q has no rows", tb.Title)
				}
				if len(tb.Header) == 0 {
					t.Errorf("table %q has no header", tb.Title)
				}
				// Every row must have the header's arity.
				for i := 0; i < tb.NumRows(); i++ {
					if got := len(tb.Row(i)); got != len(tb.Header) {
						t.Errorf("table %q row %d has %d cells, want %d",
							tb.Title, i, got, len(tb.Header))
					}
				}
			}
			checkSoundness(t, e.ID, tables)
		})
	}
}

// checkSoundness inspects the violation columns of the experiments that
// assert sound bounds.
func checkSoundness(t *testing.T, id string, tables []*stats.Table) {
	column := map[string]string{
		"E1":  "violations",
		"E2":  "revised violations",
		"E5":  "violations",
		"E6":  "violations",
		"E7":  "violations",
		"E9":  "revised violations",
		"E10": "violations",
	}
	wantCol, ok := column[id]
	if !ok {
		return
	}
	tb := tables[0]
	idx := -1
	for i, h := range tb.Header {
		if h == wantCol {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("%s: column %q missing from %v", id, wantCol, tb.Header)
	}
	for i := 0; i < tb.NumRows(); i++ {
		if v := tb.Row(i)[idx]; v != "0" {
			t.Errorf("%s row %d: %s = %s, want 0 (soundness)", id, i, wantCol, v)
		}
	}
}

// The E11 headline shape: at the tightest deadline scale, DM and EDF
// must accept at least as many sets as FCFS.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := QuickConfig()
	cfg.Trials = 10
	tables := E11PolicyComparison(cfg)
	tb := tables[0]
	last := tb.Row(tb.NumRows() - 1)
	parse := func(s string) float64 {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			t.Fatalf("cannot parse ratio %q: %v", s, err)
		}
		return f
	}
	fcfs, dm, edf := parse(last[1]), parse(last[2]), parse(last[3])
	if dm < fcfs || edf < fcfs {
		t.Errorf("headline violated at tightest scale: FCFS=%.3f DM=%.3f EDF=%.3f", fcfs, dm, edf)
	}
}
