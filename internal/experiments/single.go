package experiments

import (
	"fmt"
	"math/rand"

	"profirt/internal/cpusim"
	"profirt/internal/sched"
	"profirt/internal/stats"
	"profirt/internal/timeunit"
	"profirt/internal/workload"
)

// uGrid returns the utilisation sweep for Section 2 experiments.
func uGrid(quick bool) []float64 {
	if quick {
		return []float64{0.5, 0.8}
	}
	return []float64{0.3, 0.5, 0.7, 0.8, 0.9}
}

func nGrid(quick bool) []int {
	if quick {
		return []int{4}
	}
	return []int{4, 8, 12}
}

// nuCell is one (n, U) grid cell shared by the Section 2 sweeps.
type nuCell struct {
	n int
	u float64
}

// nuGrid enumerates the (n, U) grid in row-major order.
func nuGrid(quick bool) []nuCell {
	var cells []nuCell
	for _, n := range nGrid(quick) {
		for _, u := range uGrid(quick) {
			cells = append(cells, nuCell{n, u})
		}
	}
	return cells
}

// The drivers stream rows: each grid cell's row is handed to a
// stats.RowStreamer (cfg.rows) the moment the cell's reduction
// completes, and the streamer releases rows in grid order — so a
// consumer (cmd/experiments -v runs, the campaign CLI) sees finished
// rows while later cells still compute, and the assembled table is
// byte-identical to the historical buffered assembly.

// simWorst simulates a priority-ordered set under the policy with both
// a synchronous and a random-offset pattern and returns the per-task
// worst observed responses.
func simWorst(ts sched.TaskSet, pol cpusim.Policy, rng *rand.Rand) []sched.Ticks {
	worst := make([]sched.Ticks, len(ts))
	patterns := [][]sched.Ticks{nil}
	offs := make([]sched.Ticks, len(ts))
	for i := range offs {
		offs[i] = sched.Ticks(rng.Intn(50))
	}
	patterns = append(patterns, offs)
	for _, off := range patterns {
		res, err := cpusim.Run(ts, cpusim.Options{Policy: pol, Offsets: off, Horizon: 1 << 15})
		if err != nil {
			panic(err)
		}
		for i, st := range res.PerTask {
			if st.WorstResponse > worst[i] {
				worst[i] = st.WorstResponse
			}
		}
	}
	return worst
}

// E1FixedPriorityPreemptive validates the Joseph–Pandya RTA: across a
// (n, U) grid, the analytic bound must dominate the simulated worst
// case, and the bound should be attained at the critical instant.
func E1FixedPriorityPreemptive(cfg Config) []*stats.Table {
	t := stats.NewTable("E1: preemptive FP RTA vs simulation (DM priorities)",
		"n", "U", "sched. ratio", "max sim/bound", "tight tasks", "violations")
	t.Note = "bound = Joseph–Pandya response-time analysis; sim = cpusim over synchronous + random offsets"
	cells := nuGrid(cfg.Quick)
	type trialResult struct {
		schedulable              bool
		violations, tight, tasks int
		maxRatio                 float64
	}
	res := make([]trialResult, len(cells)*cfg.Trials)
	rs := cfg.rows(t, len(cells))
	forEachCellTrialReduced(cfg, "E1", len(cells), func(ci, trial int, rng *rand.Rand) {
		c := cells[ci]
		r := &res[ci*cfg.Trials+trial]
		ts := sched.SortDM(workload.TaskSet(rng, workload.DefaultTaskSetParams(c.n, c.u)))
		ok, bounds := sched.FPSchedulable(ts, sched.FPOptions{Preemptive: true})
		if !ok {
			return
		}
		r.schedulable = true
		worst := simWorst(ts, cpusim.FPPreemptive, rng)
		for i := range ts {
			r.tasks++
			if worst[i] > bounds[i] {
				r.violations++
			}
			if worst[i] == bounds[i] {
				r.tight++
			}
			if ratio := float64(worst[i]) / float64(bounds[i]); ratio > r.maxRatio {
				r.maxRatio = ratio
			}
		}
	}, func(ci int) {
		c := cells[ci]
		var schedulable, violations, tight, tasks int
		maxRatio := 0.0
		for _, r := range res[ci*cfg.Trials : (ci+1)*cfg.Trials] {
			if r.schedulable {
				schedulable++
			}
			violations += r.violations
			tight += r.tight
			tasks += r.tasks
			if r.maxRatio > maxRatio {
				maxRatio = r.maxRatio
			}
		}
		rs.Emit(ci, c.n, fmt.Sprintf("%.1f", c.u),
			stats.Ratio{K: schedulable, N: cfg.Trials},
			fmt.Sprintf("%.3f", maxRatio),
			fmt.Sprintf("%d/%d", tight, tasks),
			violations)
	})
	return []*stats.Table{t}
}

// E2FixedPriorityNonPreemptive contrasts the paper-literal Eq. 1 with
// the revised sound recurrence: the literal form can be beaten by the
// simulator (boundary releases), the revised form never.
func E2FixedPriorityNonPreemptive(cfg Config) []*stats.Table {
	t := stats.NewTable("E2: non-preemptive FP RTA — literal Eq. 1 vs revised vs simulation",
		"n", "U", "literal violations", "revised violations", "max sim/revised", "mean revised/literal")
	t.Note = "a literal violation means the simulator exceeded the paper's Eq. 1 bound (the pre-2007 optimism)"
	cells := nuGrid(cfg.Quick)
	type trialResult struct {
		litViol, revViol int
		maxRatio         float64
		// rels holds every rev/lit ratio in task order so the reducer
		// can fold the mean's sum in exactly the historical order
		// (float addition is order-sensitive; tables must stay
		// byte-identical).
		rels []float64
	}
	res := make([]trialResult, len(cells)*cfg.Trials)
	rs := cfg.rows(t, len(cells))
	forEachCellTrialReduced(cfg, "E2", len(cells), func(ci, trial int, rng *rand.Rand) {
		c := cells[ci]
		r := &res[ci*cfg.Trials+trial]
		p := workload.DefaultTaskSetParams(c.n, c.u)
		p.PeriodMin, p.PeriodMax = 20, 600 // short periods make boundary ties likely
		ts := sched.SortDM(workload.TaskSet(rng, p))
		lit := sched.ResponseTimesFP(ts, sched.FPOptions{LiteralPaperRecurrence: true})
		rev := sched.ResponseTimesFP(ts, sched.FPOptions{})
		worst := simWorst(ts, cpusim.FPNonPreemptive, rng)
		for i := range ts {
			if lit[i] != timeunit.MaxTicks && worst[i] > lit[i] {
				r.litViol++
			}
			if rev[i] != timeunit.MaxTicks {
				if worst[i] > rev[i] {
					r.revViol++
				}
				if ratio := float64(worst[i]) / float64(rev[i]); ratio > r.maxRatio {
					r.maxRatio = ratio
				}
			}
			if lit[i] != timeunit.MaxTicks && rev[i] != timeunit.MaxTicks && lit[i] > 0 {
				r.rels = append(r.rels, float64(rev[i])/float64(lit[i]))
			}
		}
	}, func(ci int) {
		c := cells[ci]
		var litViol, revViol, cmpCount int
		maxRatio, sumRel := 0.0, 0.0
		for _, r := range res[ci*cfg.Trials : (ci+1)*cfg.Trials] {
			litViol += r.litViol
			revViol += r.revViol
			if r.maxRatio > maxRatio {
				maxRatio = r.maxRatio
			}
			for _, rel := range r.rels {
				sumRel += rel
				cmpCount++
			}
		}
		meanRel := 0.0
		if cmpCount > 0 {
			meanRel = sumRel / float64(cmpCount)
		}
		rs.Emit(ci, c.n, fmt.Sprintf("%.1f", c.u), litViol, revViol,
			fmt.Sprintf("%.3f", maxRatio), fmt.Sprintf("%.3f", meanRel))
	})
	return []*stats.Table{t}
}

// E3EDFDemand validates the Eq. 3 processor-demand test: sets it
// accepts never miss in simulation; its acceptance ratio falls with U
// when deadlines are constrained.
func E3EDFDemand(cfg Config) []*stats.Table {
	t := stats.NewTable("E3: EDF processor-demand test (Eq. 3) vs simulation",
		"U", "D/T ratio", "accepted", "sim misses in accepted", "mean checked points")
	ratios := []float64{1.0, 0.7}
	if cfg.Quick {
		ratios = []float64{0.7}
	}
	type cell struct {
		dr, u float64
	}
	var cells []cell
	for _, dr := range ratios {
		for _, u := range uGrid(cfg.Quick) {
			cells = append(cells, cell{dr, u})
		}
	}
	type trialResult struct {
		accepted, miss bool
		points         int
	}
	res := make([]trialResult, len(cells)*cfg.Trials)
	rs := cfg.rows(t, len(cells))
	forEachCellTrialReduced(cfg, "E3", len(cells), func(ci, trial int, rng *rand.Rand) {
		c := cells[ci]
		r := &res[ci*cfg.Trials+trial]
		p := workload.DefaultTaskSetParams(5, c.u)
		p.DeadlineRatioMin = c.dr
		ts := workload.TaskSet(rng, p)
		rep := sched.EDFFeasiblePreemptive(ts)
		if !rep.Feasible {
			return
		}
		r.accepted = true
		r.points = rep.Checked
		sim, err := cpusim.Run(ts, cpusim.Options{Policy: cpusim.EDFPreemptive, Horizon: 1 << 15})
		if err != nil {
			panic(err)
		}
		r.miss = sim.AnyMiss()
	}, func(ci int) {
		c := cells[ci]
		accepted, misses, points := 0, 0, 0
		for _, r := range res[ci*cfg.Trials : (ci+1)*cfg.Trials] {
			if !r.accepted {
				continue
			}
			accepted++
			points += r.points
			if r.miss {
				misses++
			}
		}
		mean := 0.0
		if accepted > 0 {
			mean = float64(points) / float64(accepted)
		}
		rs.Emit(ci, fmt.Sprintf("%.1f", c.u), fmt.Sprintf("%.1f", c.dr),
			stats.Ratio{K: accepted, N: cfg.Trials}, misses, fmt.Sprintf("%.1f", mean))
	})
	return []*stats.Table{t}
}

// E4NonPreemptiveEDFTests quantifies the pessimism George et al. remove
// from the Zheng–Shin test: acceptance ratios across a D/T sweep.
func E4NonPreemptiveEDFTests(cfg Config) []*stats.Table {
	t := stats.NewTable("E4: non-preemptive EDF feasibility — Eq. 4 (Zheng–Shin) vs Eq. 5 (George)",
		"D/T min", "U", "ZS accepts", "George accepts", "George-only", "disagreements vs sim")
	ratios := []float64{0.4, 0.6, 0.8, 1.0}
	if cfg.Quick {
		ratios = []float64{0.6, 1.0}
	}
	type cell struct {
		dr, u float64
	}
	var cells []cell
	for _, dr := range ratios {
		for _, u := range []float64{0.5, 0.7} {
			cells = append(cells, cell{dr, u})
		}
	}
	type trialResult struct {
		zs, g, miss bool
	}
	res := make([]trialResult, len(cells)*cfg.Trials)
	rs := cfg.rows(t, len(cells))
	forEachCellTrialReduced(cfg, "E4", len(cells), func(ci, trial int, rng *rand.Rand) {
		c := cells[ci]
		r := &res[ci*cfg.Trials+trial]
		p := workload.DefaultTaskSetParams(5, c.u)
		p.DeadlineRatioMin = c.dr
		p.PeriodMin, p.PeriodMax = 50, 2_000
		ts := workload.TaskSet(rng, p)
		r.zs = sched.EDFFeasibleNonPreemptiveZS(ts).Feasible
		r.g = sched.EDFFeasibleNonPreemptiveGeorge(ts).Feasible
		if r.g {
			sim, err := cpusim.Run(ts, cpusim.Options{Policy: cpusim.EDFNonPreemptive, Horizon: 1 << 15})
			if err != nil {
				panic(err)
			}
			r.miss = sim.AnyMiss()
		}
	}, func(ci int) {
		c := cells[ci]
		zsAcc, gAcc, gOnly, simViol := 0, 0, 0, 0
		for _, r := range res[ci*cfg.Trials : (ci+1)*cfg.Trials] {
			if r.zs {
				zsAcc++
			}
			if r.g {
				gAcc++
				if r.miss {
					simViol++
				}
			}
			if r.g && !r.zs {
				gOnly++
			}
		}
		rs.Emit(ci, fmt.Sprintf("%.1f", c.dr), fmt.Sprintf("%.1f", c.u),
			stats.Ratio{K: zsAcc, N: cfg.Trials},
			stats.Ratio{K: gAcc, N: cfg.Trials},
			gOnly, simViol)
	})
	return []*stats.Table{t}
}

// E5EDFResponseTimes validates Spuri's preemptive and George's
// non-preemptive EDF response-time analyses against simulation.
func E5EDFResponseTimes(cfg Config) []*stats.Table {
	t := stats.NewTable("E5: EDF response-time analyses (Eqs. 6–10) vs simulation",
		"mode", "U", "violations", "max sim/bound", "mean sim/bound")
	type cell struct {
		mode string
		u    float64
	}
	var cells []cell
	for _, mode := range []string{"preemptive", "non-preemptive"} {
		for _, u := range uGrid(cfg.Quick) {
			cells = append(cells, cell{mode, u})
		}
	}
	type trialResult struct {
		violations int
		// ratios holds every finite sim/bound ratio in task order (see
		// E2's trialResult for why the reducer folds them in order).
		ratios []float64
	}
	res := make([]trialResult, len(cells)*cfg.Trials)
	rs := cfg.rows(t, len(cells))
	forEachCellTrialReduced(cfg, "E5", len(cells), func(ci, trial int, rng *rand.Rand) {
		c := cells[ci]
		r := &res[ci*cfg.Trials+trial]
		p := workload.DefaultTaskSetParams(4, c.u)
		p.DeadlineRatioMin = 0.8
		p.PeriodMin, p.PeriodMax = 50, 1_500
		ts := workload.TaskSet(rng, p)
		var bounds []sched.Ticks
		var pol cpusim.Policy
		if c.mode == "preemptive" {
			bounds = sched.ResponseTimesEDFPreemptive(ts, sched.EDFOptions{})
			pol = cpusim.EDFPreemptive
		} else {
			bounds = sched.ResponseTimesEDFNonPreemptive(ts, sched.EDFOptions{})
			pol = cpusim.EDFNonPreemptive
		}
		worst := simWorst(ts, pol, rng)
		for i := range ts {
			if bounds[i] == timeunit.MaxTicks {
				continue
			}
			if worst[i] > bounds[i] {
				r.violations++
			}
			r.ratios = append(r.ratios, float64(worst[i])/float64(bounds[i]))
		}
	}, func(ci int) {
		c := cells[ci]
		violations, count := 0, 0
		maxR, sumR := 0.0, 0.0
		for _, r := range res[ci*cfg.Trials : (ci+1)*cfg.Trials] {
			violations += r.violations
			for _, ratio := range r.ratios {
				count++
				if ratio > maxR {
					maxR = ratio
				}
				sumR += ratio
			}
		}
		mean := 0.0
		if count > 0 {
			mean = sumR / float64(count)
		}
		rs.Emit(ci, c.mode, fmt.Sprintf("%.1f", c.u), violations,
			fmt.Sprintf("%.3f", maxR), fmt.Sprintf("%.3f", mean))
	})
	return []*stats.Table{t}
}
