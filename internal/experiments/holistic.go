package experiments

import (
	"fmt"
	"math/rand"

	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/holistic"
	"profirt/internal/sched"
	"profirt/internal/stats"
)

// e13Config builds the reference transaction system for E13: two
// masters whose host load and bus traffic are coupled through the
// holistic fixed point.
func e13Config(dispatcher ap.Policy, hostScale float64) holistic.Config {
	tx := func(name string, cGen, period, ch, dMsg, delivery, deadline core.Ticks) holistic.Transaction {
		c := core.Ticks(float64(cGen) * hostScale)
		if c < 1 {
			c = 1
		}
		d := core.Ticks(float64(delivery) * hostScale)
		if d < 1 {
			d = 1
		}
		return holistic.Transaction{
			Name: name,
			Generation: sched.Task{
				Name: name + ".gen", C: c, D: period / 2, T: period,
			},
			Stream:   core.Stream{Name: name + ".msg", Ch: ch, D: dMsg},
			Delivery: d,
			Deadline: deadline,
		}
	}
	return holistic.Config{
		TTR:       1_000,
		TokenPass: 70,
		Masters: []holistic.MasterSpec{
			{
				Name:       "plc",
				Dispatcher: dispatcher,
				Transactions: []holistic.Transaction{
					tx("pressure", 400, 20_000, 400, 10_000, 200, 16_000),
					tx("valve", 600, 40_000, 450, 20_000, 300, 30_000),
					tx("logging", 900, 80_000, 500, 60_000, 500, 70_000),
				},
			},
			{
				Name:       "drive",
				Dispatcher: dispatcher,
				LongestLow: 600,
				Transactions: []holistic.Transaction{
					tx("axis", 500, 30_000, 500, 15_000, 250, 24_000),
				},
			},
		},
	}
}

// E13Holistic characterises the coupled end-to-end analysis of
// Secs. 4.1–4.2: how the E = g + Q + C + d breakdown of the tightest
// transaction shifts as host load scales, per dispatcher, and how many
// fixed-point rounds the coupling needs.
func E13Holistic(cfg Config) []*stats.Table {
	t := stats.NewTable("E13: holistic end-to-end analysis (Secs. 4.1–4.2)",
		"dispatcher", "host scale", "iterations", "g", "Q", "C", "d", "E total", "schedulable")
	scales := []float64{1, 4, 8, 12}
	if cfg.Quick {
		scales = []float64{1, 8}
	}
	type cell struct {
		pol   ap.Policy
		scale float64
	}
	var cells []cell
	for _, pol := range []ap.Policy{ap.FCFS, ap.DM, ap.EDF} {
		for _, sc := range scales {
			cells = append(cells, cell{pol, sc})
		}
	}
	rs := cfg.rows(t, len(cells))
	forEachCell(cfg, "E13", len(cells), func(ci int, _ *rand.Rand) {
		c := cells[ci]
		hcfg := e13Config(c.pol, c.scale)
		hcfg.Cache = cfg.Cache
		res, err := holistic.Analyze(hcfg)
		if err != nil {
			panic(err)
		}
		b := res.Transactions[0].Breakdown // tightest: pressure
		rs.Emit(ci, c.pol.String(), fmt.Sprintf("%.0fx", c.scale), res.Iterations,
			b.Generation, b.Queuing, b.Cycle, b.Delivery,
			b.Total(), res.Schedulable)
	})
	t.Note = "g grows with host load, which feeds message jitter (Sec. 4.1) and delivery jitter; the fixed point propagates all couplings"
	return []*stats.Table{t}
}
