package experiments

import (
	"fmt"
	"math/rand"

	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/profibus"
	"profirt/internal/stats"
	"profirt/internal/workload"
)

// E6TokenCycleBound validates Eqs. 13–14: the observed token rotation
// never exceeds T_TR + T_del (with per-hop overheads), across ring
// sizes, plus the Section 3.3 overrun-cascade scenario.
func E6TokenCycleBound(cfg Config) []*stats.Table {
	t := stats.NewTable("E6: token rotation vs T_cycle = T_TR + T_del (Eqs. 13–14)",
		"masters", "TTR", "worst TRR (sim)", "T_cycle (Eq.14)", "refined", "ratio sim/Eq.14", "violations")
	sizes := []int{2, 4, 6}
	if cfg.Quick {
		sizes = []int{2, 4}
	}
	rows := make([][]any, len(sizes))
	forEachCell(cfg, "E6", len(sizes), func(ci int, rng *rand.Rand) {
		masters := sizes[ci]
		var worst, bound, refined core.Ticks
		violations := 0
		p := workload.DefaultStreamSetParams()
		p.Masters = masters
		p.StreamsPerMaster = 2
		p.LowPriorityLoad = true
		p.TTR = 8_000
		for trial := 0; trial < cfg.Trials; trial++ {
			net, sim := workload.StreamSet(rng, p)
			res, err := profibus.Simulate(sim)
			if err != nil {
				panic(err)
			}
			b := net.TokenCycle()
			r := net.RefinedTokenCycle()
			if res.WorstTRR() > worst {
				worst = res.WorstTRR()
			}
			if b > bound {
				bound = b
			}
			if r > refined {
				refined = r
			}
			if res.WorstTRR() > b {
				violations++
			}
		}
		rows[ci] = []any{masters, p.TTR, worst, bound, refined,
			ratioCell(float64(worst), float64(bound)), violations}
	})
	addRows(t, rows)

	// Section 3.3 scenario: an idle rotation, then master 1 overruns
	// with its longest (low-priority) cycle and every follower uses the
	// late token for one high-priority message.
	t2 := stats.NewTable("E6b: Sec. 3.3 overrun cascade",
		"quantity", "value (bit times)")
	net, sim := workload.DCCSCell(ap.FCFS, 3_000)
	res, err := profibus.Simulate(sim)
	if err != nil {
		panic(err)
	}
	t2.AddRow("TTR", net.TTR)
	t2.AddRow("T_del (Eq. 13)", net.TokenDelay())
	t2.AddRow("T_cycle (Eq. 14)", net.TokenCycle())
	t2.AddRow("refined T_cycle", net.RefinedTokenCycle())
	t2.AddRow("worst simulated TRR", res.WorstTRR())
	var overruns, late int64
	for _, m := range res.PerMaster {
		overruns += m.TTHOverruns
		late += m.LateTokens
	}
	t2.AddRow("TTH overruns observed", overruns)
	t2.AddRow("late tokens observed", late)
	return []*stats.Table{t, t2}
}

// E7FCFSBound validates Eq. 11 (R = nh·T_cycle) against simulation on
// schedulable networks across a masters × streams grid.
func E7FCFSBound(cfg Config) []*stats.Table {
	t := stats.NewTable("E7: FCFS bound R = nh·T_cycle (Eq. 11) vs simulation",
		"masters", "streams/master", "schedulable", "max sim/bound", "violations", "misses")
	grid := []struct{ m, s int }{{2, 2}, {2, 4}, {4, 2}, {4, 4}}
	if cfg.Quick {
		grid = grid[:2]
	}
	rows := make([][]any, len(grid))
	forEachCell(cfg, "E7", len(grid), func(ci int, rng *rand.Rand) {
		g := grid[ci]
		p := workload.DefaultStreamSetParams()
		p.Masters, p.StreamsPerMaster = g.m, g.s
		p.TTR = 4_000
		p.PeriodMin, p.PeriodMax = 60_000, 200_000
		p.DeadlineRatioMin = 0.8
		schedulable, violations, misses := 0, 0, 0
		maxRatio := 0.0
		for trial := 0; trial < cfg.Trials; trial++ {
			net, sim := workload.StreamSet(rng, p)
			ok, verdicts := core.FCFSSchedulable(net)
			if !ok {
				continue
			}
			schedulable++
			res, err := profibus.Simulate(sim)
			if err != nil {
				panic(err)
			}
			vi := 0
			for _, m := range res.PerMaster {
				for _, st := range m.PerStream {
					bound := verdicts[vi].R
					vi++
					if st.WorstResponse > bound {
						violations++
					}
					if st.Missed > 0 {
						misses++
					}
					if r := float64(st.WorstResponse) / float64(bound); r > maxRatio {
						maxRatio = r
					}
				}
			}
		}
		rows[ci] = []any{g.m, g.s, stats.Ratio{K: schedulable, N: cfg.Trials},
			fmt.Sprintf("%.3f", maxRatio), violations, misses}
	})
	addRows(t, rows)
	return []*stats.Table{t}
}

// E8TTRSetting sweeps T_TR around the Eq. 15 bound on the DCCS cell:
// at or below the bound the analysis accepts and the simulation is
// miss-free; above it the analysis rejects (the simulation may still be
// miss-free — Eq. 15 is sufficient, not necessary).
func E8TTRSetting(cfg Config) []*stats.Table {
	t := stats.NewTable("E8: setting T_TR by Eq. 15 (DCCS cell)",
		"TTR / bound", "TTR", "Eq.12 schedulable", "sim misses", "worst response / worst deadline")
	// Compute the bound on the cell with a placeholder TTR.
	netProbe, _ := workload.DCCSCell(ap.FCFS, 1_000)
	bound, err := core.MaxTTR(netProbe)
	if err != nil {
		panic(fmt.Sprintf("E8: DCCS cell has no feasible TTR: %v", err))
	}
	factors := []float64{0.5, 0.9, 1.0, 1.2, 1.5, 2.0}
	if cfg.Quick {
		factors = []float64{0.5, 1.0, 2.0}
	}
	rows := make([][]any, len(factors))
	forEachCell(cfg, "E8", len(factors), func(ci int, _ *rand.Rand) {
		f := factors[ci]
		ttr := core.Ticks(float64(bound) * f)
		if ttr < 1 {
			ttr = 1
		}
		net, sim := workload.DCCSCell(ap.FCFS, ttr)
		ok, verdicts := core.FCFSSchedulable(net)
		res, err := profibus.Simulate(sim)
		if err != nil {
			panic(err)
		}
		misses := 0
		var worstR, worstD core.Ticks
		vi := 0
		for mi, m := range res.PerMaster {
			for si, st := range m.PerStream {
				if !sim.Masters[mi].Streams[si].High {
					continue // low-priority streams have no Eq. 12 verdict
				}
				if st.WorstResponse > worstR {
					worstR = st.WorstResponse
					worstD = verdicts[vi].D
				}
				misses += int(st.Missed)
				vi++
			}
		}
		rows[ci] = []any{fmt.Sprintf("%.1f", f), ttr, ok, misses,
			fmt.Sprintf("%v / %v", worstR, worstD)}
	})
	addRows(t, rows)
	t.Note = fmt.Sprintf("Eq. 15 bound for the cell: TTR ≤ %d bit times", bound)
	return []*stats.Table{t}
}
