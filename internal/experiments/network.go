package experiments

import (
	"fmt"
	"math/rand"

	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/profibus"
	"profirt/internal/stats"
	"profirt/internal/workload"
)

// E6TokenCycleBound validates Eqs. 13–14: the observed token rotation
// never exceeds T_TR + T_del (with per-hop overheads), across ring
// sizes, plus the Section 3.3 overrun-cascade scenario.
func E6TokenCycleBound(cfg Config) []*stats.Table {
	t := stats.NewTable("E6: token rotation vs T_cycle = T_TR + T_del (Eqs. 13–14)",
		"masters", "TTR", "worst TRR (sim)", "T_cycle (Eq.14)", "refined", "ratio sim/Eq.14", "violations")
	sizes := []int{2, 4, 6}
	if cfg.Quick {
		sizes = []int{2, 4}
	}
	const e6TTR = core.Ticks(8_000)
	type trialResult struct {
		worst, bound, refined core.Ticks
		violation             bool
	}
	res := make([]trialResult, len(sizes)*cfg.Trials)
	rs := cfg.rows(t, len(sizes))
	forEachCellTrialReduced(cfg, "E6", len(sizes), func(ci, trial int, rng *rand.Rand) {
		r := &res[ci*cfg.Trials+trial]
		p := workload.DefaultStreamSetParams()
		p.Masters = sizes[ci]
		p.StreamsPerMaster = 2
		p.LowPriorityLoad = true
		p.TTR = e6TTR
		net, sim := workload.StreamSet(rng, p)
		sr, err := profibus.Simulate(sim)
		if err != nil {
			panic(err)
		}
		r.worst = sr.WorstTRR()
		r.bound = net.TokenCycle()
		r.refined = net.RefinedTokenCycle()
		r.violation = r.worst > r.bound
	}, func(ci int) {
		var worst, bound, refined core.Ticks
		violations := 0
		for _, r := range res[ci*cfg.Trials : (ci+1)*cfg.Trials] {
			if r.worst > worst {
				worst = r.worst
			}
			if r.bound > bound {
				bound = r.bound
			}
			if r.refined > refined {
				refined = r.refined
			}
			if r.violation {
				violations++
			}
		}
		rs.Emit(ci, sizes[ci], e6TTR, worst, bound, refined,
			ratioCell(float64(worst), float64(bound)), violations)
	})

	// Section 3.3 scenario: an idle rotation, then master 1 overruns
	// with its longest (low-priority) cycle and every follower uses the
	// late token for one high-priority message.
	t2 := stats.NewTable("E6b: Sec. 3.3 overrun cascade",
		"quantity", "value (bit times)")
	net, sim := workload.DCCSCell(ap.FCFS, 3_000)
	cascade, err := profibus.Simulate(sim)
	if err != nil {
		panic(err)
	}
	t2.AddRow("TTR", net.TTR)
	t2.AddRow("T_del (Eq. 13)", net.TokenDelay())
	t2.AddRow("T_cycle (Eq. 14)", net.TokenCycle())
	t2.AddRow("refined T_cycle", net.RefinedTokenCycle())
	t2.AddRow("worst simulated TRR", cascade.WorstTRR())
	var overruns, late int64
	for _, m := range cascade.PerMaster {
		overruns += m.TTHOverruns
		late += m.LateTokens
	}
	t2.AddRow("TTH overruns observed", overruns)
	t2.AddRow("late tokens observed", late)
	return []*stats.Table{t, t2}
}

// E7FCFSBound validates Eq. 11 (R = nh·T_cycle) against simulation on
// schedulable networks across a masters × streams grid.
func E7FCFSBound(cfg Config) []*stats.Table {
	t := stats.NewTable("E7: FCFS bound R = nh·T_cycle (Eq. 11) vs simulation",
		"masters", "streams/master", "schedulable", "max sim/bound", "violations", "misses")
	grid := []struct{ m, s int }{{2, 2}, {2, 4}, {4, 2}, {4, 4}}
	if cfg.Quick {
		grid = grid[:2]
	}
	type trialResult struct {
		schedulable        bool
		violations, misses int
		maxRatio           float64
	}
	res := make([]trialResult, len(grid)*cfg.Trials)
	rs := cfg.rows(t, len(grid))
	forEachCellTrialReduced(cfg, "E7", len(grid), func(ci, trial int, rng *rand.Rand) {
		g := grid[ci]
		r := &res[ci*cfg.Trials+trial]
		p := workload.DefaultStreamSetParams()
		p.Masters, p.StreamsPerMaster = g.m, g.s
		p.TTR = 4_000
		p.PeriodMin, p.PeriodMax = 60_000, 200_000
		p.DeadlineRatioMin = 0.8
		net, sim := workload.StreamSet(rng, p)
		ok, verdicts := core.FCFSSchedulable(net)
		if !ok {
			return
		}
		r.schedulable = true
		sr, err := profibus.Simulate(sim)
		if err != nil {
			panic(err)
		}
		vi := 0
		for _, m := range sr.PerMaster {
			for _, st := range m.PerStream {
				bound := verdicts[vi].R
				vi++
				if st.WorstResponse > bound {
					r.violations++
				}
				if st.Missed > 0 {
					r.misses++
				}
				if ratio := float64(st.WorstResponse) / float64(bound); ratio > r.maxRatio {
					r.maxRatio = ratio
				}
			}
		}
	}, func(ci int) {
		g := grid[ci]
		schedulable, violations, misses := 0, 0, 0
		maxRatio := 0.0
		for _, r := range res[ci*cfg.Trials : (ci+1)*cfg.Trials] {
			if r.schedulable {
				schedulable++
			}
			violations += r.violations
			misses += r.misses
			if r.maxRatio > maxRatio {
				maxRatio = r.maxRatio
			}
		}
		rs.Emit(ci, g.m, g.s, stats.Ratio{K: schedulable, N: cfg.Trials},
			fmt.Sprintf("%.3f", maxRatio), violations, misses)
	})
	return []*stats.Table{t}
}

// E8TTRSetting sweeps T_TR around the Eq. 15 bound on the DCCS cell:
// at or below the bound the analysis accepts and the simulation is
// miss-free; above it the analysis rejects (the simulation may still be
// miss-free — Eq. 15 is sufficient, not necessary).
func E8TTRSetting(cfg Config) []*stats.Table {
	t := stats.NewTable("E8: setting T_TR by Eq. 15 (DCCS cell)",
		"TTR / bound", "TTR", "Eq.12 schedulable", "sim misses", "worst response / worst deadline")
	// Compute the bound on the cell with a placeholder TTR.
	netProbe, _ := workload.DCCSCell(ap.FCFS, 1_000)
	bound, err := core.MaxTTR(netProbe)
	if err != nil {
		panic(fmt.Sprintf("E8: DCCS cell has no feasible TTR: %v", err))
	}
	factors := []float64{0.5, 0.9, 1.0, 1.2, 1.5, 2.0}
	if cfg.Quick {
		factors = []float64{0.5, 1.0, 2.0}
	}
	rs := cfg.rows(t, len(factors))
	forEachCell(cfg, "E8", len(factors), func(ci int, _ *rand.Rand) {
		f := factors[ci]
		ttr := core.Ticks(float64(bound) * f)
		if ttr < 1 {
			ttr = 1
		}
		net, sim := workload.DCCSCell(ap.FCFS, ttr)
		ok, verdicts := core.FCFSSchedulable(net)
		res, err := profibus.Simulate(sim)
		if err != nil {
			panic(err)
		}
		misses := 0
		var worstR, worstD core.Ticks
		vi := 0
		for mi, m := range res.PerMaster {
			for si, st := range m.PerStream {
				if !sim.Masters[mi].Streams[si].High {
					continue // low-priority streams have no Eq. 12 verdict
				}
				if st.WorstResponse > worstR {
					worstR = st.WorstResponse
					worstD = verdicts[vi].D
				}
				misses += int(st.Missed)
				vi++
			}
		}
		rs.Emit(ci, fmt.Sprintf("%.1f", f), ttr, ok, misses,
			fmt.Sprintf("%v / %v", worstR, worstD))
	})
	t.Note = fmt.Sprintf("Eq. 15 bound for the cell: TTR ≤ %d bit times", bound)
	return []*stats.Table{t}
}
