package experiments

import (
	"fmt"
	"math/rand"

	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/memo"
	"profirt/internal/profibus"
	"profirt/internal/stats"
	"profirt/internal/timeunit"
	"profirt/internal/workload"
)

// msgParams returns the stream-set shape shared by E9–E11.
func msgParams(dispatcher ap.Policy) workload.StreamSetParams {
	p := workload.DefaultStreamSetParams()
	p.Masters = 2
	p.StreamsPerMaster = 4
	p.TTR = 4_000
	p.PeriodMin, p.PeriodMax = 80_000, 300_000
	p.DeadlineRatioMin = 0.9
	p.Dispatcher = dispatcher
	return p
}

// E9DMMessageRTA compares the paper-literal Eq. 16 with the revised
// conservative variant against simulation under DM dispatching.
func E9DMMessageRTA(cfg Config) []*stats.Table {
	t := stats.NewTable("E9: DM message RTA (Eq. 16) — literal vs revised vs simulation",
		"jitter", "streams", "literal violations", "revised violations", "max sim/revised", "mean revised/literal")
	t.Note = "a literal violation = simulated response above the paper's Eq. 16 bound (its optimistic corner cases)"
	jitters := []core.Ticks{0, 2_000}
	type trialResult struct {
		litViol, revViol, streams int
		maxRatio                  float64
		// rels holds every rev/lit ratio in stream order so the reducer
		// can fold the mean's sum in exactly the historical order (see
		// E2's trialResult).
		rels []float64
	}
	res := make([]trialResult, len(jitters)*cfg.Trials)
	rs := cfg.rows(t, len(jitters))
	forEachCellTrialReduced(cfg, "E9", len(jitters), func(ci, trial int, rng *rand.Rand) {
		r := &res[ci*cfg.Trials+trial]
		p := msgParams(ap.DM)
		p.MaxJitter = jitters[ci]
		net, sim := workload.StreamSet(rng, p)
		tc := net.TokenCycle()
		okRev, _ := memo.DMSchedulable(cfg.Cache, net, core.DMOptions{})
		if !okRev {
			return
		}
		simres, err := profibus.Simulate(sim)
		if err != nil {
			panic(err)
		}
		for mi, m := range net.Masters {
			lit := memo.DMResponseTimes(cfg.Cache, m.High, tc, core.DMOptions{Literal: true})
			rev := memo.DMResponseTimes(cfg.Cache, m.High, tc, core.DMOptions{
				BlockingFromLowPriority: m.LongestLow > 0,
			})
			for si := range m.High {
				st := simres.PerMaster[mi].PerStream[si]
				r.streams++
				if lit[si] != timeunit.MaxTicks && st.WorstResponse > lit[si] {
					r.litViol++
				}
				if rev[si] != timeunit.MaxTicks {
					if st.WorstResponse > rev[si] {
						r.revViol++
					}
					if ratio := float64(st.WorstResponse) / float64(rev[si]); ratio > r.maxRatio {
						r.maxRatio = ratio
					}
				}
				if lit[si] != timeunit.MaxTicks && rev[si] != timeunit.MaxTicks && lit[si] > 0 {
					r.rels = append(r.rels, float64(rev[si])/float64(lit[si]))
				}
			}
		}
	}, func(ci int) {
		litViol, revViol, streams, cmp := 0, 0, 0, 0
		maxRatio, sumRel := 0.0, 0.0
		for _, r := range res[ci*cfg.Trials : (ci+1)*cfg.Trials] {
			litViol += r.litViol
			revViol += r.revViol
			streams += r.streams
			if r.maxRatio > maxRatio {
				maxRatio = r.maxRatio
			}
			for _, rel := range r.rels {
				sumRel += rel
				cmp++
			}
		}
		meanRel := 0.0
		if cmp > 0 {
			meanRel = sumRel / float64(cmp)
		}
		rs.Emit(ci, jitters[ci], streams, litViol, revViol,
			fmt.Sprintf("%.3f", maxRatio), fmt.Sprintf("%.3f", meanRel))
	})
	return []*stats.Table{t}
}

// E10EDFMessageRTA validates Eqs. 17–18 against simulation under EDF
// dispatching, and quantifies the gain from the refined T_cycle.
func E10EDFMessageRTA(cfg Config) []*stats.Table {
	t := stats.NewTable("E10: EDF message RTA (Eqs. 17–18) vs simulation + refined T_cycle ablation",
		"jitter", "streams", "violations", "max sim/bound", "mean refined/literal bound")
	jitters := []core.Ticks{0, 2_000}
	type trialResult struct {
		violations, streams int
		maxRatio            float64
		// rels holds every refined/literal-bound ratio in stream order
		// (historical fold order; see E2's trialResult).
		rels []float64
	}
	res := make([]trialResult, len(jitters)*cfg.Trials)
	rs := cfg.rows(t, len(jitters))
	forEachCellTrialReduced(cfg, "E10", len(jitters), func(ci, trial int, rng *rand.Rand) {
		r := &res[ci*cfg.Trials+trial]
		p := msgParams(ap.EDF)
		p.MaxJitter = jitters[ci]
		p.LowPriorityLoad = true
		net, sim := workload.StreamSet(rng, p)
		ok, verdicts := memo.EDFSchedulableNet(cfg.Cache, net, core.EDFOptions{})
		if !ok {
			return
		}
		simres, err := profibus.Simulate(sim)
		if err != nil {
			panic(err)
		}
		// Refined-T_cycle ablation: recompute bounds with the
		// tighter rotation bound.
		tcRef := net.RefinedTokenCycle()
		vi := 0
		for mi, m := range net.Masters {
			ref := memo.EDFResponseTimes(cfg.Cache, m.High, tcRef, core.EDFOptions{
				BlockingFromLowPriority: m.LongestLow > 0,
			})
			for si := range m.High {
				st := simres.PerMaster[mi].PerStream[si]
				bound := verdicts[vi].R
				vi++
				r.streams++
				if st.WorstResponse > bound {
					r.violations++
				}
				if ratio := float64(st.WorstResponse) / float64(bound); ratio > r.maxRatio {
					r.maxRatio = ratio
				}
				if ref[si] != timeunit.MaxTicks && bound > 0 {
					r.rels = append(r.rels, float64(ref[si])/float64(bound))
				}
			}
		}
	}, func(ci int) {
		violations, streams, cmp := 0, 0, 0
		maxRatio, sumRel := 0.0, 0.0
		for _, r := range res[ci*cfg.Trials : (ci+1)*cfg.Trials] {
			violations += r.violations
			streams += r.streams
			if r.maxRatio > maxRatio {
				maxRatio = r.maxRatio
			}
			for _, rel := range r.rels {
				sumRel += rel
				cmp++
			}
		}
		meanRel := 0.0
		if cmp > 0 {
			meanRel = sumRel / float64(cmp)
		}
		rs.Emit(ci, jitters[ci], streams, violations,
			fmt.Sprintf("%.3f", maxRatio), fmt.Sprintf("%.3f", meanRel))
	})
	return []*stats.Table{t}
}

// E11PolicyComparison reproduces the paper's headline conclusion: as
// deadlines tighten, priority-based AP dispatching (DM/EDF) keeps
// stream sets schedulable long after FCFS gives up, and the simulation
// agrees (fewer misses).
func E11PolicyComparison(cfg Config) []*stats.Table {
	t := stats.NewTable("E11: schedulable fraction as deadlines tighten (headline claim)",
		"deadline scale", "FCFS Eq.11", "DM Eq.16(rev)", "EDF Eq.17/18",
		"sim miss-free FCFS", "sim miss-free DM", "sim miss-free EDF")
	scales := []float64{1.0, 0.6, 0.4, 0.3, 0.25, 0.2, 0.15, 0.1}
	if cfg.Quick {
		scales = []float64{1.0, 0.4, 0.2}
	}
	p := msgParams(ap.FCFS)
	p.StreamsPerMaster = 4
	// Pre-draw the base scenarios from a dedicated RNG so each scale
	// sees identical traffic; the scale cells then only read them
	// (ScaleDeadlines and WithDispatcher copy before mutating).
	type scenario struct {
		net core.Network
		cfg profibus.Config
	}
	rng := cellRNG(cfg, "E11/base", 0)
	base := make([]scenario, cfg.Trials)
	for i := range base {
		n, c := workload.StreamSet(rng, p)
		base[i] = scenario{n, c}
	}
	rs := cfg.rows(t, len(scales))
	forEachCell(cfg, "E11", len(scales), func(ci int, _ *rand.Rand) {
		scale := scales[ci]
		var accF, accD, accE, okF, okD, okE int
		for _, sc := range base {
			net, sim := workload.ScaleDeadlines(sc.net, sc.cfg, scale)
			if ok, _ := core.FCFSSchedulable(net); ok {
				accF++
			}
			if ok, _ := memo.DMSchedulable(cfg.Cache, net, core.DMOptions{}); ok {
				accD++
			}
			if ok, _ := memo.EDFSchedulableNet(cfg.Cache, net, core.EDFOptions{}); ok {
				accE++
			}
			for _, pol := range []ap.Policy{ap.FCFS, ap.DM, ap.EDF} {
				res, err := profibus.Simulate(workload.WithDispatcher(sim, pol))
				if err != nil {
					panic(err)
				}
				if !res.AnyMiss() {
					switch pol {
					case ap.FCFS:
						okF++
					case ap.DM:
						okD++
					case ap.EDF:
						okE++
					}
				}
			}
		}
		n := len(base)
		rs.Emit(ci, fmt.Sprintf("%.2f", scale),
			stats.Ratio{K: accF, N: n}, stats.Ratio{K: accD, N: n}, stats.Ratio{K: accE, N: n},
			stats.Ratio{K: okF, N: n}, stats.Ratio{K: okD, N: n}, stats.Ratio{K: okE, N: n})
	})
	return []*stats.Table{t}
}

// E12JitterEndToEnd sweeps release jitter on a reference master and
// reports the DM/EDF bound growth plus an end-to-end decomposition
// (Sec. 4.2) for the tightest stream.
func E12JitterEndToEnd(cfg Config) []*stats.Table {
	t := stats.NewTable("E12: release-jitter impact on Eq. 16/17 bounds",
		"J/T", "DM bound (tightest)", "DM bound (loosest)", "EDF bound (tightest)", "EDF bound (loosest)")
	const tc = 2_500
	base := []core.Stream{
		{Name: "fast", Ch: 300, D: 20_000, T: 40_000},
		{Name: "mid", Ch: 300, D: 60_000, T: 120_000},
		{Name: "slow", Ch: 300, D: 150_000, T: 300_000},
	}
	fractions := []float64{0, 0.1, 0.2, 0.3, 0.5}
	if cfg.Quick {
		fractions = []float64{0, 0.2, 0.5}
	}
	rs := cfg.rows(t, len(fractions))
	forEachCell(cfg, "E12", len(fractions), func(ci int, _ *rand.Rand) {
		f := fractions[ci]
		streams := append([]core.Stream(nil), base...)
		for i := range streams {
			streams[i].J = core.Ticks(f * float64(streams[i].T))
		}
		dm := memo.DMResponseTimes(cfg.Cache, streams, tc, core.DMOptions{})
		edf := memo.EDFResponseTimes(cfg.Cache, streams, tc, core.EDFOptions{})
		rs.Emit(ci, fmt.Sprintf("%.1f", f), dm[0], dm[2], edf[0], edf[2])
	})

	t2 := stats.NewTable("E12b: end-to-end decomposition E = g + Q + C + d (tightest stream, J/T = 0.2)",
		"component", "bit times")
	streams := append([]core.Stream(nil), base...)
	for i := range streams {
		streams[i].J = core.Ticks(0.2 * float64(streams[i].T))
	}
	dm := memo.DMResponseTimes(cfg.Cache, streams, tc, core.DMOptions{})
	gen := streams[0].J // g doubles as the release-jitter bound (Sec. 4.1)
	e := core.Compose(gen, dm[0], streams[0].Ch, 500)
	t2.AddRow("generation g", e.Generation)
	t2.AddRow("queuing Q", e.Queuing)
	t2.AddRow("cycle C", e.Cycle)
	t2.AddRow("delivery d", e.Delivery)
	t2.AddRow("total E", e.Total())
	return []*stats.Table{t, t2}
}
