package experiments

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"sync/atomic"

	"profirt/internal/pool"
)

// The experiment drivers are embarrassingly parallel across grid cells
// (one cell = one parameter combination), but naive parallelisation
// would destroy reproducibility: the seed harness threaded a single
// *rand.Rand through the nested grid loops, so any reordering changed
// every draw downstream. The pool below restores determinism by
// construction: each cell owns an RNG seeded from
//
//	Seed ⊕ FNV-1a(experimentID, cellIndex)
//
// so a cell's random stream depends only on (Seed, experiment, cell) —
// never on scheduling order — and the drivers write results into
// per-cell slots that are reassembled in index order afterwards.
// Tables are therefore byte-identical for any Parallelism value.

// cellSeed derives the deterministic RNG seed for one grid cell.
func cellSeed(seed int64, experimentID string, cell int) int64 {
	h := fnv.New64a()
	h.Write([]byte(experimentID))
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(cell))
	h.Write(idx[:])
	return seed ^ int64(h.Sum64())
}

// cellRNG builds the RNG a cell job must use for all its draws.
func cellRNG(cfg Config, experimentID string, cell int) *rand.Rand {
	return rand.New(rand.NewSource(cellSeed(cfg.Seed, experimentID, cell)))
}

// Auto-disable thresholds armed on any cache threaded into an
// experiments run: most drivers analyse per-trial random stream sets,
// so the hit rate on those grids is near zero and every lookup would
// pay hashing plus a map probe for nothing. Once the cache has seen
// cacheAutoDisableLookups lookups of the current arming window at a
// hit rate below cacheAutoDisableHitRate it latches off and the
// wrappers bypass it before any key work. Workloads with real reuse
// (repeated cells, warm reruns, the holistic whole-result hits) clear
// the rate bar and keep their cache.
const (
	cacheAutoDisableLookups = 512
	cacheAutoDisableHitRate = 0.05
)

// runJobs is the pool entry shared by the cell and trial fan-outs: it
// evaluates fn(i) for every i in [0, n) on the configured pool and
// streams one ProgressEvent per completed job to cfg.Progress when set.
func runJobs(cfg Config, experimentID string, n int, fn func(i int)) {
	// Armed before the first job hashes a key. Arming is scoped per
	// fan-out: each submission opens a fresh hit-rate window and clears
	// any latch a previous cold sweep tripped, so a shared long-lived
	// engine cache keeps serving hot submitters after a cold one.
	cfg.Cache.ArmAutoDisable(cacheAutoDisableLookups, cacheAutoDisableHitRate)
	prog := cfg.Progress
	if prog == nil {
		pool.Do(cfg.Context, cfg.Pool, cfg.Parallelism, n, fn)
		return
	}
	var done atomic.Int64
	pool.Do(cfg.Context, cfg.Pool, cfg.Parallelism, n, func(i int) {
		fn(i)
		prog(ProgressEvent{Experiment: experimentID, Done: int(done.Add(1)), Total: n})
	})
}

// forEachCell evaluates fn(cell, rng) for every cell in [0, n) on a
// bounded worker pool of cfg.Parallelism goroutines (0 meaning
// GOMAXPROCS, per pool.Run) and blocks until all cells are done. Each
// invocation receives a fresh RNG from cellRNG, so fn must take all
// randomness from the rng argument. fn runs concurrently with other
// cells: it must only write to state owned by its cell (typically a
// preallocated per-cell result slot).
func forEachCell(cfg Config, experimentID string, n int, fn func(cell int, rng *rand.Rand)) {
	runJobs(cfg, experimentID, n, func(cell int) {
		fn(cell, cellRNG(cfg, experimentID, cell))
	})
}

// Trial-level sharding. Cells with many trials (E1–E5 run 40 each at
// full size) dominate wall-clock when the grid has fewer cells than
// cores; splitting each trial into its own pool job restores scaling.
// Determinism follows the same construction as cells: a sharded trial
// owns an RNG seeded
//
//	cellSeed(Seed, experimentID, cell) ⊕ FNV-1a(trial)
//
// so its draws depend only on (Seed, experiment, cell, trial), never on
// scheduling order, and drivers write results into per-trial slots that
// are reduced in trial order afterwards.

// defaultTrialShardMin is the trial count at which cells shard when
// Config.TrialShardMin is zero: full-size runs (40 trials) shard,
// quick runs (8) keep the historical shared-RNG draw sequence — the
// golden -quick tables are pinned to it.
const defaultTrialShardMin = 16

// shardTrials reports whether cells split into per-trial sub-jobs.
func (cfg Config) shardTrials() bool {
	min := cfg.TrialShardMin
	if min == 0 {
		min = defaultTrialShardMin
	}
	return min > 0 && cfg.Trials >= min
}

// trialSeed derives the deterministic RNG seed for one trial of one
// grid cell.
func trialSeed(seed int64, experimentID string, cell, trial int) int64 {
	h := fnv.New64a()
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(trial))
	h.Write(idx[:])
	return cellSeed(seed, experimentID, cell) ^ int64(h.Sum64())
}

// forEachCellTrial evaluates fn(cell, trial, rng) for every (cell,
// trial) pair in [0, nCells) × [0, cfg.Trials). With trial sharding
// active every pair is an independent pool job with its own
// trialSeed-derived RNG; otherwise each cell runs its trials
// sequentially sharing the cell RNG, exactly reproducing the draw
// sequence of the historical per-cell loop. In both modes fn must
// write only to state owned by its (cell, trial) slot; aggregation
// over trials happens after this returns, in trial order, so tables
// are byte-identical at any Parallelism.
// forEachCellTrialReduced is forEachCellTrial plus per-cell completion:
// reduce(cell) runs exactly once per cell, on whichever worker finishes
// the cell's last trial, the moment that trial completes. By then every
// write of the cell's earlier trials is visible (the atomic countdown
// orders them), so reduce may fold the cell's per-trial slots in trial
// order and emit the cell's table row immediately — this is what turns
// the trial-sharded drivers into row-streaming ones. Reductions of
// different cells may run concurrently; reduce must only touch state
// owned by its cell plus concurrency-safe sinks (stats.RowStreamer).
func forEachCellTrialReduced(cfg Config, experimentID string, nCells int, fn func(cell, trial int, rng *rand.Rand), reduce func(cell int)) {
	if cfg.Trials <= 0 {
		return
	}
	remaining := make([]atomic.Int32, nCells)
	for i := range remaining {
		remaining[i].Store(int32(cfg.Trials))
	}
	forEachCellTrial(cfg, experimentID, nCells, func(cell, trial int, rng *rand.Rand) {
		fn(cell, trial, rng)
		if remaining[cell].Add(-1) == 0 {
			reduce(cell)
		}
	})
}

func forEachCellTrial(cfg Config, experimentID string, nCells int, fn func(cell, trial int, rng *rand.Rand)) {
	if cfg.Trials <= 0 {
		return
	}
	if !cfg.shardTrials() {
		forEachCell(cfg, experimentID, nCells, func(cell int, rng *rand.Rand) {
			for t := 0; t < cfg.Trials; t++ {
				fn(cell, t, rng)
			}
		})
		return
	}
	runJobs(cfg, experimentID, nCells*cfg.Trials, func(i int) {
		cell, trial := i/cfg.Trials, i%cfg.Trials
		fn(cell, trial, rand.New(rand.NewSource(trialSeed(cfg.Seed, experimentID, cell, trial))))
	})
}
