package experiments

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"

	"profirt/internal/pool"
)

// The experiment drivers are embarrassingly parallel across grid cells
// (one cell = one parameter combination), but naive parallelisation
// would destroy reproducibility: the seed harness threaded a single
// *rand.Rand through the nested grid loops, so any reordering changed
// every draw downstream. The pool below restores determinism by
// construction: each cell owns an RNG seeded from
//
//	Seed ⊕ FNV-1a(experimentID, cellIndex)
//
// so a cell's random stream depends only on (Seed, experiment, cell) —
// never on scheduling order — and the drivers write results into
// per-cell slots that are reassembled in index order afterwards.
// Tables are therefore byte-identical for any Parallelism value.

// cellSeed derives the deterministic RNG seed for one grid cell.
func cellSeed(seed int64, experimentID string, cell int) int64 {
	h := fnv.New64a()
	h.Write([]byte(experimentID))
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(cell))
	h.Write(idx[:])
	return seed ^ int64(h.Sum64())
}

// cellRNG builds the RNG a cell job must use for all its draws.
func cellRNG(cfg Config, experimentID string, cell int) *rand.Rand {
	return rand.New(rand.NewSource(cellSeed(cfg.Seed, experimentID, cell)))
}

// forEachCell evaluates fn(cell, rng) for every cell in [0, n) on a
// bounded worker pool of cfg.Parallelism goroutines (0 meaning
// GOMAXPROCS, per pool.Run) and blocks until all cells are done. Each
// invocation receives a fresh RNG from cellRNG, so fn must take all
// randomness from the rng argument. fn runs concurrently with other
// cells: it must only write to state owned by its cell (typically a
// preallocated per-cell result slot).
func forEachCell(cfg Config, experimentID string, n int, fn func(cell int, rng *rand.Rand)) {
	pool.Run(cfg.Parallelism, n, func(cell int) {
		fn(cell, cellRNG(cfg, experimentID, cell))
	})
}
