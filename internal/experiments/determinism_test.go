package experiments

import (
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"profirt/internal/core"
	"profirt/internal/memo"
	"profirt/internal/stats"
)

// render renders every table an experiment produces into one string,
// so byte-level comparison covers titles, notes, headers and rows.
func render(e Experiment, cfg Config) string {
	var sb strings.Builder
	for _, t := range e.Run(cfg) {
		sb.WriteString(t.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestParallelismDeterminism is the core guarantee of the cell-job
// harness: for every experiment, the tables produced with a sequential
// pool and with an 8-worker pool must be byte-identical. Each grid cell
// owns a deterministically seeded RNG, so scheduling order cannot leak
// into any draw.
func TestParallelismDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			seq := QuickConfig()
			seq.Parallelism = 1
			par := QuickConfig()
			par.Parallelism = 8
			got, want := render(e, par), render(e, seq)
			if got != want {
				t.Errorf("parallel tables differ from sequential:\n--- parallel ---\n%s--- sequential ---\n%s", got, want)
			}
		})
	}
}

// TestTrialShardingDeterminism is the regression gate for trial-level
// sharding: with per-trial sub-jobs forced on (TrialShardMin 1), the
// tables of every trial-sharded driver — E1–E5 plus the E6/E7/E9/E10
// message-level sweeps sharded in this PR — must be byte-identical at
// Parallelism 1, 2 and GOMAXPROCS: every trial owns an RNG seeded
// cellSeed ⊕ FNV(trial) and the reducers fold per-trial slots in trial
// order, so scheduling cannot leak into any number.
func TestTrialShardingDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E9", "E10"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			cfg := QuickConfig()
			cfg.TrialShardMin = 1 // force sharding at the quick trial count
			if !cfg.shardTrials() {
				t.Fatal("sharding not active; the test is vacuous")
			}
			var want string
			for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				c := cfg
				c.Parallelism = par
				got := render(e, c)
				if want == "" {
					want = got
				} else if got != want {
					t.Fatalf("sharded tables differ at parallelism %d:\n--- got ---\n%s--- want ---\n%s", par, got, want)
				}
			}
		})
	}
}

// TestTrialShardingSeedsReachDraws proves the sharded mode actually
// re-seeds each trial (so the byte-equality above is not vacuous):
// per-(cell, trial) draws must match the trialSeed derivation exactly
// in sharded mode and the shared cell RNG sequence in unsharded mode.
func TestTrialShardingSeedsReachDraws(t *testing.T) {
	const cells, trials = 3, 4
	draws := func(min int) [][]int64 {
		cfg := Config{Seed: 5, Trials: trials, TrialShardMin: min, Parallelism: 1}
		out := make([][]int64, cells)
		for i := range out {
			out[i] = make([]int64, trials)
		}
		forEachCellTrial(cfg, "test", cells, func(cell, trial int, rng *rand.Rand) {
			out[cell][trial] = rng.Int63()
		})
		return out
	}
	sharded, unsharded := draws(1), draws(-1)
	for c := 0; c < cells; c++ {
		cellRNG := rand.New(rand.NewSource(cellSeed(5, "test", c)))
		for tr := 0; tr < trials; tr++ {
			if want := rand.New(rand.NewSource(trialSeed(5, "test", c, tr))).Int63(); sharded[c][tr] != want {
				t.Fatalf("sharded draw (%d,%d) = %d, want trialSeed-derived %d", c, tr, sharded[c][tr], want)
			}
			if want := cellRNG.Int63(); unsharded[c][tr] != want {
				t.Fatalf("unsharded draw (%d,%d) = %d, want shared-cell-RNG %d", c, tr, unsharded[c][tr], want)
			}
		}
	}
}

// TestTrialShardMinThreshold pins the activation rule: default
// threshold 16 (quick 8-trial runs keep historical draws, full-size 40
// shard), negative disables.
func TestTrialShardMinThreshold(t *testing.T) {
	for _, tc := range []struct {
		trials, min int
		want        bool
	}{
		{8, 0, false}, {16, 0, true}, {40, 0, true},
		{8, 1, true}, {40, -1, false}, {4, 4, true}, {4, 5, false},
	} {
		cfg := Config{Trials: tc.trials, TrialShardMin: tc.min}
		if got := cfg.shardTrials(); got != tc.want {
			t.Errorf("shardTrials(Trials=%d, Min=%d) = %v, want %v", tc.trials, tc.min, got, tc.want)
		}
	}
}

// TestCachedExperimentsDeterminism is the engine-level equivalence
// gate: E9–E13 (the drivers threading Config.Cache into the DM/EDF and
// holistic fixed points) must render byte-identical tables with a
// shared cache and with caching disabled, while actually hitting the
// cache.
func TestCachedExperimentsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, id := range []string{"E9", "E10", "E11", "E12", "E13"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			plain := QuickConfig()
			cached := QuickConfig()
			cached.Cache = memo.New(0)
			got, want := render(e, cached), render(e, plain)
			if got != want {
				t.Errorf("cached tables differ from uncached:\n--- cached ---\n%s--- uncached ---\n%s", got, want)
			}
			if s := cached.Cache.Stats(); s.Hits+s.Misses == 0 {
				t.Errorf("cache never consulted (stats %+v); the driver is not threading Config.Cache", s)
			}
		})
	}
}

// TestRowStreaming is the row-streaming contract: for every
// experiment, cfg.RowSink must see each streamed table's rows in
// strict grid order, with cells equal to the assembled table's rows —
// while the tables themselves stay byte-identical to a sink-less run.
func TestRowStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			plain := render(e, QuickConfig())

			var mu sync.Mutex
			next := map[*stats.Table]int{}
			streamed := map[*stats.Table][][]string{}
			cfg := QuickConfig()
			cfg.Parallelism = 8
			cfg.RowSink = func(ev stats.RowEvent) {
				mu.Lock()
				defer mu.Unlock()
				if ev.Index != next[ev.Table] {
					t.Errorf("table %q: row %d streamed out of order (want %d)", ev.Table.Title, ev.Index, next[ev.Table])
				}
				next[ev.Table]++
				streamed[ev.Table] = append(streamed[ev.Table], ev.Cells)
			}
			var sb strings.Builder
			var tables []*stats.Table
			for _, tab := range e.Run(cfg) {
				tables = append(tables, tab)
				sb.WriteString(tab.String())
				sb.WriteString("\n")
			}
			if got := sb.String(); got != plain {
				t.Errorf("tables differ with a row sink attached:\n--- sink ---\n%s--- plain ---\n%s", got, plain)
			}
			seen := 0
			for _, tab := range tables {
				rows, ok := streamed[tab]
				if !ok {
					continue // small direct-assembly tables (E6b, E12b) do not stream
				}
				seen++
				if len(rows) != tab.NumRows() {
					t.Fatalf("table %q: sink saw %d rows, table has %d", tab.Title, len(rows), tab.NumRows())
				}
				for i, cells := range rows {
					want := tab.Row(i)
					if strings.Join(cells, "\x00") != strings.Join(want, "\x00") {
						t.Fatalf("table %q row %d: sink cells %v != table row %v", tab.Title, i, cells, want)
					}
				}
			}
			if seen == 0 {
				t.Fatalf("%s streamed no tables", e.ID)
			}
		})
	}
}

// TestTrialSeedDistinct guards the per-trial seed derivation: distinct
// (experiment, cell, trial) triples — and the cell seeds themselves —
// must all map to distinct RNG seeds for a fixed Seed.
func TestTrialSeedDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5"} {
		for cell := 0; cell < 16; cell++ {
			key := func(kind string, v int64) {
				if prev, dup := seen[v]; dup {
					t.Fatalf("seed collision: (%s,%d,%s) and %s both map to %d", id, cell, kind, prev, v)
				}
				seen[v] = id + kind
			}
			key("cell", cellSeed(1, id, cell))
			for trial := 0; trial < 40; trial++ {
				key("trial", trialSeed(1, id, cell, trial))
			}
		}
	}
	if trialSeed(1, "E1", 0, 0) == trialSeed(2, "E1", 0, 0) {
		t.Error("trialSeed ignores the configured Seed")
	}
}

// TestSeedStability asserts QuickConfig tables are stable across two
// runs with equal seeds (and change when the seed changes, so the seed
// actually reaches the cells).
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	e, ok := ByID("E7")
	if !ok {
		t.Fatal("E7 missing")
	}
	first := render(e, QuickConfig())
	second := render(e, QuickConfig())
	if first != second {
		t.Errorf("equal seeds produced different tables:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	other := QuickConfig()
	other.Seed = 999
	if render(e, other) == first {
		t.Error("changing the seed did not change the E7 table; seed is not reaching the cells")
	}
}

// TestCellSeedDistinct guards the seed derivation: distinct cells and
// distinct experiments must get distinct RNG seeds for a fixed Seed.
func TestCellSeedDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, id := range []string{"E1", "E2", "E11", "E11/base"} {
		for cell := 0; cell < 64; cell++ {
			s := cellSeed(1, id, cell)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%s,%d) and %s both map to %d", id, cell, prev, s)
			}
			seen[s] = id
		}
	}
	if cellSeed(1, "E1", 0) == cellSeed(2, "E1", 0) {
		t.Error("cellSeed ignores the configured Seed")
	}
}

// TestForEachCellCoversAllCells checks the pool visits every index
// exactly once and that per-cell RNGs are independent of worker count.
func TestForEachCellCoversAllCells(t *testing.T) {
	const n = 100
	draws := func(parallelism int) []int64 {
		cfg := Config{Seed: 7, Parallelism: parallelism}
		out := make([]int64, n)
		visits := make([]int32, n)
		forEachCell(cfg, "test", n, func(cell int, rng *rand.Rand) {
			visits[cell]++
			out[cell] = rng.Int63()
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("parallelism %d: cell %d visited %d times", parallelism, i, v)
			}
		}
		return out
	}
	seq := draws(1)
	par := draws(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("cell %d drew %d sequentially but %d in parallel", i, seq[i], par[i])
		}
	}
}

// TestCacheArmedOnExperimentsPath: any cache threaded through the
// experiment fan-out must be armed with the hit-rate auto-disable
// policy before key hashing starts, so a fan-out of all-distinct
// analyses latches the cache off — with results identical to the
// uncached analyses before, at and after the trip.
func TestCacheArmedOnExperimentsPath(t *testing.T) {
	cfg := Config{Seed: 3, Parallelism: 2, Cache: memo.New(0)}
	const cells = 64
	bad := make([]int32, cells)
	forEachCell(cfg, "arm-test", cells, func(cell int, rng *rand.Rand) {
		for i := 0; i < 16; i++ {
			streams := make([]core.Stream, 5)
			for k := range streams {
				T := core.Ticks(50_000 + rng.Intn(200_000))
				streams[k] = core.Stream{
					Ch: core.Ticks(200 + rng.Intn(400)),
					D:  T - core.Ticks(rng.Intn(10_000)),
					T:  T,
					J:  core.Ticks(rng.Intn(2_000)),
				}
			}
			got := memo.DMResponseTimes(cfg.Cache, streams, 2_500, core.DMOptions{})
			want := core.DMResponseTimes(streams, 2_500, core.DMOptions{})
			for k := range want {
				if got[k] != want[k] {
					atomic.AddInt32(&bad[cell], 1)
				}
			}
		}
	})
	for cell, n := range bad {
		if n != 0 {
			t.Fatalf("cell %d: %d cached results diverged from uncached", cell, n)
		}
	}
	if !cfg.Cache.Disabled() {
		t.Fatalf("all-distinct experiment fan-out did not trip the armed latch (stats %+v)", cfg.Cache.Stats())
	}
}
