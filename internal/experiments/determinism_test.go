package experiments

import (
	"math/rand"
	"strings"
	"testing"
)

// render renders every table an experiment produces into one string,
// so byte-level comparison covers titles, notes, headers and rows.
func render(e Experiment, cfg Config) string {
	var sb strings.Builder
	for _, t := range e.Run(cfg) {
		sb.WriteString(t.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestParallelismDeterminism is the core guarantee of the cell-job
// harness: for every experiment, the tables produced with a sequential
// pool and with an 8-worker pool must be byte-identical. Each grid cell
// owns a deterministically seeded RNG, so scheduling order cannot leak
// into any draw.
func TestParallelismDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			seq := QuickConfig()
			seq.Parallelism = 1
			par := QuickConfig()
			par.Parallelism = 8
			got, want := render(e, par), render(e, seq)
			if got != want {
				t.Errorf("parallel tables differ from sequential:\n--- parallel ---\n%s--- sequential ---\n%s", got, want)
			}
		})
	}
}

// TestSeedStability asserts QuickConfig tables are stable across two
// runs with equal seeds (and change when the seed changes, so the seed
// actually reaches the cells).
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	e, ok := ByID("E7")
	if !ok {
		t.Fatal("E7 missing")
	}
	first := render(e, QuickConfig())
	second := render(e, QuickConfig())
	if first != second {
		t.Errorf("equal seeds produced different tables:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	other := QuickConfig()
	other.Seed = 999
	if render(e, other) == first {
		t.Error("changing the seed did not change the E7 table; seed is not reaching the cells")
	}
}

// TestCellSeedDistinct guards the seed derivation: distinct cells and
// distinct experiments must get distinct RNG seeds for a fixed Seed.
func TestCellSeedDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, id := range []string{"E1", "E2", "E11", "E11/base"} {
		for cell := 0; cell < 64; cell++ {
			s := cellSeed(1, id, cell)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%s,%d) and %s both map to %d", id, cell, prev, s)
			}
			seen[s] = id
		}
	}
	if cellSeed(1, "E1", 0) == cellSeed(2, "E1", 0) {
		t.Error("cellSeed ignores the configured Seed")
	}
}

// TestForEachCellCoversAllCells checks the pool visits every index
// exactly once and that per-cell RNGs are independent of worker count.
func TestForEachCellCoversAllCells(t *testing.T) {
	const n = 100
	draws := func(parallelism int) []int64 {
		cfg := Config{Seed: 7, Parallelism: parallelism}
		out := make([]int64, n)
		visits := make([]int32, n)
		forEachCell(cfg, "test", n, func(cell int, rng *rand.Rand) {
			visits[cell]++
			out[cell] = rng.Int63()
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("parallelism %d: cell %d visited %d times", parallelism, i, v)
			}
		}
		return out
	}
	seq := draws(1)
	par := draws(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("cell %d drew %d sequentially but %d in parallel", i, seq[i], par[i])
		}
	}
}
