package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBucketIndex(t *testing.T) {
	bounds := BucketBounds()
	if len(bounds) != numFinite {
		t.Fatalf("BucketBounds len = %d, want %d", len(bounds), numFinite)
	}
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{1000, 0},
		{1001, 1},
		{2000, 1},
		{2001, 2},
		{4000, 2},
		{int64(bounds[numFinite-1]), numFinite - 1},
		{int64(bounds[numFinite-1]) + 1, numFinite},
		{1 << 62, numFinite},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every bound must land in its own bucket, and one past it in the
	// next: the exposition's cumulative counts depend on it.
	for i, b := range bounds {
		if got := bucketIndex(int64(b)); got != i {
			t.Errorf("bucketIndex(bound %v) = %d, want %d", b, got, i)
		}
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(-time.Second) // clamps to 0, lands in bucket 0
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("Count = %d, want 3", s.Count)
	}
	if want := int64(3500); s.SumNs != want {
		t.Fatalf("SumNs = %d, want %d", s.SumNs, want)
	}
	if s.Counts[0] != 2 || s.Counts[2] != 1 {
		t.Fatalf("Counts = %v, want bucket0=2 bucket2=1", s.Counts)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("Count %d != sum of buckets %d", s.Count, total)
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if s := nilH.Snapshot(); s.Count != 0 || s.Counts != nil {
		t.Fatalf("nil snapshot = %+v, want empty", s)
	}
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Counts != nil {
		t.Fatalf("empty snapshot = %+v, want empty", s)
	}
	if m := h.Snapshot().Mean(); m != 0 {
		t.Fatalf("empty Mean = %v, want 0", m)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	b.Observe(10 * time.Microsecond)
	b.Observe(10 * time.Microsecond)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 3 {
		t.Fatalf("merged Count = %d, want 3", m.Count)
	}
	if want := int64(21000); m.SumNs != want {
		t.Fatalf("merged SumNs = %d, want %d", m.SumNs, want)
	}
	if m.Counts[0] != 1 || m.Counts[bucketIndex(10000)] != 2 {
		t.Fatalf("merged Counts = %v", m.Counts)
	}
	// Merging empties keeps nil Counts.
	if e := (HistogramSnapshot{}).Merge(HistogramSnapshot{}); e.Counts != nil || e.Count != 0 {
		t.Fatalf("empty merge = %+v", e)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*i) * time.Nanosecond)
				if i%64 == 0 {
					s := h.Snapshot()
					var total uint64
					for _, c := range s.Counts {
						total += c
					}
					if total != s.Count {
						t.Errorf("racing snapshot inconsistent: %d != %d", s.Count, total)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
}

func TestMeanUsesFakeClockDurations(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	if m := h.Snapshot().Mean(); m != 3*time.Millisecond {
		t.Fatalf("Mean = %v, want 3ms", m)
	}
}
