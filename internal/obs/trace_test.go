package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step on every Now call, making span
// durations deterministic.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(f.step)
	return f.t
}

func TestSpanNestingAndExport(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	tr := NewTracer("req-1", clk)
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "request")
	ctx2, mid := StartSpan(ctx1, "engine.analyze_networks")
	_, leaf := StartSpanArg(ctx2, "pool.job", 3)
	leaf.End()
	mid.End()
	root.End()

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	byName := map[string]Event{}
	for _, e := range events {
		byName[e.Name] = e
	}
	if byName["request"].Parent != 0 {
		t.Errorf("request parent = %d, want 0", byName["request"].Parent)
	}
	if byName["engine.analyze_networks"].Parent != byName["request"].ID {
		t.Errorf("engine span not parented under request")
	}
	if byName["pool.job"].Parent != byName["engine.analyze_networks"].ID {
		t.Errorf("pool.job not parented under engine span")
	}
	if byName["pool.job"].Arg != 3 {
		t.Errorf("pool.job arg = %d, want 3", byName["pool.job"].Arg)
	}
	if byName["request"].DurNs <= 0 {
		t.Errorf("request duration = %d, want > 0", byName["request"].DurNs)
	}

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args struct {
				Span   uint64 `json:"span"`
				Parent uint64 `json:"parent"`
				I      *int64 `json:"i"`
			} `json:"args"`
		} `json:"traceEvents"`
		OtherData struct {
			TraceID string `json:"traceId"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if decoded.OtherData.TraceID != "req-1" {
		t.Errorf("traceId = %q, want req-1", decoded.OtherData.TraceID)
	}
	if len(decoded.TraceEvents) != 3 {
		t.Fatalf("exported %d events, want 3", len(decoded.TraceEvents))
	}
	// Sorted by start: request, engine, pool.job.
	wantOrder := []string{"request", "engine.analyze_networks", "pool.job"}
	for i, te := range decoded.TraceEvents {
		if te.Name != wantOrder[i] {
			t.Errorf("event %d = %q, want %q", i, te.Name, wantOrder[i])
		}
		if te.Ph != "X" {
			t.Errorf("event %d ph = %q, want X", i, te.Ph)
		}
	}
	if decoded.TraceEvents[2].Args.I == nil || *decoded.TraceEvents[2].Args.I != 3 {
		t.Errorf("pool.job exported arg missing or wrong")
	}
}

func TestUntracedContextIsFree(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "noop")
	if ctx2 != ctx {
		t.Fatalf("untraced StartSpan changed the context")
	}
	sp.End() // must not panic
	var nilCtxSpan Span
	nilCtxSpan.End()
	if tr := TracerFrom(nil); tr != nil {
		t.Fatalf("TracerFrom(nil) = %v, want nil", tr)
	}
	if ctx3, sp3 := StartSpan(nil, "x"); ctx3 != nil || sp3.t != nil {
		t.Fatalf("StartSpan(nil) should be inert")
	}
}

func TestTracerEventCap(t *testing.T) {
	tr := NewTracer("cap", &fakeClock{step: time.Microsecond})
	tr.maxEvents = 4
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("kept %d events, want 4", got)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer("conc", nil)
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c, sp := StartSpanArg(ctx, "job", int64(i))
				_, inner := StartSpan(c, "inner")
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Events()); got != 8*200*2 {
		t.Fatalf("got %d events, want %d", got, 8*200*2)
	}
	ids := make(map[uint64]bool, 8*200*2)
	for _, e := range tr.Events() {
		if ids[e.ID] {
			t.Fatalf("duplicate span id %d", e.ID)
		}
		ids[e.ID] = true
	}
}

func TestWallClockDefault(t *testing.T) {
	if Wall.Now().IsZero() {
		t.Fatal("Wall.Now returned zero time")
	}
	if Now().IsZero() {
		t.Fatal("Now returned zero time")
	}
	if orWall(nil) != Wall {
		t.Fatal("orWall(nil) != Wall")
	}
	m := NewMetrics(nil)
	if m.Clock != Wall || m.Pool.Clock != Wall || m.Cache.Clock != Wall || m.Store.Clock != Wall {
		t.Fatal("NewMetrics(nil) did not propagate Wall")
	}
}

func TestOpString(t *testing.T) {
	if OpAnalyzeNetworks.String() != "analyze_networks" {
		t.Fatalf("OpAnalyzeNetworks = %q", OpAnalyzeNetworks.String())
	}
	if Op(99).String() != "unknown" {
		t.Fatalf("out-of-range op = %q", Op(99).String())
	}
	for op := Op(0); int(op) < NumOps; op++ {
		if op.String() == "" || op.String() == "unknown" {
			t.Fatalf("op %d has no name", op)
		}
	}
}
