package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxEvents bounds a Tracer's event buffer so a runaway traced
// campaign cannot hold the process's memory hostage; completed spans
// past the cap increment Dropped instead of appending.
const DefaultMaxEvents = 1 << 18

// Tracer collects completed spans for one trace (one HTTP request,
// one campaign run). It is safe for concurrent use: span starts are
// lock-free, span ends append under a mutex. Export with WriteTo
// (Chrome trace_event JSON) or inspect with Events.
type Tracer struct {
	id        string
	clock     Clock
	epoch     time.Time
	maxEvents int

	seq     atomic.Uint64
	dropped atomic.Uint64

	mu     sync.Mutex
	events []Event
}

// Event is one completed span.
type Event struct {
	Name    string // span name, e.g. "pool.job"
	ID      uint64 // span id, unique within the tracer
	Parent  uint64 // enclosing span id; 0 for a root span
	TID     int64  // goroutine id the span ended on
	StartNs int64  // start offset from the tracer's epoch
	DurNs   int64  // duration
	Arg     int64  // user argument (job index, round number); -1 if unset
}

// NewTracer starts an empty trace. id labels the trace in exports
// (the serve layer uses the request ID); a nil clock selects Wall.
func NewTracer(id string, clock Clock) *Tracer {
	clock = orWall(clock)
	return &Tracer{
		id:        id,
		clock:     clock,
		epoch:     clock.Now(),
		maxEvents: DefaultMaxEvents,
	}
}

// ID returns the trace id the tracer was created with.
func (t *Tracer) ID() string { return t.id }

// Dropped reports how many completed spans were discarded because the
// event buffer hit its cap.
func (t *Tracer) Dropped() uint64 { return t.dropped.Load() }

// Events returns a copy of the completed spans recorded so far.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

func (t *Tracer) sinceNs() int64 { return int64(t.clock.Now().Sub(t.epoch)) }

func (t *Tracer) add(e Event) {
	t.mu.Lock()
	if len(t.events) >= t.maxEvents {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Span is an in-progress span. The zero Span (from an untraced
// context) is valid and End is a no-op, so call sites never branch.
type Span struct {
	t       *Tracer
	name    string
	id      uint64
	parent  uint64
	arg     int64
	startNs int64
}

// End completes the span, recording it on its tracer.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.add(Event{
		Name:    s.name,
		ID:      s.id,
		Parent:  s.parent,
		TID:     goroutineID(),
		StartNs: s.startNs,
		DurNs:   s.t.sinceNs() - s.startNs,
		Arg:     s.arg,
	})
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context carrying t; spans started from the
// returned context (and its descendants) record on t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if ctx == nil || t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// StartSpan opens a span named name as a child of the span already in
// ctx (root if none). On an untraced context it returns ctx unchanged
// and a zero Span without allocating.
func StartSpan(ctx context.Context, name string) (context.Context, Span) {
	return StartSpanArg(ctx, name, -1)
}

// StartSpanArg is StartSpan with a numeric argument (job index, round
// number) attached to the exported event.
func StartSpanArg(ctx context.Context, name string, arg int64) (context.Context, Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, Span{}
	}
	sp := Span{
		t:       t,
		name:    name,
		id:      t.seq.Add(1),
		arg:     arg,
		startNs: t.sinceNs(),
	}
	if parent, ok := ctx.Value(spanKey).(uint64); ok {
		sp.parent = parent
	}
	return context.WithValue(ctx, spanKey, sp.id), sp
}

// traceEvent is one Chrome trace_event "complete" (ph:"X") entry.
// Timestamps and durations are microseconds, per the format.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args traceEventArgs `json:"args"`
}

type traceEventArgs struct {
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent"`
	Arg    *int64 `json:"i,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       traceOtherData `json:"otherData"`
}

type traceOtherData struct {
	TraceID string `json:"traceId"`
	Dropped uint64 `json:"dropped"`
}

// WriteTo exports the trace as Chrome trace_event JSON, loadable in
// chrome://tracing or Perfetto. Events are sorted by start time so
// exports of the same trace are stable.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	events := t.Events()
	sort.Slice(events, func(i, j int) bool {
		if events[i].StartNs != events[j].StartNs {
			return events[i].StartNs < events[j].StartNs
		}
		return events[i].ID < events[j].ID
	})
	out := traceFile{
		TraceEvents:     make([]traceEvent, 0, len(events)),
		DisplayTimeUnit: "ms",
		OtherData:       traceOtherData{TraceID: t.id, Dropped: t.Dropped()},
	}
	for _, e := range events {
		te := traceEvent{
			Name: e.Name,
			Cat:  "profirt",
			Ph:   "X",
			TS:   float64(e.StartNs) / 1e3,
			Dur:  float64(e.DurNs) / 1e3,
			PID:  1,
			TID:  e.TID,
			Args: traceEventArgs{Span: e.ID, Parent: e.Parent},
		}
		if e.Arg >= 0 {
			arg := e.Arg
			te.Args.Arg = &arg
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}
	b, err := json.Marshal(out)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(append(b, '\n'))
	return int64(n), err
}

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine N [running]: ..."), mirroring internal/pool. Paid once
// per completed span, only while tracing.
func goroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	head := bytes.TrimPrefix(buf[:n], []byte("goroutine "))
	if i := bytes.IndexByte(head, ' '); i > 0 {
		if id, err := strconv.ParseInt(string(head[:i]), 10, 64); err == nil {
			return id
		}
	}
	return 0
}
