package obs

// Op enumerates the Engine's public operations for per-op latency
// histograms. The order is part of the Stats wire format: serve
// renders ops in this order so scrapes diff cleanly.
type Op int

const (
	OpAnalyzeNetworks Op = iota
	OpAnalyzeTopologies
	OpAnalyzeHolistic
	OpSimulate
	OpSimulateBatch
	OpSimulateTopology
	OpRunCampaign
	OpRunExperiments
	NumOps int = iota
)

var opNames = [NumOps]string{
	OpAnalyzeNetworks:   "analyze_networks",
	OpAnalyzeTopologies: "analyze_topologies",
	OpAnalyzeHolistic:   "analyze_holistic",
	OpSimulate:          "simulate",
	OpSimulateBatch:     "simulate_batch",
	OpSimulateTopology:  "simulate_topology",
	OpRunCampaign:       "run_campaign",
	OpRunExperiments:    "run_experiments",
}

// String returns the op's snake_case metric label.
func (o Op) String() string {
	if o < 0 || int(o) >= NumOps {
		return "unknown"
	}
	return opNames[o]
}

// PoolMetrics times worker-pool jobs: how long each job waited from
// submission enqueue to dispatch, and how long it ran. Inline jobs
// (limit <= 1 fast path) never queue, so they record Run only.
type PoolMetrics struct {
	Clock     Clock
	QueueWait Histogram
	Run       Histogram
}

// CacheMetrics times memo cache probes (Cache.Get). Lookups resolved
// by the counting pre-filter never reach Get and are not timed — the
// histogram measures real probe latency, not the fast-path veto.
type CacheMetrics struct {
	Clock  Clock
	Lookup Histogram
}

// StoreMetrics times result-store probes (Store.Get), including lock
// wait, which is the point: observed latency under contention.
type StoreMetrics struct {
	Clock  Clock
	Lookup Histogram
}

// Metrics bundles one Engine's latency instrumentation. A nil
// *Metrics (observability disabled) makes every recording site a
// no-op.
type Metrics struct {
	Clock Clock
	Ops   [NumOps]Histogram
	Pool  PoolMetrics
	Cache CacheMetrics
	Store StoreMetrics
}

// NewMetrics builds a Metrics sharing one clock across all groups.
// A nil clock selects Wall.
func NewMetrics(c Clock) *Metrics {
	c = orWall(c)
	m := &Metrics{Clock: c}
	m.Pool.Clock = c
	m.Cache.Clock = c
	m.Store.Clock = c
	return m
}
