// Package obs is profirt's dependency-free observability layer:
// log-spaced latency histograms, lightweight span tracing with Chrome
// trace_event export, and the repository's single gateway to the wall
// clock.
//
// # The clock boundary
//
// Determinism is the repo's core contract: analysis and simulation
// results must be byte-identical at any parallelism, so wall-clock
// reads are banned from result-producing code by the detrand analyzer
// (see internal/lint). obs is the one package allowed to call
// time.Now. Everything else that needs wall time holds an injectable
// Clock (tests substitute a fake) or calls Now for display-only
// timestamps. The flip side of the bargain: timing data collected
// here is observational only and must never flow into result bytes.
//
// # Histograms
//
// Histogram is a fixed-bucket, log-spaced latency histogram with
// atomic counters: Observe is lock-free and allocation-free, so it is
// safe on hot paths (per pool job, per cache lookup). Snapshot
// produces a mergeable HistogramSnapshot whose Count always equals
// the sum of its buckets, which keeps Prometheus renderings
// internally consistent (`le="+Inf"` == `_count`).
//
// # Tracing
//
// Tracer records spans (StartSpan/Span.End) with parent links carried
// through context, and exports them as Chrome trace_event JSON for
// chrome://tracing or Perfetto. Tracing is opt-in per request or per
// run; untraced contexts pay only a context lookup at span-start
// sites and allocate nothing.
package obs

import "time"

// Clock abstracts the wall clock so timing-instrumented code stays
// testable and the time.Now call sites stay confined to this package.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

// Now on the real clock is the repository's only production time.Now
// call site (enforced by the detrand analyzer).
func (realClock) Now() time.Time { return time.Now() }

// Wall is the real wall clock. Passing a nil Clock anywhere in this
// package selects Wall.
var Wall Clock = realClock{}

// Now returns the current wall time. It exists for display-only
// timestamps in commands and examples (log lines, report headers)
// where injecting a Clock would be ceremony; result-producing code
// must not call it.
func Now() time.Time { return Wall.Now() }

// orWall returns c, or Wall when c is nil.
func orWall(c Clock) Clock {
	if c == nil {
		return Wall
	}
	return c
}
