package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: numFinite log-spaced buckets whose upper bounds are
// minBucketNs<<i for i in [0, numFinite), i.e. 1µs, 2µs, 4µs, ...
// doubling up to ~33.5s, plus one overflow bucket. The range covers
// everything from a warm cache probe to a drain-timeout-sized stall.
const (
	minBucketNs = 1000 // 1µs: the finest bucket's upper bound
	numFinite   = 26   // finite buckets; bounds[25] ≈ 33.5s
	numBuckets  = numFinite + 1
)

// Histogram is a fixed-bucket latency histogram with log-spaced
// bounds and atomic counters. The zero value is ready to use; a nil
// *Histogram ignores Observe and snapshots empty, mirroring the
// repo's nil-safe cache/store idiom. Observe is lock-free and does
// not allocate, so histograms can sit on per-job and per-lookup hot
// paths.
type Histogram struct {
	sum     atomic.Int64 // total observed time, ns
	buckets [numBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations (a clock that
// stepped backwards) clamp to zero rather than corrupting the sum.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// bucketIndex maps a duration in ns to the first bucket whose upper
// bound is >= ns: bucket i holds ns in (minBucketNs<<(i-1),
// minBucketNs<<i], bucket 0 holds everything <= minBucketNs, and the
// last bucket holds the overflow.
func bucketIndex(ns int64) int {
	if ns <= minBucketNs {
		return 0
	}
	// ceil(ns/minBucketNs) rounded up to a power of two selects the
	// doubling bucket; bits.Len64(q-1) is ceil(log2(q)).
	q := uint64((ns + minBucketNs - 1) / minBucketNs)
	idx := bits.Len64(q - 1)
	if idx >= numFinite {
		return numFinite
	}
	return idx
}

// HistogramSnapshot is a point-in-time copy of a Histogram, safe to
// serialize and to merge across histograms with identical bucket
// layouts (all histograms in this package share one layout).
type HistogramSnapshot struct {
	// Count is the number of observations. It is always the sum of
	// Counts, so cumulative renderings end with le="+Inf" == Count
	// even when a snapshot races concurrent Observes.
	Count uint64 `json:"count"`
	// SumNs is the total observed time in nanoseconds.
	SumNs int64 `json:"sumNs"`
	// Counts holds per-bucket observation counts, one per
	// BucketBounds entry plus a trailing overflow bucket. Empty for a
	// histogram that never observed anything.
	Counts []uint64 `json:"counts,omitempty"`
}

// Snapshot copies the histogram's counters. Concurrent Observes may
// land between bucket reads; Count is derived from the bucket reads
// themselves so the snapshot is always internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{SumNs: h.sum.Load()}
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		total += c
		if s.Counts == nil {
			s.Counts = make([]uint64, numBuckets)
		}
		s.Counts[i] = c
	}
	s.Count = total
	return s
}

// Merge returns the element-wise sum of two snapshots, for
// aggregating shards or sessions.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count + o.Count, SumNs: s.SumNs + o.SumNs}
	if s.Counts == nil && o.Counts == nil {
		return out
	}
	out.Counts = make([]uint64, numBuckets)
	for i := range out.Counts {
		if i < len(s.Counts) {
			out.Counts[i] += s.Counts[i]
		}
		if i < len(o.Counts) {
			out.Counts[i] += o.Counts[i]
		}
	}
	return out
}

// Mean returns the average observed duration, or 0 for an empty
// snapshot.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / int64(s.Count))
}

// BucketBounds returns the shared upper bounds of the finite buckets,
// in ascending order. Counts[len(bounds)] is the overflow (+Inf)
// bucket.
func BucketBounds() []time.Duration {
	b := make([]time.Duration, numFinite)
	for i := range b {
		b[i] = time.Duration(minBucketNs << i)
	}
	return b
}
