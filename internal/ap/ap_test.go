package ap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func req(stream int, release, relDeadline Ticks) Request {
	return Request{
		Stream:      stream,
		Release:     release,
		Ready:       release,
		RelDeadline: relDeadline,
		AbsDeadline: release + relDeadline,
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{FCFS: "FCFS", DM: "DM", EDF: "EDF", Policy(9): "Policy(9)"} {
		if p.String() != want {
			t.Errorf("%d = %q want %q", int(p), p.String(), want)
		}
	}
}

func TestEmptyQueue(t *testing.T) {
	q := NewQueue(DM)
	if q.Len() != 0 {
		t.Error("new queue not empty")
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty must report false")
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty must report false")
	}
	if q.Policy() != DM {
		t.Error("Policy accessor wrong")
	}
}

func TestFCFSOrder(t *testing.T) {
	q := NewQueue(FCFS)
	q.Push(req(0, 30, 5))
	q.Push(req(1, 10, 100))
	q.Push(req(2, 20, 1))
	var got []int
	for {
		r, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, r.Stream)
	}
	want := []int{1, 2, 0} // by readiness, deadlines ignored
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FCFS order %v, want %v", got, want)
		}
	}
}

func TestDMOrder(t *testing.T) {
	q := NewQueue(DM)
	q.Push(req(0, 0, 50))
	q.Push(req(1, 5, 10)) // tighter relative deadline wins despite later arrival
	q.Push(req(2, 1, 30))
	r, _ := q.Pop()
	if r.Stream != 1 {
		t.Errorf("DM head = %d, want 1", r.Stream)
	}
	r, _ = q.Pop()
	if r.Stream != 2 {
		t.Errorf("DM second = %d, want 2", r.Stream)
	}
}

func TestEDFOrder(t *testing.T) {
	q := NewQueue(EDF)
	q.Push(req(0, 0, 100)) // abs 100
	q.Push(req(1, 90, 15)) // abs 105
	q.Push(req(2, 50, 20)) // abs 70
	r, _ := q.Pop()
	if r.Stream != 2 {
		t.Errorf("EDF head = %d, want 2", r.Stream)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	for _, pol := range []Policy{FCFS, DM, EDF} {
		q := NewQueue(pol)
		// All keys equal: insertion order must be preserved.
		for i := 0; i < 5; i++ {
			q.Push(req(i, 10, 10))
		}
		for i := 0; i < 5; i++ {
			r, ok := q.Pop()
			if !ok || r.Stream != i {
				t.Fatalf("%v: tie-break broke FIFO at %d (got %d)", pol, i, r.Stream)
			}
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := NewQueue(EDF)
	q.Push(req(0, 0, 10))
	r1, _ := q.Peek()
	r2, _ := q.Peek()
	if r1.Stream != r2.Stream || q.Len() != 1 {
		t.Error("Peek must not remove")
	}
}

// Property: popping drains in non-decreasing key order for each policy.
func TestHeapOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, pol := range []Policy{FCFS, DM, EDF} {
			q := NewQueue(pol)
			n := 1 + rng.Intn(40)
			for i := 0; i < n; i++ {
				q.Push(req(i, Ticks(rng.Intn(100)), Ticks(1+rng.Intn(100))))
			}
			var keys []Ticks
			for {
				r, ok := q.Pop()
				if !ok {
					break
				}
				switch pol {
				case FCFS:
					keys = append(keys, r.Ready)
				case DM:
					keys = append(keys, r.RelDeadline)
				case EDF:
					keys = append(keys, r.AbsDeadline)
				}
			}
			if len(keys) != n {
				return false
			}
			if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStackSlot(t *testing.T) {
	var s StackSlot
	if s.Filled() {
		t.Error("zero slot must be empty")
	}
	if _, ok := s.Take(); ok {
		t.Error("Take on empty must fail")
	}
	if _, ok := s.Peek(); ok {
		t.Error("Peek on empty must fail")
	}
	s.Fill(req(3, 1, 2))
	if !s.Filled() {
		t.Error("slot must be filled")
	}
	r, ok := s.Peek()
	if !ok || r.Stream != 3 {
		t.Error("Peek wrong")
	}
	r, ok = s.Take()
	if !ok || r.Stream != 3 || s.Filled() {
		t.Error("Take wrong")
	}
}

func TestStackSlotDoubleFillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double fill")
		}
	}()
	var s StackSlot
	s.Fill(req(0, 0, 1))
	s.Fill(req(1, 0, 1))
}

// The slot models the priority-inversion source: once a low-priority
// request is committed, a tighter one arriving later cannot overtake it.
func TestSlotCommitSemantics(t *testing.T) {
	q := NewQueue(DM)
	var s StackSlot
	q.Push(req(0, 0, 100)) // loose deadline
	if !s.Refill(q) {
		t.Fatal("refill should transfer")
	}
	q.Push(req(1, 1, 5)) // tight deadline arrives after commit
	if s.Refill(q) {
		t.Fatal("refill must not preempt a committed request")
	}
	r, _ := s.Take()
	if r.Stream != 0 {
		t.Errorf("slot served %d, want committed 0", r.Stream)
	}
	if !s.Refill(q) {
		t.Fatal("second refill should transfer the tight request")
	}
	r, _ = s.Peek()
	if r.Stream != 1 {
		t.Errorf("slot now %d, want 1", r.Stream)
	}
}

func TestRefillOnEmptyQueue(t *testing.T) {
	q := NewQueue(EDF)
	var s StackSlot
	if s.Refill(q) {
		t.Error("refill from empty queue must be a no-op")
	}
}
