// Package ap implements the application-process message dispatching
// architecture proposed in Section 4 of the reproduced paper: a
// priority-ordered queue (FCFS, deadline-monotonic, or
// earliest-deadline-first) placed above the PROFIBUS communication
// stack, whose own FCFS outgoing queue is limited to a single pending
// request via the local management services.
package ap

import (
	"fmt"

	"profirt/internal/timeunit"
)

// Ticks aliases the shared time base.
type Ticks = timeunit.Ticks

// Policy selects the AP queue ordering.
type Policy int

// Queue ordering policies.
const (
	// FCFS orders by readiness time — the stock PROFIBUS behaviour
	// (modelled for comparison; with FCFS the AP layer adds nothing).
	FCFS Policy = iota
	// DM orders by the stream's relative deadline (fixed priority).
	DM
	// EDF orders by the request's absolute deadline (dynamic priority).
	EDF
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "FCFS"
	case DM:
		return "DM"
	case EDF:
		return "EDF"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Request is one queued message request. Messages inherit period,
// deadline and release jitter from their generating task (paper
// Sec. 4.1); the queue only needs the deadline information and the
// readiness instant.
type Request struct {
	// Stream identifies the message stream within its master.
	Stream int
	// Release is the nominal release instant (deadline anchor).
	Release Ticks
	// Ready is when the request entered the queue (Release + jitter).
	Ready Ticks
	// RelDeadline is the stream's relative deadline (DM key).
	RelDeadline Ticks
	// AbsDeadline is Release + RelDeadline (EDF key).
	AbsDeadline Ticks
	seq         int64
}

// Queue is a policy-ordered request queue. The zero value is not
// usable; construct with NewQueue.
type Queue struct {
	policy Policy
	h      reqHeap
	seq    int64
}

// NewQueue creates an empty queue with the given ordering policy.
func NewQueue(policy Policy) *Queue {
	return &Queue{policy: policy, h: reqHeap{policy: policy}}
}

// Policy returns the queue's ordering policy.
func (q *Queue) Policy() Policy { return q.policy }

// Len returns the number of queued requests.
func (q *Queue) Len() int { return len(q.h.items) }

// Reset empties the queue and re-arms it with the given policy while
// keeping the backing array, so a pooled simulator reuses it across
// runs without allocating.
func (q *Queue) Reset(policy Policy) {
	q.policy = policy
	q.h.policy = policy
	q.h.items = q.h.items[:0]
	q.seq = 0
}

// Push enqueues a request. Ties on the ordering key are FIFO.
func (q *Queue) Push(r Request) {
	r.seq = q.seq
	q.seq++
	q.h.push(r)
}

// Pop removes and returns the frontmost request.
func (q *Queue) Pop() (Request, bool) {
	if len(q.h.items) == 0 {
		return Request{}, false
	}
	return q.h.pop(), true
}

// Peek returns the frontmost request without removing it.
func (q *Queue) Peek() (Request, bool) {
	if len(q.h.items) == 0 {
		return Request{}, false
	}
	return q.h.items[0], true
}

// reqHeap is a hand-rolled binary min-heap of Request values. The
// simulator pushes one request per message release, so the interface
// boxing container/heap would impose (one allocation per Push and Pop)
// is measurable; hand-rolling keeps the queue allocation-free once the
// backing array has grown.
type reqHeap struct {
	policy Policy
	items  []Request
}

func (h *reqHeap) less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	var ka, kb Ticks
	switch h.policy {
	case DM:
		ka, kb = a.RelDeadline, b.RelDeadline
	case EDF:
		ka, kb = a.AbsDeadline, b.AbsDeadline
	default: // FCFS
		ka, kb = a.Ready, b.Ready
	}
	if ka != kb {
		return ka < kb
	}
	return a.seq < b.seq
}

func (h *reqHeap) push(r Request) {
	h.items = append(h.items, r)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *reqHeap) pop() Request {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && h.less(r, l) {
			child = r
		}
		if !h.less(child, i) {
			break
		}
		h.items[i], h.items[child] = h.items[child], h.items[i]
		i = child
	}
	return top
}

// StackSlot models the communication-stack outgoing queue limited to
// one pending request (the paper's architecture): once a request is
// committed to the slot it cannot be overtaken, which is the source of
// the single-blocking term in Eqs. 16–18.
type StackSlot struct {
	req    Request
	filled bool
}

// Filled reports whether the slot holds a pending request.
func (s *StackSlot) Filled() bool { return s.filled }

// Fill commits a request to the slot. It panics if already filled —
// the management services guarantee at most one pending request.
func (s *StackSlot) Fill(r Request) {
	if s.filled {
		panic("ap: stack slot already filled")
	}
	s.req, s.filled = r, true
}

// Take removes and returns the pending request.
func (s *StackSlot) Take() (Request, bool) {
	if !s.filled {
		return Request{}, false
	}
	s.filled = false
	return s.req, true
}

// Peek returns the pending request without removing it.
func (s *StackSlot) Peek() (Request, bool) {
	return s.req, s.filled
}

// Refill moves the frontmost AP-queue request into the slot when the
// slot is free, returning whether a transfer happened. Call it whenever
// the slot may have been freed (cycle completion) or the queue may have
// gained a better candidate while the slot was empty (request release).
func (s *StackSlot) Refill(q *Queue) bool {
	if s.filled {
		return false
	}
	r, ok := q.Pop()
	if !ok {
		return false
	}
	s.Fill(r)
	return true
}
