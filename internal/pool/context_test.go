package pool

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestRunContextNilIsRun(t *testing.T) {
	var ran atomic.Int64
	RunContext(nil, 4, 100, func(i int) { ran.Add(1) })
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100 jobs", ran.Load())
	}
}

func TestRunContextCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		RunContext(ctx, workers, 100, func(i int) { ran.Add(1) })
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: cancelled pool ran %d jobs", workers, ran.Load())
		}
	}
}

func TestRunContextCancelMidway(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		RunContext(ctx, workers, 1_000, func(i int) {
			if ran.Add(1) == 10 {
				cancel()
			}
		})
		cancel()
		got := ran.Load()
		if got < 10 || got == 1_000 {
			t.Fatalf("workers=%d: ran %d jobs; want >=10 and <1000", workers, got)
		}
	}
}
