package pool

import (
	"context"
	"sync"
	"testing"
	"time"

	"profirt/internal/obs"
)

// stepClock advances a fixed amount per Now call, so histograms see
// deterministic nonzero durations without real sleeps.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func TestSharedObservedRecordsQueueWaitAndRun(t *testing.T) {
	m := obs.NewMetrics(&stepClock{})
	s := NewSharedObserved(4, &m.Pool)
	defer s.Close()

	const n = 16
	var mu sync.Mutex
	seen := make(map[int]bool)
	s.RunContext(context.Background(), 4, n, func(i int) {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
	})
	if len(seen) != n {
		t.Fatalf("ran %d jobs, want %d", len(seen), n)
	}
	if got := m.Pool.Run.Snapshot().Count; got != n {
		t.Fatalf("Run histogram count = %d, want %d", got, n)
	}
	if got := m.Pool.QueueWait.Snapshot().Count; got != n {
		t.Fatalf("QueueWait histogram count = %d, want %d", got, n)
	}
	if m.Pool.Run.Snapshot().SumNs <= 0 {
		t.Fatal("Run histogram recorded no time under a stepping clock")
	}
}

func TestSharedObservedInlineRecordsRunOnly(t *testing.T) {
	m := obs.NewMetrics(&stepClock{})
	s := NewSharedObserved(4, &m.Pool)
	defer s.Close()

	s.RunContext(context.Background(), 1, 5, func(i int) {})
	if got := m.Pool.Run.Snapshot().Count; got != 5 {
		t.Fatalf("inline Run count = %d, want 5", got)
	}
	if got := m.Pool.QueueWait.Snapshot().Count; got != 0 {
		t.Fatalf("inline QueueWait count = %d, want 0 (inline jobs never queue)", got)
	}
}

func TestRunJobsSpansNestUnderSubmit(t *testing.T) {
	s := NewShared(4)
	defer s.Close()
	tr := obs.NewTracer("t", nil)
	ctx := obs.WithTracer(context.Background(), tr)

	s.RunJobs(ctx, 4, 8, func(jctx context.Context, i int) {
		_, sp := obs.StartSpan(jctx, "work")
		sp.End()
	})

	events := tr.Events()
	byID := map[uint64]obs.Event{}
	var submitID uint64
	jobs, works := 0, 0
	for _, e := range events {
		byID[e.ID] = e
		switch e.Name {
		case "pool.submit":
			submitID = e.ID
		case "pool.job":
			jobs++
		case "work":
			works++
		}
	}
	if submitID == 0 {
		t.Fatal("no pool.submit span recorded")
	}
	if jobs != 8 || works != 8 {
		t.Fatalf("got %d pool.job and %d work spans, want 8 and 8", jobs, works)
	}
	for _, e := range events {
		switch e.Name {
		case "pool.job":
			if e.Parent != submitID {
				t.Errorf("pool.job %d parented under %d, want pool.submit %d", e.ID, e.Parent, submitID)
			}
		case "work":
			if byID[e.Parent].Name != "pool.job" {
				t.Errorf("work span parented under %q, want pool.job", byID[e.Parent].Name)
			}
		}
	}
}

func TestRunJobsInlineSpans(t *testing.T) {
	s := NewShared(2)
	defer s.Close()
	tr := obs.NewTracer("t", nil)
	ctx := obs.WithTracer(context.Background(), tr)
	s.RunJobs(ctx, 1, 3, func(jctx context.Context, i int) {})
	jobs := 0
	for _, e := range tr.Events() {
		if e.Name == "pool.job" {
			jobs++
			if e.Parent != 0 {
				t.Errorf("inline pool.job has parent %d, want 0 (no submit span)", e.Parent)
			}
		}
	}
	if jobs != 3 {
		t.Fatalf("got %d inline pool.job spans, want 3", jobs)
	}
}

func TestUnobservedPoolRecordsNothing(t *testing.T) {
	s := NewShared(4)
	defer s.Close()
	s.RunContext(context.Background(), 4, 8, func(i int) {})
	// No metrics attached: nothing to assert beyond not panicking, but
	// make sure RunJobs on a plain pool also works with a nil tracer.
	s.RunJobs(context.Background(), 4, 8, func(jctx context.Context, i int) {
		if jctx == nil {
			t.Error("job ctx is nil for a background submission")
		}
	})
}
