package pool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// maxTracker records the high-water mark of a concurrent counter.
type maxTracker struct {
	cur atomic.Int64
	max atomic.Int64
}

func (t *maxTracker) enter() {
	c := t.cur.Add(1)
	for {
		m := t.max.Load()
		if c <= m || t.max.CompareAndSwap(m, c) {
			return
		}
	}
}

func (t *maxTracker) exit() { t.cur.Add(-1) }

func TestSharedRunsEveryIndexOnce(t *testing.T) {
	s := NewShared(4)
	defer s.Close()
	const n = 1000
	counts := make([]atomic.Int32, n)
	s.RunContext(nil, 0, n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

func TestSharedBoundsConcurrencyAcrossSubmitters(t *testing.T) {
	const workers, submitters, jobs = 3, 8, 64
	s := NewShared(workers)
	defer s.Close()
	var running maxTracker
	var wg sync.WaitGroup
	for k := 0; k < submitters; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.RunContext(nil, 0, jobs, func(int) {
				running.enter()
				defer running.exit()
				spin()
			})
		}()
	}
	wg.Wait()
	if got := running.max.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, pool width %d", got, workers)
	}
}

func TestSharedHonorsPerSubmissionLimit(t *testing.T) {
	s := NewShared(8)
	defer s.Close()
	var running maxTracker
	s.RunContext(nil, 2, 64, func(int) {
		running.enter()
		defer running.exit()
		spin()
	})
	if got := running.max.Load(); got > 2 {
		t.Fatalf("observed %d concurrent jobs, submission limit 2", got)
	}
}

func TestSharedLimitOneRunsInline(t *testing.T) {
	s := NewShared(4)
	defer s.Close()
	order := make([]int, 0, 10)
	s.RunContext(nil, 1, 10, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order violated at %d: got %d", i, got)
		}
	}
	if len(order) != 10 {
		t.Fatalf("ran %d of 10 jobs", len(order))
	}
}

func TestSharedPropagatesPanicToItsSubmitter(t *testing.T) {
	s := NewShared(4)
	defer s.Close()
	// A healthy submission alongside the panicking one must complete
	// untouched.
	var okDone atomic.Int32
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.RunContext(nil, 0, 100, func(int) { okDone.Add(1); spin() })
	}()
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Errorf("recovered %v, want boom", r)
			}
		}()
		s.RunContext(nil, 0, 100, func(i int) {
			if i == 7 {
				panic("boom")
			}
			spin()
		})
	}()
	wg.Wait()
	if got := okDone.Load(); got != 100 {
		t.Fatalf("healthy submission ran %d of 100 jobs", got)
	}
}

func TestSharedStopsDispatchOnCancel(t *testing.T) {
	s := NewShared(2)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	s.RunContext(ctx, 0, 1000, func(i int) {
		if ran.Add(1) == 4 {
			cancel()
		}
	})
	// In-flight jobs may finish after the cancel, but dispatch stops:
	// nowhere near the full 1000 run.
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("cancellation did not stop dispatch (ran %d)", got)
	}
	// A pre-cancelled context runs nothing.
	ran.Store(0)
	s.RunContext(ctx, 0, 100, func(int) { ran.Add(1) })
	if got := ran.Load(); got != 0 {
		t.Fatalf("pre-cancelled submission ran %d jobs", got)
	}
}

func TestSharedInterleavesConcurrentSubmitters(t *testing.T) {
	// With one worker, two submissions must still both finish: the
	// round-robin ring alternates their jobs instead of running the
	// first to completion while the second starves behind a lost
	// wakeup.
	s := NewShared(1)
	defer s.Close()
	var wg sync.WaitGroup
	var total atomic.Int32
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.RunContext(nil, 2, 50, func(int) { total.Add(1) })
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 100 {
		t.Fatalf("ran %d of 100 jobs", got)
	}
}

func TestSharedReentrantSubmissionDoesNotDeadlock(t *testing.T) {
	// A job (or a callback it invokes) that submits back to the pool it
	// runs on must not block a worker on work only workers can run. The
	// pool detects the re-entrant call and runs it on a private
	// per-call pool; with every worker inside such a job this would
	// deadlock otherwise. (Width 2 keeps the outer submission on the
	// workers — width 1 would degenerate it to the inline path.)
	s := NewShared(2)
	defer s.Close()
	var inner atomic.Int32
	s.RunContext(nil, 0, 4, func(int) {
		s.RunContext(nil, 2, 8, func(int) { inner.Add(1) })
	})
	if got := inner.Load(); got != 32 {
		t.Fatalf("nested submissions ran %d of 32 jobs", got)
	}
}

func TestSharedCloseIsIdempotentAndRejectsNewWork(t *testing.T) {
	s := NewShared(2)
	s.RunContext(nil, 0, 10, func(int) {})
	s.Close()
	s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("RunContext on a closed pool did not panic")
		}
	}()
	s.RunContext(nil, 0, 4, func(int) {})
}

func TestDoFallsBackToPerCallPool(t *testing.T) {
	var ran atomic.Int32
	Do(nil, nil, 2, 10, func(int) { ran.Add(1) })
	if got := ran.Load(); got != 10 {
		t.Fatalf("per-call fallback ran %d of 10", got)
	}
	s := NewShared(2)
	defer s.Close()
	ran.Store(0)
	Do(nil, s, 2, 10, func(int) { ran.Add(1) })
	if got := ran.Load(); got != 10 {
		t.Fatalf("shared path ran %d of 10", got)
	}
}

// spin burns a little CPU so concurrent jobs overlap observably.
func spin() {
	x := 0
	for i := 0; i < 2000; i++ {
		x += i
	}
	_ = x
}

// TestSharedStats: the occupancy gauges and lifetime counters behind
// Engine.Stats. Mid-fan-out the pool must report non-zero in-flight
// jobs; once drained the gauges return to zero while the counters
// retain the totals.
func TestSharedStats(t *testing.T) {
	s := NewShared(2)
	defer s.Close()

	if st := s.Stats(); st.Workers != 2 || st.InFlight != 0 || st.Jobs != 0 || st.Closed {
		t.Fatalf("fresh pool stats: %+v", st)
	}

	release := make(chan struct{})
	started := make(chan struct{}, 4)
	var observed Stats
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.RunContext(context.Background(), 0, 4, func(i int) {
			started <- struct{}{}
			<-release
		})
	}()
	// Wait until both workers hold a job, then snapshot occupancy.
	<-started
	<-started
	observed = s.Stats()
	close(release)
	<-done

	if observed.InFlight == 0 {
		t.Fatalf("mid-fan-out occupancy was zero: %+v", observed)
	}
	if observed.ActiveSubmissions != 1 {
		t.Fatalf("mid-fan-out active submissions = %d, want 1 (%+v)", observed.ActiveSubmissions, observed)
	}

	st := s.Stats()
	if st.InFlight != 0 || st.ActiveSubmissions != 0 || st.QueueDepth != 0 {
		t.Fatalf("drained pool still shows occupancy: %+v", st)
	}
	if st.Jobs != 4 || st.Submissions != 1 {
		t.Fatalf("lifetime counters after one 4-job submission: %+v", st)
	}

	// Sequential submissions run inline and are tallied separately.
	s.RunContext(context.Background(), 1, 3, func(int) {})
	st = s.Stats()
	if st.InlineSubmissions != 1 || st.Jobs != 4 {
		t.Fatalf("inline submission accounting: %+v", st)
	}

	s.Close()
	if st := s.Stats(); !st.Closed {
		t.Fatalf("closed pool not reported: %+v", st)
	}
	if !s.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}
