package pool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 8, 100} {
		const n = 57
		visits := make([]int32, n)
		Run(workers, n, func(i int) {
			atomic.AddInt32(&visits[i], 1)
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	called := false
	Run(4, 0, func(int) { called = true })
	Run(4, -3, func(int) { called = true })
	if called {
		t.Error("fn called for empty job set")
	}
}

func TestRunRepanicsOnCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			Run(workers, 16, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
			t.Errorf("workers=%d: Run returned instead of panicking", workers)
		}()
	}
}

func TestRunSequentialOnCallingGoroutine(t *testing.T) {
	// workers <= 1 must preserve index order (the sequential guarantee
	// forEachCell's contract documents).
	var order []int
	Run(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d jobs, want 5", len(order))
	}
}
