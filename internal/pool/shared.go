package pool

import (
	"bytes"
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"profirt/internal/obs"
)

// Shared is the long-lived counterpart of Run: a fixed set of worker
// goroutines serving any number of concurrent submitters. Where every
// Run call spins its own workers — so N concurrent batches oversubscribe
// the machine with N×GOMAXPROCS goroutines — a Shared pool admits all of
// them onto one bounded worker set, interleaving their jobs round-robin
// so no submitter starves and the total number of running jobs never
// exceeds the pool width.
//
// Admission is fair at job granularity: active submissions queue in a
// ring, and each worker takes one index from the head submission before
// it is re-queued at the tail, so M concurrent submissions each see
// roughly workers/M of the pool. A submission may additionally bound its
// own in-flight jobs (the per-call Parallelism knob): a submission at
// its limit parks until one of its jobs completes. Two deliberate
// exceptions run on the caller instead of the workers — submissions
// whose effective limit is 1 (sequential calls must stay free of pool
// overhead, the historical "Parallelism: 1 costs nothing" contract,
// which also covers n == 1) and re-entrant submissions from a worker
// (below) — so the precise bound is: pool-width jobs on the workers,
// plus any callers running those degenerate submissions inline.
//
// Re-entrancy is safe but not shared: a RunContext issued from one of
// the pool's own workers (a job, or a callback a job invokes, that
// submits again) is detected and executed on a private per-call pool
// instead — blocking a worker on work only that worker could run would
// deadlock. Such nested fan-outs therefore run with the pre-Shared
// per-call semantics rather than the pool's admission.
type Shared struct {
	mu      sync.Mutex
	cond    *sync.Cond // workers wait here for queued work
	queue   []*submission
	gids    map[int64]struct{} // goroutine ids of this pool's workers
	closed  bool
	workers int
	wg      sync.WaitGroup

	// Occupancy gauges and lifetime counters behind Stats. The gauges
	// (inFlight, active) are mutated only where the mutex is already
	// held by the dispatch bookkeeping, so tracking them costs nothing
	// extra; the counters are plain int64s under the same mutex. Inline
	// submissions (limit 1, or re-entrant fallback) never touch the
	// workers, so they are tallied separately with an atomic.
	inFlight    int   // jobs executing on workers right now
	active      int   // admitted submissions not yet settled
	submissions int64 // total submissions admitted to the workers
	jobs        int64 // total jobs executed on the workers
	inline      atomic.Int64

	// obs, when set (NewSharedObserved), records per-job queue-wait
	// and run-time histograms. Purely observational: recording never
	// blocks dispatch and timing never reaches job results.
	obs *obs.PoolMetrics
}

// Stats is a point-in-time snapshot of a Shared pool's occupancy and
// lifetime counters (see Shared.Stats).
type Stats struct {
	// Workers is the pool width.
	Workers int
	// InFlight is the number of jobs executing on workers at the
	// snapshot instant — the pool's occupancy, between 0 and Workers.
	InFlight int
	// QueueDepth is the number of submissions waiting in the admission
	// ring at the snapshot instant (parked submissions — at their
	// in-flight limit — are not in the ring and thus not counted).
	QueueDepth int
	// ActiveSubmissions counts RunContext calls admitted to the workers
	// and not yet settled.
	ActiveSubmissions int
	// Submissions counts RunContext calls ever admitted to the workers.
	Submissions int64
	// InlineSubmissions counts calls that ran on their caller instead:
	// sequential submissions (effective limit 1) and re-entrant
	// fan-outs from a worker.
	InlineSubmissions int64
	// Jobs counts jobs executed on the workers since construction.
	Jobs int64
	// Closed reports whether Close has been called.
	Closed bool
}

// Stats snapshots the pool's occupancy gauges and lifetime counters.
// Safe to call from any goroutine at any time, including concurrently
// with Close.
func (s *Shared) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Workers:           s.workers,
		InFlight:          s.inFlight,
		QueueDepth:        len(s.queue),
		ActiveSubmissions: s.active,
		Submissions:       s.submissions,
		Jobs:              s.jobs,
		Closed:            s.closed,
	}
	s.mu.Unlock()
	st.InlineSubmissions = s.inline.Load()
	return st
}

// Closed reports whether Close has been called. A closed pool rejects
// new submissions (RunContext panics; Engine-level callers gate with
// their own sentinel before reaching it).
func (s *Shared) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// submission is one RunJobs call in flight on a Shared pool.
type submission struct {
	ctx      context.Context
	fn       func(context.Context, int)
	n        int
	limit    int
	next     int // next index to dispatch
	inflight int
	stopped  bool // ctx cancelled or a job panicked: dispatch no more
	queued   bool // currently in the ring
	panicked bool
	panicVal any
	done     chan struct{}

	enqueued time.Time // ring-entry instant; set only when the pool records metrics
	traced   bool      // ctx carries an obs.Tracer: jobs open pool.job spans
}

// hasWork reports whether the submission still has indices to dispatch.
// Caller holds the pool mutex.
func (s *submission) hasWork() bool { return !s.stopped && s.next < s.n }

// settled reports whether the submission is finished: nothing running
// and nothing left to dispatch. Caller holds the pool mutex.
func (s *submission) settled() bool { return s.inflight == 0 && !s.hasWork() }

// NewShared builds a pool of `workers` long-lived goroutines
// (workers <= 0 selects runtime.GOMAXPROCS(0)). Close releases them.
func NewShared(workers int) *Shared {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Shared{workers: workers, gids: make(map[int64]struct{}, workers)}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// NewSharedObserved is NewShared plus latency instrumentation: every
// job records its queue wait (submission enqueue to dispatch) and run
// time into m. m must outlive the pool; a nil m is NewShared.
func NewSharedObserved(workers int, m *obs.PoolMetrics) *Shared {
	s := NewShared(workers)
	s.obs = m
	return s
}

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine N [running]: ..."). One runtime.Stack of depth zero per
// RunContext call — microseconds, paid once per submission, never per
// job.
func goroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	head := bytes.TrimPrefix(buf[:n], []byte("goroutine "))
	if i := bytes.IndexByte(head, ' '); i > 0 {
		if id, err := strconv.ParseInt(string(head[:i]), 10, 64); err == nil {
			return id
		}
	}
	return -1
}

// Workers returns the pool width.
func (s *Shared) Workers() int { return s.workers }

// Close stops the workers after their current jobs and waits for them
// to exit. Submissions still in flight are completed first; RunContext
// after Close panics. Close is idempotent.
func (s *Shared) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// RunContext evaluates fn(i) for every i in [0, n) on the shared
// workers, with at most limit jobs of this call in flight at once
// (limit <= 0 means the pool width), and blocks until every dispatched
// job has finished. The contract matches the per-call RunContext: a
// limit of 1 degenerates to a plain sequential loop on the calling
// goroutine; once ctx is done no further indices are dispatched and the
// in-flight jobs are awaited (indices never dispatched are simply not
// called); a panicking job stops dispatch and the panic is re-raised
// here with its original value. Any number of goroutines may call
// RunContext concurrently — that is the point. A call issued from one
// of this pool's own workers runs on a private per-call pool instead
// (see the re-entrancy note on Shared).
func (s *Shared) RunContext(ctx context.Context, limit, n int, fn func(i int)) {
	s.RunJobs(ctx, limit, n, func(_ context.Context, i int) { fn(i) })
}

// RunJobs is RunContext for jobs that want their own context: each
// job receives a context descended from ctx that carries the job's
// pool.job tracing span (when ctx is traced), so work the job does —
// cache lookups, nested spans — nests under the job in trace exports.
// On an observed pool (NewSharedObserved) every worker-run job also
// records queue-wait and run-time histograms; inline jobs (effective
// limit 1) never queue and record run time only, and re-entrant
// fallback jobs run on a private per-call pool outside the pool's
// instrumentation.
func (s *Shared) RunJobs(ctx context.Context, limit, n int, fn func(ctx context.Context, i int)) {
	if n <= 0 {
		return
	}
	if limit <= 0 || limit > s.workers {
		limit = s.workers
	}
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		s.inline.Add(1)
		traced := obs.TracerFrom(ctx) != nil
		pm := s.obs
		// Chain the clock reads: each job's end reading doubles as the
		// next job's start, so timing n inline jobs costs n+1 reads
		// instead of 2n — the difference is measurable where the wall
		// clock has no fast path.
		var prev time.Time
		if pm != nil {
			prev = pm.Clock.Now()
		}
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			s.runInline(ctx, traced, i, fn)
			if pm != nil {
				now := pm.Clock.Now()
				pm.Run.Observe(now.Sub(prev))
				prev = now
			}
		}
		return
	}
	if ctx != nil && ctx.Err() != nil {
		return
	}
	gid := goroutineID()
	s.mu.Lock()
	_, reentrant := s.gids[gid]
	s.mu.Unlock()
	if reentrant {
		// Submitted from one of our own workers: enqueuing would block
		// a worker on work only workers can run — a full pool of such
		// jobs deadlocks. Fall back to a per-call pool, the pre-Shared
		// behaviour for nested fan-out.
		s.inline.Add(1)
		RunContext(ctx, limit, n, func(i int) { fn(ctx, i) })
		return
	}
	sub := &submission{ctx: ctx, fn: fn, n: n, limit: limit, done: make(chan struct{})}
	if sub.traced = obs.TracerFrom(ctx) != nil; sub.traced {
		var sp obs.Span
		sub.ctx, sp = obs.StartSpan(ctx, "pool.submit")
		defer sp.End()
	}
	if s.obs != nil {
		sub.enqueued = s.obs.Clock.Now()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("pool: RunContext on a closed Shared pool")
	}
	sub.queued = true
	s.queue = append(s.queue, sub)
	s.submissions++
	s.active++
	s.cond.Broadcast()
	s.mu.Unlock()
	<-sub.done
	if sub.panicked {
		panic(sub.panicVal)
	}
}

// runInline executes one job of an inline (limit <= 1) submission on
// the calling goroutine, with the same pool.job span a worker would
// apply. Run-time recording lives in the caller's loop (chained clock
// reads); queue wait is not recorded: inline jobs never enter the ring.
func (s *Shared) runInline(ctx context.Context, traced bool, i int, fn func(context.Context, int)) {
	if traced {
		var sp obs.Span
		ctx, sp = obs.StartSpanArg(ctx, "pool.job", int64(i))
		defer sp.End()
	}
	fn(ctx, i)
}

// worker is the loop every pool goroutine runs: take one (submission,
// index) pair, execute it, repeat; sleep when the ring is empty.
func (s *Shared) worker() {
	defer s.wg.Done()
	gid := goroutineID()
	s.mu.Lock()
	s.gids[gid] = struct{}{}
	for {
		sub, idx, ok := s.take()
		if !ok {
			if s.closed {
				// Goroutine ids are recycled by the runtime; drop ours
				// so a future goroutine reusing it is not misread as a
				// worker.
				delete(s.gids, gid)
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			continue
		}
		s.mu.Unlock()
		s.exec(sub, idx)
		s.mu.Lock()
	}
}

// take pops ring entries until it finds a submission with dispatchable
// work, claims one index from it, and re-queues it at the tail when it
// may have more. Submissions at their in-flight limit are parked
// (dropped from the ring; job completion re-queues them), exhausted or
// stopped ones are dropped for good. Caller holds the pool mutex.
func (s *Shared) take() (*submission, int, bool) {
	for len(s.queue) > 0 {
		sub := s.queue[0]
		s.queue = s.queue[1:]
		sub.queued = false
		if !sub.hasWork() || sub.inflight >= sub.limit {
			continue
		}
		idx := sub.next
		sub.next++
		sub.inflight++
		s.inFlight++
		if sub.hasWork() && sub.inflight < sub.limit {
			sub.queued = true
			s.queue = append(s.queue, sub)
		}
		return sub, idx, true
	}
	return nil, 0, false
}

// exec runs one job and settles its bookkeeping: panics latch the
// submission stopped (first value kept for the submitter to re-raise),
// cancellation latches it stopped, the last job signals the submitter,
// and a still-live submission parked at its limit is re-queued.
func (s *Shared) exec(sub *submission, idx int) {
	defer func() {
		r := recover()
		s.mu.Lock()
		sub.inflight--
		s.inFlight--
		s.jobs++
		if r != nil {
			sub.stopped = true
			if !sub.panicked {
				sub.panicked = true
				sub.panicVal = r
			}
		}
		if sub.ctx != nil && sub.ctx.Err() != nil {
			sub.stopped = true
		}
		switch {
		case sub.settled():
			s.active--
			close(sub.done)
		case sub.hasWork() && !sub.queued:
			sub.queued = true
			s.queue = append(s.queue, sub)
			s.cond.Signal()
		}
		s.mu.Unlock()
	}()
	if sub.ctx != nil && sub.ctx.Err() != nil {
		return
	}
	jctx := sub.ctx
	if sub.traced {
		var sp obs.Span
		jctx, sp = obs.StartSpanArg(jctx, "pool.job", int64(idx))
		defer sp.End()
	}
	if pm := s.obs; pm != nil {
		start := pm.Clock.Now()
		pm.QueueWait.Observe(start.Sub(sub.enqueued))
		sub.fn(jctx, idx)
		// A panicking job skips run-time recording; the panic is the
		// signal that matters there.
		pm.Run.Observe(pm.Clock.Now().Sub(start))
		return
	}
	sub.fn(jctx, idx)
}

// Do evaluates fn(i) for every i in [0, n): on the shared pool p when
// one is provided (workers then bounds this call's in-flight jobs), or
// on a per-call pool of `workers` goroutines otherwise. It is the
// bridge every batch layer threads its optional pool handle through —
// a nil *Shared keeps the historical per-call behaviour.
func Do(ctx context.Context, p *Shared, workers, n int, fn func(i int)) {
	if p != nil {
		p.RunContext(ctx, workers, n, fn)
		return
	}
	RunContext(ctx, workers, n, fn)
}
