// Package pool provides the bounded index-fan-out used by the parallel
// evaluation layers (the experiment cell-job harness and AnalyzeBatch):
// n independent jobs identified by index, executed by a fixed number of
// workers pulling from an atomic counter. Callers own determinism —
// each job must write only to state keyed by its own index.
//
// Two execution modes share that contract: Run/RunContext spin a
// per-call pool (workers live for one batch), while Shared (shared.go)
// is a long-lived pool any number of concurrent submitters share with
// round-robin fair admission — the execution layer behind the root
// package's Engine. Do bridges the two: batch layers thread an
// optional *Shared and fall back to the per-call pool when it is nil.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run evaluates fn(i) for every i in [0, n) on at most workers
// goroutines and blocks until all jobs finish. workers <= 0 means
// runtime.GOMAXPROCS(0) — the shared default behind every Parallelism
// knob. workers == 1 (or clamping to n == 1) degenerates to a plain
// sequential loop on the calling goroutine, so "Parallelism: 1" costs
// nothing over the pre-parallel code path. A panic in fn stops the
// pool (remaining jobs are skipped) and is re-raised on the calling
// goroutine with its original value, matching sequential semantics:
// the experiment drivers panic on substrate errors, and that must
// stay recoverable by the caller at any worker count. (The re-raise
// trades away the worker's stack trace; the failing cell is best
// located by re-running with Parallelism: 1.)
func Run(workers, n int, fn func(i int)) {
	RunContext(nil, workers, n, fn)
}

// RunContext is Run with cooperative cancellation: once ctx is done,
// workers stop pulling new indices and RunContext returns after the
// in-flight jobs finish. Jobs never dispatched are simply not called —
// callers that must distinguish "ran" from "skipped" should record
// completion in their per-index state (the batch layers pre-mark every
// slot Skipped and clear the mark inside fn). A nil ctx means no
// cancellation, which is exactly Run.
func RunContext(ctx context.Context, workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	cancelled := func() bool { return ctx != nil && ctx.Err() != nil }
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cancelled() {
				return
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var stopped atomic.Bool
	var panicMu sync.Mutex
	var panicVal any
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stopped.Load() || cancelled() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							stopped.Store(true)
							panicMu.Lock()
							if panicVal == nil {
								panicVal = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
