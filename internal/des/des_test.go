package des

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(5, func() { order = append(order, 0) })
	e.Schedule(10, func() { order = append(order, 2) }) // same time, later insertion
	e.Run(100)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v, want [0 1 2]", order)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v, want horizon 100", e.Now())
	}
	if e.Processed != 3 {
		t.Errorf("Processed = %d, want 3", e.Processed)
	}
}

func TestSameInstantPriority(t *testing.T) {
	var e Engine
	var order []string
	e.SchedulePrio(7, 2, func() { order = append(order, "low") })
	e.SchedulePrio(7, 1, func() { order = append(order, "high") })
	e.Run(10)
	if order[0] != "high" || order[1] != "low" {
		t.Errorf("priority order wrong: %v", order)
	}
}

func TestScheduleAfterAndNesting(t *testing.T) {
	var e Engine
	var fired []Ticks
	e.Schedule(3, func() {
		fired = append(fired, e.Now())
		e.ScheduleAfter(4, func() { fired = append(fired, e.Now()) })
	})
	e.Run(100)
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 7 {
		t.Errorf("fired = %v, want [3 7]", fired)
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	ran := false
	ev := e.Schedule(5, func() { ran = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Error("Cancelled() should report true")
	}
	e.Run(10)
	if ran {
		t.Error("cancelled event must not fire")
	}
	if e.Processed != 0 {
		t.Errorf("Processed = %d, want 0", e.Processed)
	}
}

func TestHorizonExcludesBoundary(t *testing.T) {
	var e Engine
	ran := false
	e.Schedule(10, func() { ran = true })
	e.Run(10)
	if ran {
		t.Error("event at the horizon must not fire")
	}
	// Resuming with a larger horizon fires it.
	e.Run(11)
	if !ran {
		t.Error("resumed run must fire the deferred event")
	}
}

func TestStop(t *testing.T) {
	var e Engine
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.Run(10)
	if count != 1 {
		t.Errorf("count = %d, want 1 (stopped)", count)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	// A further Run resumes.
	e.Run(10)
	if count != 2 {
		t.Errorf("count after resume = %d, want 2", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling into the past")
			}
		}()
		e.Schedule(3, func() {})
	})
	e.Run(10)
}

func TestEventAt(t *testing.T) {
	var e Engine
	ev := e.Schedule(42, func() {})
	if ev.At() != 42 {
		t.Errorf("At = %v, want 42", ev.At())
	}
}

func TestPayloadDispatchOrdering(t *testing.T) {
	var e Engine
	var got []Payload
	e.SetDispatch(func(p Payload) { got = append(got, p) })
	e.SchedulePayload(10, 0, Payload{Kind: 2, X: 2})
	e.SchedulePayload(5, 0, Payload{Kind: 1, X: 1, A: 99})
	e.SchedulePayload(10, -1, Payload{Kind: 3, X: 3}) // same instant, higher prio
	e.Run(100)
	if len(got) != 3 || got[0].X != 1 || got[1].X != 3 || got[2].X != 2 {
		t.Errorf("payload order = %v, want X sequence 1,3,2", got)
	}
	if got[0].A != 99 || got[0].Kind != 1 {
		t.Errorf("payload fields not carried: %+v", got[0])
	}
	if e.Processed != 3 {
		t.Errorf("Processed = %d, want 3", e.Processed)
	}
}

func TestPayloadAndClosureShareOrder(t *testing.T) {
	var e Engine
	var order []string
	e.SetDispatch(func(p Payload) { order = append(order, "payload") })
	e.Schedule(4, func() { order = append(order, "closure") })
	e.SchedulePayload(4, 0, Payload{}) // same time, later insertion
	e.Run(10)
	if len(order) != 2 || order[0] != "closure" || order[1] != "payload" {
		t.Errorf("order = %v, want [closure payload]", order)
	}
}

func TestResetReuse(t *testing.T) {
	run := func(e *Engine) []Ticks {
		var log []Ticks
		for i := 0; i < 100; i++ {
			at := Ticks((i * 31) % 97)
			e.Schedule(at, func() { log = append(log, e.Now()) })
		}
		e.Run(1000)
		return log
	}
	var fresh Engine
	want := run(&fresh)

	var reused Engine
	h := reused.Schedule(5, func() {})
	h.Cancel()
	run(&reused) // dirty the engine
	reused.Reset()
	if reused.Now() != 0 || reused.Pending() != 0 || reused.Processed != 0 {
		t.Fatalf("Reset left state: now=%d pending=%d processed=%d",
			reused.Now(), reused.Pending(), reused.Processed)
	}
	got := run(&reused)
	if len(got) != len(want) {
		t.Fatalf("lengths %d/%d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("reused engine diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []Ticks {
		var e Engine
		var log []Ticks
		for i := 0; i < 500; i++ {
			at := Ticks((i * 7919) % 1000)
			e.Schedule(at, func() { log = append(log, e.Now()) })
		}
		e.Run(1000)
		return log
	}
	a, b := run(), run()
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("time went backwards at %d", i)
		}
	}
}
