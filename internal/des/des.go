// Package des is a minimal deterministic discrete-event simulation
// engine: an event calendar ordered by (time, priority, insertion
// sequence) and a run loop. The PROFIBUS network simulator is built on
// it; keeping the engine generic also makes its scheduling semantics
// independently testable.
//
// The calendar is a hand-rolled binary min-heap over event values, not
// container/heap over pointers: the simulator schedules one event per
// message release, bus cycle and token pass, so a per-event heap
// allocation dominates the whole-suite allocation profile. For the same
// reason events can carry a small value Payload dispatched through a
// single engine-level handler instead of a per-event closure
// (SchedulePayload), and an Engine can be wiped for reuse with Reset
// while keeping its calendar capacity.
package des

import (
	"fmt"

	"profirt/internal/timeunit"
)

// Ticks aliases the shared time base.
type Ticks = timeunit.Ticks

// Payload is the value argument of a closure-free event: a small
// bag of operands interpreted by the engine's dispatch handler (see
// SetDispatch). Kind conventionally selects the handler branch; the
// remaining fields are its operands.
type Payload struct {
	// A and B are two time-valued operands.
	A, B Ticks
	// X, Y and Z are three integer operands (typically indexes).
	X, Y, Z int32
	// Kind selects the dispatch branch; Flags carries boolean operands.
	Kind, Flags uint8
}

// PayloadFunc handles payload events (see SetDispatch).
type PayloadFunc func(p Payload)

// event is a calendar entry. Exactly one of fn / payload-dispatch is
// used: fn != nil runs the closure, otherwise the engine dispatch
// handler receives p.
type event struct {
	at   Ticks
	seq  int64
	fn   func()
	p    Payload
	prio int
}

// Handle identifies a scheduled event for cancellation. The zero value
// is inert. Handles are values: they stay valid (and cheap) after the
// event fires.
type Handle struct {
	e   *Engine
	at  Ticks
	seq int64
}

// Cancel marks the event so it will not fire. Safe to call more than
// once; has no effect if the event already fired.
func (h Handle) Cancel() {
	if h.e == nil {
		return
	}
	if h.e.cancelled == nil {
		h.e.cancelled = make(map[int64]struct{})
	}
	h.e.cancelled[h.seq] = struct{}{}
}

// Cancelled reports whether Cancel was called.
func (h Handle) Cancelled() bool {
	if h.e == nil {
		return false
	}
	_, ok := h.e.cancelled[h.seq]
	return ok
}

// At returns the event's scheduled time.
func (h Handle) At() Ticks { return h.at }

// Engine is the simulation core. The zero value is ready to use.
type Engine struct {
	now    Ticks
	seq    int64
	events []event // binary min-heap by (at, prio, seq)
	// cancelled holds the seq of every Cancel call; entries persist
	// until Reset so Cancelled() keeps answering after the skip.
	cancelled map[int64]struct{}
	dispatch  PayloadFunc
	stopped   bool
	// Processed counts fired (non-cancelled) events.
	Processed int64
}

// Now returns the current simulation time.
func (e *Engine) Now() Ticks { return e.now }

// SetDispatch installs the handler for payload events. It must be set
// before the first SchedulePayload fires; one handler serves the whole
// engine so scheduling an event allocates nothing.
func (e *Engine) SetDispatch(fn PayloadFunc) { e.dispatch = fn }

// Schedule enqueues fn to run at absolute time at with priority 0.
// Events at the same instant fire in ascending priority then insertion
// order. Scheduling in the past panics: it always indicates a modelling
// bug.
func (e *Engine) Schedule(at Ticks, fn func()) Handle {
	return e.SchedulePrio(at, 0, fn)
}

// ScheduleAfter enqueues fn to run delay ticks from now.
func (e *Engine) ScheduleAfter(delay Ticks, fn func()) Handle {
	return e.SchedulePrio(e.now+delay, 0, fn)
}

// SchedulePrio enqueues fn at an absolute time with an explicit
// same-instant priority (lower fires first).
func (e *Engine) SchedulePrio(at Ticks, prio int, fn func()) Handle {
	e.checkPast(at)
	h := Handle{e: e, at: at, seq: e.seq}
	e.push(event{at: at, prio: prio, seq: e.seq, fn: fn})
	e.seq++
	return h
}

// SchedulePayload enqueues a closure-free event at an absolute time
// with an explicit same-instant priority. The engine dispatch handler
// (SetDispatch) receives p when the event fires. It shares the
// (time, priority, insertion sequence) order with closure events.
func (e *Engine) SchedulePayload(at Ticks, prio int, p Payload) {
	e.checkPast(at)
	e.push(event{at: at, prio: prio, seq: e.seq, p: p})
	e.seq++
}

// SchedulePayloadAfter enqueues a closure-free event delay ticks from
// now with priority 0.
func (e *Engine) SchedulePayloadAfter(delay Ticks, p Payload) {
	e.SchedulePayload(e.now+delay, 0, p)
}

func (e *Engine) checkPast(at Ticks) {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (%d < %d)", at, e.now))
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events in order until the calendar is empty, the
// horizon is passed, or Stop is called. Events scheduled exactly at the
// horizon do not fire (the simulated interval is [0, horizon)). It
// returns the simulation time at exit.
func (e *Engine) Run(horizon Ticks) Ticks {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		if len(e.cancelled) > 0 {
			if _, ok := e.cancelled[ev.seq]; ok {
				e.pop()
				continue
			}
		}
		if ev.at >= horizon {
			// Leave the event in place so a later Run with a larger
			// horizon resumes.
			e.now = horizon
			return e.now
		}
		e.pop()
		e.now = ev.at
		e.Processed++
		if ev.fn != nil {
			ev.fn()
		} else {
			e.dispatch(ev.p)
		}
	}
	if e.now < horizon {
		e.now = horizon
	}
	return e.now
}

// Pending returns the number of not-yet-fired (possibly cancelled)
// events in the calendar.
func (e *Engine) Pending() int { return len(e.events) }

// Reset wipes the engine for reuse: time, sequence numbers, the
// processed count and any pending or cancelled events are cleared while
// the calendar's capacity (and the dispatch handler) are kept, so a
// pooled simulator pays no per-run calendar allocations.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.Processed = 0
	clear(e.events) // drop closure references before truncating
	e.events = e.events[:0]
	clear(e.cancelled)
}

// less orders the calendar by (time, priority, insertion sequence).
func (e *Engine) less(i, j int) bool {
	a, b := &e.events[i], &e.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

// pop removes the calendar minimum (the caller has already read it from
// e.events[0]).
func (e *Engine) pop() {
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events[n] = event{} // drop the closure reference
	e.events = e.events[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && e.less(r, l) {
			child = r
		}
		if !e.less(child, i) {
			break
		}
		e.events[i], e.events[child] = e.events[child], e.events[i]
		i = child
	}
}
