// Package des is a minimal deterministic discrete-event simulation
// engine: an event calendar ordered by (time, priority, insertion
// sequence) and a run loop. The PROFIBUS network simulator is built on
// it; keeping the engine generic also makes its scheduling semantics
// independently testable.
package des

import (
	"container/heap"
	"fmt"

	"profirt/internal/timeunit"
)

// Ticks aliases the shared time base.
type Ticks = timeunit.Ticks

// Event is a scheduled callback.
type Event struct {
	at   Ticks
	prio int
	seq  int64
	fn   func()
	// cancelled events stay in the heap but are skipped on pop.
	cancelled bool
}

// Cancel marks the event so it will not fire. Safe to call more than
// once; has no effect if the event already fired.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancelled }

// At returns the event's scheduled time.
func (e *Event) At() Ticks { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// Engine is the simulation core. The zero value is ready to use.
type Engine struct {
	now     Ticks
	seq     int64
	events  eventHeap
	stopped bool
	// Processed counts fired (non-cancelled) events.
	Processed int64
}

// Now returns the current simulation time.
func (e *Engine) Now() Ticks { return e.now }

// Schedule enqueues fn to run at absolute time at with priority 0.
// Events at the same instant fire in ascending priority then insertion
// order. Scheduling in the past panics: it always indicates a modelling
// bug.
func (e *Engine) Schedule(at Ticks, fn func()) *Event {
	return e.SchedulePrio(at, 0, fn)
}

// ScheduleAfter enqueues fn to run delay ticks from now.
func (e *Engine) ScheduleAfter(delay Ticks, fn func()) *Event {
	return e.SchedulePrio(e.now+delay, 0, fn)
}

// SchedulePrio enqueues fn at an absolute time with an explicit
// same-instant priority (lower fires first).
func (e *Engine) SchedulePrio(at Ticks, prio int, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (%d < %d)", at, e.now))
	}
	ev := &Event{at: at, prio: prio, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events in order until the calendar is empty, the
// horizon is passed, or Stop is called. Events scheduled exactly at the
// horizon do not fire (the simulated interval is [0, horizon)). It
// returns the simulation time at exit.
func (e *Engine) Run(horizon Ticks) Ticks {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		if ev.at >= horizon {
			// Push back so a later Run with a larger horizon resumes.
			heap.Push(&e.events, ev)
			e.now = horizon
			return e.now
		}
		e.now = ev.at
		e.Processed++
		ev.fn()
	}
	if e.now < horizon {
		e.now = horizon
	}
	return e.now
}

// Pending returns the number of not-yet-fired (possibly cancelled)
// events in the calendar.
func (e *Engine) Pending() int { return len(e.events) }
