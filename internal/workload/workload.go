// Package workload generates synthetic task sets and PROFIBUS stream
// sets for the experiments: UUniFast utilisation splitting, log-uniform
// periods, constrained deadlines, payload sizing, and the
// distributed-computer-controlled-system (DCCS) presets that mirror the
// workloads motivating the paper's introduction (sensor polling,
// actuator updates, alarm traffic).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/fdl"
	"profirt/internal/profibus"
	"profirt/internal/sched"
	"profirt/internal/timeunit"
)

// Ticks aliases the shared time base.
type Ticks = timeunit.Ticks

// UUniFast splits total utilisation u across n tasks with an unbiased
// uniform distribution over the simplex (Bini & Buttazzo's UUniFast).
func UUniFast(rng *rand.Rand, n int, u float64) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	sum := u
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i-1))
		out[i] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}

// TaskSetParams controls random task-set generation.
type TaskSetParams struct {
	// N is the number of tasks.
	N int
	// Utilization is the target total utilisation.
	Utilization float64
	// PeriodMin/PeriodMax bound the log-uniform period draw.
	PeriodMin, PeriodMax Ticks
	// DeadlineMin is the lower bound of the deadline ratio D/T; the
	// ratio is drawn uniformly in [DeadlineMin, 1]. Use 1 for implicit
	// deadlines.
	DeadlineRatioMin float64
	// MaxJitterRatio bounds release jitter as a fraction of the period
	// (0 disables jitter).
	MaxJitterRatio float64
}

// DefaultTaskSetParams returns a reasonable sweep configuration.
func DefaultTaskSetParams(n int, u float64) TaskSetParams {
	return TaskSetParams{
		N:                n,
		Utilization:      u,
		PeriodMin:        100,
		PeriodMax:        10_000,
		DeadlineRatioMin: 1,
	}
}

// TaskSet draws a random task set with the given parameters. Execution
// times are max(1, round(U_i * T_i)), so very small utilisation shares
// are clamped and the realised total utilisation can deviate slightly;
// callers that need exactness should inspect the result.
func TaskSet(rng *rand.Rand, p TaskSetParams) sched.TaskSet {
	if p.PeriodMin <= 0 || p.PeriodMax < p.PeriodMin {
		panic(fmt.Sprintf("workload: bad period range [%d,%d]", p.PeriodMin, p.PeriodMax))
	}
	us := UUniFast(rng, p.N, p.Utilization)
	ts := make(sched.TaskSet, p.N)
	for i := range ts {
		T := logUniform(rng, p.PeriodMin, p.PeriodMax)
		c := Ticks(math.Round(us[i] * float64(T)))
		if c < 1 {
			c = 1
		}
		if c > T {
			c = T
		}
		ratio := 1.0
		if p.DeadlineRatioMin < 1 {
			ratio = p.DeadlineRatioMin + rng.Float64()*(1-p.DeadlineRatioMin)
		}
		d := Ticks(math.Round(ratio * float64(T)))
		if d < c {
			d = c
		}
		var j Ticks
		if p.MaxJitterRatio > 0 {
			j = Ticks(rng.Float64() * p.MaxJitterRatio * float64(T))
		}
		ts[i] = sched.Task{
			Name: fmt.Sprintf("t%d", i),
			C:    c, D: d, T: T, J: j,
		}
	}
	return ts
}

// logUniform draws from [lo, hi] with log-uniform density, giving the
// classic wide spread of periods.
func logUniform(rng *rand.Rand, lo, hi Ticks) Ticks {
	if lo == hi {
		return lo
	}
	x := math.Exp(math.Log(float64(lo)) + rng.Float64()*(math.Log(float64(hi))-math.Log(float64(lo))))
	t := Ticks(math.Round(x))
	if t < lo {
		t = lo
	}
	if t > hi {
		t = hi
	}
	return t
}

// StreamSetParams controls random PROFIBUS network generation.
type StreamSetParams struct {
	// Masters is the number of master stations.
	Masters int
	// StreamsPerMaster is the number of high-priority streams each.
	StreamsPerMaster int
	// PeriodMin/PeriodMax bound stream periods (bit times).
	PeriodMin, PeriodMax Ticks
	// DeadlineRatioMin: D/T drawn uniformly in [DeadlineRatioMin, 1].
	DeadlineRatioMin float64
	// PayloadMax bounds request/response payload bytes.
	PayloadMax int
	// MaxJitter bounds per-stream release jitter (bit times).
	MaxJitter Ticks
	// TTR is the target rotation time for both analysis and simulation.
	TTR Ticks
	// Dispatcher configures every master's AP policy.
	Dispatcher ap.Policy
	// LowPriorityLoad adds one low-priority background stream per
	// master when true.
	LowPriorityLoad bool
}

// DefaultStreamSetParams returns a mid-size network setup.
func DefaultStreamSetParams() StreamSetParams {
	return StreamSetParams{
		Masters:          3,
		StreamsPerMaster: 3,
		PeriodMin:        20_000,
		PeriodMax:        80_000,
		DeadlineRatioMin: 0.6,
		PayloadMax:       16,
		MaxJitter:        1_000,
		TTR:              5_000,
		Dispatcher:       ap.FCFS,
	}
}

// SlaveAddr is the shared responder address used by generated networks.
const SlaveAddr byte = 100

// StreamSet draws a matched pair: the analytic network model and the
// simulator configuration, both describing the same system.
func StreamSet(rng *rand.Rand, p StreamSetParams) (core.Network, profibus.Config) {
	bus := fdl.DefaultBusParams()
	net := core.Network{TTR: p.TTR, TokenPass: bus.TokenPassTicks()}
	cfg := profibus.Config{
		Bus:     bus,
		TTR:     p.TTR,
		Horizon: 1_000_000,
		Slaves:  []profibus.SlaveConfig{{Addr: SlaveAddr, TSDR: bus.TSDRmax}},
		Jitter:  profibus.JitterAdversarial,
		Seed:    rng.Int63(),
	}
	for k := 0; k < p.Masters; k++ {
		addr := byte(k + 1)
		mc := profibus.MasterConfig{Addr: addr, Dispatcher: p.Dispatcher}
		cm := core.Master{Name: fmt.Sprintf("M%d", k+1)}
		for s := 0; s < p.StreamsPerMaster; s++ {
			period := logUniform(rng, p.PeriodMin, p.PeriodMax)
			ratio := p.DeadlineRatioMin
			if ratio < 1 {
				ratio += rng.Float64() * (1 - ratio)
			}
			deadline := Ticks(math.Round(ratio * float64(period)))
			var jitter Ticks
			if p.MaxJitter > 0 {
				jitter = Ticks(rng.Int63n(int64(p.MaxJitter) + 1))
			}
			sc := profibus.StreamConfig{
				Name:      fmt.Sprintf("M%d.S%d", k+1, s),
				Slave:     SlaveAddr,
				High:      true,
				Period:    period,
				Deadline:  deadline,
				Jitter:    jitter,
				Offset:    Ticks(rng.Int63n(4_000)),
				ReqBytes:  rng.Intn(p.PayloadMax + 1),
				RespBytes: rng.Intn(p.PayloadMax + 1),
			}
			mc.Streams = append(mc.Streams, sc)
			cm.High = append(cm.High, core.Stream{
				Name: sc.Name,
				Ch:   sc.WorstCycleTicks(addr, bus),
				D:    deadline,
				T:    period,
				J:    jitter,
			})
		}
		if p.LowPriorityLoad {
			low := profibus.StreamConfig{
				Name:      fmt.Sprintf("M%d.low", k+1),
				Slave:     SlaveAddr,
				High:      false,
				Period:    p.PeriodMax,
				Deadline:  p.PeriodMax,
				ReqBytes:  p.PayloadMax,
				RespBytes: p.PayloadMax,
			}
			mc.Streams = append(mc.Streams, low)
			cm.LongestLow = low.WorstCycleTicks(addr, bus)
		}
		net.Masters = append(net.Masters, cm)
		cfg.Masters = append(cfg.Masters, mc)
	}
	return net, cfg
}

// ScaleDeadlines returns copies of the network and config with every
// high-priority deadline multiplied by factor (used by the deadline-
// tightening sweeps). Factors below 1 tighten.
func ScaleDeadlines(net core.Network, cfg profibus.Config, factor float64) (core.Network, profibus.Config) {
	n2 := net
	n2.Masters = append([]core.Master(nil), net.Masters...)
	for k := range n2.Masters {
		n2.Masters[k].High = append([]core.Stream(nil), net.Masters[k].High...)
		for s := range n2.Masters[k].High {
			d := Ticks(math.Round(factor * float64(n2.Masters[k].High[s].D)))
			if d < 1 {
				d = 1
			}
			n2.Masters[k].High[s].D = d
		}
	}
	c2 := cfg
	c2.Masters = append([]profibus.MasterConfig(nil), cfg.Masters...)
	for k := range c2.Masters {
		c2.Masters[k].Streams = append([]profibus.StreamConfig(nil), cfg.Masters[k].Streams...)
		for s := range c2.Masters[k].Streams {
			if !c2.Masters[k].Streams[s].High {
				continue
			}
			d := Ticks(math.Round(factor * float64(c2.Masters[k].Streams[s].Deadline)))
			if d < 1 {
				d = 1
			}
			c2.Masters[k].Streams[s].Deadline = d
		}
	}
	return n2, c2
}

// WithDispatcher returns a copy of cfg with every master's dispatcher
// replaced (for policy-comparison sweeps on identical traffic).
func WithDispatcher(cfg profibus.Config, pol ap.Policy) profibus.Config {
	c2 := cfg
	c2.Masters = append([]profibus.MasterConfig(nil), cfg.Masters...)
	for k := range c2.Masters {
		c2.Masters[k].Dispatcher = pol
	}
	return c2
}
