package workload

import (
	"math"
	"math/rand"
	"testing"

	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/profibus"
)

func TestUUniFast(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		u := 0.1 + rng.Float64()*0.9
		us := UUniFast(rng, n, u)
		if len(us) != n {
			t.Fatalf("len = %d, want %d", len(us), n)
		}
		sum := 0.0
		for _, x := range us {
			if x < -1e-12 {
				t.Fatalf("negative share %g", x)
			}
			sum += x
		}
		if math.Abs(sum-u) > 1e-9 {
			t.Fatalf("sum %g != target %g", sum, u)
		}
	}
	if UUniFast(rng, 0, 0.5) != nil {
		t.Error("n=0 must yield nil")
	}
}

func TestTaskSetGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := DefaultTaskSetParams(5, 0.7)
		p.DeadlineRatioMin = 0.5
		p.MaxJitterRatio = 0.2
		ts := TaskSet(rng, p)
		if err := ts.Validate(); err != nil {
			t.Fatalf("generated invalid set: %v", err)
		}
		for _, task := range ts {
			if task.T < p.PeriodMin || task.T > p.PeriodMax {
				t.Fatalf("period %d out of range", task.T)
			}
			if task.D > task.T || task.D < task.C {
				t.Fatalf("deadline %d out of [C=%d, T=%d]", task.D, task.C, task.T)
			}
			if task.J < 0 || task.J > task.T {
				t.Fatalf("jitter %d out of range", task.J)
			}
		}
		// Realised utilisation in the right ballpark (clamping skews).
		u := ts.Utilization()
		if u < 0.3 || u > 1.2 {
			t.Fatalf("utilisation %g wildly off target 0.7", u)
		}
	}
}

func TestTaskSetBadRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := DefaultTaskSetParams(3, 0.5)
	p.PeriodMax = p.PeriodMin - 1
	TaskSet(rand.New(rand.NewSource(1)), p)
}

func TestStreamSetMatchedPair(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := DefaultStreamSetParams()
	p.LowPriorityLoad = true
	net, cfg := StreamSet(rng, p)
	if err := net.Validate(); err != nil {
		t.Fatalf("network invalid: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config invalid: %v", err)
	}
	if len(net.Masters) != p.Masters || len(cfg.Masters) != p.Masters {
		t.Fatal("master counts disagree")
	}
	for k := range net.Masters {
		if net.Masters[k].NH() != p.StreamsPerMaster {
			t.Fatalf("master %d: %d high streams, want %d", k, net.Masters[k].NH(), p.StreamsPerMaster)
		}
		if net.Masters[k].LongestLow == 0 {
			t.Fatalf("master %d: low-priority load missing from model", k)
		}
		// Ch in the model matches the simulator's config-derived value.
		for s, st := range net.Masters[k].High {
			want := cfg.Masters[k].Streams[s].WorstCycleTicks(cfg.Masters[k].Addr, cfg.Bus)
			if st.Ch != want {
				t.Fatalf("Ch mismatch master %d stream %d: %d vs %d", k, s, st.Ch, want)
			}
			if st.D != cfg.Masters[k].Streams[s].Deadline || st.T != cfg.Masters[k].Streams[s].Period {
				t.Fatal("timing mismatch between model and config")
			}
		}
	}
}

func TestScaleDeadlines(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, cfg := StreamSet(rng, DefaultStreamSetParams())
	n2, c2 := ScaleDeadlines(net, cfg, 0.5)
	for k := range net.Masters {
		for s := range net.Masters[k].High {
			orig := net.Masters[k].High[s].D
			scaled := n2.Masters[k].High[s].D
			if scaled >= orig {
				t.Fatalf("deadline not tightened: %d -> %d", orig, scaled)
			}
			if c2.Masters[k].Streams[s].Deadline != scaled {
				t.Fatal("config deadline diverged from model")
			}
		}
	}
	// Originals untouched.
	if net.Masters[0].High[0].D == n2.Masters[0].High[0].D {
		t.Fatal("ScaleDeadlines must copy, not mutate")
	}
}

func TestWithDispatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, cfg := StreamSet(rng, DefaultStreamSetParams())
	c2 := WithDispatcher(cfg, ap.EDF)
	for k := range c2.Masters {
		if c2.Masters[k].Dispatcher != ap.EDF {
			t.Fatal("dispatcher not replaced")
		}
	}
	if cfg.Masters[0].Dispatcher == ap.EDF {
		t.Fatal("WithDispatcher must copy, not mutate")
	}
}

func TestDCCSCell(t *testing.T) {
	net, cfg := DCCSCell(ap.DM, 3_000)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DCCS config invalid: %v", err)
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("DCCS network invalid: %v", err)
	}
	if len(cfg.Masters) != 3 {
		t.Fatalf("masters = %d, want 3", len(cfg.Masters))
	}
	// The supervisory master must contribute low-priority load to the
	// model (it affects C_M and hence T_del).
	if net.Masters[2].LongestLow == 0 {
		t.Error("supervisory low-priority cycle missing")
	}
	// The cell actually runs.
	res, err := profibus.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for mi, m := range res.PerMaster {
		for si, st := range m.PerStream {
			if st.Released == 0 {
				t.Errorf("master %d stream %d never released", mi, si)
			}
			if st.Completed == 0 {
				t.Errorf("master %d stream %d never completed", mi, si)
			}
		}
	}
	// And the analysis applies to it end to end.
	if _, verdicts := core.DMSchedulable(net, core.DMOptions{}); len(verdicts) != 8 {
		t.Errorf("verdicts = %d, want 8 high streams", len(verdicts))
	}
}

// The cell is tuned to be the paper's headline situation at TTR ≈ 1000:
// FCFS-unschedulable (pressure loops fail Eq. 12), DM- and
// EDF-schedulable, and the simulation agrees with all three verdicts.
func TestDCCSCellHeadlineTuning(t *testing.T) {
	const ttr = 1_000
	net, _ := DCCSCell(ap.FCFS, ttr)
	if ok, _ := core.FCFSSchedulable(net); ok {
		t.Error("cell should be FCFS-unschedulable at TTR=1000")
	}
	okDM, vDM := core.DMSchedulable(net, core.DMOptions{})
	if !okDM {
		t.Errorf("cell should be DM-schedulable at TTR=1000: %+v", vDM)
	}
	okEDF, vEDF := core.EDFSchedulableNet(net, core.EDFOptions{})
	if !okEDF {
		t.Errorf("cell should be EDF-schedulable at TTR=1000: %+v", vEDF)
	}
	// Eq. 15 still admits a small positive TTR for pure FCFS.
	bound, err := core.MaxTTR(net)
	if err != nil || bound <= 0 {
		t.Errorf("Eq. 15 bound should be positive: %d, %v", bound, err)
	}
	// Simulation agreement: misses under FCFS, none under DM/EDF.
	for _, pol := range []ap.Policy{ap.FCFS, ap.DM, ap.EDF} {
		_, cfg := DCCSCell(pol, ttr)
		res, err := profibus.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		missed := false
		for mi, m := range res.PerMaster {
			for si, st := range m.PerStream {
				if cfg.Masters[mi].Streams[si].High && st.Missed > 0 {
					missed = true
				}
			}
		}
		if pol != ap.FCFS && missed {
			t.Errorf("%v: unexpected deadline misses", pol)
		}
	}
}
