package workload

import (
	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/fdl"
	"profirt/internal/profibus"
)

// DCCSCell builds the distributed computer-controlled system scenario
// that motivates the paper's introduction: a machining cell with three
// masters on one PROFIBUS segment at 500 kbit/s.
//
//   - a PLC master polling two pressure sensors (fast loops) and one
//     temperature sensor (slow loop), and updating a valve actuator;
//   - a drive controller master running two axis position loops and an
//     emergency-stop status poll with a tight deadline;
//   - a supervisory master gathering production counters as
//     low-priority background traffic plus one alarm stream.
//
// Periods are in bit times at 500 kbit/s: 1 ms = 500 ticks, so a 20 ms
// control loop is 10 000 ticks. The timings are tuned so that at
// TTR ≈ 1000 the cell is schedulable under the paper's DM/EDF
// architecture but NOT under stock FCFS (the pressure loops fail
// Eq. 12) — the paper's headline situation — while Eq. 15 still admits
// a small positive T_TR for pure FCFS operation.
func DCCSCell(dispatcher ap.Policy, ttr Ticks) (core.Network, profibus.Config) {
	bus := fdl.DefaultBusParams()
	bus.MaxRetry = 0 // the cell runs on a clean segment; retries off
	const (
		ms        = 500 // bit times per millisecond at 500 kbit/s
		plcAddr   = 2
		driveAddr = 4
		supAddr   = 6
		sensorsA  = 20 // slaves
		sensorsB  = 21
		tempSens  = 22
		valve     = 23
		axis1     = 30
		axis2     = 31
		estop     = 32
		counters  = 40
		alarms    = 41
	)

	mkStream := func(name string, slave byte, high bool, periodMS, deadlineMS int, req, rsp int) profibus.StreamConfig {
		return profibus.StreamConfig{
			Name:      name,
			Slave:     slave,
			High:      high,
			Period:    Ticks(periodMS * ms),
			Deadline:  Ticks(deadlineMS * ms),
			ReqBytes:  req,
			RespBytes: rsp,
		}
	}

	plc := profibus.MasterConfig{
		Addr:       plcAddr,
		Dispatcher: dispatcher,
		Streams: []profibus.StreamConfig{
			mkStream("plc.pressureA", sensorsA, true, 20, 16, 2, 4),
			mkStream("plc.pressureB", sensorsB, true, 20, 16, 2, 4),
			mkStream("plc.temperature", tempSens, true, 200, 120, 2, 4),
			mkStream("plc.valve", valve, true, 40, 30, 6, 1),
		},
	}
	drive := profibus.MasterConfig{
		Addr:       driveAddr,
		Dispatcher: dispatcher,
		Streams: []profibus.StreamConfig{
			mkStream("drive.axis1", axis1, true, 30, 24, 8, 8),
			mkStream("drive.axis2", axis2, true, 30, 24, 8, 8),
			mkStream("drive.estop", estop, true, 50, 20, 1, 1),
		},
	}
	sup := profibus.MasterConfig{
		Addr:       supAddr,
		Dispatcher: dispatcher,
		Streams: []profibus.StreamConfig{
			mkStream("sup.alarms", alarms, true, 100, 60, 2, 8),
			mkStream("sup.counters", counters, false, 400, 400, 8, 16),
		},
	}

	cfg := profibus.Config{
		Bus:     bus,
		TTR:     ttr,
		Masters: []profibus.MasterConfig{plc, drive, sup},
		Slaves: []profibus.SlaveConfig{
			{Addr: sensorsA, TSDR: 30}, {Addr: sensorsB, TSDR: 30},
			{Addr: tempSens, TSDR: 45}, {Addr: valve, TSDR: 30},
			{Addr: axis1, TSDR: 20}, {Addr: axis2, TSDR: 20},
			{Addr: estop, TSDR: 15}, {Addr: counters, TSDR: 60},
			{Addr: alarms, TSDR: 30},
		},
		Horizon: 2_000_000, // 4 s of bus time
		Jitter:  profibus.JitterAdversarial,
	}

	net := core.Network{TTR: ttr, TokenPass: bus.TokenPassTicks()}
	for _, mc := range cfg.Masters {
		cm := core.Master{Name: mc.Streams[0].Name[:3]}
		for _, sc := range mc.Streams {
			ch := sc.WorstCycleTicks(mc.Addr, bus)
			if sc.High {
				cm.High = append(cm.High, core.Stream{
					Name: sc.Name, Ch: ch, D: sc.Deadline, T: sc.Period, J: sc.Jitter,
				})
			} else if ch > cm.LongestLow {
				cm.LongestLow = ch
			}
		}
		net.Masters = append(net.Masters, cm)
	}
	return net, cfg
}
