// Package timeunit provides the integer time base used throughout profirt.
//
// All schedulability analyses in the reproduced paper are fixed-point
// iterations over task/message attributes (C, D, T, J, B). Carrying them
// out in integer arithmetic makes every iteration exact and makes
// convergence a simple equality test. The canonical unit is the "tick":
// for the PROFIBUS modules one tick is one bit time at the configured
// baud rate; for the generic single-processor modules a tick is an
// arbitrary time quantum chosen by the caller.
package timeunit

import (
	"fmt"
	"time"
)

// Ticks is a span of time measured in integer ticks. Negative spans are
// permitted in intermediate arithmetic (e.g. t - D in demand-bound
// computations) but most public APIs validate non-negativity at the edge.
type Ticks int64

// Common sentinel values.
const (
	// Zero is the zero span.
	Zero Ticks = 0
	// MaxTicks is the largest representable span. It is used as an
	// "unschedulable / diverged" marker by the response-time analyses.
	MaxTicks Ticks = 1<<63 - 1
)

// String renders the span as a plain integer tick count.
func (t Ticks) String() string {
	if t == MaxTicks {
		return "∞"
	}
	return fmt.Sprintf("%d", int64(t))
}

// CeilDiv returns ⌈a/b⌉ for b > 0, correct for negative a.
// It panics if b <= 0 because every divisor in the reproduced analyses is
// a period or cycle length, which must be positive.
func CeilDiv(a, b Ticks) Ticks {
	if b <= 0 {
		panic(fmt.Sprintf("timeunit: CeilDiv by non-positive %d", b))
	}
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

// FloorDiv returns ⌊a/b⌋ for b > 0, correct for negative a.
func FloorDiv(a, b Ticks) Ticks {
	if b <= 0 {
		panic(fmt.Sprintf("timeunit: FloorDiv by non-positive %d", b))
	}
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// CeilDivPlus returns ⌈a/b⌉⁺ as used in the paper's Eq. 3: the value of
// ⌈a/b⌉ clamped below at zero (⌈x⌉⁺ = 0 if x < 0).
func CeilDivPlus(a, b Ticks) Ticks {
	if a < 0 {
		return 0
	}
	return CeilDiv(a, b)
}

// JobsWithDeadlineBy returns the maximum number of instances of a stream
// with relative deadline d, period p and release jitter j that can have
// their absolute deadline at or before t, counting from a synchronous
// release at time 0 (the first deadline falls at d-j at the earliest).
// This is the corrected form of the paper's ⌈(t−D)/T⌉⁺ factor:
// max(0, ⌊(t+j−d)/p⌋ + 1).
func JobsWithDeadlineBy(t, d, p, j Ticks) Ticks {
	x := t + j - d
	if x < 0 {
		return 0
	}
	return FloorDiv(x, p) + 1
}

// Min returns the smaller of a and b.
func Min(a, b Ticks) Ticks {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Ticks) Ticks {
	if a > b {
		return a
	}
	return b
}

// AddSat returns a+b, saturating at MaxTicks instead of overflowing.
func AddSat(a, b Ticks) Ticks {
	if a == MaxTicks || b == MaxTicks {
		return MaxTicks
	}
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return MaxTicks
	}
	return s
}

// MulSat returns a*b for non-negative operands, saturating at MaxTicks.
func MulSat(a, b Ticks) Ticks {
	if a == 0 || b == 0 {
		return 0
	}
	if a == MaxTicks || b == MaxTicks {
		return MaxTicks
	}
	s := a * b
	if s/b != a || s < 0 {
		return MaxTicks
	}
	return s
}

// GCD returns the greatest common divisor of a and b (non-negative).
func GCD(a, b Ticks) Ticks {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, saturating at
// MaxTicks on overflow. LCM(0, x) = 0.
func LCM(a, b Ticks) Ticks {
	if a == 0 || b == 0 {
		return 0
	}
	g := GCD(a, b)
	return MulSat(a/g, b)
}

// Hyperperiod returns the LCM of all spans, saturating at MaxTicks. An
// empty input yields 1 so callers can multiply safely.
func Hyperperiod(spans []Ticks) Ticks {
	h := Ticks(1)
	for _, s := range spans {
		h = LCM(h, s)
		if h == MaxTicks {
			return MaxTicks
		}
	}
	return h
}

// Rate describes a tick frequency, used to convert between ticks and wall
// clock durations for reporting. For PROFIBUS modules the rate is the
// baud rate (ticks are bit times).
type Rate struct {
	// TicksPerSecond is the number of ticks in one second.
	TicksPerSecond int64
}

// Duration converts a tick span to a time.Duration at this rate.
// Conversions saturate rather than overflow.
func (r Rate) Duration(t Ticks) time.Duration {
	if r.TicksPerSecond <= 0 {
		return 0
	}
	sec := int64(t) / r.TicksPerSecond
	rem := int64(t) % r.TicksPerSecond
	return time.Duration(sec)*time.Second +
		time.Duration(rem*int64(time.Second)/r.TicksPerSecond)
}

// FromDuration converts a wall-clock duration to ticks at this rate,
// rounding down.
func (r Rate) FromDuration(d time.Duration) Ticks {
	if r.TicksPerSecond <= 0 {
		return 0
	}
	return Ticks(int64(d) / (int64(time.Second) / r.TicksPerSecond))
}
