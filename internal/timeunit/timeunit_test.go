package timeunit

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want Ticks }{
		{0, 1, 0},
		{1, 1, 1},
		{1, 2, 1},
		{2, 2, 1},
		{3, 2, 2},
		{-1, 2, 0},
		{-2, 2, -1},
		{-3, 2, -1},
		{7, 3, 3},
		{9, 3, 3},
		{10, 3, 4},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want Ticks }{
		{0, 1, 0},
		{1, 2, 0},
		{2, 2, 1},
		{3, 2, 1},
		{-1, 2, -1},
		{-2, 2, -1},
		{-3, 2, -2},
		{9, 3, 3},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.want {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilFloorRelation(t *testing.T) {
	f := func(a int32, b int32) bool {
		bb := Ticks(b)
		if bb <= 0 {
			bb = 1 - bb
		}
		if bb == 0 {
			bb = 1
		}
		aa := Ticks(a)
		c, fl := CeilDiv(aa, bb), FloorDiv(aa, bb)
		if aa%bb == 0 {
			return c == fl
		}
		return c == fl+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDivPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive divisor")
		}
	}()
	CeilDiv(1, 0)
}

func TestCeilDivPlus(t *testing.T) {
	if got := CeilDivPlus(-5, 3); got != 0 {
		t.Errorf("CeilDivPlus(-5,3) = %d, want 0", got)
	}
	if got := CeilDivPlus(0, 3); got != 0 {
		t.Errorf("CeilDivPlus(0,3) = %d, want 0", got)
	}
	if got := CeilDivPlus(4, 3); got != 2 {
		t.Errorf("CeilDivPlus(4,3) = %d, want 2", got)
	}
}

func TestJobsWithDeadlineBy(t *testing.T) {
	// d=4, p=10, j=0: deadlines at 4, 14, 24, ...
	cases := []struct{ t, want Ticks }{
		{0, 0}, {3, 0}, {4, 1}, {13, 1}, {14, 2}, {23, 2}, {24, 3},
	}
	for _, c := range cases {
		if got := JobsWithDeadlineBy(c.t, 4, 10, 0); got != c.want {
			t.Errorf("JobsWithDeadlineBy(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	// Jitter shifts deadlines earlier: j=2 means first deadline can be at 2.
	if got := JobsWithDeadlineBy(2, 4, 10, 2); got != 1 {
		t.Errorf("jittered JobsWithDeadlineBy(2) = %d, want 1", got)
	}
}

func TestJobsWithDeadlineByMonotone(t *testing.T) {
	f := func(tRaw, dRaw, pRaw uint16) bool {
		tt := Ticks(tRaw % 1000)
		d := Ticks(dRaw%100) + 1
		p := Ticks(pRaw%100) + 1
		return JobsWithDeadlineBy(tt, d, p, 0) <= JobsWithDeadlineBy(tt+1, d, p, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if got := AddSat(MaxTicks, 1); got != MaxTicks {
		t.Errorf("AddSat overflow = %d, want MaxTicks", got)
	}
	if got := AddSat(MaxTicks-1, 2); got != MaxTicks {
		t.Errorf("AddSat near-overflow = %d, want MaxTicks", got)
	}
	if got := AddSat(2, 3); got != 5 {
		t.Errorf("AddSat(2,3) = %d, want 5", got)
	}
	if got := MulSat(MaxTicks/2, 3); got != MaxTicks {
		t.Errorf("MulSat overflow = %d, want MaxTicks", got)
	}
	if got := MulSat(6, 7); got != 42 {
		t.Errorf("MulSat(6,7) = %d, want 42", got)
	}
	if got := MulSat(0, MaxTicks); got != 0 {
		t.Errorf("MulSat(0,Max) = %d, want 0", got)
	}
}

func TestGCDLCM(t *testing.T) {
	if got := GCD(12, 18); got != 6 {
		t.Errorf("GCD(12,18) = %d, want 6", got)
	}
	if got := GCD(0, 5); got != 5 {
		t.Errorf("GCD(0,5) = %d, want 5", got)
	}
	if got := LCM(4, 6); got != 12 {
		t.Errorf("LCM(4,6) = %d, want 12", got)
	}
	if got := LCM(0, 6); got != 0 {
		t.Errorf("LCM(0,6) = %d, want 0", got)
	}
}

func TestHyperperiod(t *testing.T) {
	if got := Hyperperiod([]Ticks{4, 6, 10}); got != 60 {
		t.Errorf("Hyperperiod = %d, want 60", got)
	}
	if got := Hyperperiod(nil); got != 1 {
		t.Errorf("Hyperperiod(nil) = %d, want 1", got)
	}
	if got := Hyperperiod([]Ticks{MaxTicks, 2}); got != MaxTicks {
		t.Errorf("Hyperperiod overflow = %d, want MaxTicks", got)
	}
}

func TestMinMax(t *testing.T) {
	if Min(2, 3) != 2 || Min(3, 2) != 2 {
		t.Error("Min broken")
	}
	if Max(2, 3) != 3 || Max(3, 2) != 3 {
		t.Error("Max broken")
	}
}

func TestRateConversion(t *testing.T) {
	r := Rate{TicksPerSecond: 500_000} // 500 kbit/s PROFIBUS
	if got := r.Duration(500_000); got != time.Second {
		t.Errorf("Duration(500000) = %v, want 1s", got)
	}
	if got := r.Duration(500); got != time.Millisecond {
		t.Errorf("Duration(500) = %v, want 1ms", got)
	}
	if got := r.FromDuration(time.Millisecond); got != 500 {
		t.Errorf("FromDuration(1ms) = %d, want 500", got)
	}
	var zero Rate
	if zero.Duration(100) != 0 || zero.FromDuration(time.Second) != 0 {
		t.Error("zero rate should yield zero conversions")
	}
}

func TestTicksString(t *testing.T) {
	if Ticks(42).String() != "42" {
		t.Error("String(42)")
	}
	if MaxTicks.String() != "∞" {
		t.Error("String(MaxTicks)")
	}
}
