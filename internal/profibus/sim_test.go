package profibus

import (
	"reflect"
	"testing"

	"profirt/internal/ap"
	"profirt/internal/fdl"
)

// testConfig builds a small valid network: masters at the given
// addresses, one slave at address 40 with a fixed 30-bit TSDR.
func testConfig(ttr Ticks, masters ...MasterConfig) Config {
	return Config{
		Bus:     fdl.DefaultBusParams(),
		TTR:     ttr,
		Masters: masters,
		Slaves:  []SlaveConfig{{Addr: 40, TSDR: 30}},
		Horizon: 200_000,
	}
}

// stdStream is a high-priority stream with a 4-byte request and 2-byte
// response: action 13 chars (143 bits), response 11 chars (121 bits),
// cycle = 143 + 30 + 121 + 37 = 331 bit times.
func stdStream(name string, period, deadline Ticks) StreamConfig {
	return StreamConfig{
		Name: name, Slave: 40, High: true,
		Period: period, Deadline: deadline,
		ReqBytes: 4, RespBytes: 2,
	}
}

const stdCycleTicks = 331

func TestConfigValidation(t *testing.T) {
	good := testConfig(10_000, MasterConfig{Addr: 1, Streams: []StreamConfig{stdStream("s", 5000, 5000)}})
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero TTR", func(c *Config) { c.TTR = 0 }},
		{"no masters", func(c *Config) { c.Masters = nil }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"bad fail prob", func(c *Config) { c.Faults.CycleFailProb = 1.5 }},
		{"unknown slave", func(c *Config) { c.Masters[0].Streams[0].Slave = 99 }},
		{"bad period", func(c *Config) { c.Masters[0].Streams[0].Period = 0 }},
		{"bad deadline", func(c *Config) { c.Masters[0].Streams[0].Deadline = -1 }},
		{"neg jitter", func(c *Config) { c.Masters[0].Streams[0].Jitter = -1 }},
		{"payload too big", func(c *Config) { c.Masters[0].Streams[0].ReqBytes = fdl.MaxSD2Data + 1 }},
		{"dup master", func(c *Config) {
			c.Masters = append(c.Masters, MasterConfig{Addr: 1})
		}},
		{"master order", func(c *Config) {
			c.Masters = append(c.Masters, MasterConfig{Addr: 0})
		}},
		{"master/slave clash", func(c *Config) {
			c.Masters[0].Addr = 40
		}},
		{"dup slave", func(c *Config) {
			c.Slaves = append(c.Slaves, SlaveConfig{Addr: 40})
		}},
		{"bad bus", func(c *Config) { c.Bus.MaxRetry = -1 }},
	}
	for _, tc := range cases {
		c := testConfig(10_000, MasterConfig{Addr: 1, Streams: []StreamConfig{stdStream("s", 5000, 5000)}})
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestStreamWorstCycleTicks(t *testing.T) {
	st := stdStream("s", 1000, 1000)
	bus := fdl.DefaultBusParams() // MaxRetry=1
	// worst = 1 failed attempt (143+100) + success with TSDRmax
	// (143+60+121+37) = 243 + 361 = 604.
	if got := st.WorstCycleTicks(1, bus); got != 604 {
		t.Errorf("WorstCycleTicks = %d, want 604", got)
	}
}

func TestSingleMasterSingleStream(t *testing.T) {
	cfg := testConfig(10_000, MasterConfig{
		Addr:    1,
		Streams: []StreamConfig{stdStream("s", 1000, 900)},
	})
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerMaster[0].PerStream[0]
	if st.Released != 200 {
		t.Errorf("released %d, want 200", st.Released)
	}
	// The release at t=0 is transmitted immediately at token arrival:
	// its response is exactly the cycle time.
	if st.Completed+st.Censored != st.Released {
		t.Errorf("accounting: %d completed + %d censored != %d released",
			st.Completed, st.Censored, st.Released)
	}
	if st.Missed != 0 {
		t.Errorf("missed %d with generous deadline", st.Missed)
	}
	// Worst response is bounded by one full idle-token round plus the
	// cycle: the request can arrive just after a token pass.
	bound := Ticks(stdCycleTicks + 70 + 70)
	if st.WorstResponse > bound {
		t.Errorf("worst response %d exceeds %d", st.WorstResponse, bound)
	}
	if st.WorstResponse < stdCycleTicks {
		t.Errorf("worst response %d below the cycle time %d", st.WorstResponse, stdCycleTicks)
	}
	if res.PerMaster[0].HighCycles != st.Completed {
		t.Errorf("high cycles %d != completed %d", res.PerMaster[0].HighCycles, st.Completed)
	}
}

func TestIdleRingRotation(t *testing.T) {
	// Three masters, no traffic: the rotation at every master is
	// exactly 3 token-pass times = 210 bit times.
	cfg := testConfig(10_000,
		MasterConfig{Addr: 1}, MasterConfig{Addr: 2}, MasterConfig{Addr: 3})
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range res.PerMaster {
		if m.TokenArrivals < 100 {
			t.Errorf("master %d starved: %d arrivals", i, m.TokenArrivals)
		}
		if m.WorstTRR != 210 {
			t.Errorf("master %d worst TRR = %d, want 210", i, m.WorstTRR)
		}
		if got := m.MeanTRR(); got != 210 {
			t.Errorf("master %d mean TRR = %g, want 210", i, got)
		}
		if m.TTHOverruns != 0 || m.LateTokens != 0 {
			t.Errorf("idle ring must have no overruns/late tokens")
		}
	}
	if res.TokenPasses == 0 {
		t.Error("no token passes recorded")
	}
}

func TestLateTokenSendsExactlyOneHighCycle(t *testing.T) {
	// TTR far below the rotation time: every token (after the first) is
	// late, yet each visit must still transmit exactly one pending high
	// message — the rule underlying Q = nh·T_cycle.
	cfg := testConfig(1, MasterConfig{
		Addr: 1,
		// Period 300 < cycle+pass (401): permanent backlog.
		Streams: []StreamConfig{stdStream("s", 300, 100_000)},
	})
	cfg.Horizon = 100_000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.PerMaster[0]
	if m.LateTokens == 0 {
		t.Fatal("expected late tokens with TTR=1")
	}
	// Every arrival with backlog executes exactly one cycle; visits are
	// cycle+pass apart, so arrivals ≈ horizon/401 and HighCycles must
	// track arrivals closely (backlog never clears).
	if m.HighCycles < m.TokenArrivals-1 || m.HighCycles > m.TokenArrivals {
		t.Errorf("high cycles %d vs arrivals %d: late-token rule violated",
			m.HighCycles, m.TokenArrivals)
	}
}

func TestGenerousTTRSendsBurst(t *testing.T) {
	// With TTR much larger than the backlog, one token visit drains
	// several pending high messages.
	cfg := testConfig(50_000, MasterConfig{
		Addr: 2,
		Streams: []StreamConfig{
			stdStream("a", 10_000, 50_000),
			stdStream("b", 10_000, 50_000),
			stdStream("c", 10_000, 50_000),
		},
	})
	// Put another master first so requests accumulate before the
	// token's first arrival at master 2.
	cfg.Masters = append([]MasterConfig{{Addr: 1}}, cfg.Masters...)
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.PerMaster[1]
	// All three first releases complete within the first visit window:
	// arrival at 70, three sequential cycles.
	for si, st := range m.PerStream {
		if st.Completed == 0 {
			t.Errorf("stream %d never completed", si)
		}
	}
	first := m.PerStream[0].WorstResponse
	if first < stdCycleTicks {
		t.Errorf("worst response %d below cycle time", first)
	}
}

func TestTTHOverrunCounted(t *testing.T) {
	// TTR = 200 < cycle = 331: the first visit starts the cycle with
	// remaining TTH in (0, 331) and must complete it anyway (overrun).
	cfg := testConfig(200, MasterConfig{
		Addr:    1,
		Streams: []StreamConfig{stdStream("s", 5000, 100_000)},
	})
	cfg.Horizon = 20_000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerMaster[0].TTHOverruns == 0 {
		t.Error("expected at least one TTH overrun")
	}
}

// Committed-slot semantics plus priority reordering: with three high
// requests pending before the token's first arrival, DM serves the
// tightest-deadline one right after the committed slot occupant; FCFS
// serves in arrival order.
func TestDispatcherOrdering(t *testing.T) {
	streams := []StreamConfig{
		{Name: "loose", Slave: 40, High: true, Period: 100_000, Deadline: 90_000, Offset: 0, ReqBytes: 4, RespBytes: 2},
		{Name: "mid", Slave: 40, High: true, Period: 100_000, Deadline: 50_000, Offset: 5, ReqBytes: 4, RespBytes: 2},
		{Name: "tight", Slave: 40, High: true, Period: 100_000, Deadline: 2_000, Offset: 10, ReqBytes: 4, RespBytes: 2},
	}
	run := func(pol ap.Policy) []StreamStats {
		cfg := testConfig(50_000,
			MasterConfig{Addr: 1},
			MasterConfig{Addr: 2, Streams: streams, Dispatcher: pol})
		cfg.Horizon = 60_000
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerMaster[1].PerStream
	}

	fcfs := run(ap.FCFS)
	dm := run(ap.DM)
	edf := run(ap.EDF)

	// FCFS: arrival order loose(0), mid(5), tight(10):
	// tight completes third.
	if !(fcfs[2].WorstResponse > fcfs[1].WorstResponse &&
		fcfs[1].WorstResponse > fcfs[0].WorstResponse) {
		t.Errorf("FCFS order unexpected: %v %v %v",
			fcfs[0].WorstResponse, fcfs[1].WorstResponse, fcfs[2].WorstResponse)
	}
	// DM/EDF: "loose" was committed to the stack slot at release (it
	// arrived first to an empty slot) — the paper's one-request
	// blocking. After it, "tight" overtakes "mid".
	for name, rs := range map[string][]StreamStats{"DM": dm, "EDF": edf} {
		if rs[2].WorstResponse >= rs[1].WorstResponse {
			t.Errorf("%s: tight (%v) must beat mid (%v)", name,
				rs[2].WorstResponse, rs[1].WorstResponse)
		}
		if rs[2].WorstResponse >= fcfs[2].WorstResponse {
			t.Errorf("%s: tight must improve on FCFS (%v vs %v)", name,
				rs[2].WorstResponse, fcfs[2].WorstResponse)
		}
	}
}

func TestFaultInjectionRetries(t *testing.T) {
	cfg := testConfig(10_000, MasterConfig{
		Addr:    1,
		Streams: []StreamConfig{stdStream("s", 1000, 100_000)},
	})
	cfg.Faults.CycleFailProb = 0.6
	cfg.Seed = 3
	cfg.Bus.MaxRetry = 1
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerMaster[0].PerStream[0]
	if st.Retries == 0 {
		t.Error("expected retries under fault injection")
	}
	if st.Failed == 0 {
		t.Error("expected some exhausted-retry failures at p=0.6, retry=1")
	}
	if st.Completed == 0 {
		t.Error("expected some successes too")
	}
	if st.Completed+st.Failed+st.Censored != st.Released {
		t.Errorf("accounting broken: %d+%d+%d != %d",
			st.Completed, st.Failed, st.Censored, st.Released)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig(5_000, MasterConfig{
		Addr: 1,
		Streams: []StreamConfig{
			func() StreamConfig { s := stdStream("s", 777, 4000); s.Jitter = 50; return s }(),
		},
	})
	cfg.Jitter = JitterRandom
	cfg.Faults.CycleFailProb = 0.2
	cfg.Seed = 99
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.PerMaster[0].PerStream[0], b.PerMaster[0].PerStream[0]
	if !reflect.DeepEqual(sa, sb) {
		t.Errorf("same seed diverged: %+v vs %+v", sa, sb)
	}
}

func TestJitterAdversarialDelaysFirstRelease(t *testing.T) {
	s := stdStream("s", 10_000, 100_000)
	s.Jitter = 500
	cfg := testConfig(10_000, MasterConfig{Addr: 1, Streams: []StreamConfig{s}})
	cfg.Jitter = JitterAdversarial
	cfg.Horizon = 30_000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerMaster[0].PerStream[0]
	// First request ready at 500 but anchored at 0: response includes
	// the jitter plus queueing/transmission.
	if st.WorstResponse < 500+stdCycleTicks {
		t.Errorf("worst %d should include jitter 500 + cycle", st.WorstResponse)
	}
}

func TestResultHelpers(t *testing.T) {
	cfg := testConfig(10_000, MasterConfig{
		Addr:    1,
		Streams: []StreamConfig{stdStream("s", 1000, 10)}, // hopeless deadline
	})
	cfg.Horizon = 10_000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AnyMiss() {
		t.Error("10-tick deadline must be missed")
	}
	if res.WorstTRR() < 0 {
		t.Error("WorstTRR negative")
	}
	var empty MasterStats
	if empty.MeanTRR() != 0 {
		t.Error("MeanTRR of no arrivals must be 0")
	}
	var es StreamStats
	if es.MeanResponse() != 0 {
		t.Error("MeanResponse of empty stats must be 0")
	}
}
