// Package profibus is a bit-time-accurate discrete-event simulator of
// the PROFIBUS medium access control described in Section 3.1 of the
// reproduced paper: a logical ring of master stations passing a token,
// each controlling its token-holding time T_TH = T_TR − T_RR, executing
// master–slave message cycles (with station delays and retries per DIN
// 19245 framing), and — when so configured — dispatching requests
// through the application-process priority queue of Section 4 with the
// stack queue limited to one pending request.
//
// The simulator implements the paper's token-passing listing verbatim,
// including the at-most-one-high-priority-cycle rule for a late token
// and the T_TH overrun semantics (a started cycle always completes).
package profibus

import (
	"errors"
	"fmt"

	"profirt/internal/ap"
	"profirt/internal/fdl"
	"profirt/internal/timeunit"
)

// Ticks aliases the shared time base (bit times).
type Ticks = timeunit.Ticks

// JitterMode mirrors cpusim's release-jitter realisations.
type JitterMode int

const (
	// JitterNone releases at nominal instants.
	JitterNone JitterMode = iota
	// JitterRandom delays readiness uniformly in [0, J].
	JitterRandom
	// JitterAdversarial delays only the first release by the full J.
	JitterAdversarial
)

// StreamConfig describes one message stream of a master (the paper's
// S_hi^k or a low-priority stream). Timing parameters are inherited
// from the generating application task (Sec. 4.1).
type StreamConfig struct {
	// Name labels the stream in results.
	Name string
	// Slave is the responder's station address.
	Slave byte
	// High selects the PROFIBUS high-priority message class.
	High bool
	// Period is the minimum inter-release time T.
	Period Ticks
	// Deadline is the relative deadline D.
	Deadline Ticks
	// Jitter is the worst-case release jitter J inherited from the
	// sending task.
	Jitter Ticks
	// Offset shifts the first nominal release.
	Offset Ticks
	// ReqBytes/RespBytes size the SRD request and response payloads,
	// determining the frame lengths.
	ReqBytes  int
	RespBytes int
	// Releases, when non-nil, replaces the periodic release pattern with
	// an explicit sorted list of release instants (the topology
	// simulator injects bridge-relayed requests this way). Explicit
	// releases carry real arrival instants, so Offset and Jitter are
	// ignored; Period and Deadline still describe the stream for
	// validation, dispatching and deadline accounting. An empty non-nil
	// slice means the stream releases nothing.
	Releases []Ticks
	// Trace enables this stream's per-cycle trace even when the global
	// Config.RecordTrace is off; the topology simulator traces only
	// bridge-relay endpoints this way.
	Trace bool
}

// Frames builds the stream's action/response frame pair.
func (s StreamConfig) Frames(master byte) (action, response fdl.Frame) {
	var req, rsp []byte
	if s.ReqBytes > 0 {
		req = make([]byte, s.ReqBytes)
	}
	if s.RespBytes > 0 {
		rsp = make([]byte, s.RespBytes)
	}
	return fdl.SRDCycle(master, s.Slave, s.High, req, rsp)
}

// WorstCycleTicks returns the stream's C_hi under the bus parameters:
// worst-case message-cycle length including retries (paper Sec. 3.2).
func (s StreamConfig) WorstCycleTicks(master byte, bus fdl.BusParams) Ticks {
	a, r := s.Frames(master)
	return bus.WorstCaseCycleTicks(a, r)
}

// MasterConfig describes one master station.
type MasterConfig struct {
	// Addr is the station address; masters form the logical ring in
	// ascending address order.
	Addr byte
	// Streams are the station's message streams.
	Streams []StreamConfig
	// Dispatcher selects the AP-level policy for high-priority
	// streams. FCFS reproduces the stock PROFIBUS queue (unbounded
	// FCFS stack queue); DM and EDF enable the paper's architecture
	// (AP priority queue + one-slot stack queue).
	Dispatcher ap.Policy
}

// SlaveConfig describes a responder.
type SlaveConfig struct {
	// Addr is the station address.
	Addr byte
	// TSDR is the station delay used for successful cycles; it is
	// clamped into the bus's [TSDRmin, TSDRmax].
	TSDR Ticks
}

// FaultModel injects response losses to exercise the retry path.
type FaultModel struct {
	// CycleFailProb is the probability that a single cycle attempt
	// receives no valid response (timeout after T_SL, then retry).
	CycleFailProb float64
}

// Config is a complete simulation setup.
type Config struct {
	// Bus carries the FDL timing parameters.
	Bus fdl.BusParams
	// TTR is the target token rotation time common to all masters.
	TTR Ticks
	// Masters in logical-ring order (ascending address enforced by
	// Validate).
	Masters []MasterConfig
	// Slaves are the responders referenced by streams.
	Slaves []SlaveConfig
	// Horizon is the simulated span in bit times.
	Horizon Ticks
	// Jitter selects the release-jitter realisation.
	Jitter JitterMode
	// Seed drives all randomness (jitter, faults).
	Seed int64
	// Faults optionally injects cycle failures.
	Faults FaultModel
	// GapFactor enables ring (GAP) maintenance: every GapFactor-th
	// token visit, a master with remaining token-holding time polls one
	// address of its GAP with an FDL-Status request (SD1 cycle) before
	// serving low-priority traffic, per DIN 19245's G parameter. Zero
	// disables GAP maintenance. The overhead is part of the paper's
	// footnote-7 τ term; core.Network.GapCycle models it analytically.
	GapFactor int
	// RecordTrace enables cycle traces for every stream
	// (StreamStats.Trace): one record per terminated cycle —
	// successful or abandoned after all retries — in termination
	// order. StreamConfig.Trace enables the same per stream; plain
	// runs leave both off to avoid the allocation.
	RecordTrace bool
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	if err := c.Bus.Validate(); err != nil {
		return err
	}
	if c.TTR <= 0 {
		return fmt.Errorf("profibus: TTR must be positive, got %d", c.TTR)
	}
	if len(c.Masters) == 0 {
		return errors.New("profibus: no masters")
	}
	if c.Horizon <= 0 {
		return errors.New("profibus: horizon must be positive")
	}
	if c.Faults.CycleFailProb < 0 || c.Faults.CycleFailProb >= 1 {
		return fmt.Errorf("profibus: CycleFailProb %g out of [0,1)", c.Faults.CycleFailProb)
	}
	if c.GapFactor < 0 {
		return fmt.Errorf("profibus: GapFactor must be non-negative, got %d", c.GapFactor)
	}
	slaves := map[byte]bool{}
	for _, s := range c.Slaves {
		if slaves[s.Addr] {
			return fmt.Errorf("profibus: duplicate slave address %d", s.Addr)
		}
		slaves[s.Addr] = true
	}
	seen := map[byte]bool{}
	var prev int = -1
	for _, m := range c.Masters {
		if seen[m.Addr] || slaves[m.Addr] {
			return fmt.Errorf("profibus: duplicate station address %d", m.Addr)
		}
		seen[m.Addr] = true
		if int(m.Addr) <= prev {
			return fmt.Errorf("profibus: masters must be in ascending address order")
		}
		prev = int(m.Addr)
		for _, st := range m.Streams {
			if st.Period <= 0 || st.Deadline <= 0 {
				return fmt.Errorf("profibus: stream %q needs positive period and deadline", st.Name)
			}
			if st.Jitter < 0 || st.Offset < 0 {
				return fmt.Errorf("profibus: stream %q has negative jitter/offset", st.Name)
			}
			if st.ReqBytes < 0 || st.ReqBytes > fdl.MaxSD2Data ||
				st.RespBytes < 0 || st.RespBytes > fdl.MaxSD2Data {
				return fmt.Errorf("profibus: stream %q payload out of range", st.Name)
			}
			if !slaves[st.Slave] {
				return fmt.Errorf("profibus: stream %q references unknown slave %d", st.Name, st.Slave)
			}
			for i, rel := range st.Releases {
				if rel < 0 {
					return fmt.Errorf("profibus: stream %q has negative explicit release", st.Name)
				}
				if i > 0 && rel < st.Releases[i-1] {
					return fmt.Errorf("profibus: stream %q explicit releases not sorted", st.Name)
				}
			}
		}
	}
	return nil
}

// CompletionRecord is one terminated message cycle in a stream's trace
// (Config.RecordTrace).
type CompletionRecord struct {
	// Release is the request's nominal release instant.
	Release Ticks
	// Completed is the instant the cycle terminated: successful
	// completion, or abandonment of the last allowed retry.
	Completed Ticks
	// Failed marks a cycle abandoned after all retries (no response
	// was ever delivered).
	Failed bool
}

// StreamStats aggregates one stream's observations.
type StreamStats struct {
	Released  int64
	Completed int64
	Failed    int64 // cycles abandoned after all retries
	Missed    int64
	Censored  int64 // requests still pending at the horizon
	// WorstResponse is max(completion − nominal release); censored
	// requests contribute horizon − release as a lower bound.
	WorstResponse Ticks
	TotalResponse Ticks
	Retries       int64
	// Trace holds one record per terminated cycle (successful or
	// failed), in termination order. Populated only when
	// Config.RecordTrace or the stream's StreamConfig.Trace is set.
	Trace []CompletionRecord
}

// MeanResponse averages over completed cycles.
func (s StreamStats) MeanResponse() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.TotalResponse) / float64(s.Completed)
}

// MasterStats aggregates one master's observations.
type MasterStats struct {
	PerStream []StreamStats
	// TokenArrivals counts token receptions.
	TokenArrivals int64
	// WorstTRR is the largest measured real token rotation time.
	WorstTRR Ticks
	// SumTRR allows mean rotation computation.
	SumTRR Ticks
	// TTHOverruns counts message cycles that started with positive
	// remaining token-holding time and finished beyond it.
	TTHOverruns int64
	// LateTokens counts arrivals with T_RR >= T_TR.
	LateTokens int64
	// HighCycles / LowCycles count executed message cycles.
	HighCycles int64
	LowCycles  int64
	// GapPolls counts FDL-Status maintenance cycles performed.
	GapPolls int64
}

// MeanTRR returns the average rotation time (excluding the first
// arrival, which measures the cold start).
func (m MasterStats) MeanTRR() float64 {
	if m.TokenArrivals <= 1 {
		return 0
	}
	return float64(m.SumTRR) / float64(m.TokenArrivals-1)
}

// Result is the outcome of one simulation.
type Result struct {
	PerMaster []MasterStats
	// Horizon echoes the simulated span.
	Horizon Ticks
	// TokenPasses counts token frames on the bus.
	TokenPasses int64
}

// AnyMiss reports whether any stream missed a deadline.
func (r Result) AnyMiss() bool {
	for _, m := range r.PerMaster {
		for _, s := range m.PerStream {
			if s.Missed > 0 {
				return true
			}
		}
	}
	return false
}

// WorstTRR returns the largest rotation observed at any master.
func (r Result) WorstTRR() Ticks {
	var w Ticks
	for _, m := range r.PerMaster {
		if m.WorstTRR > w {
			w = m.WorstTRR
		}
	}
	return w
}
