package profibus

import (
	"testing"

	"profirt/internal/ap"
	"profirt/internal/core"
)

// coreNetworkFor mirrors the facade's NetworkFromSimConfig for in-tree
// cross-checks (profibus cannot import the root package).
func coreNetworkFor(cfg Config) core.Network {
	net := core.Network{TTR: cfg.TTR, TokenPass: cfg.Bus.TokenPassTicks()}
	if cfg.GapFactor > 0 {
		net.GapPoll = cfg.Bus.WorstGapPollTicks()
	}
	for _, mc := range cfg.Masters {
		m := core.Master{Name: "m"}
		for _, sc := range mc.Streams {
			ch := sc.WorstCycleTicks(mc.Addr, cfg.Bus)
			if sc.High {
				m.High = append(m.High, core.Stream{
					Name: sc.Name, Ch: ch, D: sc.Deadline, T: sc.Period, J: sc.Jitter,
				})
			} else if ch > m.LongestLow {
				m.LongestLow = ch
			}
		}
		net.Masters = append(net.Masters, m)
	}
	return net
}

// Masters with different dispatchers coexist in one ring: the paper's
// architecture is a per-station upgrade, not a network-wide flag.
func TestMixedDispatchersInOneRing(t *testing.T) {
	cfg := testConfig(20_000,
		MasterConfig{Addr: 1, Dispatcher: ap.FCFS,
			Streams: []StreamConfig{stdStream("f1", 5_000, 20_000)}},
		MasterConfig{Addr: 2, Dispatcher: ap.DM,
			Streams: []StreamConfig{stdStream("d1", 5_000, 20_000), stdStream("d2", 7_000, 9_000)}},
		MasterConfig{Addr: 3, Dispatcher: ap.EDF,
			Streams: []StreamConfig{stdStream("e1", 6_000, 18_000)}},
	)
	cfg.Horizon = 300_000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for mi, m := range res.PerMaster {
		for si, st := range m.PerStream {
			if st.Completed == 0 {
				t.Errorf("master %d stream %d starved in mixed ring", mi, si)
			}
			if st.Missed != 0 {
				t.Errorf("master %d stream %d missed with generous deadlines", mi, si)
			}
		}
	}
}

// Low-priority traffic only runs when TTH > 0: with a tiny TTR it is
// starved while high traffic still makes progress (the protocol's
// guarantee of one high cycle per visit).
func TestLowPriorityStarvationUnderTightTTR(t *testing.T) {
	high := stdStream("hi", 2_000, 100_000)
	low := StreamConfig{Name: "lo", Slave: 40, High: false,
		Period: 2_000, Deadline: 100_000, ReqBytes: 4, RespBytes: 2}
	cfg := testConfig(1, MasterConfig{Addr: 1, Streams: []StreamConfig{high, low}})
	cfg.Horizon = 100_000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hi, lo := res.PerMaster[0].PerStream[0], res.PerMaster[0].PerStream[1]
	if hi.Completed == 0 {
		t.Error("high traffic must progress even with TTR=1")
	}
	if lo.Completed != 0 {
		t.Errorf("low traffic should be starved at TTR=1, completed %d", lo.Completed)
	}
	// With a generous TTR the same workload serves low traffic too.
	cfg.TTR = 50_000
	res, err = Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerMaster[0].PerStream[1].Completed == 0 {
		t.Error("low traffic must run under a generous TTR")
	}
}

// Per-slave TSDR values shape cycle durations: a slower responder makes
// the same stream's responses strictly slower.
func TestSlaveTSDRAffectsCycleDuration(t *testing.T) {
	mk := func(tsdr Ticks) Result {
		cfg := Config{
			Bus:     testConfig(10_000).Bus,
			TTR:     10_000,
			Masters: []MasterConfig{{Addr: 1, Streams: []StreamConfig{stdStream("s", 5_000, 9_000)}}},
			Slaves:  []SlaveConfig{{Addr: 40, TSDR: tsdr}},
			Horizon: 50_000,
		}
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := mk(11)
	slow := mk(60)
	if fast.PerMaster[0].PerStream[0].WorstResponse >= slow.PerMaster[0].PerStream[0].WorstResponse {
		t.Errorf("TSDR 11 worst %v should beat TSDR 60 worst %v",
			fast.PerMaster[0].PerStream[0].WorstResponse,
			slow.PerMaster[0].PerStream[0].WorstResponse)
	}
	// The simulator clamps out-of-range TSDR into the DIN window.
	clamped := mk(10_000)
	if clamped.PerMaster[0].PerStream[0].WorstResponse != slow.PerMaster[0].PerStream[0].WorstResponse {
		t.Error("TSDR above TSDRmax must clamp to TSDRmax")
	}
}

// The first release at t=0 and the token's first arrival at t=0 must
// interact deterministically (release fires first — it was scheduled
// first), so the very first cycle carries the t=0 request.
func TestTimeZeroReleaseIsSeen(t *testing.T) {
	cfg := testConfig(10_000, MasterConfig{
		Addr:    1,
		Streams: []StreamConfig{stdStream("s", 50_000, 50_000)},
	})
	cfg.Horizon = 10_000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerMaster[0].PerStream[0]
	if st.Completed != 1 {
		t.Fatalf("expected exactly one completion, got %d", st.Completed)
	}
	// Transmitted immediately at t=0: response == cycle time (331).
	if st.WorstResponse != stdCycleTicks {
		t.Errorf("first response %v, want %d (no queueing at t=0)", st.WorstResponse, stdCycleTicks)
	}
}

// GAP maintenance: with GapFactor set, masters poll their GAP with
// FDL-Status cycles; the rotation slows accordingly but stays within
// the analytic bound once Network.GapPoll accounts for the polls.
func TestGapMaintenance(t *testing.T) {
	base := testConfig(10_000,
		MasterConfig{Addr: 1, Streams: []StreamConfig{stdStream("s", 5_000, 50_000)}},
		MasterConfig{Addr: 5}) // gap 2..4 unused, 40 is a slave
	base.Horizon = 300_000

	noGap, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	withGap := base
	withGap.GapFactor = 1
	gap, err := Simulate(withGap)
	if err != nil {
		t.Fatal(err)
	}
	var polls int64
	for _, m := range gap.PerMaster {
		polls += m.GapPolls
	}
	if polls == 0 {
		t.Fatal("expected GAP polls with GapFactor=1")
	}
	if gap.WorstTRR() <= noGap.WorstTRR() {
		t.Errorf("GAP polling should slow rotation: %v vs %v",
			gap.WorstTRR(), noGap.WorstTRR())
	}
	// Analytic bound with the GapPoll term still holds.
	net := coreNetworkFor(withGap)
	if gap.WorstTRR() > net.TokenCycle() {
		t.Errorf("rotation %v exceeds gap-aware bound %v", gap.WorstTRR(), net.TokenCycle())
	}
	// GapFactor=0 must mean zero polls.
	for _, m := range noGap.PerMaster {
		if m.GapPolls != 0 {
			t.Error("polls recorded with GAP disabled")
		}
	}
	// Negative factor is rejected.
	bad := base
	bad.GapFactor = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative GapFactor must fail validation")
	}
}

// Token passes accumulate: an idle ring of n masters performs
// horizon / (n·tokenPass) passes, nothing more.
func TestTokenPassAccounting(t *testing.T) {
	cfg := testConfig(10_000, MasterConfig{Addr: 1}, MasterConfig{Addr: 2})
	cfg.Horizon = 7_000 // 100 passes at 70 ticks each
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TokenPasses < 99 || res.TokenPasses > 100 {
		t.Errorf("token passes = %d, want ~100", res.TokenPasses)
	}
}
