package profibus

import (
	"math/rand"
	"sync"

	"profirt/internal/ap"
	"profirt/internal/des"
	"profirt/internal/fdl"
)

// request is one in-flight message request inside the simulator.
type request struct {
	stream  int
	nominal Ticks
	ready   Ticks
}

// tokenPhase tracks where a master is in the paper's token-holding
// listing.
type tokenPhase int

const (
	phaseFirstHigh tokenPhase = iota // the unconditional single high cycle
	phaseHigh                        // WHILE TTH>0 AND pending high
	phaseGap                         // ring maintenance (FDL-Status poll)
	phaseLow                         // WHILE TTH>0 AND pending low
)

// Event kinds carried in des.Payload.Kind. Every simulator event is a
// closure-free payload event dispatched through (*simulator).dispatch,
// so scheduling allocates nothing on the hot path.
const (
	evArrival   = iota + 1 // X=master, Y=stream, A=nominal (ready = Now)
	evToken                // X=master receiving the token
	evCycleDone            // X=master, Y=stream, A=nominal, Z=retries, Flags
	evGapDone              // X=master, Flags
)

// Payload flag bits for evCycleDone / evGapDone.
const (
	flagFailed  = 1 << iota // cycle abandoned after all retries
	flagOverrun             // cycle started within TTH and finished beyond it
)

type masterState struct {
	idx int
	cfg MasterConfig

	// apQueue holds high-priority requests when the paper's
	// architecture is active (DM/EDF); unused under stock FCFS.
	apQueue *ap.Queue
	// slot is the one-request stack queue under DM/EDF.
	slot ap.StackSlot
	// stackHigh is the stock FCFS high-priority stack queue
	// (unbounded) used when Dispatcher == FCFS. Queues pop by
	// advancing a head index instead of re-slicing, so the backing
	// array keeps its full capacity across a pooled simulator's runs.
	stackHigh []request
	highHead  int
	// stackLow is the FCFS low-priority queue (always stock).
	stackLow []request
	lowHead  int

	// frames and worst-case cycle metadata per stream.
	action   []fdl.Frame
	response []fdl.Frame

	lastArrival  Ticks
	firstArrival bool
	tokenArrival Ticks
	tth          Ticks
	phase        tokenPhase

	// inflight is the request whose cycle currently occupies the bus,
	// tracked so a horizon cut-off still censors it into the stats.
	inflight    request
	hasInflight bool
	stats       MasterStats

	// GAP maintenance state: token visits seen, and the next address of
	// the GAP (between this master and its successor) to poll.
	visits  int64
	nextGap byte
}

// reset re-arms the master for a new run, reusing queue and frame
// storage. Every field is (re)assigned: a pooled simulator must not
// leak state between runs.
func (m *masterState) reset(idx int, mc MasterConfig) {
	m.idx = idx
	m.cfg = mc
	if mc.Dispatcher != ap.FCFS {
		if m.apQueue == nil {
			m.apQueue = ap.NewQueue(mc.Dispatcher)
		} else {
			m.apQueue.Reset(mc.Dispatcher)
		}
	} else if m.apQueue != nil {
		m.apQueue.Reset(mc.Dispatcher)
	}
	m.slot = ap.StackSlot{}
	m.stackHigh = m.stackHigh[:0]
	m.highHead = 0
	m.stackLow = m.stackLow[:0]
	m.lowHead = 0
	n := len(mc.Streams)
	if cap(m.action) < n {
		m.action = make([]fdl.Frame, n)
		m.response = make([]fdl.Frame, n)
	}
	m.action = m.action[:n]
	m.response = m.response[:n]
	for si, st := range mc.Streams {
		m.action[si], m.response[si] = st.Frames(mc.Addr)
	}
	m.lastArrival = 0
	m.firstArrival = true
	m.tokenArrival = 0
	m.tth = 0
	m.phase = phaseFirstHigh
	m.inflight = request{}
	m.hasInflight = false
	// PerStream escapes into the Result, so it is the one per-run
	// allocation the master keeps.
	m.stats = MasterStats{PerStream: make([]StreamStats, n)}
	m.visits = 0
	m.nextGap = 0
}

// highPending reports whether a high-priority request is available for
// transmission (in the stack slot or FCFS stack queue).
func (m *masterState) highPending() bool {
	if m.cfg.Dispatcher == ap.FCFS {
		return m.highHead < len(m.stackHigh)
	}
	m.slot.Refill(m.apQueue)
	return m.slot.Filled()
}

// popHigh removes the next high-priority request.
func (m *masterState) popHigh() (request, bool) {
	if m.cfg.Dispatcher == ap.FCFS {
		if m.highHead >= len(m.stackHigh) {
			return request{}, false
		}
		r := m.stackHigh[m.highHead]
		m.highHead++
		if m.highHead == len(m.stackHigh) {
			m.stackHigh = m.stackHigh[:0]
			m.highHead = 0
		}
		return r, true
	}
	m.slot.Refill(m.apQueue)
	ar, ok := m.slot.Take()
	if !ok {
		return request{}, false
	}
	return request{stream: ar.Stream, nominal: ar.Release, ready: ar.Ready}, true
}

type simulator struct {
	cfg     Config
	eng     des.Engine
	rng     *rand.Rand
	masters []masterState
	tsdr    map[byte]Ticks
	res     Result
}

// simPool recycles simulators across runs: the event calendar, queue
// and frame storage, the RNG and the tsdr map survive, so a steady
// state simulation allocates only what escapes into its Result.
// (*simulator).reset re-arms every field, so pooled state can never
// leak into another run's outcome — results stay a pure function of
// the Config.
var simPool = sync.Pool{
	New: func() any {
		s := &simulator{}
		// One dispatch closure per pooled simulator, bound once.
		s.eng.SetDispatch(s.dispatch)
		return s
	},
}

// Simulate runs the configured network and returns per-stream and
// per-master statistics.
func Simulate(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s := simPool.Get().(*simulator)
	s.reset(cfg)

	// Schedule stream releases.
	for i := range s.masters {
		m := &s.masters[i]
		for si := range m.cfg.Streams {
			s.scheduleRelease(m, si, 0)
		}
	}

	// Token starts at the first master at t = 0.
	s.eng.SchedulePayload(0, 0, des.Payload{Kind: evToken, X: 0})

	s.eng.Run(cfg.Horizon)
	s.censorPending()

	for i := range s.masters {
		s.res.PerMaster[i] = s.masters[i].stats
	}
	res := s.res
	s.release()
	simPool.Put(s)
	return res, nil
}

// release drops every reference to caller- or result-owned memory
// before the simulator returns to the pool, so pooling never pins a
// Config or a returned Result.
func (s *simulator) release() {
	s.cfg = Config{}
	s.res = Result{}
	for i := range s.masters {
		m := &s.masters[i]
		m.cfg = MasterConfig{}
		m.stats = MasterStats{}
		m.inflight = request{}
		m.stackHigh = m.stackHigh[:0]
		m.highHead = 0
		m.stackLow = m.stackLow[:0]
		m.lowHead = 0
	}
}

// reset re-arms the pooled simulator for cfg.
func (s *simulator) reset(cfg Config) {
	s.cfg = cfg
	s.eng.Reset()
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(cfg.Seed))
	} else {
		s.rng.Seed(cfg.Seed)
	}
	if s.tsdr == nil {
		s.tsdr = make(map[byte]Ticks, len(cfg.Slaves))
	} else {
		clear(s.tsdr)
	}
	for _, sl := range cfg.Slaves {
		s.tsdr[sl.Addr] = sl.TSDR
	}
	s.res = Result{
		Horizon:   cfg.Horizon,
		PerMaster: make([]MasterStats, len(cfg.Masters)),
	}
	if cap(s.masters) < len(cfg.Masters) {
		s.masters = make([]masterState, len(cfg.Masters))
	}
	s.masters = s.masters[:len(cfg.Masters)]
	for i := range s.masters {
		s.masters[i].reset(i, cfg.Masters[i])
	}
}

// dispatch routes payload events; it is the engine's single event
// handler.
func (s *simulator) dispatch(p des.Payload) {
	switch p.Kind {
	case evArrival:
		s.onArrival(&s.masters[p.X], int(p.Y), p.A)
	case evToken:
		s.onTokenArrival(&s.masters[p.X])
	case evCycleDone:
		s.onCycleDone(&s.masters[p.X], int(p.Y), p.A, int64(p.Z), p.Flags)
	case evGapDone:
		m := &s.masters[p.X]
		if p.Flags&flagOverrun != 0 {
			m.stats.TTHOverruns++
		}
		s.step(m)
	}
}

// scheduleRelease schedules the n-th release of a stream and recurses.
// Streams with an explicit Releases list follow it verbatim (no
// synthetic jitter: the listed instants are real arrival times);
// otherwise the periodic Offset + n·Period pattern applies.
func (s *simulator) scheduleRelease(m *masterState, si int, n int64) {
	st := m.cfg.Streams[si]
	var nominal Ticks
	if st.Releases != nil {
		if n >= int64(len(st.Releases)) {
			return
		}
		nominal = st.Releases[n]
		if nominal >= s.cfg.Horizon {
			return
		}
		s.scheduleArrival(m, si, n, nominal, nominal)
		return
	}
	nominal = st.Offset + Ticks(n)*st.Period
	if nominal >= s.cfg.Horizon {
		return
	}
	var jit Ticks
	if st.Jitter > 0 {
		switch s.cfg.Jitter {
		case JitterRandom:
			jit = Ticks(s.rng.Int63n(int64(st.Jitter) + 1))
		case JitterAdversarial:
			if n == 0 {
				jit = st.Jitter
			}
		}
	}
	ready := nominal + jit
	s.scheduleArrival(m, si, n, nominal, ready)
}

// scheduleArrival enqueues the release event and recurses to the next
// release of the stream. Readiness is the event time itself, so the
// payload only carries the nominal release.
func (s *simulator) scheduleArrival(m *masterState, si int, n int64, nominal, ready Ticks) {
	s.eng.SchedulePayload(ready, 0, des.Payload{
		Kind: evArrival, X: int32(m.idx), Y: int32(si), A: nominal,
	})
	s.scheduleRelease(m, si, n+1)
}

// onArrival delivers a released request into the master's queues.
func (s *simulator) onArrival(m *masterState, si int, nominal Ticks) {
	ready := s.eng.Now()
	st := m.cfg.Streams[si]
	m.stats.PerStream[si].Released++
	if st.High {
		if m.cfg.Dispatcher == ap.FCFS {
			m.stackHigh = append(m.stackHigh, request{stream: si, nominal: nominal, ready: ready})
		} else {
			m.apQueue.Push(ap.Request{
				Stream:      si,
				Release:     nominal,
				Ready:       ready,
				RelDeadline: st.Deadline,
				AbsDeadline: nominal + st.Deadline,
			})
			m.slot.Refill(m.apQueue)
		}
	} else {
		m.stackLow = append(m.stackLow, request{stream: si, nominal: nominal, ready: ready})
	}
}

// onTokenArrival implements the paper's run-time listing at station k.
func (s *simulator) onTokenArrival(m *masterState) {
	now := s.eng.Now()
	trr := now - m.lastArrival
	m.lastArrival = now
	m.stats.TokenArrivals++
	if !m.firstArrival {
		if trr > m.stats.WorstTRR {
			m.stats.WorstTRR = trr
		}
		m.stats.SumTRR += trr
	}
	m.firstArrival = false

	m.tokenArrival = now
	m.tth = s.cfg.TTR - trr
	if m.tth <= 0 {
		m.stats.LateTokens++
	}
	m.visits++
	m.phase = phaseFirstHigh
	s.step(m)
}

// remainingTTH returns the token-holding budget left at the current
// instant (negative when the token was late or the budget is spent).
func (s *simulator) remainingTTH(m *masterState) Ticks {
	return m.tth - (s.eng.Now() - m.tokenArrival)
}

// step advances the master's token-holding state machine; it runs at
// token arrival and after each message-cycle completion.
func (s *simulator) step(m *masterState) {
	switch m.phase {
	case phaseFirstHigh:
		// IF waiting high-priority messages: execute ONE cycle,
		// regardless of lateness (the rule the queuing-delay bound
		// Q = nh·T_cycle rests on).
		m.phase = phaseHigh
		if r, ok := m.popHigh(); ok {
			s.executeCycle(m, r, true)
			return
		}
		s.step(m)
	case phaseHigh:
		// WHILE TTH > 0 AND pending high cycles (tested at cycle start).
		if s.remainingTTH(m) > 0 && m.highPending() {
			if r, ok := m.popHigh(); ok {
				s.executeCycle(m, r, true)
				return
			}
		}
		m.phase = phaseGap
		s.step(m)
	case phaseGap:
		m.phase = phaseLow
		if s.cfg.GapFactor > 0 && m.visits%int64(s.cfg.GapFactor) == 0 &&
			s.remainingTTH(m) > 0 {
			s.executeGapPoll(m)
			return
		}
		s.step(m)
	case phaseLow:
		if s.remainingTTH(m) > 0 && m.lowHead < len(m.stackLow) {
			r := m.stackLow[m.lowHead]
			m.lowHead++
			if m.lowHead == len(m.stackLow) {
				m.stackLow = m.stackLow[:0]
				m.lowHead = 0
			}
			s.executeCycle(m, r, false)
			return
		}
		s.passToken(m)
	}
}

// executeCycle transmits one message cycle (with fault-injected retries)
// and schedules the completion event. The completion outcome (retries,
// failure, TTH overrun) is fully determined here, so it travels in the
// event payload instead of a closure.
func (s *simulator) executeCycle(m *masterState, r request, high bool) {
	st := m.cfg.Streams[r.stream]
	bus := s.cfg.Bus
	action, response := m.action[r.stream], m.response[r.stream]

	remainingAtStart := s.remainingTTH(m)

	var dur Ticks
	retries := 0
	failed := false
	for {
		attemptFails := s.cfg.Faults.CycleFailProb > 0 &&
			s.rng.Float64() < s.cfg.Faults.CycleFailProb
		if !attemptFails {
			dur += bus.CycleTicks(action, response, s.tsdr[st.Slave])
			break
		}
		dur += bus.FailedAttemptTicks(action)
		if retries >= bus.MaxRetry {
			failed = true
			break
		}
		retries++
	}

	if high {
		m.stats.HighCycles++
	} else {
		m.stats.LowCycles++
	}

	m.inflight = r
	m.hasInflight = true
	var flags uint8
	if failed {
		flags |= flagFailed
	}
	if remainingAtStart > 0 && dur > remainingAtStart {
		flags |= flagOverrun
	}
	s.eng.SchedulePayloadAfter(dur, des.Payload{
		Kind: evCycleDone, X: int32(m.idx), Y: int32(r.stream),
		A: r.nominal, Z: int32(retries), Flags: flags,
	})
}

// onCycleDone finishes a message cycle: stats, trace, deadline
// accounting, then the next state-machine step.
func (s *simulator) onCycleDone(m *masterState, stream int, nominal Ticks, retries int64, flags uint8) {
	m.hasInflight = false
	st := m.cfg.Streams[stream]
	stats := &m.stats.PerStream[stream]
	stats.Retries += retries
	if flags&flagOverrun != 0 {
		m.stats.TTHOverruns++
	}
	failed := flags&flagFailed != 0
	if s.cfg.RecordTrace || st.Trace {
		stats.Trace = append(stats.Trace,
			CompletionRecord{Release: nominal, Completed: s.eng.Now(), Failed: failed})
	}
	if failed {
		stats.Failed++
	} else {
		stats.Completed++
		resp := s.eng.Now() - nominal
		if resp > stats.WorstResponse {
			stats.WorstResponse = resp
		}
		stats.TotalResponse += resp
		if s.eng.Now() > nominal+st.Deadline {
			stats.Missed++
		}
	}
	s.step(m)
}

// executeGapPoll performs one FDL-Status request on the next GAP
// address (DIN 19245 ring maintenance). A station there answers with an
// SD1 status frame; an unused address costs a full slot-time timeout.
// Like any message cycle it runs to completion once started.
func (s *simulator) executeGapPoll(m *masterState) {
	// Advance through the GAP: addresses strictly between this master
	// and its ring successor (wrapping at 127).
	succ := s.masters[(m.idx+1)%len(s.masters)].cfg.Addr
	next := m.nextGap
	if next == 0 || next == succ {
		next = m.cfg.Addr + 1
	}
	if next == succ {
		next = m.cfg.Addr + 1 // degenerate GAP (adjacent addresses)
	}
	m.nextGap = (next + 1) % 128

	action := fdl.Frame{Kind: fdl.KindSD1, DA: next, SA: m.cfg.Addr,
		FC: fdl.ReqFC(fdl.FnFDLStatus, false, false)}
	var dur Ticks
	if tsdr, ok := s.tsdr[next]; ok {
		response := fdl.Frame{Kind: fdl.KindSD1, DA: m.cfg.Addr, SA: next,
			FC: fdl.RspFC(fdl.RspOK, fdl.StSlave)}
		dur = s.cfg.Bus.CycleTicks(action, response, tsdr)
	} else {
		dur = s.cfg.Bus.FailedAttemptTicks(action)
	}
	remainingAtStart := s.remainingTTH(m)
	m.stats.GapPolls++
	var flags uint8
	if remainingAtStart > 0 && dur > remainingAtStart {
		flags |= flagOverrun
	}
	s.eng.SchedulePayloadAfter(dur, des.Payload{
		Kind: evGapDone, X: int32(m.idx), Flags: flags,
	})
}

// passToken transmits the token frame to the ring successor.
func (s *simulator) passToken(m *masterState) {
	s.res.TokenPasses++
	next := (m.idx + 1) % len(s.masters)
	s.eng.SchedulePayloadAfter(s.cfg.Bus.TokenPassTicks(), des.Payload{
		Kind: evToken, X: int32(next),
	})
}

// censorPending accounts for requests still queued at the horizon.
func (s *simulator) censorPending() {
	h := s.cfg.Horizon
	for i := range s.masters {
		m := &s.masters[i]
		censor := func(stream int, nominal Ticks) {
			st := &m.stats.PerStream[stream]
			st.Censored++
			resp := h - nominal
			if resp > st.WorstResponse {
				st.WorstResponse = resp
			}
			if h > nominal+m.cfg.Streams[stream].Deadline {
				st.Missed++
			}
		}
		if m.hasInflight {
			censor(m.inflight.stream, m.inflight.nominal)
		}
		for _, r := range m.stackHigh[m.highHead:] {
			censor(r.stream, r.nominal)
		}
		for _, r := range m.stackLow[m.lowHead:] {
			censor(r.stream, r.nominal)
		}
		if m.cfg.Dispatcher != ap.FCFS && m.apQueue != nil {
			if r, ok := m.slot.Take(); ok {
				censor(r.Stream, r.Release)
			}
			for {
				r, ok := m.apQueue.Pop()
				if !ok {
					break
				}
				censor(r.Stream, r.Release)
			}
		}
	}
}
