package profibus

import (
	"math/rand"

	"profirt/internal/ap"
	"profirt/internal/des"
	"profirt/internal/fdl"
)

// request is one in-flight message request inside the simulator.
type request struct {
	stream  int
	nominal Ticks
	ready   Ticks
}

// tokenPhase tracks where a master is in the paper's token-holding
// listing.
type tokenPhase int

const (
	phaseFirstHigh tokenPhase = iota // the unconditional single high cycle
	phaseHigh                        // WHILE TTH>0 AND pending high
	phaseGap                         // ring maintenance (FDL-Status poll)
	phaseLow                         // WHILE TTH>0 AND pending low
)

type masterState struct {
	idx int
	cfg MasterConfig

	// apQueue holds high-priority requests when the paper's
	// architecture is active (DM/EDF); nil under stock FCFS.
	apQueue *ap.Queue
	// slot is the one-request stack queue under DM/EDF.
	slot ap.StackSlot
	// stackHigh is the stock FCFS high-priority stack queue
	// (unbounded) used when Dispatcher == FCFS.
	stackHigh []request
	// stackLow is the FCFS low-priority queue (always stock).
	stackLow []request

	// frames and worst-case cycle metadata per stream.
	action   []fdl.Frame
	response []fdl.Frame

	lastArrival  Ticks
	firstArrival bool
	tokenArrival Ticks
	tth          Ticks
	phase        tokenPhase

	// inflight is the request whose cycle currently occupies the bus,
	// tracked so a horizon cut-off still censors it into the stats.
	inflight *request
	stats    MasterStats

	// GAP maintenance state: token visits seen, and the next address of
	// the GAP (between this master and its successor) to poll.
	visits  int64
	nextGap byte
}

// highPending reports whether a high-priority request is available for
// transmission (in the stack slot or FCFS stack queue).
func (m *masterState) highPending() bool {
	if m.cfg.Dispatcher == ap.FCFS {
		return len(m.stackHigh) > 0
	}
	m.slot.Refill(m.apQueue)
	return m.slot.Filled()
}

// popHigh removes the next high-priority request.
func (m *masterState) popHigh() (request, bool) {
	if m.cfg.Dispatcher == ap.FCFS {
		if len(m.stackHigh) == 0 {
			return request{}, false
		}
		r := m.stackHigh[0]
		m.stackHigh = m.stackHigh[1:]
		return r, true
	}
	m.slot.Refill(m.apQueue)
	ar, ok := m.slot.Take()
	if !ok {
		return request{}, false
	}
	return request{stream: ar.Stream, nominal: ar.Release, ready: ar.Ready}, true
}

type simulator struct {
	cfg     Config
	eng     des.Engine
	rng     *rand.Rand
	masters []*masterState
	tsdr    map[byte]Ticks
	res     Result
}

// Simulate runs the configured network and returns per-stream and
// per-master statistics.
func Simulate(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s := &simulator{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		tsdr: map[byte]Ticks{},
	}
	for _, sl := range cfg.Slaves {
		s.tsdr[sl.Addr] = sl.TSDR
	}
	s.res.Horizon = cfg.Horizon
	s.res.PerMaster = make([]MasterStats, len(cfg.Masters))

	for i, mc := range cfg.Masters {
		m := &masterState{idx: i, cfg: mc, firstArrival: true}
		if mc.Dispatcher != ap.FCFS {
			m.apQueue = ap.NewQueue(mc.Dispatcher)
		}
		m.action = make([]fdl.Frame, len(mc.Streams))
		m.response = make([]fdl.Frame, len(mc.Streams))
		for si, st := range mc.Streams {
			m.action[si], m.response[si] = st.Frames(mc.Addr)
		}
		m.stats.PerStream = make([]StreamStats, len(mc.Streams))
		s.masters = append(s.masters, m)
	}

	// Schedule stream releases.
	for _, m := range s.masters {
		for si := range m.cfg.Streams {
			s.scheduleRelease(m, si, 0)
		}
	}

	// Token starts at the first master at t = 0.
	s.eng.Schedule(0, func() { s.onTokenArrival(s.masters[0]) })

	s.eng.Run(cfg.Horizon)
	s.censorPending()

	for i, m := range s.masters {
		s.res.PerMaster[i] = m.stats
	}
	return s.res, nil
}

// scheduleRelease schedules the n-th release of a stream and recurses.
// Streams with an explicit Releases list follow it verbatim (no
// synthetic jitter: the listed instants are real arrival times);
// otherwise the periodic Offset + n·Period pattern applies.
func (s *simulator) scheduleRelease(m *masterState, si int, n int64) {
	st := m.cfg.Streams[si]
	var nominal Ticks
	if st.Releases != nil {
		if n >= int64(len(st.Releases)) {
			return
		}
		nominal = st.Releases[n]
		if nominal >= s.cfg.Horizon {
			return
		}
		s.scheduleArrival(m, si, n, nominal, nominal)
		return
	}
	nominal = st.Offset + Ticks(n)*st.Period
	if nominal >= s.cfg.Horizon {
		return
	}
	var jit Ticks
	if st.Jitter > 0 {
		switch s.cfg.Jitter {
		case JitterRandom:
			jit = Ticks(s.rng.Int63n(int64(st.Jitter) + 1))
		case JitterAdversarial:
			if n == 0 {
				jit = st.Jitter
			}
		}
	}
	ready := nominal + jit
	s.scheduleArrival(m, si, n, nominal, ready)
}

// scheduleArrival enqueues the release event and recurses to the next
// release of the stream.
func (s *simulator) scheduleArrival(m *masterState, si int, n int64, nominal, ready Ticks) {
	st := m.cfg.Streams[si]
	s.eng.Schedule(ready, func() {
		m.stats.PerStream[si].Released++
		r := request{stream: si, nominal: nominal, ready: ready}
		if st.High {
			if m.cfg.Dispatcher == ap.FCFS {
				m.stackHigh = append(m.stackHigh, r)
			} else {
				m.apQueue.Push(ap.Request{
					Stream:      si,
					Release:     nominal,
					Ready:       ready,
					RelDeadline: st.Deadline,
					AbsDeadline: nominal + st.Deadline,
				})
				m.slot.Refill(m.apQueue)
			}
		} else {
			m.stackLow = append(m.stackLow, r)
		}
	})
	s.scheduleRelease(m, si, n+1)
}

// onTokenArrival implements the paper's run-time listing at station k.
func (s *simulator) onTokenArrival(m *masterState) {
	now := s.eng.Now()
	trr := now - m.lastArrival
	m.lastArrival = now
	m.stats.TokenArrivals++
	if !m.firstArrival {
		if trr > m.stats.WorstTRR {
			m.stats.WorstTRR = trr
		}
		m.stats.SumTRR += trr
	}
	m.firstArrival = false

	m.tokenArrival = now
	m.tth = s.cfg.TTR - trr
	if m.tth <= 0 {
		m.stats.LateTokens++
	}
	m.visits++
	m.phase = phaseFirstHigh
	s.step(m)
}

// remainingTTH returns the token-holding budget left at the current
// instant (negative when the token was late or the budget is spent).
func (s *simulator) remainingTTH(m *masterState) Ticks {
	return m.tth - (s.eng.Now() - m.tokenArrival)
}

// step advances the master's token-holding state machine; it runs at
// token arrival and after each message-cycle completion.
func (s *simulator) step(m *masterState) {
	switch m.phase {
	case phaseFirstHigh:
		// IF waiting high-priority messages: execute ONE cycle,
		// regardless of lateness (the rule the queuing-delay bound
		// Q = nh·T_cycle rests on).
		m.phase = phaseHigh
		if r, ok := m.popHigh(); ok {
			s.executeCycle(m, r, true)
			return
		}
		s.step(m)
	case phaseHigh:
		// WHILE TTH > 0 AND pending high cycles (tested at cycle start).
		if s.remainingTTH(m) > 0 && m.highPending() {
			if r, ok := m.popHigh(); ok {
				s.executeCycle(m, r, true)
				return
			}
		}
		m.phase = phaseGap
		s.step(m)
	case phaseGap:
		m.phase = phaseLow
		if s.cfg.GapFactor > 0 && m.visits%int64(s.cfg.GapFactor) == 0 &&
			s.remainingTTH(m) > 0 {
			s.executeGapPoll(m)
			return
		}
		s.step(m)
	case phaseLow:
		if s.remainingTTH(m) > 0 && len(m.stackLow) > 0 {
			r := m.stackLow[0]
			m.stackLow = m.stackLow[1:]
			s.executeCycle(m, r, false)
			return
		}
		s.passToken(m)
	}
}

// executeCycle transmits one message cycle (with fault-injected retries)
// and schedules the completion event.
func (s *simulator) executeCycle(m *masterState, r request, high bool) {
	st := m.cfg.Streams[r.stream]
	bus := s.cfg.Bus
	action, response := m.action[r.stream], m.response[r.stream]

	remainingAtStart := s.remainingTTH(m)

	var dur Ticks
	retries := 0
	failed := false
	for {
		attemptFails := s.cfg.Faults.CycleFailProb > 0 &&
			s.rng.Float64() < s.cfg.Faults.CycleFailProb
		if !attemptFails {
			dur += bus.CycleTicks(action, response, s.tsdr[st.Slave])
			break
		}
		dur += bus.FailedAttemptTicks(action)
		if retries >= bus.MaxRetry {
			failed = true
			break
		}
		retries++
	}

	if high {
		m.stats.HighCycles++
	} else {
		m.stats.LowCycles++
	}

	m.inflight = &r
	s.eng.ScheduleAfter(dur, func() {
		m.inflight = nil
		stats := &m.stats.PerStream[r.stream]
		stats.Retries += int64(retries)
		if remainingAtStart > 0 && dur > remainingAtStart {
			m.stats.TTHOverruns++
		}
		if s.cfg.RecordTrace || st.Trace {
			stats.Trace = append(stats.Trace,
				CompletionRecord{Release: r.nominal, Completed: s.eng.Now(), Failed: failed})
		}
		if failed {
			stats.Failed++
		} else {
			stats.Completed++
			resp := s.eng.Now() - r.nominal
			if resp > stats.WorstResponse {
				stats.WorstResponse = resp
			}
			stats.TotalResponse += resp
			if s.eng.Now() > r.nominal+st.Deadline {
				stats.Missed++
			}
		}
		s.step(m)
	})
}

// executeGapPoll performs one FDL-Status request on the next GAP
// address (DIN 19245 ring maintenance). A station there answers with an
// SD1 status frame; an unused address costs a full slot-time timeout.
// Like any message cycle it runs to completion once started.
func (s *simulator) executeGapPoll(m *masterState) {
	// Advance through the GAP: addresses strictly between this master
	// and its ring successor (wrapping at 127).
	succ := s.masters[(m.idx+1)%len(s.masters)].cfg.Addr
	next := m.nextGap
	if next == 0 || next == succ {
		next = m.cfg.Addr + 1
	}
	if next == succ {
		next = m.cfg.Addr + 1 // degenerate GAP (adjacent addresses)
	}
	m.nextGap = (next + 1) % 128

	action := fdl.Frame{Kind: fdl.KindSD1, DA: next, SA: m.cfg.Addr,
		FC: fdl.ReqFC(fdl.FnFDLStatus, false, false)}
	var dur Ticks
	if tsdr, ok := s.tsdr[next]; ok {
		response := fdl.Frame{Kind: fdl.KindSD1, DA: m.cfg.Addr, SA: next,
			FC: fdl.RspFC(fdl.RspOK, fdl.StSlave)}
		dur = s.cfg.Bus.CycleTicks(action, response, tsdr)
	} else {
		dur = s.cfg.Bus.FailedAttemptTicks(action)
	}
	remainingAtStart := s.remainingTTH(m)
	m.stats.GapPolls++
	s.eng.ScheduleAfter(dur, func() {
		if remainingAtStart > 0 && dur > remainingAtStart {
			m.stats.TTHOverruns++
		}
		s.step(m)
	})
}

// passToken transmits the token frame to the ring successor.
func (s *simulator) passToken(m *masterState) {
	s.res.TokenPasses++
	next := s.masters[(m.idx+1)%len(s.masters)]
	s.eng.ScheduleAfter(s.cfg.Bus.TokenPassTicks(), func() {
		s.onTokenArrival(next)
	})
}

// censorPending accounts for requests still queued at the horizon.
func (s *simulator) censorPending() {
	h := s.cfg.Horizon
	for _, m := range s.masters {
		censor := func(stream int, nominal Ticks) {
			st := &m.stats.PerStream[stream]
			st.Censored++
			resp := h - nominal
			if resp > st.WorstResponse {
				st.WorstResponse = resp
			}
			if h > nominal+m.cfg.Streams[stream].Deadline {
				st.Missed++
			}
		}
		if m.inflight != nil {
			censor(m.inflight.stream, m.inflight.nominal)
		}
		for _, r := range m.stackHigh {
			censor(r.stream, r.nominal)
		}
		for _, r := range m.stackLow {
			censor(r.stream, r.nominal)
		}
		if m.apQueue != nil {
			if r, ok := m.slot.Take(); ok {
				censor(r.Stream, r.Release)
			}
			for {
				r, ok := m.apQueue.Pop()
				if !ok {
					break
				}
				censor(r.Stream, r.Release)
			}
		}
	}
}
