package profibus

import (
	"context"
	"encoding/binary"
	"hash/fnv"

	"profirt/internal/pool"
)

// This file is the simulation counterpart of the root package's
// AnalyzeBatch: many independent network simulations fanned out on the
// shared bounded worker pool, with per-run seed derivation that makes
// the whole batch a pure function of (configs, base seed) — never of
// scheduling order — so results are byte-identical at any parallelism.

// BatchOptions tunes SimulateBatch.
type BatchOptions struct {
	// Parallelism bounds the worker pool. 0 means
	// runtime.GOMAXPROCS(0); 1 forces sequential evaluation. With Pool
	// set it instead bounds this batch's in-flight jobs on the shared
	// pool (0 means the pool width).
	Parallelism int
	// Context cancels the batch early; nil means context.Background().
	// Runs not yet started when the context is done are returned with
	// Skipped set; in-flight simulations complete.
	Context context.Context
	// Pool, when non-nil, runs the batch on a shared long-lived worker
	// pool instead of spinning a per-call one, so concurrent batches
	// share one bounded worker set (fair round-robin admission).
	// Results are byte-identical either way.
	Pool *pool.Shared
	// Seed is the batch base seed. Unless ConfigSeeds is set, run i
	// simulates cfgs[i] with its Seed field replaced by
	// Seed ⊕ FNV-1a(i) (see BatchSeed), so every run draws from an
	// independent deterministic stream regardless of the configs'
	// own Seed values.
	Seed int64
	// ConfigSeeds, when set, disables the per-run derivation: each run
	// uses its config's Seed verbatim. The campaign engine uses this to
	// pin a job's seed to its position in the full campaign grid, so a
	// resumed subset replays the exact seeds of the uninterrupted run.
	ConfigSeeds bool
	// OnResult, when non-nil, receives each run's result the moment its
	// simulation completes. It is called concurrently from worker
	// goroutines (never after SimulateBatch returns) and must be safe
	// for that; keep it cheap. Skipped runs are not reported.
	OnResult func(BatchResult)
}

// BatchResult is SimulateBatch's outcome for one configuration.
type BatchResult struct {
	// Index is the run's position in the input slice.
	Index int
	// Skipped marks runs left unevaluated after cancellation.
	Skipped bool
	// Err reports a configuration the simulator rejected; Result is
	// zero then.
	Err error
	// Result is the simulation outcome.
	Result Result
}

// BatchSeed derives run index's seed from the batch base seed:
// base ⊕ FNV-1a(index). The construction mirrors the experiment
// harness's cell seeds and the topology simulator's segment seeds, so
// a run's random stream depends only on (base, index).
func BatchSeed(base int64, index int) int64 {
	h := fnv.New64a()
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(index))
	h.Write(idx[:])
	return base ^ int64(h.Sum64())
}

// SimulateBatch runs many network simulations concurrently on a
// bounded worker pool. Results are returned in input order: out[i]
// describes cfgs[i] simulated under the derived (or, with ConfigSeeds,
// the configured) seed. Every run owns its full configuration and
// seed, so the batch is deterministic regardless of Parallelism —
// byte-identical at 1, 2 or GOMAXPROCS workers. Cancel via
// opts.Context to stop early; remaining runs come back with Skipped
// set.
func SimulateBatch(cfgs []Config, opts BatchOptions) []BatchResult {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(cfgs))
	for i := range out {
		out[i] = BatchResult{Index: i, Skipped: true}
	}
	pool.Do(ctx, opts.Pool, opts.Parallelism, len(cfgs), func(i int) {
		if ctx.Err() != nil {
			return
		}
		cfg := cfgs[i]
		if !opts.ConfigSeeds {
			cfg.Seed = BatchSeed(opts.Seed, i)
		}
		r := BatchResult{Index: i}
		r.Result, r.Err = Simulate(cfg)
		out[i] = r
		if opts.OnResult != nil {
			opts.OnResult(r)
		}
	})
	return out
}
