package profibus

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"profirt/internal/ap"
	"profirt/internal/fdl"
)

// batchConfig builds a small two-master network for the batch tests.
func batchConfig(ttr Ticks, seed int64) Config {
	return Config{
		Bus:     fdl.DefaultBusParams(),
		TTR:     ttr,
		Horizon: 200_000,
		Seed:    seed,
		Jitter:  JitterRandom,
		Masters: []MasterConfig{
			{Addr: 1, Dispatcher: ap.DM, Streams: []StreamConfig{
				{Name: "a", Slave: 30, High: true, Period: 20_000, Deadline: 15_000, Jitter: 1_000},
				{Name: "b", Slave: 30, High: true, Period: 50_000, Deadline: 40_000, Jitter: 1_000},
			}},
			{Addr: 2, Dispatcher: ap.DM, Streams: []StreamConfig{
				{Name: "c", Slave: 31, High: true, Period: 30_000, Deadline: 25_000, Jitter: 500},
			}},
		},
		Slaves: []SlaveConfig{{Addr: 30, TSDR: 30}, {Addr: 31, TSDR: 60}},
	}
}

func batchConfigs(n int) []Config {
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = batchConfig(Ticks(2_000+100*(i%5)), 0)
	}
	return cfgs
}

// renderBatch flattens the observable outcome of a batch for byte-level
// comparison.
func renderBatch(results []BatchResult) string {
	out := ""
	for _, r := range results {
		out += fmt.Sprintf("%d skip=%v err=%v", r.Index, r.Skipped, r.Err)
		for _, m := range r.Result.PerMaster {
			out += fmt.Sprintf(" trr=%d", m.WorstTRR)
			for _, s := range m.PerStream {
				out += fmt.Sprintf(" (%d %d %d %d)", s.Released, s.Completed, s.Missed, s.WorstResponse)
			}
		}
		out += "\n"
	}
	return out
}

// TestSimulateBatchParallelismDeterminism is the acceptance-criterion
// regression: with random jitter active (so the per-run seeds matter),
// the batch outcome must be byte-identical at Parallelism 1, 2 and
// GOMAXPROCS.
func TestSimulateBatchParallelismDeterminism(t *testing.T) {
	cfgs := batchConfigs(12)
	var want string
	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		got := renderBatch(SimulateBatch(cfgs, BatchOptions{Parallelism: par, Seed: 11}))
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("batch differs at parallelism %d:\n--- got ---\n%s--- want ---\n%s", par, got, want)
		}
	}
}

// TestSimulateBatchSeedDerivation pins the per-run seed contract: run i
// behaves exactly like a direct Simulate of the config with Seed
// replaced by BatchSeed(base, i), ConfigSeeds uses the config verbatim,
// and distinct indices get distinct seeds.
func TestSimulateBatchSeedDerivation(t *testing.T) {
	cfgs := batchConfigs(4)
	out := SimulateBatch(cfgs, BatchOptions{Parallelism: 1, Seed: 99})
	for i, r := range out {
		want := cfgs[i]
		want.Seed = BatchSeed(99, i)
		direct, err := Simulate(want)
		if err != nil {
			t.Fatal(err)
		}
		if renderBatch([]BatchResult{r}) != renderBatch([]BatchResult{{Index: r.Index, Result: direct}}) {
			t.Fatalf("run %d does not match direct simulation under the derived seed", i)
		}
	}

	seen := map[int64]bool{}
	for i := 0; i < 1_000; i++ {
		s := BatchSeed(99, i)
		if seen[s] {
			t.Fatalf("BatchSeed collision at index %d", i)
		}
		seen[s] = true
	}

	pinned := batchConfigs(2)
	pinned[0].Seed, pinned[1].Seed = 5, 5
	cfgOut := SimulateBatch(pinned, BatchOptions{Parallelism: 1, ConfigSeeds: true})
	d0, _ := Simulate(pinned[0])
	if renderBatch(cfgOut[:1]) != renderBatch([]BatchResult{{Index: 0, Result: d0}}) {
		t.Fatal("ConfigSeeds did not use the config's own seed")
	}
}

func TestSimulateBatchCancellation(t *testing.T) {
	cfgs := batchConfigs(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := SimulateBatch(cfgs, BatchOptions{Parallelism: 2, Context: ctx})
	for _, r := range out {
		if !r.Skipped {
			t.Fatal("cancelled batch ran a job")
		}
	}
}

func TestSimulateBatchOnResultAndErrors(t *testing.T) {
	cfgs := batchConfigs(6)
	cfgs[3].TTR = 0 // invalid: Simulate must reject it
	var mu sync.Mutex
	seen := map[int]bool{}
	out := SimulateBatch(cfgs, BatchOptions{OnResult: func(r BatchResult) {
		mu.Lock()
		seen[r.Index] = true
		mu.Unlock()
	}})
	if len(seen) != len(cfgs) {
		t.Fatalf("OnResult saw %d of %d runs", len(seen), len(cfgs))
	}
	if out[3].Err == nil {
		t.Fatal("invalid config produced no error")
	}
	for i, r := range out {
		if i != 3 && (r.Err != nil || r.Skipped) {
			t.Fatalf("run %d: err=%v skip=%v", i, r.Err, r.Skipped)
		}
	}
}
