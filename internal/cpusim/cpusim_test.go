package cpusim

import (
	"math/rand"
	"testing"

	"profirt/internal/sched"
	"profirt/internal/timeunit"
)

func task(c, d, t Ticks) sched.Task {
	return sched.Task{Name: "t", C: c, D: d, T: t}
}

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{
		FPPreemptive:     "FP/preemptive",
		FPNonPreemptive:  "FP/non-preemptive",
		EDFPreemptive:    "EDF/preemptive",
		EDFNonPreemptive: "EDF/non-preemptive",
		Policy(99):       "Policy(99)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestSingleTaskRuns(t *testing.T) {
	ts := sched.TaskSet{task(2, 10, 10)}
	for _, pol := range []Policy{FPPreemptive, FPNonPreemptive, EDFPreemptive, EDFNonPreemptive} {
		res, err := Run(ts, Options{Policy: pol, Horizon: 100})
		if err != nil {
			t.Fatal(err)
		}
		st := res.PerTask[0]
		if st.Released != 10 {
			t.Errorf("%v: released %d, want 10", pol, st.Released)
		}
		if st.Completed != 10 {
			t.Errorf("%v: completed %d, want 10", pol, st.Completed)
		}
		if st.WorstResponse != 2 {
			t.Errorf("%v: worst %v, want 2", pol, st.WorstResponse)
		}
		if st.Missed != 0 {
			t.Errorf("%v: missed %d, want 0", pol, st.Missed)
		}
		if res.Idle != 100-20 {
			t.Errorf("%v: idle %v, want 80", pol, res.Idle)
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := Run(sched.TaskSet{}, Options{}); err == nil {
		t.Error("empty set must error")
	}
	ts := sched.TaskSet{task(1, 5, 5)}
	if _, err := Run(ts, Options{Offsets: []Ticks{1, 2}}); err == nil {
		t.Error("offset length mismatch must error")
	}
}

// Two tasks, synchronous, preemptive FP: classic interleaving worked by
// hand. t1: C=2 T=5; t2: C=4 T=10 (RM order).
// Timeline: t1 [0,2], t2 [2,5)+[7? no: t1 releases at 5, preempts...
// t2 runs [2,5], t1 [5,7], t2 [7,8]. R2 = 8.
func TestPreemptiveInterleaving(t *testing.T) {
	ts := sched.TaskSet{task(2, 5, 5), task(4, 10, 10)}
	res, err := Run(ts, Options{Policy: FPPreemptive, Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerTask[1].WorstResponse; got != 8 {
		t.Errorf("R2 = %v, want 8", got)
	}
	if res.Preemptions == 0 {
		t.Error("expected at least one preemption")
	}
}

// Non-preemptive blocking: lp starts first (only job at t=0 if hp is
// offset), hp must wait for it to finish.
func TestNonPreemptiveBlocking(t *testing.T) {
	ts := sched.TaskSet{task(1, 10, 10), task(5, 20, 20)}
	// hp offset 1 so lp (index 1) grabs the processor at 0.
	res, err := Run(ts, Options{
		Policy:  FPNonPreemptive,
		Horizon: 20,
		Offsets: []Ticks{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// lp runs [0,5]; hp released at 1 waits until 5, runs [5,6]: R = 5.
	if got := res.PerTask[0].WorstResponse; got != 5 {
		t.Errorf("hp worst = %v, want 5", got)
	}
	if res.Preemptions != 0 {
		t.Error("non-preemptive run must have no preemptions")
	}
}

// EDF preemptive on the hand-worked example from the sched tests:
// t1: C=2 D=4 T=6; t2: C=3 D=9 T=9 ⇒ synchronous R2 = 5.
func TestEDFSynchronous(t *testing.T) {
	ts := sched.TaskSet{task(2, 4, 6), task(3, 9, 9)}
	res, err := Run(ts, Options{Policy: EDFPreemptive, Horizon: 18})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerTask[1].WorstResponse; got != 5 {
		t.Errorf("R2 = %v, want 5", got)
	}
}

func TestOverloadReportsMisses(t *testing.T) {
	ts := sched.TaskSet{task(3, 4, 4), task(3, 6, 6)} // U = 1.25
	for _, pol := range []Policy{FPPreemptive, EDFPreemptive, FPNonPreemptive, EDFNonPreemptive} {
		res, err := Run(ts, Options{Policy: pol, Horizon: 200})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AnyMiss() {
			t.Errorf("%v: overload must miss deadlines", pol)
		}
	}
}

func TestJitterModes(t *testing.T) {
	ts := sched.TaskSet{
		{Name: "j", C: 1, D: 10, T: 10, J: 4},
		{Name: "p", C: 2, D: 20, T: 20},
	}
	// Adversarial: first job of "j" is ready at 4 but its deadline
	// anchor stays 0, so its response includes the jitter.
	res, err := Run(ts, Options{Policy: FPPreemptive, Horizon: 40, Jitter: JitterAdversarial})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerTask[0].WorstResponse; got != 5 {
		t.Errorf("jittered worst = %v, want 5 (4 jitter + 1 C)", got)
	}
	// Random jitter is reproducible under a fixed seed.
	r1, err := Run(ts, Options{Policy: FPPreemptive, Horizon: 400, Jitter: JitterRandom, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(ts, Options{Policy: FPPreemptive, Horizon: 400, Jitter: JitterRandom, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r1.PerTask[0].WorstResponse != r2.PerTask[0].WorstResponse {
		t.Error("same seed must reproduce the same run")
	}
}

func TestCensoringAtHorizon(t *testing.T) {
	// One job longer than the horizon.
	ts := sched.TaskSet{task(100, 1000, 1000)}
	res, err := Run(ts, Options{Policy: FPPreemptive, Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerTask[0]
	if st.Censored != 1 || st.Completed != 0 {
		t.Errorf("censored=%d completed=%d, want 1/0", st.Censored, st.Completed)
	}
	if st.WorstResponse != 50 {
		t.Errorf("censored worst = %v, want 50 (horizon - release)", st.WorstResponse)
	}
}

func TestMeanResponse(t *testing.T) {
	ts := sched.TaskSet{task(2, 10, 10)}
	res, err := Run(ts, Options{Policy: FPPreemptive, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerTask[0].MeanResponse(); got != 2 {
		t.Errorf("mean = %g, want 2", got)
	}
	var empty TaskStats
	if empty.MeanResponse() != 0 {
		t.Error("empty mean must be 0")
	}
}

// randomSet builds a constrained-deadline set with utilisation roughly
// below the given bound.
func randomSet(rng *rand.Rand, n int, maxU float64) sched.TaskSet {
	ts := make(sched.TaskSet, n)
	for i := range ts {
		c := Ticks(1 + rng.Intn(4))
		minT := float64(c) * float64(n) / maxU
		T := Ticks(minT) + Ticks(rng.Intn(30)) + 1
		if T <= c {
			T = c + 1
		}
		d := c + Ticks(rng.Intn(int(T-c))) + 1
		ts[i] = sched.Task{Name: "t", C: c, D: d, T: T}
	}
	return ts
}

// Soundness: the analytic worst-case response time upper-bounds every
// simulated response, across policies and release patterns. This is the
// central property tying Section 2's analyses to behaviour.
func TestAnalysisBoundsSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 120; trial++ {
		ts := randomSet(rng, 2+rng.Intn(3), 0.85)
		dm := sched.SortDM(ts)

		type combo struct {
			pol    Policy
			bounds []Ticks
		}
		combos := []combo{
			{FPPreemptive, sched.ResponseTimesFP(dm, sched.FPOptions{Preemptive: true})},
			{FPNonPreemptive, sched.ResponseTimesFP(dm, sched.FPOptions{Preemptive: false})},
			{EDFPreemptive, sched.ResponseTimesEDFPreemptive(dm, sched.EDFOptions{})},
			{EDFNonPreemptive, sched.ResponseTimesEDFNonPreemptive(dm, sched.EDFOptions{})},
		}
		for _, cb := range combos {
			for _, offsets := range [][]Ticks{nil, randomOffsets(rng, len(dm))} {
				res, err := Run(dm, Options{Policy: cb.pol, Offsets: offsets, Horizon: 1 << 14})
				if err != nil {
					t.Fatal(err)
				}
				for i, st := range res.PerTask {
					if cb.bounds[i] == timeunit.MaxTicks {
						continue
					}
					if st.WorstResponse > cb.bounds[i] {
						t.Fatalf("trial %d %v: task %d simulated %v > bound %v\nset: %+v offsets: %v",
							trial, cb.pol, i, st.WorstResponse, cb.bounds[i], dm, offsets)
					}
				}
			}
		}
	}
}

func randomOffsets(rng *rand.Rand, n int) []Ticks {
	out := make([]Ticks, n)
	for i := range out {
		out[i] = Ticks(rng.Intn(20))
	}
	return out
}

// Exactness at the critical instant: for preemptive FP with synchronous
// release, the simulation should *attain* the analytic response time of
// the lowest-priority task when the set is schedulable.
func TestCriticalInstantTightness(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	tight := 0
	for trial := 0; trial < 60; trial++ {
		ts := randomSet(rng, 3, 0.8)
		for i := range ts {
			ts[i].D = ts[i].T // implicit deadlines for clean comparison
		}
		rm := sched.SortRM(ts)
		ok, bounds := sched.FPSchedulable(rm, sched.FPOptions{Preemptive: true})
		if !ok {
			continue
		}
		res, err := Run(rm, Options{Policy: FPPreemptive})
		if err != nil {
			t.Fatal(err)
		}
		last := len(rm) - 1
		if res.PerTask[last].WorstResponse == bounds[last] {
			tight++
		} else if res.PerTask[last].WorstResponse > bounds[last] {
			t.Fatalf("simulation exceeded bound")
		}
	}
	if tight == 0 {
		t.Error("analysis never tight at critical instant — suspicious")
	}
}

// Deadline misses must imply the analysis also rejects (contrapositive
// of soundness), for the exact analyses.
func TestNoMissWhenAnalysisAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	for trial := 0; trial < 100; trial++ {
		ts := randomSet(rng, 3, 0.95)
		dm := sched.SortDM(ts)
		ok, _ := sched.FPSchedulable(dm, sched.FPOptions{Preemptive: false})
		if !ok {
			continue
		}
		res, err := Run(dm, Options{Policy: FPNonPreemptive, Horizon: 1 << 15})
		if err != nil {
			t.Fatal(err)
		}
		if res.AnyMiss() {
			t.Fatalf("trial %d: analysis accepted but simulation missed: %+v", trial, dm)
		}
	}
}
