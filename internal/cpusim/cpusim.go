// Package cpusim is a discrete-event simulator for uniprocessor
// scheduling of periodic/sporadic task sets under the four disciplines
// analysed in Section 2 of the reproduced paper: fixed-priority and EDF,
// each in preemptive and non-preemptive mode.
//
// Its purpose is validation: for every analysis in package sched there
// is an experiment that checks the simulated worst-case response time
// never exceeds the analytic bound, and that deadline misses only occur
// in sets the analysis rejects.
//
// Conventions match package sched: a task's jobs are nominally released
// at offset + k·T; release jitter delays *readiness* by up to J while
// deadlines and response times stay anchored to the nominal release, so
// measured response times are directly comparable to analytic R values
// (which include J).
package cpusim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"

	"profirt/internal/sched"
	"profirt/internal/timeunit"
)

// Ticks aliases the shared time base.
type Ticks = timeunit.Ticks

// Policy selects the scheduling discipline.
type Policy int

// The four disciplines of the paper's Section 2.
const (
	FPPreemptive Policy = iota
	FPNonPreemptive
	EDFPreemptive
	EDFNonPreemptive
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FPPreemptive:
		return "FP/preemptive"
	case FPNonPreemptive:
		return "FP/non-preemptive"
	case EDFPreemptive:
		return "EDF/preemptive"
	case EDFNonPreemptive:
		return "EDF/non-preemptive"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

func (p Policy) preemptive() bool { return p == FPPreemptive || p == EDFPreemptive }
func (p Policy) edf() bool        { return p == EDFPreemptive || p == EDFNonPreemptive }

// JitterMode selects how release jitter is realised in simulation.
type JitterMode int

const (
	// JitterNone releases every job at its nominal instant.
	JitterNone JitterMode = iota
	// JitterRandom delays each job's readiness by a uniform sample from
	// [0, J].
	JitterRandom
	// JitterAdversarial delays only the first job of each task by the
	// full J, compressing the gap to the second job to T − J — the
	// pattern that maximises back-to-back interference.
	JitterAdversarial
)

// Options configures a run.
type Options struct {
	Policy Policy
	// Horizon is the simulated time span. Zero selects
	// min(2·hyperperiod + max offset+jitter, 1<<22).
	Horizon Ticks
	// Offsets optionally shifts each task's first nominal release.
	// Length must be 0 or len(ts).
	Offsets []Ticks
	// Jitter selects the jitter realisation.
	Jitter JitterMode
	// Seed drives JitterRandom.
	Seed int64
}

// TaskStats aggregates per-task observations from one run.
type TaskStats struct {
	Released      int64
	Completed     int64
	Missed        int64 // completions (or censored jobs) past the deadline
	WorstResponse Ticks // max completion − nominal release (censored jobs count as horizon − release)
	TotalResponse Ticks // sum over completed jobs, for mean computation
	Censored      int64 // jobs still incomplete at the horizon
}

// MeanResponse returns the average response over completed jobs.
func (s TaskStats) MeanResponse() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.TotalResponse) / float64(s.Completed)
}

// Result is the outcome of a simulation run.
type Result struct {
	PerTask []TaskStats
	// Idle is the cumulative idle time within the horizon.
	Idle Ticks
	// Horizon is the simulated span actually used.
	Horizon Ticks
	// Preemptions counts preemption events (0 in non-preemptive modes).
	Preemptions int64
}

// AnyMiss reports whether any task missed a deadline.
func (r Result) AnyMiss() bool {
	for _, s := range r.PerTask {
		if s.Missed > 0 {
			return true
		}
	}
	return false
}

// job is one released task instance.
type job struct {
	task      int
	nominal   Ticks // nominal release (deadline anchor)
	ready     Ticks // readiness (nominal + jitter)
	remaining Ticks
	deadline  Ticks
	seq       int64 // global readiness order, FIFO tie-break
}

// readyQueue orders jobs by the active policy.
type readyQueue struct {
	jobs []*job
	edf  bool
}

func (q *readyQueue) Len() int { return len(q.jobs) }
func (q *readyQueue) Less(i, j int) bool {
	a, b := q.jobs[i], q.jobs[j]
	if q.edf {
		if a.deadline != b.deadline {
			return a.deadline < b.deadline
		}
	} else {
		if a.task != b.task {
			return a.task < b.task // index order == priority order
		}
	}
	return a.seq < b.seq
}
func (q *readyQueue) Swap(i, j int) { q.jobs[i], q.jobs[j] = q.jobs[j], q.jobs[i] }
func (q *readyQueue) Push(x any)    { q.jobs = append(q.jobs, x.(*job)) }
func (q *readyQueue) Pop() any {
	old := q.jobs
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	q.jobs = old[:n-1]
	return j
}

// runScratch is the reusable working state of one Run: release
// cursors, the ready queue, the pending list, the RNG and a freelist
// of job records. Run re-initialises every field it uses, so pooled
// scratch can never leak state between runs; only Result.PerTask is
// allocated fresh (it escapes to the caller).
type runScratch struct {
	next     []Ticks
	firstJob []bool
	pending  []*job
	queue    readyQueue
	free     []*job
	rng      *rand.Rand
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// allocJob takes a record from the freelist (or the heap); every field
// is assigned by the caller.
func (sc *runScratch) allocJob() *job {
	if n := len(sc.free); n > 0 {
		j := sc.free[n-1]
		sc.free = sc.free[:n-1]
		return j
	}
	return new(job)
}

func (sc *runScratch) freeJob(j *job) { sc.free = append(sc.free, j) }

// higherPriority reports whether a should run instead of b under the
// policy's priority relation (used for preemption decisions).
func higherPriority(pol Policy, a, b *job) bool {
	if pol.edf() {
		if a.deadline != b.deadline {
			return a.deadline < b.deadline
		}
	} else {
		if a.task != b.task {
			return a.task < b.task
		}
	}
	return a.seq < b.seq
}

// Run simulates ts under the given options and returns per-task
// statistics. The task set is interpreted in priority order for the FP
// policies (index 0 highest), exactly as in package sched.
func Run(ts sched.TaskSet, opt Options) (Result, error) {
	if err := ts.Validate(); err != nil {
		return Result{}, err
	}
	if len(opt.Offsets) != 0 && len(opt.Offsets) != len(ts) {
		return Result{}, fmt.Errorf("cpusim: offsets length %d != tasks %d", len(opt.Offsets), len(ts))
	}
	horizon := opt.Horizon
	if horizon <= 0 {
		horizon = defaultSimHorizon(ts, opt.Offsets)
	}
	sc := scratchPool.Get().(*runScratch)
	defer scratchPool.Put(sc)
	if sc.rng == nil {
		sc.rng = rand.New(rand.NewSource(opt.Seed))
	} else {
		sc.rng.Seed(opt.Seed)
	}
	rng := sc.rng

	res := Result{PerTask: make([]TaskStats, len(ts)), Horizon: horizon}
	if cap(sc.next) < len(ts) {
		sc.next = make([]Ticks, len(ts))
		sc.firstJob = make([]bool, len(ts))
	}
	next := sc.next[:len(ts)] // next nominal release per task
	firstJob := sc.firstJob[:len(ts)]
	for i := range next {
		next[i] = 0
		if len(opt.Offsets) > 0 {
			next[i] = opt.Offsets[i]
		}
		firstJob[i] = true
	}

	queue := &sc.queue
	queue.jobs = queue.jobs[:0]
	queue.edf = opt.Policy.edf()
	var running *job
	var runStart Ticks // when the running job last got the processor
	var seq int64
	now := Ticks(0)

	jitterFor := func(task int, first bool) Ticks {
		j := ts[task].J
		if j == 0 {
			return 0
		}
		switch opt.Jitter {
		case JitterRandom:
			return Ticks(rng.Int63n(int64(j) + 1))
		case JitterAdversarial:
			if first {
				return j
			}
			return 0
		default:
			return 0
		}
	}

	// pending holds jittered jobs whose nominal release has passed but
	// whose readiness is in the future.
	pending := sc.pending[:0]

	nextReadiness := func() (Ticks, bool) {
		t := timeunit.MaxTicks
		for i := range ts {
			if next[i] < horizon {
				// The readiness of the job released at next[i] is at
				// least next[i]; jitter is drawn when the job is
				// materialised, so use nominal as the event lower bound.
				if next[i] < t {
					t = next[i]
				}
			}
		}
		for _, p := range pending {
			if p.ready < t {
				t = p.ready
			}
		}
		return t, t != timeunit.MaxTicks
	}

	// materialise releases every job with nominal release <= now,
	// drawing its jitter; jobs whose readiness has also arrived go to
	// the ready queue, others park in pending.
	materialise := func(upTo Ticks) {
		for i := range ts {
			for next[i] <= upTo && next[i] < horizon {
				nominal := next[i]
				jit := jitterFor(i, firstJob[i])
				firstJob[i] = false
				j := sc.allocJob()
				*j = job{
					task:      i,
					nominal:   nominal,
					ready:     nominal + jit,
					remaining: ts[i].C,
					deadline:  nominal + ts[i].D,
				}
				res.PerTask[i].Released++
				next[i] += ts[i].T
				if j.ready <= upTo {
					j.seq = seq
					seq++
					heap.Push(queue, j)
				} else {
					pending = append(pending, j)
				}
			}
		}
		// promote pending jobs whose readiness arrived
		kept := pending[:0]
		for _, p := range pending {
			if p.ready <= upTo {
				p.seq = seq
				seq++
				heap.Push(queue, p)
			} else {
				kept = append(kept, p)
			}
		}
		pending = kept
	}

	complete := func(j *job, at Ticks) {
		st := &res.PerTask[j.task]
		st.Completed++
		resp := at - j.nominal
		if resp > st.WorstResponse {
			st.WorstResponse = resp
		}
		st.TotalResponse += resp
		if at > j.deadline {
			st.Missed++
		}
		sc.freeJob(j)
	}

	for now < horizon {
		materialise(now)
		if running == nil {
			if queue.Len() == 0 {
				t, ok := nextReadiness()
				if !ok || t >= horizon {
					res.Idle += horizon - now
					now = horizon
					break
				}
				res.Idle += t - now
				now = t
				continue
			}
			running = heap.Pop(queue).(*job)
			runStart = now
			continue
		}

		finish := now + running.remaining
		// The next readiness event that could matter:
		tNext, okNext := nextReadiness()

		if opt.Policy.preemptive() && okNext && tNext < finish {
			// run until tNext, then reconsider
			running.remaining -= tNext - now
			now = tNext
			materialise(now)
			if queue.Len() > 0 {
				top := queue.jobs[0]
				if higherPriority(opt.Policy, top, running) {
					heap.Push(queue, running)
					running = heap.Pop(queue).(*job)
					res.Preemptions++
					runStart = now
				}
			}
			continue
		}
		// Non-preemptive, or nothing arrives before completion: run to
		// completion (capped at horizon).
		if finish > horizon {
			running.remaining -= horizon - now
			now = horizon
			break
		}
		now = finish
		complete(running, now)
		running = nil
	}
	_ = runStart

	// Censor still-active work at the horizon.
	censor := func(j *job) {
		st := &res.PerTask[j.task]
		st.Censored++
		resp := horizon - j.nominal
		if resp > st.WorstResponse {
			st.WorstResponse = resp
		}
		if horizon > j.deadline {
			st.Missed++
		}
		sc.freeJob(j)
	}
	if running != nil {
		censor(running)
	}
	for queue.Len() > 0 {
		censor(heap.Pop(queue).(*job))
	}
	for _, p := range pending {
		censor(p)
	}
	// Park the (now job-free) pending list back in the scratch so its
	// capacity survives; clear stale job pointers first.
	clear(pending)
	sc.pending = pending[:0]
	clear(queue.jobs[:cap(queue.jobs)])
	queue.jobs = queue.jobs[:0]
	return res, nil
}

// defaultSimHorizon mirrors the analysis horizons: two hyperperiods plus
// slack for offsets and jitter, capped to keep runs fast.
func defaultSimHorizon(ts sched.TaskSet, offsets []Ticks) Ticks {
	h := ts.Hyperperiod()
	h = timeunit.MulSat(h, 2)
	var extra Ticks
	for i, t := range ts {
		e := t.D + t.J
		if len(offsets) > 0 {
			e += offsets[i]
		}
		if e > extra {
			extra = e
		}
	}
	h = timeunit.AddSat(h, extra)
	const cap = Ticks(1) << 22
	if h > cap {
		return cap
	}
	return h
}

// WorstResponses extracts the per-task worst observed response times.
func (r Result) WorstResponses() []Ticks {
	out := make([]Ticks, len(r.PerTask))
	for i, s := range r.PerTask {
		out[i] = s.WorstResponse
	}
	return out
}
