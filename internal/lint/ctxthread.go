package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CtxThread enforces context threading: a function that receives a
// context.Context must hand it on, not fabricate a fresh root. Two
// rules, checked in result-producing packages:
//
//  1. context.Background() / context.TODO() may appear only in main
//     packages, tests, and the documented nil-ctx default idiom
//     `if ctx == nil { ctx = context.Background() }` (the API contract
//     for exported entry points that accept a nil context).
//  2. Inside a function whose signature includes a context.Context, a
//     call must not pass nil, context.Background() or context.TODO()
//     where the callee accepts a context — that severs cancellation
//     and deadlines from the caller's request.
var CtxThread = suppressGated(&analysis.Analyzer{
	Name:     "ctxthread",
	Doc:      "require received contexts to be threaded to callees; confine Background/TODO to mains, tests and nil-ctx defaults (cancellation invariant)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxThread,
})

const ctxthreadInvariant = "cancellation and deadlines flow from the caller; a fresh root context severs them"

func runCtxThread(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		if testFile(pass, call.Pos()) {
			return true
		}
		if rootCtxCall(pass, call) != "" {
			if !nilCtxDefault(stack) {
				pass.Reportf(call.Pos(), "%s", invariantf("ctxthread",
					ctxthreadInvariant, "context.%s() outside main/tests/nil-ctx defaults; thread the caller's context instead", rootCtxCall(pass, call)))
			}
			return true
		}
		checkCtxArgs(pass, call, stack)
		return true
	})
	return nil, nil
}

// rootCtxCall returns "Background" or "TODO" when call is
// context.Background() or context.TODO(), else "".
func rootCtxCall(pass *analysis.Pass, call *ast.CallExpr) string {
	for _, name := range []string{"Background", "TODO"} {
		if pkgFunc(pass, call, "context", name) {
			return name
		}
	}
	return ""
}

// nilCtxDefault recognises the one sanctioned shape for a fresh root
// context in library code — defaulting a nil context at an API
// boundary:
//
//	if ctx == nil {
//		ctx = context.Background()
//	}
//
// stack is the WithStack traversal stack ending at the Background/TODO
// call; the shape requires the call to be the sole RHS of an
// assignment to ctx directly inside an if whose condition is
// `ctx == nil` (either operand order) for the same variable.
func nilCtxDefault(stack []ast.Node) bool {
	// stack ends: ..., IfStmt, BlockStmt, AssignStmt, CallExpr.
	if len(stack) < 4 {
		return false
	}
	assign, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	ifStmt, ok := stack[len(stack)-4].(*ast.IfStmt)
	if !ok {
		return false
	}
	cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op.String() != "==" {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	named := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == lhs.Name
	}
	return (isNil(cond.X) && named(cond.Y)) || (isNil(cond.Y) && named(cond.X))
}

// checkCtxArgs flags nil / Background() / TODO() passed in a
// context-typed parameter position while the enclosing function has a
// context parameter it should be threading.
func checkCtxArgs(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	if !enclosingFuncHasCtx(pass, stack) {
		return
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() && !sig.Variadic() {
			break
		}
		pi := i
		if pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if !isContextType(sig.Params().At(pi).Type()) {
			continue
		}
		// A Background()/TODO() argument is already flagged by the
		// rootCtxCall check when its own CallExpr node is visited, so
		// only the nil-literal case needs reporting here.
		if id, isIdent := ast.Unparen(arg).(*ast.Ident); isIdent && id.Name == "nil" && pass.TypesInfo.Types[arg].IsNil() {
			pass.Reportf(arg.Pos(), "%s", invariantf("ctxthread",
				ctxthreadInvariant, "nil context passed to a callee while a context.Context is in scope; thread it"))
		}
	}
}

// enclosingFuncHasCtx reports whether the innermost enclosing function
// declaration or literal takes a context.Context parameter.
func enclosingFuncHasCtx(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		for _, field := range ft.Params.List {
			if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
				return true
			}
		}
		return false
	}
	return false
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
