// Package linttest is a self-contained analogue of
// golang.org/x/tools/go/analysis/analysistest, sized to this repo's
// needs: the container vendors only the vet subset of x/tools (no
// go/packages, on which analysistest depends), so fixtures here are
// loaded with go/parser and type-checked with the stdlib source
// importer instead.
//
// Fixture packages live under testdata and use analysistest's comment
// convention: a line expecting a diagnostic carries
//
//	// want "regexp"
//
// (several quoted regexps may follow one want). Run loads every .go
// file in dir as one package, runs the analyzer (with its Requires
// chain), and fails the test on any unmatched diagnostic or
// unsatisfied want.
//
// Unlike analysistest, Run takes the package import path explicitly:
// the profilint analyzers gate on the package path (cmd/ and
// examples/ are exempt, internal/pool may spawn goroutines), so tests
// exercise those exemptions by loading one fixture directory under
// several synthetic paths.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the fixture package in dir under the import path pkgPath,
// applies a, and checks diagnostics against // want comments.
// It returns the diagnostics for callers that assert on more than
// placement.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) []analysis.Diagnostic {
	t.Helper()
	diags, fset, files := run(t, a, dir, pkgPath)
	checkWants(t, fset, files, diags)
	return diags
}

// RunExpectNone loads the fixture like Run but asserts the analyzer
// stays silent, ignoring any // want comments in the files. It is how
// the exemption rules are tested: the same violating fixture that
// produces findings under an internal/ package path must produce none
// when loaded as a cmd/ or examples/ package.
func RunExpectNone(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	diags, fset, _ := run(t, a, dir, pkgPath)
	for _, d := range diags {
		t.Errorf("%s: unexpected diagnostic under exempt path %s: %s",
			relPos(fset.Position(d.Pos)), pkgPath, d.Message)
	}
}

func run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) ([]analysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("linttest: no .go files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {}, // fixtures may hold deliberate junk around the interesting lines
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("linttest: type-check %s: %v", dir, err)
	}
	var diags []analysis.Diagnostic
	runAnalyzer(t, a, fset, files, pkg, info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	}, make(map[*analysis.Analyzer]interface{}))
	return diags, fset, files
}

// runAnalyzer executes a's Requires chain depth-first, memoising
// results, then a itself, reporting through report.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, report func(analysis.Diagnostic),
	results map[*analysis.Analyzer]interface{}) interface{} {
	t.Helper()
	if res, done := results[a]; done {
		return res
	}
	resultOf := make(map[*analysis.Analyzer]interface{})
	for _, dep := range a.Requires {
		// Dependencies report nothing: analysistest semantics.
		resultOf[dep] = runAnalyzer(t, dep, fset, files, pkg, info, func(analysis.Diagnostic) {}, results)
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   resultOf,
		Report:     report,
		ReadFile:   os.ReadFile,
	}
	res, err := a.Run(pass)
	if err != nil {
		t.Fatalf("linttest: analyzer %s: %v", a.Name, err)
	}
	results[a] = res
	return res
}

// Patterns may be double-quoted or backquoted, as in analysistest.
var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")
var wantArgRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type want struct {
	file    string
	line    int
	pattern string
	matched bool
}

// checkWants cross-checks diagnostics against the fixture's // want
// comments: every diagnostic must match a want on its line, every
// want must be claimed by a diagnostic.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					pattern := arg[1]
					if arg[2] != "" {
						pattern = arg[2]
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: pattern})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			ok, err := regexp.MatchString(w.pattern, d.Message)
			if err != nil {
				t.Errorf("bad want regexp %q: %v", w.pattern, err)
				continue
			}
			if ok {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", relPos(pos), d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

func relPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}
