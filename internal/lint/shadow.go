package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Shadow reports declarations that shadow an outer variable which is
// still used after the shadow comes into existence — the mistake where
// `x, err := f()` inside a block silently leaves the outer err
// untouched. It mirrors the upstream golang.org/x/tools shadow pass
// (re-implemented here because the container vendors only the vet
// subset of x/tools), including its main noise filter: a shadow is
// only interesting when the shadowed variable is referenced again
// after the inner declaration, otherwise the inner name could simply
// have reused the outer one.
var Shadow = suppress(&analysis.Analyzer{
	Name:     "shadow",
	Doc:      "report shadowed variables that are used again after the shadowing declaration",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runShadow,
})

const shadowInvariant = "a shadowing declaration silently splits one variable into two"

func runShadow(pass *analysis.Pass) (interface{}, error) {
	// Uses of each variable, gathered once so the "used after the
	// shadow" filter is O(uses) overall.
	lastUse := make(map[types.Object]int) // object -> max use offset
	for id, obj := range pass.TypesInfo.Uses {
		if v, ok := obj.(*types.Var); ok {
			if p := int(id.Pos()); p > lastUse[v] {
				lastUse[v] = p
			}
		}
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.GenDecl)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" {
				return
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				// `x := x` is the sanctioned per-iteration copy /
				// closure-capture idiom, not a mistake.
				if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					if rhs, ok := ast.Unparen(n.Rhs[i]).(*ast.Ident); ok && rhs.Name == id.Name {
						continue
					}
				}
				checkShadow(pass, id, lastUse)
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if i < len(vs.Values) && len(vs.Names) == len(vs.Values) {
						if rhs, ok := ast.Unparen(vs.Values[i]).(*ast.Ident); ok && rhs.Name == id.Name {
							continue
						}
					}
					checkShadow(pass, id, lastUse)
				}
			}
		}
	})
	return nil, nil
}

func checkShadow(pass *analysis.Pass, id *ast.Ident, lastUse map[types.Object]int) {
	if id.Name == "_" || id.Name == "err" {
		// The upstream pass special-cases nothing, but `if err := f();
		// err != nil` scoping is the dominant Go idiom and flagging it
		// would drown real findings; the determinism-relevant shadows
		// are data variables, not error temporaries.
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		return
	}
	inner := obj.Parent()
	if inner == nil {
		return
	}
	parent := inner.Parent()
	if parent == nil {
		return
	}
	// LookupParent from just before the inner declaration finds what
	// the name bound to previously.
	_, outer := parent.LookupParent(id.Name, id.Pos())
	outerVar, ok := outer.(*types.Var)
	if !ok || outerVar == obj {
		return
	}
	// Only function-local shadows: shadowing a package-level variable
	// or an import is a different (and usually deliberate) pattern.
	if outerVar.Parent() == pass.Pkg.Scope() || outerVar.Parent() == types.Universe {
		return
	}
	// Fields and dot-imported names have no scope chain here.
	if outerVar.IsField() {
		return
	}
	// The filter that makes the pass usable: report only if the outer
	// variable is read again after the shadow is declared — otherwise
	// the two never coexist observably.
	if lastUse[outerVar] <= int(id.Pos()) {
		return
	}
	pass.Reportf(id.Pos(), "%s", invariantf("shadow",
		shadowInvariant, "declaration of %q shadows declaration at %s, and the outer variable is used after this point",
		id.Name, pass.Fset.Position(outerVar.Pos())))
}
