// Fixture for the detrand clock rule in NON-result packages: cmd/,
// examples/ and internal packages outside internal/obs may not read
// the wall clock directly either — timing goes through obs.Clock.
// Loaded under profirt/cmd/fixture and profirt/internal/pool the
// time.Now calls must fire; under profirt/internal/obs the whole
// analyzer stays silent.
package fixture

import (
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `detrand: time\.Now\(\)`
}

// Arithmetic on caller-provided instants stays legal everywhere; only
// the read itself is fenced into internal/obs.
func elapsed(start, end time.Time) time.Duration {
	return end.Sub(start)
}
