// Fixture for the detrand global-RNG rule in isolation (no wall-clock
// reads), so the cmd/ and examples/ exemption — binaries may shuffle
// for display — can be asserted without the everywhere-on clock rule
// firing on the same file.
package fixture

import (
	"math/rand"
)

func globalDraw() int64 {
	return rand.Int63() // want `detrand: math/rand\.Int63 draws from the unseeded process-global RNG`
}

func seeded(seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Int63()
}
