// Fixture for the seedmix analyzer: ad-hoc seed arithmetic vs the
// sanctioned FNV mix construction.
package fixture

import (
	"encoding/binary"
	"hash/fnv"
)

type config struct {
	Seed int64
}

// The classic collision: cell 3 of base seed s equals cell 0 of s+3.
func adHocOffset(seed int64, i int) int64 {
	return seed + int64(i) // want `seedmix: ad-hoc arithmetic on seed "seed"`
}

func adHocXor(seed int64, i int) int64 {
	return seed ^ int64(i) // want `seedmix: ad-hoc arithmetic on seed "seed"`
}

func adHocField(cfg config, i int) int64 {
	return cfg.Seed * int64(i+1) // want `seedmix: ad-hoc arithmetic on seed "Seed"`
}

func adHocConverted(cfg config, i uint64) uint64 {
	return uint64(cfg.Seed) + i // want `seedmix: ad-hoc arithmetic on seed "Seed"`
}

// The sanctioned construction: fold an FNV-1a digest of the job
// coordinates into the base seed. Building the hash marks the whole
// function as a mix helper.
func mixSeed(seed int64, id string, index int) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(index))
	h.Write(idx[:])
	return seed ^ int64(h.Sum64())
}

// Non-seed integer arithmetic is out of scope.
func plainArith(count, i int) int {
	return count + i
}

// Comparisons never mix.
func seedCompare(seed, other int64) bool {
	return seed == other || seed < other
}

func suppressedArith(seed int64) int64 {
	//profilint:ignore seedmix display offset only, never used to seed an RNG
	return seed + 1
}
