// Fixture for the detrand analyzer: wall-clock reads and global RNG
// draws in a result-producing package.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `detrand: time\.Now\(\)`
}

func globalDraw() int64 {
	return rand.Int63() // want `detrand: math/rand\.Int63 draws from the unseeded process-global RNG`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `detrand: math/rand\.Shuffle`
}

// Seeded generators are the sanctioned construction.
func seeded(seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Int63()
}

// time.Since on a caller-provided instant is fine; only Now() reads
// the wall clock.
func elapsed(start, end time.Time) time.Duration {
	return end.Sub(start)
}

func suppressed() time.Time {
	//profilint:ignore detrand this fixture documents a justified suppression
	return time.Now()
}

func badSuppression() time.Time {
	/*profilint:ignore detrand*/ // want `detrand: //profilint:ignore needs a non-empty reason`
	return time.Now()            // want `detrand: time\.Now\(\)`
}
