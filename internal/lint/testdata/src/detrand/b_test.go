// Test files are exempt from the house rules: they may time
// themselves and draw from the global RNG freely. No diagnostics are
// expected anywhere in this file.
package fixture

import (
	"math/rand"
	"time"
)

func timedProbe() time.Duration {
	start := time.Now()
	_ = rand.Int63()
	return time.Since(start)
}
