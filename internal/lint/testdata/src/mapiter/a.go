// Fixture for the mapiter analyzer: map iteration order leaking into
// slices, writers and early returns.
package fixture

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Collecting into an outer slice without sorting leaks map order.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `mapiter: append inside a map range`
	}
	return keys
}

// The sanctioned idiom: collect, then sort before use.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice with a comparator counts too.
func sortedPairs(m map[string]int) []string {
	var pairs []string
	for k, v := range m {
		pairs = append(pairs, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	return pairs
}

// Writing from inside the loop body emits in iteration order.
func dumpDirect(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `mapiter: fmt\.Fprintf inside a map range`
	}
}

func buildDirect(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `mapiter: .*WriteString inside a map range`
	}
	return b.String()
}

// Order-insensitive sinks are fine: writing into another map, or
// accumulating a commutative reduction.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// A slice declared inside the loop body is per-iteration state.
func perIteration(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// Early return of an iteration-dependent value: which entry's error
// surfaces depends on iteration order.
func firstBad(m map[string]int) error {
	for k, v := range m {
		if v < 0 {
			return fmt.Errorf("bad entry %q", k) // want `mapiter: early return of an iteration-dependent value`
		}
	}
	return nil
}

// One level of taint: a local derived from the range variable carries
// the order dependence into the return.
func firstBadIndirect(m map[string]int, check func(string) error) error {
	for k := range m {
		err := check(k)
		if err != nil {
			return err // want `mapiter: early return of an iteration-dependent value`
		}
	}
	return nil
}

// Membership-style early returns mention no range variable and are
// order-independent.
func contains(m map[string]bool, want string) bool {
	for k := range m {
		if k == want {
			return true
		}
	}
	return false
}

func suppressedCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		//profilint:ignore mapiter order is laundered by the caller's sort
		keys = append(keys, k)
	}
	return keys
}
