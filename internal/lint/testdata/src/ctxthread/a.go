// Fixture for the ctxthread analyzer: fabricated root contexts and
// dropped context threading.
package fixture

import "context"

func callee(ctx context.Context, n int) int {
	if ctx == nil {
		return 0
	}
	return n
}

// The documented nil-ctx default idiom is the one sanctioned fresh
// root in library code.
func entryPoint(ctx context.Context) int {
	if ctx == nil {
		ctx = context.Background()
	}
	return callee(ctx, 1)
}

// Reversed operand order still counts.
func entryPointReversed(ctx context.Context) int {
	if nil == ctx {
		ctx = context.Background()
	}
	return callee(ctx, 1)
}

// A fresh root anywhere else severs cancellation.
func freshRoot(n int) int {
	return callee(context.Background(), n) // want `ctxthread: context\.Background\(\) outside main/tests/nil-ctx defaults`
}

func freshTODO(n int) int {
	return callee(context.TODO(), n) // want `ctxthread: context\.TODO\(\) outside main/tests/nil-ctx defaults`
}

// Dropping a received context on the floor while calling a
// context-accepting callee.
func dropsCtx(ctx context.Context, n int) int {
	return callee(nil, n) // want `ctxthread: nil context passed to a callee while a context\.Context is in scope`
}

// Proper threading is silent.
func threads(ctx context.Context, n int) int {
	return callee(ctx, n)
}

// Derived contexts are threading too.
func derives(ctx context.Context, n int) int {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return callee(sub, n)
}

func suppressedRoot(n int) int {
	//profilint:ignore ctxthread background job detached from any request by design
	return callee(context.Background(), n)
}
