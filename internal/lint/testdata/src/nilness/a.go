// Fixture for the nilness analyzer: dereferences on provably-nil
// paths.
package fixture

type node struct {
	next  *node
	value int
}

func derefInNilBranch(p *node) int {
	if p == nil {
		return p.value // want `nilness: field or method access of "p"`
	}
	return p.value
}

func derefInElseOfNotNil(p *node) int {
	if p != nil {
		return p.value
	} else {
		return p.value // want `nilness: field or method access of "p"`
	}
}

func callNilFunc(f func() int) int {
	if f == nil {
		return f() // want `nilness: call of "f"`
	}
	return f()
}

func indexNilSlice(xs []int) int {
	if xs == nil {
		return xs[0] // want `nilness: index of "xs"`
	}
	return xs[0]
}

func starNilPtr(p *int) int {
	if p == nil {
		return *p // want `nilness: \*x dereference of "p"`
	}
	return *p
}

// Reassignment before the use clears the nil fact.
func reassigned(p *node) int {
	if p == nil {
		p = &node{}
		return p.value
	}
	return p.value
}

// Map reads on nil maps are defined; only nilable deref forms count.
func nilMapRead(m map[string]int) int {
	if m == nil {
		return m["x"]
	}
	return m["x"]
}

// The guarded branch is fine.
func properGuard(p *node) int {
	if p == nil {
		return 0
	}
	return p.value
}
