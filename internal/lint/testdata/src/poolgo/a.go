// Fixture for the poolgo analyzer: raw goroutines outside
// internal/pool. Loaded both as a result-producing package (findings
// expected) and as profirt/internal/pool itself (exempt).
package fixture

import "sync"

func fanOut(jobs []func()) {
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		go func() { // want `poolgo: raw go statement outside internal/pool`
			defer wg.Done()
			job()
		}()
	}
	wg.Wait()
}

func fireAndForget(f func()) {
	go f() // want `poolgo: raw go statement outside internal/pool`
}

func suppressedSpawn(f func()) {
	//profilint:ignore poolgo one supervisor goroutine per process, started once at init
	go f()
}
