// Fixture for the shadow analyzer: inner declarations that silently
// split a variable in two.
package fixture

func shadowedAndUsedAfter(xs []int) int {
	total := 0
	for _, x := range xs {
		if x > 0 {
			total := x // want `shadow: declaration of "total" shadows declaration`
			_ = total
		}
	}
	return total
}

func shadowedVarDecl(xs []int) int {
	result := 0
	if len(xs) > 0 {
		var result = xs[0] // want `shadow: declaration of "result" shadows declaration`
		_ = result
	}
	return result
}

// Shadow whose outer is never used afterwards: harmless, not
// reported.
func shadowLastUse(xs []int) int {
	n := len(xs)
	if n > 0 {
		n := xs[0]
		return n
	}
	return 0
}

// The per-iteration copy idiom is sanctioned.
func captureIdiom(xs []int) []func() int {
	var fs []func() int
	for _, x := range xs {
		x := x
		fs = append(fs, func() int { return x })
	}
	return fs
}

// A fresh name in the inner scope shadows nothing.
func noShadow(xs []int) int {
	total := 0
	for _, x := range xs {
		inner := x * 2
		total += inner
	}
	return total
}
