package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// SeedMix flags ad-hoc arithmetic on seed values. Per-job and
// per-trial seeds must be derived through the FNV mix helpers
// (experiments.cellSeed / trialSeed, profibus.BatchSeed, the topology
// segment seeds): naive derivations like seed+int64(i) collide across
// shards — cell 3 of a base seed equals cell 0 of base+3 — correlating
// random streams that the analysis assumes independent.
//
// The helpers themselves mix through hash/fnv, so any arithmetic in a
// function that builds an FNV hash is allowed; everything else that
// combines a seed-named integer with +, -, *, ^, | or % is flagged.
var SeedMix = suppressGated(&analysis.Analyzer{
	Name:     "seedmix",
	Doc:      "require per-job seeds to be derived via the FNV mix helpers, not ad-hoc arithmetic (seed-independence invariant)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runSeedMix,
})

const seedmixInvariant = "per-job random streams must be pairwise independent; ad-hoc seed arithmetic collides across shards"

var seedMixOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true,
	token.XOR: true, token.OR: true, token.REM: true,
}

func runSeedMix(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		expr := n.(*ast.BinaryExpr)
		if testFile(pass, expr.Pos()) || !seedMixOps[expr.Op] {
			return true
		}
		if !isIntType(pass.TypesInfo.TypeOf(expr)) {
			return true
		}
		seedSide := seedOperand(pass, expr.X)
		if seedSide == nil {
			seedSide = seedOperand(pass, expr.Y)
		}
		if seedSide == nil {
			return true
		}
		if fnBody := enclosingFuncBody(stack); fnBody != nil && buildsFNVHash(pass, fnBody) {
			return true
		}
		pass.Reportf(expr.Pos(), "%s", invariantf("seedmix",
			seedmixInvariant, "ad-hoc arithmetic on seed %q; derive per-job seeds through the FNV mix helpers (cellSeed/trialSeed/BatchSeed)", seedSide.Name))
		return true
	})
	return nil, nil
}

// seedOperand returns the identifier when e mentions an integer
// variable whose name contains "seed" (any case), unwrapping
// selectors and conversions like int64(seed).
func seedOperand(pass *analysis.Pass, e ast.Expr) *ast.Ident {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if strings.Contains(strings.ToLower(v.Name), "seed") && isIntVar(pass, v) {
			return v
		}
	case *ast.SelectorExpr:
		if strings.Contains(strings.ToLower(v.Sel.Name), "seed") && isIntVar(pass, v.Sel) {
			return v.Sel
		}
	case *ast.CallExpr:
		// Conversions such as int64(cfg.Seed) or uint64(seed).
		if len(v.Args) == 1 {
			if _, isConv := pass.TypesInfo.Types[v.Fun]; isConv && pass.TypesInfo.Types[v.Fun].IsType() {
				return seedOperand(pass, v.Args[0])
			}
		}
	}
	return nil
}

func isIntVar(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return isIntType(obj.Type())
}

func isIntType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// buildsFNVHash reports whether body constructs a hash/fnv hasher —
// the marker of a sanctioned mix helper, whose final `seed ^ sum`
// fold is the approved construction.
func buildsFNVHash(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		for _, ctor := range []string{"New32", "New32a", "New64", "New64a", "New128", "New128a"} {
			if pkgFunc(pass, call, "hash/fnv", ctor) {
				found = true
			}
		}
		return true
	})
	return found
}
