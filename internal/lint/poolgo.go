package lint

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// PoolGo flags raw `go` statements outside internal/pool. The Engine
// facade (PR 5) guarantees that concurrent callers share one bounded
// worker set — ~width+M goroutines instead of M×width — and that
// guarantee only holds while internal/pool is the sole place that
// spawns workers. A stray goroutine elsewhere silently erodes the
// bound and reintroduces scheduling-order nondeterminism.
var PoolGo = suppressGated(&analysis.Analyzer{
	Name:     "poolgo",
	Doc:      "forbid raw go statements outside internal/pool; concurrency must ride pool.Shared (bounded-pool invariant)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runPoolGo,
})

const poolgoInvariant = "all concurrency rides the shared bounded pool so Engine's width guarantee holds"

func runPoolGo(pass *analysis.Pass) (interface{}, error) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/pool") {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		if testFile(pass, n.Pos()) {
			return
		}
		pass.Reportf(n.Pos(), "%s", invariantf("poolgo",
			poolgoInvariant, "raw go statement outside internal/pool; submit the work through pool.Shared / pool.Do instead"))
	})
	return nil, nil
}
