package lint

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DetRand flags wall-clock reads and unseeded global math/rand draws.
// Both make output depend on when or in what order code ran, which
// breaks the repo's core contract: tables are byte-identical at any
// parallelism, cache state, or resume point.
//
// The two rules have different blast radii. The global-RNG rule
// applies to result-producing packages (the root package and
// internal/*): binaries and examples may shuffle for display. The
// time.Now rule applies to every package except internal/obs — the
// one package allowed to touch the wall clock — so all timing flows
// through an injectable obs.Clock (obs.Now for display-only
// timestamps) and can never leak into result bytes unnoticed.
var DetRand = suppressWith(&analysis.Analyzer{
	Name:     "detrand",
	Doc:      "forbid time.Now() outside internal/obs and unseeded global math/rand in result-producing packages (determinism invariant)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetRand,
}, detrandPackage)

const detrandInvariant = "results must be a pure function of (config, seed), never of wall-clock or process-global RNG state"

const detrandClockInvariant = "internal/obs owns the wall clock: timing is injected via obs.Clock and never flows into result bytes"

// detrandPackage gates the whole analyzer: everything but vendored
// code and internal/obs is checked. The narrower rand rules gate
// again on resultPackage inside runDetRand.
func detrandPackage(pass *analysis.Pass) bool {
	path := pass.Pkg.Path()
	if strings.Contains(path, "/vendor/") || strings.HasPrefix(path, "vendor/") {
		return false
	}
	return !strings.HasSuffix(path, "internal/obs")
}

// globalRandConstructors are the math/rand package-level functions that
// are fine to call: they build explicitly seeded generators rather than
// drawing from the shared global source.
var globalRandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDetRand(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	inResult := resultPackage(pass)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if testFile(pass, call.Pos()) {
			return
		}
		if pkgFunc(pass, call, "time", "Now") {
			if inResult {
				pass.Reportf(call.Pos(), "%s", invariantf("detrand",
					detrandInvariant, "time.Now() in result-producing package %s", pass.Pkg.Path()))
			} else {
				pass.Reportf(call.Pos(), "%s", invariantf("detrand",
					detrandClockInvariant, "time.Now() outside internal/obs; read the clock through obs.Clock, or obs.Now for display-only timestamps"))
			}
			return
		}
		if !inResult {
			return
		}
		for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || globalRandConstructors[sel.Sel.Name] {
				continue
			}
			if pkgFunc(pass, call, randPkg, sel.Sel.Name) {
				pass.Reportf(call.Pos(), "%s", invariantf("detrand",
					detrandInvariant, "%s.%s draws from the unseeded process-global RNG; derive a *rand.Rand from the job's seed instead", randPkg, sel.Sel.Name))
				return
			}
		}
	})
	return nil, nil
}
