package lint

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DetRand flags wall-clock reads and unseeded global math/rand draws
// in result-producing packages. Both make output depend on when or in
// what order code ran, which breaks the repo's core contract: tables
// are byte-identical at any parallelism, cache state, or resume point.
var DetRand = suppressGated(&analysis.Analyzer{
	Name:     "detrand",
	Doc:      "forbid time.Now() and unseeded global math/rand in result-producing packages (determinism invariant)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetRand,
})

const detrandInvariant = "results must be a pure function of (config, seed), never of wall-clock or process-global RNG state"

// globalRandConstructors are the math/rand package-level functions that
// are fine to call: they build explicitly seeded generators rather than
// drawing from the shared global source.
var globalRandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDetRand(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if testFile(pass, call.Pos()) {
			return
		}
		if pkgFunc(pass, call, "time", "Now") {
			pass.Reportf(call.Pos(), "%s", invariantf("detrand",
				detrandInvariant, "time.Now() in result-producing package %s", pass.Pkg.Path()))
			return
		}
		for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || globalRandConstructors[sel.Sel.Name] {
				continue
			}
			if pkgFunc(pass, call, randPkg, sel.Sel.Name) {
				pass.Reportf(call.Pos(), "%s", invariantf("detrand",
					detrandInvariant, "%s.%s draws from the unseeded process-global RNG; derive a *rand.Rand from the job's seed instead", randPkg, sel.Sel.Name))
				return
			}
		}
	})
	return nil, nil
}
