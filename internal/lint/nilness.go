package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Nilness reports dereferences of variables that are provably nil on
// the path reaching them. It covers the branch-local core of the
// upstream golang.org/x/tools nilness pass (which is SSA-based; the
// container vendors only the vet subset of x/tools, so this is a
// from-scratch AST implementation of the same rule): inside the body
// of `if x == nil { ... }` — or the else branch of `if x != nil` —
// a use of x that dereferences (x.f on a pointer, x[i], *x, x(...))
// before any reassignment is a guaranteed runtime panic.
var Nilness = suppress(&analysis.Analyzer{
	Name:     "nilness",
	Doc:      "report dereferences of provably nil values (crash invariant)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runNilness,
})

const nilnessInvariant = "a dereference on a provably-nil path is a guaranteed panic"

func runNilness(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.IfStmt)(nil)}, func(n ast.Node) {
		ifStmt := n.(*ast.IfStmt)
		obj, op := nilComparison(pass, ifStmt.Cond)
		if obj == nil {
			return
		}
		// x == nil: then-branch has x nil. x != nil: else-branch does.
		var nilPath ast.Stmt
		if op == token.EQL {
			nilPath = ifStmt.Body
		} else if block, ok := ifStmt.Else.(*ast.BlockStmt); ok {
			nilPath = block
		}
		if nilPath == nil {
			return
		}
		checkNilPath(pass, nilPath, obj)
	})
	return nil, nil
}

// nilComparison decodes `x == nil` / `x != nil` (either operand order)
// where x is a simple identifier of nilable type that is never
// address-taken in the file, returning x's object and the operator.
func nilComparison(pass *analysis.Pass, cond ast.Expr) (types.Object, token.Token) {
	cmp, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
		return nil, 0
	}
	x := ast.Unparen(cmp.X)
	y := ast.Unparen(cmp.Y)
	if isNilIdent(y) {
		// keep x
	} else if isNilIdent(x) {
		x = y
	} else {
		return nil, 0
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, 0
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !nilable(obj.Type()) {
		return nil, 0
	}
	return obj, cmp.Op
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Signature, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// checkNilPath walks the statements executed with obj known nil and
// reports dereferences, stopping at the first reassignment,
// address-taking, or closure capture of obj (conservative: any of
// those may change or alias the value).
func checkNilPath(pass *analysis.Pass, path ast.Stmt, obj types.Object) {
	tainted := false // set once obj may have been reassigned
	ast.Inspect(path, func(n ast.Node) bool {
		if tainted {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					tainted = true
				}
			}
			// Keep walking: the RHS may still dereference obj.
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					tainted = true
				}
			}
		case *ast.FuncLit:
			// The closure may run later, after obj changed.
			return false
		case *ast.StarExpr:
			reportNilDeref(pass, n.X, obj, "*x dereference")
		case *ast.SelectorExpr:
			if _, isPtr := typeUnder(pass, n.X).(*types.Pointer); isPtr {
				reportNilDeref(pass, n.X, obj, "field or method access")
			}
		case *ast.IndexExpr:
			switch typeUnder(pass, n.X).(type) {
			case *types.Slice, *types.Pointer:
				reportNilDeref(pass, n.X, obj, "index")
			}
		case *ast.CallExpr:
			if _, isSig := typeUnder(pass, n.Fun).(*types.Signature); isSig {
				reportNilDeref(pass, n.Fun, obj, "call")
			}
		}
		return true
	})
}

func typeUnder(pass *analysis.Pass, e ast.Expr) types.Type {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func reportNilDeref(pass *analysis.Pass, e ast.Expr, obj types.Object, what string) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != obj {
		return
	}
	pass.Reportf(e.Pos(), "%s", invariantf("nilness",
		nilnessInvariant, "%s of %q, which is nil on this path", what, obj.Name()))
}
