// Package lint hosts profilint, a go/analysis suite that statically
// enforces this repository's determinism, concurrency and context
// invariants. Every PR so far stakes correctness on one contract —
// results are byte-identical at any parallelism, any cache state, and
// across kill/resume — but until now that contract was enforced only
// dynamically, by equivalence property tests that can miss a
// nondeterminism bug until a rare interleaving hits. The analyzers
// here catch the whole bug class at `make ci` time instead:
//
//   - detrand: no time.Now() and no unseeded global math/rand draws in
//     result-producing packages (the root package and internal/*).
//   - mapiter: no map iteration whose order leaks into output — a
//     range over a map that appends to an outer slice without a later
//     sort, or that writes/hashes inside the body.
//   - poolgo: no raw `go` statements outside internal/pool; all
//     concurrency must ride the shared bounded pool.
//   - ctxthread: a function that receives a context.Context must not
//     drop it (passing nil or context.Background()/TODO() to a callee
//     that accepts one); Background/TODO are confined to main
//     packages, tests and the documented nil-ctx default sites.
//   - seedmix: per-job/per-trial seeds must be derived through the
//     FNV mix helpers, never ad-hoc arithmetic like seed+int64(i)
//     that collides across shards.
//
// Plus re-implementations of the upstream nilness and shadow passes
// (see nilness.go and shadow.go for the exact subset they cover).
//
// # Suppression
//
// A finding is suppressed by a comment on the flagged line or the
// line directly above it:
//
//	//profilint:ignore <analyzer> <reason>
//
// The reason is mandatory: an ignore comment naming an analyzer with
// no reason is itself reported as an error, so the tree can never
// accumulate unexplained suppressions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full profilint suite in a stable order: the
// five house-rule analyzers plus the nilness and shadow passes, each
// wrapped with //profilint:ignore suppression handling.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetRand,
		MapIter,
		PoolGo,
		CtxThread,
		SeedMix,
		Nilness,
		Shadow,
	}
}

// ignoreDirective is the comment prefix that suppresses a finding.
const ignoreDirective = "//profilint:ignore"

// resultPackage reports whether pass checks a result-producing
// package: the module root package or anything under internal/.
// Command binaries (cmd/, any package main) and examples/ are exempt —
// they may time wall-clock runs or print progress; only code that
// feeds result tables must be bit-deterministic.
func resultPackage(pass *analysis.Pass) bool {
	if pass.Pkg.Name() == "main" {
		return false
	}
	path := pass.Pkg.Path()
	for _, exempt := range []string{"/cmd/", "/examples/", "/vendor/"} {
		if strings.Contains(path, exempt) {
			return false
		}
	}
	return !strings.HasPrefix(path, "cmd/") && !strings.HasPrefix(path, "examples/")
}

// testFile reports whether pos lies in a _test.go file. Tests are
// exempt from the house rules: they may time themselves, spawn bare
// goroutines to provoke races, and construct contexts freely.
func testFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// suppress wraps an analyzer's Run so that diagnostics covered by a
// well-formed //profilint:ignore comment are dropped, and ignore
// comments that name this analyzer without a reason are reported as
// errors in their own right. Analyzers whose rules apply only to
// result-producing packages wrap with suppressGated instead, which
// additionally skips exempt packages entirely (including the
// malformed-ignore check: a directive in an exempt package is inert,
// not wrong).
func suppress(a *analysis.Analyzer) *analysis.Analyzer {
	return suppressWith(a, func(*analysis.Pass) bool { return true })
}

func suppressGated(a *analysis.Analyzer) *analysis.Analyzer {
	return suppressWith(a, resultPackage)
}

func suppressWith(a *analysis.Analyzer, gate func(*analysis.Pass) bool) *analysis.Analyzer {
	run := a.Run
	a.Run = func(pass *analysis.Pass) (interface{}, error) {
		if !gate(pass) {
			return nil, nil
		}
		ignored, malformed := collectIgnores(pass, a.Name)
		for _, pos := range malformed {
			pass.Reportf(pos, "%s: //profilint:ignore needs a non-empty reason (\"//profilint:ignore %s <why this site is safe>\")", a.Name, a.Name)
		}
		buffered := *pass
		var diags []analysis.Diagnostic
		buffered.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		result, err := run(&buffered)
		for _, d := range diags {
			line := pass.Fset.Position(d.Pos).Line
			file := pass.Fset.Position(d.Pos).Filename
			if ignored[fileLine{file, line}] {
				continue
			}
			pass.Report(d)
		}
		return result, err
	}
	return a
}

type fileLine struct {
	file string
	line int
}

// collectIgnores scans every file's comments for //profilint:ignore
// directives naming analyzer. A well-formed directive (analyzer name
// plus a non-empty reason) suppresses findings on its own line and the
// line below it; a directive naming the analyzer with no reason is
// returned as malformed.
func collectIgnores(pass *analysis.Pass, analyzer string) (map[fileLine]bool, []token.Pos) {
	ignored := make(map[fileLine]bool)
	var malformed []token.Pos
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Both comment forms carry the directive: the usual
				// //profilint:ignore and /*profilint:ignore*/ for
				// sites that need trailing commentary on the line.
				text := c.Text
				if inner, ok := strings.CutPrefix(text, "/*"); ok {
					text = "//" + strings.TrimSpace(strings.TrimSuffix(inner, "*/"))
				}
				rest, ok := strings.CutPrefix(text, ignoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 || fields[0] != analyzer {
					continue
				}
				if len(fields) < 2 {
					malformed = append(malformed, c.Pos())
					continue
				}
				p := pass.Fset.Position(c.Pos())
				ignored[fileLine{p.Filename, p.Line}] = true
				ignored[fileLine{p.Filename, p.Line + 1}] = true
			}
		}
	}
	return ignored, malformed
}

// pkgFunc reports whether call invokes the package-level function
// pkgPath.name (not a method, not a local shadow of the package name).
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Parent() == obj.Pkg().Scope()
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration in stack (a WithStack traversal stack), or nil.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// invariantf formats a diagnostic message that names the analyzer and
// the invariant it guards, so a CI failure reads as a rule, not a
// style nit.
func invariantf(analyzer, invariant, format string, args ...interface{}) string {
	return fmt.Sprintf("%s: %s [%s]", analyzer, fmt.Sprintf(format, args...), invariant)
}
