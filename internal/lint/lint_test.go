package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"profirt/internal/lint"
	"profirt/internal/lint/linttest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

// checkedPath is the synthetic import path under which fixtures count
// as result-producing code; the cmd and examples variants exercise the
// exemptions.
const (
	checkedPath  = "profirt/internal/fixture"
	cmdPath      = "profirt/cmd/fixture"
	examplesPath = "profirt/examples/fixture"
)

func TestDetRand(t *testing.T) {
	linttest.Run(t, lint.DetRand, fixture("detrand"), checkedPath)
}

func TestDetRandExemptions(t *testing.T) {
	// The global-RNG rule stays scoped to result-producing packages:
	// a rand-only fixture is silent under cmd/ and examples/ paths.
	linttest.RunExpectNone(t, lint.DetRand, fixture("detrandrand"), cmdPath)
	linttest.RunExpectNone(t, lint.DetRand, fixture("detrandrand"), examplesPath)
}

// TestDetRandClockEverywhere pins the obs clock boundary: time.Now()
// fires in cmd/ binaries and in internal packages (internal/pool is
// exactly where a stray timing call would corrupt determinism), and
// only internal/obs — the clock owner — is exempt.
func TestDetRandClockEverywhere(t *testing.T) {
	linttest.Run(t, lint.DetRand, fixture("detrandclock"), cmdPath)
	linttest.Run(t, lint.DetRand, fixture("detrandclock"), "profirt/internal/pool")
	linttest.RunExpectNone(t, lint.DetRand, fixture("detrandclock"), "profirt/internal/obs")
}

func TestMapIter(t *testing.T) {
	linttest.Run(t, lint.MapIter, fixture("mapiter"), checkedPath)
}

func TestMapIterExemptions(t *testing.T) {
	linttest.RunExpectNone(t, lint.MapIter, fixture("mapiter"), cmdPath)
}

func TestPoolGo(t *testing.T) {
	linttest.Run(t, lint.PoolGo, fixture("poolgo"), checkedPath)
}

func TestPoolGoExemptions(t *testing.T) {
	// internal/pool itself owns goroutine creation; cmd/ binaries are
	// outside the result-producing tree.
	linttest.RunExpectNone(t, lint.PoolGo, fixture("poolgo"), "profirt/internal/pool")
	linttest.RunExpectNone(t, lint.PoolGo, fixture("poolgo"), cmdPath)
}

func TestCtxThread(t *testing.T) {
	linttest.Run(t, lint.CtxThread, fixture("ctxthread"), checkedPath)
}

func TestCtxThreadExemptions(t *testing.T) {
	linttest.RunExpectNone(t, lint.CtxThread, fixture("ctxthread"), cmdPath)
}

func TestSeedMix(t *testing.T) {
	linttest.Run(t, lint.SeedMix, fixture("seedmix"), checkedPath)
}

func TestSeedMixExemptions(t *testing.T) {
	linttest.RunExpectNone(t, lint.SeedMix, fixture("seedmix"), examplesPath)
}

func TestNilness(t *testing.T) {
	linttest.Run(t, lint.Nilness, fixture("nilness"), checkedPath)
}

func TestShadow(t *testing.T) {
	linttest.Run(t, lint.Shadow, fixture("shadow"), checkedPath)
}

// TestSuppressionRequiresReason pins the ignore contract end to end:
// a reasoned suppression silences the finding, a bare one is itself
// an error while the finding still fires (see the detrand fixture's
// suppressed/badSuppression pair, asserted via want comments), and
// the malformed-suppression diagnostic names the analyzer.
func TestSuppressionRequiresReason(t *testing.T) {
	diags := linttest.Run(t, lint.DetRand, fixture("detrand"), checkedPath)
	var sawMalformed bool
	for _, d := range diags {
		if strings.Contains(d.Message, "needs a non-empty reason") {
			sawMalformed = true
			if !strings.Contains(d.Message, "detrand") {
				t.Errorf("malformed-suppression diagnostic does not name the analyzer: %s", d.Message)
			}
		}
	}
	if !sawMalformed {
		t.Error("no diagnostic for the reason-less //profilint:ignore")
	}
}

// TestAnalyzersRegistered guards the suite wiring: all five house
// analyzers plus nilness and shadow reach the multichecker.
func TestAnalyzersRegistered(t *testing.T) {
	want := []string{"detrand", "mapiter", "poolgo", "ctxthread", "seedmix", "nilness", "shadow"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
