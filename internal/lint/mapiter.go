package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MapIter flags range statements over maps whose iteration order can
// leak into output — the classic byte-identity killer. Go randomises
// map iteration order per run, so a map range that appends to a slice
// which is never sorted, or that writes/hashes directly from the loop
// body, yields different bytes on every execution.
//
// The sanctioned patterns are:
//
//   - collect keys (or values) into a slice and sort it before use —
//     allowed automatically when a sort.* or slices.Sort* call naming
//     the slice appears later in the same function;
//   - write into another map or into per-key slots (order-insensitive
//     sinks), which is never flagged.
var MapIter = suppressGated(&analysis.Analyzer{
	Name:     "mapiter",
	Doc:      "forbid map iteration whose order can reach output, hashes or tables without a sort (determinism invariant)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMapIter,
})

const mapiterInvariant = "map iteration order is randomised; sort before it can reach any output, hash or table"

// writerMethods are method names whose call inside a map-range body
// means iteration order reached an order-sensitive sink.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true, "Sum": true, "Sum64": true, "Sum32": true,
}

// fmtWriters are fmt package-level printers; any of them inside a
// map-range body emits in iteration order.
var fmtWriters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapIter(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rng := n.(*ast.RangeStmt)
		if testFile(pass, rng.Pos()) {
			return true
		}
		if _, ok := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map); !ok {
			return true
		}
		checkMapRange(pass, rng, enclosingFuncBody(stack))
		return true
	})
	return nil, nil
}

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	// Objects whose value depends on which element the iteration is
	// visiting: the range key/value variables, plus (one level of
	// taint) anything assigned from an expression mentioning them
	// inside the body. An early return of such a value picks one
	// element by iteration order — e.g. which of several invalid
	// entries gets its error reported.
	tainted := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				tainted[obj] = true
			}
		}
	}
	mentionsTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && tainted[pass.TypesInfo.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Runs later (or not at all); its returns exit the
			// literal, not the loop.
			return false
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if mentionsTainted(rhs) {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						tainted[obj] = true
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						tainted[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsTainted(res) {
					pass.Reportf(n.Pos(), "%s", invariantf("mapiter",
						mapiterInvariant, "early return of an iteration-dependent value from a map range; which element wins depends on iteration order"))
					return false
				}
			}
		case *ast.CallExpr:
			if sink, ok := orderSensitiveSink(pass, n); ok {
				pass.Reportf(n.Pos(), "%s", invariantf("mapiter",
					mapiterInvariant, "%s inside a map range emits in iteration order", sink))
				return true
			}
			// append to a slice declared outside the loop: fine only
			// if the slice is sorted later in the same function.
			if obj := appendTarget(pass, n, rng); obj != nil && !sortedLater(pass, fnBody, obj, rng.End()) {
				pass.Reportf(n.Pos(), "%s", invariantf("mapiter",
					mapiterInvariant, "append inside a map range collects in iteration order and %q is never sorted afterwards", obj.Name()))
			}
		}
		return true
	})
}

// orderSensitiveSink reports whether call writes or hashes — a sink
// where the caller observes element order.
func orderSensitiveSink(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if fmtWriters[name] && pkgFunc(pass, call, "fmt", name) {
		return "fmt." + name, true
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return "", false
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && writerMethods[name] {
		return "(" + sig.Recv().Type().String() + ")." + name, true
	}
	return "", false
}

// appendTarget returns the variable object when call has the shape
// `x = append(x, ...)` (as the RHS of an assignment somewhere inside
// the loop) with x declared outside the range statement; nil otherwise.
func appendTarget(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt) types.Object {
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	id := baseIdent(call.Args[0])
	if id == nil {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	// Declared inside the loop body: each iteration owns it, order
	// cannot accumulate.
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil
	}
	return obj
}

// baseIdent unwraps x, x.f, x[i] etc. down to the root identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortedLater reports whether, after pos, the enclosing function calls
// a sort.* / slices.Sort* function (or a sort method) with obj among
// the arguments — the idiom that launders map order back into a
// deterministic sequence.
func sortedLater(pass *analysis.Pass, fnBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	if fnBody == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted {
			return !sorted
		}
		if call.Pos() < pos || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if id := baseIdent(arg); id != nil && pass.TypesInfo.Uses[id] == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// isSortCall recognises the blessed sorters: anything package-level in
// sort or slices, plus sort.Sort-style interface calls.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	pkg := obj.Pkg().Path()
	return (pkg == "sort" || pkg == "slices") && obj.Parent() == obj.Pkg().Scope()
}
