package sched

import (
	"slices"
	"sync"

	"profirt/internal/timeunit"
)

// EDFUtilizationTest applies the Liu–Layland EDF bound ΣCi/Ti <= 1,
// necessary and sufficient for preemptive EDF with implicit deadlines.
func EDFUtilizationTest(ts TaskSet) bool {
	return ts.Utilization() <= 1
}

// DemandBound returns the processor demand h(t): the maximum cumulative
// execution requirement of jobs with both release and absolute deadline
// inside an interval of length t starting at a synchronous release.
//
// This is the left-hand side of the paper's Eq. 3. The paper prints the
// job-count factor as ⌈(t−Di)/Ti⌉⁺; the count of deadlines in [0, t] is
// max(0, ⌊(t+Ji−Di)/Ti⌋+1), which the implementation uses (see DESIGN.md
// §3 for the discussion of the typographical difference).
func DemandBound(ts TaskSet, t Ticks) Ticks {
	var h Ticks
	for _, tk := range ts {
		n := timeunit.JobsWithDeadlineBy(t, tk.D, tk.T, tk.J)
		h = timeunit.AddSat(h, timeunit.MulSat(n, tk.C))
	}
	return h
}

// SynchronousBusyPeriod returns the length L of the longest processor
// busy period starting from a synchronous release at maximum rate:
// the least fixed point of W(t) = Σ ⌈(t+Ji)/Ti⌉·Ci, seeded with ΣCi.
// If the iteration exceeds the horizon (utilisation at or above 1 can
// make it diverge) the horizon value is returned.
func SynchronousBusyPeriod(ts TaskSet, horizon Ticks) Ticks {
	if horizon <= 0 {
		horizon = defaultHorizon(ts)
	}
	var l Ticks
	for _, t := range ts {
		l += t.C
	}
	for {
		var next Ticks
		for _, t := range ts {
			next = timeunit.AddSat(next,
				timeunit.MulSat(timeunit.CeilDiv(l+t.J, t.T), t.C))
		}
		if next == l {
			return l
		}
		l = next
		if l >= horizon || l == timeunit.MaxTicks {
			return horizon
		}
	}
}

// ckptPool recycles checkpoint buffers across the demand-style tests:
// the experiment sweeps run them once per generated task set, and the
// checkpoint list is by far their largest allocation.
var ckptPool = sync.Pool{New: func() any { return new(checkpointBuf) }}

type checkpointBuf struct{ pts []Ticks }

// deadlineCheckpoints enumerates the absolute-deadline instants
// {k·Ti + Di − Ji : k ≥ 0} of every task in (0, limit], the only points
// where the demand bound changes (paper Eq. 3's set S). The sorted,
// duplicate-free list is built in the reusable buffer.
func deadlineCheckpoints(buf []Ticks, ts TaskSet, limit Ticks) []Ticks {
	pts := buf[:0]
	for _, t := range ts {
		first := t.D - t.J
		if first < 0 {
			first = 0
		}
		for d := first; d <= limit; d += t.T {
			if d > 0 {
				pts = append(pts, d)
			}
			if d > limit-t.T { // avoid overflow on the increment
				break
			}
		}
	}
	slices.Sort(pts)
	return slices.Compact(pts)
}

// FeasibilityReport carries the outcome of a demand-style feasibility
// test along with diagnosis data.
type FeasibilityReport struct {
	// Feasible is the verdict.
	Feasible bool
	// ViolationAt is the first checkpoint where demand exceeded supply
	// (0 when feasible).
	ViolationAt Ticks
	// DemandAtViolation is the demand at that point.
	DemandAtViolation Ticks
	// Checked is the number of checkpoints evaluated.
	Checked int
	// Limit is the upper bound of the scanned interval (t_max).
	Limit Ticks
}

// EDFFeasiblePreemptive applies the processor-demand test of the paper's
// Eq. 3: ∀t ∈ S ∩ [0, t_max]: h(t) ≤ t, with t_max the synchronous busy
// period. Requires ΣCi/Ti ≤ 1 (otherwise immediately infeasible).
func EDFFeasiblePreemptive(ts TaskSet) FeasibilityReport {
	if ts.Utilization() > 1 {
		return FeasibilityReport{Feasible: false, ViolationAt: 0}
	}
	limit := SynchronousBusyPeriod(ts, 0)
	rep := FeasibilityReport{Feasible: true, Limit: limit}
	buf := ckptPool.Get().(*checkpointBuf)
	defer ckptPool.Put(buf)
	buf.pts = deadlineCheckpoints(buf.pts, ts, limit)
	for _, t := range buf.pts {
		rep.Checked++
		if h := DemandBound(ts, t); h > t {
			return FeasibilityReport{
				Feasible: false, ViolationAt: t,
				DemandAtViolation: h, Checked: rep.Checked, Limit: limit,
			}
		}
	}
	return rep
}

// EDFFeasibleNonPreemptiveZS applies the sufficient non-preemptive EDF
// test of Zheng & Shin [25,30] (the paper's Eq. 4):
//
//	∀t ≥ min Di:  h(t) + max_i{Ci} ≤ t
//
// The blocking term conservatively assumes the longest message/task of
// the whole set blocks at every instant, which George et al. [31] showed
// to be pessimistic (see EDFFeasibleNonPreemptiveGeorge).
func EDFFeasibleNonPreemptiveZS(ts TaskSet) FeasibilityReport {
	if ts.Utilization() > 1 {
		return FeasibilityReport{Feasible: false}
	}
	limit := SynchronousBusyPeriod(ts, 0)
	blocking := ts.MaxC()
	minD := timeunit.MaxTicks
	for _, t := range ts {
		if t.D < minD {
			minD = t.D
		}
	}
	rep := FeasibilityReport{Feasible: true, Limit: limit}
	buf := ckptPool.Get().(*checkpointBuf)
	defer ckptPool.Put(buf)
	buf.pts = deadlineCheckpoints(buf.pts, ts, limit)
	for _, t := range buf.pts {
		if t < minD {
			continue
		}
		rep.Checked++
		if h := timeunit.AddSat(DemandBound(ts, t), blocking); h > t {
			return FeasibilityReport{
				Feasible: false, ViolationAt: t,
				DemandAtViolation: h, Checked: rep.Checked, Limit: limit,
			}
		}
	}
	return rep
}

// EDFFeasibleNonPreemptiveGeorge applies the refined non-preemptive EDF
// test of George, Rivierre & Spuri [31] (the paper's Eq. 5): the
// blocking at time t comes only from a task whose deadline is beyond t,
// and a non-preemptive job that starts strictly before t has at most
// Ci − 1 remaining:
//
//	∀t ∈ S:  h(t) + max_{i: Di > t}{Ci − 1} ≤ t
//
// (max over an empty index set is 0).
func EDFFeasibleNonPreemptiveGeorge(ts TaskSet) FeasibilityReport {
	if ts.Utilization() > 1 {
		return FeasibilityReport{Feasible: false}
	}
	limit := SynchronousBusyPeriod(ts, 0)
	rep := FeasibilityReport{Feasible: true, Limit: limit}
	buf := ckptPool.Get().(*checkpointBuf)
	defer ckptPool.Put(buf)
	buf.pts = deadlineCheckpoints(buf.pts, ts, limit)
	for _, t := range buf.pts {
		rep.Checked++
		var blocking Ticks
		for _, tk := range ts {
			if tk.D > t && tk.C-1 > blocking {
				blocking = tk.C - 1
			}
		}
		if h := timeunit.AddSat(DemandBound(ts, t), blocking); h > t {
			return FeasibilityReport{
				Feasible: false, ViolationAt: t,
				DemandAtViolation: h, Checked: rep.Checked, Limit: limit,
			}
		}
	}
	return rep
}
