package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"profirt/internal/timeunit"
)

func TestLiuLaylandBound(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{1, 1.0},
		{2, 2 * (math.Sqrt2 - 1)},
		{3, 3 * (math.Pow(2, 1.0/3) - 1)},
	}
	for _, c := range cases {
		if got := LiuLaylandBound(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("LL(%d) = %g, want %g", c.n, got, c.want)
		}
	}
	if LiuLaylandBound(0) != 0 {
		t.Error("LL(0) should be 0")
	}
	// Monotone decreasing towards ln 2.
	prev := LiuLaylandBound(1)
	for n := 2; n <= 50; n++ {
		cur := LiuLaylandBound(n)
		if cur >= prev {
			t.Fatalf("LL not decreasing at n=%d", n)
		}
		prev = cur
	}
	if math.Abs(LiuLaylandBound(100000)-math.Ln2) > 1e-4 {
		t.Error("LL limit should approach ln 2")
	}
}

func TestRMUtilizationTest(t *testing.T) {
	ok := TaskSet{mkTask("a", 1, 4, 4), mkTask("b", 1, 8, 8)} // U = 0.375
	if !RMUtilizationTest(ok) {
		t.Error("low-utilisation set should pass")
	}
	bad := TaskSet{mkTask("a", 3, 4, 4), mkTask("b", 2, 8, 8)} // U = 1.0
	if RMUtilizationTest(bad) {
		t.Error("U=1 set should fail the LL test")
	}
}

// Classic Joseph–Pandya example: the RTA converges to exact worst-case
// response times at the critical instant.
func TestResponseTimesFPPreemptiveClassic(t *testing.T) {
	ts := TaskSet{ // already RM-ordered
		mkTask("t1", 3, 7, 7),
		mkTask("t2", 3, 12, 12),
		mkTask("t3", 5, 20, 20),
	}
	rs := ResponseTimesFP(ts, FPOptions{Preemptive: true})
	want := []Ticks{3, 6, 20}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("R[%d] = %v, want %v", i, rs[i], want[i])
		}
	}
	ok, _ := FPSchedulable(ts, FPOptions{Preemptive: true})
	if !ok {
		t.Error("set should be schedulable")
	}
}

func TestResponseTimesFPPreemptiveUnschedulable(t *testing.T) {
	// Converging but deadline-missing case: w2 = 4 + ⌈w/7⌉·4 → 12 > 10.
	ts := TaskSet{
		mkTask("t1", 4, 7, 7),
		mkTask("t2", 4, 10, 10),
	}
	rs := ResponseTimesFP(ts, FPOptions{Preemptive: true})
	if rs[0] != 4 {
		t.Errorf("R[0] = %v, want 4", rs[0])
	}
	if rs[1] != 12 {
		t.Errorf("R[1] = %v, want 12", rs[1])
	}
	ok, _ := FPSchedulable(ts, FPOptions{Preemptive: true})
	if ok {
		t.Error("deadline-missing set must be unschedulable")
	}

	// Divergent case: higher-priority utilisation is 1, so the lower
	// task's iteration never converges.
	div := TaskSet{
		mkTask("hog", 4, 4, 4),
		mkTask("starved", 1, 10, 10),
	}
	rs = ResponseTimesFP(div, FPOptions{Preemptive: true})
	if rs[1] != timeunit.MaxTicks {
		t.Errorf("starved R = %v, want MaxTicks", rs[1])
	}
}

// Non-preemptive fixture, worked by hand.
//
// Paper-literal Eq. 1–2 (⌈w/T⌉ interference):
//
//	t1: C=1 T=D=4   B1 = max(2,3) = 3, w1 = 3, R1 = 4
//	t2: C=2 T=D=6   B2 = 3, w2 = 3 + ⌈w/4⌉·1 → 4, R2 = 6
//	t3: C=3 T=D=12  B3 = 0, w3 = ⌈w/4⌉·1 + ⌈w/6⌉·2 → 3, R3 = 6
//
// Revised sound form (⌊w/T⌋+1): t2's start at w=4 coincides with t1's
// second release, which wins the dispatch, so w2 = 5 and R2 = 7
// (simulation attains 7: t3 [0,3], t1 [3,4], t1' [4,5], t2 [5,7]).
func TestResponseTimesFPNonPreemptiveHandComputed(t *testing.T) {
	ts := TaskSet{
		mkTask("t1", 1, 4, 4),
		mkTask("t2", 2, 6, 6),
		mkTask("t3", 3, 12, 12),
	}
	rs := ResponseTimesFP(ts, FPOptions{Preemptive: false})
	want := []Ticks{4, 7, 6}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("revised R[%d] = %v, want %v", i, rs[i], want[i])
		}
	}
	lit := ResponseTimesFP(ts, FPOptions{Preemptive: false, LiteralPaperRecurrence: true})
	wantLit := []Ticks{4, 6, 6}
	for i := range wantLit {
		if lit[i] != wantLit[i] {
			t.Errorf("literal R[%d] = %v, want %v", i, lit[i], wantLit[i])
		}
	}
}

// Regression: push-through across the level-i busy period. For the set
// below, the first job of the lowest task completes at 134, but t1's
// release at 125 keeps the processor busy through t = 381, so the
// second job (released 242) starts only at 370 and responds in 139 —
// the simulator attains exactly this. A single-job analysis (even with
// floor+1 counting) reports 134 and is refuted; the revised analysis
// must examine every job in the busy period (L = 442, Q = 2).
func TestPushThroughBusyPeriod(t *testing.T) {
	ts := TaskSet{
		mkTask("t1", 61, 125, 125),
		mkTask("t2", 52, 158, 158),
		mkTask("t3", 10, 241, 241),
		mkTask("t0", 11, 242, 242),
	}
	rev := ResponseTimesFP(ts, FPOptions{Preemptive: false})
	if rev[3] != 139 {
		t.Errorf("revised R[t0] = %v, want 139 (the simulated worst case)", rev[3])
	}
	lit := ResponseTimesFP(ts, FPOptions{Preemptive: false, LiteralPaperRecurrence: true})
	if lit[3] >= 139 {
		t.Errorf("literal R[t0] = %v, expected optimistic (< 139)", lit[3])
	}
}

// Regression: the concrete counterexample (found by the cpusim
// cross-validation) where the paper-literal Eq. 1 is optimistic. A
// higher-priority job released exactly when the lowest task would start
// wins the dispatch; the literal recurrence misses it.
func TestLiteralRecurrenceOptimism(t *testing.T) {
	ts := TaskSet{
		mkTask("t0", 1, 2, 9),
		mkTask("t1", 4, 5, 29),
		mkTask("t2", 4, 6, 39),
		mkTask("t3", 4, 23, 29),
	}
	lit := ResponseTimesFP(ts, FPOptions{Preemptive: false, LiteralPaperRecurrence: true})
	rev := ResponseTimesFP(ts, FPOptions{Preemptive: false})
	if lit[3] != 13 {
		t.Errorf("literal R[3] = %v, want 13", lit[3])
	}
	if rev[3] != 14 {
		t.Errorf("revised R[3] = %v, want 14 (the simulated worst case)", rev[3])
	}
	// Revised is never below literal.
	for i := range ts {
		if rev[i] < lit[i] {
			t.Errorf("revised R[%d]=%v < literal %v", i, rev[i], lit[i])
		}
	}
}

// With zero blocking and no lower-priority tasks, the lowest-priority
// task must still account for one job of every higher-priority task
// (the w=0 spurious fixed point must not be reachable).
func TestNonPreemptiveSeedAvoidsSpuriousFixedPoint(t *testing.T) {
	ts := TaskSet{
		mkTask("hp", 5, 20, 20),
		mkTask("lp", 1, 20, 20),
	}
	rs := ResponseTimesFP(ts, FPOptions{Preemptive: false})
	// lp waits for hp's 5, then transmits 1.
	if rs[1] != 6 {
		t.Errorf("R[lp] = %v, want 6", rs[1])
	}
}

func TestJitterIncreasesResponse(t *testing.T) {
	base := TaskSet{
		mkTask("t1", 2, 10, 10),
		mkTask("t2", 4, 20, 20),
	}
	jittered := base.Clone()
	jittered[0].J = 3
	r0 := ResponseTimesFP(base, FPOptions{Preemptive: true})
	r1 := ResponseTimesFP(jittered, FPOptions{Preemptive: true})
	if r1[1] < r0[1] {
		t.Errorf("jitter must not decrease interference: %v < %v", r1[1], r0[1])
	}
	// And the jittered task's own response includes its jitter.
	if r1[0] != r0[0]+3 {
		t.Errorf("R includes own jitter: got %v want %v", r1[0], r0[0]+3)
	}
}

func TestExtraBlockingTermB(t *testing.T) {
	ts := TaskSet{
		{Name: "t1", C: 2, D: 10, T: 10, B: 5},
	}
	rs := ResponseTimesFP(ts, FPOptions{Preemptive: true})
	if rs[0] != 7 {
		t.Errorf("R with B=5: got %v, want 7", rs[0])
	}
}

// Property: preemptive response time of the highest-priority task is
// C + B, and every response time is at least C.
func TestFPResponseProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		ts := make(TaskSet, n)
		for i := range ts {
			c := Ticks(1 + rng.Intn(5))
			T := c + Ticks(rng.Intn(50)) + 5
			ts[i] = Task{Name: "t", C: c, D: T, T: T}
		}
		ts = SortRM(ts)
		for _, pre := range []bool{true, false} {
			rs := ResponseTimesFP(ts, FPOptions{Preemptive: pre})
			for i, r := range rs {
				if r != timeunit.MaxTicks && r < ts[i].C {
					return false
				}
			}
			if pre && rs[0] != ts[0].C {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: non-preemptive response times are monotone in the blocking
// term (adding lower-priority load cannot reduce anyone's response).
func TestFPBlockingMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		ts := make(TaskSet, n)
		for i := range ts {
			c := Ticks(1 + rng.Intn(4))
			T := c*4 + Ticks(rng.Intn(40)) + 8
			ts[i] = Task{Name: "t", C: c, D: T, T: T}
		}
		ts = SortRM(ts)
		rs := ResponseTimesFP(ts, FPOptions{Preemptive: false})
		bigger := ts.Clone()
		bigger = append(bigger, Task{Name: "huge-lp", C: 7, D: 1000, T: 1000})
		rs2 := ResponseTimesFP(bigger, FPOptions{Preemptive: false})
		for i := range rs {
			if rs2[i] != timeunit.MaxTicks && rs[i] != timeunit.MaxTicks && rs2[i] < rs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAudsleyAssignable(t *testing.T) {
	// DM-schedulable set: Audsley must find an assignment.
	ts := TaskSet{
		mkTask("a", 3, 7, 7),
		mkTask("b", 3, 12, 12),
		mkTask("c", 5, 20, 20),
	}
	ordered, ok := AudsleyAssignable(ts, true)
	if !ok {
		t.Fatal("Audsley failed on a schedulable set")
	}
	okRTA, _ := FPSchedulable(ordered, FPOptions{Preemptive: true})
	if !okRTA {
		t.Error("Audsley's ordering must itself pass RTA")
	}

	// Infeasible set (U > 1): no assignment exists.
	bad := TaskSet{
		mkTask("a", 5, 7, 7),
		mkTask("b", 5, 10, 10),
	}
	if _, ok := AudsleyAssignable(bad, true); ok {
		t.Error("Audsley must fail on an infeasible set")
	}
}

func TestAudsleyNonPreemptive(t *testing.T) {
	// A set schedulable non-preemptively under DM: Audsley must find an
	// ordering that passes the non-preemptive RTA too.
	ts := TaskSet{
		mkTask("a", 1, 10, 10),
		mkTask("b", 2, 15, 15),
		mkTask("c", 3, 40, 40),
	}
	ordered, ok := AudsleyAssignable(ts, false)
	if !ok {
		t.Fatal("Audsley (non-preemptive) failed on a schedulable set")
	}
	if okRTA, rs := FPSchedulable(ordered, FPOptions{Preemptive: false}); !okRTA {
		t.Errorf("Audsley ordering fails its own test: %v", rs)
	}
}

// Audsley dominates DM when jitter is present is a known result only for
// the general model; here we at least require: if DM passes, Audsley
// passes too.
func TestAudsleyDominatesDM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3)
		ts := make(TaskSet, n)
		for i := range ts {
			c := Ticks(1 + rng.Intn(4))
			T := c*2 + Ticks(rng.Intn(30)) + 6
			d := c + Ticks(rng.Intn(int(T-c))) + 1
			ts[i] = Task{Name: "t", C: c, D: d, T: T}
		}
		dm := SortDM(ts)
		if ok, _ := FPSchedulable(dm, FPOptions{Preemptive: true}); ok {
			if _, aok := AudsleyAssignable(ts, true); !aok {
				t.Fatalf("trial %d: DM schedulable but Audsley failed: %+v", trial, ts)
			}
		}
	}
}
