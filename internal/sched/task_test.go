package sched

import (
	"math"
	"testing"

	"profirt/internal/timeunit"
)

func mkTask(name string, c, d, t Ticks) Task {
	return Task{Name: name, C: c, D: d, T: t}
}

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		task Task
		ok   bool
	}{
		{mkTask("ok", 1, 5, 5), true},
		{mkTask("zeroC", 0, 5, 5), false},
		{mkTask("negC", -1, 5, 5), false},
		{mkTask("zeroT", 1, 5, 0), false},
		{mkTask("zeroD", 1, 0, 5), false},
		{mkTask("CgtT", 6, 5, 5), false},
		{Task{Name: "negJ", C: 1, D: 5, T: 5, J: -1}, false},
		{Task{Name: "negB", C: 1, D: 5, T: 5, B: -1}, false},
		{Task{Name: "jitter", C: 1, D: 5, T: 5, J: 2}, true},
	}
	for _, c := range cases {
		err := c.task.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.task.Name, err, c.ok)
		}
	}
}

func TestTaskSetValidate(t *testing.T) {
	if err := (TaskSet{}).Validate(); err == nil {
		t.Error("empty set should be invalid")
	}
	ts := TaskSet{mkTask("a", 1, 5, 5), mkTask("b", 0, 5, 5)}
	if err := ts.Validate(); err == nil {
		t.Error("set with bad task should be invalid")
	}
}

func TestUtilization(t *testing.T) {
	ts := TaskSet{mkTask("a", 1, 4, 4), mkTask("b", 2, 8, 8)}
	if got := ts.Utilization(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Utilization = %g, want 0.5", got)
	}
}

func TestSortRMDM(t *testing.T) {
	ts := TaskSet{
		{Name: "long", C: 1, D: 9, T: 20},
		{Name: "short", C: 1, D: 10, T: 5},
		{Name: "mid", C: 1, D: 3, T: 10},
	}
	rm := SortRM(ts)
	if rm[0].Name != "short" || rm[1].Name != "mid" || rm[2].Name != "long" {
		t.Errorf("SortRM order wrong: %v %v %v", rm[0].Name, rm[1].Name, rm[2].Name)
	}
	dm := SortDM(ts)
	if dm[0].Name != "mid" || dm[1].Name != "long" || dm[2].Name != "short" {
		t.Errorf("SortDM order wrong: %v %v %v", dm[0].Name, dm[1].Name, dm[2].Name)
	}
	// original untouched
	if ts[0].Name != "long" {
		t.Error("sort must not mutate input")
	}
}

func TestSortStability(t *testing.T) {
	ts := TaskSet{
		{Name: "a", C: 1, D: 5, T: 10},
		{Name: "b", C: 1, D: 5, T: 10},
		{Name: "c", C: 1, D: 5, T: 10},
	}
	dm := SortDM(ts)
	if dm[0].Name != "a" || dm[1].Name != "b" || dm[2].Name != "c" {
		t.Error("stable sort must preserve input order on ties")
	}
}

func TestHyperperiodAndMaxC(t *testing.T) {
	ts := TaskSet{mkTask("a", 2, 4, 4), mkTask("b", 3, 6, 6)}
	if got := ts.Hyperperiod(); got != 12 {
		t.Errorf("Hyperperiod = %d, want 12", got)
	}
	if got := ts.MaxC(); got != 3 {
		t.Errorf("MaxC = %d, want 3", got)
	}
	if got := (TaskSet{}).MaxC(); got != 0 {
		t.Errorf("empty MaxC = %d, want 0", got)
	}
}

func TestDeadlineModels(t *testing.T) {
	implicit := TaskSet{mkTask("a", 1, 4, 4), mkTask("b", 1, 8, 8)}
	if !implicit.ImplicitDeadlines() || !implicit.ConstrainedDeadlines() {
		t.Error("implicit set misclassified")
	}
	constrained := TaskSet{mkTask("a", 1, 3, 4)}
	if constrained.ImplicitDeadlines() {
		t.Error("constrained set reported implicit")
	}
	if !constrained.ConstrainedDeadlines() {
		t.Error("constrained set not reported constrained")
	}
	arbitrary := TaskSet{mkTask("a", 1, 9, 4)}
	if arbitrary.ConstrainedDeadlines() {
		t.Error("arbitrary set reported constrained")
	}
}

func TestCloneIndependence(t *testing.T) {
	ts := TaskSet{mkTask("a", 1, 4, 4)}
	cp := ts.Clone()
	cp[0].C = 99
	if ts[0].C != 1 {
		t.Error("Clone must deep-copy")
	}
}

func TestPeriods(t *testing.T) {
	ts := TaskSet{mkTask("a", 1, 4, 4), mkTask("b", 1, 6, 6)}
	ps := ts.Periods()
	if len(ps) != 2 || ps[0] != 4 || ps[1] != 6 {
		t.Errorf("Periods = %v", ps)
	}
}

func TestDefaultHorizonSaturation(t *testing.T) {
	huge := TaskSet{
		mkTask("a", 1, timeunit.MaxTicks/2, timeunit.MaxTicks/2),
		mkTask("b", 1, timeunit.MaxTicks/2-1, timeunit.MaxTicks/2-1),
	}
	h := defaultHorizon(huge)
	if h != Ticks(1)<<40 {
		t.Errorf("defaultHorizon should cap at 1<<40, got %d", h)
	}
}
