package sched

import (
	"sort"

	"profirt/internal/timeunit"
)

// EDFOptions tunes the EDF response-time analyses.
type EDFOptions struct {
	// Horizon caps the busy-period search window (and thus the set of
	// release offsets examined). Zero selects the synchronous busy
	// period of the set.
	Horizon Ticks
}

// edfCandidateOffsets enumerates the offsets a at which the response
// time of task i can be maximal (the paper's Eqs. 8 and 10):
//
//	a ∈ ∪_j {k·T_j + D_j − D_i : k ∈ ℕ} ∩ [0, limit]
//
// 0 is always a member (j = i, k = 0).
func edfCandidateOffsets(ts TaskSet, i int, limit Ticks) []Ticks {
	set := map[Ticks]struct{}{0: {}}
	di := ts[i].D
	for _, tj := range ts {
		base := tj.D - di
		for k := Ticks(0); ; k++ {
			a := base + timeunit.MulSat(k, tj.T)
			if a > limit {
				break
			}
			if a >= 0 {
				set[a] = struct{}{}
			}
		}
	}
	out := make([]Ticks, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(x, y int) bool { return out[x] < out[y] })
	return out
}

// spuriW evaluates W_i(a, t) from the paper's Sec. 2.2 (preemptive EDF):
// the higher-priority (earlier- or equal-deadline) interference from
// other tasks inside a busy period of length t when the analysed
// instance of task i is released at offset a.
func spuriW(ts TaskSet, i int, a, t Ticks) Ticks {
	var w Ticks
	adi := a + ts[i].D
	for j, tj := range ts {
		if j == i || tj.D > adi {
			continue
		}
		byRate := timeunit.CeilDiv(t, tj.T)
		byDeadline := 1 + timeunit.FloorDiv(adi-tj.D, tj.T)
		w = timeunit.AddSat(w, timeunit.MulSat(timeunit.Min(byRate, byDeadline), tj.C))
	}
	return w
}

// ResponseTimesEDFPreemptive computes per-task worst-case response times
// under preemptive EDF following Spuri [32] (the paper's Eqs. 6–8):
//
//	L_i(a) = W_i(a, L_i(a)) + (1 + ⌊a/T_i⌋)·C_i
//	r_i(a) = max{C_i, L_i(a) − a},  R_i = max_a r_i(a)
//
// Tasks whose busy-period iteration exceeds the horizon get
// timeunit.MaxTicks.
func ResponseTimesEDFPreemptive(ts TaskSet, opts EDFOptions) []Ticks {
	return responseTimesEDF(ts, opts, false)
}

// ResponseTimesEDFNonPreemptive computes per-task worst-case response
// times under non-preemptive EDF following George et al. [31] (the
// paper's Eqs. 9–10). The busy period analysed precedes the *start* of
// the instance (a later-deadline job can block once, contributing at
// most C_j − 1):
//
//	L_i(a) = max_{D_j > a+D_i}{C_j − 1} + W*_i(a, L_i(a)) + ⌊a/T_i⌋·C_i
//	r_i(a) = max{C_i, C_i + L_i(a) − a},  R_i = max_a r_i(a)
func ResponseTimesEDFNonPreemptive(ts TaskSet, opts EDFOptions) []Ticks {
	return responseTimesEDF(ts, opts, true)
}

func responseTimesEDF(ts TaskSet, opts EDFOptions, nonPreemptive bool) []Ticks {
	out := make([]Ticks, len(ts))
	// With U > 1 the busy period (and the per-offset response as the
	// offset grows) is unbounded: report MaxTicks for everyone rather
	// than scanning an enormous candidate window.
	if ts.UtilizationExceedsOne() {
		for i := range out {
			out[i] = timeunit.MaxTicks
		}
		return out
	}
	limit := opts.Horizon
	if limit <= 0 {
		limit = SynchronousBusyPeriod(ts, 0)
	}
	for i := range ts {
		out[i] = responseTimeEDFOne(ts, i, limit, nonPreemptive)
	}
	return out
}

func responseTimeEDFOne(ts TaskSet, i int, limit Ticks, nonPreemptive bool) Ticks {
	ti := ts[i]
	var best Ticks
	for _, a := range edfCandidateOffsets(ts, i, limit) {
		var r Ticks
		if nonPreemptive {
			r = edfNPResponseAt(ts, i, a, limit)
		} else {
			r = edfPResponseAt(ts, i, a, limit)
		}
		if r == timeunit.MaxTicks {
			return timeunit.MaxTicks
		}
		if r > best {
			best = r
		}
	}
	if best < ti.C {
		best = ti.C
	}
	return best
}

// edfPResponseAt evaluates r_i(a) for preemptive EDF (Eq. 6).
func edfPResponseAt(ts TaskSet, i int, a, horizon Ticks) Ticks {
	ti := ts[i]
	own := timeunit.MulSat(1+timeunit.FloorDiv(a, ti.T), ti.C)
	var l Ticks
	for {
		next := timeunit.AddSat(spuriW(ts, i, a, l), own)
		if next == l {
			break
		}
		l = next
		if l > timeunit.AddSat(horizon, a) || l == timeunit.MaxTicks {
			return timeunit.MaxTicks
		}
	}
	return timeunit.Max(ti.C, l-a)
}

// edfNPResponseAt evaluates r_i(a) for non-preemptive EDF (Eq. 9).
func edfNPResponseAt(ts TaskSet, i int, a, horizon Ticks) Ticks {
	ti := ts[i]
	adi := a + ti.D

	// Blocking from a single already-started later-deadline job.
	var blocking Ticks
	for j, tj := range ts {
		if j != i && tj.D > adi && tj.C-1 > blocking {
			blocking = tj.C - 1
		}
	}
	earlier := timeunit.MulSat(timeunit.FloorDiv(a, ti.T), ti.C)

	var l Ticks
	for {
		var w Ticks
		for j, tj := range ts {
			if j == i || tj.D > adi {
				continue
			}
			byRate := 1 + timeunit.FloorDiv(l, tj.T)
			byDeadline := 1 + timeunit.FloorDiv(adi-tj.D, tj.T)
			w = timeunit.AddSat(w, timeunit.MulSat(timeunit.Min(byRate, byDeadline), tj.C))
		}
		next := timeunit.AddSat(timeunit.AddSat(blocking, w), earlier)
		if next == l {
			break
		}
		l = next
		if l > timeunit.AddSat(horizon, a) || l == timeunit.MaxTicks {
			return timeunit.MaxTicks
		}
	}
	return timeunit.Max(ti.C, timeunit.AddSat(ti.C, l-a))
}

// EDFSchedulableByResponse checks R_i <= D_i using the response-time
// analysis selected by nonPreemptive, returning the response times.
func EDFSchedulableByResponse(ts TaskSet, nonPreemptive bool, opts EDFOptions) (bool, []Ticks) {
	var rs []Ticks
	if nonPreemptive {
		rs = ResponseTimesEDFNonPreemptive(ts, opts)
	} else {
		rs = ResponseTimesEDFPreemptive(ts, opts)
	}
	ok := true
	for i, r := range rs {
		if r > ts[i].D {
			ok = false
		}
	}
	return ok, rs
}
