package sched

import (
	"math"

	"profirt/internal/timeunit"
)

// LiuLaylandBound returns the rate-monotonic utilisation bound
// n·(2^(1/n) − 1) from Liu & Layland [21]; task sets with total
// utilisation below the bound are schedulable under preemptive RM with
// implicit deadlines.
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// RMUtilizationTest applies the Liu–Layland sufficient test
// ΣCi/Ti < n·(2^(1/n) − 1). It is only meaningful for implicit-deadline
// sets in a preemptive context; callers should gate on
// ts.ImplicitDeadlines().
func RMUtilizationTest(ts TaskSet) bool {
	return ts.Utilization() < LiuLaylandBound(len(ts))
}

// FPOptions tunes the fixed-priority response-time analyses.
type FPOptions struct {
	// Preemptive selects Joseph–Pandya RTA; otherwise the
	// non-preemptive analysis with the blocking factor of the paper's
	// Eqs. 1–2 is used.
	Preemptive bool
	// LiteralPaperRecurrence selects the paper's exact formulations:
	// for the non-preemptive case Eq. 1 with interference
	// Σ ⌈(w+J_j)/T_j⌉·C_j evaluated for the first job of the busy
	// period only. That form is optimistic in two ways (the flaws later
	// refuted for the analogous CAN analysis by Davis et al., RTSJ
	// 2007): it misses a higher-priority release coinciding exactly
	// with the start instant w, and it ignores later jobs of the task
	// inside the level-i busy period, which inherit push-through
	// blocking from the job before them. The default (false) uses the
	// revised, sound analysis: interference Σ (⌊(w+J_j)/T_j⌋+1)·C_j and
	// examination of every job q = 0, 1, … in the level-i busy period,
	// for the preemptive mode as well (where multi-job examination
	// matters once w(0)+J exceeds T).
	LiteralPaperRecurrence bool
	// Horizon caps the fixed-point iteration: when the intermediate
	// response time exceeds the horizon the task is reported
	// unschedulable (timeunit.MaxTicks). Zero selects a default derived
	// from the task set (hyperperiod plus largest deadline and jitter,
	// capped at 1<<40).
	Horizon Ticks
}

// defaultHorizon picks an iteration cap large enough that any response
// time that matters (relative to deadlines) is found exactly.
func defaultHorizon(ts TaskSet) Ticks {
	h := ts.Hyperperiod()
	var extra Ticks
	for _, t := range ts {
		if t.D > extra {
			extra = t.D
		}
		if t.J > extra-1 {
			extra = timeunit.Max(extra, t.J+1)
		}
	}
	h = timeunit.AddSat(h, extra)
	const cap = Ticks(1) << 40
	if h > cap || h == timeunit.MaxTicks {
		return cap
	}
	return h
}

// ResponseTimesFP computes per-task worst-case response times for a
// fixed-priority ordered set (index 0 = highest priority).
//
// Preemptive (Joseph & Pandya [23], with jitter per Audsley et al. [24]):
//
//	w_i = C_i + B_i + Σ_{j∈hp(i)} ⌈(w_i + J_j)/T_j⌉·C_j,   R_i = J_i + w_i
//
// Non-preemptive (the paper's Eqs. 1–2):
//
//	B_i = max_{j∈lp(i)} C_j (plus any Task.B),
//	w_i = B_i + Σ_{j∈hp(i)} ⌈(w_i + J_j)/T_j⌉·C_j,         R_i = J_i + w_i + C_i
//
// Tasks whose iteration exceeds the horizon get timeunit.MaxTicks.
func ResponseTimesFP(ts TaskSet, opts FPOptions) []Ticks {
	return ResponseTimesFPInto(make([]Ticks, 0, len(ts)), ts, opts)
}

// ResponseTimesFPInto is ResponseTimesFP writing into dst (reused from
// length zero; grown as needed), for callers that run the analysis in a
// loop — the holistic fixed point evaluates it once per master per
// round.
func ResponseTimesFPInto(dst []Ticks, ts TaskSet, opts FPOptions) []Ticks {
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = defaultHorizon(ts)
	}
	dst = dst[:0]
	for i := range ts {
		dst = append(dst, responseTimeFPOne(ts, i, opts.Preemptive, opts.LiteralPaperRecurrence, horizon))
	}
	return dst
}

func responseTimeFPOne(ts TaskSet, i int, preemptive, literal bool, horizon Ticks) Ticks {
	ti := ts[i]
	// The revised analysis walks the level-i busy period job by job;
	// with Σ_{j<=i} C_j/T_j > 1 that busy period never ends, so report
	// divergence directly instead of crawling toward the horizon. (At
	// exactly 1 the busy period may still close — e.g. C = T — so the
	// strict case is left to the q-loop, which is additionally capped.)
	if !literal && ts[:i+1].UtilizationExceedsOne() {
		return timeunit.MaxTicks
	}
	blocking := ti.B
	if !preemptive {
		// Eq. 2: longest lower-priority execution can already occupy the
		// processor (or, for messages, the single-slot stack queue).
		for j := i + 1; j < len(ts); j++ {
			if ts[j].C > blocking {
				blocking = ts[j].C
			}
		}
	}

	// solve computes the least positive fixed point of
	//   w = base + Σ_{j∈hp} count(w, j)·C_j
	// where count is ⌈(w+J_j)/T_j⌉ in the literal/preemptive-completion
	// reading and ⌊(w+J_j)/T_j⌋+1 in the revised start-instant reading.
	// The iteration must be seeded with a positive value no larger than
	// the least positive fixed point: otherwise w = 0 is a spurious
	// fixed point of the ceil form when base = 0, because ⌈0/T_j⌉
	// misses the critical-instant releases. One job of every
	// higher-priority task is always part of that least fixed point.
	solve := func(base Ticks, ceilCount bool) Ticks {
		w := base
		for j := 0; j < i; j++ {
			w += ts[j].C
		}
		if w <= 0 {
			w = 1
		}
		for {
			next := base
			for j := 0; j < i; j++ {
				tj := ts[j]
				var njobs Ticks
				if ceilCount {
					njobs = timeunit.CeilDiv(w+tj.J, tj.T)
				} else {
					njobs = timeunit.FloorDiv(w+tj.J, tj.T) + 1
				}
				next = timeunit.AddSat(next, timeunit.MulSat(njobs, tj.C))
			}
			if next == w {
				return w
			}
			w = next
			if w > horizon || w == timeunit.MaxTicks {
				return timeunit.MaxTicks
			}
		}
	}

	if literal {
		// Paper-exact single-job forms: Joseph–Pandya (preemptive) and
		// Eq. 1 (non-preemptive), first job of the busy period only.
		if preemptive {
			w := solve(blocking+ti.C, true)
			return timeunit.AddSat(w, ti.J)
		}
		w := solve(blocking, true)
		return timeunit.AddSat(timeunit.AddSat(w, ti.C), ti.J)
	}

	// Revised sound analysis: examine every job q of task i inside the
	// level-i busy period (Davis et al.'s corrected formulation). The
	// busy period must be computed over hp(i) ∪ {i} — it does not end
	// when one job of i completes if higher-priority arrivals bridge
	// the gap to i's next release, which is exactly the push-through
	// scenario the single-job analysis misses.
	busy := levelBusyPeriod(ts, i, blocking, horizon)
	if busy >= horizon {
		return timeunit.MaxTicks
	}
	njobs := timeunit.CeilDiv(busy+ti.J, ti.T)
	if njobs < 1 {
		njobs = 1
	}
	// maxJobs bounds pathological near-saturation busy periods: a task
	// with that many backlogged jobs is unschedulable for any practical
	// deadline, so MaxTicks is the honest answer.
	const maxJobs = 1 << 17
	if njobs > maxJobs {
		return timeunit.MaxTicks
	}
	var best Ticks
	for q := Ticks(0); q < njobs; q++ {
		var w Ticks
		if preemptive {
			// w(q) covers the completion of job q.
			w = solve(blocking+timeunit.MulSat(q+1, ti.C), true)
		} else {
			// w(q) covers the start of job q; arrivals exactly at the
			// start instant win the dispatch (floor+1 counting).
			w = solve(blocking+timeunit.MulSat(q, ti.C), false)
		}
		if w == timeunit.MaxTicks {
			return timeunit.MaxTicks
		}
		finish := w
		if !preemptive {
			finish = timeunit.AddSat(finish, ti.C)
		}
		r := timeunit.AddSat(finish-timeunit.MulSat(q, ti.T), ti.J)
		if r > best {
			best = r
		}
	}
	return best
}

// levelBusyPeriod returns the length of the longest level-i busy
// period: the least positive fixed point of
//
//	L = B_i + Σ_{j ∈ hp(i) ∪ {i}} ⌈(L + J_j)/T_j⌉ · C_j
//
// capped at the horizon when it fails to close (saturated level).
func levelBusyPeriod(ts TaskSet, i int, blocking, horizon Ticks) Ticks {
	l := blocking
	for j := 0; j <= i; j++ {
		l += ts[j].C
	}
	for {
		next := blocking
		for j := 0; j <= i; j++ {
			tj := ts[j]
			next = timeunit.AddSat(next,
				timeunit.MulSat(timeunit.CeilDiv(l+tj.J, tj.T), tj.C))
		}
		if next == l {
			return l
		}
		l = next
		if l >= horizon || l == timeunit.MaxTicks {
			return horizon
		}
	}
}

// FPSchedulable runs ResponseTimesFP and checks R_i <= D_i for every
// task, returning the response times for inspection.
func FPSchedulable(ts TaskSet, opts FPOptions) (bool, []Ticks) {
	rs := ResponseTimesFP(ts, opts)
	ok := true
	for i, r := range rs {
		if r > ts[i].D {
			ok = false
		}
	}
	return ok, rs
}

// AudsleyAssignable applies Audsley's optimal priority-assignment
// algorithm with the (non-)preemptive RTA as the per-level test: it
// tries to find, for each priority level from lowest to highest, some
// unassigned task that would meet its deadline at that level. It returns
// the priority-ordered set (index 0 highest) and true on success; on
// failure it returns nil and false. For independent tasks with jitter
// the RTA test is compatible with OPA, so this finds an assignment iff
// one exists.
func AudsleyAssignable(ts TaskSet, preemptive bool) (TaskSet, bool) {
	n := len(ts)
	remaining := ts.Clone()
	ordered := make(TaskSet, n)
	for level := n - 1; level >= 0; level-- {
		placed := false
		for cand := 0; cand < len(remaining); cand++ {
			// Build a trial ordering: all other remaining tasks above the
			// candidate (their relative order is irrelevant for the
			// candidate's response time), then the candidate, then the
			// already-fixed lower levels.
			trial := make(TaskSet, 0, n)
			for k, t := range remaining {
				if k != cand {
					trial = append(trial, t)
				}
			}
			trial = append(trial, remaining[cand])
			trial = append(trial, ordered[level+1:]...)
			idx := len(remaining) - 1
			r := responseTimeFPOne(trial, idx, preemptive, false, defaultHorizon(ts))
			if r <= remaining[cand].D {
				ordered[level] = remaining[cand]
				remaining = append(remaining[:cand:cand], remaining[cand+1:]...)
				placed = true
				break
			}
		}
		if !placed {
			return nil, false
		}
	}
	return ordered, true
}
