// Package sched implements the single-processor pre-run-time
// schedulability analyses surveyed in Section 2 of Tovar & Vasques
// (IPPS/SPDP 1999): utilisation-based tests and response-time analyses
// for fixed-priority (RM/DM) and dynamic-priority (EDF) scheduling, in
// both preemptive and non-preemptive contexts.
//
// Conventions:
//   - Time is integer (timeunit.Ticks); all fixed-point iterations are
//     exact.
//   - A TaskSet passed to a fixed-priority analysis is interpreted in
//     priority order: index 0 is the highest priority. Use SortRM /
//     SortDM to produce such an ordering.
//   - Analyses that can diverge (utilisation too high) return
//     timeunit.MaxTicks for the affected task instead of an error, so
//     callers can still inspect the other tasks.
package sched

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"profirt/internal/timeunit"
)

// Ticks re-exports the time base for brevity inside this package's API.
type Ticks = timeunit.Ticks

// Task is a periodic or sporadic task (or, by inheritance, a message
// stream): worst-case execution (transmission) time C, relative deadline
// D, minimum inter-arrival time T, and release jitter J. B is additional
// blocking from non-independence (e.g. critical sections); the
// non-preemptive analyses add the lower-priority blocking of the paper's
// Eq. 2 on top of B.
type Task struct {
	Name string
	C    Ticks
	D    Ticks
	T    Ticks
	J    Ticks
	B    Ticks
}

// Utilization returns C/T for this task.
func (t Task) Utilization() float64 {
	if t.T == 0 {
		return 0
	}
	return float64(t.C) / float64(t.T)
}

// Validate reports structural problems with the task parameters.
func (t Task) Validate() error {
	switch {
	case t.C <= 0:
		return fmt.Errorf("task %q: C must be positive, got %d", t.Name, t.C)
	case t.T <= 0:
		return fmt.Errorf("task %q: T must be positive, got %d", t.Name, t.T)
	case t.D <= 0:
		return fmt.Errorf("task %q: D must be positive, got %d", t.Name, t.D)
	case t.J < 0:
		return fmt.Errorf("task %q: J must be non-negative, got %d", t.Name, t.J)
	case t.B < 0:
		return fmt.Errorf("task %q: B must be non-negative, got %d", t.Name, t.B)
	case t.C > t.T:
		return fmt.Errorf("task %q: C (%d) exceeds T (%d)", t.Name, t.C, t.T)
	}
	return nil
}

// TaskSet is an ordered collection of tasks. For fixed-priority analyses
// the order is the priority order (index 0 highest).
type TaskSet []Task

// Validate checks every task and the aggregate utilisation bound U <= 1
// is NOT enforced here (several analyses want to observe infeasible
// sets); it only checks per-task structure.
func (ts TaskSet) Validate() error {
	if len(ts) == 0 {
		return errors.New("sched: empty task set")
	}
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Utilization returns the total utilisation sum(Ci/Ti).
func (ts TaskSet) Utilization() float64 {
	u := 0.0
	for _, t := range ts {
		u += t.Utilization()
	}
	return u
}

// UtilizationExceedsOne reports Σ Ci/Ti > 1 exactly (rational
// arithmetic), avoiding float rounding at the U = 1 boundary where the
// busy-period iterations change behaviour.
func (ts TaskSet) UtilizationExceedsOne() bool {
	return ts.utilizationCmpOne() > 0
}

// UtilizationExceedsOrEqualsOne reports Σ Ci/Ti >= 1 exactly: the load
// at which synchronous busy periods stop terminating.
func (ts TaskSet) UtilizationExceedsOrEqualsOne() bool {
	return ts.utilizationCmpOne() >= 0
}

func (ts TaskSet) utilizationCmpOne() int {
	sum := new(big.Rat)
	for _, t := range ts {
		if t.T <= 0 {
			continue
		}
		sum.Add(sum, big.NewRat(int64(t.C), int64(t.T)))
	}
	return sum.Cmp(big.NewRat(1, 1))
}

// Clone returns a deep copy of the set.
func (ts TaskSet) Clone() TaskSet {
	return append(TaskSet(nil), ts...)
}

// Periods returns the slice of task periods, for hyperperiod computation.
func (ts TaskSet) Periods() []Ticks {
	ps := make([]Ticks, len(ts))
	for i, t := range ts {
		ps[i] = t.T
	}
	return ps
}

// Hyperperiod returns the LCM of all periods (saturating).
func (ts TaskSet) Hyperperiod() Ticks {
	return timeunit.Hyperperiod(ts.Periods())
}

// MaxC returns the largest worst-case execution time in the set, or 0
// for an empty set.
func (ts TaskSet) MaxC() Ticks {
	var m Ticks
	for _, t := range ts {
		if t.C > m {
			m = t.C
		}
	}
	return m
}

// SortRM returns a copy of ts sorted rate-monotonically: shorter period
// means higher priority (earlier index). The sort is stable so callers
// get a deterministic order for equal periods.
func SortRM(ts TaskSet) TaskSet {
	out := ts.Clone()
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// SortDM returns a copy of ts sorted deadline-monotonically: shorter
// relative deadline means higher priority.
func SortDM(ts TaskSet) TaskSet {
	out := ts.Clone()
	sort.SliceStable(out, func(i, j int) bool { return out[i].D < out[j].D })
	return out
}

// ImplicitDeadlines reports whether every task has D == T, the model
// assumed by the Liu–Layland utilisation tests.
func (ts TaskSet) ImplicitDeadlines() bool {
	for _, t := range ts {
		if t.D != t.T {
			return false
		}
	}
	return true
}

// ConstrainedDeadlines reports whether every task has D <= T, the model
// assumed by the processor-demand and response-time analyses here.
func (ts TaskSet) ConstrainedDeadlines() bool {
	for _, t := range ts {
		if t.D > t.T {
			return false
		}
	}
	return true
}
