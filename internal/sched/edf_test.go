package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"profirt/internal/timeunit"
)

func TestEDFUtilizationTest(t *testing.T) {
	ok := TaskSet{mkTask("a", 2, 4, 4), mkTask("b", 4, 8, 8)} // U = 1.0
	if !EDFUtilizationTest(ok) {
		t.Error("U=1 must pass the EDF utilisation test")
	}
	bad := TaskSet{mkTask("a", 3, 4, 4), mkTask("b", 4, 8, 8)} // U = 1.25
	if EDFUtilizationTest(bad) {
		t.Error("U>1 must fail")
	}
}

func TestDemandBoundHandComputed(t *testing.T) {
	// d=4, p=10, C=2 and d=8, p=20, C=5.
	ts := TaskSet{mkTask("a", 2, 4, 10), mkTask("b", 5, 8, 20)}
	cases := []struct{ t, want Ticks }{
		{0, 0},
		{3, 0},
		{4, 2},   // one deadline of a
		{8, 7},   // a@4 + b@8
		{14, 9},  // a@4,14 + b@8
		{28, 16}, // a@4,14,24 + b@8,28
	}
	for _, c := range cases {
		if got := DemandBound(ts, c.t); got != c.want {
			t.Errorf("DemandBound(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestDemandBoundMonotone(t *testing.T) {
	ts := TaskSet{mkTask("a", 2, 4, 10), mkTask("b", 5, 8, 20), mkTask("c", 1, 3, 7)}
	f := func(raw uint16) bool {
		x := Ticks(raw % 500)
		return DemandBound(ts, x) <= DemandBound(ts, x+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSynchronousBusyPeriod(t *testing.T) {
	// C=2,T=6 and C=3,T=9: L: 5 → ⌈5/6⌉2+⌈5/9⌉3 = 5. Fixed point 5.
	ts := TaskSet{mkTask("a", 2, 6, 6), mkTask("b", 3, 9, 9)}
	if got := SynchronousBusyPeriod(ts, 0); got != 5 {
		t.Errorf("L = %d, want 5", got)
	}
	// U = 1 with the first idle instant at t = 2 (arrivals at 2 start a
	// new busy period, they do not extend this one).
	full := TaskSet{mkTask("a", 1, 2, 2), mkTask("b", 1, 2, 2)}
	if got := SynchronousBusyPeriod(full, 1000); got != 2 {
		t.Errorf("U=1 L = %d, want 2", got)
	}
	// U > 1: diverges, capped at horizon.
	over := TaskSet{mkTask("a", 2, 3, 3), mkTask("b", 2, 3, 3)}
	if got := SynchronousBusyPeriod(over, 1000); got != 1000 {
		t.Errorf("saturated L = %d, want horizon 1000", got)
	}
}

func TestEDFFeasiblePreemptive(t *testing.T) {
	// Implicit deadlines at U=1: feasible under EDF.
	ts := TaskSet{mkTask("a", 2, 4, 4), mkTask("b", 4, 8, 8)}
	rep := EDFFeasiblePreemptive(ts)
	if !rep.Feasible {
		t.Errorf("U=1 implicit set must be feasible, violation at %d", rep.ViolationAt)
	}

	// Tight constrained deadlines: infeasible.
	bad := TaskSet{mkTask("a", 2, 2, 4), mkTask("b", 4, 5, 8)}
	rep = EDFFeasiblePreemptive(bad)
	if rep.Feasible {
		t.Error("over-constrained set must be infeasible")
	}
	if rep.ViolationAt == 0 {
		t.Error("violation point must be reported")
	}
	if rep.DemandAtViolation <= rep.ViolationAt {
		t.Error("demand at violation must exceed t")
	}

	// U > 1 short-circuits.
	over := TaskSet{mkTask("a", 3, 4, 4), mkTask("b", 4, 8, 8)}
	if EDFFeasiblePreemptive(over).Feasible {
		t.Error("U>1 must be infeasible")
	}
}

func TestEDFFeasibleConstrainedDeadlines(t *testing.T) {
	// D < T example that passes: a: C=1 D=3 T=10; b: C=2 D=6 T=10.
	ts := TaskSet{mkTask("a", 1, 3, 10), mkTask("b", 2, 6, 10)}
	if rep := EDFFeasiblePreemptive(ts); !rep.Feasible {
		t.Errorf("set should be feasible, violation at %d", rep.ViolationAt)
	}
}

func TestNonPreemptiveTestsOrdering(t *testing.T) {
	// George's Eq. 5 refines Zheng–Shin's Eq. 4: anything accepted by
	// ZS must be accepted by George. Randomised check.
	rng := rand.New(rand.NewSource(42))
	accZS, accG := 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(3)
		ts := make(TaskSet, n)
		for i := range ts {
			c := Ticks(1 + rng.Intn(4))
			T := c*3 + Ticks(rng.Intn(30)) + 6
			d := c + Ticks(rng.Intn(int(T-c))) + 1
			ts[i] = Task{Name: "t", C: c, D: d, T: T}
		}
		zs := EDFFeasibleNonPreemptiveZS(ts).Feasible
		g := EDFFeasibleNonPreemptiveGeorge(ts).Feasible
		if zs {
			accZS++
		}
		if g {
			accG++
		}
		if zs && !g {
			t.Fatalf("trial %d: ZS accepted but George rejected: %+v", trial, ts)
		}
	}
	if accG < accZS {
		t.Errorf("George acceptance (%d) must be >= ZS acceptance (%d)", accG, accZS)
	}
	if accZS == 0 {
		t.Error("test workload degenerate: ZS accepted nothing")
	}
}

func TestNonPreemptiveGeorgeBlocking(t *testing.T) {
	// A long low-rate message with a late deadline blocks a tight one.
	// tight: C=1 D=2 T=10; long: C=5 D=50 T=50.
	// At t=2: demand 1, blocking from long = C−1 = 4 ⇒ 5 > 2: infeasible.
	ts := TaskSet{mkTask("tight", 1, 2, 10), mkTask("long", 5, 50, 50)}
	if EDFFeasibleNonPreemptiveGeorge(ts).Feasible {
		t.Error("blocking must make the tight deadline infeasible")
	}
	// With a shorter blocker it becomes feasible: C=2 ⇒ 1+1 = 2 <= 2.
	ts[1].C = 2
	if rep := EDFFeasibleNonPreemptiveGeorge(ts); !rep.Feasible {
		t.Errorf("short blocker should be feasible, violation at %d", rep.ViolationAt)
	}
}

// Hand-worked Spuri example (see package docs):
// t1: C=2 D=4 T=6; t2: C=3 D=9 T=9 ⇒ R1 = 2, R2 = 5.
func TestEDFPreemptiveResponseHandComputed(t *testing.T) {
	ts := TaskSet{mkTask("t1", 2, 4, 6), mkTask("t2", 3, 9, 9)}
	rs := ResponseTimesEDFPreemptive(ts, EDFOptions{})
	if rs[0] != 2 {
		t.Errorf("R1 = %v, want 2", rs[0])
	}
	if rs[1] != 5 {
		t.Errorf("R2 = %v, want 5", rs[1])
	}
}

// Non-preemptive version of the same set: t1 can now be blocked by t2's
// already-started instance: R1 = max over a. At a=0 blocking = C2−1 = 2,
// W* = 0, L=2, r = max(2, 2+2−0) = 4.
func TestEDFNonPreemptiveResponseHandComputed(t *testing.T) {
	ts := TaskSet{mkTask("t1", 2, 4, 6), mkTask("t2", 3, 9, 9)}
	rs := ResponseTimesEDFNonPreemptive(ts, EDFOptions{})
	if rs[0] != 4 {
		t.Errorf("R1 = %v, want 4", rs[0])
	}
	// t2 at a=0: W* counts one t1 job (D1=4 ≤ 9): L = 0 + min(1+⌊0/6⌋,
	// 1+⌊5/6⌋)·2 = 2 → r = max(3, 3+2) = 5.
	if rs[1] != 5 {
		t.Errorf("R2 = %v, want 5", rs[1])
	}
}

func TestEDFSingleTask(t *testing.T) {
	ts := TaskSet{mkTask("only", 3, 10, 10)}
	if rs := ResponseTimesEDFPreemptive(ts, EDFOptions{}); rs[0] != 3 {
		t.Errorf("preemptive single-task R = %v, want 3", rs[0])
	}
	if rs := ResponseTimesEDFNonPreemptive(ts, EDFOptions{}); rs[0] != 3 {
		t.Errorf("non-preemptive single-task R = %v, want 3", rs[0])
	}
}

func TestEDFResponseProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		ts := make(TaskSet, n)
		for i := range ts {
			c := Ticks(1 + rng.Intn(4))
			T := c*3 + Ticks(rng.Intn(24)) + 6
			d := c + Ticks(rng.Intn(int(T-c))) + 1
			ts[i] = Task{Name: "t", C: c, D: d, T: T}
		}
		rp := ResponseTimesEDFPreemptive(ts, EDFOptions{})
		rn := ResponseTimesEDFNonPreemptive(ts, EDFOptions{})
		for i := range ts {
			if rp[i] < ts[i].C || rn[i] < ts[i].C {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// If the response-time analysis says every deadline is met, the
// processor-demand feasibility test must agree (both are exact for
// preemptive EDF on sporadic sets).
func TestEDFResponseVsDemandConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3)
		ts := make(TaskSet, n)
		for i := range ts {
			c := Ticks(1 + rng.Intn(3))
			T := c*3 + Ticks(rng.Intn(20)) + 4
			d := c + Ticks(rng.Intn(int(T-c))) + 1
			ts[i] = Task{Name: "t", C: c, D: d, T: T}
		}
		ok, _ := EDFSchedulableByResponse(ts, false, EDFOptions{})
		feas := EDFFeasiblePreemptive(ts).Feasible
		if ok != feas {
			t.Fatalf("trial %d: RTA says %v, demand test says %v for %+v",
				trial, ok, feas, ts)
		}
	}
}

func TestEDFCandidateOffsets(t *testing.T) {
	ts := TaskSet{mkTask("t1", 2, 4, 6), mkTask("t2", 3, 9, 9)}
	as := edfCandidateOffsets(ts, 0, 12) // D_i = 4
	// offsets: from t1: {0, 6, 12}; from t2: {5, 14>12}. Plus 0.
	want := []Ticks{0, 5, 6, 12}
	if len(as) != len(want) {
		t.Fatalf("offsets = %v, want %v", as, want)
	}
	for i := range want {
		if as[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", as, want)
		}
	}
}

func TestEDFDivergentSetsReportMax(t *testing.T) {
	over := TaskSet{mkTask("a", 3, 4, 4), mkTask("b", 4, 8, 8)} // U > 1
	for _, nonPre := range []bool{false, true} {
		var rs []Ticks
		if nonPre {
			rs = ResponseTimesEDFNonPreemptive(over, EDFOptions{})
		} else {
			rs = ResponseTimesEDFPreemptive(over, EDFOptions{})
		}
		for i, r := range rs {
			if r != timeunit.MaxTicks {
				t.Errorf("nonPre=%v: R[%d] = %v, want MaxTicks for U>1", nonPre, i, r)
			}
		}
	}
}

func TestUtilizationExceedsOneExact(t *testing.T) {
	// 1/3 + 1/3 + 1/3 = 1 exactly; float summation would say 1.0 too,
	// but e.g. 1/10 summed ten times can drift. Use the exact check.
	ts := TaskSet{
		mkTask("a", 1, 3, 3), mkTask("b", 1, 3, 3), mkTask("c", 1, 3, 3),
	}
	if ts.UtilizationExceedsOne() {
		t.Error("U=1 must not exceed one")
	}
	ten := make(TaskSet, 10)
	for i := range ten {
		ten[i] = mkTask("x", 1, 10, 10)
	}
	if ten.UtilizationExceedsOne() {
		t.Error("10×(1/10) must not exceed one")
	}
	ten = append(ten, mkTask("y", 1, 1000, 1000))
	if !ten.UtilizationExceedsOne() {
		t.Error("1 + 1/1000 must exceed one")
	}
	if !ts.UtilizationExceedsOrEqualsOne() {
		t.Error("U=1 must satisfy >= 1")
	}
	half := TaskSet{mkTask("h", 1, 2, 2)}
	if half.UtilizationExceedsOrEqualsOne() {
		t.Error("U=0.5 must not satisfy >= 1")
	}
}
