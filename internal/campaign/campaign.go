// Package campaign is the durable sweep-campaign engine: the paper's
// E1–E13 evaluation shape — a grid of network configurations × AP
// dispatching policies × random trials — promoted to a first-class,
// resumable artifact. A campaign is declared as a JSON manifest,
// compiled into content-addressed jobs (one simulation per job, its
// key the SHA-256 of the fully resolved simulator configuration), and
// executed on the shared worker pool via profibus.SimulateBatch.
// Results are written through to a disk-backed memo.Store the moment
// each simulation completes, so a killed campaign resumes from its
// completed jobs and a repeated campaign against the same store is
// warm-started — with tables byte-identical to an uninterrupted run in
// both cases. Table rows stream through a stats.RowStreamer in grid
// order as their last job lands.
package campaign

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"profirt/internal/ap"
	"profirt/internal/configfile"
	"profirt/internal/core"
	"profirt/internal/memo"
	"profirt/internal/profibus"
	"profirt/internal/timeunit"
	"profirt/internal/workload"
)

// Compile-time bounds keeping hostile or runaway manifests from
// allocating unbounded grids (the fuzz harness leans on these).
const (
	maxNetworks = 1024
	maxScales   = 64
	maxPolicies = 8
	maxTrials   = 4096
	maxJobs     = 1 << 20
)

// Manifest is the on-disk JSON campaign description.
type Manifest struct {
	// Name labels the campaign in tables and status output.
	Name string `json:"name"`
	// Seed is the campaign base seed; job i of the compiled grid
	// simulates with seed Seed ⊕ FNV-1a(i) (profibus.BatchSeed), so
	// every job's random stream is pinned to its grid position and a
	// resumed subset replays the exact seeds of an uninterrupted run.
	Seed int64 `json:"seed,omitempty"`
	// Trials is the number of simulations per (network, scale, policy)
	// cell.
	Trials int `json:"trials"`
	// Horizon, when positive, overrides every network's simulation
	// span.
	Horizon timeunit.Ticks `json:"horizon,omitempty"`
	// Policies are the AP dispatchers to sweep ("fcfs", "dm", "edf");
	// empty means all three.
	Policies []string `json:"policies,omitempty"`
	// DeadlineScales multiply every high-priority deadline (the
	// paper's deadline-tightening axis); empty means [1].
	DeadlineScales []float64 `json:"deadlineScales,omitempty"`
	// Networks are the swept configurations, inline or by reference.
	Networks []NetworkSpec `json:"networks"`
}

// NetworkSpec names one swept network: either an inline configfile
// description or a reference to a JSON file holding one (resolved by
// Load relative to the manifest's directory; Parse rejects unresolved
// references so parsing arbitrary bytes never touches the filesystem).
type NetworkSpec struct {
	Name    string           `json:"name"`
	File    string           `json:"file,omitempty"`
	Network *configfile.File `json:"network,omitempty"`
}

// Job is one compiled unit of campaign work: a single simulation of
// one network at one deadline scale under one policy for one trial.
type Job struct {
	// Index is the job's position in the full grid enumeration
	// (network-major, then scale, policy, trial); it pins the seed.
	Index int
	// Row is the table row the job feeds: network×scale, in grid order.
	Row int
	// Net, Scale, Policy, Trial locate the job in the grid.
	Net, Scale, Policy, Trial int
	// Key is the content address: SHA-256 of the effective simulator
	// configuration (network, scaled deadlines, dispatcher, horizon,
	// derived seed). Two jobs with equal keys would simulate equal
	// configs, so sharing one store record is correct by construction.
	Key memo.Key
	// Config is the fully resolved simulator configuration.
	Config profibus.Config
}

// compiledNet pairs one network's analytic and simulated models.
type compiledNet struct {
	name string
	net  core.Network
	cfg  profibus.Config
}

// Campaign is a compiled manifest: the resolved grid, its jobs and the
// manifest hash that binds result stores to it.
type Campaign struct {
	// Manifest is the resolved manifest (defaults applied, file
	// references inlined).
	Manifest Manifest
	// Hash is the SHA-256 of the resolved manifest; OpenStore meta.
	Hash [sha256.Size]byte

	policies []ap.Policy
	scales   []float64
	nets     []compiledNet
	jobs     []Job
}

// Jobs returns the compiled job list in grid order.
func (c *Campaign) Jobs() []Job { return c.jobs }

// Rows returns the number of table rows (networks × deadline scales).
func (c *Campaign) Rows() int { return len(c.nets) * len(c.scales) }

// Parse compiles a manifest from JSON bytes. Unknown fields are
// rejected, file references are not resolved (use Load); anything
// accepted compiles to a valid job grid.
func Parse(raw []byte) (*Campaign, error) {
	var m Manifest
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return New(m)
}

// Load reads, resolves and compiles a manifest file; network file
// references resolve relative to the manifest's directory.
func Load(path string) (*Campaign, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	if err := m.ResolveFiles(filepath.Dir(path)); err != nil {
		return nil, err
	}
	return New(m)
}

// ResolveFiles inlines every file-referenced network, reading paths
// relative to dir.
func (m *Manifest) ResolveFiles(dir string) error {
	for i := range m.Networks {
		ns := &m.Networks[i]
		if ns.File == "" {
			continue
		}
		if ns.Network != nil {
			return fmt.Errorf("campaign: network %q has both file and inline definitions", ns.Name)
		}
		path := ns.File
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("campaign: network %q: %w", ns.Name, err)
		}
		f, err := configfile.Decode(raw)
		if err != nil {
			return fmt.Errorf("campaign: network %q: %w", ns.Name, err)
		}
		ns.Network = f
		ns.File = ""
	}
	return nil
}

// New validates a manifest, applies defaults and compiles the job
// grid. The manifest must have every network inline (see
// ResolveFiles/Load).
func New(m Manifest) (*Campaign, error) {
	if m.Trials < 1 || m.Trials > maxTrials {
		return nil, fmt.Errorf("campaign: trials must be in [1,%d], got %d", maxTrials, m.Trials)
	}
	if m.Horizon < 0 {
		return nil, fmt.Errorf("campaign: horizon must be non-negative, got %d", m.Horizon)
	}
	if len(m.Networks) == 0 {
		return nil, fmt.Errorf("campaign: no networks")
	}
	if len(m.Networks) > maxNetworks {
		return nil, fmt.Errorf("campaign: too many networks (%d > %d)", len(m.Networks), maxNetworks)
	}
	if len(m.Policies) == 0 {
		m.Policies = []string{"fcfs", "dm", "edf"}
	}
	if len(m.Policies) > maxPolicies {
		return nil, fmt.Errorf("campaign: too many policies (%d > %d)", len(m.Policies), maxPolicies)
	}
	if len(m.DeadlineScales) == 0 {
		m.DeadlineScales = []float64{1}
	}
	if len(m.DeadlineScales) > maxScales {
		return nil, fmt.Errorf("campaign: too many deadline scales (%d > %d)", len(m.DeadlineScales), maxScales)
	}
	c := &Campaign{Manifest: m, scales: m.DeadlineScales}
	for i, s := range m.Policies {
		pol, err := configfile.ParsePolicy(s)
		if err != nil {
			return nil, fmt.Errorf("campaign: policy %d: %w", i, err)
		}
		c.policies = append(c.policies, pol)
	}
	for _, sc := range m.DeadlineScales {
		if !(sc > 0) || sc > 1e6 {
			return nil, fmt.Errorf("campaign: deadline scale %g out of (0, 1e6]", sc)
		}
	}
	total := len(m.Networks) * len(m.DeadlineScales) * len(c.policies) * m.Trials
	if total > maxJobs {
		return nil, fmt.Errorf("campaign: grid of %d jobs exceeds the %d-job bound", total, maxJobs)
	}
	seen := map[string]bool{}
	for i := range m.Networks {
		ns := &m.Networks[i]
		if ns.Network == nil {
			return nil, fmt.Errorf("campaign: network %q has no inline definition (file references resolve via Load)", ns.Name)
		}
		name := ns.Name
		if name == "" {
			name = fmt.Sprintf("net%d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("campaign: duplicate network name %q", name)
		}
		seen[name] = true
		net, cfg, err := ns.Network.Build()
		if err != nil {
			return nil, fmt.Errorf("campaign: network %q: %w", name, err)
		}
		if m.Horizon > 0 {
			cfg.Horizon = m.Horizon
		}
		c.nets = append(c.nets, compiledNet{name: name, net: net, cfg: cfg})
	}
	raw, err := json.Marshal(c.Manifest)
	if err != nil {
		return nil, err
	}
	c.Hash = sha256.Sum256(raw)
	return c, c.compile()
}

// compile enumerates the grid (network-major, then scale, policy,
// trial) into content-addressed jobs.
func (c *Campaign) compile() error {
	idx := 0
	for ni, n := range c.nets {
		for si, scale := range c.scales {
			_, scaled := workload.ScaleDeadlines(n.net, n.cfg, scale)
			// Extreme scale×deadline products can overflow Ticks; catch
			// it here so every compiled job config is valid (dispatcher
			// and seed below cannot affect validity).
			if err := scaled.Validate(); err != nil {
				return fmt.Errorf("campaign: network %q at deadline scale %g: %w", n.name, scale, err)
			}
			row := ni*len(c.scales) + si
			for pi, pol := range c.policies {
				cfg := workload.WithDispatcher(scaled, pol)
				for t := 0; t < c.Manifest.Trials; t++ {
					cfg := cfg
					cfg.Seed = profibus.BatchSeed(c.Manifest.Seed, idx)
					key, err := jobKey(cfg)
					if err != nil {
						return err
					}
					c.jobs = append(c.jobs, Job{
						Index: idx, Row: row,
						Net: ni, Scale: si, Policy: pi, Trial: t,
						Key: key, Config: cfg,
					})
					idx++
				}
			}
		}
	}
	return nil
}

// jobKeyVersion is bumped whenever the job encoding or the simulator's
// observable semantics change, invalidating every stored result.
const jobKeyVersion = 1

// jobKey is the content address of one job: SHA-256 over a version tag
// and the canonical JSON of the effective simulator configuration.
// profibus.Config contains no maps, so encoding/json renders it
// deterministically.
func jobKey(cfg profibus.Config) (memo.Key, error) {
	raw, err := json.Marshal(cfg)
	if err != nil {
		return memo.Key{}, err
	}
	h := sha256.New()
	fmt.Fprintf(h, "profirt-campaign-job/v%d\n", jobKeyVersion)
	h.Write(raw)
	var k memo.Key
	h.Sum(k[:0])
	return k, nil
}

// scaledNet returns the analytic model for one table row (deadlines
// scaled), for the reducer's per-policy verdict columns.
func (c *Campaign) scaledNet(row int) core.Network {
	n := c.nets[row/len(c.scales)]
	scaled, _ := workload.ScaleDeadlines(n.net, n.cfg, c.scales[row%len(c.scales)])
	return scaled
}
