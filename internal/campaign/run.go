package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/memo"
	"profirt/internal/obs"
	"profirt/internal/pool"
	"profirt/internal/profibus"
	"profirt/internal/stats"
	"profirt/internal/timeunit"
)

// JobResult is the persisted outcome of one job: integer aggregates
// over the simulated network's high-priority streams, chosen so the
// table reduction is pure integer folding — a result decoded from the
// store and a freshly computed one are indistinguishable, which is
// what makes resumed tables byte-identical.
type JobResult struct {
	Released      int64          `json:"released"`
	Completed     int64          `json:"completed"`
	Missed        int64          `json:"missed"`
	Failed        int64          `json:"failed"`
	WorstResponse timeunit.Ticks `json:"worstResponse"`
	WorstTRR      timeunit.Ticks `json:"worstTRR"`
	HighCycles    int64          `json:"highCycles"`
	TokenPasses   int64          `json:"tokenPasses"`
}

// summarize reduces one simulation to its persisted aggregates.
func summarize(res profibus.Result, cfg profibus.Config) JobResult {
	var jr JobResult
	for mi, m := range res.PerMaster {
		for si, st := range m.PerStream {
			if !cfg.Masters[mi].Streams[si].High {
				continue
			}
			jr.Released += st.Released
			jr.Completed += st.Completed
			jr.Missed += st.Missed
			jr.Failed += st.Failed
			if st.WorstResponse > jr.WorstResponse {
				jr.WorstResponse = st.WorstResponse
			}
		}
		jr.HighCycles += m.HighCycles
	}
	jr.WorstTRR = res.WorstTRR()
	jr.TokenPasses = res.TokenPasses
	return jr
}

// Event reports one completed campaign job.
type Event struct {
	// Done and Total count settled vs scheduled jobs; Restored marks a
	// job satisfied from the store rather than executed.
	Done, Total int
	// Restored is true when the job's result came from the store.
	Restored bool
}

// RunOptions tunes Campaign.Run.
type RunOptions struct {
	// Parallelism bounds the worker pool. 0 means
	// runtime.GOMAXPROCS(0); 1 forces sequential execution. With Pool
	// set it instead bounds this campaign's in-flight jobs on the
	// shared pool (0 means the pool width).
	Parallelism int
	// Pool, when non-nil, executes the campaign's simulations on a
	// shared long-lived worker pool instead of a per-call one, so
	// concurrent campaigns (and other batch work) share one bounded
	// worker set. Tables are byte-identical either way.
	Pool *pool.Shared
	// Context cancels the campaign early; nil means
	// context.Background(). Jobs not yet started when it is done are
	// counted in RunResult.Skipped and their rows are withheld.
	Context context.Context
	// Store is the durable result store (nil runs storeless). Completed
	// jobs found in it are restored instead of re-executed; newly
	// executed jobs are written through the moment they finish.
	Store *memo.Store
	// Cache memoizes the per-row DM/EDF verdict analyses (nil
	// disables).
	Cache *memo.Cache
	// RowSink, when non-nil, receives each table row the moment its
	// last job settles, in grid order (same contract as
	// experiments.Config.RowSink). Called from worker goroutines.
	RowSink func(stats.RowEvent)
	// Progress, when non-nil, receives one Event per settled job.
	// Called from worker goroutines; keep it cheap.
	Progress func(Event)
	// StopAfter, when positive, cancels the campaign after that many
	// newly executed jobs have completed — the deterministic stand-in
	// for kill -9 used by the resume tests and the CI smoke step.
	StopAfter int
}

// RunResult summarizes one Run.
type RunResult struct {
	// Table is the assembled campaign table; complete only when
	// Skipped == 0.
	Table *stats.Table
	// Jobs is the compiled grid size; Restored came from the store,
	// Executed were simulated and persisted now, Skipped were left
	// unsettled (cancellation, or jobs abandoned when Run returns an
	// error). Jobs == Restored + Executed + Skipped always holds.
	Jobs, Restored, Executed, Skipped int
}

// Run executes the campaign: restore completed jobs from the store,
// simulate the rest on the shared pool (write-through as each lands),
// and assemble the table with rows streaming in grid order. The table
// of a completed Run is a pure function of the manifest — independent
// of parallelism, of how often the campaign was killed and resumed,
// and of whether results were computed or restored.
func (c *Campaign) Run(opts RunOptions) (RunResult, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := c.jobs
	// Tracing (when ctx carries an obs.Tracer) wraps the whole run in
	// one campaign.run span; simulations and row reductions nest under
	// it. Observational only — the table is byte-identical either way.
	ctx, runSpan := obs.StartSpanArg(ctx, "campaign.run", int64(len(jobs)))
	defer runSpan.End()
	results := make([]JobResult, len(jobs))
	settled := make([]bool, len(jobs))
	out := RunResult{Jobs: len(jobs)}
	for i, j := range jobs {
		raw, ok := opts.Store.Get(j.Key)
		if !ok {
			continue
		}
		var jr JobResult
		if err := json.Unmarshal(raw, &jr); err != nil {
			// A record from an incompatible build: recompute it.
			continue
		}
		results[i] = jr
		settled[i] = true
		out.Restored++
	}

	table := c.newTable()
	out.Table = table
	rs := stats.NewRowStreamer(table, c.Rows(), opts.RowSink)
	remaining := make([]atomic.Int32, c.Rows())
	perRow := len(c.policies) * c.Manifest.Trials
	for r := range remaining {
		remaining[r].Store(int32(perRow))
	}
	reduce := func(row int) { c.reduceRow(ctx, row, results, opts.Cache, rs) }

	var done atomic.Int64
	note := func(restored bool) {
		if opts.Progress != nil {
			opts.Progress(Event{Done: int(done.Add(1)), Total: len(jobs), Restored: restored})
		} else {
			done.Add(1)
		}
	}
	// Settle restored jobs first, in grid order, so fully restored rows
	// stream immediately and partially restored rows only await their
	// missing jobs.
	for i := range jobs {
		if settled[i] {
			note(true)
			if remaining[jobs[i].Row].Add(-1) == 0 {
				reduce(jobs[i].Row)
			}
		}
	}

	var pending []int
	var cfgs []profibus.Config
	for i := range jobs {
		if !settled[i] {
			pending = append(pending, i)
			cfgs = append(cfgs, jobs[i].Config)
		}
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var executed atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	// fail records the first error and cancels the batch: a failing
	// store or an invalid job must not let a million-job campaign grind
	// through every remaining simulation before reporting.
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	profibus.SimulateBatch(cfgs, profibus.BatchOptions{
		Parallelism: opts.Parallelism,
		Pool:        opts.Pool,
		Context:     runCtx,
		ConfigSeeds: true, // seeds are pinned to grid positions at compile time
		OnResult: func(br profibus.BatchResult) {
			gi := pending[br.Index]
			job := jobs[gi]
			if br.Err != nil {
				fail(fmt.Errorf("campaign: job %d (%s): %w", job.Index, c.nets[job.Net].name, br.Err))
				return
			}
			jr := summarize(br.Result, job.Config)
			raw, err := json.Marshal(jr)
			if err != nil {
				fail(err)
				return
			}
			if err := opts.Store.Put(job.Key, raw); err != nil {
				fail(fmt.Errorf("campaign: persisting job %d: %w", job.Index, err))
				return
			}
			results[gi] = jr
			note(false)
			if remaining[job.Row].Add(-1) == 0 {
				reduce(job.Row)
			}
			if n := executed.Add(1); opts.StopAfter > 0 && int(n) >= opts.StopAfter {
				cancel()
			}
		},
	})
	// executed counts jobs that completed the whole settle path
	// (simulated, persisted, reduced); everything else pending —
	// cancelled before dispatch, or abandoned by fail() — counts as
	// skipped, keeping Jobs == Restored + Executed + Skipped.
	out.Executed = int(executed.Load())
	out.Skipped = len(pending) - out.Executed
	errMu.Lock()
	defer errMu.Unlock()
	return out, firstErr
}

// newTable builds the campaign table skeleton: one row per
// network×scale, per-policy verdict/simulation columns.
func (c *Campaign) newTable() *stats.Table {
	header := []string{"network", "D-scale"}
	for _, pol := range c.policies {
		p := pol.String()
		header = append(header, p+" analytic", p+" miss-free", p+" worst R")
	}
	t := stats.NewTable(fmt.Sprintf("campaign %s: %d networks × %d scales × %d policies × %d trials",
		c.Manifest.Name, len(c.nets), len(c.scales), len(c.policies), c.Manifest.Trials), header...)
	t.Note = "analytic = Eq. 11/16/17-18 verdict on the scaled network; miss-free = trials with zero simulated deadline misses; worst R = max observed response (bit times)"
	return t
}

// reduceRow folds one row's job results (in job order) into its table
// row and emits it. Pure integer folding over persisted aggregates
// plus deterministic analyses of the scaled network — byte-identical
// whether results were computed or restored. ctx carries tracing
// only: a traced run records one campaign.row span per reduction.
func (c *Campaign) reduceRow(ctx context.Context, row int, results []JobResult, cache *memo.Cache, rs *stats.RowStreamer) {
	ctx, sp := obs.StartSpanArg(ctx, "campaign.row", int64(row))
	defer sp.End()
	net := c.scaledNet(row)
	perPol := c.Manifest.Trials
	base := row * len(c.policies) * perPol
	cells := []any{c.nets[row/len(c.scales)].name, fmt.Sprintf("%.2f", c.scales[row%len(c.scales)])}
	for pi, pol := range c.policies {
		var ok bool
		switch pol {
		case ap.DM:
			ok, _ = memo.DMSchedulableCtx(ctx, cache, net, core.DMOptions{})
		case ap.EDF:
			ok, _ = memo.EDFSchedulableNetCtx(ctx, cache, net, core.EDFOptions{})
		default:
			ok, _ = core.FCFSSchedulable(net)
		}
		missFree := 0
		var worst timeunit.Ticks
		for t := 0; t < perPol; t++ {
			jr := results[base+pi*perPol+t]
			if jr.Missed == 0 {
				missFree++
			}
			if jr.WorstResponse > worst {
				worst = jr.WorstResponse
			}
		}
		cells = append(cells, ok, stats.Ratio{K: missFree, N: perPol}, worst)
	}
	rs.Emit(row, cells...)
}

// StatusReport summarizes a store's coverage of a campaign.
type StatusReport struct {
	// Jobs is the grid size; Done counts jobs whose results are
	// resident in the store.
	Jobs, Done int
	// Rows is the table row count; RowsDone counts rows with every job
	// resident.
	Rows, RowsDone int
}

// Status reports how much of the campaign the store already holds,
// without executing anything.
func (c *Campaign) Status(store *memo.Store) StatusReport {
	rep := StatusReport{Jobs: len(c.jobs), Rows: c.Rows()}
	rowMissing := make([]int, c.Rows())
	for _, j := range c.jobs {
		if _, ok := store.Get(j.Key); ok {
			rep.Done++
		} else {
			rowMissing[j.Row]++
		}
	}
	for _, m := range rowMissing {
		if m == 0 {
			rep.RowsDone++
		}
	}
	return rep
}
