package campaign

import (
	"testing"
)

// FuzzParseCampaign hardens the manifest front door: whatever bytes
// arrive, Parse must either return an error or hand back a compiled
// campaign whose grid is internally consistent — bounded job count,
// jobs in index order feeding valid rows, every job carrying a
// buildable simulator configuration. Parse never touches the
// filesystem (file references are a Load-only feature), so the fuzzer
// cannot be steered into reads. Run the full fuzzer with
//
//	go test -run '^$' -fuzz '^FuzzParseCampaign$' ./internal/campaign
//
// (the checked-in corpus under testdata/fuzz plus the seeds below run
// as plain subtests in every ordinary `go test`).
func FuzzParseCampaign(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name": "x", "trials": 1, "networks": []}`))
	f.Add([]byte(`{"name": "sweep", "seed": 7, "trials": 2,
		"policies": ["fcfs", "dm"], "deadlineScales": [1.0, 0.5],
		"networks": [{"name": "a", "network": {"ttr": 2000,
			"masters": [{"addr": 1, "streams": [
				{"name": "s", "slave": 30, "high": true, "period": 20000, "deadline": 15000}]}],
			"slaves": [{"addr": 30, "tsdr": 30}]}}]}`))
	f.Add([]byte(`{"trials": 4096, "deadlineScales": [1e7], "networks": [{"file": "ref.json"}]}`))
	f.Add([]byte(`{"trials": 1, "horizon": -1, "policies": ["rm"], "networks": [{"network": {}}]}`))
	f.Add([]byte(`{"trials": 2, "networks": [
		{"name": "n", "network": {"ttr": 1, "jitter": "bogus"}},
		{"name": "n", "network": {"ttr": 1}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		c2, err2 := Parse(data)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("Parse is nondeterministic: %v vs %v", err, err2)
		}
		if err != nil {
			return
		}
		if c.Hash != c2.Hash {
			t.Fatalf("Parse hashes nondeterministically on: %s", data)
		}
		m := c.Manifest
		wantJobs := len(m.Networks) * len(m.DeadlineScales) * len(m.Policies) * m.Trials
		if wantJobs > maxJobs {
			t.Fatalf("compiled grid exceeds the job bound: %d", wantJobs)
		}
		jobs := c.Jobs()
		if len(jobs) != wantJobs {
			t.Fatalf("compiled %d jobs, want %d\ninput: %s", len(jobs), wantJobs, data)
		}
		for i, j := range jobs {
			if j.Index != i {
				t.Fatalf("job %d carries Index %d", i, j.Index)
			}
			if j.Row < 0 || j.Row >= c.Rows() {
				t.Fatalf("job %d carries row %d of %d", i, j.Row, c.Rows())
			}
			if verr := j.Config.Validate(); verr != nil {
				t.Fatalf("Parse accepted a job config its validator rejects: %v\ninput: %s", verr, data)
			}
		}
	})
}
