package campaign

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"profirt/internal/configfile"
	"profirt/internal/memo"
	"profirt/internal/stats"
	"profirt/internal/timeunit"
)

// testNetFile builds a small two-master inline network description.
func testNetFile(ttr timeunit.Ticks) *configfile.File {
	return &configfile.File{
		TTR:     ttr,
		Horizon: 300_000,
		Masters: []configfile.MasterJSON{
			{Addr: 1, Streams: []configfile.StreamJSON{
				{Name: "a1", Slave: 30, High: true, Period: 20_000, Deadline: 15_000},
				{Name: "a2", Slave: 30, High: true, Period: 50_000, Deadline: 40_000},
			}},
			{Addr: 2, Streams: []configfile.StreamJSON{
				{Name: "b1", Slave: 31, High: true, Period: 30_000, Deadline: 25_000},
			}},
		},
		Slaves: []configfile.SlaveJSON{{Addr: 30, TSDR: 30}, {Addr: 31, TSDR: 60}},
	}
}

// testManifest is the small grid used across the tests:
// 2 networks × 2 scales × 2 policies × 2 trials = 16 jobs, 4 rows.
func testManifest() Manifest {
	return Manifest{
		Name:           "test",
		Seed:           7,
		Trials:         2,
		Policies:       []string{"fcfs", "dm"},
		DeadlineScales: []float64{1.0, 0.5},
		Networks: []NetworkSpec{
			{Name: "cell-a", Network: testNetFile(2_000)},
			{Name: "cell-b", Network: testNetFile(3_000)},
		},
	}
}

func mustCampaign(t *testing.T) *Campaign {
	t.Helper()
	c, err := New(testManifest())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runTable(t *testing.T, c *Campaign, opts RunOptions) (string, RunResult) {
	t.Helper()
	res, err := c.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Table.String(), res
}

func TestCompileGrid(t *testing.T) {
	c := mustCampaign(t)
	if got, want := len(c.Jobs()), 2*2*2*2; got != want {
		t.Fatalf("compiled %d jobs, want %d", got, want)
	}
	if got, want := c.Rows(), 4; got != want {
		t.Fatalf("Rows() = %d, want %d", got, want)
	}
	seenKeys := map[memo.Key]int{}
	for i, j := range c.Jobs() {
		if j.Index != i {
			t.Fatalf("job %d has Index %d", i, j.Index)
		}
		if prev, dup := seenKeys[j.Key]; dup {
			t.Fatalf("jobs %d and %d share a key", prev, i)
		}
		seenKeys[j.Key] = i
		if j.Config.Seed == 0 {
			t.Fatalf("job %d has no derived seed", i)
		}
	}
	// Scaled deadlines must actually reach the configs.
	full, half := c.Jobs()[0].Config, c.Jobs()[c.Manifest.Trials*2].Config
	if half.Masters[0].Streams[0].Deadline*2 != full.Masters[0].Streams[0].Deadline {
		t.Fatalf("deadline scaling missing: full %d, half %d",
			full.Masters[0].Streams[0].Deadline, half.Masters[0].Streams[0].Deadline)
	}
}

// TestRunParallelismDeterminism: a storeless campaign's table is
// byte-identical at any pool size.
func TestRunParallelismDeterminism(t *testing.T) {
	c := mustCampaign(t)
	var want string
	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		got, res := runTable(t, c, RunOptions{Parallelism: par})
		if res.Executed != res.Jobs {
			t.Fatalf("parallelism %d: executed %d of %d jobs", par, res.Executed, res.Jobs)
		}
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("table differs at parallelism %d:\n--- got ---\n%s--- want ---\n%s", par, got, want)
		}
	}
}

// TestResumeByteIdentical is the acceptance-criterion test: a campaign
// killed at an arbitrary point and resumed produces a table
// byte-identical to an uninterrupted run, and a second identical
// campaign against the same store executes nothing.
func TestResumeByteIdentical(t *testing.T) {
	c := mustCampaign(t)
	uninterrupted, _ := runTable(t, c, RunOptions{Parallelism: 2})

	dir := t.TempDir()
	store, err := memo.OpenStore(filepath.Join(dir, "results.jsonl"), c.Hash[:])
	if err != nil {
		t.Fatal(err)
	}
	// Kill after a few jobs, repeatedly, resuming each time — the
	// store must carry the campaign through arbitrary interruption
	// points.
	for round := 0; ; round++ {
		if round > len(c.Jobs()) {
			t.Fatal("campaign never completes under repeated kills")
		}
		res, err := c.Run(RunOptions{Parallelism: 2, Store: store, StopAfter: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Skipped == 0 {
			if got := res.Table.String(); got != uninterrupted {
				t.Fatalf("resumed table differs from uninterrupted:\n--- resumed ---\n%s--- uninterrupted ---\n%s", got, uninterrupted)
			}
			break
		}
		if res.Executed == 0 && res.Skipped > 0 {
			t.Fatal("interrupted run made no progress")
		}
	}
	// Warm start: everything restored, nothing executed.
	res, err := c.Run(RunOptions{Parallelism: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 0 || res.Restored != res.Jobs {
		t.Fatalf("warm start executed %d, restored %d of %d", res.Executed, res.Restored, res.Jobs)
	}
	if got := res.Table.String(); got != uninterrupted {
		t.Fatalf("warm-start table differs:\n%s", got)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestResumeAcrossProcesses closes and reopens the store between the
// interrupted and resumed runs, exercising the load path a real
// process restart takes — including a torn final line.
func TestResumeAcrossProcesses(t *testing.T) {
	c := mustCampaign(t)
	uninterrupted, _ := runTable(t, c, RunOptions{})
	path := filepath.Join(t.TempDir(), "results.jsonl")

	store, err := memo.OpenStore(path, c.Hash[:])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(RunOptions{Store: store, StopAfter: 5}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final line, as a kill mid-write would.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := memo.OpenStore(path, c.Hash[:])
	if err != nil {
		t.Fatal(err)
	}
	if s := store2.Stats(); s.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1 (the torn line)", s.Dropped)
	}
	res, err := c.Run(RunOptions{Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 0 {
		t.Fatalf("resume skipped %d jobs", res.Skipped)
	}
	if res.Restored == 0 || res.Executed == 0 {
		t.Fatalf("resume should mix restored (%d) and executed (%d) jobs", res.Restored, res.Executed)
	}
	if got := res.Table.String(); got != uninterrupted {
		t.Fatalf("resumed-across-processes table differs:\n--- got ---\n%s--- want ---\n%s", got, uninterrupted)
	}
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRejectsForeignManifest: a store is bound to its manifest
// hash; resuming under an edited manifest must fail loudly.
func TestStoreRejectsForeignManifest(t *testing.T) {
	c := mustCampaign(t)
	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := memo.OpenStore(path, c.Hash[:])
	if err != nil {
		t.Fatal(err)
	}
	store.Close()
	m := testManifest()
	m.Trials = 3
	c2, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Hash == c.Hash {
		t.Fatal("distinct manifests share a hash")
	}
	if _, err := memo.OpenStore(path, c2.Hash[:]); err == nil {
		t.Fatal("store accepted a different manifest's hash")
	}
}

// TestRowStreamingOrder: rows arrive at the sink in strict grid order
// with the advertised total, even under a parallel pool.
func TestRowStreamingOrder(t *testing.T) {
	c := mustCampaign(t)
	type ev struct{ index, total int }
	var mu sync.Mutex
	var events []ev
	_, res := runTable(t, c, RunOptions{
		Parallelism: runtime.GOMAXPROCS(0),
		RowSink: func(e stats.RowEvent) {
			mu.Lock()
			events = append(events, ev{e.Index, e.Total})
			mu.Unlock()
		},
	})
	if res.Skipped != 0 {
		t.Fatal("unexpected skips")
	}
	if len(events) != c.Rows() {
		t.Fatalf("sink saw %d rows, want %d", len(events), c.Rows())
	}
	for i, e := range events {
		if e.index != i || e.total != c.Rows() {
			t.Fatalf("event %d = %+v, want index %d total %d", i, e, i, c.Rows())
		}
	}
}

func TestStatus(t *testing.T) {
	c := mustCampaign(t)
	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := memo.OpenStore(path, c.Hash[:])
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rep := c.Status(store)
	if rep.Done != 0 || rep.Jobs != len(c.Jobs()) || rep.RowsDone != 0 {
		t.Fatalf("empty-store status = %+v", rep)
	}
	if _, err := c.Run(RunOptions{Store: store}); err != nil {
		t.Fatal(err)
	}
	rep = c.Status(store)
	if rep.Done != rep.Jobs || rep.RowsDone != rep.Rows {
		t.Fatalf("complete-store status = %+v", rep)
	}
}

func TestCancelledContext(t *testing.T) {
	c := mustCampaign(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := c.Run(RunOptions{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != res.Jobs {
		t.Fatalf("cancelled run skipped %d of %d", res.Skipped, res.Jobs)
	}
}

func TestManifestValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Manifest){
		"no trials":      func(m *Manifest) { m.Trials = 0 },
		"no networks":    func(m *Manifest) { m.Networks = nil },
		"bad policy":     func(m *Manifest) { m.Policies = []string{"rm"} },
		"zero scale":     func(m *Manifest) { m.DeadlineScales = []float64{0} },
		"negative scale": func(m *Manifest) { m.DeadlineScales = []float64{-1} },
		"dup name":       func(m *Manifest) { m.Networks = append(m.Networks, m.Networks[0]) },
		"unresolved ref": func(m *Manifest) { m.Networks[0].Network = nil; m.Networks[0].File = "x.json" },
		"bad network":    func(m *Manifest) { m.Networks[0].Network = &configfile.File{} },
	} {
		m := testManifest()
		mutate(&m)
		if _, err := New(m); err == nil {
			t.Errorf("%s: New accepted an invalid manifest", name)
		}
	}
}

func TestLoadResolvesFileReferences(t *testing.T) {
	dir := t.TempDir()
	writeJSON := func(name, data string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeJSON("net.json", `{"ttr": 2000, "horizon": 100000,
		"masters": [{"addr": 1, "streams": [
			{"name": "s", "slave": 30, "high": true, "period": 20000, "deadline": 15000}]}],
		"slaves": [{"addr": 30, "tsdr": 30}]}`)
	writeJSON("campaign.json", `{"name": "ref", "trials": 1,
		"policies": ["dm"], "networks": [{"name": "n", "file": "net.json"}]}`)
	c, err := Load(filepath.Join(dir, "campaign.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Jobs()) != 1 {
		t.Fatalf("compiled %d jobs, want 1", len(c.Jobs()))
	}
	if c.Manifest.Networks[0].Network == nil || c.Manifest.Networks[0].File != "" {
		t.Fatal("file reference not inlined into the resolved manifest")
	}
}
