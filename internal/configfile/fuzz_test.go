package configfile

import (
	"strings"
	"testing"
)

// FuzzParse hardens the JSON front door: whatever bytes arrive, Parse
// must either return an error or hand back a pair that passes both
// validators (cmd/profisim and cmd/profisched trust that contract), and
// it must be deterministic. Run the full fuzzer with
//
//	go test -run '^$' -fuzz '^FuzzParse$' ./internal/configfile
//
// (the checked-in corpus under testdata/fuzz plus the seeds below run
// as plain subtests in every ordinary `go test`).
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"ttr": 0}`))
	f.Add([]byte(`{"ttr": 2000, "masters": [], "slaves": []}`))
	f.Add([]byte(`{"ttr": 2000,
		"masters": [{"addr": 1, "dispatcher": "dm", "streams": [
			{"name": "s", "slave": 30, "high": true, "period": 20000, "deadline": 15000}]}],
		"slaves": [{"addr": 30, "tsdr": 30}]}`))
	f.Add([]byte(`{"ttr": 1, "jitter": "adversarial", "gapFactor": -3}`))
	f.Add([]byte(`{"ttr": 9223372036854775807, "horizon": -1,
		"bus": {"baudRate": 0, "tsl": -5},
		"masters": [{"addr": 200, "streams": [
			{"name": "x", "slave": 200, "period": -1, "deadline": 0, "reqBytes": 999}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		net, cfg, err := Parse(data)
		net2, cfg2, err2 := Parse(data)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("Parse is nondeterministic: %v vs %v", err, err2)
		}
		if err != nil {
			return
		}
		if verr := net.Validate(); verr != nil {
			t.Fatalf("Parse accepted a network its validator rejects: %v\ninput: %s", verr, data)
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("Parse accepted a sim config its validator rejects: %v\ninput: %s", verr, data)
		}
		if net.TTR != net2.TTR || len(net.Masters) != len(net2.Masters) ||
			cfg.Horizon != cfg2.Horizon || len(cfg.Masters) != len(cfg2.Masters) {
			t.Fatalf("Parse is nondeterministic on: %s", data)
		}
	})
}

// FuzzParseTopology extends the Parse contract to the multi-segment
// schema: no panics, and anything accepted passes both topology
// validators.
func FuzzParseTopology(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"segments": [], "bridges": []}`))
	f.Add([]byte(`{"seed": 1, "horizon": 1000,
		"segments": [{"name": "A", "network": {"ttr": 100,
			"masters": [{"addr": 1, "streams": [
				{"name": "s", "slave": 3, "high": true, "period": 500, "deadline": 400}]}],
			"slaves": [{"addr": 3}]}}],
		"bridges": [{"name": "b", "from": "A", "to": "A", "relays": [
			{"name": "r", "fromStream": "s", "toStream": "s", "deadline": 1}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		top, sim, err := ParseTopology(data)
		if err != nil {
			return
		}
		if verr := top.Validate(); verr != nil {
			t.Fatalf("ParseTopology accepted an analytic topology its validator rejects: %v\ninput: %s", verr, data)
		}
		if verr := sim.Validate(); verr != nil {
			t.Fatalf("ParseTopology accepted a sim topology its validator rejects: %v\ninput: %s", verr, data)
		}
	})
}

// FuzzParsePolicy pins the dispatcher-name surface: only fcfs/dm/edf
// (any case, surrounding space) may parse.
func FuzzParsePolicy(f *testing.F) {
	for _, s := range []string{"", "fcfs", "DM", " edf ", "rm", "deadline"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		pol, err := ParsePolicy(s)
		if err != nil {
			return
		}
		canon := strings.ToLower(strings.TrimSpace(s))
		want := map[string]string{"": "FCFS", "fcfs": "FCFS", "dm": "DM", "edf": "EDF"}[canon]
		if want == "" || pol.String() != want {
			t.Fatalf("ParsePolicy(%q) accepted unexpected input as %v", s, pol)
		}
	})
}
