package configfile

import (
	"strings"
	"testing"
)

const topologyJSON = `{
	"seed": 7,
	"horizon": 400000,
	"segments": [
		{"name": "west", "network": {
			"ttr": 2000,
			"masters": [{"addr": 1, "dispatcher": "dm", "streams": [
				{"name": "sensor", "slave": 30, "high": true, "period": 20000, "deadline": 20000, "reqBytes": 4, "respBytes": 4}
			]}],
			"slaves": [{"addr": 30, "tsdr": 30}]
		}},
		{"name": "east", "network": {
			"ttr": 2000,
			"masters": [{"addr": 1, "dispatcher": "edf", "streams": [
				{"name": "relayin", "slave": 30, "high": true, "period": 20000, "deadline": 30000, "reqBytes": 4, "respBytes": 4}
			]}],
			"slaves": [{"addr": 30, "tsdr": 30}]
		}}
	],
	"bridges": [
		{"name": "wb", "from": "west", "to": "east", "latency": 500, "relays": [
			{"name": "r", "fromStream": "sensor", "toStream": "relayin", "deadline": 30000}
		]}
	]
}`

func TestParseTopology(t *testing.T) {
	top, sim, err := ParseTopology([]byte(topologyJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Segments) != 2 || len(sim.Segments) != 2 {
		t.Fatalf("segments = %d/%d, want 2/2", len(top.Segments), len(sim.Segments))
	}
	if sim.Seed != 7 {
		t.Errorf("seed = %d, want 7", sim.Seed)
	}
	for _, s := range sim.Segments {
		if s.Cfg.Horizon != 400_000 {
			t.Errorf("segment %q horizon = %v, want the top-level override 400000", s.Name, s.Cfg.Horizon)
		}
	}
	if top.Segments[1].Dispatcher.String() != "EDF" {
		t.Errorf("east dispatcher = %v, want EDF", top.Segments[1].Dispatcher)
	}
	if len(top.Bridges) != 1 || top.Bridges[0].Relays[0].ToStream != "relayin" {
		t.Errorf("bridges not carried over: %+v", top.Bridges)
	}
}

func TestParseTopologyRejects(t *testing.T) {
	bad := strings.Replace(topologyJSON, `"to": "east"`, `"to": "nowhere"`, 1)
	if _, _, err := ParseTopology([]byte(bad)); err == nil ||
		!strings.Contains(err.Error(), "unknown segment") {
		t.Errorf("unknown segment not rejected: %v", err)
	}
	bad = strings.Replace(topologyJSON, `"seed": 7`, `"sneed": 7`, 1)
	if _, _, err := ParseTopology([]byte(bad)); err == nil {
		t.Error("unknown top-level field not rejected")
	}
	bad = strings.Replace(topologyJSON, `"ttr": 2000,`, `"ttr": 0,`, 1)
	if _, _, err := ParseTopology([]byte(bad)); err == nil ||
		!strings.Contains(err.Error(), "segment") {
		t.Errorf("invalid embedded network not attributed to its segment: %v", err)
	}
}
