// Package configfile loads the JSON network descriptions consumed by
// cmd/profisim and cmd/profisched, producing the matched pair used
// throughout the library: the analytic model (core.Network) and the
// simulator configuration (profibus.Config) describing the same system.
package configfile

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/fdl"
	"profirt/internal/profibus"
	"profirt/internal/timeunit"
)

// File is the on-disk JSON schema. All durations are in bit times at
// the configured baud rate.
type File struct {
	// TTR is the target token rotation time.
	TTR timeunit.Ticks `json:"ttr"`
	// Bus optionally overrides the DIN timing parameters; omitted
	// fields keep the defaults of fdl.DefaultBusParams.
	Bus *BusJSON `json:"bus,omitempty"`
	// Horizon is the simulation span (default 1_000_000).
	Horizon timeunit.Ticks `json:"horizon,omitempty"`
	// Seed drives simulation randomness.
	Seed int64 `json:"seed,omitempty"`
	// Jitter selects the release realisation: "none", "random",
	// "adversarial" (default none).
	Jitter string `json:"jitter,omitempty"`
	// GapFactor enables ring maintenance: every GapFactor-th token
	// visit each master polls one GAP address (0 disables).
	GapFactor int `json:"gapFactor,omitempty"`
	// Masters in ascending address order.
	Masters []MasterJSON `json:"masters"`
	// Slaves referenced by the streams.
	Slaves []SlaveJSON `json:"slaves"`
}

// BusJSON mirrors fdl.BusParams with optional fields.
type BusJSON struct {
	BaudRate *int64          `json:"baudRate,omitempty"`
	TSDRMin  *timeunit.Ticks `json:"tsdrMin,omitempty"`
	TSDRMax  *timeunit.Ticks `json:"tsdrMax,omitempty"`
	TID1     *timeunit.Ticks `json:"tid1,omitempty"`
	TID2     *timeunit.Ticks `json:"tid2,omitempty"`
	TSL      *timeunit.Ticks `json:"tsl,omitempty"`
	MaxRetry *int            `json:"maxRetry,omitempty"`
}

// MasterJSON describes one master station.
type MasterJSON struct {
	Addr byte `json:"addr"`
	// Dispatcher is "fcfs" (default), "dm" or "edf".
	Dispatcher string       `json:"dispatcher,omitempty"`
	Streams    []StreamJSON `json:"streams"`
}

// StreamJSON describes one message stream.
type StreamJSON struct {
	Name      string         `json:"name"`
	Slave     byte           `json:"slave"`
	High      bool           `json:"high"`
	Period    timeunit.Ticks `json:"period"`
	Deadline  timeunit.Ticks `json:"deadline"`
	Jitter    timeunit.Ticks `json:"jitter,omitempty"`
	Offset    timeunit.Ticks `json:"offset,omitempty"`
	ReqBytes  int            `json:"reqBytes,omitempty"`
	RespBytes int            `json:"respBytes,omitempty"`
}

// SlaveJSON describes a responder.
type SlaveJSON struct {
	Addr byte           `json:"addr"`
	TSDR timeunit.Ticks `json:"tsdr,omitempty"`
}

// ParsePolicy maps a policy name to ap.Policy.
func ParsePolicy(s string) (ap.Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "fcfs":
		return ap.FCFS, nil
	case "dm":
		return ap.DM, nil
	case "edf":
		return ap.EDF, nil
	default:
		return 0, fmt.Errorf("configfile: unknown dispatcher %q (want fcfs/dm/edf)", s)
	}
}

// ParseJitter maps a jitter-mode name to profibus.JitterMode.
func ParseJitter(s string) (profibus.JitterMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return profibus.JitterNone, nil
	case "random":
		return profibus.JitterRandom, nil
	case "adversarial":
		return profibus.JitterAdversarial, nil
	default:
		return 0, fmt.Errorf("configfile: unknown jitter mode %q (want none/random/adversarial)", s)
	}
}

// Build converts the parsed file into the matched analysis/simulation
// pair, validating both.
func (f *File) Build() (core.Network, profibus.Config, error) {
	bus := fdl.DefaultBusParams()
	if b := f.Bus; b != nil {
		if b.BaudRate != nil {
			bus.BaudRate = *b.BaudRate
		}
		if b.TSDRMin != nil {
			bus.TSDRmin = *b.TSDRMin
		}
		if b.TSDRMax != nil {
			bus.TSDRmax = *b.TSDRMax
		}
		if b.TID1 != nil {
			bus.TID1 = *b.TID1
		}
		if b.TID2 != nil {
			bus.TID2 = *b.TID2
		}
		if b.TSL != nil {
			bus.TSL = *b.TSL
		}
		if b.MaxRetry != nil {
			bus.MaxRetry = *b.MaxRetry
		}
	}
	jitter, err := ParseJitter(f.Jitter)
	if err != nil {
		return core.Network{}, profibus.Config{}, err
	}
	horizon := f.Horizon
	if horizon == 0 {
		horizon = 1_000_000
	}
	cfg := profibus.Config{
		Bus:       bus,
		TTR:       f.TTR,
		Horizon:   horizon,
		Seed:      f.Seed,
		Jitter:    jitter,
		GapFactor: f.GapFactor,
	}
	net := core.Network{TTR: f.TTR, TokenPass: bus.TokenPassTicks()}
	if f.GapFactor > 0 {
		net.GapPoll = bus.WorstGapPollTicks()
	}
	for _, mj := range f.Masters {
		pol, err := ParsePolicy(mj.Dispatcher)
		if err != nil {
			return core.Network{}, profibus.Config{}, err
		}
		mc := profibus.MasterConfig{Addr: mj.Addr, Dispatcher: pol}
		cm := core.Master{Name: fmt.Sprintf("M%d", mj.Addr)}
		for _, sj := range mj.Streams {
			sc := profibus.StreamConfig{
				Name:      sj.Name,
				Slave:     sj.Slave,
				High:      sj.High,
				Period:    sj.Period,
				Deadline:  sj.Deadline,
				Jitter:    sj.Jitter,
				Offset:    sj.Offset,
				ReqBytes:  sj.ReqBytes,
				RespBytes: sj.RespBytes,
			}
			mc.Streams = append(mc.Streams, sc)
			ch := sc.WorstCycleTicks(mj.Addr, bus)
			if sj.High {
				cm.High = append(cm.High, core.Stream{
					Name: sj.Name, Ch: ch, D: sj.Deadline, T: sj.Period, J: sj.Jitter,
				})
			} else if ch > cm.LongestLow {
				cm.LongestLow = ch
			}
		}
		cfg.Masters = append(cfg.Masters, mc)
		net.Masters = append(net.Masters, cm)
	}
	for _, sj := range f.Slaves {
		cfg.Slaves = append(cfg.Slaves, profibus.SlaveConfig{Addr: sj.Addr, TSDR: sj.TSDR})
	}
	if err := cfg.Validate(); err != nil {
		return core.Network{}, profibus.Config{}, err
	}
	if err := net.Validate(); err != nil {
		return core.Network{}, profibus.Config{}, err
	}
	return net, cfg, nil
}

// Load reads and builds a network description from a JSON file.
func Load(path string) (core.Network, profibus.Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return core.Network{}, profibus.Config{}, err
	}
	return Parse(raw)
}

// Parse builds a network description from JSON bytes.
func Parse(raw []byte) (core.Network, profibus.Config, error) {
	f, err := Decode(raw)
	if err != nil {
		return core.Network{}, profibus.Config{}, err
	}
	return f.Build()
}

// Decode unmarshals a network description without building it, for
// callers that embed File in a larger schema (the campaign manifest
// inlines one File per swept network) and build later.
func Decode(raw []byte) (*File, error) {
	var f File
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("configfile: %w", err)
	}
	return &f, nil
}
