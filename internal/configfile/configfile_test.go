package configfile

import (
	"os"
	"path/filepath"
	"testing"

	"profirt/internal/ap"
	"profirt/internal/profibus"
)

const sample = `{
  "ttr": 2000,
  "bus": {"maxRetry": 0, "tsdrMax": 50},
  "horizon": 500000,
  "jitter": "adversarial",
  "masters": [
    {
      "addr": 2,
      "dispatcher": "dm",
      "streams": [
        {"name": "loop", "slave": 20, "high": true, "period": 10000, "deadline": 8000, "reqBytes": 2, "respBytes": 4},
        {"name": "bg", "slave": 20, "high": false, "period": 50000, "deadline": 50000, "reqBytes": 8, "respBytes": 8}
      ]
    },
    {"addr": 3, "streams": [
      {"name": "poll", "slave": 20, "high": true, "period": 20000, "deadline": 15000}
    ]}
  ],
  "slaves": [{"addr": 20, "tsdr": 30}]
}`

func TestParseSample(t *testing.T) {
	net, cfg, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TTR != 2000 || net.TTR != 2000 {
		t.Error("TTR not propagated")
	}
	if cfg.Bus.MaxRetry != 0 || cfg.Bus.TSDRmax != 50 {
		t.Error("bus overrides not applied")
	}
	if cfg.Bus.TSDRmin != 11 {
		t.Error("non-overridden bus fields must keep defaults")
	}
	if cfg.Jitter != profibus.JitterAdversarial {
		t.Error("jitter mode wrong")
	}
	if len(cfg.Masters) != 2 || cfg.Masters[0].Dispatcher != ap.DM || cfg.Masters[1].Dispatcher != ap.FCFS {
		t.Error("masters/dispatchers wrong")
	}
	if net.Masters[0].NH() != 1 {
		t.Errorf("high streams = %d, want 1", net.Masters[0].NH())
	}
	if net.Masters[0].LongestLow == 0 {
		t.Error("low-priority stream must set LongestLow")
	}
	if net.Masters[1].LongestLow != 0 {
		t.Error("master 3 has no low traffic")
	}
	// Ch computed from frames under the overridden bus.
	want := cfg.Masters[0].Streams[0].WorstCycleTicks(2, cfg.Bus)
	if net.Masters[0].High[0].Ch != want {
		t.Errorf("Ch = %d, want %d", net.Masters[0].High[0].Ch, want)
	}
	// The built pair actually simulates.
	if _, err := profibus.Simulate(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.json")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must error")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"unknown field":   `{"ttr": 1, "bogus": true, "masters": [], "slaves": []}`,
		"bad dispatcher":  `{"ttr": 1000, "masters": [{"addr": 1, "dispatcher": "lifo", "streams": []}], "slaves": []}`,
		"bad jitter":      `{"ttr": 1000, "jitter": "chaotic", "masters": [{"addr": 1, "streams": []}], "slaves": []}`,
		"invalid network": `{"ttr": 0, "masters": [{"addr": 1, "streams": []}], "slaves": []}`,
		"unknown slave": `{"ttr": 1000, "masters": [{"addr": 1, "streams": [
			{"name": "x", "slave": 9, "high": true, "period": 100, "deadline": 100}]}], "slaves": []}`,
	}
	for name, raw := range cases {
		if _, _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParsePolicyAndJitter(t *testing.T) {
	for s, want := range map[string]ap.Policy{"": ap.FCFS, "FCFS": ap.FCFS, "Dm": ap.DM, "edf": ap.EDF} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	for s, want := range map[string]profibus.JitterMode{
		"": profibus.JitterNone, "none": profibus.JitterNone,
		"RANDOM": profibus.JitterRandom, "adversarial": profibus.JitterAdversarial,
	} {
		got, err := ParseJitter(s)
		if err != nil || got != want {
			t.Errorf("ParseJitter(%q) = %v, %v", s, got, err)
		}
	}
}
