package configfile

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"profirt/internal/timeunit"
	"profirt/internal/topology"
)

// TopologyFile is the on-disk JSON schema for a bridged multi-segment
// installation: named segments, each a complete single-ring network
// description (the File schema), joined by store-and-forward bridges.
type TopologyFile struct {
	// Seed drives all randomness; each segment derives its own seed
	// from it (per-segment "seed" fields are ignored).
	Seed int64 `json:"seed,omitempty"`
	// Horizon, when set, overrides every segment's simulation span
	// (bridged time is global, so segments must agree on one horizon).
	Horizon timeunit.Ticks `json:"horizon,omitempty"`
	// Segments in any order.
	Segments []TopologySegmentJSON `json:"segments"`
	// Bridges couple the segments.
	Bridges []BridgeJSON `json:"bridges"`
}

// TopologySegmentJSON names one ring and embeds its description.
type TopologySegmentJSON struct {
	Name string `json:"name"`
	// Network is the ring's single-segment description.
	Network File `json:"network"`
}

// BridgeJSON mirrors topology.Bridge.
type BridgeJSON struct {
	Name string `json:"name"`
	From string `json:"from"`
	To   string `json:"to"`
	// Latency is the store-and-forward delay in bit times.
	Latency timeunit.Ticks `json:"latency,omitempty"`
	Relays  []RelayJSON    `json:"relays"`
}

// RelayJSON mirrors topology.Relay.
type RelayJSON struct {
	Name       string         `json:"name"`
	FromStream string         `json:"fromStream"`
	ToStream   string         `json:"toStream"`
	Deadline   timeunit.Ticks `json:"deadline"`
}

// Build converts the parsed file into the matched analytic/simulated
// topology pair, validating both.
func (f *TopologyFile) Build() (topology.Topology, topology.SimTopology, error) {
	sim := topology.SimTopology{Seed: f.Seed}
	for _, sj := range f.Segments {
		_, cfg, err := sj.Network.Build()
		if err != nil {
			return topology.Topology{}, topology.SimTopology{}, fmt.Errorf("configfile: segment %q: %w", sj.Name, err)
		}
		if f.Horizon > 0 {
			cfg.Horizon = f.Horizon
		}
		sim.Segments = append(sim.Segments, topology.SimSegment{Name: sj.Name, Cfg: cfg})
	}
	for _, bj := range f.Bridges {
		b := topology.Bridge{Name: bj.Name, From: bj.From, To: bj.To, Latency: bj.Latency}
		for _, rj := range bj.Relays {
			b.Relays = append(b.Relays, topology.Relay{
				Name:       rj.Name,
				FromStream: rj.FromStream,
				ToStream:   rj.ToStream,
				Deadline:   rj.Deadline,
			})
		}
		sim.Bridges = append(sim.Bridges, b)
	}
	if err := sim.Validate(); err != nil {
		return topology.Topology{}, topology.SimTopology{}, fmt.Errorf("configfile: %w", err)
	}
	top := topology.FromSim(sim)
	if err := top.Validate(); err != nil {
		return topology.Topology{}, topology.SimTopology{}, fmt.Errorf("configfile: %w", err)
	}
	return top, sim, nil
}

// LoadTopology reads and builds a topology description from a JSON
// file.
func LoadTopology(path string) (topology.Topology, topology.SimTopology, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return topology.Topology{}, topology.SimTopology{}, err
	}
	return ParseTopology(raw)
}

// ParseTopology builds a topology description from JSON bytes.
func ParseTopology(raw []byte) (topology.Topology, topology.SimTopology, error) {
	var f TopologyFile
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return topology.Topology{}, topology.SimTopology{}, fmt.Errorf("configfile: %w", err)
	}
	return f.Build()
}
