package core

import (
	"math/big"

	"profirt/internal/timeunit"
)

// msgUtilizationAtLeastOne reports Σ tcycle/T_j >= 1 exactly over the
// given stream indices (nil = all): the message-level load at which the
// token-cycle-granular fixed points diverge.
func msgUtilizationAtLeastOne(streams []Stream, indices []int, tcycle Ticks) bool {
	sum := new(big.Rat)
	add := func(s Stream) {
		if s.T > 0 {
			sum.Add(sum, big.NewRat(int64(tcycle), int64(s.T)))
		}
	}
	if indices == nil {
		for _, s := range streams {
			add(s)
		}
	} else {
		for _, j := range indices {
			add(streams[j])
		}
	}
	return sum.Cmp(big.NewRat(1, 1)) >= 0
}

// DMOptions tunes the deadline-monotonic message response-time analysis
// of Eq. 16.
type DMOptions struct {
	// Literal selects the paper's Eq. 16 exactly as printed:
	//
	//	R_i = T*_cycle + Σ_{j∈hp(i)} ⌈(R_i + J_j)/T_j⌉ · T_cycle
	//
	// with T*_cycle = T_cycle except for the lowest-priority stream,
	// where it is 0. Two aspects make the literal form optimistic in
	// boundary scenarios (quantified by experiment E9): the missing
	// own-transmission token visit on top of the blocking visit, and
	// the ⌈·⌉ interference that misses a request released exactly at
	// the start instant.
	//
	// The default (false) is the revised conservative form mirroring
	// the corrected non-preemptive Eq. 1 mapping: for every request
	// q = 0, 1, … of stream i inside the level-i busy period,
	//
	//	w_i(q) = B_i + q·T_cycle + Σ_{j∈hp(i)} (⌊(w_i(q)+J_j)/T_j⌋+1)·T_cycle
	//	R_i    = J_i + max_q { w_i(q) + T_cycle − q·T_i }
	//
	// with B_i = T_cycle when any lower-priority request (a high
	// stream below i, or any low-priority traffic) can occupy the
	// one-slot stack queue, else 0. The own-jitter term J_i anchors
	// the bound at the nominal release, matching how the simulator
	// measures response times.
	Literal bool
	// BlockingFromLowPriority marks that the master also carries
	// low-priority traffic, which can occupy the stack slot just like a
	// lower-priority high stream (affects B_i for the lowest stream in
	// the revised analysis).
	BlockingFromLowPriority bool
	// Horizon caps the fixed-point iterations (0 = 1<<40).
	Horizon Ticks
}

const defaultMsgHorizon = Ticks(1) << 40

// dmHigherPriority reports whether stream j outranks stream i under DM
// with ties broken by index (stable, matching ap.Queue's FIFO
// tie-break).
func dmHigherPriority(streams []Stream, j, i int) bool {
	if streams[j].D != streams[i].D {
		return streams[j].D < streams[i].D
	}
	return j < i
}

// DMResponseTimes evaluates the worst-case response time of every high
// priority stream of one master under the paper's architecture with a
// DM-ordered AP queue (Eq. 16). Results align with the input order.
// Streams whose iteration exceeds the horizon get timeunit.MaxTicks.
func DMResponseTimes(streams []Stream, tcycle Ticks, opts DMOptions) []Ticks {
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = defaultMsgHorizon
	}
	out := make([]Ticks, len(streams))
	for i := range streams {
		out[i] = dmResponseOne(streams, i, tcycle, opts, horizon)
	}
	return out
}

func dmResponseOne(streams []Stream, i int, tcycle Ticks, opts DMOptions, horizon Ticks) Ticks {
	// Identify the interference set and whether i has anyone below it.
	var hp []int
	hasLower := opts.BlockingFromLowPriority
	for j := range streams {
		if j == i {
			continue
		}
		if dmHigherPriority(streams, j, i) {
			hp = append(hp, j)
		} else {
			hasLower = true
		}
	}
	// With higher-priority message load at or above one request per
	// token cycle the recurrences diverge; and with the level-i load
	// (hp plus stream i itself) at or above that point the level-i busy
	// period examined by the revised analysis never ends. Report both
	// directly instead of iterating toward the horizon.
	if len(hp) > 0 && msgUtilizationAtLeastOne(streams, hp, tcycle) {
		return timeunit.MaxTicks
	}
	if !opts.Literal && msgUtilizationAtLeastOne(streams, append(append([]int{}, hp...), i), tcycle) {
		return timeunit.MaxTicks
	}

	if opts.Literal {
		// Paper-exact Eq. 16. T* is zero only for the lowest-priority
		// stream (no lower-priority high stream; the paper does not
		// consider low-priority traffic here).
		tstar := tcycle
		if !hasLowerHigh(streams, i) {
			tstar = 0
		}
		r := tstar
		for range hp {
			r = timeunit.AddSat(r, tcycle) // seed with one visit per hp stream
		}
		for {
			next := tstar
			for _, j := range hp {
				s := streams[j]
				next = timeunit.AddSat(next,
					timeunit.MulSat(timeunit.CeilDiv(r+s.J, s.T), tcycle))
			}
			if next == r {
				return r
			}
			r = next
			if r > horizon || r == timeunit.MaxTicks {
				return timeunit.MaxTicks
			}
		}
	}

	// Revised conservative analysis: every request q of stream i in the
	// level-i busy period, with floor+1 interference counting.
	var blocking Ticks
	if hasLower {
		blocking = tcycle
	}
	si := streams[i]
	solve := func(base Ticks) Ticks {
		w := base
		for range hp {
			w = timeunit.AddSat(w, tcycle)
		}
		if w <= 0 {
			w = 1
		}
		for {
			next := base
			for _, j := range hp {
				s := streams[j]
				next = timeunit.AddSat(next,
					timeunit.MulSat(timeunit.FloorDiv(w+s.J, s.T)+1, tcycle))
			}
			if next == w {
				return w
			}
			w = next
			if w > horizon || w == timeunit.MaxTicks {
				return timeunit.MaxTicks
			}
		}
	}
	// The level-i busy period must include stream i's own requests:
	// higher-priority arrivals can bridge the gap between one request's
	// completion and the next release (push-through), so the number of
	// requests to examine comes from the closed busy period, not from
	// per-request termination.
	busy := blocking
	level := append(append([]int(nil), hp...), i)
	for range level {
		busy = timeunit.AddSat(busy, tcycle)
	}
	for {
		next := blocking
		for _, j := range level {
			s := streams[j]
			next = timeunit.AddSat(next,
				timeunit.MulSat(timeunit.CeilDiv(busy+s.J, s.T), tcycle))
		}
		if next == busy {
			break
		}
		busy = next
		if busy >= horizon || busy == timeunit.MaxTicks {
			return timeunit.MaxTicks
		}
	}
	njobs := timeunit.CeilDiv(busy+si.J, si.T)
	if njobs < 1 {
		njobs = 1
	}
	const maxJobs = 1 << 17 // backstop against near-saturation crawls
	if njobs > maxJobs {
		return timeunit.MaxTicks
	}
	var best Ticks
	for q := Ticks(0); q < njobs; q++ {
		w := solve(timeunit.AddSat(blocking, timeunit.MulSat(q, tcycle)))
		if w == timeunit.MaxTicks {
			return timeunit.MaxTicks
		}
		finish := timeunit.AddSat(w, tcycle)
		r := finish - timeunit.MulSat(q, si.T)
		if r > best {
			best = r
		}
	}
	return timeunit.AddSat(best, si.J)
}

// hasLowerHigh reports whether stream i has a lower-priority *high*
// stream under DM order (the paper's notion of "lowest priority" in
// Eq. 16 concerns the high-priority queue only).
func hasLowerHigh(streams []Stream, i int) bool {
	for j := range streams {
		if j != i && dmHigherPriority(streams, i, j) {
			return true
		}
	}
	return false
}

// DMSchedulable applies Eq. 16 (in the selected variant) across a
// network whose masters all use DM dispatching, with T_cycle from
// Eq. 14, and checks R <= D per stream.
func DMSchedulable(n Network, opts DMOptions) (bool, []StreamVerdict) {
	return SchedulableWith(n, func(m Master, tc Ticks) []Ticks {
		o := opts
		if m.LongestLow > 0 {
			o.BlockingFromLowPriority = true
		}
		return DMResponseTimes(m.High, tc, o)
	})
}
