package core

import (
	"math/big"
	"sync"

	"profirt/internal/timeunit"
)

// msgUtilizationAtLeastOne reports Σ tcycle/T_j >= 1 exactly over the
// given stream indices (nil = all): the message-level load at which the
// token-cycle-granular fixed points diverge.
func msgUtilizationAtLeastOne(streams []Stream, indices []int, tcycle Ticks) bool {
	sum := new(big.Rat)
	add := func(s Stream) {
		if s.T > 0 {
			sum.Add(sum, big.NewRat(int64(tcycle), int64(s.T)))
		}
	}
	if indices == nil {
		for _, s := range streams {
			add(s)
		}
	} else {
		for _, j := range indices {
			add(streams[j])
		}
	}
	return sum.Cmp(big.NewRat(1, 1)) >= 0
}

// DMOptions tunes the deadline-monotonic message response-time analysis
// of Eq. 16.
type DMOptions struct {
	// Literal selects the paper's Eq. 16 exactly as printed:
	//
	//	R_i = T*_cycle + Σ_{j∈hp(i)} ⌈(R_i + J_j)/T_j⌉ · T_cycle
	//
	// with T*_cycle = T_cycle except for the lowest-priority stream,
	// where it is 0. Two aspects make the literal form optimistic in
	// boundary scenarios (quantified by experiment E9): the missing
	// own-transmission token visit on top of the blocking visit, and
	// the ⌈·⌉ interference that misses a request released exactly at
	// the start instant.
	//
	// The default (false) is the revised conservative form mirroring
	// the corrected non-preemptive Eq. 1 mapping: for every request
	// q = 0, 1, … of stream i inside the level-i busy period,
	//
	//	w_i(q) = B_i + q·T_cycle + Σ_{j∈hp(i)} (⌊(w_i(q)+J_j)/T_j⌋+1)·T_cycle
	//	R_i    = J_i + max_q { w_i(q) + T_cycle − q·T_i }
	//
	// with B_i = T_cycle when any lower-priority request (a high
	// stream below i, or any low-priority traffic) can occupy the
	// one-slot stack queue, else 0. The own-jitter term J_i anchors
	// the bound at the nominal release, matching how the simulator
	// measures response times.
	Literal bool
	// BlockingFromLowPriority marks that the master also carries
	// low-priority traffic, which can occupy the stack slot just like a
	// lower-priority high stream (affects B_i for the lowest stream in
	// the revised analysis).
	BlockingFromLowPriority bool
	// Horizon caps the fixed-point iterations (0 = 1<<40).
	Horizon Ticks
}

const defaultMsgHorizon = Ticks(1) << 40

// dmHigherPriority reports whether stream j outranks stream i under DM
// with ties broken by index (stable, matching ap.Queue's FIFO
// tie-break).
func dmHigherPriority(streams []Stream, j, i int) bool {
	if streams[j].D != streams[i].D {
		return streams[j].D < streams[i].D
	}
	return j < i
}

// dmScratch is the reusable working state of one DMResponseTimes call:
// the DM priority order, each stream's rank, the per-rank divergence
// flags from the exact prefix-utilization sweep, and the big.Rat
// accumulators. Pooled so repeated analyses (the memo layer's misses,
// the holistic rounds, the topology fixed point) stop re-allocating.
type dmScratch struct {
	order  []int  // stream indices, highest DM priority first
	pos    []int  // pos[i] = rank of stream i in order
	hpDiv  []bool // rank k: utilization of order[:k] >= 1 (and k > 0)
	lvlDiv []bool // rank k: utilization of order[:k+1] >= 1
	sum    *big.Rat
	term   *big.Rat
	one    *big.Rat
}

var dmScratchPool = sync.Pool{New: func() any {
	return &dmScratch{sum: new(big.Rat), term: new(big.Rat), one: big.NewRat(1, 1)}
}}

// prepare sizes the scratch, sorts the priority order and evaluates the
// divergence flags with a single exact prefix-utilization sweep
// (replacing one O(n) big.Rat summation per stream).
func (sc *dmScratch) prepare(streams []Stream, tcycle Ticks) {
	n := len(streams)
	if cap(sc.order) < n {
		sc.order = make([]int, n)
		sc.pos = make([]int, n)
		sc.hpDiv = make([]bool, n)
		sc.lvlDiv = make([]bool, n)
	}
	sc.order = sc.order[:n]
	sc.pos = sc.pos[:n]
	sc.hpDiv = sc.hpDiv[:n]
	sc.lvlDiv = sc.lvlDiv[:n]
	// Stable insertion sort by deadline: starting from the identity
	// permutation with strict-less comparisons reproduces
	// dmHigherPriority's (D, index) order exactly.
	for i := range sc.order {
		sc.order[i] = i
	}
	for i := 1; i < n; i++ {
		j := i
		for j > 0 && streams[sc.order[j]].D < streams[sc.order[j-1]].D {
			sc.order[j], sc.order[j-1] = sc.order[j-1], sc.order[j]
			j--
		}
	}
	sc.sum.SetInt64(0)
	for k, idx := range sc.order {
		sc.pos[idx] = k
		sc.hpDiv[k] = k > 0 && sc.lvlDiv[k-1]
		if s := streams[idx]; s.T > 0 {
			sc.term.SetFrac64(int64(tcycle), int64(s.T))
			sc.sum.Add(sc.sum, sc.term)
		}
		sc.lvlDiv[k] = sc.sum.Cmp(sc.one) >= 0
	}
}

// DMResponseTimes evaluates the worst-case response time of every high
// priority stream of one master under the paper's architecture with a
// DM-ordered AP queue (Eq. 16). Results align with the input order.
// Streams whose iteration exceeds the horizon get timeunit.MaxTicks.
func DMResponseTimes(streams []Stream, tcycle Ticks, opts DMOptions) []Ticks {
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = defaultMsgHorizon
	}
	sc := dmScratchPool.Get().(*dmScratch)
	sc.prepare(streams, tcycle)
	out := make([]Ticks, len(streams))
	for i := range streams {
		out[i] = dmResponseOne(streams, i, tcycle, opts, horizon, sc)
	}
	dmScratchPool.Put(sc)
	return out
}

func dmResponseOne(streams []Stream, i int, tcycle Ticks, opts DMOptions, horizon Ticks, sc *dmScratch) Ticks {
	// The interference set hp(i) is the priority-order prefix above
	// stream i's rank; interference and busy-period sums below iterate
	// it in priority order, which leaves every result unchanged:
	// saturating sums of non-negative terms are order-independent.
	p := sc.pos[i]
	hp := sc.order[:p]
	// lowerHigh: a lower-priority *high* stream exists below i.
	lowerHigh := p < len(streams)-1
	hasLower := opts.BlockingFromLowPriority || lowerHigh
	// With higher-priority message load at or above one request per
	// token cycle the recurrences diverge; and with the level-i load
	// (hp plus stream i itself) at or above that point the level-i busy
	// period examined by the revised analysis never ends. Report both
	// directly instead of iterating toward the horizon.
	if sc.hpDiv[p] {
		return timeunit.MaxTicks
	}
	if !opts.Literal && sc.lvlDiv[p] {
		return timeunit.MaxTicks
	}

	if opts.Literal {
		// Paper-exact Eq. 16. T* is zero only for the lowest-priority
		// stream (no lower-priority high stream; the paper does not
		// consider low-priority traffic here).
		tstar := tcycle
		if !lowerHigh {
			tstar = 0
		}
		r := tstar
		for range hp {
			r = timeunit.AddSat(r, tcycle) // seed with one visit per hp stream
		}
		for {
			next := tstar
			for _, j := range hp {
				s := streams[j]
				next = timeunit.AddSat(next,
					timeunit.MulSat(timeunit.CeilDiv(r+s.J, s.T), tcycle))
			}
			if next == r {
				return r
			}
			r = next
			if r > horizon || r == timeunit.MaxTicks {
				return timeunit.MaxTicks
			}
		}
	}

	// Revised conservative analysis: every request q of stream i in the
	// level-i busy period, with floor+1 interference counting.
	var blocking Ticks
	if hasLower {
		blocking = tcycle
	}
	si := streams[i]
	solve := func(base Ticks) Ticks {
		w := base
		for range hp {
			w = timeunit.AddSat(w, tcycle)
		}
		if w <= 0 {
			w = 1
		}
		for {
			next := base
			for _, j := range hp {
				s := streams[j]
				next = timeunit.AddSat(next,
					timeunit.MulSat(timeunit.FloorDiv(w+s.J, s.T)+1, tcycle))
			}
			if next == w {
				return w
			}
			w = next
			if w > horizon || w == timeunit.MaxTicks {
				return timeunit.MaxTicks
			}
		}
	}
	// The level-i busy period must include stream i's own requests:
	// higher-priority arrivals can bridge the gap between one request's
	// completion and the next release (push-through), so the number of
	// requests to examine comes from the closed busy period, not from
	// per-request termination. The level set is hp(i) plus i itself.
	busy := blocking
	for range p + 1 {
		busy = timeunit.AddSat(busy, tcycle)
	}
	levelTerm := func(w Ticks, s Stream) Ticks {
		return timeunit.MulSat(timeunit.CeilDiv(w+s.J, s.T), tcycle)
	}
	for {
		next := blocking
		for _, j := range hp {
			next = timeunit.AddSat(next, levelTerm(busy, streams[j]))
		}
		next = timeunit.AddSat(next, levelTerm(busy, si))
		if next == busy {
			break
		}
		busy = next
		if busy >= horizon || busy == timeunit.MaxTicks {
			return timeunit.MaxTicks
		}
	}
	njobs := timeunit.CeilDiv(busy+si.J, si.T)
	if njobs < 1 {
		njobs = 1
	}
	const maxJobs = 1 << 17 // backstop against near-saturation crawls
	if njobs > maxJobs {
		return timeunit.MaxTicks
	}
	var best Ticks
	for q := Ticks(0); q < njobs; q++ {
		w := solve(timeunit.AddSat(blocking, timeunit.MulSat(q, tcycle)))
		if w == timeunit.MaxTicks {
			return timeunit.MaxTicks
		}
		finish := timeunit.AddSat(w, tcycle)
		r := finish - timeunit.MulSat(q, si.T)
		if r > best {
			best = r
		}
	}
	return timeunit.AddSat(best, si.J)
}

// DMSchedulable applies Eq. 16 (in the selected variant) across a
// network whose masters all use DM dispatching, with T_cycle from
// Eq. 14, and checks R <= D per stream.
func DMSchedulable(n Network, opts DMOptions) (bool, []StreamVerdict) {
	return SchedulableWith(n, func(m Master, tc Ticks) []Ticks {
		o := opts
		if m.LongestLow > 0 {
			o.BlockingFromLowPriority = true
		}
		return DMResponseTimes(m.High, tc, o)
	})
}
