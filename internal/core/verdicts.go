package core

// SchedulableWith applies a per-master response-time bounds function
// across the network under T_cycle from Eq. 14 and folds the Eq. 12
// style per-stream condition R <= D into verdicts. It is the single
// verdict-assembly shared by the DM/EDF network tests below and their
// memoized mirrors (internal/memo), so verdict semantics cannot drift
// between the cached and uncached paths.
func SchedulableWith(n Network, bounds func(m Master, tc Ticks) []Ticks) (bool, []StreamVerdict) {
	tc := n.TokenCycle()
	ok := true
	var out []StreamVerdict
	for _, m := range n.Masters {
		rs := bounds(m, tc)
		for i, s := range m.High {
			v := StreamVerdict{Master: m.Name, Stream: s.Name, D: s.D, R: rs[i], OK: rs[i] <= s.D}
			if !v.OK {
				ok = false
			}
			out = append(out, v)
		}
	}
	return ok, out
}
