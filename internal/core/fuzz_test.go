package core

import (
	"testing"
)

// fuzzNetwork decodes the fuzzer's flat argument tuple into a Network:
// up to three masters whose stream attributes are mixed from the raw
// inputs so the fuzzer can reach negative, zero and huge values in
// every field.
func fuzzNetwork(ttr, tokenPass, gapPoll, ch, d, tp, j, low int64, nMasters, nStreams uint8) Network {
	n := Network{
		TTR:       Ticks(ttr),
		TokenPass: Ticks(tokenPass),
		GapPoll:   Ticks(gapPoll),
	}
	for mi := 0; mi < int(nMasters%4); mi++ {
		m := Master{Name: "m", LongestLow: Ticks(low >> uint(mi))}
		for si := 0; si < int(nStreams%4); si++ {
			shift := uint(mi + si)
			m.High = append(m.High, Stream{
				Name: "s",
				Ch:   Ticks(ch >> shift),
				D:    Ticks(d >> shift),
				T:    Ticks(tp >> shift),
				J:    Ticks(j >> shift),
			})
		}
		n.Masters = append(n.Masters, m)
	}
	return n
}

// FuzzNetworkValidate checks the validation contract the analytic layer
// rests on: Validate never panics, and any network it accepts can be
// fed to the token-lateness bounds without panics, negative results, or
// a refined bound exceeding the coarse one (the refinement must only
// ever tighten Eq. 13). Run the full fuzzer with
//
//	go test -run '^$' -fuzz '^FuzzNetworkValidate$' ./internal/core
func FuzzNetworkValidate(f *testing.F) {
	f.Add(int64(2000), int64(77), int64(0), int64(400), int64(15000), int64(20000), int64(0), int64(600), uint8(2), uint8(2))
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), uint8(0), uint8(0))
	f.Add(int64(1), int64(-1), int64(5), int64(1), int64(1), int64(1), int64(-7), int64(-3), uint8(3), uint8(3))
	f.Add(int64(1)<<62, int64(1)<<61, int64(1)<<60, int64(1)<<59, int64(1)<<58, int64(1)<<57, int64(1)<<56, int64(1)<<55, uint8(3), uint8(1))
	f.Add(int64(100), int64(0), int64(0), int64(350), int64(900), int64(1000), int64(50), int64(0), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, ttr, tokenPass, gapPoll, ch, d, tp, j, low int64, nMasters, nStreams uint8) {
		n := fuzzNetwork(ttr, tokenPass, gapPoll, ch, d, tp, j, low, nMasters, nStreams)
		if err := n.Validate(); err != nil {
			return
		}
		tdel := n.TokenDelay()
		refined := n.RefinedTokenDelay()
		if tdel < 0 || refined < 0 {
			t.Fatalf("negative token delay: coarse %v refined %v for %+v", tdel, refined, n)
		}
		if refined > tdel {
			t.Fatalf("refined token delay %v exceeds coarse bound %v for %+v", refined, tdel, n)
		}
		if tc := n.TokenCycle(); tc < n.TTR {
			t.Fatalf("token cycle %v below TTR %v (saturation broke monotonicity) for %+v", tc, n.TTR, n)
		}
		// The FCFS bound must be monotone in the token cycle and usable
		// on any validated network.
		for _, m := range n.Masters {
			if r := FCFSResponseTime(m, n.TokenCycle()); r < 0 {
				t.Fatalf("negative FCFS response %v for %+v", r, m)
			}
		}
	})
}
