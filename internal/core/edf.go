package core

import (
	"slices"
	"sync"

	"profirt/internal/timeunit"
)

// EDFOptions tunes the EDF message response-time analysis of
// Eqs. 17–18.
type EDFOptions struct {
	// BlockingFromLowPriority marks that low-priority traffic can
	// occupy the stack slot (it always has a "later deadline" for the
	// blocking term).
	BlockingFromLowPriority bool
	// Horizon caps the busy-period window and iterations (0 = 1<<40
	// for iterations, busy period for the candidate window).
	Horizon Ticks
}

// EDFResponseTimes evaluates the worst-case response time of every
// high-priority stream of one master under the paper's architecture
// with an EDF-ordered AP queue (Eqs. 17–18):
//
//	R_i(a) = max{ T_cycle, L_i(a) + T_cycle − a }
//	L_i(a) = T*_cycle + W*_i(a, L_i(a)) + ⌊a/T_i⌋·T_cycle
//	W*_i(a,t) = Σ_{j≠i, D_j−J_j ≤ a+D_i}
//	            min{ 1+⌊(t+J_j)/T_j⌋, 1+⌊(a+D_i−D_j+J_j)/T_j⌋ } · T_cycle
//
// with T*_cycle = T_cycle when some request with an absolute deadline
// beyond a+D_i can hold the one-slot stack queue, else 0. On top of the
// paper's formulation, the stream's own release jitter J_i is added to
// the result so the bound is anchored at the nominal release (matching
// the simulator's measurement and the Sec. 4.1 inheritance model).
// Results align with the input order; streams whose iteration diverges
// get timeunit.MaxTicks.
func EDFResponseTimes(streams []Stream, tcycle Ticks, opts EDFOptions) []Ticks {
	out := make([]Ticks, len(streams))
	if len(streams) == 0 {
		return out
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = defaultMsgHorizon
	}

	// The candidate window is the synchronous busy period in token-
	// cycle units, with one blocking visit: it diverges when the
	// message utilisation Σ T_cycle/T_j reaches 1 (checked exactly up
	// front so the iteration never crawls toward a huge horizon).
	if msgUtilizationAtLeastOne(streams, nil, tcycle) {
		for i := range out {
			out[i] = timeunit.MaxTicks
		}
		return out
	}
	busy := edfMessageBusyPeriod(streams, tcycle, horizon)
	if busy >= horizon {
		for i := range out {
			out[i] = timeunit.MaxTicks
		}
		return out
	}

	sc := edfScratchPool.Get().(*edfScratch)
	for i := range streams {
		out[i] = edfMessageResponseOne(streams, i, tcycle, busy, opts, horizon, sc)
	}
	sc.cands = sc.cands[:0]
	edfScratchPool.Put(sc)
	return out
}

// edfScratch holds the candidate-offset buffer reused across the
// per-stream evaluations of one EDFResponseTimes call (and, via the
// pool, across calls): candidate enumeration previously allocated a
// map plus a slice per stream per call.
type edfScratch struct {
	cands []Ticks
}

var edfScratchPool = sync.Pool{New: func() any { return new(edfScratch) }}

// edfMessageBusyPeriod bounds the window of release offsets worth
// examining: least fixed point of
// L = T_cycle + Σ_j ⌈(L+J_j)/T_j⌉·T_cycle, capped at horizon.
func edfMessageBusyPeriod(streams []Stream, tcycle, horizon Ticks) Ticks {
	l := tcycle
	for range streams {
		l = timeunit.AddSat(l, tcycle)
	}
	for {
		next := tcycle
		for _, s := range streams {
			next = timeunit.AddSat(next,
				timeunit.MulSat(timeunit.CeilDiv(l+s.J, s.T), tcycle))
		}
		if next == l {
			return l
		}
		l = next
		if l >= horizon || l == timeunit.MaxTicks {
			return horizon
		}
	}
}

// edfMessageCandidates enumerates the paper's Eq. 10 offsets adapted
// with jitter: a ∈ ∪_j {k·T_j + D_j − D_i − J_j} ∪ {0}, clipped to
// [0, limit]. The result is sorted and duplicate-free, built in the
// reusable buffer.
func edfMessageCandidates(buf []Ticks, streams []Stream, i int, limit Ticks) []Ticks {
	out := append(buf[:0], 0)
	di := streams[i].D
	for _, s := range streams {
		base := s.D - di - s.J
		for k := Ticks(0); ; k++ {
			a := base + timeunit.MulSat(k, s.T)
			if a > limit {
				break
			}
			if a >= 0 {
				out = append(out, a)
			}
		}
	}
	slices.Sort(out)
	return slices.Compact(out)
}

func edfMessageResponseOne(streams []Stream, i int, tcycle, busy Ticks, opts EDFOptions, horizon Ticks, sc *edfScratch) Ticks {
	si := streams[i]
	var best Ticks
	sc.cands = edfMessageCandidates(sc.cands, streams, i, busy)
	for _, a := range sc.cands {
		adi := a + si.D

		// Blocking: one stack-slot occupant with a later absolute
		// deadline (or any low-priority request).
		var blocking Ticks
		if opts.BlockingFromLowPriority {
			blocking = tcycle
		} else {
			for j, s := range streams {
				if j != i && s.D-s.J > adi {
					blocking = tcycle
					break
				}
			}
		}

		earlier := timeunit.MulSat(timeunit.FloorDiv(a, si.T), tcycle)

		l := blocking
		for {
			var w Ticks
			for j, s := range streams {
				if j == i || s.D-s.J > adi {
					continue
				}
				byRate := 1 + timeunit.FloorDiv(l+s.J, s.T)
				byDeadline := 1 + timeunit.FloorDiv(adi-s.D+s.J, s.T)
				w = timeunit.AddSat(w,
					timeunit.MulSat(timeunit.Min(byRate, byDeadline), tcycle))
			}
			next := timeunit.AddSat(timeunit.AddSat(blocking, w), earlier)
			if next == l {
				break
			}
			l = next
			if l > timeunit.AddSat(horizon, a) || l == timeunit.MaxTicks {
				return timeunit.MaxTicks
			}
		}
		r := timeunit.Max(tcycle, timeunit.AddSat(tcycle, l-a))
		if r > best {
			best = r
		}
	}
	return timeunit.AddSat(best, si.J)
}

// EDFSchedulableNet applies Eqs. 17–18 across a network whose masters
// all use EDF dispatching, with T_cycle from Eq. 14.
func EDFSchedulableNet(n Network, opts EDFOptions) (bool, []StreamVerdict) {
	return SchedulableWith(n, func(m Master, tc Ticks) []Ticks {
		o := opts
		if m.LongestLow > 0 {
			o.BlockingFromLowPriority = true
		}
		return EDFResponseTimes(m.High, tc, o)
	})
}
