package core

import (
	"fmt"

	"profirt/internal/timeunit"
)

// FCFSResponseTime evaluates Eq. 11 for master k: with the stock FCFS
// outgoing queue, at most one message per stream can be pending (two
// would already imply a missed deadline), each pending message takes at
// most one token visit, and visits are at most T_cycle apart:
//
//	R_i^k = Q_i^k + Ch_i^k = nh^k · T_cycle
//
// The bound is the same for every stream of the master.
func FCFSResponseTime(m Master, tcycle Ticks) Ticks {
	return timeunit.MulSat(Ticks(m.NH()), tcycle)
}

// FCFSQueuingDelay returns Q_i^k = nh^k·T_cycle − Ch_i^k for one stream.
func FCFSQueuingDelay(m Master, i int, tcycle Ticks) Ticks {
	return FCFSResponseTime(m, tcycle) - m.High[i].Ch
}

// StreamVerdict pairs a stream with its response-time bound and
// schedulability verdict for reporting.
type StreamVerdict struct {
	Master string
	Stream string
	// D is the stream's relative deadline.
	D Ticks
	// R is the worst-case response-time bound.
	R Ticks
	// OK is R <= D (Eq. 12's per-stream condition).
	OK bool
}

// FCFSSchedulable evaluates the pre-run-time condition of Eq. 12 over
// the whole network: Dh_i^k >= R_i^k for every high-priority stream of
// every master, under T_cycle from Eq. 14.
func FCFSSchedulable(n Network) (bool, []StreamVerdict) {
	tc := n.TokenCycle()
	ok := true
	var out []StreamVerdict
	for _, m := range n.Masters {
		r := FCFSResponseTime(m, tc)
		for _, s := range m.High {
			v := StreamVerdict{Master: m.Name, Stream: s.Name, D: s.D, R: r, OK: r <= s.D}
			if !v.OK {
				ok = false
			}
			out = append(out, v)
		}
	}
	return ok, out
}

// MaxTTR evaluates Eq. 15: the largest target token rotation time that
// keeps every high-priority stream schedulable under FCFS:
//
//	T_TR <= min_{k,i} ( Dh_i^k / nh^k − T_del )
//
// It returns an error when no positive T_TR satisfies the condition
// (the deadline structure is infeasible for this network) — in that
// case the returned value is the (non-positive) bound itself, useful
// for diagnosis.
func MaxTTR(n Network) (Ticks, error) {
	tdel := n.TokenDelay()
	bound := timeunit.MaxTicks
	for _, m := range n.Masters {
		nh := Ticks(m.NH())
		if nh == 0 {
			continue
		}
		for _, s := range m.High {
			b := timeunit.FloorDiv(s.D, nh) - tdel
			if b < bound {
				bound = b
			}
		}
	}
	if bound == timeunit.MaxTicks {
		return 0, fmt.Errorf("core: network has no high-priority streams")
	}
	if bound <= 0 {
		return bound, fmt.Errorf("core: no positive TTR satisfies Eq. 15 (bound %d)", bound)
	}
	return bound, nil
}
