package core

import "profirt/internal/timeunit"

// EndToEnd decomposes the end-to-end communication delay of the paper's
// Section 4.2: E = g + Q + C + d.
type EndToEnd struct {
	// Generation is g: the worst-case delay for the sending application
	// task to generate and queue the request. It doubles as the
	// message's release jitter bound J (Sec. 4.1) used inside the
	// queuing analysis.
	Generation Ticks
	// Queuing is Q: the worst-case delay from queuing until the request
	// gains access to the bus.
	Queuing Ticks
	// Cycle is C: the worst-case message cycle (request transmission,
	// slave processing and turnaround, response, retries).
	Cycle Ticks
	// Delivery is d: processing the response and delivering it to the
	// destination task (same host processor in PROFIBUS).
	Delivery Ticks
}

// Total returns E = g + Q + C + d.
func (e EndToEnd) Total() Ticks {
	t := timeunit.AddSat(e.Generation, e.Queuing)
	t = timeunit.AddSat(t, e.Cycle)
	return timeunit.AddSat(t, e.Delivery)
}

// Compose builds the decomposition from a message-level response-time
// bound R (which covers Q + C, as produced by FCFSResponseTime,
// DMResponseTimes or EDFResponseTimes) and the task-level generation
// and delivery bounds. The queuing share is recovered as R − C.
func Compose(generation, msgResponse, cycle, delivery Ticks) EndToEnd {
	q := msgResponse - cycle
	if q < 0 {
		q = 0
	}
	return EndToEnd{
		Generation: generation,
		Queuing:    q,
		Cycle:      cycle,
		Delivery:   delivery,
	}
}
